//! A fleet tracker on the z-order B⁺-tree: thousands of vehicles move
//! continuously (delete + re-insert of their point location), while
//! dispatchers run region queries — the paper's future-work item 3
//! ("management of moving spatial objects in spatiotemporal database
//! systems") on the third access method.
//!
//! ```text
//! cargo run --release --example fleet_tracker
//! ```

use asb::buffer::{BufferManager, PolicyKind, SpatialCriterion};
use asb::geom::{Point, Rect};
use asb::storage::DiskManager;
use asb::zbtree::ZBTree;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const FLEET: usize = 5_000;
const ROUNDS: usize = 300;
const MOVERS_PER_ROUND: usize = 40;

fn main() {
    let bounds = Rect::new(0.0, 0.0, 1.0, 1.0);
    let mut rng = StdRng::seed_from_u64(7);

    // Initial fleet positions: a few depots plus road-like scatter.
    let depots = [
        Point::new(0.2, 0.3),
        Point::new(0.7, 0.6),
        Point::new(0.45, 0.8),
    ];
    let mut positions: Vec<Point> = (0..FLEET)
        .map(|i| {
            let d = depots[i % depots.len()];
            Point::new(
                (d.x + (rng.gen::<f64>() - 0.5) * 0.2).clamp(0.0, 1.0),
                (d.y + (rng.gen::<f64>() - 0.5) * 0.2).clamp(0.0, 1.0),
            )
        })
        .collect();
    let velocities: Vec<(f64, f64)> = (0..FLEET)
        .map(|_| {
            (
                (rng.gen::<f64>() - 0.5) * 0.01,
                (rng.gen::<f64>() - 0.5) * 0.01,
            )
        })
        .collect();

    println!(
        "fleet of {FLEET} vehicles, {ROUNDS} rounds, {MOVERS_PER_ROUND} moves + 1 dispatch query per round\n"
    );
    println!(
        "{:<8} {:>12} {:>10} {:>14}",
        "policy", "disk reads", "hit ratio", "sim I/O [ms]"
    );

    for policy in [
        PolicyKind::Lru,
        PolicyKind::LruK { k: 2 },
        PolicyKind::Spatial(SpatialCriterion::Area),
        PolicyKind::Asb,
    ] {
        // Fresh tree and identical movement replay per policy.
        let pairs: Vec<(u64, Point)> = positions
            .iter()
            .enumerate()
            .map(|(i, p)| (i as u64, *p))
            .collect();
        let mut tree = ZBTree::bulk_load(DiskManager::new(), bounds, &pairs).expect("bulk load");
        let buffer = (tree.page_count() / 25).max(8); // 4% buffer
        tree.set_buffer(BufferManager::with_policy(policy, buffer));
        tree.store_mut().reset_stats();

        let mut pos = positions.clone();
        let mut replay = StdRng::seed_from_u64(99);
        let mut answered = 0usize;
        for round in 0..ROUNDS {
            for k in 0..MOVERS_PER_ROUND {
                let v = (round * 97 + k * 131) % FLEET;
                let old = pos[v];
                let (dx, dy) = velocities[v];
                let new = Point::new((old.x + dx).rem_euclid(1.0), (old.y + dy).rem_euclid(1.0));
                tree.delete(v as u64, &old).expect("delete");
                tree.insert(v as u64, new).expect("insert");
                pos[v] = new;
            }
            // Dispatcher: who is near this incident?
            let c = Point::new(replay.gen(), replay.gen());
            let region = Rect::centered_square(c, 0.04);
            answered += tree.window_query(region).expect("query").len();
        }

        let io = tree.store().stats();
        let buf = tree.take_buffer().expect("buffer attached");
        println!(
            "{:<8} {:>12} {:>9.1}% {:>14.0}",
            policy.label(),
            io.reads,
            buf.stats().hit_ratio() * 100.0,
            io.simulated_ms
        );
        // Stash to keep every policy's replay identical.
        positions = positions.clone();
        let _ = answered;
    }

    println!(
        "\nEvery policy replayed the identical movement + query stream;\n\
         differences are purely down to what each buffer chose to keep."
    );
}
