//! Quickstart: build a spatial database, attach the adaptable spatial
//! buffer, run window queries, and compare its I/O against plain LRU.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use asb::buffer::{BufferManager, PolicyKind};
use asb::geom::Query;
use asb::rtree::RTree;
use asb::storage::DiskManager;
use asb::workload::{Dataset, DatasetKind, QuerySetSpec, Scale};

fn main() {
    // 1. A synthetic "US mainland"-like database: clustered points and
    //    small extended objects, deterministic from the seed.
    let dataset = Dataset::generate(DatasetKind::Mainland, Scale::Small, 42);
    println!("dataset: {} objects", dataset.items().len());

    // 2. Bulk-load an R*-tree (STR) over a simulated disk.
    let mut tree = RTree::bulk_load(DiskManager::new(), dataset.items()).expect("bulk load");
    println!(
        "tree: {} pages, height {} (fan-out 51/42, like the paper)",
        tree.page_count(),
        tree.height()
    );

    // 3. A mixed query workload: medium windows plus point queries.
    let mut queries: Vec<Query> = QuerySetSpec::uniform_windows(100).generate(&dataset, 1500, 7);
    queries.extend(QuerySetSpec::identical_points().generate(&dataset, 1500, 8));

    // 4. Run the same workload under LRU and under the adaptable spatial
    //    buffer (ASB), with a buffer of 2% of the tree's pages.
    let buffer_pages = (tree.page_count() / 50).max(16);
    let mut report = Vec::new();
    for policy in [PolicyKind::Lru, PolicyKind::Asb] {
        tree.set_buffer(BufferManager::with_policy(policy, buffer_pages));
        tree.store_mut().reset_stats();
        let mut answers = 0usize;
        for q in &queries {
            answers += tree.execute(q).expect("query").len();
        }
        let disk = tree.store().stats();
        let buf = tree.take_buffer().expect("buffer attached");
        println!(
            "{:<4}  disk accesses: {:>6}  hit ratio: {:>5.1}%  simulated I/O: {:>7.0} ms  ({} results)",
            policy.label(),
            disk.reads,
            buf.stats().hit_ratio() * 100.0,
            disk.simulated_ms,
            answers,
        );
        report.push(disk.reads);
    }

    let gain = report[0] as f64 / report[1] as f64 - 1.0;
    println!(
        "\nASB gain over LRU: {:.1}% fewer effective disk accesses",
        gain * 100.0
    );
}
