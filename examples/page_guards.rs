//! The RAII page-access API in one tour: read guards pin frames, write
//! guards stage mutations, and the [`BufferPool`] trait lets the same code
//! drive the single-threaded [`SharedBuffer`] and the lock-striped
//! [`ShardedBuffer`] interchangeably.
//!
//! ```text
//! cargo run --release --example page_guards
//! ```

use asb::buffer::{BufferManager, BufferPool, PolicyKind, ShardedBuffer, SharedBuffer};
use asb::geom::SpatialStats;
use asb::storage::{AccessContext, DiskManager, PageId, PageMeta, PageStore, QueryId};
use bytes::Bytes;

fn build_disk(pages: u64) -> (DiskManager, Vec<PageId>) {
    let mut disk = DiskManager::new();
    let ids = (0..pages)
        .map(|i| {
            disk.allocate(
                PageMeta::data(SpatialStats::EMPTY),
                Bytes::from(vec![i as u8]),
            )
            .expect("allocate")
        })
        .collect();
    (disk, ids)
}

/// Generic over the pool: the same access pattern works against either
/// implementation, which is the point of the [`BufferPool`] trait.
fn tour(pool: &dyn BufferPool, ids: &[PageId], label: &str) {
    // A read guard pins its frame for exactly as long as it lives; the
    // page bytes are reached through Deref, no copy handed out.
    let guard = pool
        .fetch(ids[0], AccessContext::query(QueryId::new(1)))
        .expect("fetch");
    println!(
        "{label}: read page {} -> payload {:?}",
        guard.id, guard.payload
    );
    assert_eq!(pool.live_guards(), 1);
    drop(guard); // unpin: eviction may take the frame again

    // A write guard stages a mutation; nothing is visible until commit(),
    // which marks the frame dirty in one step (write-back happens on
    // eviction, flush, or via the background flusher).
    let mut w = pool
        .fetch_mut(ids[1], AccessContext::query(QueryId::new(2)))
        .expect("fetch_mut");
    w.set_payload(Bytes::from_static(b"updated"))
        .expect("stage payload");
    w.commit().expect("commit");
    assert_eq!(pool.dirty_count(), 1);

    let again = pool
        .fetch(ids[1], AccessContext::query(QueryId::new(3)))
        .expect("re-read");
    assert_eq!(again.payload.as_ref(), b"updated");
    drop(again);

    pool.flush().expect("flush");
    let stats = pool.stats();
    println!(
        "{label}: {} logical reads, {} hits, {} dirty after flush, {} live guards\n",
        stats.logical_reads,
        stats.hits,
        pool.dirty_count(),
        pool.live_guards()
    );
}

fn main() {
    let (disk, ids) = build_disk(16);
    let shared = SharedBuffer::new(disk, BufferManager::with_policy(PolicyKind::Lru, 8));
    tour(&shared, &ids, "shared  ");

    let (disk, ids) = build_disk(16);
    let sharded = ShardedBuffer::new(disk, PolicyKind::Asb, 8, 4);
    tour(&sharded, &ids, "sharded ");

    // Direct store access is gated on guard quiescence: while any guard is
    // live the pool refuses to hand out the store, with a typed error.
    let guard = sharded
        .fetch(ids[0], AccessContext::default())
        .expect("fetch");
    let refused = sharded.with_store(|_| ());
    println!("with_store while a guard lives -> {refused:?}");
    drop(guard);
    sharded.with_store(|_| ()).expect("quiescent now");
    println!("with_store after dropping it   -> Ok(())");
}
