//! A simulated interactive map server: several users pan and zoom across
//! the map at once, and the server answers every viewport with a window
//! query against **one shared, lock-striped buffer pool**
//! ([`asb::buffer::ShardedBuffer`]). Each session runs on its own thread
//! with its own read-only view of the same R\*-tree; pages any session
//! faults in are hits for every other session.
//!
//! Pan/zoom trajectories have strong locality (adjacent viewports overlap),
//! mixed with jumps (the user searches for another city), which is exactly
//! where replacement policy choices show — the example races four policies
//! over identical trajectories and prints the comparison.
//!
//! ```text
//! cargo run --release --example map_server
//! ```

use asb::buffer::{PolicyKind, ShardedBuffer, SpatialCriterion};
use asb::rtree::RTree;
use asb::storage::DiskManager;
use asb::workload::{session, Dataset, DatasetKind, Scale, SessionSpec};

const SESSIONS: usize = 4;
const SHARDS: usize = 8;

fn main() {
    let dataset = Dataset::generate(DatasetKind::Mainland, Scale::Small, 11);
    // One pan/zoom trajectory per concurrent session, each from its own seed.
    let trajectories: Vec<_> = (0..SESSIONS as u64)
        .map(|t| session(&dataset, SessionSpec::default(), 1_000, 99 + t))
        .collect();
    let viewports: usize = trajectories.iter().map(Vec::len).sum();

    let policies = [
        PolicyKind::Lru,
        PolicyKind::LruK { k: 2 },
        PolicyKind::Spatial(SpatialCriterion::Area),
        PolicyKind::Asb,
    ];

    println!(
        "map server: {SESSIONS} concurrent sessions, {viewports} viewport requests total, \
         one pool of {SHARDS} shards\n"
    );
    println!(
        "{:<8} {:>12} {:>10} {:>12} {:>12}",
        "policy", "disk reads", "hit ratio", "sim I/O [ms]", "wall [ms]"
    );

    let mut baseline = None;
    for policy in policies {
        let tree = RTree::bulk_load(DiskManager::new(), dataset.items()).expect("bulk load");
        let buffer_pages = (tree.page_count() / 40).max(16); // 2.5% buffer
        let snapshot = tree.snapshot();
        let pool = ShardedBuffer::new(tree.into_store(), policy, buffer_pages, SHARDS);
        pool.reset_io_stats();

        let started = std::time::Instant::now();
        std::thread::scope(|s| {
            for (t, trajectory) in trajectories.iter().enumerate() {
                let pool = pool.clone();
                s.spawn(move || {
                    let mut view = RTree::attach(pool, snapshot);
                    // Disjoint query-id ranges: accesses from different
                    // sessions are never correlated.
                    view.seed_query_counter((t as u64) << 32);
                    for vp in trajectory {
                        view.execute(vp).expect("viewport query");
                    }
                });
            }
        });
        let wall = started.elapsed();

        let stats = pool.stats();
        let io = pool.io_stats();
        println!(
            "{:<8} {:>12} {:>9.1}% {:>12.0} {:>12.1}",
            policy.label(),
            io.reads,
            stats.hit_ratio() * 100.0,
            io.simulated_ms,
            wall.as_secs_f64() * 1e3,
        );
        baseline.get_or_insert(io.reads);
    }

    let base = baseline.expect("at least one policy ran");
    println!(
        "\n(LRU baseline: {base} disk reads; all sessions of a policy share one pool, \
         so pages faulted in by one session are hits for the others)"
    );
}
