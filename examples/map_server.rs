//! A simulated interactive map server, now a thin wrapper over the
//! [`asb::serve`] crate: many closed-loop sessions issue pan/zoom window
//! queries, k-NN lookups and window-restricted spatial joins against one
//! shared, lock-striped buffer pool, and the serving engine batches each
//! round's page requests per shard ([`asb::buffer::BufferPool::fetch_batch`]).
//!
//! Latency is measured on the storage layer's simulated clock (1 tick =
//! 1 µs), so the percentiles printed here are bit-for-bit reproducible —
//! the same numbers `serve bench --json` commits to `BENCH_serve.json`.
//! The example races several policies over identical session streams and
//! prints the latency/throughput comparison.
//!
//! ```text
//! cargo run --release --example map_server
//! ```

use asb::buffer::{PolicyKind, ShardedBuffer};
use asb::rtree::RTree;
use asb::serve::{bench_sessions, serve, ServeConfig};
use asb::storage::DiskManager;
use asb::workload::{Dataset, DatasetKind, Scale};

const SESSIONS: usize = 128;
const REQUESTS_PER_SESSION: usize = 8;
const SHARDS: usize = 4;
const SEED: u64 = 42;

fn main() {
    let dataset = Dataset::generate(DatasetKind::Mainland, Scale::Tiny, SEED);
    let streams = bench_sessions(&dataset, SEED, SESSIONS, REQUESTS_PER_SESSION);
    let requests: usize = streams.iter().map(Vec::len).sum();

    let policies = [
        PolicyKind::Lru,
        PolicyKind::LruK { k: 2 },
        PolicyKind::Asb,
        PolicyKind::Arena,
    ];

    println!(
        "map server: {SESSIONS} concurrent sessions, {requests} requests total \
         (window / k-NN / join), one pool of {SHARDS} shards\n"
    );
    println!(
        "{:<8} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "policy", "p50 [us]", "p99 [us]", "p999 [us]", "req/s", "hit ratio"
    );

    for policy in policies {
        let tree = RTree::bulk_load(DiskManager::new(), dataset.items()).expect("bulk load");
        let buffer_pages = (tree.page_count() * 17 / 20).max(2 * SHARDS);
        let snapshot = tree.snapshot();
        let pool = ShardedBuffer::new(tree.into_store(), policy, buffer_pages, SHARDS);
        pool.reset_io_stats();

        let cfg = ServeConfig {
            seed: SEED,
            ..ServeConfig::default()
        };
        let outcome = serve(&pool, &snapshot, &streams, &cfg).expect("serve loop");
        let r = &outcome.report;
        println!(
            "{:<8} {:>10} {:>10} {:>10} {:>10.0} {:>9.1}%",
            policy.label(),
            r.p50_ticks,
            r.p99_ticks,
            r.p999_ticks,
            r.throughput_rps,
            100.0 * r.hit_rate,
        );
    }

    println!(
        "\n(all sessions of a policy share one pool, so pages faulted in by one session \
         are buffer hits for the others; latencies are simulated ticks, not wall time)"
    );
}
