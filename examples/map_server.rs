//! A simulated interactive map session: a user pans and zooms across the
//! map, and the server answers each viewport with a window query. The
//! example races four replacement policies on the identical trajectory and
//! prints a live-ish comparison — the workload the paper's introduction
//! motivates ("spatial applications have become more sophisticated").
//!
//! Pan/zoom trajectories have strong locality (adjacent viewports overlap),
//! mixed with jumps (the user searches for another city), which is exactly
//! where replacement policy choices show.
//!
//! ```text
//! cargo run --release --example map_server
//! ```

use asb::buffer::{BufferManager, PolicyKind, SpatialCriterion};
use asb::rtree::RTree;
use asb::storage::DiskManager;
use asb::workload::{session, Dataset, DatasetKind, Scale, SessionSpec};

fn main() {
    let dataset = Dataset::generate(DatasetKind::Mainland, Scale::Small, 11);
    let viewports = session(&dataset, SessionSpec::default(), 4_000, 99);

    let policies = [
        PolicyKind::Lru,
        PolicyKind::LruK { k: 2 },
        PolicyKind::Spatial(SpatialCriterion::Area),
        PolicyKind::Asb,
    ];

    println!("map session: {} viewport requests (pan/zoom/jump)\n", viewports.len());
    println!(
        "{:<8} {:>12} {:>10} {:>12} {:>14}",
        "policy", "disk reads", "hit ratio", "sim I/O [ms]", "ms / viewport"
    );

    let mut baseline = None;
    for policy in policies {
        let mut tree =
            RTree::bulk_load(DiskManager::new(), dataset.items()).expect("bulk load");
        let buffer_pages = (tree.page_count() / 40).max(16); // 2.5% buffer
        tree.set_buffer(BufferManager::with_policy(policy, buffer_pages));
        tree.store_mut().reset_stats();
        for vp in &viewports {
            tree.execute(vp).expect("viewport query");
        }
        let io = tree.store().stats();
        let buf = tree.take_buffer().expect("buffer attached");
        println!(
            "{:<8} {:>12} {:>9.1}% {:>12.0} {:>14.2}",
            policy.label(),
            io.reads,
            buf.stats().hit_ratio() * 100.0,
            io.simulated_ms,
            io.simulated_ms / viewports.len() as f64,
        );
        baseline.get_or_insert(io.reads);
    }

    let base = baseline.expect("at least one policy ran");
    println!(
        "\n(LRU baseline: {base} disk reads; every policy answered every viewport identically)"
    );
}
