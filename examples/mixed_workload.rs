//! The paper's Figure 14 scenario: three query distributions hit the
//! database one after another (intensified → uniform → similar), and the
//! adaptable spatial buffer retunes its candidate-set size on the fly.
//!
//! Prints the self-tuning trace as an ASCII sparkline plus the per-phase
//! averages. Shrinking candidate set = more LRU influence; growing = more
//! spatial influence.
//!
//! ```text
//! cargo run --release --example mixed_workload
//! ```

use asb::exp::Lab;
use asb::workload::{DatasetKind, QueryKind, QuerySetSpec, Scale};

fn main() {
    let mut lab = Lab::new(Scale::Small, 42);
    let specs = [
        QuerySetSpec::intensified(QueryKind::Window { ex: 33 }),
        QuerySetSpec::uniform_windows(33),
        QuerySetSpec::similar(QueryKind::Window { ex: 33 }),
    ];

    println!("mixed workload: INT-W-33 | U-W-33 | S-W-33 through one ASB buffer\n");
    let trace = lab
        .candidate_trace(DatasetKind::Mainland, 0.047, &specs)
        .expect("candidate trace");
    let bounds = lab
        .phase_boundaries(DatasetKind::Mainland, &specs)
        .expect("phase boundaries");

    // Sparkline over ~100 buckets.
    let max = trace.iter().map(|&(_, s)| s).max().unwrap_or(1) as f64;
    let glyphs = [
        '\u{2581}', '\u{2582}', '\u{2583}', '\u{2584}', '\u{2585}', '\u{2586}', '\u{2587}',
        '\u{2588}',
    ];
    let buckets = 100usize.min(trace.len());
    let per = trace.len().div_ceil(buckets);
    let mut line = String::new();
    for chunk in trace.chunks(per) {
        let avg = chunk.iter().map(|&(_, s)| s as f64).sum::<f64>() / chunk.len() as f64;
        let idx = ((avg / max) * (glyphs.len() - 1) as f64).round() as usize;
        line.push(glyphs[idx]);
    }
    println!("candidate-set size over time (max {max}):");
    println!("{line}");

    // Phase markers under the sparkline.
    let mut marker = String::new();
    let mut start = 0usize;
    for (i, &end) in bounds.iter().enumerate() {
        let width = ((end - start) as f64 / per as f64).round() as usize;
        let label = ["INT", "U", "S"][i];
        let cell = format!("|{label:-^w$}", w = width.saturating_sub(1));
        marker.push_str(&cell);
        start = end;
    }
    println!("{marker}");

    // Per-phase averages (the numbers Figure 14 narrates: the candidate
    // set shrinks under intensified load, grows under uniform load, and
    // settles in between under similar load).
    let mut start = 0usize;
    println!("\nper-phase average candidate-set size:");
    for (i, &end) in bounds.iter().enumerate() {
        let phase = &trace[start..end];
        let avg = phase.iter().map(|&(_, s)| s as f64).sum::<f64>() / phase.len() as f64;
        println!(
            "  {:<10} queries {:>5}..{:<5} avg {:>8.1} pages",
            specs[i].name(),
            start,
            end,
            avg
        );
        start = end;
    }
    println!("\nsmall candidate set = LRU-like behaviour; large = spatial-criterion behaviour.");
}
