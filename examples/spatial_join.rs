//! Spatial join under different buffers — the paper's future-work item 2
//! ("to study the influence of the strategies on updates and spatial
//! joins").
//!
//! Joins two map layers (a mainland feature layer and a world-atlas layer
//! clipped to the same space) with the synchronized-traversal R-tree join,
//! giving each tree its own buffer, and compares policies by total
//! simulated I/O.
//!
//! ```text
//! cargo run --release --example spatial_join
//! ```

use asb::buffer::{BufferManager, PolicyKind, SpatialCriterion};
use asb::rtree::{spatial_join, RTree};
use asb::storage::DiskManager;
use asb::workload::{Dataset, DatasetKind, Scale};

fn main() {
    let layer_a = Dataset::generate(DatasetKind::Mainland, Scale::Small, 3);
    let layer_b = Dataset::generate(DatasetKind::World, Scale::Small, 4);
    println!(
        "joining layer A ({} objects) with layer B ({} objects)\n",
        layer_a.items().len(),
        layer_b.items().len()
    );

    let policies = [
        PolicyKind::Lru,
        PolicyKind::LruK { k: 2 },
        PolicyKind::Spatial(SpatialCriterion::Area),
        PolicyKind::Asb,
    ];

    println!(
        "{:<8} {:>12} {:>12} {:>12} {:>12}",
        "policy", "reads A", "reads B", "sim I/O [ms]", "result pairs"
    );
    for policy in policies {
        let mut a = RTree::bulk_load(DiskManager::new(), layer_a.items()).expect("layer A");
        let mut b = RTree::bulk_load(DiskManager::new(), layer_b.items()).expect("layer B");
        // Each layer gets a 2% buffer of its own tree.
        a.set_buffer(BufferManager::with_policy(
            policy,
            (a.page_count() / 50).max(8),
        ));
        b.set_buffer(BufferManager::with_policy(
            policy,
            (b.page_count() / 50).max(8),
        ));
        a.store_mut().reset_stats();
        b.store_mut().reset_stats();

        let pairs = spatial_join(&mut a, &mut b).expect("join");

        let (ia, ib) = (a.store().stats(), b.store().stats());
        println!(
            "{:<8} {:>12} {:>12} {:>12.0} {:>12}",
            policy.label(),
            ia.reads,
            ib.reads,
            ia.simulated_ms + ib.simulated_ms,
            pairs.len()
        );
    }
    println!(
        "\nThe join's synchronized traversal revisits inner pages of both trees;\n\
         buffers that hold on to large directory pages save most of the I/O."
    );
}
