//! # asb-exp — experiment harness for the EDBT 2002 reproduction
//!
//! One function per data figure of the paper (Figures 4–9, 12–14; Figures
//! 1–3 and 10–11 are illustrations). Each figure function returns
//! [`FigureTable`]s — the same rows/series the paper plots — rendered as
//! aligned text tables or JSON.
//!
//! The measurement protocol follows Section 3 of the paper:
//!
//! * trees are bulk-loaded once per database; buffers are **cleared before
//!   each query set** ("in order to increase the comparability of the
//!   results");
//! * buffer sizes are **relative** to the tree's page count
//!   (0.3 %–4.7 %);
//! * the number of queries per set is chosen "so that the number of disk
//!   accesses was about 10 to 20 times higher than the buffer size in the
//!   case of the largest buffer investigated";
//! * results are reported as **relative performance**: the gain of policy X
//!   over LRU is `accesses(LRU) / accesses(X) − 1`.
//!
//! [`Lab`] caches runs so figures sharing a (policy, buffer, query-set)
//! combination do not recompute it, and exposes the raw [`RunResult`]s for
//! EXPERIMENTS.md bookkeeping.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bench;
mod crash;
mod ext;
mod figures;
mod lab;
pub mod parallel;
mod report;
mod trace;

pub use bench::{
    replacement_bench, BenchEntry, ReplacementBench, BENCH_CAPACITY, BENCH_QUERIES_PER_PHASE,
    BENCH_SEED, GOLDEN_DBS,
};
pub use crash::{crash_sweep, CrashConfig, CrashDivergence, CrashSweepReport};
pub use ext::{ext_cross_sam, ext_moving_objects, ext_object_pages, extension, EXTENSIONS};
pub use figures::{all_figures, figure, FigureConfig, FIGURE_IDS};
pub use lab::{Lab, RunResult, BUFFER_FRACS, LARGEST_BUFFER_FRAC};
pub use parallel::{run_cells, ExperimentCell};
pub use report::{FigureTable, Series};
pub use trace::{FaultReplayOutcome, ReplayOutcome, Trace};
