//! The experiment laboratory: tree harnesses, run cache, measurement rules.

use asb_core::{BufferManager, PolicyKind};
use asb_geom::Query;
use asb_rtree::RTree;
use asb_storage::{DiskManager, IoStats, Result};
use asb_workload::{Dataset, DatasetKind, QuerySetSpec, Scale};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// The relative buffer sizes of the paper's experiments (0.3 %–4.7 %,
/// roughly doubling).
pub const BUFFER_FRACS: [f64; 5] = [0.003, 0.006, 0.012, 0.024, 0.047];

/// The largest investigated buffer, which calibrates query-set sizes.
pub const LARGEST_BUFFER_FRAC: f64 = 0.047;

/// Result of running one query set against one buffered tree.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RunResult {
    /// Physical page reads — the paper's "number of disk accesses".
    pub disk_accesses: u64,
    /// Logical page requests issued by the queries.
    pub logical_reads: u64,
    /// Buffer hits.
    pub hits: u64,
    /// Number of queries executed.
    pub queries: usize,
    /// Total result objects reported (sanity: identical across policies).
    pub result_objects: u64,
    /// Physical I/O classified by the simulated disk.
    pub io: IoStats,
    /// History records retained for evicted pages (nonzero only for LRU-K).
    pub retained_history: usize,
    /// Buffer capacity used, in pages.
    pub buffer_pages: usize,
}

impl RunResult {
    /// The paper's performance gain of this run over a baseline:
    /// `|accesses(base)| / |accesses(self)| − 1`, in percent.
    pub fn gain_over(&self, base: &RunResult) -> f64 {
        (base.disk_accesses as f64 / self.disk_accesses as f64 - 1.0) * 100.0
    }

    /// Accesses relative to a baseline, in percent (`base` = 100 %).
    pub fn relative_to(&self, base: &RunResult) -> f64 {
        self.disk_accesses as f64 / base.disk_accesses as f64 * 100.0
    }
}

struct TreeHarness {
    tree: RTree<DiskManager>,
    dataset: Dataset,
    pages: usize,
}

impl TreeHarness {
    fn build(kind: DatasetKind, scale: Scale, seed: u64) -> Result<Self> {
        let dataset = Dataset::generate(kind, scale, seed);
        let tree = RTree::bulk_load(DiskManager::new(), dataset.items())?;
        let pages = tree.page_count();
        Ok(TreeHarness {
            tree,
            dataset,
            pages,
        })
    }

    fn buffer_pages(&self, frac: f64) -> usize {
        ((self.pages as f64 * frac).round() as usize).max(4)
    }
}

/// A laboratory bound to one `(scale, seed)`: builds trees lazily, caches
/// query sets and run results, and implements the paper's measurement
/// protocol.
pub struct Lab {
    scale: Scale,
    seed: u64,
    harnesses: HashMap<DatasetKind, TreeHarness>,
    query_sets: HashMap<(DatasetKind, String), Vec<Query>>,
    runs: HashMap<String, RunResult>,
}

impl Lab {
    /// Creates a lab for the given scale and seed.
    pub fn new(scale: Scale, seed: u64) -> Self {
        Lab {
            scale,
            seed,
            harnesses: HashMap::new(),
            query_sets: HashMap::new(),
            runs: HashMap::new(),
        }
    }

    /// The configured scale.
    pub fn scale(&self) -> Scale {
        self.scale
    }

    /// Page count of the (lazily built) tree for `kind`.
    pub fn tree_pages(&mut self, kind: DatasetKind) -> Result<usize> {
        Ok(self.harness(kind)?.pages)
    }

    fn harness(&mut self, kind: DatasetKind) -> Result<&mut TreeHarness> {
        if !self.harnesses.contains_key(&kind) {
            let h = TreeHarness::build(kind, self.scale, self.seed)?;
            self.harnesses.insert(kind, h);
        }
        Ok(self
            .harnesses
            .get_mut(&kind)
            .expect("harness was just inserted"))
    }

    /// The queries of a set (generated once, shared by every policy so all
    /// runs see the identical sequence).
    pub fn queries(&mut self, kind: DatasetKind, spec: QuerySetSpec) -> Result<Vec<Query>> {
        let key = (kind, spec.name());
        if let Some(q) = self.query_sets.get(&key) {
            return Ok(q.clone());
        }
        let count = self.calibrate_count(kind, spec)?;
        let seed = self.seed;
        let h = self.harness(kind)?;
        let queries = spec.generate(&h.dataset, count, seed ^ 0x0051_5e75);
        self.query_sets.insert(key, queries.clone());
        Ok(queries)
    }

    /// Implements the paper's sizing rule: enough queries that the largest
    /// buffer sees ~15× its size in disk accesses. Estimated from a probe
    /// of 32 queries against the unbuffered tree.
    fn calibrate_count(&mut self, kind: DatasetKind, spec: QuerySetSpec) -> Result<usize> {
        let seed = self.seed;
        let h = self.harness(kind)?;
        let target = 15.0 * h.pages as f64 * LARGEST_BUFFER_FRAC;
        let probe = spec.generate(&h.dataset, 32, seed ^ 0xCA11_B0B0);
        h.tree.store_mut().reset_stats();
        for q in &probe {
            h.tree.execute(q)?;
        }
        let per_query = h.tree.store().stats().reads as f64 / probe.len() as f64;
        // A buffer absorbs roughly half the accesses of the unbuffered run;
        // aim a bit high rather than low.
        let count = (target / (per_query.max(1.0) * 0.4)).ceil() as usize;
        Ok(count.clamp(300, 30_000))
    }

    /// Runs (or returns the cached result of) one experiment cell.
    pub fn run(
        &mut self,
        kind: DatasetKind,
        policy: PolicyKind,
        frac: f64,
        spec: QuerySetSpec,
    ) -> Result<RunResult> {
        let key = format!("{kind:?}|{policy:?}|{frac}|{}", spec.name());
        if let Some(r) = self.runs.get(&key) {
            return Ok(*r);
        }
        let queries = self.queries(kind, spec)?;
        let h = self.harness(kind)?;
        let buffer_pages = h.buffer_pages(frac);
        h.tree
            .set_buffer(BufferManager::with_policy(policy, buffer_pages));
        h.tree.store_mut().reset_stats();
        let mut result_objects = 0u64;
        for q in &queries {
            result_objects += h.tree.execute(q)?.len() as u64;
        }
        let io = h.tree.store().stats();
        let buf = h.tree.take_buffer().expect("buffer was just attached");
        let stats = buf.stats();
        let result = RunResult {
            disk_accesses: io.reads,
            logical_reads: stats.logical_reads,
            hits: stats.hits,
            queries: queries.len(),
            result_objects,
            io,
            retained_history: buf.retained_history(),
            buffer_pages,
        };
        self.runs.insert(key, result);
        Ok(result)
    }

    /// Gain of `policy` over plain LRU in percent (positive = fewer disk
    /// accesses than LRU), the paper's headline metric.
    pub fn gain(
        &mut self,
        kind: DatasetKind,
        policy: PolicyKind,
        frac: f64,
        spec: QuerySetSpec,
    ) -> Result<f64> {
        let base = self.run(kind, PolicyKind::Lru, frac, spec)?;
        let run = self.run(kind, policy, frac, spec)?;
        debug_assert_eq!(
            run.result_objects, base.result_objects,
            "buffering must not change query answers"
        );
        Ok(run.gain_over(&base))
    }

    /// Disk accesses of `policy` relative to `base` in percent
    /// (`base` = 100 %), the metric of the paper's Figure 6.
    pub fn relative(
        &mut self,
        kind: DatasetKind,
        base: PolicyKind,
        policy: PolicyKind,
        frac: f64,
        spec: QuerySetSpec,
    ) -> Result<f64> {
        let base_run = self.run(kind, base, frac, spec)?;
        let run = self.run(kind, policy, frac, spec)?;
        Ok(run.relative_to(&base_run))
    }

    /// Runs a concatenation of query sets through one ASB buffer and
    /// samples the candidate-set size after every query — the paper's
    /// Figure 14 trace.
    pub fn candidate_trace(
        &mut self,
        kind: DatasetKind,
        frac: f64,
        specs: &[QuerySetSpec],
    ) -> Result<Vec<(usize, usize)>> {
        let all_queries: Vec<(usize, Query)> = {
            let mut qs = Vec::new();
            for (phase, spec) in specs.iter().enumerate() {
                for q in self.queries(kind, *spec)? {
                    qs.push((phase, q));
                }
            }
            qs
        };
        let h = self.harness(kind)?;
        let buffer_pages = h.buffer_pages(frac);
        h.tree
            .set_buffer(BufferManager::with_policy(PolicyKind::Asb, buffer_pages));
        let mut trace = Vec::with_capacity(all_queries.len());
        for (i, (_phase, q)) in all_queries.iter().enumerate() {
            h.tree.execute(q)?;
            let size = h
                .tree
                .buffer()
                .and_then(|b| b.candidate_size())
                .expect("ASB exposes its candidate size");
            trace.push((i, size));
        }
        h.tree.take_buffer();
        Ok(trace)
    }

    /// Phase boundaries (query indices) for a concatenated trace.
    pub fn phase_boundaries(
        &mut self,
        kind: DatasetKind,
        specs: &[QuerySetSpec],
    ) -> Result<Vec<usize>> {
        let mut bounds = Vec::with_capacity(specs.len());
        let mut acc = 0usize;
        for spec in specs {
            acc += self.queries(kind, *spec)?.len();
            bounds.push(acc);
        }
        Ok(bounds)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asb_geom::SpatialCriterion;

    fn lab() -> Lab {
        Lab::new(Scale::Tiny, 42)
    }

    #[test]
    fn runs_are_cached() {
        let mut lab = lab();
        let spec = QuerySetSpec::uniform_windows(33);
        let a = lab
            .run(DatasetKind::Mainland, PolicyKind::Lru, 0.02, spec)
            .unwrap();
        let b = lab
            .run(DatasetKind::Mainland, PolicyKind::Lru, 0.02, spec)
            .unwrap();
        assert_eq!(a, b);
        assert_eq!(lab.runs.len(), 1);
    }

    #[test]
    fn answers_are_policy_independent() {
        let mut lab = lab();
        let spec = QuerySetSpec::uniform_windows(100);
        let base = lab
            .run(DatasetKind::Mainland, PolicyKind::Lru, 0.02, spec)
            .unwrap();
        for policy in [
            PolicyKind::Fifo,
            PolicyKind::LruP,
            PolicyKind::LruK { k: 2 },
            PolicyKind::Spatial(SpatialCriterion::Area),
            PolicyKind::Asb,
        ] {
            let r = lab.run(DatasetKind::Mainland, policy, 0.02, spec).unwrap();
            assert_eq!(r.result_objects, base.result_objects, "{policy:?}");
            assert_eq!(r.logical_reads, base.logical_reads, "{policy:?}");
        }
    }

    #[test]
    fn bigger_buffers_mean_fewer_accesses() {
        let mut lab = lab();
        let spec = QuerySetSpec::uniform_windows(33);
        // The tiny tree has ~70 pages; pick fractions that produce clearly
        // different buffer sizes (the paper's 0.3%/4.7% both round to the
        // 4-page floor at this scale).
        let small = lab
            .run(DatasetKind::Mainland, PolicyKind::Lru, 0.05, spec)
            .unwrap();
        let large = lab
            .run(DatasetKind::Mainland, PolicyKind::Lru, 0.5, spec)
            .unwrap();
        assert!(large.buffer_pages > small.buffer_pages);
        assert!(large.disk_accesses < small.disk_accesses);
    }

    #[test]
    fn gain_of_lru_over_itself_is_zero() {
        let mut lab = lab();
        let spec = QuerySetSpec::uniform_points();
        let g = lab
            .gain(DatasetKind::Mainland, PolicyKind::Lru, 0.02, spec)
            .unwrap();
        assert_eq!(g, 0.0);
    }

    #[test]
    fn query_volume_respects_the_papers_rule() {
        let mut lab = lab();
        let spec = QuerySetSpec::uniform_windows(33);
        let r = lab
            .run(
                DatasetKind::Mainland,
                PolicyKind::Lru,
                LARGEST_BUFFER_FRAC,
                spec,
            )
            .unwrap();
        // "about 10 to 20 times higher than the buffer size" — allow slack
        // for the calibration heuristic (clamping dominates at tiny scale).
        assert!(
            r.disk_accesses as f64 >= 5.0 * r.buffer_pages as f64,
            "accesses {} vs buffer {}",
            r.disk_accesses,
            r.buffer_pages
        );
    }

    #[test]
    fn candidate_trace_is_dense_and_bounded() {
        let mut lab = lab();
        let specs = [
            QuerySetSpec::uniform_windows(33),
            QuerySetSpec::intensified(asb_workload::QueryKind::Window { ex: 33 }),
        ];
        let trace = lab
            .candidate_trace(DatasetKind::Mainland, 0.047, &specs)
            .unwrap();
        let bounds = lab.phase_boundaries(DatasetKind::Mainland, &specs).unwrap();
        assert_eq!(trace.len(), *bounds.last().unwrap());
        let pages = lab.tree_pages(DatasetKind::Mainland).unwrap();
        let main_cap = (pages as f64 * 0.047).round() as usize; // upper bound
        for &(_, size) in &trace {
            assert!(size >= 1 && size <= main_cap);
        }
    }
}
