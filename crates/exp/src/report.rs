//! Typed figure tables with text and JSON rendering.

use serde::{Deserialize, Serialize};

/// One plotted series: a name (legend entry) and one value per x-position.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Series {
    /// Legend label, e.g. `"LRU-2"` or `"buffer 0.6%"`.
    pub name: String,
    /// `(x-label, value)` pairs in plot order.
    pub points: Vec<(String, f64)>,
}

/// A reproduction of one diagram of the paper: labelled series over a
/// shared x-axis.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FigureTable {
    /// Figure identity, e.g. `"fig7"`.
    pub id: String,
    /// Human-readable title, e.g. `"Performance gain, uniform distribution,
    /// database 1, 0.6% buffer"`.
    pub title: String,
    /// Meaning of the x axis (usually "query set").
    pub x_label: String,
    /// Meaning of the values (usually "gain vs LRU [%]").
    pub y_label: String,
    /// The series.
    pub series: Vec<Series>,
}

impl FigureTable {
    /// Renders the table as aligned monospace text: rows = x positions,
    /// one column per series.
    pub fn render_text(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(out, "## {} — {}", self.id, self.title);
        let _ = writeln!(out, "   ({}; values: {})", self.x_label, self.y_label);
        if self.series.is_empty() {
            let _ = writeln!(out, "   (no data)");
            return out;
        }
        let x_labels: Vec<&str> = self.series[0]
            .points
            .iter()
            .map(|(x, _)| x.as_str())
            .collect();
        let x_width = x_labels
            .iter()
            .map(|l| l.len())
            .chain([self.x_label.len()])
            .max()
            .unwrap_or(8)
            .max(8);
        let col_width = self
            .series
            .iter()
            .map(|s| s.name.len())
            .max()
            .unwrap_or(8)
            .max(8);
        let _ = write!(out, "{:<x_width$}", self.x_label);
        for s in &self.series {
            let _ = write!(out, " | {:>col_width$}", s.name);
        }
        let _ = writeln!(out);
        let _ = writeln!(
            out,
            "{}",
            "-".repeat(x_width + self.series.len() * (col_width + 3))
        );
        for (row, x) in x_labels.iter().enumerate() {
            let _ = write!(out, "{x:<x_width$}");
            for s in &self.series {
                match s.points.get(row) {
                    Some((_, v)) => {
                        let _ = write!(out, " | {:>col_width$.1}", v);
                    }
                    None => {
                        let _ = write!(out, " | {:>col_width$}", "-");
                    }
                }
            }
            let _ = writeln!(out);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> FigureTable {
        FigureTable {
            id: "fig7".into(),
            title: "demo".into(),
            x_label: "query set".into(),
            y_label: "gain vs LRU [%]".into(),
            series: vec![
                Series {
                    name: "A".into(),
                    points: vec![("U-P".into(), 12.5), ("U-W-33".into(), 30.0)],
                },
                Series {
                    name: "LRU-2".into(),
                    points: vec![("U-P".into(), 20.0), ("U-W-33".into(), 1.25)],
                },
            ],
        }
    }

    #[test]
    fn text_rendering_contains_all_cells() {
        let text = table().render_text();
        for needle in [
            "fig7", "U-P", "U-W-33", "A", "LRU-2", "12.5", "30.0", "20.0", "1.2",
        ] {
            assert!(text.contains(needle), "missing {needle} in:\n{text}");
        }
    }

    #[test]
    fn rows_align_with_first_series() {
        let text = table().render_text();
        let lines: Vec<&str> = text.lines().collect();
        // Header + separator + 2 data rows + 2 title lines.
        assert_eq!(lines.len(), 6);
    }

    #[test]
    fn json_roundtrip() {
        let t = table();
        let json = serde_json::to_string(&t).unwrap();
        let back: FigureTable = serde_json::from_str(&json).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn empty_table_renders() {
        let t = FigureTable {
            id: "figX".into(),
            title: "empty".into(),
            x_label: "x".into(),
            y_label: "y".into(),
            series: vec![],
        };
        assert!(t.render_text().contains("no data"));
    }
}
