//! One function per data figure of the paper.

use crate::lab::{Lab, BUFFER_FRACS};
use crate::report::{FigureTable, Series};
use asb_core::{PolicyKind, SpatialCriterion};
use asb_storage::Result;
use asb_workload::{DatasetKind, QueryKind, QuerySetSpec, Scale};

/// The data figures of the paper (4–9 are the policy studies, 12–14 the
/// combination studies; 1–3 and 10–11 are illustrations with no data).
pub const FIGURE_IDS: [u8; 9] = [4, 5, 6, 7, 8, 9, 12, 13, 14];

/// Configuration of a reproduction pass.
#[derive(Debug, Clone, Copy)]
pub struct FigureConfig {
    /// Dataset scale (the paper's sizes are `Scale::Paper`; `Medium` is the
    /// default and preserves all relative effects).
    pub scale: Scale,
    /// Master seed for data and query generation.
    pub seed: u64,
}

impl Default for FigureConfig {
    fn default() -> Self {
        FigureConfig {
            scale: Scale::Medium,
            seed: 42,
        }
    }
}

const DB_BOTH: [(DatasetKind, &str); 2] = [
    (DatasetKind::Mainland, "database 1"),
    (DatasetKind::World, "database 2"),
];

/// The two buffer sizes most figures contrast.
const SMALL_LARGE: [(f64, &str); 2] = [(0.006, "0.6% buffer"), (0.047, "4.7% buffer")];

fn w(ex: u32) -> QueryKind {
    QueryKind::Window { ex }
}

/// `*-P, *-W-1000, *-W-333, *-W-100, *-W-33` for one distribution.
fn family(make: fn(QueryKind) -> QuerySetSpec) -> Vec<QuerySetSpec> {
    let mut sets = vec![make(QueryKind::Point)];
    for ex in [1000, 333, 100, 33] {
        sets.push(make(w(ex)));
    }
    sets
}

fn uniform_family() -> Vec<QuerySetSpec> {
    family(|k| QuerySetSpec {
        dist: asb_workload::Distribution::Uniform,
        kind: k,
    })
}

fn intensified_family() -> Vec<QuerySetSpec> {
    family(QuerySetSpec::intensified)
}

/// The cross-family sample used when a figure spans all distributions.
fn mixed_sets() -> Vec<QuerySetSpec> {
    vec![
        QuerySetSpec::uniform_points(),
        QuerySetSpec::uniform_windows(333),
        QuerySetSpec::uniform_windows(33),
        QuerySetSpec::identical_points(),
        QuerySetSpec::identical_windows(),
        QuerySetSpec::similar(QueryKind::Point),
        QuerySetSpec::similar(w(333)),
        QuerySetSpec::similar(w(33)),
        QuerySetSpec::intensified(QueryKind::Point),
        QuerySetSpec::intensified(w(33)),
        QuerySetSpec::independent(QueryKind::Point),
        QuerySetSpec::independent(w(33)),
    ]
}

fn gain_series(
    lab: &mut Lab,
    kind: DatasetKind,
    policy: PolicyKind,
    frac: f64,
    sets: &[QuerySetSpec],
    name: &str,
) -> Result<Series> {
    let mut points = Vec::with_capacity(sets.len());
    for s in sets {
        points.push((s.name(), lab.gain(kind, policy, frac, *s)?));
    }
    Ok(Series {
        name: name.to_string(),
        points,
    })
}

/// Figure 4: gain of LRU-P over LRU — both databases, uniform and
/// intensified families, all five buffer sizes.
pub fn fig4(lab: &mut Lab) -> Result<Vec<FigureTable>> {
    let mut tables = Vec::new();
    for (db, db_name) in DB_BOTH {
        for (sets, dist_name) in [
            (uniform_family(), "uniform"),
            (intensified_family(), "intensified"),
        ] {
            let mut series = Vec::with_capacity(BUFFER_FRACS.len());
            for &frac in &BUFFER_FRACS {
                series.push(gain_series(
                    lab,
                    db,
                    PolicyKind::LruP,
                    frac,
                    &sets,
                    &format!("{:.1}%", frac * 100.0),
                )?);
            }
            tables.push(FigureTable {
                id: "fig4".into(),
                title: format!("LRU-P gain vs LRU, {dist_name} distribution, {db_name}"),
                x_label: "query set".into(),
                y_label: "gain vs LRU [%]".into(),
                series,
            });
        }
    }
    Ok(tables)
}

/// Figure 5: gain of LRU-K (K = 2, 3, 5) over LRU on database 1.
pub fn fig5(lab: &mut Lab) -> Result<Vec<FigureTable>> {
    let sets = mixed_sets();
    let mut tables = Vec::new();
    for &(frac, frac_name) in &SMALL_LARGE {
        let mut series = Vec::new();
        for k in [2usize, 3, 5] {
            series.push(gain_series(
                lab,
                DatasetKind::Mainland,
                PolicyKind::LruK { k },
                frac,
                &sets,
                &format!("LRU-{k}"),
            )?);
        }
        tables.push(FigureTable {
            id: "fig5".into(),
            title: format!("LRU-K gain vs LRU, database 1, {frac_name}"),
            x_label: "query set".into(),
            y_label: "gain vs LRU [%]".into(),
            series,
        });
    }
    Ok(tables)
}

/// Figure 6: the five spatial criteria relative to criterion A (A = 100 %),
/// database 1, 0.3 % and 4.7 % buffers.
pub fn fig6(lab: &mut Lab) -> Result<Vec<FigureTable>> {
    let sets = mixed_sets();
    let mut tables = Vec::new();
    for &(frac, frac_name) in &[(0.003, "0.3% buffer"), (0.047, "4.7% buffer")] {
        let mut series = Vec::new();
        for &c in SpatialCriterion::ALL.iter() {
            let mut points = Vec::with_capacity(sets.len());
            for s in &sets {
                let v = lab.relative(
                    DatasetKind::Mainland,
                    PolicyKind::Spatial(SpatialCriterion::Area),
                    PolicyKind::Spatial(c),
                    frac,
                    *s,
                )?;
                points.push((s.name(), v));
            }
            series.push(Series {
                name: c.short_name().into(),
                points,
            });
        }
        tables.push(FigureTable {
            id: "fig6".into(),
            title: format!("Spatial criteria, accesses relative to A, database 1, {frac_name}"),
            x_label: "query set".into(),
            y_label: "disk accesses relative to A [%]".into(),
            series,
        });
    }
    Ok(tables)
}

/// The three contenders of Figures 7–9.
fn contenders() -> [(PolicyKind, &'static str); 3] {
    [
        (PolicyKind::LruP, "LRU-P"),
        (PolicyKind::Spatial(SpatialCriterion::Area), "A"),
        (PolicyKind::LruK { k: 2 }, "LRU-2"),
    ]
}

fn comparison_figure(
    lab: &mut Lab,
    id: &str,
    dist_name: &str,
    sets: &[QuerySetSpec],
) -> Result<Vec<FigureTable>> {
    let mut tables = Vec::new();
    for (db, db_name) in DB_BOTH {
        for (frac, frac_name) in SMALL_LARGE {
            let mut series = Vec::new();
            for &(p, name) in contenders().iter() {
                series.push(gain_series(lab, db, p, frac, sets, name)?);
            }
            tables.push(FigureTable {
                id: id.into(),
                title: format!("Gain vs LRU, {dist_name}, {db_name}, {frac_name}"),
                x_label: "query set".into(),
                y_label: "gain vs LRU [%]".into(),
                series,
            });
        }
    }
    Ok(tables)
}

/// Figure 7: LRU-P vs A vs LRU-2, uniform distribution.
pub fn fig7(lab: &mut Lab) -> Result<Vec<FigureTable>> {
    comparison_figure(lab, "fig7", "uniform distribution", &uniform_family())
}

/// Figure 8: identical and similar distributions.
pub fn fig8(lab: &mut Lab) -> Result<Vec<FigureTable>> {
    let mut sets = vec![
        QuerySetSpec::identical_points(),
        QuerySetSpec::identical_windows(),
    ];
    sets.extend(family(QuerySetSpec::similar));
    comparison_figure(lab, "fig8", "identical & similar distributions", &sets)
}

/// Figure 9: independent and intensified distributions.
pub fn fig9(lab: &mut Lab) -> Result<Vec<FigureTable>> {
    let mut sets = family(QuerySetSpec::independent);
    sets.extend(intensified_family());
    comparison_figure(
        lab,
        "fig9",
        "independent & intensified distributions",
        &sets,
    )
}

/// Figure 12: pure A vs the static combinations SLRU 50 % and SLRU 25 %.
pub fn fig12(lab: &mut Lab) -> Result<Vec<FigureTable>> {
    let sets = mixed_sets();
    let policies = [
        (PolicyKind::Spatial(SpatialCriterion::Area), "A"),
        (
            PolicyKind::Slru {
                candidate_fraction: 0.5,
                criterion: SpatialCriterion::Area,
            },
            "SLRU 50%",
        ),
        (
            PolicyKind::Slru {
                candidate_fraction: 0.25,
                criterion: SpatialCriterion::Area,
            },
            "SLRU 25%",
        ),
    ];
    let mut tables = Vec::new();
    for &(frac, frac_name) in &SMALL_LARGE {
        let mut series = Vec::new();
        for &(p, name) in policies.iter() {
            series.push(gain_series(
                lab,
                DatasetKind::Mainland,
                p,
                frac,
                &sets,
                name,
            )?);
        }
        tables.push(FigureTable {
            id: "fig12".into(),
            title: format!("Static candidate sets, database 1, {frac_name}"),
            x_label: "query set".into(),
            y_label: "gain vs LRU [%]".into(),
            series,
        });
    }
    Ok(tables)
}

/// Figure 13: A, SLRU 25 %, ASB and LRU-2 against LRU on both databases.
pub fn fig13(lab: &mut Lab) -> Result<Vec<FigureTable>> {
    let sets = mixed_sets();
    let policies = [
        (PolicyKind::Spatial(SpatialCriterion::Area), "A"),
        (
            PolicyKind::Slru {
                candidate_fraction: 0.25,
                criterion: SpatialCriterion::Area,
            },
            "SLRU",
        ),
        (PolicyKind::Asb, "ASB"),
        (PolicyKind::LruK { k: 2 }, "LRU-2"),
    ];
    let mut tables = Vec::new();
    for (db, db_name) in DB_BOTH {
        for (frac, frac_name) in SMALL_LARGE {
            let mut series = Vec::new();
            for &(p, name) in policies.iter() {
                series.push(gain_series(lab, db, p, frac, &sets, name)?);
            }
            tables.push(FigureTable {
                id: "fig13".into(),
                title: format!("A, SLRU, ASB, LRU-2 vs LRU, {db_name}, {frac_name}"),
                x_label: "query set".into(),
                y_label: "gain vs LRU [%]".into(),
                series,
            });
        }
    }
    Ok(tables)
}

/// Figure 14: candidate-set size over a concatenated INT-W-33 ∥ U-W-33 ∥
/// S-W-33 workload, sampled and bucket-averaged.
pub fn fig14(lab: &mut Lab) -> Result<Vec<FigureTable>> {
    let specs = [
        QuerySetSpec::intensified(w(33)),
        QuerySetSpec::uniform_windows(33),
        QuerySetSpec::similar(w(33)),
    ];
    let frac = 0.047;
    let trace = lab.candidate_trace(DatasetKind::Mainland, frac, &specs)?;
    let bounds = lab.phase_boundaries(DatasetKind::Mainland, &specs)?;
    // Average the trace into ~60 buckets to keep the table readable.
    let buckets = 60usize.min(trace.len().max(1));
    let per = trace.len().div_ceil(buckets).max(1);
    let mut points = Vec::new();
    for chunk in trace.chunks(per) {
        let idx = chunk[0].0;
        let avg = chunk.iter().map(|&(_, s)| s as f64).sum::<f64>() / chunk.len() as f64;
        let phase = match bounds.iter().position(|&b| idx < b) {
            Some(0) => "INT",
            Some(1) => "U",
            _ => "S",
        };
        points.push((format!("q{idx} [{phase}]"), avg));
    }
    Ok(vec![FigureTable {
        id: "fig14".into(),
        title: "ASB candidate-set size, mixed workload INT-W-33 | U-W-33 | S-W-33, database 1, 4.7% buffer"
            .into(),
        x_label: "query index [phase]".into(),
        y_label: "candidate-set size [pages]".into(),
        series: vec![Series { name: "candidate set".into(), points }],
    }])
}

/// Runs one figure by id (one of [`FIGURE_IDS`]).
///
/// # Panics
/// Panics if `id` names an illustration figure with no data (1–3, 10, 11);
/// storage or query failures during the runs are returned as errors.
pub fn figure(id: u8, lab: &mut Lab) -> Result<Vec<FigureTable>> {
    match id {
        4 => fig4(lab),
        5 => fig5(lab),
        6 => fig6(lab),
        7 => fig7(lab),
        8 => fig8(lab),
        9 => fig9(lab),
        12 => fig12(lab),
        13 => fig13(lab),
        14 => fig14(lab),
        other => panic!("figure {other} has no data (illustrations: 1-3, 10, 11)"),
    }
}

/// Runs every data figure.
pub fn all_figures(config: FigureConfig) -> Result<Vec<FigureTable>> {
    let mut lab = Lab::new(config.scale, config.seed);
    let mut tables = Vec::new();
    for &id in FIGURE_IDS.iter() {
        tables.extend(figure(id, &mut lab)?);
    }
    Ok(tables)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn family_names_are_ordered() {
        let names: Vec<String> = uniform_family().iter().map(|s| s.name()).collect();
        assert_eq!(names, ["U-P", "U-W-1000", "U-W-333", "U-W-100", "U-W-33"]);
    }

    #[test]
    fn fig14_trace_has_three_phases() {
        let mut lab = Lab::new(Scale::Tiny, 7);
        let tables = fig14(&mut lab).unwrap();
        assert_eq!(tables.len(), 1);
        let points = &tables[0].series[0].points;
        assert!(points.iter().any(|(l, _)| l.contains("[INT]")));
        assert!(points.iter().any(|(l, _)| l.contains("[U]")));
        assert!(points.iter().any(|(l, _)| l.contains("[S]")));
    }

    #[test]
    fn fig6_baseline_is_100_percent() {
        let mut lab = Lab::new(Scale::Tiny, 7);
        let tables = fig6(&mut lab).unwrap();
        for t in &tables {
            let a = t
                .series
                .iter()
                .find(|s| s.name == "A")
                .expect("A series present");
            for (x, v) in &a.points {
                assert!((v - 100.0).abs() < 1e-9, "{x}: A must be its own baseline");
            }
        }
    }

    #[test]
    #[should_panic(expected = "no data")]
    fn illustration_figures_panic() {
        let mut lab = Lab::new(Scale::Tiny, 7);
        let _ = figure(10, &mut lab);
    }
}
