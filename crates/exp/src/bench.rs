//! The replacement benchmark behind `BENCH_replacement.json`.
//!
//! One deterministic phase-change workload per golden database, replayed
//! through LRU, ASB and the expert arena at a fixed capacity. Everything
//! is a pure function of the configuration constants, so running
//! `probe --bench-json` on any machine regenerates the committed file
//! byte-for-byte — the file is a reviewable benchmark result, not a
//! snapshot of one developer's run.

use crate::trace::Trace;
use asb_core::PolicyKind;
use asb_storage::Result;
use asb_workload::{DatasetKind, PhasedWorkload, Scale};
use serde::{Deserialize, Serialize};

/// The two golden databases every committed benchmark trajectory runs on,
/// as `(label, kind)` pairs — the labels appear verbatim in the committed
/// JSON files (`BENCH_replacement.json`, `BENCH_serve.json`).
pub const GOLDEN_DBS: [(&str, DatasetKind); 2] = [
    ("mainland", DatasetKind::Mainland),
    ("world", DatasetKind::World),
];

/// Buffer capacity (pages) used for every benchmark replay.
pub const BENCH_CAPACITY: usize = 12;
/// Seed of the benchmark workloads.
pub const BENCH_SEED: u64 = 42;
/// Queries per phase of the adversarial workload.
pub const BENCH_QUERIES_PER_PHASE: usize = 80;

/// One `(database, policy)` benchmark row.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchEntry {
    /// Database name (`"mainland"` / `"world"`).
    pub db: String,
    /// Policy label (`"LRU"` / `"ASB"` / `"ARENA"`).
    pub policy: String,
    /// Logical page reads of the replay.
    pub logical_reads: u64,
    /// Buffer misses (physical reads on a fault-free store).
    pub misses: u64,
    /// Hit rate in `[0, 1]`.
    pub hit_rate: f64,
    /// Cumulative regret versus the best expert in hindsight (misses
    /// minus the best expert's ghost misses; can be negative). Zero for
    /// non-arena policies, which track no counterfactuals.
    pub regret: i64,
    /// Number of arena authority switches (zero for non-arena policies).
    pub authority_switches: u64,
}

/// The full benchmark: configuration header plus one row per
/// `(database, policy)` pair.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReplacementBench {
    /// Workload label (phases included), e.g.
    /// `"phase-change[U-W-33+INT-P+ID-W+IND-W-100+U-P]"`.
    pub workload: String,
    /// Seed the workloads were generated from.
    pub seed: u64,
    /// Buffer capacity in pages.
    pub capacity: usize,
    /// Queries per phase.
    pub queries_per_phase: usize,
    /// Benchmark rows, databases outer, policies inner.
    pub entries: Vec<BenchEntry>,
}

/// Runs the replacement benchmark: the adversarial phase-change workload
/// on both golden databases, replayed through LRU, ASB and the default
/// expert arena.
pub fn replacement_bench(
    seed: u64,
    capacity: usize,
    queries_per_phase: usize,
) -> Result<ReplacementBench> {
    let workload = PhasedWorkload::adversarial(queries_per_phase);
    let mut entries = Vec::new();
    for (name, db) in GOLDEN_DBS {
        let trace = Trace::record_phased(db, Scale::Tiny, seed, &workload)?;
        for policy in [PolicyKind::Lru, PolicyKind::Asb, PolicyKind::Arena] {
            let out = trace.replay_sequential(policy, capacity)?;
            let (regret, switches) = out
                .arena
                .as_ref()
                .map_or((0, 0), |a| (a.regret(), a.switches));
            entries.push(BenchEntry {
                db: name.to_string(),
                policy: policy.label(),
                logical_reads: out.stats.logical_reads,
                misses: out.stats.misses,
                hit_rate: out.stats.hit_ratio(),
                regret,
                authority_switches: switches,
            });
        }
    }
    Ok(ReplacementBench {
        workload: workload.label(),
        seed,
        capacity,
        queries_per_phase,
        entries,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_is_reproducible_and_arena_beats_asb() {
        let a = replacement_bench(BENCH_SEED, BENCH_CAPACITY, BENCH_QUERIES_PER_PHASE).unwrap();
        let b = replacement_bench(BENCH_SEED, BENCH_CAPACITY, BENCH_QUERIES_PER_PHASE).unwrap();
        assert_eq!(a, b, "benchmark must be a pure function of its config");
        assert_eq!(a.entries.len(), 6);
        for db in ["mainland", "world"] {
            let row = |policy: &str| {
                a.entries
                    .iter()
                    .find(|e| e.db == db && e.policy == policy)
                    .unwrap()
            };
            let (lru, asb, arena) = (row("LRU"), row("ASB"), row("ARENA"));
            assert_eq!(lru.logical_reads, asb.logical_reads);
            assert_eq!(lru.logical_reads, arena.logical_reads);
            // The acceptance bar: the arena strictly beats plain ASB on
            // both committed phase-change workloads.
            assert!(
                arena.misses < asb.misses,
                "{db}: arena {} vs asb {}",
                arena.misses,
                asb.misses
            );
            assert!(arena.regret.unsigned_abs() <= 32, "{db}: {}", arena.regret);
            assert!(arena.authority_switches > 0);
            assert_eq!(lru.regret, 0);
            assert_eq!(asb.authority_switches, 0);
        }
    }
}
