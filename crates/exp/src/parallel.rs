//! Parallel experiment runner.
//!
//! Every experiment cell — one `(database, policy, buffer fraction, query
//! set)` combination — is an independent computation: each worker thread
//! owns a private [`Lab`], so cells never share mutable state and the
//! result of a cell is a pure function of `(scale, seed, cell)`. Fanning
//! cells across threads therefore changes wall-clock time only; the figures
//! produced are identical to a sequential run (asserted by the tests).
//!
//! Work is distributed by an atomic cursor over the cell list, so slow
//! cells (large buffers, window queries) do not leave threads idle behind a
//! static partition.

use crate::lab::{Lab, RunResult};
use asb_core::PolicyKind;
use asb_storage::sync::{AtomicUsize, Mutex, Ordering};
use asb_storage::Result;
use asb_workload::{DatasetKind, QuerySetSpec, Scale};

/// One experiment cell: the coordinates of a single figure data point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExperimentCell {
    /// Database the tree is built from (paper: DB 1 / DB 2).
    pub db: DatasetKind,
    /// Replacement policy under test.
    pub policy: PolicyKind,
    /// Buffer size as a fraction of the tree's page count.
    pub frac: f64,
    /// Query-set family to replay.
    pub spec: QuerySetSpec,
}

/// Runs every cell and returns results in cell order.
///
/// With `threads == 1` this is a plain sequential loop over one [`Lab`]
/// (and benefits from its run cache); with more threads, each worker builds
/// its own `Lab` for the same `(scale, seed)` and pulls cells from a shared
/// queue. Results are deterministic either way.
///
/// # Errors
/// Returns the first storage error raised by any cell (in cell order);
/// remaining cells may or may not have run.
///
/// # Panics
/// Panics if `threads == 0`, or if a worker thread panics (experiment
/// failures propagate rather than producing partial figures).
pub fn run_cells(
    scale: Scale,
    seed: u64,
    threads: usize,
    cells: &[ExperimentCell],
) -> Result<Vec<RunResult>> {
    assert!(threads >= 1, "need at least one worker thread");
    if threads == 1 || cells.len() <= 1 {
        let mut lab = Lab::new(scale, seed);
        let mut out = Vec::with_capacity(cells.len());
        for c in cells {
            out.push(lab.run(c.db, c.policy, c.frac, c.spec)?);
        }
        return Ok(out);
    }

    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<Result<RunResult>>>> =
        cells.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|s| {
        for _ in 0..threads.min(cells.len()) {
            s.spawn(|| {
                let mut lab = Lab::new(scale, seed);
                loop {
                    // relaxed-ok: the cursor only hands out unique indices;
                    // the scope join (not the counter) publishes results.
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(cell) = cells.get(i) else { break };
                    let result = lab.run(cell.db, cell.policy, cell.frac, cell.spec);
                    *slots[i].lock() = Some(result);
                }
            });
        }
    });
    slots
        .into_iter()
        .map(|m| m.into_inner().expect("every cell computed"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use asb_workload::QuerySetSpec;

    fn cells() -> Vec<ExperimentCell> {
        use asb_workload::QueryKind;
        let specs = [
            QuerySetSpec::intensified(QueryKind::Point),
            QuerySetSpec::uniform_windows(100),
        ];
        let policies = [PolicyKind::Lru, PolicyKind::Asb, PolicyKind::LruK { k: 2 }];
        let mut out = Vec::new();
        for spec in specs {
            for policy in policies {
                out.push(ExperimentCell {
                    db: DatasetKind::Mainland,
                    policy,
                    frac: 0.03,
                    spec,
                });
            }
        }
        out
    }

    #[test]
    fn parallel_results_equal_sequential_results() {
        let cells = cells();
        let sequential = run_cells(Scale::Tiny, 42, 1, &cells).unwrap();
        let parallel = run_cells(Scale::Tiny, 42, 3, &cells).unwrap();
        assert_eq!(parallel, sequential);
    }

    #[test]
    fn results_come_back_in_cell_order() {
        let cells = cells();
        let results = run_cells(Scale::Tiny, 42, 2, &cells).unwrap();
        assert_eq!(results.len(), cells.len());
        // LRU is its own baseline: gain over itself is zero.
        let lru = results[0];
        assert_eq!(lru.gain_over(&lru), 0.0);
    }
}
