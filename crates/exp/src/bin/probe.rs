//! `probe` — inspect one experiment cell in detail.
//!
//! ```text
//! probe [--scale S] [--seed N] [--db 1|2] [--frac F] [--set NAME]
//!       [--threads N] [--shards M] [--flusher HIGH,LOW,BATCH]
//!       [--bench-json PATH]
//! ```
//!
//! Prints, for every policy, the disk accesses, hit ratio and I/O split of
//! the chosen query set — the raw numbers behind the figures, useful when
//! calibrating the synthetic workloads against the paper's described
//! behaviour.
//!
//! `--threads N` computes the per-policy cells on N worker threads (same
//! numbers, less wall-clock). `--shards M` additionally replays the query
//! set against a sharded buffer pool with M shards served by N threads and
//! reports the pool-wide statistics.
//!
//! `--flusher HIGH,LOW,BATCH` runs a synthetic write-heavy demo with a
//! background flusher at the given watermark fractions and drain batch
//! size, reporting how much dirty-page draining moved off the eviction
//! path (e.g. `--flusher 0.5,0.25,16`).
//!
//! `--bench-json PATH` runs the deterministic replacement benchmark
//! (LRU/ASB/ARENA on the phase-change workload over both golden
//! databases) and writes it as JSON — this regenerates the repo's
//! committed `BENCH_replacement.json` byte-for-byte. With this flag the
//! per-policy table is skipped.

use asb_core::{PolicyKind, ShardedBuffer, SpatialCriterion};
use asb_exp::{
    replacement_bench, run_cells, ExperimentCell, BENCH_CAPACITY, BENCH_QUERIES_PER_PHASE,
    BENCH_SEED,
};
use asb_rtree::RTree;
use asb_storage::DiskManager;
use asb_workload::{Dataset, DatasetKind, Distribution, QueryKind, QuerySetSpec, Scale};
use std::process::ExitCode;

fn spec_by_name(name: &str) -> Option<QuerySetSpec> {
    let (dist, rest) = if let Some(r) = name.strip_prefix("IND-") {
        (Distribution::Independent, r)
    } else if let Some(r) = name.strip_prefix("INT-") {
        (Distribution::Intensified, r)
    } else if let Some(r) = name.strip_prefix("ID-") {
        (Distribution::Identical, r)
    } else if let Some(r) = name.strip_prefix("U-") {
        (Distribution::Uniform, r)
    } else if let Some(r) = name.strip_prefix("S-") {
        (Distribution::Similar, r)
    } else {
        return None;
    };
    let kind = match rest {
        "P" => QueryKind::Point,
        "W" => QueryKind::ObjectWindow,
        w => QueryKind::Window {
            ex: w.strip_prefix("W-")?.parse().ok()?,
        },
    };
    Some(QuerySetSpec { dist, kind })
}

fn main() -> ExitCode {
    let mut scale = Scale::Medium;
    let mut seed = 42u64;
    let mut db = DatasetKind::Mainland;
    let mut frac = 0.047f64;
    let mut set = "INT-P".to_string();
    let mut threads = 1usize;
    let mut shards = 0usize;
    let mut flusher: Option<(f64, f64, usize)> = None;
    let mut bench_json: Option<String> = None;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut next = || it.next().ok_or_else(|| format!("{arg} needs a value"));
        let r: Result<(), String> = (|| {
            match arg.as_str() {
                "--scale" => {
                    scale = match next()?.as_str() {
                        "tiny" => Scale::Tiny,
                        "small" => Scale::Small,
                        "medium" => Scale::Medium,
                        "large" => Scale::Large,
                        "paper" => Scale::Paper,
                        o => return Err(format!("unknown scale {o}")),
                    }
                }
                "--seed" => seed = next()?.parse().map_err(|e| format!("{e}"))?,
                "--db" => {
                    db = match next()?.as_str() {
                        "1" => DatasetKind::Mainland,
                        "2" => DatasetKind::World,
                        o => return Err(format!("unknown db {o}")),
                    }
                }
                "--frac" => frac = next()?.parse().map_err(|e| format!("{e}"))?,
                "--set" => {
                    let v = next()?;
                    set = v.clone();
                    spec_by_name(&v).ok_or(format!("unknown query set {v}"))?;
                }
                "--threads" => {
                    threads = next()?.parse().map_err(|e| format!("{e}"))?;
                    if threads == 0 {
                        return Err("--threads must be at least 1".into());
                    }
                }
                "--shards" => {
                    shards = next()?.parse().map_err(|e| format!("{e}"))?;
                    if shards == 0 {
                        return Err("--shards must be at least 1".into());
                    }
                }
                "--flusher" => {
                    let v = next()?;
                    let parts: Vec<&str> = v.split(',').collect();
                    let [h, l, b] = parts.as_slice() else {
                        return Err(format!("--flusher expects HIGH,LOW,BATCH, got {v}"));
                    };
                    let high: f64 = h.parse().map_err(|e| format!("HIGH: {e}"))?;
                    let low: f64 = l.parse().map_err(|e| format!("LOW: {e}"))?;
                    let batch: usize = b.parse().map_err(|e| format!("BATCH: {e}"))?;
                    if !(0.0..=1.0).contains(&low) || !(low..=1.0).contains(&high) || batch == 0 {
                        return Err(format!(
                            "--flusher needs 0 <= LOW <= HIGH <= 1 and BATCH >= 1, got {v}"
                        ));
                    }
                    flusher = Some((high, low, batch));
                }
                "--bench-json" => bench_json = Some(next()?),
                o => return Err(format!("unknown argument {o}")),
            }
            Ok(())
        })();
        if let Err(e) = r {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    }
    let spec = spec_by_name(&set).expect("validated above");

    if let Some(path) = bench_json {
        let bench = match replacement_bench(BENCH_SEED, BENCH_CAPACITY, BENCH_QUERIES_PER_PHASE) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("error: benchmark failed: {e}");
                return ExitCode::FAILURE;
            }
        };
        let json = serde_json::to_string_pretty(&bench).expect("serialize benchmark");
        if let Err(e) = std::fs::write(&path, json + "\n") {
            eprintln!("error: {path}: {e}");
            return ExitCode::FAILURE;
        }
        for e in &bench.entries {
            println!(
                "# bench {}/{:<6} misses={:<4} hit%={:<5.1} regret={:<4} switches={}",
                e.db,
                e.policy,
                e.misses,
                100.0 * e.hit_rate,
                e.regret,
                e.authority_switches,
            );
        }
        println!("# wrote {path}");
        return ExitCode::SUCCESS;
    }

    let dataset = Dataset::generate(db, scale, seed);
    let pages = RTree::bulk_load(DiskManager::new(), dataset.items())
        .expect("bulk load")
        .page_count();
    let buffer_pages = ((pages as f64 * frac).round() as usize).max(4);
    println!(
        "# db={db:?} scale={scale:?} pages={pages} buffer={frac} (= {buffer_pages} pages) \
         set={set} threads={threads}"
    );
    let policies = [
        PolicyKind::Lru,
        PolicyKind::Fifo,
        PolicyKind::Clock,
        PolicyKind::LruT,
        PolicyKind::LruP,
        PolicyKind::TwoQ,
        PolicyKind::LruK { k: 2 },
        PolicyKind::Spatial(SpatialCriterion::Area),
        PolicyKind::Slru {
            candidate_fraction: 0.25,
            criterion: SpatialCriterion::Area,
        },
        PolicyKind::Asb,
        PolicyKind::Arena,
    ];
    println!(
        "{:<10} {:>9} {:>9} {:>7} {:>9} {:>9} {:>9} {:>8}",
        "policy", "accesses", "logical", "hit%", "random", "seq", "sim[ms]", "gain%"
    );
    let cells: Vec<ExperimentCell> = policies
        .iter()
        .map(|&policy| ExperimentCell {
            db,
            policy,
            frac,
            spec,
        })
        .collect();
    let results = match run_cells(scale, seed, threads, &cells) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: experiment failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let base = results[0]; // cells[0] is LRU, the paper's baseline
    for (p, r) in policies.iter().zip(&results) {
        println!(
            "{:<10} {:>9} {:>9} {:>7.1} {:>9} {:>9} {:>9.0} {:>8.1}",
            p.label(),
            r.disk_accesses,
            r.logical_reads,
            100.0 * r.hits as f64 / r.logical_reads as f64,
            r.io.random_reads,
            r.io.sequential_reads,
            r.io.simulated_ms,
            r.gain_over(&base),
        );
    }

    if shards > 0 {
        if let Err(e) = sharded_replay(
            &dataset,
            spec,
            seed,
            buffer_pages.max(shards),
            shards,
            threads.max(2),
        ) {
            eprintln!("error: sharded replay failed: {e}");
            return ExitCode::FAILURE;
        }
    }
    if let Some((high, low, batch)) = flusher {
        if let Err(e) = flusher_demo(high, low, batch, shards.max(2), seed) {
            eprintln!("error: flusher demo failed: {e}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}

/// Synthetic write-heavy demo for the background flusher: buffered writes
/// dirty a small sharded pool much faster than reads alone would clean
/// it; a background [`Flusher`](asb_core::Flusher) drains dirty frames at
/// the configured watermarks so evictions find clean victims. Prints the
/// drain accounting next to the counterfactual (no flusher): the
/// difference is write-back work moved off the eviction path.
fn flusher_demo(
    high: f64,
    low: f64,
    batch: usize,
    shards: usize,
    seed: u64,
) -> asb_storage::Result<()> {
    use asb_core::{Flusher, FlusherConfig};
    use asb_geom::SpatialStats;
    use asb_storage::{AccessContext, Page, PageMeta, PageStore, QueryId};
    use bytes::Bytes;

    const PAGES: u64 = 512;
    const CAPACITY: usize = 64;
    const WRITES: u64 = 4_000;

    // The flusher runs on its own thread in production (`Flusher::spawn`);
    // here each run is driven on a deterministic cadence instead, so the
    // comparison is a pure function of the seed rather than of how often
    // the OS happens to schedule a background thread.
    let run = |cfg: Option<FlusherConfig>| -> asb_storage::Result<_> {
        let mut disk = DiskManager::new();
        let ids: Vec<_> = (0..PAGES)
            .map(|i| {
                disk.allocate(
                    PageMeta::data(SpatialStats::EMPTY),
                    Bytes::from(vec![i as u8]),
                )
            })
            .collect::<asb_storage::Result<_>>()?;
        disk.reset_stats();
        let pool = ShardedBuffer::new(disk, PolicyKind::Lru, CAPACITY, shards);
        let mut flusher = cfg.map(|cfg| Flusher::new(pool.clone(), cfg));
        let mut state = seed | 1;
        for i in 0..WRITES {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let id = ids[(state % PAGES) as usize];
            let page = Page::new(
                id,
                PageMeta::data(SpatialStats::EMPTY),
                Bytes::from(vec![i as u8]),
            )?;
            pool.write_buffered(page)?;
            if i % 16 == 0 {
                drop(pool.fetch(
                    ids[(i % PAGES) as usize],
                    AccessContext::query(QueryId::new(i)),
                )?);
            }
            if let Some(f) = flusher.as_mut() {
                if i % 64 == 63 {
                    f.run_once()?;
                }
            }
        }
        Ok((pool.stats(), pool.dirty_count(), flusher.map(|f| f.stats())))
    };

    let (base_stats, base_dirty, _) = run(None)?;
    let cfg = FlusherConfig {
        high_watermark: high,
        low_watermark: low,
        max_batch: batch,
        checkpoint_after_drain: false,
    };
    let (stats, dirty, fl) = run(Some(cfg))?;
    let fl = fl.expect("flusher ran");
    // `writebacks` counts flush-path and eviction-path write-backs alike;
    // subtracting the flusher's drains isolates the eviction-time rest.
    let evict_wb = stats.writebacks - fl.pages_flushed;
    println!(
        "# flusher demo: {WRITES} buffered writes over {PAGES} pages, capacity {CAPACITY}, \
         {shards} shards, watermarks {high}/{low}, batch {batch}"
    );
    println!(
        "#   without flusher: {} eviction-path write-backs, {} dirty at end",
        base_stats.writebacks, base_dirty
    );
    println!(
        "#   with flusher:    {evict_wb} eviction-path write-backs, {dirty} dirty at end \
         ({} drained ahead of eviction in {} pass(es))",
        fl.pages_flushed, fl.passes
    );
    Ok(())
}

/// Replays the query set against one sharded pool served by several
/// threads and prints the pool-wide statistics.
fn sharded_replay(
    dataset: &Dataset,
    spec: QuerySetSpec,
    seed: u64,
    capacity: usize,
    shards: usize,
    threads: usize,
) -> asb_storage::Result<()> {
    let queries = spec.generate(dataset, 2_000, seed ^ 0x0051_5e75);
    for policy in [PolicyKind::Lru, PolicyKind::Asb] {
        let tree = RTree::bulk_load(DiskManager::new(), dataset.items())?;
        let snap = tree.snapshot();
        let pool = ShardedBuffer::new(tree.into_store(), policy, capacity, shards);
        pool.reset_io_stats();
        let started = std::time::Instant::now();
        let worker_results = std::thread::scope(|s| {
            let handles: Vec<_> = (0..threads)
                .map(|t| {
                    let pool = pool.clone();
                    let queries = &queries;
                    s.spawn(move || -> asb_storage::Result<()> {
                        let mut view = RTree::attach(pool, snap);
                        view.seed_query_counter((t as u64) << 32);
                        for q in queries.iter().skip(t).step_by(threads) {
                            view.execute(q)?;
                        }
                        Ok(())
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| match h.join() {
                    Ok(r) => r,
                    Err(payload) => std::panic::resume_unwind(payload),
                })
                .collect::<Vec<_>>()
        });
        for r in worker_results {
            r?;
        }
        let elapsed = started.elapsed();
        let stats = pool.stats();
        let io = pool.io_stats();
        println!(
            "# sharded replay: policy={} shards={shards} threads={threads} capacity={capacity} \
             logical={} hit%={:.1} disk={} wall={elapsed:.1?}",
            policy.label(),
            stats.logical_reads,
            100.0 * stats.hit_ratio(),
            io.reads,
        );
    }
    Ok(())
}
