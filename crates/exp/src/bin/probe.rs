//! `probe` — inspect one experiment cell in detail.
//!
//! ```text
//! probe [--scale S] [--seed N] [--db 1|2] [--frac F] [--set NAME]
//!       [--threads N] [--shards M]
//! ```
//!
//! Prints, for every policy, the disk accesses, hit ratio and I/O split of
//! the chosen query set — the raw numbers behind the figures, useful when
//! calibrating the synthetic workloads against the paper's described
//! behaviour.
//!
//! `--threads N` computes the per-policy cells on N worker threads (same
//! numbers, less wall-clock). `--shards M` additionally replays the query
//! set against a sharded buffer pool with M shards served by N threads and
//! reports the pool-wide statistics.

use asb_core::{PolicyKind, ShardedBuffer, SpatialCriterion};
use asb_exp::{run_cells, ExperimentCell};
use asb_rtree::RTree;
use asb_storage::DiskManager;
use asb_workload::{Dataset, DatasetKind, Distribution, QueryKind, QuerySetSpec, Scale};
use std::process::ExitCode;

fn spec_by_name(name: &str) -> Option<QuerySetSpec> {
    let (dist, rest) = if let Some(r) = name.strip_prefix("IND-") {
        (Distribution::Independent, r)
    } else if let Some(r) = name.strip_prefix("INT-") {
        (Distribution::Intensified, r)
    } else if let Some(r) = name.strip_prefix("ID-") {
        (Distribution::Identical, r)
    } else if let Some(r) = name.strip_prefix("U-") {
        (Distribution::Uniform, r)
    } else if let Some(r) = name.strip_prefix("S-") {
        (Distribution::Similar, r)
    } else {
        return None;
    };
    let kind = match rest {
        "P" => QueryKind::Point,
        "W" => QueryKind::ObjectWindow,
        w => QueryKind::Window {
            ex: w.strip_prefix("W-")?.parse().ok()?,
        },
    };
    Some(QuerySetSpec { dist, kind })
}

fn main() -> ExitCode {
    let mut scale = Scale::Medium;
    let mut seed = 42u64;
    let mut db = DatasetKind::Mainland;
    let mut frac = 0.047f64;
    let mut set = "INT-P".to_string();
    let mut threads = 1usize;
    let mut shards = 0usize;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut next = || it.next().ok_or_else(|| format!("{arg} needs a value"));
        let r: Result<(), String> = (|| {
            match arg.as_str() {
                "--scale" => {
                    scale = match next()?.as_str() {
                        "tiny" => Scale::Tiny,
                        "small" => Scale::Small,
                        "medium" => Scale::Medium,
                        "large" => Scale::Large,
                        "paper" => Scale::Paper,
                        o => return Err(format!("unknown scale {o}")),
                    }
                }
                "--seed" => seed = next()?.parse().map_err(|e| format!("{e}"))?,
                "--db" => {
                    db = match next()?.as_str() {
                        "1" => DatasetKind::Mainland,
                        "2" => DatasetKind::World,
                        o => return Err(format!("unknown db {o}")),
                    }
                }
                "--frac" => frac = next()?.parse().map_err(|e| format!("{e}"))?,
                "--set" => {
                    let v = next()?;
                    set = v.clone();
                    spec_by_name(&v).ok_or(format!("unknown query set {v}"))?;
                }
                "--threads" => {
                    threads = next()?.parse().map_err(|e| format!("{e}"))?;
                    if threads == 0 {
                        return Err("--threads must be at least 1".into());
                    }
                }
                "--shards" => {
                    shards = next()?.parse().map_err(|e| format!("{e}"))?;
                    if shards == 0 {
                        return Err("--shards must be at least 1".into());
                    }
                }
                o => return Err(format!("unknown argument {o}")),
            }
            Ok(())
        })();
        if let Err(e) = r {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    }
    let spec = spec_by_name(&set).expect("validated above");

    let dataset = Dataset::generate(db, scale, seed);
    let pages = RTree::bulk_load(DiskManager::new(), dataset.items())
        .expect("bulk load")
        .page_count();
    let buffer_pages = ((pages as f64 * frac).round() as usize).max(4);
    println!(
        "# db={db:?} scale={scale:?} pages={pages} buffer={frac} (= {buffer_pages} pages) \
         set={set} threads={threads}"
    );
    let policies = [
        PolicyKind::Lru,
        PolicyKind::Fifo,
        PolicyKind::Clock,
        PolicyKind::LruT,
        PolicyKind::LruP,
        PolicyKind::TwoQ,
        PolicyKind::LruK { k: 2 },
        PolicyKind::Spatial(SpatialCriterion::Area),
        PolicyKind::Slru {
            candidate_fraction: 0.25,
            criterion: SpatialCriterion::Area,
        },
        PolicyKind::Asb,
    ];
    println!(
        "{:<10} {:>9} {:>9} {:>7} {:>9} {:>9} {:>9} {:>8}",
        "policy", "accesses", "logical", "hit%", "random", "seq", "sim[ms]", "gain%"
    );
    let cells: Vec<ExperimentCell> = policies
        .iter()
        .map(|&policy| ExperimentCell {
            db,
            policy,
            frac,
            spec,
        })
        .collect();
    let results = match run_cells(scale, seed, threads, &cells) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: experiment failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let base = results[0]; // cells[0] is LRU, the paper's baseline
    for (p, r) in policies.iter().zip(&results) {
        println!(
            "{:<10} {:>9} {:>9} {:>7.1} {:>9} {:>9} {:>9.0} {:>8.1}",
            p.label(),
            r.disk_accesses,
            r.logical_reads,
            100.0 * r.hits as f64 / r.logical_reads as f64,
            r.io.random_reads,
            r.io.sequential_reads,
            r.io.simulated_ms,
            r.gain_over(&base),
        );
    }

    if shards > 0 {
        if let Err(e) = sharded_replay(
            &dataset,
            spec,
            seed,
            buffer_pages.max(shards),
            shards,
            threads.max(2),
        ) {
            eprintln!("error: sharded replay failed: {e}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}

/// Replays the query set against one sharded pool served by several
/// threads and prints the pool-wide statistics.
fn sharded_replay(
    dataset: &Dataset,
    spec: QuerySetSpec,
    seed: u64,
    capacity: usize,
    shards: usize,
    threads: usize,
) -> asb_storage::Result<()> {
    let queries = spec.generate(dataset, 2_000, seed ^ 0x0051_5e75);
    for policy in [PolicyKind::Lru, PolicyKind::Asb] {
        let tree = RTree::bulk_load(DiskManager::new(), dataset.items())?;
        let snap = tree.snapshot();
        let pool = ShardedBuffer::new(tree.into_store(), policy, capacity, shards);
        pool.reset_io_stats();
        let started = std::time::Instant::now();
        let worker_results = std::thread::scope(|s| {
            let handles: Vec<_> = (0..threads)
                .map(|t| {
                    let pool = pool.clone();
                    let queries = &queries;
                    s.spawn(move || -> asb_storage::Result<()> {
                        let mut view = RTree::attach(pool, snap);
                        view.seed_query_counter((t as u64) << 32);
                        for q in queries.iter().skip(t).step_by(threads) {
                            view.execute(q)?;
                        }
                        Ok(())
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| match h.join() {
                    Ok(r) => r,
                    Err(payload) => std::panic::resume_unwind(payload),
                })
                .collect::<Vec<_>>()
        });
        for r in worker_results {
            r?;
        }
        let elapsed = started.elapsed();
        let stats = pool.stats();
        let io = pool.io_stats();
        println!(
            "# sharded replay: policy={} shards={shards} threads={threads} capacity={capacity} \
             logical={} hit%={:.1} disk={} wall={elapsed:.1?}",
            policy.label(),
            stats.logical_reads,
            100.0 * stats.hit_ratio(),
            io.reads,
        );
    }
    Ok(())
}
