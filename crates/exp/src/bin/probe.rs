//! `probe` — inspect one experiment cell in detail.
//!
//! ```text
//! probe [--scale S] [--seed N] [--db 1|2] [--frac F] [--set NAME]
//! ```
//!
//! Prints, for every policy, the disk accesses, hit ratio and I/O split of
//! the chosen query set — the raw numbers behind the figures, useful when
//! calibrating the synthetic workloads against the paper's described
//! behaviour.

use asb_core::{PolicyKind, SpatialCriterion};
use asb_exp::Lab;
use asb_workload::{DatasetKind, Distribution, QueryKind, QuerySetSpec, Scale};
use std::process::ExitCode;

fn spec_by_name(name: &str) -> Option<QuerySetSpec> {
    let (dist, rest) = if let Some(r) = name.strip_prefix("IND-") {
        (Distribution::Independent, r)
    } else if let Some(r) = name.strip_prefix("INT-") {
        (Distribution::Intensified, r)
    } else if let Some(r) = name.strip_prefix("ID-") {
        (Distribution::Identical, r)
    } else if let Some(r) = name.strip_prefix("U-") {
        (Distribution::Uniform, r)
    } else if let Some(r) = name.strip_prefix("S-") {
        (Distribution::Similar, r)
    } else {
        return None;
    };
    let kind = match rest {
        "P" => QueryKind::Point,
        "W" => QueryKind::ObjectWindow,
        w => QueryKind::Window { ex: w.strip_prefix("W-")?.parse().ok()? },
    };
    Some(QuerySetSpec { dist, kind })
}

fn main() -> ExitCode {
    let mut scale = Scale::Medium;
    let mut seed = 42u64;
    let mut db = DatasetKind::Mainland;
    let mut frac = 0.047f64;
    let mut set = "INT-P".to_string();
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut next = || it.next().ok_or_else(|| format!("{arg} needs a value"));
        let r: Result<(), String> = (|| {
            match arg.as_str() {
                "--scale" => {
                    scale = match next()?.as_str() {
                        "tiny" => Scale::Tiny,
                        "small" => Scale::Small,
                        "medium" => Scale::Medium,
                        "large" => Scale::Large,
                        "paper" => Scale::Paper,
                        o => return Err(format!("unknown scale {o}")),
                    }
                }
                "--seed" => seed = next()?.parse().map_err(|e| format!("{e}"))?,
                "--db" => {
                    db = match next()?.as_str() {
                        "1" => DatasetKind::Mainland,
                        "2" => DatasetKind::World,
                        o => return Err(format!("unknown db {o}")),
                    }
                }
                "--frac" => frac = next()?.parse().map_err(|e| format!("{e}"))?,
                "--set" => {
                    let v = next()?;
                    set = v.clone();
                    spec_by_name(&v).ok_or(format!("unknown query set {v}"))?;
                }
                o => return Err(format!("unknown argument {o}")),
            }
            Ok(())
        })();
        if let Err(e) = r {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    }
    let spec = spec_by_name(&set).expect("validated above");

    let mut lab = Lab::new(scale, seed);
    let pages = lab.tree_pages(db);
    println!(
        "# db={db:?} scale={scale:?} pages={pages} buffer={frac} (= {} pages) set={set}",
        ((pages as f64 * frac).round() as usize).max(4)
    );
    let policies = [
        PolicyKind::Lru,
        PolicyKind::Fifo,
        PolicyKind::Clock,
        PolicyKind::LruT,
        PolicyKind::LruP,
        PolicyKind::TwoQ,
        PolicyKind::LruK { k: 2 },
        PolicyKind::Spatial(SpatialCriterion::Area),
        PolicyKind::Slru { candidate_fraction: 0.25, criterion: SpatialCriterion::Area },
        PolicyKind::Asb,
    ];
    println!(
        "{:<10} {:>9} {:>9} {:>7} {:>9} {:>9} {:>9} {:>8}",
        "policy", "accesses", "logical", "hit%", "random", "seq", "sim[ms]", "gain%"
    );
    let base = lab.run(db, PolicyKind::Lru, frac, spec);
    for p in policies {
        let r = lab.run(db, p, frac, spec);
        println!(
            "{:<10} {:>9} {:>9} {:>7.1} {:>9} {:>9} {:>9.0} {:>8.1}",
            p.label(),
            r.disk_accesses,
            r.logical_reads,
            100.0 * r.hits as f64 / r.logical_reads as f64,
            r.io.random_reads,
            r.io.sequential_reads,
            r.io.simulated_ms,
            r.gain_over(&base),
        );
    }
    ExitCode::SUCCESS
}
