//! `trace` — record and replay access traces.
//!
//! ```text
//! trace record --out PATH [--db 1|2] [--scale tiny|small|medium|large|paper]
//!              [--seed S] [--set NAME] [--queries N] [--phased N]
//! trace replay PATH [--policy lru|fifo|clock|lru-2|slru|asb|arena] [--capacity N]
//!              [--shards M] [--fault-seed S] [--fault-rate R] [--weights PATH]
//! trace crash PATH [--policy NAME] [--capacity N] [--seed S]
//!             [--update-every K] [--checkpoint-interval N]
//!             [--max-accesses N] [--artifacts DIR]
//! ```
//!
//! `record` runs one workload unbuffered and writes its logical access
//! sequence; `--phased N` records the adversarial phase-change workload
//! (N queries per phase) instead of a single query set. `replay` pushes a
//! recorded trace through a buffer configuration and prints the resulting
//! statistics; for the arena it also prints the expert scoreboard, and
//! `--weights PATH` dumps the full per-access weight trajectory as CSV
//! (replays are deterministic, so the dump is bit-for-bit reproducible).
//! With `--fault-rate` the replay runs against a fault-injecting store
//! (chaos profile: transient faults, corruption, latency spikes) under
//! the default retry policy and additionally reports what was injected
//! and absorbed.
//!
//! `crash` turns the trace into a deterministic read/update workload
//! (seed-derived update selection) on a WAL-attached write-back buffer,
//! then kills the simulated process at **every** durable I/O point — in
//! both clean and torn variants — and verifies that recovery restores
//! exactly the committed prefix of the crash-free run. Exits non-zero on
//! any divergence, dumping the trace and surviving WAL to `--artifacts`.

use asb_core::PolicyKind;
use asb_exp::{crash_sweep, CrashConfig, Trace};
use asb_geom::SpatialCriterion;
use asb_storage::{FaultConfig, RetryPolicy};
use asb_workload::{DatasetKind, Distribution, PhasedWorkload, QueryKind, QuerySetSpec, Scale};
use std::process::ExitCode;

fn spec_by_name(name: &str) -> Option<QuerySetSpec> {
    let (dist, rest) = if let Some(r) = name.strip_prefix("IND-") {
        (Distribution::Independent, r)
    } else if let Some(r) = name.strip_prefix("INT-") {
        (Distribution::Intensified, r)
    } else if let Some(r) = name.strip_prefix("ID-") {
        (Distribution::Identical, r)
    } else if let Some(r) = name.strip_prefix("U-") {
        (Distribution::Uniform, r)
    } else if let Some(r) = name.strip_prefix("S-") {
        (Distribution::Similar, r)
    } else {
        return None;
    };
    let kind = match rest {
        "P" => QueryKind::Point,
        "W" => QueryKind::ObjectWindow,
        w => QueryKind::Window {
            ex: w.strip_prefix("W-")?.parse().ok()?,
        },
    };
    Some(QuerySetSpec { dist, kind })
}

fn policy_by_name(name: &str) -> Option<PolicyKind> {
    Some(match name {
        "lru" => PolicyKind::Lru,
        "fifo" => PolicyKind::Fifo,
        "clock" => PolicyKind::Clock,
        "lru-2" => PolicyKind::LruK { k: 2 },
        "slru" => PolicyKind::Slru {
            candidate_fraction: 0.25,
            criterion: SpatialCriterion::Area,
        },
        "asb" => PolicyKind::Asb,
        "arena" => PolicyKind::Arena,
        _ => return None,
    })
}

fn run() -> Result<(), String> {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("record") => record(args),
        Some("replay") => replay(args),
        Some("crash") => crash(args),
        Some("--help") | Some("-h") | None => {
            println!(
                "trace — record and replay access traces\n\n\
                 Usage:\n  trace record --out PATH [--db 1|2] [--scale NAME] [--seed S] \
                 [--set NAME] [--queries N]\n  trace replay PATH [--policy NAME] \
                 [--capacity N] [--shards M] [--fault-seed S] [--fault-rate R]\n  \
                 trace crash PATH [--policy NAME] [--capacity N] [--seed S] \
                 [--update-every K] [--checkpoint-interval N] [--max-accesses N] \
                 [--artifacts DIR]"
            );
            Ok(())
        }
        Some(other) => Err(format!("unknown subcommand {other:?} (try --help)")),
    }
}

fn record(mut it: impl Iterator<Item = String>) -> Result<(), String> {
    let mut out = None;
    let mut db = DatasetKind::Mainland;
    let mut scale = Scale::Tiny;
    let mut seed = 42u64;
    let mut set = "U-W-33".to_string();
    let mut queries = 200usize;
    let mut phased = None;
    while let Some(arg) = it.next() {
        let mut next = || it.next().ok_or(format!("{arg} needs a value"));
        match arg.as_str() {
            "--out" => out = Some(next()?),
            "--phased" => {
                phased = Some(
                    next()?
                        .parse::<usize>()
                        .map_err(|e| format!("bad phase size: {e}"))?,
                );
            }
            "--db" => {
                db = match next()?.as_str() {
                    "1" => DatasetKind::Mainland,
                    "2" => DatasetKind::World,
                    o => return Err(format!("unknown db {o}")),
                }
            }
            "--scale" => {
                scale = match next()?.as_str() {
                    "tiny" => Scale::Tiny,
                    "small" => Scale::Small,
                    "medium" => Scale::Medium,
                    "large" => Scale::Large,
                    "paper" => Scale::Paper,
                    o => return Err(format!("unknown scale {o}")),
                }
            }
            "--seed" => seed = next()?.parse().map_err(|e| format!("bad seed: {e}"))?,
            "--set" => set = next()?,
            "--queries" => {
                queries = next()?.parse().map_err(|e| format!("bad count: {e}"))?;
            }
            o => return Err(format!("unknown argument {o}")),
        }
    }
    let out = out.ok_or("record needs --out PATH")?;
    let trace = if let Some(per_phase) = phased {
        let workload = PhasedWorkload::adversarial(per_phase);
        Trace::record_phased(db, scale, seed, &workload).map_err(|e| e.to_string())?
    } else {
        let spec = spec_by_name(&set).ok_or(format!("unknown query set {set}"))?;
        Trace::record(db, scale, seed, spec, queries).map_err(|e| e.to_string())?
    };
    trace.save(&out).map_err(|e| format!("{out}: {e}"))?;
    eprintln!(
        "# recorded {} accesses over {} pages ({}) to {out}",
        trace.accesses.len(),
        trace.pages.len(),
        trace.label
    );
    Ok(())
}

fn replay(mut it: impl Iterator<Item = String>) -> Result<(), String> {
    let mut path = None;
    let mut policy = PolicyKind::Asb;
    let mut capacity = 32usize;
    let mut shards = 0usize;
    let mut fault_seed = 1u64;
    let mut fault_rate = 0.0f64;
    let mut weights_out: Option<String> = None;
    while let Some(arg) = it.next() {
        let mut next = || it.next().ok_or(format!("{arg} needs a value"));
        match arg.as_str() {
            "--weights" => weights_out = Some(next()?),
            "--policy" => {
                let v = next()?;
                policy = policy_by_name(&v).ok_or(format!("unknown policy {v}"))?;
            }
            "--capacity" => {
                capacity = next()?.parse().map_err(|e| format!("bad capacity: {e}"))?;
            }
            "--shards" => shards = next()?.parse().map_err(|e| format!("bad shards: {e}"))?,
            "--fault-seed" => {
                fault_seed = next()?.parse().map_err(|e| format!("bad seed: {e}"))?;
            }
            "--fault-rate" => {
                fault_rate = next()?.parse().map_err(|e| format!("bad rate: {e}"))?;
            }
            o if path.is_none() && !o.starts_with('-') => path = Some(arg),
            o => return Err(format!("unknown argument {o}")),
        }
    }
    let path = path.ok_or("replay needs a trace file path")?;
    let trace = Trace::load(&path)?;
    eprintln!(
        "# {path}: {} ({} pages, {} accesses)",
        trace.label,
        trace.pages.len(),
        trace.accesses.len()
    );
    if fault_rate > 0.0 {
        let out = trace
            .replay_with_faults(
                policy,
                capacity,
                FaultConfig::chaos(fault_seed, fault_rate),
                RetryPolicy::default(),
            )
            .map_err(|e| e.to_string())?;
        println!(
            "policy={policy:?} capacity={capacity} faults=chaos(seed={fault_seed}, rate={fault_rate})\n\
             logical={} hits={} misses={} retries={} corruptions={} give_ups={} wrong_payloads={}\n\
             injected: read_faults={} write_faults={} corruptions={} spikes={}",
            out.stats.logical_reads,
            out.stats.hits,
            out.stats.misses,
            out.stats.retries,
            out.stats.corruptions,
            out.give_ups,
            out.wrong_payloads,
            out.fault_stats.read_faults,
            out.fault_stats.write_faults,
            out.fault_stats.corruptions,
            out.fault_stats.latency_spikes,
        );
        return Ok(());
    }
    let out = if shards > 0 {
        trace.replay_sharded(policy, capacity, shards)
    } else {
        trace.replay_sequential(policy, capacity)
    }
    .map_err(|e| e.to_string())?;
    println!(
        "policy={policy:?} capacity={capacity} shards={}\n\
         logical={} hits={} misses={} hit%={:.2} physical_reads={} random={} sequential={} sim_ms={:.1}",
        shards.max(1),
        out.stats.logical_reads,
        out.stats.hits,
        out.stats.misses,
        100.0 * out.stats.hit_ratio(),
        out.physical_reads,
        out.io.random_reads,
        out.io.sequential_reads,
        out.io.simulated_ms,
    );
    if !out.candidate_trajectory.is_empty() {
        let last = out.candidate_trajectory.last().copied().unwrap_or(0);
        let max = out.candidate_trajectory.iter().max().copied().unwrap_or(0);
        let min = out.candidate_trajectory.iter().min().copied().unwrap_or(0);
        println!("candidate set: final={last} min={min} max={max}");
    }
    if let Some(arena) = &out.arena {
        println!(
            "arena: leader={} switches={} regret={} best_expert_misses={}",
            arena.experts[arena.leader].label,
            arena.switches,
            arena.regret(),
            arena.best_expert_misses(),
        );
        for e in &arena.experts {
            println!(
                "  expert {:<8} weight={:.4} ghost_misses={} ghost_len={}",
                e.label, e.weight, e.ghost_misses, e.ghost_len
            );
        }
    }
    if let Some(path) = weights_out {
        if out.weight_trajectory.is_empty() {
            return Err(format!("--weights needs an arena replay, got {policy:?}"));
        }
        let labels: Vec<&str> = out
            .arena
            .as_ref()
            .map(|a| a.experts.iter().map(|e| e.label.as_str()).collect())
            .unwrap_or_default();
        let mut csv = format!("access,{}\n", labels.join(","));
        for (i, row) in out.weight_trajectory.iter().enumerate() {
            let cells: Vec<String> = row.iter().map(|w| format!("{w}")).collect();
            csv.push_str(&format!("{i},{}\n", cells.join(",")));
        }
        std::fs::write(&path, csv).map_err(|e| format!("{path}: {e}"))?;
        eprintln!(
            "# wrote {} weight rows ({} experts) to {path}",
            out.weight_trajectory.len(),
            labels.len()
        );
    }
    Ok(())
}

fn crash(mut it: impl Iterator<Item = String>) -> Result<(), String> {
    let mut path = None;
    let mut config = CrashConfig::default();
    while let Some(arg) = it.next() {
        let mut next = || it.next().ok_or(format!("{arg} needs a value"));
        match arg.as_str() {
            "--policy" => {
                let v = next()?;
                config.policy = policy_by_name(&v).ok_or(format!("unknown policy {v}"))?;
            }
            "--capacity" => {
                config.capacity = next()?.parse().map_err(|e| format!("bad capacity: {e}"))?;
            }
            "--seed" => config.seed = next()?.parse().map_err(|e| format!("bad seed: {e}"))?,
            "--update-every" => {
                config.update_every = next()?.parse().map_err(|e| format!("bad count: {e}"))?;
            }
            "--checkpoint-interval" => {
                config.checkpoint_interval =
                    next()?.parse().map_err(|e| format!("bad interval: {e}"))?;
            }
            "--max-accesses" => {
                config.max_accesses = Some(next()?.parse().map_err(|e| format!("bad count: {e}"))?);
            }
            "--artifacts" => config.artifact_dir = Some(next()?.into()),
            o if path.is_none() && !o.starts_with('-') => path = Some(arg),
            o => return Err(format!("unknown argument {o}")),
        }
    }
    let path = path.ok_or("crash needs a trace file path")?;
    let trace = Trace::load(&path)?;
    eprintln!(
        "# {path}: {} ({} pages, {} accesses)",
        trace.label,
        trace.pages.len(),
        trace.accesses.len()
    );
    let report = crash_sweep(&trace, &config).map_err(|e| e.to_string())?;
    println!(
        "policy={:?} capacity={} seed={} update_every={} checkpoint_interval={}\n\
         crash_points={} sweeps={} updates={} checkpoints={} torn_tails_dropped={} images_redone={}",
        config.policy,
        config.capacity,
        config.seed,
        config.update_every,
        config.checkpoint_interval,
        report.crash_points,
        report.sweeps_run,
        report.updates,
        report.checkpoints,
        report.torn_tails_dropped,
        report.images_redone,
    );
    if report.holds() {
        println!("recovery == committed prefix at every crash point: OK");
        Ok(())
    } else {
        for d in report.divergences.iter().take(10) {
            eprintln!("DIVERGENCE {d}");
        }
        Err(format!(
            "{} of {} crash points diverged from the committed prefix",
            report.divergences.len(),
            report.sweeps_run
        ))
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
