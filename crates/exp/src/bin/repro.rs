//! `repro` — regenerate the data figures of the EDBT 2002 paper.
//!
//! ```text
//! repro [--figure N]... [--scale tiny|small|medium|large|paper]
//!       [--seed S] [--json PATH]
//! ```
//!
//! Without `--figure`, every data figure (4–9, 12–14) is produced. Text
//! tables go to stdout; `--json` additionally writes the structured tables.

use asb_exp::{extension, figure, FigureConfig, Lab, EXTENSIONS, FIGURE_IDS};
use asb_workload::Scale;
use std::process::ExitCode;

struct Args {
    figures: Vec<u8>,
    extensions: Vec<String>,
    scale: Scale,
    seed: u64,
    json: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut figures = Vec::new();
    let mut extensions = Vec::new();
    let mut scale = Scale::Medium;
    let mut seed = 42u64;
    let mut json = None;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--figure" | "-f" => {
                let v = it.next().ok_or("--figure needs a number")?;
                let id: u8 = v.parse().map_err(|_| format!("bad figure id: {v}"))?;
                if !FIGURE_IDS.contains(&id) {
                    return Err(format!(
                        "figure {id} has no data; available: {FIGURE_IDS:?} \
                         (figures 1-3, 10, 11 are illustrations)"
                    ));
                }
                figures.push(id);
            }
            "--ext" | "-e" => {
                let v = it.next().ok_or("--ext needs a name")?;
                if v != "all" && !EXTENSIONS.contains(&v.as_str()) {
                    return Err(format!(
                        "unknown extension {v}; available: {EXTENSIONS:?} or 'all'"
                    ));
                }
                extensions.push(v);
            }
            "--scale" | "-s" => {
                let v = it.next().ok_or("--scale needs a value")?;
                scale = match v.as_str() {
                    "tiny" => Scale::Tiny,
                    "small" => Scale::Small,
                    "medium" => Scale::Medium,
                    "large" => Scale::Large,
                    "paper" => Scale::Paper,
                    other => return Err(format!("unknown scale: {other}")),
                };
            }
            "--seed" => {
                let v = it.next().ok_or("--seed needs a value")?;
                seed = v.parse().map_err(|_| format!("bad seed: {v}"))?;
            }
            "--json" => {
                json = Some(it.next().ok_or("--json needs a path")?);
            }
            "--help" | "-h" => {
                println!(
                    "repro — regenerate the figures of Brinkhoff, EDBT 2002\n\n\
                     Usage: repro [--figure N]... [--ext NAME]... \
                     [--scale tiny|small|medium|large|paper] [--seed S] [--json PATH]\n\n\
                     Data figures: {FIGURE_IDS:?}\n\
                     Extensions: {EXTENSIONS:?} or 'all'"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    if figures.is_empty() && extensions.is_empty() {
        figures = FIGURE_IDS.to_vec();
    }
    Ok(Args {
        figures,
        extensions,
        scale,
        seed,
        json,
    })
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let config = FigureConfig {
        scale: args.scale,
        seed: args.seed,
    };
    eprintln!(
        "# reproducing figures {:?} at scale {:?} (seed {})",
        args.figures, config.scale, config.seed
    );
    let mut lab = Lab::new(config.scale, config.seed);
    let mut all = Vec::new();
    for &id in &args.figures {
        let started = std::time::Instant::now();
        let tables = match figure(id, &mut lab) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("error: figure {id} failed: {e}");
                return ExitCode::FAILURE;
            }
        };
        eprintln!(
            "# figure {id}: {} table(s) in {:.1?}",
            tables.len(),
            started.elapsed()
        );
        for t in &tables {
            println!("{}", t.render_text());
        }
        all.extend(tables);
    }
    for name in &args.extensions {
        let started = std::time::Instant::now();
        let tables = match extension(name, config.scale, config.seed) {
            Ok(t) => t.expect("extension names validated during parsing"),
            Err(e) => {
                eprintln!("error: extension {name} failed: {e}");
                return ExitCode::FAILURE;
            }
        };
        eprintln!(
            "# extension {name}: {} table(s) in {:.1?}",
            tables.len(),
            started.elapsed()
        );
        for t in &tables {
            println!("{}", t.render_text());
        }
        all.extend(tables);
    }
    if let Some(path) = args.json {
        match serde_json::to_string_pretty(&all)
            .map_err(|e| e.to_string())
            .and_then(|s| std::fs::write(&path, s).map_err(|e| e.to_string()))
        {
            Ok(()) => eprintln!("# wrote {} tables to {path}", all.len()),
            Err(e) => {
                eprintln!("error writing {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
