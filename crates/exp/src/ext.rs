//! Extension experiments beyond the paper's figures.
//!
//! The paper grounds its page-entry notion in three access methods (R-tree,
//! quadtree, z-value B-tree) and a three-tier page taxonomy (directory /
//! data / object pages), but evaluates only the R\*-tree's tree pages.
//! These experiments close that gap:
//!
//! * [`ext_object_pages`] — the full access path including object pages,
//!   which is where the *type-based* LRU's third category finally matters;
//! * [`ext_cross_sam`] — the same replacement policies on the quadtree and
//!   the z-order B⁺-tree, testing the paper's implicit claim that spatial
//!   replacement criteria generalize across spatial access methods.

use crate::report::{FigureTable, Series};
use asb_core::{BufferManager, PolicyKind, SpatialCriterion};
use asb_geom::Point;
use asb_quadtree::{QuadConfig, QuadTree};
use asb_rtree::RTree;
use asb_storage::{DiskManager, ObjectRecord, ObjectStore, Result};
use asb_workload::{Dataset, DatasetKind, QueryKind, QuerySetSpec, Scale};
use asb_zbtree::ZBTree;
use bytes::Bytes;

fn policies() -> Vec<(PolicyKind, &'static str)> {
    vec![
        (PolicyKind::Lru, "LRU"),
        (PolicyKind::LruT, "LRU-T"),
        (PolicyKind::LruP, "LRU-P"),
        (PolicyKind::LruK { k: 2 }, "LRU-2"),
        (PolicyKind::Spatial(SpatialCriterion::Area), "A"),
        (PolicyKind::Asb, "ASB"),
    ]
}

fn query_sets() -> Vec<QuerySetSpec> {
    vec![
        QuerySetSpec::uniform_windows(33),
        QuerySetSpec::identical_points(),
        QuerySetSpec::similar(QueryKind::Window { ex: 100 }),
        QuerySetSpec::intensified(QueryKind::Point),
    ]
}

/// Gain vs LRU when every query also fetches the object pages of its
/// results — the paper's full storage architecture (Fig. 1) in action.
///
/// With object pages in the access stream, LRU-T's "drop object pages
/// first" rule becomes observable (in the tree-only figures LRU-T degrades
/// to LRU-P).
pub fn ext_object_pages(scale: Scale, seed: u64) -> Result<FigureTable> {
    let dataset = Dataset::generate(DatasetKind::Mainland, scale, seed);
    // Build object pages in item (≈ spatial) order, then the tree on top of
    // the same simulated disk, then connect the leaf entries.
    let mut disk = DiskManager::new();
    let records: Vec<ObjectRecord> = dataset
        .items()
        .iter()
        .map(|it| ObjectRecord {
            id: it.id,
            mbr: it.mbr,
            payload: Bytes::from(vec![0u8; dataset.payload_len(it.id)]),
        })
        .collect();
    let objects = ObjectStore::build(&mut disk, &records)?;
    let mut tree = RTree::bulk_load(disk, dataset.items())?;
    tree.assign_object_pages(|id| objects.page_of(id))?;

    let pages = tree.page_count();
    let buffer_pages = ((pages as f64) * 0.047).round() as usize;
    let sets = query_sets();
    let mut queries_per_set = Vec::new();
    for spec in &sets {
        queries_per_set.push(spec.generate(&dataset, 1200, seed ^ 0xB0B0));
    }

    let mut base: Vec<u64> = Vec::new();
    let mut series = Vec::new();
    for (policy, name) in policies() {
        let mut points = Vec::new();
        for (spec, queries) in sets.iter().zip(&queries_per_set) {
            tree.set_buffer(BufferManager::with_policy(policy, buffer_pages));
            tree.store_mut().reset_stats();
            for q in queries {
                tree.execute_fetching_objects(q)?;
            }
            let reads = tree.store().stats().reads;
            tree.take_buffer();
            if policy == PolicyKind::Lru {
                base.push(reads);
                points.push((spec.name(), 0.0));
            } else {
                let lru = base[points.len()];
                points.push((spec.name(), (lru as f64 / reads as f64 - 1.0) * 100.0));
            }
        }
        series.push(Series {
            name: name.into(),
            points,
        });
    }
    Ok(FigureTable {
        id: "ext-object-pages".into(),
        title: format!(
            "Full access path incl. object pages, database 1, 4.7% buffer, scale {scale:?}"
        ),
        x_label: "query set".into(),
        y_label: "gain vs LRU [%]".into(),
        series,
    })
}

/// Gain vs LRU of the spatial policy A, LRU-2 and ASB on three different
/// spatial access methods over the same dataset and uniform window queries.
pub fn ext_cross_sam(scale: Scale, seed: u64) -> Result<FigureTable> {
    let dataset = Dataset::generate(DatasetKind::Mainland, scale, seed);
    let queries = QuerySetSpec::uniform_windows(33).generate(&dataset, 1500, seed ^ 0x5A11);
    let centers: Vec<(u64, Point)> = dataset
        .items()
        .iter()
        .map(|it| (it.id, it.mbr.center()))
        .collect();

    let contenders = [
        (PolicyKind::LruK { k: 2 }, "LRU-2"),
        (PolicyKind::Spatial(SpatialCriterion::Area), "A"),
        (PolicyKind::Asb, "ASB"),
    ];

    // One closure per SAM: build, then return per-policy disk accesses.
    type PolicyRun<'a> = Box<dyn FnMut(PolicyKind) -> Result<u64> + 'a>;
    let run_all = |label: &str, mut run: PolicyRun| -> Result<(String, Vec<(String, f64)>)> {
        let lru = run(PolicyKind::Lru)?;
        let mut points = vec![];
        for (p, name) in contenders {
            let reads = run(p)?;
            points.push((
                format!("{label}/{name}"),
                (lru as f64 / reads as f64 - 1.0) * 100.0,
            ));
        }
        Ok((label.to_string(), points))
    };

    // R*-tree.
    let mut rtree = RTree::bulk_load(DiskManager::new(), dataset.items())?;
    let rtree_buffer = ((rtree.page_count() as f64) * 0.047).round().max(8.0) as usize;
    let queries_r = queries.clone();
    let (_, rtree_points) = run_all(
        "R*-tree",
        Box::new(move |policy| {
            rtree.set_buffer(BufferManager::with_policy(policy, rtree_buffer));
            rtree.store_mut().reset_stats();
            for q in &queries_r {
                rtree.execute(q)?;
            }
            let reads = rtree.store().stats().reads;
            rtree.take_buffer();
            Ok(reads)
        }),
    )?;

    // Quadtree (same MBR data).
    let mut quad =
        QuadTree::with_config(DiskManager::new(), dataset.bounds(), QuadConfig::default())?;
    for it in dataset.items() {
        quad.insert(*it)?;
    }
    let quad_buffer = ((quad.page_count() as f64) * 0.047).round().max(8.0) as usize;
    let queries_q = queries.clone();
    let (_, quad_points) = run_all(
        "Quadtree",
        Box::new(move |policy| {
            quad.set_buffer(BufferManager::with_policy(policy, quad_buffer));
            quad.store_mut().reset_stats();
            for q in &queries_q {
                quad.execute(q)?;
            }
            let reads = quad.store().stats().reads;
            quad.take_buffer();
            Ok(reads)
        }),
    )?;

    // Z-order B+-tree (indexes object centers; same windows,
    // point-in-window semantics).
    let mut zb = ZBTree::bulk_load(DiskManager::new(), dataset.bounds(), &centers)?;
    let zb_buffer = ((zb.page_count() as f64) * 0.047).round().max(8.0) as usize;
    let queries_z = queries;
    let (_, zb_points) = run_all(
        "Z-B+tree",
        Box::new(move |policy| {
            zb.set_buffer(BufferManager::with_policy(policy, zb_buffer));
            zb.store_mut().reset_stats();
            for q in &queries_z {
                zb.execute(q)?;
            }
            let reads = zb.store().stats().reads;
            zb.take_buffer();
            Ok(reads)
        }),
    )?;

    // One series per contender, one x-position per SAM.
    let mut series = Vec::new();
    for (i, (_, name)) in contenders.iter().enumerate() {
        let points = vec![
            ("R*-tree".to_string(), rtree_points[i].1),
            ("Quadtree".to_string(), quad_points[i].1),
            ("Z-B+tree".to_string(), zb_points[i].1),
        ];
        series.push(Series {
            name: (*name).into(),
            points,
        });
    }
    Ok(FigureTable {
        id: "ext-cross-sam".into(),
        title: format!(
            "Replacement policies across spatial access methods, U-W-33, 4.7% buffers, scale {scale:?}"
        ),
        x_label: "spatial access method".into(),
        y_label: "gain vs LRU [%]".into(),
        series,
    })
}

/// Future work 3: continuously moving objects. A fraction of the objects
/// moves every round (delete + re-insert at the new location) while window
/// queries keep arriving; policies are compared on total disk reads.
pub fn ext_moving_objects(scale: Scale, seed: u64) -> Result<FigureTable> {
    let dataset = Dataset::generate(DatasetKind::Mainland, scale, seed);
    let items = dataset.items();
    let queries = QuerySetSpec::uniform_windows(100).generate(&dataset, 400, seed ^ 0x30B1);

    let mut series = Vec::new();
    let mut base = 0u64;
    for (policy, name) in [
        (PolicyKind::Lru, "LRU"),
        (PolicyKind::LruK { k: 2 }, "LRU-2"),
        (PolicyKind::Spatial(SpatialCriterion::Area), "A"),
        (PolicyKind::Asb, "ASB"),
    ] {
        let mut tree = RTree::bulk_load(DiskManager::new(), items)?;
        let buffer_pages = ((tree.page_count() as f64) * 0.047).round().max(8.0) as usize;
        tree.set_buffer(BufferManager::with_policy(policy, buffer_pages));
        tree.store_mut().reset_stats();

        // Deterministic movement: object i drifts by a seed-derived delta,
        // wrapping inside the unit square.
        let mut mover = 0usize;
        for (round, q) in queries.iter().enumerate() {
            // Move a handful of objects per query round.
            for k in 0..8usize {
                let idx = (mover + k * 131) % items.len();
                let it = items[idx];
                let step = 0.002 + 0.004 * ((round + k) % 7) as f64;
                let moved = it.mbr.flip_x(0.0, 1.0); // deterministic "jump"
                let moved = asb_geom::Rect::new(
                    (moved.min.x + step).min(0.999),
                    moved.min.y,
                    (moved.max.x + step).min(1.0),
                    moved.max.y,
                );
                // Delete wherever the object currently is; tolerate the
                // object having been moved before (delete by both shapes).
                let deleted = tree.delete(it.id, &it.mbr)? || tree.delete(it.id, &moved)?;
                if deleted {
                    tree.insert(asb_geom::SpatialItem::new(it.id, moved))?;
                }
            }
            mover = (mover + 1009) % items.len();
            tree.execute(q)?;
        }
        let reads = tree.store().stats().reads;
        let gain = if policy == PolicyKind::Lru {
            base = reads;
            0.0
        } else {
            (base as f64 / reads as f64 - 1.0) * 100.0
        };
        series.push(Series {
            name: name.into(),
            points: vec![("moving".into(), gain), ("reads".into(), reads as f64)],
        });
    }
    Ok(FigureTable {
        id: "ext-moving".into(),
        title: format!(
            "Moving-object workload (updates + queries), database 1, 4.7% buffer, scale {scale:?}"
        ),
        x_label: "metric".into(),
        y_label: "gain vs LRU [%] / raw reads".into(),
        series,
    })
}

/// Runs an extension experiment by name. `Ok(None)` means the name is
/// unknown; a storage or query failure during a known experiment is an
/// `Err`.
pub fn extension(name: &str, scale: Scale, seed: u64) -> Result<Option<Vec<FigureTable>>> {
    Ok(match name {
        "object-pages" => Some(vec![ext_object_pages(scale, seed)?]),
        "cross-sam" => Some(vec![ext_cross_sam(scale, seed)?]),
        "moving" => Some(vec![ext_moving_objects(scale, seed)?]),
        "all" => Some(vec![
            ext_object_pages(scale, seed)?,
            ext_cross_sam(scale, seed)?,
            ext_moving_objects(scale, seed)?,
        ]),
        _ => None,
    })
}

/// Names accepted by [`extension`].
pub const EXTENSIONS: [&str; 3] = ["object-pages", "cross-sam", "moving"];

#[allow(unused_imports)]
use asb_geom::Rect;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn object_pages_experiment_runs() {
        let table = ext_object_pages(Scale::Tiny, 5).unwrap();
        assert_eq!(table.series.len(), 6);
        // LRU baseline is zero by construction.
        for (_, v) in &table.series[0].points {
            assert_eq!(*v, 0.0);
        }
    }

    #[test]
    fn cross_sam_experiment_runs() {
        let table = ext_cross_sam(Scale::Tiny, 5).unwrap();
        assert_eq!(table.series.len(), 3);
        for s in &table.series {
            assert_eq!(s.points.len(), 3, "one point per SAM");
        }
    }

    #[test]
    fn moving_objects_experiment_runs() {
        let table = ext_moving_objects(Scale::Tiny, 5).unwrap();
        assert_eq!(table.series.len(), 4);
    }

    #[test]
    fn extension_dispatch() {
        assert!(extension("cross-sam", Scale::Tiny, 1).unwrap().is_some());
        assert!(extension("nope", Scale::Tiny, 1).unwrap().is_none());
    }
}
