//! Access-trace record & replay.
//!
//! A [`Trace`] is the *logical* page-access sequence of one experiment
//! run: the disk image's page metadata plus every `(page, query)` read the
//! index issued. Because query answers — and therefore the logical access
//! sequence — are independent of the replacement policy (asserted by the
//! lab's `answers_are_policy_independent` test), one recorded run can be
//! replayed bit-for-bit through *any* policy, buffer size or shard count:
//! the same hits, misses, physical I/O and ASB candidate-set trajectory
//! come back every time. That makes committed traces a regression harness
//! for the whole buffer stack.
//!
//! Traces serialize to a line-oriented text format (stable, diffable,
//! dependency-free):
//!
//! ```text
//! asb-trace v1
//! label Mainland Tiny seed=42 set=U-W-33 queries=120
//! pages 71
//! accesses 1543
//! p <raw> <type-tag> <level> <entries> <area> <margin> <overlap> [mbr <x0> <y0> <x1> <y1>]
//! ...
//! a <page-raw> <query-raw>
//! ...
//! ```
//!
//! Floats are written with Rust's shortest-roundtrip formatting, so a
//! parse–print cycle is lossless.

use asb_core::{ArenaState, BufferManager, BufferStats, PolicyKind, ShardedBuffer};
use asb_geom::{Rect, SpatialStats};
use asb_rtree::RTree;
use asb_storage::{
    AccessContext, DiskManager, FaultConfig, FaultStats, FaultyStore, IoStats, PageId, PageMeta,
    PageStore, PageType, QueryId, RecordingStore, Result, RetryPolicy, StorageError,
};
use asb_workload::{Dataset, DatasetKind, PhasedWorkload, QuerySetSpec, Scale};
use bytes::Bytes;

/// A recorded access trace: page catalogue plus logical read sequence.
#[derive(Debug, Clone, PartialEq)]
pub struct Trace {
    /// Free-form provenance line (database, scale, seed, query set).
    pub label: String,
    /// `(raw page id, metadata)` of every live page, sorted by id.
    pub pages: Vec<(u64, PageMeta)>,
    /// `(raw page id, raw query id)` of every logical read, in order.
    pub accesses: Vec<(u64, u64)>,
}

/// Outcome of replaying a trace through one buffer configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayOutcome {
    /// Buffer statistics of the replay.
    pub stats: BufferStats,
    /// Physical I/O the simulated disk observed.
    pub io: IoStats,
    /// Physical page reads — the paper's "disk accesses".
    pub physical_reads: u64,
    /// ASB candidate-set size after every access (empty for non-ASB
    /// policies; in sharded replays only populated for one shard).
    pub candidate_trajectory: Vec<usize>,
    /// Arena expert weights after every access, in roster order (empty
    /// for non-arena policies; in sharded replays only populated for one
    /// shard). Replays are deterministic, so two replays of the same
    /// trace produce bit-identical trajectories.
    pub weight_trajectory: Vec<Vec<f64>>,
    /// Final arena snapshot (`None` for non-arena policies; in sharded
    /// replays only populated for one shard).
    pub arena: Option<ArenaState>,
}

/// Outcome of replaying a trace against a fault-injecting store.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultReplayOutcome {
    /// Buffer statistics of the replay (retries/corruptions included).
    pub stats: BufferStats,
    /// What the fault layer injected.
    pub fault_stats: FaultStats,
    /// Accesses that exhausted their retry budget or hit a dead page.
    pub give_ups: u64,
    /// Successful accesses whose payload did not match the disk image
    /// (must stay zero: corruption may cost retries, never correctness).
    pub wrong_payloads: u64,
}

impl Trace {
    /// Records the logical access sequence of one workload: builds the
    /// R\*-tree for `db` at `scale`, generates `queries` queries from
    /// `spec` (with the lab's query-seed derivation) and executes them
    /// unbuffered, logging every page read.
    pub fn record(
        db: DatasetKind,
        scale: Scale,
        seed: u64,
        spec: QuerySetSpec,
        queries: usize,
    ) -> Result<Trace> {
        let dataset = Dataset::generate(db, scale, seed);
        let store = RecordingStore::new(DiskManager::new());
        store.set_recording(false); // bulk-load reads are not workload
        let mut tree = RTree::bulk_load(store, dataset.items())?;
        let qs = spec.generate(&dataset, queries, seed ^ 0x0051_5e75);
        tree.store().set_recording(true);
        for q in &qs {
            tree.execute(q)?;
        }
        let log = tree.store().take_log();
        let disk = tree.into_store().into_inner();
        let mut pages: Vec<(u64, PageMeta)> =
            disk.iter_pages().map(|p| (p.id.raw(), p.meta)).collect();
        pages.sort_unstable_by_key(|&(raw, _)| raw);
        Ok(Trace {
            label: format!(
                "{db:?} {scale:?} seed={seed} set={} queries={}",
                spec.name(),
                qs.len()
            ),
            pages,
            accesses: log.iter().map(|(p, q)| (p.raw(), q.raw())).collect(),
        })
    }

    /// Records the logical access sequence of a phase-change workload:
    /// like [`Trace::record`], but the queries come from a
    /// [`PhasedWorkload`] — several query-set families concatenated so
    /// the best replacement policy changes identity mid-trace.
    pub fn record_phased(
        db: DatasetKind,
        scale: Scale,
        seed: u64,
        workload: &PhasedWorkload,
    ) -> Result<Trace> {
        let dataset = Dataset::generate(db, scale, seed);
        let store = RecordingStore::new(DiskManager::new());
        store.set_recording(false); // bulk-load reads are not workload
        let mut tree = RTree::bulk_load(store, dataset.items())?;
        let qs = workload.generate(&dataset, seed ^ 0x0051_5e75);
        tree.store().set_recording(true);
        for q in &qs {
            tree.execute(q)?;
        }
        let log = tree.store().take_log();
        let disk = tree.into_store().into_inner();
        let mut pages: Vec<(u64, PageMeta)> =
            disk.iter_pages().map(|p| (p.id.raw(), p.meta)).collect();
        pages.sort_unstable_by_key(|&(raw, _)| raw);
        Ok(Trace {
            label: format!(
                "{db:?} {scale:?} seed={seed} set={} queries={}",
                workload.label(),
                qs.len()
            ),
            pages,
            accesses: log.iter().map(|(p, q)| (p.raw(), q.raw())).collect(),
        })
    }

    /// Rebuilds a simulated disk holding exactly the traced pages (same
    /// ids — physical adjacency, and hence the sequential-read split, is
    /// preserved). Payloads are synthetic: replacement decisions depend
    /// only on page metadata, never on payload bytes.
    pub fn build_disk(&self) -> Result<DiskManager> {
        let mut disk = DiskManager::new();
        let mut next = 0u64;
        let mut gaps = Vec::new();
        for &(raw, meta) in &self.pages {
            while next < raw {
                gaps.push(disk.allocate(PageMeta::data(SpatialStats::EMPTY), Bytes::new())?);
                next += 1;
            }
            let id = disk.allocate(meta, Bytes::from(raw.to_le_bytes().to_vec()))?;
            debug_assert_eq!(id.raw(), raw, "trace page ids must rebuild densely");
            next = raw + 1;
        }
        for id in gaps {
            disk.free(id)?;
        }
        disk.reset_stats();
        Ok(disk)
    }

    /// Replays the trace through a sequential [`BufferManager`].
    pub fn replay_sequential(&self, policy: PolicyKind, capacity: usize) -> Result<ReplayOutcome> {
        let mut disk = self.build_disk()?;
        let mut mgr = BufferManager::with_policy(policy, capacity);
        let mut trajectory = Vec::new();
        let mut weights = Vec::new();
        for &(p, q) in &self.accesses {
            let id = PageId::new(p);
            let ctx = AccessContext::query(QueryId::new(q));
            let page = mgr.fetch(&mut disk, id, ctx)?;
            debug_assert_eq!(page.id, id);
            if let Some(c) = mgr.candidate_size() {
                trajectory.push(c);
            }
            if let Some(state) = mgr.arena_state() {
                weights.push(state.weights());
            }
        }
        let io = disk.stats();
        Ok(ReplayOutcome {
            stats: mgr.stats(),
            io,
            physical_reads: io.reads,
            candidate_trajectory: trajectory,
            weight_trajectory: weights,
            arena: mgr.arena_state(),
        })
    }

    /// Replays the trace through a [`ShardedBuffer`] pool (single-threaded,
    /// so the outcome is deterministic; with one shard it must equal
    /// [`Trace::replay_sequential`] exactly).
    pub fn replay_sharded(
        &self,
        policy: PolicyKind,
        capacity: usize,
        shards: usize,
    ) -> Result<ReplayOutcome> {
        let disk = self.build_disk()?;
        let pool = ShardedBuffer::new(disk, policy, capacity, shards);
        let mut trajectory = Vec::new();
        let mut weights = Vec::new();
        for &(p, q) in &self.accesses {
            let page = pool.fetch(PageId::new(p), AccessContext::query(QueryId::new(q)))?;
            debug_assert_eq!(page.id.raw(), p);
            if shards == 1 {
                if let Some(Some(c)) = pool.shard_candidate_sizes().first() {
                    trajectory.push(*c);
                }
                if let Some(Some(state)) = pool.shard_arena_states().first() {
                    weights.push(state.weights());
                }
            }
        }
        let io = pool.io_stats();
        let arena = if shards == 1 {
            pool.shard_arena_states().into_iter().flatten().next()
        } else {
            None
        };
        Ok(ReplayOutcome {
            stats: pool.stats(),
            io,
            physical_reads: io.reads,
            candidate_trajectory: trajectory,
            weight_trajectory: weights,
            arena,
        })
    }

    /// Replays the trace against a fault-injecting store under a retry
    /// policy. Transient faults must be absorbed (at worst surfacing as a
    /// typed give-up); every successfully returned page is checked against
    /// the pristine disk image.
    pub fn replay_with_faults(
        &self,
        policy: PolicyKind,
        capacity: usize,
        fault: FaultConfig,
        retry: RetryPolicy,
    ) -> Result<FaultReplayOutcome> {
        let mut store = FaultyStore::new(self.build_disk()?, fault);
        let mut mgr = BufferManager::with_policy(policy, capacity);
        mgr.set_retry_policy(retry);
        let mut give_ups = 0u64;
        let mut wrong_payloads = 0u64;
        for &(p, q) in &self.accesses {
            let id = PageId::new(p);
            let ctx = AccessContext::query(QueryId::new(q));
            match mgr.fetch(&mut store, id, ctx) {
                Ok(page) => {
                    if page.payload != store.inner().peek(id)?.payload {
                        wrong_payloads += 1;
                    }
                }
                Err(StorageError::RetriesExhausted { .. } | StorageError::DeviceFailed(_)) => {
                    give_ups += 1
                }
                Err(other) => return Err(other),
            }
        }
        Ok(FaultReplayOutcome {
            stats: mgr.stats(),
            fault_stats: store.fault_stats(),
            give_ups,
            wrong_payloads,
        })
    }

    /// Serializes the trace to its text format.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str("asb-trace v1\n");
        out.push_str(&format!("label {}\n", self.label));
        out.push_str(&format!("pages {}\n", self.pages.len()));
        out.push_str(&format!("accesses {}\n", self.accesses.len()));
        for &(raw, meta) in &self.pages {
            out.push_str(&format!(
                "p {raw} {} {} {} {} {} {}",
                meta.page_type.tag(),
                meta.level,
                meta.stats.entry_count,
                meta.stats.entry_area_sum,
                meta.stats.entry_margin_sum,
                meta.stats.entry_overlap,
            ));
            if let Some(mbr) = meta.stats.mbr {
                out.push_str(&format!(
                    " mbr {} {} {} {}",
                    mbr.min.x, mbr.min.y, mbr.max.x, mbr.max.y
                ));
            }
            out.push('\n');
        }
        for &(p, q) in &self.accesses {
            out.push_str(&format!("a {p} {q}\n"));
        }
        out
    }

    /// Parses a trace from its text format.
    ///
    /// # Errors
    /// Returns a human-readable description of the first malformed line.
    pub fn from_text(text: &str) -> std::result::Result<Trace, String> {
        let mut lines = text.lines().enumerate();
        let magic = lines
            .next()
            .map(|(_, s)| s.trim())
            .ok_or("truncated trace: expected header")?;
        if magic != "asb-trace v1" {
            return Err(format!("not an asb-trace v1 file (got {magic:?})"));
        }
        let label = lines
            .next()
            .map(|(_, s)| s.trim())
            .and_then(|s| s.strip_prefix("label "))
            .ok_or("missing label line")?
            .to_string();
        let mut parse_count = |key: &str| -> std::result::Result<usize, String> {
            lines
                .next()
                .map(|(_, s)| s.trim())
                .and_then(|s| s.strip_prefix(key))
                .and_then(|s| s.trim().parse().ok())
                .ok_or_else(|| format!("missing or bad {key} line"))
        };
        let n_pages = parse_count("pages")?;
        let n_accesses = parse_count("accesses")?;

        let mut pages = Vec::with_capacity(n_pages);
        let mut accesses = Vec::with_capacity(n_accesses);
        for (n, raw_line) in lines {
            let line = raw_line.trim();
            if line.is_empty() {
                continue;
            }
            let tok: Vec<&str> = line.split_whitespace().collect();
            let bad = |why: &str| format!("line {}: {why}: {line:?}", n + 1);
            match tok[0] {
                "p" => {
                    let has_mbr = match tok.len() {
                        8 => false,
                        13 if tok[8] == "mbr" => true,
                        _ => return Err(bad("malformed page record")),
                    };
                    let num = |i: usize, what: &str| -> std::result::Result<f64, String> {
                        tok[i].parse::<f64>().map_err(|_| bad(what))
                    };
                    let raw = tok[1].parse::<u64>().map_err(|_| bad("bad page id"))?;
                    let tag = tok[2].parse::<u8>().map_err(|_| bad("bad type tag"))?;
                    let level = tok[3].parse::<u8>().map_err(|_| bad("bad level"))?;
                    let entry_count = tok[4].parse::<u32>().map_err(|_| bad("bad entry count"))?;
                    let entry_area_sum = num(5, "bad area sum")?;
                    let entry_margin_sum = num(6, "bad margin sum")?;
                    let entry_overlap = num(7, "bad overlap")?;
                    let mbr = if has_mbr {
                        Some(Rect::new(
                            num(9, "bad mbr x0")?,
                            num(10, "bad mbr y0")?,
                            num(11, "bad mbr x1")?,
                            num(12, "bad mbr y1")?,
                        ))
                    } else {
                        None
                    };
                    let page_type =
                        PageType::from_tag(tag).ok_or_else(|| bad("unknown page type"))?;
                    pages.push((
                        raw,
                        PageMeta {
                            page_type,
                            level,
                            stats: SpatialStats {
                                mbr,
                                entry_count,
                                entry_area_sum,
                                entry_margin_sum,
                                entry_overlap,
                            },
                        },
                    ));
                }
                "a" => {
                    if tok.len() != 3 {
                        return Err(bad("malformed access record"));
                    }
                    let p = tok[1].parse().map_err(|_| bad("bad page id"))?;
                    let q = tok[2].parse().map_err(|_| bad("bad query id"))?;
                    accesses.push((p, q));
                }
                other => return Err(bad(&format!("unknown record {other:?}"))),
            }
        }
        if pages.len() != n_pages {
            return Err(format!(
                "header claims {n_pages} pages, found {}",
                pages.len()
            ));
        }
        if accesses.len() != n_accesses {
            return Err(format!(
                "header claims {n_accesses} accesses, found {}",
                accesses.len()
            ));
        }
        Ok(Trace {
            label,
            pages,
            accesses,
        })
    }

    /// Writes the trace to a file.
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        std::fs::write(path, self.to_text())
    }

    /// Reads a trace from a file.
    pub fn load(path: impl AsRef<std::path::Path>) -> std::result::Result<Trace, String> {
        let text = std::fs::read_to_string(path.as_ref())
            .map_err(|e| format!("{}: {e}", path.as_ref().display()))?;
        Trace::from_text(&text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asb_workload::QueryKind;

    fn tiny_trace() -> Trace {
        Trace::record(
            DatasetKind::Mainland,
            Scale::Tiny,
            7,
            QuerySetSpec::uniform_windows(33),
            60,
        )
        .unwrap()
    }

    #[test]
    fn text_roundtrip_is_lossless() {
        let t = tiny_trace();
        let parsed = Trace::from_text(&t.to_text()).unwrap();
        assert_eq!(parsed, t);
        // And stable: a second print of the parse is byte-identical.
        assert_eq!(parsed.to_text(), t.to_text());
    }

    #[test]
    fn from_text_rejects_garbage() {
        assert!(Trace::from_text("").is_err());
        assert!(Trace::from_text("asb-trace v2\nlabel x\npages 0\naccesses 0\n").is_err());
        let t = tiny_trace();
        let mut text = t.to_text();
        text.push_str("z 1 2\n");
        assert!(Trace::from_text(&text).is_err());
    }

    #[test]
    fn build_disk_reconstructs_ids_and_meta() {
        let t = tiny_trace();
        let disk = t.build_disk().unwrap();
        assert_eq!(disk.page_count(), t.pages.len());
        for &(raw, meta) in &t.pages {
            let page = disk.peek(PageId::new(raw)).unwrap();
            assert_eq!(page.meta, meta);
            assert!(page.verify_checksum());
        }
    }

    #[test]
    fn replay_matches_a_live_buffered_run() {
        let db = DatasetKind::Mainland;
        let (scale, seed) = (Scale::Tiny, 7);
        let spec = QuerySetSpec::uniform_windows(33);
        let trace = tiny_trace();
        let capacity = 8;

        for policy in [PolicyKind::Lru, PolicyKind::Asb] {
            // Live run: fresh tree, buffered, same query derivation.
            let dataset = Dataset::generate(db, scale, seed);
            let mut tree = RTree::bulk_load(DiskManager::new(), dataset.items()).unwrap();
            let queries = spec.generate(&dataset, 60, seed ^ 0x0051_5e75);
            tree.set_buffer(BufferManager::with_policy(policy, capacity));
            tree.store_mut().reset_stats();
            for q in &queries {
                tree.execute(q).unwrap();
            }
            let live_reads = tree.store().stats().reads;
            let live_stats = tree.take_buffer().unwrap().stats();

            let replay = trace.replay_sequential(policy, capacity).unwrap();
            assert_eq!(replay.stats, live_stats, "{policy:?}");
            assert_eq!(replay.physical_reads, live_reads, "{policy:?}");
        }
    }

    #[test]
    fn sequential_and_one_shard_replays_agree() {
        let t = tiny_trace();
        for policy in [PolicyKind::Lru, PolicyKind::Asb] {
            let seq = t.replay_sequential(policy, 8).unwrap();
            let sharded = t.replay_sharded(policy, 8, 1).unwrap();
            assert_eq!(sharded.stats, seq.stats, "{policy:?}");
            assert_eq!(sharded.physical_reads, seq.physical_reads, "{policy:?}");
            assert_eq!(
                sharded.candidate_trajectory, seq.candidate_trajectory,
                "{policy:?}"
            );
        }
    }

    #[test]
    fn asb_replay_reports_a_dense_candidate_trajectory() {
        let t = tiny_trace();
        let out = t.replay_sequential(PolicyKind::Asb, 12).unwrap();
        assert_eq!(out.candidate_trajectory.len(), t.accesses.len());
        assert!(out.candidate_trajectory.iter().all(|&c| c >= 1));
        let lru = t.replay_sequential(PolicyKind::Lru, 12).unwrap();
        assert!(lru.candidate_trajectory.is_empty());
    }

    #[test]
    fn arena_replay_is_deterministic_and_shard_agnostic() {
        let t = tiny_trace();
        let a = t.replay_sequential(PolicyKind::Arena, 8).unwrap();
        let b = t.replay_sequential(PolicyKind::Arena, 8).unwrap();
        assert_eq!(a, b, "arena replay must be bit-for-bit reproducible");
        assert_eq!(a.weight_trajectory.len(), t.accesses.len());

        let sharded = t.replay_sharded(PolicyKind::Arena, 8, 1).unwrap();
        assert_eq!(sharded.stats, a.stats, "one-shard arena drifted");
        assert_eq!(sharded.weight_trajectory, a.weight_trajectory);
        assert_eq!(sharded.arena, a.arena);

        let arena = a.arena.expect("arena snapshot");
        assert!(arena.accesses > 0);
        assert_eq!(a.stats.authority_switches, arena.switches);
        assert_eq!(a.stats.best_expert_misses, arena.best_expert_misses());
        // Non-arena replays report no arena data at all.
        let lru = t.replay_sequential(PolicyKind::Lru, 8).unwrap();
        assert!(lru.weight_trajectory.is_empty());
        assert!(lru.arena.is_none());
    }

    #[test]
    fn faulty_replay_stays_correct() {
        let t = Trace::record(
            DatasetKind::Mainland,
            Scale::Tiny,
            7,
            QuerySetSpec::intensified(QueryKind::Point),
            60,
        )
        .unwrap();
        let out = t
            .replay_with_faults(
                PolicyKind::Asb,
                8,
                FaultConfig::chaos(99, 0.05),
                RetryPolicy::default(),
            )
            .unwrap();
        assert_eq!(out.wrong_payloads, 0, "corruption must never be served");
        assert!(out.stats.retries > 0 || out.fault_stats.read_faults == 0);
        // The clean outcome is unchanged by the detour through faults.
        let clean = t.replay_sequential(PolicyKind::Asb, 8).unwrap();
        assert_eq!(out.stats.logical_reads, clean.stats.logical_reads);
    }
}
