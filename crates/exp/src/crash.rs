//! Exhaustive crash-recovery verification over recorded traces.
//!
//! A [`Trace`] replays deterministically, and the crash-injection layer
//! ([`CrashClock`]) makes every distinguishable crash of a deterministic
//! run enumerable: durable state only changes at store writes and WAL
//! appends, so killing at each such event index — in both
//! [`CrashMode::Clean`] and [`CrashMode::Torn`] — covers every crash a
//! real process could exhibit. This module turns that into an oracle:
//!
//! 1. **Golden run** — the trace replays once, crash-free, through a
//!    WAL-attached write-back buffer against a *recording* clock. A
//!    seed-derived subset of reads is followed by a buffered update with a
//!    deterministic payload, so the read-only trace becomes a read/write
//!    workload. The clock logs every durable event; image-append events
//!    align one-to-one with the logical updates.
//! 2. **Sweep** — for every event index `i` and both crash modes, the
//!    identical workload runs against a clock armed to kill at `i`. The
//!    surviving disk and WAL are handed to recovery.
//! 3. **Oracle** — a logical update is *committed* iff its WAL image
//!    append completed durably, i.e. its event index is `< i`. The
//!    recovered store must equal, bit for bit, the initial disk overlaid
//!    with the last committed update of each page — and every page must
//!    pass its checksum (torn store writes repaired, torn WAL tails
//!    discarded rather than replayed).
//!
//! Any divergence is reported with its crash point and, when an artifact
//! directory is configured, dumped as the trace plus the surviving WAL
//! bytes for offline debugging.

use asb_core::{BufferManager, PolicyKind};
use asb_storage::{
    AccessContext, CrashClock, CrashEvent, CrashMode, CrashOp, CrashPlan, CrashableStore,
    DiskManager, Page, PageId, PageMeta, QueryId, Result, SharedWal, StorageError, Wal, WalConfig,
};
use bytes::Bytes;
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use crate::Trace;

/// Configuration of a crash-recovery sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct CrashConfig {
    /// Replacement policy of the write-back buffer under test.
    pub policy: PolicyKind,
    /// Buffer capacity in pages.
    pub capacity: usize,
    /// Issue a buffered update after roughly one in `update_every` reads
    /// (seed-derived selection; must be ≥ 1).
    pub update_every: u64,
    /// Auto-checkpoint the WAL every this many image appends.
    pub checkpoint_interval: u64,
    /// WAL segment rotation threshold in bytes.
    pub segment_bytes: usize,
    /// Seed deriving which accesses update and what they write.
    pub seed: u64,
    /// Replay only the first N accesses of the trace (`None` = all) —
    /// debug-profile sweeps are quadratic in the event count.
    pub max_accesses: Option<usize>,
    /// Dump the trace and surviving WAL here when a sweep diverges.
    pub artifact_dir: Option<PathBuf>,
}

impl Default for CrashConfig {
    fn default() -> Self {
        CrashConfig {
            policy: PolicyKind::Asb,
            capacity: 12,
            update_every: 4,
            checkpoint_interval: 16,
            segment_bytes: 16 * 1024,
            seed: 1,
            max_accesses: None,
            artifact_dir: None,
        }
    }
}

/// One crash point whose recovered state did not match the oracle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CrashDivergence {
    /// Event index the process was killed at.
    pub kill_at: u64,
    /// Whether the interrupted event was dropped or half-applied.
    pub mode: CrashMode,
    /// What recovery got wrong.
    pub detail: String,
}

impl std::fmt::Display for CrashDivergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "kill@{} ({:?}): {}",
            self.kill_at, self.mode, self.detail
        )
    }
}

/// Outcome of sweeping every crash point of one trace.
#[derive(Debug, Clone, PartialEq)]
pub struct CrashSweepReport {
    /// Durable events of the golden run (= crash points per mode).
    pub crash_points: u64,
    /// Crash runs executed (both modes).
    pub sweeps_run: u64,
    /// Logical updates the workload issued in the golden run.
    pub updates: u64,
    /// Checkpoints the golden run appended.
    pub checkpoints: u64,
    /// Sweeps whose recovery detected and discarded a torn WAL tail.
    pub torn_tails_dropped: u64,
    /// Total image records redone across all recoveries.
    pub images_redone: u64,
    /// Crash points where the recovered store differed from the oracle
    /// (empty = the crash-consistency property holds).
    pub divergences: Vec<CrashDivergence>,
}

impl CrashSweepReport {
    /// Whether every crash point recovered to exactly the committed
    /// prefix.
    pub fn holds(&self) -> bool {
        self.divergences.is_empty()
    }
}

/// SplitMix64 finalizer (same mixer the sharded pool routes with).
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Whether access `i` of the workload issues an update.
fn updates_at(i: u64, config: &CrashConfig) -> bool {
    splitmix64(i ^ config.seed).is_multiple_of(config.update_every.max(1))
}

/// The deterministic 16-byte payload update `i` writes to page `raw`.
fn update_payload(raw: u64, i: u64, seed: u64) -> Bytes {
    let a = splitmix64(raw ^ seed.rotate_left(17));
    let b = splitmix64(i.wrapping_mul(0x2545_F491_4F6C_DD1D) ^ seed);
    let mut v = Vec::with_capacity(16);
    v.extend_from_slice(&a.to_le_bytes());
    v.extend_from_slice(&b.to_le_bytes());
    Bytes::from(v)
}

/// An error that means "the simulated process is dead", possibly wrapped
/// by retry or flush aggregation.
fn is_crash(e: &StorageError) -> bool {
    match e {
        StorageError::Crashed => true,
        StorageError::RetriesExhausted { last, .. } => is_crash(last),
        StorageError::FlushIncomplete { failures } => failures.iter().any(|(_, e)| is_crash(e)),
        _ => false,
    }
}

struct WorkloadOutcome {
    /// The surviving disk image (all that remains after a crash).
    disk: DiskManager,
    /// The surviving write-ahead log.
    wal: SharedWal,
    /// Logical updates issued, in order, as `(page raw id, payload)`.
    updates: Vec<(u64, Bytes)>,
    /// Whether the injected kill fired before the workload finished.
    crashed: bool,
    /// Checkpoints appended (golden-run bookkeeping).
    checkpoints: u64,
}

/// Replays the seed-derived read/update workload of `trace` through a
/// WAL-attached write-back buffer whose durable events are governed by
/// `clock`. Ends with a flush and a final checkpoint when the process
/// survives; stops at the injected kill otherwise.
fn run_workload(
    trace: &Trace,
    config: &CrashConfig,
    clock: Arc<CrashClock>,
) -> Result<WorkloadOutcome> {
    let meta_of: HashMap<u64, PageMeta> = trace.pages.iter().copied().collect();
    let mut store = CrashableStore::new(trace.build_disk()?, clock.clone());
    let wal = Wal::shared_with_clock(
        WalConfig {
            segment_bytes: config.segment_bytes,
        },
        clock,
    );
    let mut mgr = BufferManager::with_policy(config.policy, config.capacity);
    mgr.attach_wal(wal.clone());
    mgr.set_checkpoint_interval(Some(config.checkpoint_interval));
    let mut updates = Vec::new();
    let mut crashed = false;
    let limit = config.max_accesses.unwrap_or(trace.accesses.len());
    'workload: for (i, &(p, q)) in trace.accesses.iter().take(limit).enumerate() {
        let id = PageId::new(p);
        let ctx = AccessContext::query(QueryId::new(q));
        match mgr.fetch(&mut store, id, ctx) {
            Ok(_) => {}
            Err(e) if is_crash(&e) => {
                crashed = true;
                break 'workload;
            }
            Err(e) => return Err(e),
        }
        if updates_at(i as u64, config) {
            let payload = update_payload(p, i as u64, config.seed);
            let page = Page::new(id, meta_of[&p], payload.clone())?;
            match mgr.write_buffered(&mut store, page) {
                Ok(()) => updates.push((p, payload)),
                Err(e) if is_crash(&e) => {
                    crashed = true;
                    break 'workload;
                }
                Err(e) => return Err(e),
            }
        }
    }
    if !crashed {
        // Graceful shutdown: write everything back, then checkpoint so a
        // restart has an empty redo window.
        let end: Result<()> = mgr.flush(&mut store).and_then(|()| {
            mgr.checkpoint()?;
            Ok(())
        });
        match end {
            Ok(()) => {}
            Err(e) if is_crash(&e) => crashed = true,
            Err(e) => return Err(e),
        }
    }
    Ok(WorkloadOutcome {
        disk: store.into_inner(),
        wal,
        updates,
        crashed,
        checkpoints: mgr.stats().checkpoints,
    })
}

/// The oracle: expected `(page raw id → payload)` after recovering from a
/// kill at `kill_at`, given the golden run's event log and update list.
/// Committed updates are exactly the image appends with event index
/// `< kill_at`; each page ends at its last committed update, or its
/// initial [`Trace::build_disk`] payload if it was never updated.
fn expected_state(
    trace: &Trace,
    events: &[CrashEvent],
    updates: &[(u64, Bytes)],
    kill_at: u64,
) -> HashMap<u64, Bytes> {
    let mut state: HashMap<u64, Bytes> = trace
        .pages
        .iter()
        .map(|&(raw, _)| (raw, Bytes::from(raw.to_le_bytes().to_vec())))
        .collect();
    let committed = events
        .iter()
        .filter(|e| matches!(e.op, CrashOp::WalAppend { page: Some(_) }))
        .take_while(|e| e.index < kill_at);
    for (k, _event) in committed.enumerate() {
        let (raw, payload) = &updates[k];
        state.insert(*raw, payload.clone());
    }
    state
}

/// Runs one crash point end-to-end: workload under an armed clock, then
/// recovery, then comparison against `expected`. Returns the recovery
/// report plus the divergence, if any, and the surviving WAL bytes for
/// artifact dumps.
#[allow(clippy::type_complexity)]
fn run_crash_point(
    trace: &Trace,
    config: &CrashConfig,
    plan: CrashPlan,
    expected: &HashMap<u64, Bytes>,
    expect_torn_tail: bool,
) -> Result<(asb_storage::RecoveryReport, Option<String>, Vec<u8>)> {
    let out = run_workload(trace, config, CrashClock::with_plan(plan))?;
    if !out.crashed {
        return Ok((
            asb_storage::RecoveryReport::default(),
            Some("the armed kill never fired".to_string()),
            Vec::new(),
        ));
    }
    let mut disk = out.disk;
    let wal_bytes = out.wal.lock().dump_bytes();
    let report = out.wal.lock().recover_into(&mut disk)?;
    if expect_torn_tail && !report.torn_tail_dropped {
        return Ok((
            report,
            Some("a torn WAL append left no detected torn tail".to_string()),
            wal_bytes,
        ));
    }
    for (&raw, want) in expected {
        let page = match disk.peek(PageId::new(raw)) {
            Ok(p) => p,
            Err(e) => {
                return Ok((
                    report,
                    Some(format!("page {raw} unreadable after recovery: {e}")),
                    wal_bytes,
                ))
            }
        };
        if !page.verify_checksum() {
            return Ok((
                report,
                Some(format!("page {raw} fails its checksum after recovery")),
                wal_bytes,
            ));
        }
        if page.payload != *want {
            return Ok((
                report,
                Some(format!(
                    "page {raw}: got {:02x?}, committed prefix says {:02x?}",
                    page.payload.as_ref(),
                    want.as_ref()
                )),
                wal_bytes,
            ));
        }
    }
    Ok((report, None, wal_bytes))
}

/// Sweeps every crash point of `trace` in both crash modes and verifies
/// that recovery always reproduces the committed prefix of the crash-free
/// golden run. See the module docs for the model.
pub fn crash_sweep(trace: &Trace, config: &CrashConfig) -> Result<CrashSweepReport> {
    let clock = CrashClock::recording();
    let golden = run_workload(trace, config, clock.clone())?;
    assert!(!golden.crashed, "a recording clock never kills");
    let events = clock.events();
    let image_events: Vec<&CrashEvent> = events
        .iter()
        .filter(|e| matches!(e.op, CrashOp::WalAppend { page: Some(_) }))
        .collect();
    assert_eq!(
        image_events.len(),
        golden.updates.len(),
        "every logical update must log exactly one image"
    );
    for (event, (raw, _)) in image_events.iter().zip(&golden.updates) {
        let CrashOp::WalAppend { page: Some(id) } = event.op else {
            unreachable!("filtered to image appends");
        };
        assert_eq!(id.raw(), *raw, "event order must match update order");
    }

    let mut report = CrashSweepReport {
        crash_points: events.len() as u64,
        sweeps_run: 0,
        updates: golden.updates.len() as u64,
        checkpoints: golden.checkpoints,
        torn_tails_dropped: 0,
        images_redone: 0,
        divergences: Vec::new(),
    };
    for event in &events {
        for mode in [CrashMode::Clean, CrashMode::Torn] {
            let plan = CrashPlan {
                kill_at: event.index,
                mode,
            };
            let expected = expected_state(trace, &events, &golden.updates, event.index);
            let expect_torn_tail =
                mode == CrashMode::Torn && matches!(event.op, CrashOp::WalAppend { .. });
            let (rec, divergence, wal_bytes) =
                run_crash_point(trace, config, plan, &expected, expect_torn_tail)?;
            report.sweeps_run += 1;
            report.images_redone += rec.images_redone;
            if rec.torn_tail_dropped {
                report.torn_tails_dropped += 1;
            }
            if let Some(detail) = divergence {
                let d = CrashDivergence {
                    kill_at: event.index,
                    mode,
                    detail,
                };
                if let Some(dir) = &config.artifact_dir {
                    dump_artifacts(dir, trace, &d, &wal_bytes);
                }
                report.divergences.push(d);
            }
        }
    }
    Ok(report)
}

/// Runs the golden workload once more under a recording clock and returns
/// the durable-event log. Replays are bit-for-bit deterministic, so this
/// equals the event sequence of any other crash-free run.
#[cfg(test)]
fn golden_events(trace: &Trace, config: &CrashConfig) -> Result<Vec<CrashEvent>> {
    let clock = CrashClock::recording();
    let out = run_workload(trace, config, clock.clone())?;
    debug_assert!(!out.crashed);
    Ok(clock.events())
}

/// Writes the diverging trace and surviving WAL segment bytes into `dir`
/// (best effort — artifact dumps never mask the divergence itself).
fn dump_artifacts(dir: &Path, trace: &Trace, d: &CrashDivergence, wal_bytes: &[u8]) {
    let tag = format!(
        "kill{}-{}",
        d.kill_at,
        match d.mode {
            CrashMode::Clean => "clean",
            CrashMode::Torn => "torn",
        }
    );
    let _ = std::fs::create_dir_all(dir);
    let _ = trace.save(dir.join(format!("diverging-{tag}.trace")));
    let _ = std::fs::write(dir.join(format!("wal-{tag}.bin")), wal_bytes);
    let _ = std::fs::write(
        dir.join(format!("divergence-{tag}.txt")),
        format!("{d}\ntrace: {}\n", trace.label),
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use asb_workload::{DatasetKind, QuerySetSpec, Scale};

    fn tiny_trace() -> Trace {
        Trace::record(
            DatasetKind::Mainland,
            Scale::Tiny,
            7,
            QuerySetSpec::uniform_windows(33),
            30,
        )
        .unwrap()
    }

    fn small_config() -> CrashConfig {
        CrashConfig {
            capacity: 6,
            update_every: 3,
            checkpoint_interval: 8,
            max_accesses: Some(60),
            ..CrashConfig::default()
        }
    }

    #[test]
    fn golden_run_is_deterministic() {
        let t = tiny_trace();
        let config = small_config();
        let a = golden_events(&t, &config).unwrap();
        let b = golden_events(&t, &config).unwrap();
        assert_eq!(a, b);
        assert!(!a.is_empty(), "the workload must produce durable events");
    }

    #[test]
    fn update_selection_and_payloads_are_seed_stable() {
        let config = small_config();
        let hits: Vec<u64> = (0..100).filter(|&i| updates_at(i, &config)).collect();
        assert!(!hits.is_empty());
        assert_eq!(
            update_payload(5, 9, config.seed),
            update_payload(5, 9, config.seed)
        );
        assert_ne!(
            update_payload(5, 9, config.seed),
            update_payload(5, 9, config.seed + 1)
        );
    }

    #[test]
    fn full_sweep_of_a_small_prefix_holds() {
        let t = tiny_trace();
        let report = crash_sweep(&t, &small_config()).unwrap();
        assert!(
            report.holds(),
            "divergences: {:?}",
            &report.divergences[..report.divergences.len().min(5)]
        );
        assert!(report.crash_points > 0);
        assert_eq!(report.sweeps_run, report.crash_points * 2);
        assert!(report.updates > 0);
        assert!(
            report.torn_tails_dropped > 0,
            "torn WAL appends must be swept and detected"
        );
    }

    #[test]
    fn oracle_tracks_the_committed_prefix() {
        let t = tiny_trace();
        let config = small_config();
        let events = golden_events(&t, &config).unwrap();
        let golden = run_workload(&t, &config, CrashClock::recording()).unwrap();
        // Before any event: every page holds its initial payload.
        let initial = expected_state(&t, &events, &golden.updates, 0);
        for &(raw, _) in &t.pages {
            assert_eq!(initial[&raw].as_ref(), raw.to_le_bytes());
        }
        // After all events: every updated page holds its last update.
        let last = events.last().unwrap().index + 1;
        let fin = expected_state(&t, &events, &golden.updates, last);
        let mut want: HashMap<u64, Bytes> = HashMap::new();
        for (raw, payload) in &golden.updates {
            want.insert(*raw, payload.clone());
        }
        for (raw, payload) in want {
            assert_eq!(fin[&raw], payload);
        }
    }
}
