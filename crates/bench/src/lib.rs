//! Shared helpers for the asb Criterion benchmarks.
//!
//! The benches have a dual job: Criterion measures the *runtime* of the
//! reproduction machinery, and — because the paper's deliverables are
//! tables, not wall-clock times — every figure bench first **prints the
//! regenerated table** (once, outside the measurement loop). Run
//! `cargo bench` and read the tables from stdout; the Criterion numbers
//! tell you what a full reproduction pass costs.

use asb_core::{BufferManager, PolicyKind};
use asb_exp::FigureTable;
use asb_rtree::RTree;
use asb_storage::DiskManager;
use asb_workload::{Dataset, DatasetKind, Scale};

/// The scale benches run at. Small keeps a full `cargo bench` in minutes
/// while preserving every qualitative effect; bump to `Medium` to match
/// `repro`'s default output.
pub const BENCH_SCALE: Scale = Scale::Small;

/// The seed benches run with (same default as `repro`).
pub const BENCH_SEED: u64 = 42;

/// Prints regenerated figure tables to stdout (once per bench).
pub fn print_tables(tables: &[FigureTable]) {
    for t in tables {
        println!("{}", t.render_text());
    }
}

/// Builds a bulk-loaded mainland tree with an attached buffer — the common
/// fixture of the micro and ablation benches.
pub fn buffered_tree(
    scale: Scale,
    policy: PolicyKind,
    buffer_frac: f64,
) -> (RTree<DiskManager>, Dataset) {
    let dataset = Dataset::generate(DatasetKind::Mainland, scale, BENCH_SEED);
    let mut tree = RTree::bulk_load(DiskManager::new(), dataset.items()).expect("bulk load");
    let pages = ((tree.page_count() as f64 * buffer_frac).round() as usize).max(8);
    tree.set_buffer(BufferManager::with_policy(policy, pages));
    (tree, dataset)
}
