//! Shared helpers for the asb Criterion benchmarks.
//!
//! The benches have a dual job: Criterion measures the *runtime* of the
//! reproduction machinery, and — because the paper's deliverables are
//! tables, not wall-clock times — every figure bench first **prints the
//! regenerated table** (once, outside the measurement loop). Run
//! `cargo bench` and read the tables from stdout; the Criterion numbers
//! tell you what a full reproduction pass costs.

use asb_core::{BufferManager, PolicyKind};
use asb_exp::FigureTable;
use asb_rtree::RTree;
use asb_storage::DiskManager;
use asb_workload::{Dataset, DatasetKind, Scale};

/// The scale benches run at. Small keeps a full `cargo bench` in minutes
/// while preserving every qualitative effect; bump to `Medium` to match
/// `repro`'s default output.
pub const BENCH_SCALE: Scale = Scale::Small;

/// The seed benches run with (same default as `repro`).
pub const BENCH_SEED: u64 = 42;

/// Prints regenerated figure tables to stdout (once per bench).
pub fn print_tables(tables: &[FigureTable]) {
    for t in tables {
        println!("{}", t.render_text());
    }
}

/// Builds a bulk-loaded mainland tree with an attached buffer — the common
/// fixture of the micro and ablation benches.
pub fn buffered_tree(
    scale: Scale,
    policy: PolicyKind,
    buffer_frac: f64,
) -> (RTree<DiskManager>, Dataset) {
    let dataset = Dataset::generate(DatasetKind::Mainland, scale, BENCH_SEED);
    let mut tree = RTree::bulk_load(DiskManager::new(), dataset.items()).expect("bulk load");
    let pages = ((tree.page_count() as f64 * buffer_frac).round() as usize).max(8);
    tree.set_buffer(BufferManager::with_policy(policy, pages));
    (tree, dataset)
}

/// Verdict of [`scaling_gate`]: run the 4-thread scaling assertion, or
/// skip it with a printable reason.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScalingGate {
    /// The comparison is meaningful on this run — assert it.
    Assert,
    /// The comparison would be noise — print the reason instead. The line
    /// always starts with `skipped:` so logs can be grepped for it.
    Skip(String),
}

/// Decides whether the concurrency bench's headline claim — the sharded
/// pool out-serves the coarse mutex at 4 threads — can be asserted.
///
/// It cannot when fewer than 4 cores are available (threads never truly
/// overlap, so the striped pool has no parallelism to win with) or on a
/// `--test` smoke run (the trace is too short for stable timings). Both
/// cases must be *visibly* skipped: a silent pass on a 2-core CI runner
/// looks identical to a real win.
pub fn scaling_gate(smoke: bool, cores: usize) -> ScalingGate {
    if cores < 4 {
        ScalingGate::Skip(format!(
            "skipped: insufficient cores ({cores} available, 4 needed for the threads to overlap)"
        ))
    } else if smoke {
        ScalingGate::Skip(
            "skipped: smoke run (trace too short for stable throughput timings)".into(),
        )
    } else {
        ScalingGate::Assert
    }
}

#[cfg(test)]
mod tests {
    use super::{scaling_gate, ScalingGate};

    #[test]
    fn full_run_with_enough_cores_asserts() {
        assert_eq!(scaling_gate(false, 4), ScalingGate::Assert);
        assert_eq!(scaling_gate(false, 64), ScalingGate::Assert);
    }

    #[test]
    fn too_few_cores_skips_with_explicit_line() {
        for cores in [1usize, 2, 3] {
            match scaling_gate(false, cores) {
                ScalingGate::Skip(reason) => {
                    assert!(
                        reason.starts_with("skipped: insufficient cores"),
                        "reason {reason:?} must lead with the greppable marker"
                    );
                    assert!(
                        reason.contains(&format!("{cores} available")),
                        "reason {reason:?} must name the core count"
                    );
                }
                ScalingGate::Assert => panic!("{cores} cores must not assert the 4-thread claim"),
            }
        }
    }

    #[test]
    fn smoke_run_skips_even_on_big_machines() {
        match scaling_gate(true, 64) {
            ScalingGate::Skip(reason) => assert!(reason.starts_with("skipped:")),
            ScalingGate::Assert => panic!("smoke runs must not assert throughput claims"),
        }
    }

    #[test]
    fn insufficient_cores_dominates_smoke_mode() {
        // A 2-core smoke run reports the core shortfall, the condition
        // that would also break a full run on the same machine.
        match scaling_gate(true, 2) {
            ScalingGate::Skip(reason) => {
                assert!(reason.starts_with("skipped: insufficient cores"))
            }
            ScalingGate::Assert => panic!("2-core smoke run must skip"),
        }
    }
}
