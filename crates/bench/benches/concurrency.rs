//! Concurrency benchmarks: the lock-striped [`ShardedBuffer`] against the
//! coarse-mutex [`SharedBuffer`] on the same skewed page-access trace.
//!
//! Two views of the same experiment:
//!
//! * a thread-scaling table (1 → 8 threads) printed once, timed directly —
//!   wall-clock to drain a fixed trace split evenly across threads;
//! * criterion timings for the headline configurations.
//!
//! The number that matters: at 4 threads the sharded pool must out-serve
//! the single mutex, which serializes even buffer hits. Whether that
//! claim is actually asserted is decided by [`asb_bench::scaling_gate`]:
//! on machines that cannot overlap 4 threads (or on `--test` smoke runs)
//! it prints an explicit `skipped: ...` line instead of silently passing.

use asb_core::{PolicyKind, ShardedBuffer, SharedBuffer};
use asb_geom::{Rect, SpatialStats};
use asb_storage::{AccessContext, DiskManager, PageId, PageMeta, PageStore, QueryId};
use bytes::Bytes;
use criterion::{criterion_group, criterion_main, Criterion};
use std::time::{Duration, Instant};

const PAGES: usize = 2_000;
const CAPACITY: usize = 256;
const SHARDS: usize = 16;

fn fresh_disk() -> (DiskManager, Vec<PageId>) {
    let mut disk = DiskManager::new();
    let ids = (0..PAGES as u64)
        .map(|i| {
            let side = 0.5 + (i % 97) as f64;
            let meta = PageMeta::data(SpatialStats::from_rects(&[Rect::new(0.0, 0.0, side, side)]));
            disk.allocate(meta, Bytes::new()).expect("allocate")
        })
        .collect();
    disk.reset_stats();
    (disk, ids)
}

/// A clustered trace: 80% of accesses go to a hot 10% of pages.
fn trace(ids: &[PageId], len: usize) -> Vec<(PageId, QueryId)> {
    let mut state = 0x0123_4567_89AB_CDEFu64;
    let mut rng = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    (0..len as u64)
        .map(|i| {
            let hot = rng() % 10 < 8;
            let slot = if hot {
                rng() % (PAGES as u64 / 10)
            } else {
                rng() % PAGES as u64
            };
            (ids[slot as usize], QueryId::new(i / 8))
        })
        .collect()
}

/// Drains `accesses` split evenly over `threads` workers, all reading
/// through `read`. Returns the wall-clock time of the slowest worker path.
fn drain<F>(accesses: &[(PageId, QueryId)], threads: usize, read: F) -> Duration
where
    F: Fn(PageId, AccessContext) + Sync,
{
    let started = Instant::now();
    std::thread::scope(|s| {
        for t in 0..threads {
            let read = &read;
            s.spawn(move || {
                for &(id, q) in accesses.iter().skip(t).step_by(threads) {
                    read(id, AccessContext::query(q));
                }
            });
        }
    });
    started.elapsed()
}

fn throughput(accesses: usize, elapsed: Duration) -> f64 {
    accesses as f64 / elapsed.as_secs_f64()
}

/// Prints the thread-scaling table and checks the headline claim.
fn scaling_table(c: &mut Criterion) {
    let smoke = std::env::args().any(|a| a == "--test");
    let len = if smoke { 4_000 } else { 200_000 };
    let (disk, ids) = fresh_disk();
    let accesses = trace(&ids, len);
    drop(disk);

    println!(
        "\nconcurrency scaling: {len} reads, {PAGES} pages, capacity {CAPACITY}, \
         {SHARDS} shards\n{:<26} {:>8} {:>14} {:>10}",
        "configuration", "threads", "reads/s", "speedup"
    );

    let mut shared_4t = 0.0f64;
    let mut sharded_4t = 0.0f64;
    for policy in [PolicyKind::Lru, PolicyKind::Asb] {
        let mut base = None;
        for threads in [1usize, 2, 4, 8] {
            let (disk, _) = fresh_disk();
            let pool = ShardedBuffer::new(disk, policy, CAPACITY, SHARDS);
            let elapsed = drain(&accesses, threads, |id, ctx| {
                std::hint::black_box(pool.fetch(id, ctx).expect("read"));
            });
            let rate = throughput(len, elapsed);
            let base = *base.get_or_insert(rate);
            if policy == PolicyKind::Lru && threads == 4 {
                sharded_4t = rate;
            }
            println!(
                "{:<26} {:>8} {:>14.0} {:>9.2}x",
                format!("sharded/{}", policy.label()),
                threads,
                rate,
                rate / base
            );
        }
    }
    {
        let mut base = None;
        for threads in [1usize, 2, 4, 8] {
            let (disk, _) = fresh_disk();
            let pool = SharedBuffer::new(
                disk,
                asb_core::BufferManager::with_policy(PolicyKind::Lru, CAPACITY),
            );
            let elapsed = drain(&accesses, threads, |id, ctx| {
                std::hint::black_box(pool.fetch(id, ctx).expect("read"));
            });
            let rate = throughput(len, elapsed);
            let base = *base.get_or_insert(rate);
            if threads == 4 {
                shared_4t = rate;
            }
            println!(
                "{:<26} {:>8} {:>14.0} {:>9.2}x",
                "shared-mutex/LRU",
                threads,
                rate,
                rate / base
            );
        }
    }

    println!(
        "4-thread LRU throughput: sharded {sharded_4t:.0}/s vs shared-mutex {shared_4t:.0}/s \
         ({:.2}x)",
        sharded_4t / shared_4t
    );

    // Miss-path dedup: 8 threads hammer one cold page; the I/O scheduler
    // must collapse the burst into a single store read.
    {
        let (disk, ids) = fresh_disk();
        let pool = ShardedBuffer::new(disk, PolicyKind::Lru, CAPACITY, SHARDS);
        let cold = ids[0];
        std::thread::scope(|s| {
            for _ in 0..8 {
                let pool = pool.clone();
                s.spawn(move || {
                    std::hint::black_box(pool.fetch(cold, AccessContext::default()).expect("read"));
                });
            }
        });
        let flights = pool.flight_stats();
        println!(
            "single-flight: 8 concurrent misses on one page -> {} store read(s) \
             ({} led, {} joined)",
            pool.io_stats().reads,
            flights.led,
            flights.joined
        );
        assert_eq!(
            pool.io_stats().reads,
            1,
            "duplicate fetch slipped past the scheduler"
        );
    }
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    match asb_bench::scaling_gate(smoke, cores) {
        asb_bench::ScalingGate::Assert => assert!(
            sharded_4t > shared_4t,
            "sharded pool must out-serve the coarse mutex at 4 threads"
        ),
        asb_bench::ScalingGate::Skip(reason) => {
            println!("4-thread scaling assertion {reason}");
        }
    }

    // Headline configurations under criterion's timing loop.
    let mut group = c.benchmark_group("concurrency");
    group.sample_size(10);
    for (name, threads) in [("sharded_lru_1t", 1usize), ("sharded_lru_4t", 4)] {
        let (disk, _) = fresh_disk();
        let pool = ShardedBuffer::new(disk, PolicyKind::Lru, CAPACITY, SHARDS);
        group.bench_function(name, |b| {
            b.iter(|| {
                drain(&accesses, threads, |id, ctx| {
                    std::hint::black_box(pool.fetch(id, ctx).expect("read"));
                })
            })
        });
    }
    for (name, threads) in [("shared_mutex_lru_1t", 1usize), ("shared_mutex_lru_4t", 4)] {
        let (disk, _) = fresh_disk();
        let pool = SharedBuffer::new(
            disk,
            asb_core::BufferManager::with_policy(PolicyKind::Lru, CAPACITY),
        );
        group.bench_function(name, |b| {
            b.iter(|| {
                drain(&accesses, threads, |id, ctx| {
                    std::hint::black_box(pool.fetch(id, ctx).expect("read"));
                })
            })
        });
    }
    group.finish();
}

criterion_group!(concurrency, scaling_table);
criterion_main!(concurrency);
