//! One benchmark per data figure of the paper (Figures 4–9, 12–14).
//!
//! Each bench regenerates the figure's tables once and prints them (the
//! reproduction output), then lets Criterion measure the cost of the
//! figure's full experiment sweep from a cold lab.

use asb_bench::{print_tables, BENCH_SCALE, BENCH_SEED};
use asb_exp::{figure, Lab};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_figure(c: &mut Criterion, id: u8) {
    // Print the regenerated tables once.
    let mut lab = Lab::new(BENCH_SCALE, BENCH_SEED);
    print_tables(&figure(id, &mut lab).expect("figure regeneration"));

    // Measure a cold regeneration (tree build + all runs of the figure).
    let mut group = c.benchmark_group("figures");
    group.sample_size(10);
    group.bench_function(format!("fig{id:02}"), |b| {
        b.iter(|| {
            let mut lab = Lab::new(BENCH_SCALE, BENCH_SEED);
            std::hint::black_box(figure(id, &mut lab).expect("figure regeneration"))
        })
    });
    group.finish();
}

fn fig04(c: &mut Criterion) {
    bench_figure(c, 4);
}
fn fig05(c: &mut Criterion) {
    bench_figure(c, 5);
}
fn fig06(c: &mut Criterion) {
    bench_figure(c, 6);
}
fn fig07(c: &mut Criterion) {
    bench_figure(c, 7);
}
fn fig08(c: &mut Criterion) {
    bench_figure(c, 8);
}
fn fig09(c: &mut Criterion) {
    bench_figure(c, 9);
}
fn fig12(c: &mut Criterion) {
    bench_figure(c, 12);
}
fn fig13(c: &mut Criterion) {
    bench_figure(c, 13);
}
fn fig14(c: &mut Criterion) {
    bench_figure(c, 14);
}

criterion_group!(figures, fig04, fig05, fig06, fig07, fig08, fig09, fig12, fig13, fig14);
criterion_main!(figures);
