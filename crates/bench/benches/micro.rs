//! Micro-benchmarks of the building blocks: buffer operations per policy,
//! R*-tree queries and updates, node codec, spatial statistics, curves.

use asb_bench::{buffered_tree, BENCH_SCALE, BENCH_SEED};
use asb_core::{BufferManager, PolicyKind, SpatialCriterion};
use asb_geom::{curve, Point, Rect, SpatialStats};
use asb_rtree::{LeafEntry, Node, NodeKind, RTree};
use asb_storage::{AccessContext, DiskManager, Page, PageId, PageMeta, PageStore, QueryId};
use asb_workload::{Dataset, DatasetKind, QuerySetSpec, Scale};
use bytes::Bytes;
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

/// Buffer throughput per policy on a realistic page-access trace (the page
/// reference string of a window-query workload).
fn bench_buffer_policies(c: &mut Criterion) {
    // Record a reference trace once by replaying queries on a plain tree
    // with a tracing wrapper: simplest is to re-run queries per iteration,
    // but that measures tree code too. Instead, synthesize a clustered
    // trace over page ids with Zipf-ish locality.
    let mut disk = DiskManager::new();
    let mut ids = Vec::new();
    for i in 0..2_000u64 {
        let side = 0.5 + (i % 97) as f64;
        let meta = PageMeta::data(SpatialStats::from_rects(&[Rect::new(0.0, 0.0, side, side)]));
        ids.push(disk.allocate(meta, Bytes::new()).expect("allocate"));
    }
    let trace: Vec<(PageId, QueryId)> = {
        let mut state = 0x0123_4567_89AB_CDEF_u64;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        (0..50_000u64)
            .map(|i| {
                // 80% of accesses to a hot 10% of pages.
                let hot = rng() % 10 < 8;
                let slot = if hot { rng() % 200 } else { rng() % 2_000 };
                (ids[slot as usize], QueryId::new(i / 8))
            })
            .collect()
    };

    let mut group = c.benchmark_group("buffer_policy_throughput");
    group.sample_size(10);
    for policy in [
        PolicyKind::Lru,
        PolicyKind::Fifo,
        PolicyKind::Clock,
        PolicyKind::LruP,
        PolicyKind::LruK { k: 2 },
        PolicyKind::Spatial(SpatialCriterion::Area),
        PolicyKind::Slru {
            candidate_fraction: 0.25,
            criterion: SpatialCriterion::Area,
        },
        PolicyKind::Asb,
    ] {
        group.bench_function(policy.label(), |b| {
            b.iter_batched(
                || BufferManager::with_policy(policy, 256),
                |mut buf| {
                    for &(id, q) in &trace {
                        std::hint::black_box(
                            buf.fetch(&mut disk, id, AccessContext::query(q))
                                .expect("read"),
                        );
                    }
                    buf
                },
                BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

/// Window-query latency through a warm ASB buffer.
fn bench_tree_queries(c: &mut Criterion) {
    let (mut tree, dataset) = buffered_tree(BENCH_SCALE, PolicyKind::Asb, 0.047);
    let queries = QuerySetSpec::uniform_windows(100).generate(&dataset, 512, BENCH_SEED);
    // Warm up.
    for q in &queries {
        tree.execute(q).expect("query");
    }
    let mut group = c.benchmark_group("rtree");
    group.bench_function("window_query_warm_asb", |b| {
        let mut i = 0usize;
        b.iter(|| {
            let q = &queries[i % queries.len()];
            i += 1;
            std::hint::black_box(tree.execute(q).expect("query"))
        })
    });
    group.finish();
}

/// STR bulk-load throughput.
fn bench_bulk_load(c: &mut Criterion) {
    let dataset = Dataset::generate(DatasetKind::Mainland, Scale::Small, BENCH_SEED);
    let mut group = c.benchmark_group("rtree");
    group.sample_size(10);
    group.bench_function("bulk_load_20k", |b| {
        b.iter(|| {
            std::hint::black_box(
                RTree::bulk_load(DiskManager::new(), dataset.items()).expect("bulk"),
            )
        })
    });
    group.finish();
}

/// Insert throughput with the full R* machinery (forced reinsert, splits).
fn bench_inserts(c: &mut Criterion) {
    let dataset = Dataset::generate(DatasetKind::Mainland, Scale::Tiny, BENCH_SEED);
    let mut group = c.benchmark_group("rtree");
    group.sample_size(10);
    group.bench_function("insert_2k", |b| {
        b.iter(|| {
            let mut tree = RTree::new(DiskManager::new()).expect("tree");
            for &it in dataset.items() {
                tree.insert(it).expect("insert");
            }
            std::hint::black_box(tree)
        })
    });
    group.finish();
}

/// Node serialization round-trip at full fan-out.
fn bench_node_codec(c: &mut Criterion) {
    let entries: Vec<LeafEntry> = (0..42)
        .map(|i| LeafEntry {
            mbr: Rect::new(i as f64, 0.0, i as f64 + 1.0, 1.0),
            object_id: i,
            object_page: 0,
        })
        .collect();
    let node = Node {
        level: 1,
        kind: NodeKind::Leaf(entries),
    };
    let page = Page::new(PageId::new(1), node.page_meta(), node.encode()).expect("page");
    let mut group = c.benchmark_group("codec");
    group.bench_function("encode_full_leaf", |b| {
        b.iter(|| std::hint::black_box(node.encode()))
    });
    group.bench_function("decode_full_leaf", |b| {
        b.iter(|| std::hint::black_box(Node::decode(&page).expect("decode")))
    });
    group.finish();
}

/// Per-page spatial statistics (the cost the paper calls "only a small
/// overhead when a new page is loaded into the buffer").
fn bench_spatial_stats(c: &mut Criterion) {
    let rects: Vec<Rect> = (0..42)
        .map(|i| {
            let x = (i as f64 * 13.0) % 100.0;
            Rect::new(x, x / 2.0, x + 3.0, x / 2.0 + 2.0)
        })
        .collect();
    let mut group = c.benchmark_group("geom");
    group.bench_function("spatial_stats_42_entries", |b| {
        b.iter(|| std::hint::black_box(SpatialStats::from_rects(&rects)))
    });
    group.bench_function("hilbert_key", |b| {
        let mut i = 0u32;
        b.iter(|| {
            i = i.wrapping_add(0x9E37_79B9);
            std::hint::black_box(curve::hilbert(i, i.rotate_left(16)))
        })
    });
    group.finish();
}

/// k-NN query latency.
fn bench_nearest(c: &mut Criterion) {
    let (mut tree, _) = buffered_tree(Scale::Small, PolicyKind::Lru, 0.05);
    let mut group = c.benchmark_group("rtree");
    group.bench_function("knn_10", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let p = Point::new((i % 100) as f64 / 100.0, (i % 77) as f64 / 77.0);
            std::hint::black_box(tree.nearest_neighbors(p, 10).expect("knn"))
        })
    });
    group.finish();
}

/// Point-query latency as the paper's workloads issue them.
fn bench_point_queries(c: &mut Criterion) {
    let (mut tree, dataset) = buffered_tree(BENCH_SCALE, PolicyKind::LruK { k: 2 }, 0.047);
    let queries = QuerySetSpec::identical_points().generate(&dataset, 512, BENCH_SEED);
    let mut group = c.benchmark_group("rtree");
    group.bench_function("point_query_lru2", |b| {
        let mut i = 0usize;
        b.iter(|| {
            let q = &queries[i % queries.len()];
            i += 1;
            std::hint::black_box(tree.execute(q).expect("query"))
        })
    });
    group.finish();
}

criterion_group!(
    micro,
    bench_buffer_policies,
    bench_tree_queries,
    bench_bulk_load,
    bench_inserts,
    bench_node_codec,
    bench_spatial_stats,
    bench_nearest,
    bench_point_queries
);
criterion_main!(micro);
