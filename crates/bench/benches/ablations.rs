//! Ablation studies covering the paper's stated future work:
//!
//! 1. the influence of the **overflow-buffer size** (and of the adaptation
//!    step) on the adaptable spatial buffer,
//! 2. random vs sequential I/O accounting (printed with every table),
//! 3. the influence of the strategies on **updates and spatial joins**.
//!
//! Each ablation prints its result table once, then Criterion measures one
//! representative configuration.

use asb_bench::{BENCH_SCALE, BENCH_SEED};
use asb_core::{AsbParams, BufferManager, PolicyKind, SpatialCriterion};
use asb_exp::Lab;
use asb_rtree::{spatial_join, RTree};
use asb_storage::DiskManager;
use asb_workload::{Dataset, DatasetKind, QueryKind, QuerySetSpec, Scale};
use criterion::{criterion_group, criterion_main, Criterion};

/// Future work 1: sweep the ASB overflow-buffer fraction.
fn ablation_overflow(c: &mut Criterion) {
    let mut lab = Lab::new(BENCH_SCALE, BENCH_SEED);
    let sets = [
        QuerySetSpec::uniform_windows(33),
        QuerySetSpec::intensified(QueryKind::Point),
        QuerySetSpec::similar(QueryKind::Window { ex: 33 }),
    ];
    println!("## ablation — ASB overflow-buffer fraction (gain vs LRU [%], db1, 4.7% buffer)");
    println!(
        "{:<12} {:>10} {:>10} {:>10}",
        "overflow",
        sets[0].name(),
        sets[1].name(),
        sets[2].name()
    );
    for overflow in [0.05, 0.1, 0.2, 0.3, 0.4] {
        let policy = PolicyKind::AsbWith(AsbParams {
            overflow_fraction: overflow,
            ..AsbParams::default()
        });
        let gains: Vec<f64> = sets
            .iter()
            .map(|&s| {
                lab.gain(DatasetKind::Mainland, policy, 0.047, s)
                    .expect("gain")
            })
            .collect();
        println!(
            "{:<12} {:>10.1} {:>10.1} {:>10.1}",
            format!("{:.0}%", overflow * 100.0),
            gains[0],
            gains[1],
            gains[2]
        );
    }

    let mut group = c.benchmark_group("ablations");
    group.sample_size(10);
    group.bench_function("asb_overflow_sweep_cell", |b| {
        b.iter(|| {
            let mut lab = Lab::new(Scale::Tiny, BENCH_SEED);
            std::hint::black_box(lab.gain(
                DatasetKind::Mainland,
                PolicyKind::Asb,
                0.047,
                QuerySetSpec::uniform_windows(33),
            ))
        })
    });
    group.finish();
}

/// Future work 1 (continued): sweep the ASB adaptation step.
fn ablation_step(c: &mut Criterion) {
    let mut lab = Lab::new(BENCH_SCALE, BENCH_SEED);
    let sets = [
        QuerySetSpec::uniform_windows(33),
        QuerySetSpec::intensified(QueryKind::Point),
    ];
    println!("## ablation — ASB adaptation step (gain vs LRU [%], db1, 4.7% buffer)");
    println!(
        "{:<12} {:>10} {:>10}",
        "step",
        sets[0].name(),
        sets[1].name()
    );
    for step in [0.005, 0.01, 0.02, 0.05, 0.1] {
        let policy = PolicyKind::AsbWith(AsbParams {
            step_fraction: step,
            ..AsbParams::default()
        });
        let gains: Vec<f64> = sets
            .iter()
            .map(|&s| {
                lab.gain(DatasetKind::Mainland, policy, 0.047, s)
                    .expect("gain")
            })
            .collect();
        println!(
            "{:<12} {:>10.1} {:>10.1}",
            format!("{:.1}%", step * 100.0),
            gains[0],
            gains[1]
        );
    }

    let mut group = c.benchmark_group("ablations");
    group.sample_size(10);
    group.bench_function("asb_step_sweep_cell", |b| {
        b.iter(|| {
            let mut lab = Lab::new(Scale::Tiny, BENCH_SEED);
            std::hint::black_box(lab.gain(
                DatasetKind::Mainland,
                PolicyKind::AsbWith(AsbParams {
                    step_fraction: 0.05,
                    ..AsbParams::default()
                }),
                0.047,
                QuerySetSpec::uniform_windows(33),
            ))
        })
    });
    group.finish();
}

/// Future work 1b: random vs sequential I/O per policy on one workload.
fn ablation_io_mix(c: &mut Criterion) {
    let mut lab = Lab::new(BENCH_SCALE, BENCH_SEED);
    let spec = QuerySetSpec::uniform_windows(33);
    println!("## ablation — random vs sequential I/O (db1, U-W-33, 4.7% buffer)");
    println!(
        "{:<10} {:>10} {:>10} {:>10} {:>12}",
        "policy", "random", "sequential", "seq share", "sim I/O [ms]"
    );
    for policy in [
        PolicyKind::Lru,
        PolicyKind::LruK { k: 2 },
        PolicyKind::Spatial(SpatialCriterion::Area),
        PolicyKind::Asb,
    ] {
        let r = lab
            .run(DatasetKind::Mainland, policy, 0.047, spec)
            .expect("run");
        println!(
            "{:<10} {:>10} {:>10} {:>9.1}% {:>12.0}",
            policy.label(),
            r.io.random_reads,
            r.io.sequential_reads,
            100.0 * r.io.sequential_reads as f64 / r.io.reads.max(1) as f64,
            r.io.simulated_ms
        );
    }

    let mut group = c.benchmark_group("ablations");
    group.sample_size(10);
    group.bench_function("io_mix_cell", |b| {
        b.iter(|| {
            let mut lab = Lab::new(Scale::Tiny, BENCH_SEED);
            std::hint::black_box(lab.run(DatasetKind::Mainland, PolicyKind::Lru, 0.047, spec))
        })
    });
    group.finish();
}

/// Future work 2a: spatial join I/O per policy.
fn ablation_join(c: &mut Criterion) {
    let layer_a = Dataset::generate(DatasetKind::Mainland, BENCH_SCALE, 3);
    let layer_b = Dataset::generate(DatasetKind::World, BENCH_SCALE, 4);
    println!("## ablation — spatial join disk accesses per policy (2% buffers)");
    println!(
        "{:<10} {:>10} {:>10} {:>12}",
        "policy", "reads A", "reads B", "pairs"
    );
    for policy in [
        PolicyKind::Lru,
        PolicyKind::LruK { k: 2 },
        PolicyKind::Spatial(SpatialCriterion::Area),
        PolicyKind::Asb,
    ] {
        let mut a = RTree::bulk_load(DiskManager::new(), layer_a.items()).expect("layer A");
        let mut b = RTree::bulk_load(DiskManager::new(), layer_b.items()).expect("layer B");
        a.set_buffer(BufferManager::with_policy(
            policy,
            (a.page_count() / 50).max(8),
        ));
        b.set_buffer(BufferManager::with_policy(
            policy,
            (b.page_count() / 50).max(8),
        ));
        a.store_mut().reset_stats();
        b.store_mut().reset_stats();
        let pairs = spatial_join(&mut a, &mut b).expect("join");
        println!(
            "{:<10} {:>10} {:>10} {:>12}",
            policy.label(),
            a.store().stats().reads,
            b.store().stats().reads,
            pairs.len()
        );
    }

    let mut group = c.benchmark_group("ablations");
    group.sample_size(10);
    let small_a = Dataset::generate(DatasetKind::Mainland, Scale::Tiny, 3);
    let small_b = Dataset::generate(DatasetKind::World, Scale::Tiny, 4);
    group.bench_function("spatial_join_tiny", |b| {
        b.iter(|| {
            let mut a = RTree::bulk_load(DiskManager::new(), small_a.items()).expect("A");
            let mut t = RTree::bulk_load(DiskManager::new(), small_b.items()).expect("B");
            std::hint::black_box(spatial_join(&mut a, &mut t).expect("join"))
        })
    });
    group.finish();
}

/// Future work 2b: update-heavy workload (insert/delete churn interleaved
/// with queries) per policy.
fn ablation_updates(c: &mut Criterion) {
    let dataset = Dataset::generate(DatasetKind::Mainland, BENCH_SCALE, 7);
    let items = dataset.items();
    let half = items.len() / 2;
    let queries = QuerySetSpec::uniform_windows(100).generate(&dataset, 400, 9);

    println!("## ablation — update churn + queries, disk accesses per policy (2% buffer)");
    println!(
        "{:<10} {:>12} {:>12}",
        "policy", "disk reads", "disk writes"
    );
    for policy in [
        PolicyKind::Lru,
        PolicyKind::LruK { k: 2 },
        PolicyKind::Spatial(SpatialCriterion::Area),
        PolicyKind::Asb,
    ] {
        let mut tree = RTree::bulk_load(DiskManager::new(), &items[..half]).expect("bulk");
        tree.set_buffer(BufferManager::with_policy(
            policy,
            (tree.page_count() / 50).max(8),
        ));
        tree.store_mut().reset_stats();
        for i in 0..400usize {
            let victim = items[i * 3 % half];
            tree.delete(victim.id, &victim.mbr).expect("delete");
            tree.insert(items[half + i]).expect("insert");
            tree.execute(&queries[i % queries.len()]).expect("query");
            let back = items[i * 3 % half];
            tree.insert(back).expect("reinsert");
            let gone = items[half + i];
            tree.delete(gone.id, &gone.mbr).expect("delete fresh");
        }
        let io = tree.store().stats();
        println!("{:<10} {:>12} {:>12}", policy.label(), io.reads, io.writes);
    }

    let mut group = c.benchmark_group("ablations");
    group.sample_size(10);
    let tiny = Dataset::generate(DatasetKind::Mainland, Scale::Tiny, 7);
    group.bench_function("update_churn_tiny", |b| {
        b.iter(|| {
            let mut tree =
                RTree::bulk_load(DiskManager::new(), &tiny.items()[..1000]).expect("bulk");
            tree.set_buffer(BufferManager::with_policy(PolicyKind::Asb, 16));
            for i in 0..100usize {
                let victim = tiny.items()[i * 7 % 1000];
                tree.delete(victim.id, &victim.mbr).expect("delete");
                tree.insert(tiny.items()[1000 + i]).expect("insert");
            }
            std::hint::black_box(tree.len())
        })
    });
    group.finish();
}

criterion_group!(
    ablations,
    ablation_overflow,
    ablation_step,
    ablation_io_mix,
    ablation_join,
    ablation_updates
);
criterion_main!(ablations);
