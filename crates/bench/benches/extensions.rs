//! Benchmarks of the extension experiments (object pages, cross-SAM,
//! moving objects) — each prints its regenerated table once, then Criterion
//! measures a cold run at tiny scale.

use asb_bench::{print_tables, BENCH_SCALE, BENCH_SEED};
use asb_exp::{ext_cross_sam, ext_moving_objects, ext_object_pages};
use asb_workload::Scale;
use criterion::{criterion_group, criterion_main, Criterion};

fn object_pages(c: &mut Criterion) {
    print_tables(&[ext_object_pages(BENCH_SCALE, BENCH_SEED).expect("extension")]);
    let mut group = c.benchmark_group("extensions");
    group.sample_size(10);
    group.bench_function("ext_object_pages_tiny", |b| {
        b.iter(|| std::hint::black_box(ext_object_pages(Scale::Tiny, BENCH_SEED)))
    });
    group.finish();
}

fn cross_sam(c: &mut Criterion) {
    print_tables(&[ext_cross_sam(BENCH_SCALE, BENCH_SEED).expect("extension")]);
    let mut group = c.benchmark_group("extensions");
    group.sample_size(10);
    group.bench_function("ext_cross_sam_tiny", |b| {
        b.iter(|| std::hint::black_box(ext_cross_sam(Scale::Tiny, BENCH_SEED)))
    });
    group.finish();
}

fn moving_objects(c: &mut Criterion) {
    print_tables(&[ext_moving_objects(BENCH_SCALE, BENCH_SEED).expect("extension")]);
    let mut group = c.benchmark_group("extensions");
    group.sample_size(10);
    group.bench_function("ext_moving_tiny", |b| {
        b.iter(|| std::hint::black_box(ext_moving_objects(Scale::Tiny, BENCH_SEED)))
    });
    group.finish();
}

criterion_group!(extensions, object_pages, cross_sam, moving_objects);
criterion_main!(extensions);
