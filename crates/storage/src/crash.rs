//! Deterministic crash injection: simulated process kills at arbitrary
//! durable-I/O points.
//!
//! The fault layer ([`FaultyStore`](crate::FaultyStore)) models a disk that
//! misbehaves while the process keeps running. This module models the
//! complementary failure: the *process* dies mid-operation while the disk
//! and the write-ahead log survive exactly as far as they got.
//!
//! The crash-point model: a crash is only observable through the durable
//! state it leaves behind, and durable state changes only at *mutation*
//! events — store page writes and WAL record appends. A [`CrashClock`]
//! therefore assigns a global index to every such event; killing "at event
//! `i`" means events `0..i` completed, event `i` either never happened
//! ([`CrashMode::Clean`]) or was half-applied ([`CrashMode::Torn`]: a torn
//! page write, or a truncated partial WAL record), and nothing after `i`
//! exists. Crashing between two reads is indistinguishable from crashing
//! before the next mutation, so sweeping every event index (in both modes)
//! exhaustively covers every distinguishable crash of a deterministic run.
//!
//! After the injected kill, every operation on the [`CrashableStore`] (and
//! on a WAL sharing the same clock) fails with
//! [`StorageError::Crashed`] — the process is gone; only
//! [`CrashableStore::into_inner`] (the surviving disk image) and the WAL
//! bytes remain for recovery.

use std::sync::Arc;

use bytes::Bytes;

use crate::page::{Page, PageId};
use crate::store::{AccessContext, ConcurrentPageStore, PageStore};
use crate::sync::Mutex;
use crate::{IoStats, PageMeta, StorageError};

/// What a crash leaves at the event it interrupts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashMode {
    /// The process dies *before* the event: the targeted write or append
    /// never reaches durable state.
    Clean,
    /// The process dies *during* the event: a store write leaves a torn
    /// page (truncated payload under the new checksum), a WAL append leaves
    /// a truncated partial record. Recovery must detect and repair both.
    Torn,
}

/// A scheduled kill: die at durable event `kill_at` in the given mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashPlan {
    /// Global index of the durable event to interrupt.
    pub kill_at: u64,
    /// Whether the interrupted event is dropped or half-applied.
    pub mode: CrashMode,
}

/// The durable mutation a crash event interrupted (or, in a recording run,
/// observed).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashOp {
    /// A record append to the write-ahead log. `page` names the page of a
    /// page-image record; `None` marks a checkpoint record.
    WalAppend {
        /// Page of a page-image record, `None` for checkpoints.
        page: Option<PageId>,
    },
    /// A page write reaching the backing store (write-through, write-back
    /// or flush).
    StoreWrite {
        /// The page being written.
        page: PageId,
    },
}

/// One observed durable event of a recording run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashEvent {
    /// Global event index (the crash-point id).
    pub index: u64,
    /// What the event was.
    pub op: CrashOp,
}

/// Fate the clock assigns to a durable mutation that is allowed to touch
/// durable state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteFate {
    /// The mutation completes normally.
    Intact,
    /// The mutation is half-applied and the process dies immediately after:
    /// the caller must apply a torn variant and then surface
    /// [`StorageError::Crashed`].
    Torn,
}

struct ClockState {
    next: u64,
    dead: bool,
    log: Option<Vec<CrashEvent>>,
}

/// Shared event counter that schedules (or records) crash points.
///
/// One clock is shared — via `Arc` — by a [`CrashableStore`] and a
/// [`Wal`](crate::Wal), so store writes and WAL appends draw indices from a
/// single global sequence. A *recording* clock (no plan) logs every event;
/// the crash harness replays the same deterministic workload against a
/// clock armed with a [`CrashPlan`] for each recorded index.
pub struct CrashClock {
    plan: Option<CrashPlan>,
    state: Mutex<ClockState>,
}

impl CrashClock {
    /// A clock that never kills and logs every durable event.
    pub fn recording() -> Arc<Self> {
        Arc::new(CrashClock {
            plan: None,
            state: Mutex::new(ClockState {
                next: 0,
                dead: false,
                log: Some(Vec::new()),
            }),
        })
    }

    /// A clock armed to kill at `plan` (no event logging).
    pub fn with_plan(plan: CrashPlan) -> Arc<Self> {
        Arc::new(CrashClock {
            plan: Some(plan),
            state: Mutex::new(ClockState {
                next: 0,
                dead: false,
                log: None,
            }),
        })
    }

    /// Whether the simulated process has been killed.
    pub fn is_dead(&self) -> bool {
        self.state.lock().dead
    }

    /// Number of durable events observed so far.
    pub fn ops(&self) -> u64 {
        self.state.lock().next
    }

    /// The events a recording clock has logged (empty for armed clocks).
    pub fn events(&self) -> Vec<CrashEvent> {
        self.state.lock().log.clone().unwrap_or_default()
    }

    /// Fails with [`StorageError::Crashed`] once the process is dead; used
    /// by non-mutating operations (reads) that consume no event index.
    pub fn check_alive(&self) -> crate::Result<()> {
        if self.state.lock().dead {
            return Err(StorageError::Crashed);
        }
        Ok(())
    }

    /// Claims the next durable-event index for `op` and decides its fate.
    ///
    /// Returns [`WriteFate::Intact`] (proceed normally),
    /// [`WriteFate::Torn`] (half-apply, then die), or
    /// [`StorageError::Crashed`] (the event — and everything after it —
    /// never happens).
    pub fn observe(&self, op: CrashOp) -> crate::Result<WriteFate> {
        let mut st = self.state.lock();
        if st.dead {
            return Err(StorageError::Crashed);
        }
        let index = st.next;
        st.next += 1;
        if let Some(log) = st.log.as_mut() {
            log.push(CrashEvent { index, op });
        }
        if let Some(plan) = self.plan {
            if index == plan.kill_at {
                st.dead = true;
                return match plan.mode {
                    CrashMode::Clean => Err(StorageError::Crashed),
                    CrashMode::Torn => Ok(WriteFate::Torn),
                };
            }
        }
        Ok(WriteFate::Intact)
    }
}

/// Builds the torn variant of a page write: the payload is cut to its first
/// half while the page keeps the checksum of the *complete* payload, so the
/// damage fails [`Page::verify_checksum`] and recovery can detect it. (A
/// torn write of an empty payload is indistinguishable from the complete
/// write — there were no bytes to lose.)
pub fn torn_page(page: &Page) -> Page {
    let half = page.payload.len() / 2;
    Page::with_checksum(
        page.id,
        page.meta,
        page.payload.slice(0..half),
        page.checksum(),
    )
    // invariant: the torn payload is a prefix of one that already fit in a
    // page, so the size check cannot fail.
    .expect("a truncated payload never exceeds the page size")
}

/// A [`PageStore`] decorator that kills the simulated process at a
/// scheduled durable event.
///
/// Writes claim an event index from the shared [`CrashClock`]; reads,
/// allocations and frees only check that the process is still alive
/// (they are either non-durable or setup-phase operations — the crash
/// harness sweeps workloads whose durable mutations are page writes and
/// WAL appends). After the kill, every operation fails with
/// [`StorageError::Crashed`] and the inner store holds exactly the state
/// that became durable before the crash.
pub struct CrashableStore<S> {
    inner: S,
    clock: Arc<CrashClock>,
}

impl<S> CrashableStore<S> {
    /// Wraps `inner`, drawing crash decisions from `clock`.
    pub fn new(inner: S, clock: Arc<CrashClock>) -> Self {
        CrashableStore { inner, clock }
    }

    /// The shared crash clock.
    pub fn clock(&self) -> &Arc<CrashClock> {
        &self.clock
    }

    /// Shared access to the wrapped store.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// Exclusive access to the wrapped store.
    pub fn inner_mut(&mut self) -> &mut S {
        &mut self.inner
    }

    /// Unwraps into the surviving store image (what recovery operates on).
    pub fn into_inner(self) -> S {
        self.inner
    }
}

impl<S: PageStore> PageStore for CrashableStore<S> {
    fn read(&mut self, id: PageId, ctx: AccessContext) -> crate::Result<Page> {
        self.clock.check_alive()?;
        self.inner.read(id, ctx)
    }

    fn write(&mut self, page: Page) -> crate::Result<()> {
        match self.clock.observe(CrashOp::StoreWrite { page: page.id })? {
            WriteFate::Intact => self.inner.write(page),
            WriteFate::Torn => {
                self.inner.write(torn_page(&page))?;
                Err(StorageError::Crashed)
            }
        }
    }

    fn allocate(&mut self, meta: PageMeta, payload: Bytes) -> crate::Result<PageId> {
        self.clock.check_alive()?;
        self.inner.allocate(meta, payload)
    }

    fn free(&mut self, id: PageId) -> crate::Result<()> {
        self.clock.check_alive()?;
        self.inner.free(id)
    }

    fn page_count(&self) -> usize {
        self.inner.page_count()
    }
}

impl<S: ConcurrentPageStore> ConcurrentPageStore for CrashableStore<S> {
    fn read_shared(&self, id: PageId, ctx: AccessContext) -> crate::Result<Page> {
        self.clock.check_alive()?;
        self.inner.read_shared(id, ctx)
    }

    fn io_stats(&self) -> IoStats {
        self.inner.io_stats()
    }

    fn reset_io_stats(&self) {
        self.inner.reset_io_stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DiskManager;
    use asb_geom::SpatialStats;

    fn disk_with_pages(n: usize) -> (DiskManager, Vec<PageId>) {
        let mut disk = DiskManager::new();
        let ids = (0..n)
            .map(|i| {
                disk.allocate(
                    PageMeta::data(SpatialStats::EMPTY),
                    Bytes::from(vec![i as u8; 16]),
                )
                .expect("allocate")
            })
            .collect();
        (disk, ids)
    }

    fn page(id: PageId, byte: u8) -> Page {
        Page::new(
            id,
            PageMeta::data(SpatialStats::EMPTY),
            Bytes::from(vec![byte; 16]),
        )
        .expect("page")
    }

    #[test]
    fn recording_clock_logs_events_in_order() {
        let (disk, ids) = disk_with_pages(2);
        let clock = CrashClock::recording();
        let mut store = CrashableStore::new(disk, clock.clone());
        store.write(page(ids[0], 1)).expect("write");
        store.write(page(ids[1], 2)).expect("write");
        store.read(ids[0], AccessContext::default()).expect("read");
        let events = clock.events();
        assert_eq!(events.len(), 2, "reads claim no event index");
        assert_eq!(events[0].index, 0);
        assert_eq!(events[0].op, CrashOp::StoreWrite { page: ids[0] });
        assert_eq!(events[1].op, CrashOp::StoreWrite { page: ids[1] });
        assert!(!clock.is_dead());
    }

    #[test]
    fn clean_kill_drops_the_targeted_write_and_everything_after() {
        let (disk, ids) = disk_with_pages(2);
        let clock = CrashClock::with_plan(CrashPlan {
            kill_at: 1,
            mode: CrashMode::Clean,
        });
        let mut store = CrashableStore::new(disk, clock.clone());
        store.write(page(ids[0], 0xaa)).expect("event 0 completes");
        assert_eq!(store.write(page(ids[1], 0xbb)), Err(StorageError::Crashed));
        assert!(clock.is_dead());
        // Dead process: every further operation fails.
        assert_eq!(
            store.read(ids[0], AccessContext::default()),
            Err(StorageError::Crashed)
        );
        assert_eq!(store.write(page(ids[0], 0xcc)), Err(StorageError::Crashed));
        let disk = store.into_inner();
        assert_eq!(
            disk.peek(ids[0]).expect("peek").payload.as_ref(),
            &[0xaa; 16]
        );
        assert_eq!(
            disk.peek(ids[1]).expect("peek").payload.as_ref(),
            &[1u8; 16],
            "the killed write must not reach the disk"
        );
    }

    #[test]
    fn torn_kill_leaves_a_checksum_detectable_half_write() {
        let (disk, ids) = disk_with_pages(1);
        let clock = CrashClock::with_plan(CrashPlan {
            kill_at: 0,
            mode: CrashMode::Torn,
        });
        let mut store = CrashableStore::new(disk, clock);
        assert_eq!(store.write(page(ids[0], 0xdd)), Err(StorageError::Crashed));
        let disk = store.into_inner();
        let torn = disk.peek(ids[0]).expect("peek");
        assert_eq!(torn.payload.len(), 8, "half the 16-byte payload landed");
        assert_eq!(torn.payload.as_ref(), &[0xdd; 8]);
        assert!(
            !torn.verify_checksum(),
            "a torn write must fail checksum verification"
        );
    }

    #[test]
    fn torn_page_of_empty_payload_equals_the_complete_write() {
        let p = Page::new(
            PageId::new(0),
            PageMeta::data(SpatialStats::EMPTY),
            Bytes::new(),
        )
        .expect("page");
        let t = torn_page(&p);
        assert_eq!(t, p);
        assert!(t.verify_checksum());
    }

    #[test]
    fn armed_clock_is_deterministic_across_runs() {
        let run = || {
            let (disk, ids) = disk_with_pages(4);
            let clock = CrashClock::with_plan(CrashPlan {
                kill_at: 2,
                mode: CrashMode::Clean,
            });
            let mut store = CrashableStore::new(disk, clock);
            let mut outcomes = Vec::new();
            for round in 0..6 {
                outcomes.push(store.write(page(ids[round % 4], round as u8)).is_ok());
            }
            outcomes
        };
        assert_eq!(run(), run());
        assert_eq!(run(), vec![true, true, false, false, false, false]);
    }
}
