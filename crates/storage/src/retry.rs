//! Bounded-retry policy for transient storage faults.
//!
//! The buffer layer in `asb-core` consults a [`RetryPolicy`] whenever a
//! fetch or write-back fails with a [transient](crate::StorageError::is_transient)
//! error: the operation is re-attempted up to a bounded number of times with
//! exponential backoff, and a final failure is surfaced as the typed
//! give-up error [`StorageError::RetriesExhausted`](crate::StorageError::RetriesExhausted).
//!
//! The disk in this workspace is simulated, so backoff does not sleep;
//! the waiting time a real deployment would spend is *accounted* (in
//! simulated milliseconds) alongside the disk's own timing model.

use serde::{Deserialize, Serialize};

/// Retry schedule for transient storage faults.
///
/// `max_attempts` counts every try including the first, so `1` means "no
/// retries" and `4` means "one try plus up to three retries". Backoff before
/// retry `n` (1-based) is `base_backoff_ms * backoff_multiplier^(n-1)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Total attempt budget (≥ 1; zero is treated as 1).
    pub max_attempts: u32,
    /// Simulated backoff before the first retry, in milliseconds.
    pub base_backoff_ms: f64,
    /// Multiplier applied to the backoff after every failed retry.
    pub backoff_multiplier: f64,
}

impl Default for RetryPolicy {
    /// Four attempts with 0.5 ms → 1 ms → 2 ms backoff: bounded, and small
    /// next to the ~10 ms random-access cost of the simulated disk.
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            base_backoff_ms: 0.5,
            backoff_multiplier: 2.0,
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries: every transient fault is surfaced
    /// immediately (wrapped in the give-up error after the single attempt).
    pub fn none() -> Self {
        RetryPolicy {
            max_attempts: 1,
            base_backoff_ms: 0.0,
            backoff_multiplier: 1.0,
        }
    }

    /// The effective attempt budget (at least 1).
    pub fn attempts(&self) -> u32 {
        self.max_attempts.max(1)
    }

    /// Simulated backoff in milliseconds before retry number
    /// `failed_attempts` (the number of attempts that have already failed;
    /// zero yields no backoff).
    pub fn backoff_ms(&self, failed_attempts: u32) -> f64 {
        if failed_attempts == 0 {
            return 0.0;
        }
        // Saturate the exponent: a raw `as i32` cast wraps for counts past
        // i32::MAX, turning a huge retry number into a *negative* exponent
        // and collapsing the backoff to ~zero instead of growing it.
        let exponent = i32::try_from(failed_attempts - 1).unwrap_or(i32::MAX);
        self.base_backoff_ms * self.backoff_multiplier.powi(exponent)
    }

    /// Total simulated backoff if every retry of the budget is used.
    pub fn worst_case_backoff_ms(&self) -> f64 {
        (1..self.attempts()).map(|n| self.backoff_ms(n)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_budget_is_bounded() {
        let r = RetryPolicy::default();
        assert_eq!(r.attempts(), 4);
        assert_eq!(r.backoff_ms(0), 0.0);
        assert_eq!(r.backoff_ms(1), 0.5);
        assert_eq!(r.backoff_ms(2), 1.0);
        assert_eq!(r.backoff_ms(3), 2.0);
        assert_eq!(r.worst_case_backoff_ms(), 3.5);
    }

    #[test]
    fn none_never_retries() {
        let r = RetryPolicy::none();
        assert_eq!(r.attempts(), 1);
        assert_eq!(r.worst_case_backoff_ms(), 0.0);
    }

    #[test]
    fn zero_attempts_means_one() {
        let r = RetryPolicy {
            max_attempts: 0,
            ..RetryPolicy::default()
        };
        assert_eq!(r.attempts(), 1);
    }

    #[test]
    fn zero_attempts_policy_still_backs_off_sanely() {
        let r = RetryPolicy {
            max_attempts: 0,
            ..RetryPolicy::default()
        };
        // With an effective budget of one attempt there are no retries, so
        // the worst-case backoff sums over an empty range.
        assert_eq!(r.worst_case_backoff_ms(), 0.0);
        assert_eq!(r.backoff_ms(0), 0.0);
    }

    #[test]
    fn huge_failed_attempt_counts_saturate_instead_of_wrapping() {
        let r = RetryPolicy {
            max_attempts: u32::MAX,
            base_backoff_ms: 1.0,
            backoff_multiplier: 2.0,
        };
        // The exponent saturates at i32::MAX: 2^huge overflows f64 to
        // infinity, which is monotone — never the near-zero backoff a
        // wrapped negative exponent would produce.
        let at_limit = r.backoff_ms(i32::MAX as u32 + 1);
        let past_limit = r.backoff_ms(u32::MAX);
        assert!(at_limit.is_infinite() && at_limit > 0.0);
        assert_eq!(at_limit, past_limit, "saturated exponent is stable");
        assert!(
            r.backoff_ms(u32::MAX) >= r.backoff_ms(40),
            "backoff must stay monotone in the failure count"
        );
    }

    #[test]
    fn multiplier_one_keeps_backoff_flat_for_any_count() {
        let r = RetryPolicy {
            max_attempts: u32::MAX,
            base_backoff_ms: 2.5,
            backoff_multiplier: 1.0,
        };
        assert_eq!(r.backoff_ms(1), 2.5);
        assert_eq!(r.backoff_ms(u32::MAX), 2.5);
    }

    #[test]
    fn backoff_grows_exponentially() {
        let r = RetryPolicy {
            max_attempts: 5,
            base_backoff_ms: 1.0,
            backoff_multiplier: 3.0,
        };
        assert_eq!(r.backoff_ms(1), 1.0);
        assert_eq!(r.backoff_ms(2), 3.0);
        assert_eq!(r.backoff_ms(3), 9.0);
        assert_eq!(r.worst_case_backoff_ms(), 1.0 + 3.0 + 9.0 + 27.0);
    }
}
