use crate::{IoStats, Page, PageId, PageMeta, Result};
use bytes::Bytes;
use serde::{Deserialize, Serialize};

/// Identifier of the query a page access belongs to.
///
/// The paper (Section 2.2) treats two accesses as *correlated* "if they
/// belong to the same query"; LRU-K collapses correlated accesses into one
/// history entry. The experiment harness bumps the query id once per
/// executed query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct QueryId(u64);

impl QueryId {
    /// A query id from its raw counter value.
    #[inline]
    pub const fn new(raw: u64) -> Self {
        QueryId(raw)
    }

    /// The raw counter value.
    #[inline]
    pub const fn raw(&self) -> u64 {
        self.0
    }

    /// The next query id.
    #[inline]
    pub fn next(&self) -> QueryId {
        QueryId(self.0 + 1)
    }
}

/// Context accompanying a page read.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessContext {
    /// The query issuing the access (for correlated-reference detection).
    pub query: QueryId,
}

impl AccessContext {
    /// Context for an access belonging to query `q`.
    #[inline]
    pub const fn query(q: QueryId) -> Self {
        AccessContext { query: q }
    }
}

impl Default for AccessContext {
    fn default() -> Self {
        AccessContext {
            query: QueryId::new(0),
        }
    }
}

/// A store of fixed-size pages.
///
/// Implemented by the simulated [`DiskManager`](crate::DiskManager) and by
/// the buffer manager in `asb-core`; index structures are generic over this
/// trait and therefore oblivious to whether a buffer is present.
pub trait PageStore {
    /// Reads a page. A buffering implementation may satisfy the read from
    /// memory; the disk counts it as a physical access.
    fn read(&mut self, id: PageId, ctx: AccessContext) -> Result<Page>;

    /// Writes (replaces) an existing page.
    fn write(&mut self, page: Page) -> Result<()>;

    /// Allocates a fresh page with the given metadata and payload, returning
    /// its id.
    fn allocate(&mut self, meta: PageMeta, payload: Bytes) -> Result<PageId>;

    /// Frees a page. Reading a freed page fails with
    /// [`StorageError::PageNotFound`](crate::StorageError::PageNotFound).
    fn free(&mut self, id: PageId) -> Result<()>;

    /// Number of live (allocated, not freed) pages.
    fn page_count(&self) -> usize;
}

/// A [`PageStore`] whose read path is safe to drive from several threads at
/// once through a shared reference.
///
/// The sharded buffer pool in `asb-core` keeps one store behind a
/// reader-writer lock and serves buffer misses from many shards in
/// parallel; that only works when a read needs no exclusive access. An
/// implementation keeps its access counters behind interior mutability so
/// [`read_shared`](ConcurrentPageStore::read_shared) can count physical
/// accesses without `&mut self`.
///
/// Implemented by [`DiskManager`](crate::DiskManager); wrappers that merely
/// delegate (buffers, tracing stores) can forward all three methods.
pub trait ConcurrentPageStore: PageStore + Send + Sync {
    /// Reads a page through a shared reference. Counts exactly like
    /// [`PageStore::read`]; the two must be indistinguishable in the
    /// statistics they record.
    fn read_shared(&self, id: PageId, ctx: AccessContext) -> Result<Page>;

    /// Current physical I/O statistics.
    fn io_stats(&self) -> IoStats;

    /// Resets the I/O statistics (and any sequential-read tracking) through
    /// a shared reference, so buffer pools can expose a reset without
    /// exclusive store access.
    fn reset_io_stats(&self);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_id_next_increments() {
        let q = QueryId::new(7);
        assert_eq!(q.next(), QueryId::new(8));
        assert_eq!(q.raw(), 7);
    }

    #[test]
    fn default_context_is_query_zero() {
        assert_eq!(AccessContext::default().query, QueryId::new(0));
    }
}
