use crate::PageId;

/// Errors reported by the storage layer and everything stacked on it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// A page id was requested that was never allocated or has been freed.
    PageNotFound(PageId),
    /// A page payload exceeded [`PAGE_SIZE`](crate::PAGE_SIZE) bytes.
    PageOverflow {
        /// The offending page.
        id: PageId,
        /// Payload length in bytes.
        len: usize,
    },
    /// A page could not be decoded by an index layer (corrupt or wrong type).
    Corrupt {
        /// The offending page.
        id: PageId,
        /// Human-readable description of the decode failure.
        reason: String,
    },
    /// An eviction was required but every buffered page is pinned.
    AllPagesPinned,
    /// An unpin was requested for a page that is not pinned.
    NotPinned(PageId),
    /// A buffer was configured with zero capacity.
    ZeroCapacity,
}

impl std::fmt::Display for StorageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StorageError::PageNotFound(id) => write!(f, "page {id} not found"),
            StorageError::PageOverflow { id, len } => {
                write!(f, "page {id} payload of {len} bytes exceeds the page size")
            }
            StorageError::Corrupt { id, reason } => {
                write!(f, "page {id} is corrupt: {reason}")
            }
            StorageError::AllPagesPinned => {
                write!(f, "cannot evict: all buffered pages are pinned")
            }
            StorageError::NotPinned(id) => write!(f, "page {id} is not pinned"),
            StorageError::ZeroCapacity => write!(f, "buffer capacity must be at least one page"),
        }
    }
}

impl std::error::Error for StorageError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let id = PageId::new(7);
        assert_eq!(
            StorageError::PageNotFound(id).to_string(),
            "page P7 not found"
        );
        assert!(StorageError::PageOverflow { id, len: 4096 }
            .to_string()
            .contains("4096"));
        assert!(StorageError::Corrupt {
            id,
            reason: "bad magic".into()
        }
        .to_string()
        .contains("bad magic"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error>() {}
        assert_err::<StorageError>();
    }
}
