use crate::PageId;

/// Errors reported by the storage layer and everything stacked on it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// A page id was requested that was never allocated or has been freed.
    PageNotFound(PageId),
    /// A page payload exceeded [`PAGE_SIZE`](crate::PAGE_SIZE) bytes.
    PageOverflow {
        /// The offending page.
        id: PageId,
        /// Payload length in bytes.
        len: usize,
    },
    /// A page could not be decoded by an index layer (corrupt or wrong type).
    Corrupt {
        /// The offending page.
        id: PageId,
        /// Human-readable description of the decode failure.
        reason: String,
    },
    /// An eviction was required but every buffered page is pinned.
    AllPagesPinned,
    /// An unpin was requested for a page that is not pinned.
    NotPinned(PageId),
    /// A buffer was configured with zero capacity.
    ZeroCapacity,
    /// A read failed transiently (e.g. a simulated device timeout). The
    /// operation is safe to retry.
    TransientRead(PageId),
    /// A write failed transiently. The operation is safe to retry.
    TransientWrite(PageId),
    /// The device region holding the page has failed permanently; retrying
    /// cannot help.
    DeviceFailed(PageId),
    /// A page arrived whose payload does not match its recorded checksum.
    /// Retryable: a re-read may deliver an undamaged copy.
    ChecksumMismatch {
        /// The offending page.
        id: PageId,
        /// Checksum the page claims (recorded at creation).
        expected: u64,
        /// Checksum actually computed over the delivered payload.
        actual: u64,
    },
    /// A retried operation gave up: the retry policy's attempt budget is
    /// exhausted. `last` is the failure of the final attempt.
    RetriesExhausted {
        /// The page the operation targeted.
        id: PageId,
        /// Number of attempts made (including the first).
        attempts: u32,
        /// The error of the last attempt.
        last: Box<StorageError>,
    },
    /// A dirty page had to be evicted on a path with no write access to the
    /// backing store (e.g. a fetch-only read path).
    WritebackUnavailable(PageId),
    /// The simulated process was killed at an injected crash point. Every
    /// subsequent operation on the crashed store (or its write-ahead log)
    /// reports this error; only durable state — the disk image and the log
    /// bytes written so far — survives for recovery.
    Crashed,
    /// An operation required an attached write-ahead log, but the buffer
    /// has none (see `BufferManager::attach_wal` in `asb-core`).
    WalUnavailable,
    /// A flush attempted every dirty frame, but one or more write-backs
    /// failed permanently. The listed pages stay resident and dirty; all
    /// other dirty frames were written back successfully.
    FlushIncomplete {
        /// `(page, error)` for every frame whose write-back failed.
        failures: Vec<(PageId, Box<StorageError>)>,
    },
    /// An operation that needs exclusive access to the backing store (e.g.
    /// `ShardedBuffer::with_store`) was attempted while page guards were
    /// still live. The count is the number of outstanding guards at the
    /// time of the check; drop them and retry.
    GuardsOutstanding(u64),
}

impl StorageError {
    /// Whether retrying the failed operation may succeed.
    ///
    /// Transient read/write faults clear on their own, and a checksum
    /// mismatch may have damaged only the copy in flight; everything else is
    /// either a logic error or a permanent device failure.
    pub fn is_transient(&self) -> bool {
        matches!(
            self,
            StorageError::TransientRead(_)
                | StorageError::TransientWrite(_)
                | StorageError::ChecksumMismatch { .. }
        )
    }
}

impl std::fmt::Display for StorageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StorageError::PageNotFound(id) => write!(f, "page {id} not found"),
            StorageError::PageOverflow { id, len } => {
                write!(f, "page {id} payload of {len} bytes exceeds the page size")
            }
            StorageError::Corrupt { id, reason } => {
                write!(f, "page {id} is corrupt: {reason}")
            }
            StorageError::AllPagesPinned => {
                write!(f, "cannot evict: all buffered pages are pinned")
            }
            StorageError::NotPinned(id) => write!(f, "page {id} is not pinned"),
            StorageError::ZeroCapacity => write!(f, "buffer capacity must be at least one page"),
            StorageError::TransientRead(id) => {
                write!(f, "transient fault reading page {id} (retryable)")
            }
            StorageError::TransientWrite(id) => {
                write!(f, "transient fault writing page {id} (retryable)")
            }
            StorageError::DeviceFailed(id) => {
                write!(f, "device region of page {id} failed permanently")
            }
            StorageError::ChecksumMismatch {
                id,
                expected,
                actual,
            } => write!(
                f,
                "page {id} checksum mismatch: expected {expected:#018x}, got {actual:#018x}"
            ),
            StorageError::RetriesExhausted { id, attempts, last } => write!(
                f,
                "gave up on page {id} after {attempts} attempt(s); last error: {last}"
            ),
            StorageError::WritebackUnavailable(id) => write!(
                f,
                "dirty page {id} needs a write-back but this path has no store write access"
            ),
            StorageError::Crashed => {
                write!(
                    f,
                    "simulated process kill: the store is no longer reachable"
                )
            }
            StorageError::WalUnavailable => {
                write!(f, "operation requires an attached write-ahead log")
            }
            StorageError::FlushIncomplete { failures } => {
                write!(f, "flush left {} dirty frame(s) behind:", failures.len())?;
                for (id, err) in failures {
                    write!(f, " [{id}: {err}]")?;
                }
                Ok(())
            }
            StorageError::GuardsOutstanding(live) => write!(
                f,
                "operation needs exclusive store access but {live} page guard(s) are live"
            ),
        }
    }
}

impl std::error::Error for StorageError {}

/// A [`StorageError`] attributed to one specific page of a batched
/// operation.
///
/// The partial-failure batch contract (`BufferPool::fetch_batch` in
/// `asb-core`) returns one `Result<_, PageError>` slot per requested page,
/// so one poisoned page fails *its* slot without aborting its siblings.
/// The id is carried explicitly because the failing page may differ from
/// the page a caller asked for (e.g. a dirty victim whose write-back
/// failed while making room).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PageError {
    /// The page whose slot failed.
    pub id: PageId,
    /// Why it failed.
    pub error: StorageError,
}

impl PageError {
    /// Attributes `error` to `id`.
    pub fn new(id: PageId, error: StorageError) -> Self {
        PageError { id, error }
    }

    /// Whether retrying this page's slot may succeed (see
    /// [`StorageError::is_transient`]).
    pub fn is_transient(&self) -> bool {
        self.error.is_transient()
    }

    /// Whether the failure is a typed give-up or permanent device failure
    /// — the signal the serving layer uses to quarantine a page instead of
    /// spending retry budget on it again.
    pub fn is_give_up(&self) -> bool {
        matches!(
            self.error,
            StorageError::RetriesExhausted { .. } | StorageError::DeviceFailed(_)
        )
    }
}

impl std::fmt::Display for PageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "page {} failed: {}", self.id, self.error)
    }
}

impl std::error::Error for PageError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let id = PageId::new(7);
        assert_eq!(
            StorageError::PageNotFound(id).to_string(),
            "page P7 not found"
        );
        assert!(StorageError::PageOverflow { id, len: 4096 }
            .to_string()
            .contains("4096"));
        assert!(StorageError::Corrupt {
            id,
            reason: "bad magic".into()
        }
        .to_string()
        .contains("bad magic"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error>() {}
        assert_err::<StorageError>();
    }

    #[test]
    fn transience_classification() {
        let id = PageId::new(3);
        assert!(StorageError::TransientRead(id).is_transient());
        assert!(StorageError::TransientWrite(id).is_transient());
        assert!(StorageError::ChecksumMismatch {
            id,
            expected: 1,
            actual: 2
        }
        .is_transient());
        assert!(!StorageError::DeviceFailed(id).is_transient());
        assert!(!StorageError::PageNotFound(id).is_transient());
        assert!(!StorageError::RetriesExhausted {
            id,
            attempts: 3,
            last: Box::new(StorageError::TransientRead(id)),
        }
        .is_transient());
        assert!(!StorageError::WritebackUnavailable(id).is_transient());
        assert!(!StorageError::Crashed.is_transient());
        assert!(!StorageError::WalUnavailable.is_transient());
        assert!(!StorageError::FlushIncomplete {
            failures: vec![(id, Box::new(StorageError::DeviceFailed(id)))]
        }
        .is_transient());
        assert!(!StorageError::GuardsOutstanding(2).is_transient());
    }

    #[test]
    fn guards_outstanding_reports_the_live_count() {
        let msg = StorageError::GuardsOutstanding(3).to_string();
        assert!(msg.contains("3 page guard(s)"));
    }

    #[test]
    fn flush_incomplete_names_every_failed_page() {
        let err = StorageError::FlushIncomplete {
            failures: vec![
                (
                    PageId::new(4),
                    Box::new(StorageError::DeviceFailed(PageId::new(4))),
                ),
                (
                    PageId::new(9),
                    Box::new(StorageError::TransientWrite(PageId::new(9))),
                ),
            ],
        };
        let msg = err.to_string();
        assert!(msg.contains("2 dirty frame(s)"));
        assert!(msg.contains("P4"));
        assert!(msg.contains("P9"));
    }

    #[test]
    fn page_error_classifies_give_ups_and_transients() {
        let id = PageId::new(5);
        let transient = PageError::new(id, StorageError::TransientRead(id));
        assert!(transient.is_transient());
        assert!(!transient.is_give_up());
        let gave_up = PageError::new(
            id,
            StorageError::RetriesExhausted {
                id,
                attempts: 4,
                last: Box::new(StorageError::TransientRead(id)),
            },
        );
        assert!(gave_up.is_give_up());
        assert!(!gave_up.is_transient());
        assert!(PageError::new(id, StorageError::DeviceFailed(id)).is_give_up());
        assert!(gave_up.to_string().contains("page P5 failed"));
    }

    #[test]
    fn give_up_error_carries_the_last_failure() {
        let id = PageId::new(9);
        let err = StorageError::RetriesExhausted {
            id,
            attempts: 4,
            last: Box::new(StorageError::TransientRead(id)),
        };
        let msg = err.to_string();
        assert!(msg.contains("4 attempt"));
        assert!(msg.contains("transient fault reading page P9"));
    }
}
