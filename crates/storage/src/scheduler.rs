//! I/O scheduling: single-flight coalescing of duplicate page fetches.
//!
//! When several sessions pan over the same map tile, each one misses on
//! the same non-resident page at roughly the same moment. Without
//! coalescing, every miss performs its own store read — N sessions cost N
//! physical reads for one page. [`SingleFlight`] collapses them: the first
//! miss becomes the *leader* and performs the read; every concurrent miss
//! on the same page becomes a *follower* that blocks until the leader
//! publishes its result, then shares it. N concurrent misses cost one
//! store read.
//!
//! The latch is an ordinary facade [`Mutex`]: the leader locks the
//! flight's result slot *before* publishing the flight in the in-flight
//! map, so a follower that finds the flight can never observe an unfilled
//! slot — its `lock()` blocks until the leader has stored the outcome and
//! dropped the latch. No condition variable is needed, which keeps the
//! whole mechanism inside the surface the deterministic scheduler
//! (`--cfg asb_schedule`) models.
//!
//! Lock order: the in-flight map lock is never held while waiting on a
//! latch (followers drop it first), and the leader only re-locks the map
//! (to retire the flight) while holding a latch it already owns — the
//! latch is private to the flight, so no cycle is possible.

use crate::sync::{AtomicU64, Mutex, Ordering};
use crate::{Page, PageId, Result, StorageError};
use std::collections::HashMap;
use std::sync::Arc;

/// One in-flight fetch. `result` doubles as the completion latch: the
/// leader holds it locked from before the flight is published until the
/// outcome is stored.
#[derive(Default)]
struct Flight {
    result: Mutex<Option<Result<Page>>>,
}

/// Counters describing how much duplicate I/O the scheduler absorbed.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct FlightStats {
    /// Fetches that led a flight (performed, or at least were entitled to
    /// perform, the physical read).
    pub led: u64,
    /// Fetches that joined an existing flight and shared its result
    /// instead of issuing their own read.
    pub joined: u64,
}

/// How a [`SingleFlight::run`] call participated in a flight.
pub enum FlightOutcome<R> {
    /// This caller led: `R` is whatever its lead closure produced.
    Led(R),
    /// This caller joined a flight another thread was leading; the shared
    /// result is the page the leader published.
    Joined(Result<Page>),
}

/// Coalesces concurrent fetches of the same page into one store read.
///
/// The scheduler is deliberately policy-free: it does not know how to read
/// a page. The caller passes a *lead closure* that performs the miss path
/// (store read, buffer admission) and returns both its private outcome and
/// the page to publish to followers. Admission must happen inside the lead
/// closure — the flight is retired only after the closure returns, which
/// is what guarantees "N concurrent readers, exactly one store read": any
/// thread that misses after the flight retires finds the page resident.
pub struct SingleFlight {
    inflight: Mutex<HashMap<PageId, Arc<Flight>>>,
    led: AtomicU64,
    joined: AtomicU64,
}

impl Default for SingleFlight {
    fn default() -> Self {
        SingleFlight::new()
    }
}

impl SingleFlight {
    /// Creates an empty scheduler.
    pub fn new() -> Self {
        SingleFlight {
            inflight: Mutex::new(HashMap::new()),
            led: AtomicU64::new(0),
            joined: AtomicU64::new(0),
        }
    }

    /// Runs the miss path for `id`, coalescing with any concurrent miss on
    /// the same page.
    ///
    /// If no flight for `id` is in progress, `lead` runs and its `Result<
    /// Page>` half is published to every follower that arrived meanwhile.
    /// If a flight is already in progress, this call blocks until the
    /// leader finishes and returns the shared result without running
    /// `lead`.
    pub fn run<R>(&self, id: PageId, lead: impl FnOnce() -> (R, Result<Page>)) -> FlightOutcome<R> {
        let flight = Arc::new(Flight::default());
        let mut latch = {
            let mut map = self.inflight.lock();
            if let Some(existing) = map.get(&id) {
                let existing = Arc::clone(existing);
                drop(map);
                // Blocks until the leader stores the outcome and releases
                // the latch; the slot is always filled by then (the leader
                // held the latch before the flight became visible).
                let slot = existing.result.lock();
                let shared = match slot.as_ref() {
                    Some(outcome) => outcome.clone(),
                    // invariant: reachable only if the leader panicked
                    // mid-flight; surface it as a retryable fault rather
                    // than propagating the panic across threads.
                    None => Err(StorageError::TransientRead(id)),
                };
                // relaxed-ok: monotonic telemetry counter, read only after
                // the threads of interest have joined.
                self.joined.fetch_add(1, Ordering::Relaxed);
                return FlightOutcome::Joined(shared);
            }
            map.insert(id, Arc::clone(&flight));
            // Lock the latch while the map lock is still held: followers
            // can only discover the flight after this lock is ours.
            flight.result.lock()
        };
        // relaxed-ok: monotonic telemetry counter.
        self.led.fetch_add(1, Ordering::Relaxed);
        let (outcome, publish) = lead();
        // Retire the flight before releasing the latch: a late miss now
        // starts a fresh flight (the lead closure has already admitted the
        // page, so a fresh flight's residency re-check costs no read).
        self.inflight.lock().remove(&id);
        *latch = Some(publish);
        drop(latch);
        FlightOutcome::Led(outcome)
    }

    /// Snapshot of the led/joined counters.
    pub fn stats(&self) -> FlightStats {
        FlightStats {
            // relaxed-ok: telemetry snapshot; callers read it after the
            // accesses they care about have been joined.
            led: self.led.load(Ordering::Relaxed),
            joined: self.joined.load(Ordering::Relaxed),
        }
    }

    /// Number of flights currently in progress (for tests and probes).
    pub fn in_flight(&self) -> usize {
        self.inflight.lock().len()
    }
}

impl std::fmt::Debug for SingleFlight {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SingleFlight")
            .field("stats", &self.stats())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page::{Page, PageMeta};
    use asb_geom::SpatialStats;
    use bytes::Bytes;

    fn page(raw: u64) -> Page {
        Page::new(
            PageId::new(raw),
            PageMeta::data(SpatialStats::EMPTY),
            Bytes::from(vec![raw as u8]),
        )
        .expect("page")
    }

    #[test]
    fn sole_caller_leads_and_retires_the_flight() {
        let sf = SingleFlight::new();
        let outcome = sf.run(PageId::new(1), || (42u32, Ok(page(1))));
        match outcome {
            FlightOutcome::Led(v) => assert_eq!(v, 42),
            FlightOutcome::Joined(_) => panic!("sole caller must lead"),
        }
        assert_eq!(sf.in_flight(), 0);
        assert_eq!(sf.stats(), FlightStats { led: 1, joined: 0 });
    }

    #[test]
    fn concurrent_misses_share_one_lead() {
        let sf = Arc::new(SingleFlight::new());
        let reads = Arc::new(AtomicU64::new(0));
        let id = PageId::new(9);
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let sf = Arc::clone(&sf);
                let reads = Arc::clone(&reads);
                crate::sync::thread::spawn(move || {
                    let outcome = sf.run(id, || {
                        // Simulated store read, slow enough that the other
                        // threads pile onto the flight or probe after it
                        // retires — either way the counter bounds leads.
                        reads.fetch_add(1, Ordering::SeqCst);
                        crate::sync::thread::sleep_ms(20);
                        ((), Ok(page(9)))
                    });
                    match outcome {
                        FlightOutcome::Led(()) => Ok(page(9)),
                        FlightOutcome::Joined(shared) => shared,
                    }
                })
            })
            .collect();
        for h in handles {
            let got = h.join().expect("shared result is Ok");
            assert_eq!(got.id, id);
        }
        let stats = sf.stats();
        assert_eq!(stats.led + stats.joined, 8);
        assert_eq!(stats.led, reads.load(Ordering::SeqCst));
        assert_eq!(sf.in_flight(), 0);
    }

    #[test]
    fn errors_are_shared_with_followers() {
        let sf = SingleFlight::new();
        let id = PageId::new(3);
        // Lead a failing flight; with no concurrency the caller simply
        // observes its own outcome and the flight retires.
        let outcome = sf.run(id, || {
            (
                Err::<Page, _>(StorageError::DeviceFailed(id)),
                Err(StorageError::DeviceFailed(id)),
            )
        });
        match outcome {
            FlightOutcome::Led(r) => assert_eq!(r, Err(StorageError::DeviceFailed(id))),
            FlightOutcome::Joined(_) => panic!("sole caller must lead"),
        }
        assert_eq!(sf.in_flight(), 0);
    }
}
