//! Synchronization facade for the whole workspace.
//!
//! Every lock and atomic in `asb-storage`, `asb-core`, and `asb-exp` comes
//! from this module (re-exported as `asb_core::sync`), never from
//! `parking_lot` or `std::sync` directly — the `asb-analyze` sync-facade
//! lint enforces this. Routing all synchronization through one choke point
//! buys two things:
//!
//! * **Normal builds** compile to the `parking_lot` shim (no-poison locks)
//!   and the plain std atomics — zero overhead, identical semantics.
//! * **Model-checking builds** (`RUSTFLAGS="--cfg asb_schedule"`) compile
//!   to the cooperative scheduler in `shims/schedule`, where every lock
//!   acquisition and atomic operation becomes a deterministic scheduling
//!   point. `tests/interleave.rs` uses this to enumerate bounded thread
//!   interleavings of the sharded buffer and model-check its invariants.
//!
//! The facade intentionally exposes only the surface the workspace uses:
//! `Mutex`, `RwLock`, their guards, `AtomicBool`/`AtomicU64`/`AtomicUsize`,
//! and `Ordering`. Widen it here (and mirror in `shims/schedule`) before
//! reaching for a primitive directly.

#[cfg(not(asb_schedule))]
pub use parking_lot::{Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};

#[cfg(not(asb_schedule))]
pub use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};

#[cfg(asb_schedule)]
pub use schedule::sync::{
    AtomicBool, AtomicU64, AtomicUsize, Mutex, MutexGuard, Ordering, RwLock, RwLockReadGuard,
    RwLockWriteGuard,
};

/// Scheduler-aware thread spawning: plain `std::thread` normally, the
/// controlled scheduler's threads under `--cfg asb_schedule` (inside an
/// exploration; outside one they fall back to std behaviour too).
pub mod thread {
    #[cfg(not(asb_schedule))]
    pub use self::fallback::{spawn, JoinHandle};

    #[cfg(asb_schedule)]
    pub use schedule::thread::{spawn, JoinHandle};

    /// Sleeps `ms` milliseconds on normal builds. Under `--cfg
    /// asb_schedule` there is no wall clock, so this is a pure scheduling
    /// yield instead — loops pacing themselves with `sleep_ms` stay
    /// explorable without hanging the deterministic scheduler.
    pub fn sleep_ms(ms: u64) {
        #[cfg(not(asb_schedule))]
        std::thread::sleep(std::time::Duration::from_millis(ms));
        #[cfg(asb_schedule)]
        {
            let _ = ms;
            schedule::thread::yield_now();
        }
    }

    #[cfg(not(asb_schedule))]
    mod fallback {
        /// Handle to a spawned thread; see [`spawn`].
        pub struct JoinHandle<T>(std::thread::JoinHandle<T>);

        impl<T> JoinHandle<T> {
            /// Waits for the thread and returns its result.
            ///
            /// # Panics
            /// Panics if the joined thread panicked.
            pub fn join(self) -> T {
                // invariant: propagating a worker panic is join()'s
                // documented contract — the panic, not the expect, is the
                // failure being reported.
                self.0.join().expect("joined thread panicked")
            }
        }

        /// Spawns `f` on a new OS thread.
        pub fn spawn<T, F>(f: F) -> JoinHandle<T>
        where
            T: Send + 'static,
            F: FnOnce() -> T + Send + 'static,
        {
            JoinHandle(std::thread::spawn(f))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn facade_primitives_behave() {
        let m = Mutex::new(0u64);
        *m.lock() += 5;
        assert_eq!(m.into_inner(), 5);

        let l = RwLock::new(1u64);
        *l.write() += 1;
        assert_eq!(*l.read(), 2);

        let a = AtomicU64::new(0);
        a.fetch_add(3, Ordering::SeqCst);
        assert_eq!(a.load(Ordering::SeqCst), 3);

        let b = AtomicBool::new(false);
        b.store(true, Ordering::SeqCst);
        assert!(b.load(Ordering::SeqCst));

        let h = thread::spawn(|| 41 + 1);
        assert_eq!(h.join(), 42);
    }
}
