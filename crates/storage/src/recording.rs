//! A page-store decorator that records the logical access sequence.
//!
//! [`RecordingStore`] appends `(page, query)` to an in-memory log on every
//! read, which is exactly the information a replacement policy sees: replaying
//! the log against a buffer reproduces the original run's hits, misses and
//! physical I/O bit-for-bit. The trace facility in `asb-exp` uses it to
//! capture experiment workloads into portable trace files.
//!
//! Recording sits *below* a buffer (the buffer's misses would otherwise hide
//! logical accesses), so wrap the disk, not the buffered store, and place the
//! wrapper directly under the index: `RTree<RecordingStore<DiskManager>>`.

use bytes::Bytes;

use crate::sync::{AtomicBool, Mutex, Ordering};

use crate::page::{Page, PageId};
use crate::store::{AccessContext, ConcurrentPageStore, PageStore, QueryId};
use crate::{IoStats, PageMeta};

/// A [`PageStore`] decorator logging every read as `(page, query)`.
pub struct RecordingStore<S> {
    inner: S,
    log: Mutex<Vec<(PageId, QueryId)>>,
    enabled: AtomicBool,
}

impl<S> RecordingStore<S> {
    /// Wrap `inner`; recording starts enabled.
    pub fn new(inner: S) -> Self {
        RecordingStore {
            inner,
            log: Mutex::new(Vec::new()),
            enabled: AtomicBool::new(true),
        }
    }

    /// Turn recording on or off (e.g. off while bulk-loading, on for the
    /// workload of interest).
    pub fn set_recording(&self, on: bool) {
        // relaxed-ok: a lone on/off flag with no data published under it;
        // a racing read seeing the stale value only mislogs that access.
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Whether reads are currently being logged.
    pub fn is_recording(&self) -> bool {
        // relaxed-ok: see `set_recording` — independent flag, no ordering.
        self.enabled.load(Ordering::Relaxed)
    }

    /// Drain the log, leaving it empty.
    pub fn take_log(&self) -> Vec<(PageId, QueryId)> {
        std::mem::take(&mut *self.log.lock())
    }

    /// Number of accesses recorded so far.
    pub fn log_len(&self) -> usize {
        self.log.lock().len()
    }

    /// Shared access to the wrapped store.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// Exclusive access to the wrapped store.
    pub fn inner_mut(&mut self) -> &mut S {
        &mut self.inner
    }

    /// Unwrap, discarding the recorder (and any unread log).
    pub fn into_inner(self) -> S {
        self.inner
    }

    fn record(&self, id: PageId, ctx: AccessContext) {
        // relaxed-ok: see `set_recording` — independent flag, no ordering.
        if self.enabled.load(Ordering::Relaxed) {
            self.log.lock().push((id, ctx.query));
        }
    }
}

impl<S: PageStore> PageStore for RecordingStore<S> {
    fn read(&mut self, id: PageId, ctx: AccessContext) -> crate::Result<Page> {
        self.record(id, ctx);
        self.inner.read(id, ctx)
    }

    fn write(&mut self, page: Page) -> crate::Result<()> {
        self.inner.write(page)
    }

    fn allocate(&mut self, meta: PageMeta, payload: Bytes) -> crate::Result<PageId> {
        self.inner.allocate(meta, payload)
    }

    fn free(&mut self, id: PageId) -> crate::Result<()> {
        self.inner.free(id)
    }

    fn page_count(&self) -> usize {
        self.inner.page_count()
    }
}

impl<S: ConcurrentPageStore> ConcurrentPageStore for RecordingStore<S> {
    fn read_shared(&self, id: PageId, ctx: AccessContext) -> crate::Result<Page> {
        self.record(id, ctx);
        self.inner.read_shared(id, ctx)
    }

    fn io_stats(&self) -> IoStats {
        self.inner.io_stats()
    }

    fn reset_io_stats(&self) {
        self.inner.reset_io_stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DiskManager;
    use asb_geom::SpatialStats;

    fn store_with_pages(n: usize) -> (RecordingStore<DiskManager>, Vec<PageId>) {
        let mut disk = DiskManager::new();
        let ids = (0..n)
            .map(|i| {
                disk.allocate(
                    PageMeta::data(SpatialStats::EMPTY),
                    Bytes::from(vec![i as u8; 8]),
                )
                .expect("allocate")
            })
            .collect();
        (RecordingStore::new(disk), ids)
    }

    #[test]
    fn reads_are_logged_in_order() {
        let (mut store, ids) = store_with_pages(3);
        let q = QueryId::new(5);
        store.read(ids[2], AccessContext::query(q)).expect("read");
        store
            .read(ids[0], AccessContext::query(q.next()))
            .expect("read");
        assert_eq!(store.take_log(), vec![(ids[2], q), (ids[0], q.next())]);
        assert_eq!(store.log_len(), 0, "take_log drains");
    }

    #[test]
    fn disabling_recording_suppresses_the_log() {
        let (store, ids) = store_with_pages(2);
        store.set_recording(false);
        store
            .read_shared(ids[0], AccessContext::default())
            .expect("read");
        assert!(!store.is_recording());
        assert_eq!(store.log_len(), 0);
        store.set_recording(true);
        store
            .read_shared(ids[1], AccessContext::default())
            .expect("read");
        assert_eq!(store.log_len(), 1);
    }

    #[test]
    fn writes_and_allocations_are_not_logged() {
        let (mut store, ids) = store_with_pages(1);
        let page = store.read(ids[0], AccessContext::default()).expect("read");
        store.write(page).expect("write");
        store
            .allocate(PageMeta::data(SpatialStats::EMPTY), Bytes::new())
            .expect("allocate");
        assert_eq!(store.log_len(), 1, "only the read is in the log");
    }
}
