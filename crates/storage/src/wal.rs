//! Write-ahead redo log with segment rotation, fuzzy checkpoints and
//! ARIES-lite recovery.
//!
//! The buffer in `asb-core` is a write-back cache: a buffered write
//! (`write_buffered`) only marks a frame dirty, and the store write happens
//! at eviction or flush. Between those two moments a crash silently loses
//! the update — unless the update was first made durable in a [`Wal`].
//! The protocol (*WAL-before-write-back*) is:
//!
//! 1. every logical page write appends a full-page **image record** to the
//!    log *before* the buffer applies it, and
//! 2. a page's store write-back may only happen after its image record —
//!    trivially satisfied because the append happens at write time.
//!
//! After a crash, [`Wal::recover_into`] replays image records onto the
//! surviving store, which both restores committed-but-unwritten updates and
//! repairs torn store writes (the full image overwrites the damaged page).
//!
//! # Record format
//!
//! The log is a byte stream of length-prefixed, checksummed records:
//!
//! ```text
//! [u32 payload_len][u64 fnv1a(payload)][payload bytes]
//! ```
//!
//! all integers little-endian. The payload starts with a one-byte kind tag:
//!
//! * `1` — **image**: `lsn:u64, page_id:u64, page_checksum:u64,
//!   type_tag:u8, level:u8, entry_count:u32, area:f64, margin:f64,
//!   overlap:f64, has_mbr:u8 [, x0:f64, y0:f64, x1:f64, y1:f64],
//!   data_len:u32, data bytes` — a full page image (metadata + payload +
//!   the page's own checksum, so a recovered page is bit-identical).
//! * `2` — **checkpoint**: `lsn:u64, redo_from:u64` — a fuzzy checkpoint
//!   (see below).
//!
//! A record whose length prefix overruns the log, or whose payload fails
//! the FNV-1a checksum, is a **torn tail**: the process died mid-append.
//! Recovery discards it and everything after it — a half-written record
//! was never committed.
//!
//! # Segments
//!
//! Records append to the *active* segment; once it exceeds
//! [`WalConfig::segment_bytes`] it is sealed and a new segment opens
//! (records never straddle segments). Sealed segments wholly below the
//! pruning threshold are dropped by [`Wal::prune_before`], bounding both
//! log size and redo work.
//!
//! # Fuzzy checkpoints
//!
//! A checkpoint does **not** flush the buffer. It records `redo_from` =
//! the minimum `rec_lsn` over the buffer's dirty frames (the LSN of the
//! oldest image record whose page has not yet reached the store), or the
//! next LSN if nothing is dirty. Recovery scans to the *last complete*
//! checkpoint and redoes every image record with `lsn >= redo_from`:
//! everything older is already durable in the store. The invariant that
//! makes this sound: a page's store write happens only while the process
//! is alive, so any write-back that could be torn postdates the last
//! checkpoint — and at that checkpoint the page was still dirty, keeping
//! its `rec_lsn` inside the redo window.

use std::sync::Arc;

use crate::sync::Mutex;
use bytes::Bytes;

use crate::crash::{CrashClock, CrashOp, WriteFate};
use crate::page::{page_checksum, Page, PageId, PageMeta, PageType};
use crate::store::PageStore;
use crate::{Result, StorageError};
use asb_geom::{Rect, SpatialStats};

/// Log sequence number: the position of a record in the write-ahead log.
/// LSNs are dense and increase by one per appended record (images and
/// checkpoints alike).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Lsn(pub u64);

impl std::fmt::Display for Lsn {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "L{}", self.0)
    }
}

/// A [`Wal`] shared between a buffer (or the shards of a pool) and its
/// owner; `asb-core` attaches this handle to `BufferManager`.
pub type SharedWal = Arc<Mutex<Wal>>;

/// Configuration of a [`Wal`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalConfig {
    /// Size threshold (bytes) past which the active segment is sealed and
    /// a new one opened. A record larger than this gets its own segment.
    pub segment_bytes: usize,
}

impl Default for WalConfig {
    /// 64 KiB segments: a few dozen full-page image records each.
    fn default() -> Self {
        WalConfig {
            segment_bytes: 64 * 1024,
        }
    }
}

/// Counters of a [`Wal`]'s lifetime activity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WalStats {
    /// Image records appended.
    pub image_appends: u64,
    /// Checkpoint records appended.
    pub checkpoint_appends: u64,
    /// Segments sealed (rotated away from).
    pub segments_sealed: u64,
    /// Segments dropped by pruning.
    pub segments_pruned: u64,
    /// Total record bytes appended (complete records only).
    pub bytes_appended: u64,
}

/// A decoded log record.
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    /// A full page image appended before the buffer applied the write.
    Image {
        /// The record's log sequence number.
        lsn: Lsn,
        /// The page image (id, metadata, payload, original checksum).
        page: Page,
    },
    /// A fuzzy checkpoint bounding redo work.
    Checkpoint {
        /// The record's log sequence number.
        lsn: Lsn,
        /// Redo must start at this LSN (minimum dirty `rec_lsn` at
        /// checkpoint time).
        redo_from: Lsn,
    },
}

impl WalRecord {
    /// The record's LSN.
    pub fn lsn(&self) -> Lsn {
        match self {
            WalRecord::Image { lsn, .. } | WalRecord::Checkpoint { lsn, .. } => *lsn,
        }
    }
}

/// What recovery found and did; returned by [`Wal::recover_into`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Complete records decoded from the surviving log.
    pub records_scanned: u64,
    /// Image records whose page was rewritten to the store.
    pub images_redone: u64,
    /// Image records skipped because they predate the redo window.
    pub images_skipped: u64,
    /// LSN of the last complete checkpoint, if any survived.
    pub checkpoint_lsn: Option<Lsn>,
    /// First LSN of the redo window (`redo_from` of the last checkpoint,
    /// or the oldest surviving record when no checkpoint survived).
    pub redo_from: Option<Lsn>,
    /// Whether a torn (truncated or checksum-failing) tail was discarded.
    pub torn_tail_dropped: bool,
    /// Bytes discarded with the torn tail.
    pub torn_tail_bytes: u64,
}

struct Segment {
    /// LSN of the first record in this segment.
    first_lsn: Lsn,
    bytes: Vec<u8>,
}

/// The write-ahead log. See the module docs for format and semantics.
pub struct Wal {
    config: WalConfig,
    segments: Vec<Segment>,
    next_lsn: u64,
    last_checkpoint: Option<Lsn>,
    stats: WalStats,
    clock: Option<Arc<CrashClock>>,
}

impl std::fmt::Debug for Wal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Wal")
            .field("segments", &self.segments.len())
            .field("next_lsn", &self.next_lsn)
            .field("last_checkpoint", &self.last_checkpoint)
            .field("stats", &self.stats)
            .finish()
    }
}

impl Wal {
    /// An empty log.
    pub fn new(config: WalConfig) -> Self {
        Wal {
            config,
            segments: vec![Segment {
                first_lsn: Lsn(0),
                bytes: Vec::new(),
            }],
            next_lsn: 0,
            last_checkpoint: None,
            stats: WalStats::default(),
            clock: None,
        }
    }

    /// An empty log whose appends draw crash decisions from `clock`
    /// (shared with a [`CrashableStore`](crate::CrashableStore), so store
    /// writes and log appends form one global durable-event sequence).
    pub fn with_clock(config: WalConfig, clock: Arc<CrashClock>) -> Self {
        Wal {
            clock: Some(clock),
            ..Wal::new(config)
        }
    }

    /// Convenience: a fresh log wrapped for sharing with a buffer.
    pub fn shared(config: WalConfig) -> SharedWal {
        Arc::new(Mutex::new(Wal::new(config)))
    }

    /// Convenience: [`Wal::with_clock`] wrapped for sharing with a buffer.
    pub fn shared_with_clock(config: WalConfig, clock: Arc<CrashClock>) -> SharedWal {
        Arc::new(Mutex::new(Wal::with_clock(config, clock)))
    }

    /// The LSN the next appended record will receive.
    pub fn next_lsn(&self) -> Lsn {
        Lsn(self.next_lsn)
    }

    /// LSN of the last appended checkpoint record, if any.
    pub fn last_checkpoint(&self) -> Option<Lsn> {
        self.last_checkpoint
    }

    /// Lifetime activity counters.
    pub fn stats(&self) -> WalStats {
        self.stats
    }

    /// Number of segments currently held (≥ 1; the last is active).
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }

    /// Total bytes currently held across all segments.
    pub fn len_bytes(&self) -> usize {
        self.segments.iter().map(|s| s.bytes.len()).sum()
    }

    /// The log as one contiguous byte stream (segments concatenated in
    /// order) — what a diagnostic artifact dump writes out.
    pub fn dump_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.len_bytes());
        for s in &self.segments {
            out.extend_from_slice(&s.bytes);
        }
        out
    }

    /// Appends a full-page image record, returning its LSN.
    ///
    /// With a crash clock attached this claims a durable-event index; a
    /// scheduled kill either drops the append entirely
    /// ([`CrashMode::Clean`](crate::CrashMode::Clean)) or leaves a
    /// truncated partial record
    /// ([`CrashMode::Torn`](crate::CrashMode::Torn)) before failing with
    /// [`StorageError::Crashed`].
    pub fn append_image(&mut self, page: &Page) -> Result<Lsn> {
        let lsn = Lsn(self.next_lsn);
        let payload = encode_image(lsn, page);
        let fate = match &self.clock {
            Some(clock) => clock.observe(CrashOp::WalAppend {
                page: Some(page.id),
            })?,
            None => WriteFate::Intact,
        };
        self.append_frame(&payload, fate)?;
        self.stats.image_appends += 1;
        Ok(lsn)
    }

    /// Appends a fuzzy-checkpoint record, returning its LSN. `redo_from`
    /// is the minimum dirty `rec_lsn` of the buffer (or
    /// [`next_lsn`](Wal::next_lsn) when nothing is dirty).
    pub fn append_checkpoint(&mut self, redo_from: Lsn) -> Result<Lsn> {
        let lsn = Lsn(self.next_lsn);
        let payload = encode_checkpoint(lsn, redo_from);
        let fate = match &self.clock {
            Some(clock) => clock.observe(CrashOp::WalAppend { page: None })?,
            None => WriteFate::Intact,
        };
        self.append_frame(&payload, fate)?;
        self.stats.checkpoint_appends += 1;
        self.last_checkpoint = Some(lsn);
        Ok(lsn)
    }

    /// Appends the framed record and advances the LSN; a torn fate leaves
    /// a truncated partial record and reports the crash.
    fn append_frame(&mut self, payload: &[u8], fate: WriteFate) -> Result<()> {
        let mut frame = Vec::with_capacity(12 + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&page_checksum(payload).to_le_bytes());
        frame.extend_from_slice(payload);
        let lsn = Lsn(self.next_lsn);
        // invariant: `segments` is non-empty from construction onward —
        // `Wal::new` seeds the first segment and sealing only ever pushes.
        let active = (self.segments.last()).expect("a WAL always has an active segment");
        if !active.bytes.is_empty() && active.bytes.len() + frame.len() > self.config.segment_bytes
        {
            self.stats.segments_sealed += 1;
            self.segments.push(Segment {
                first_lsn: lsn,
                bytes: Vec::new(),
            });
        }
        // invariant: still non-empty — the branch above can only have pushed.
        let active = self.segments.last_mut().expect("active segment");
        match fate {
            WriteFate::Intact => {
                active.bytes.extend_from_slice(&frame);
                self.next_lsn += 1;
                self.stats.bytes_appended += frame.len() as u64;
                Ok(())
            }
            WriteFate::Torn => {
                // The process dies mid-append: only a prefix of the frame
                // reaches durable state. Cut inside the payload so the
                // damage is checksum-detectable (a cut inside the length
                // prefix is detected as a truncated header instead).
                let cut = 12 + payload.len() / 2;
                active.bytes.extend_from_slice(&frame[..cut]);
                Err(StorageError::Crashed)
            }
        }
    }

    /// Drops sealed segments that lie entirely below `lsn` **and** below
    /// the last checkpoint record (which recovery must still find).
    /// Returns the number of segments dropped.
    pub fn prune_before(&mut self, lsn: Lsn) -> usize {
        let threshold = match self.last_checkpoint {
            Some(ckpt) => Lsn(lsn.0.min(ckpt.0)),
            None => return 0,
        };
        let mut dropped = 0;
        while self.segments.len() >= 2 && self.segments[1].first_lsn <= threshold {
            self.segments.remove(0);
            dropped += 1;
        }
        self.stats.segments_pruned += dropped as u64;
        dropped
    }

    /// Decodes every complete record in the log, in order, plus the number
    /// of torn-tail bytes discarded (zero for a cleanly ended log).
    ///
    /// A record that is truncated or fails its checksum ends the scan:
    /// it — and anything after it — was never durably committed.
    pub fn scan(&self) -> (Vec<WalRecord>, u64) {
        let bytes = self.dump_bytes();
        let mut records = Vec::new();
        let mut off = 0usize;
        while off < bytes.len() {
            let rest = bytes.len() - off;
            if rest < 12 {
                return (records, rest as u64);
            }
            let (Some(len), Some(sum)) = (
                le_u32(&bytes[off..off + 4]),
                le_u64(&bytes[off + 4..off + 12]),
            ) else {
                return (records, rest as u64);
            };
            let len = len as usize;
            if rest < 12 + len {
                return (records, rest as u64);
            }
            let payload = &bytes[off + 12..off + 12 + len];
            if page_checksum(payload) != sum {
                return (records, rest as u64);
            }
            match decode_record(payload) {
                Some(rec) => records.push(rec),
                // Checksum-valid but undecodable: not a torn tail but a
                // format error; stop scanning and drop the rest the same
                // way (recovery must never replay garbage).
                None => return (records, rest as u64),
            }
            off += 12 + len;
        }
        (records, 0)
    }

    /// ARIES-lite recovery: scans the surviving log, discards a torn tail,
    /// finds the last complete checkpoint and rewrites every image record
    /// with `lsn >= redo_from` onto `store`.
    ///
    /// Idempotent: recovering twice yields the same store state (redo
    /// rewrites full page images).
    pub fn recover_into<S: PageStore>(&self, store: &mut S) -> Result<RecoveryReport> {
        let (records, torn_bytes) = self.scan();
        let mut report = RecoveryReport {
            records_scanned: records.len() as u64,
            torn_tail_dropped: torn_bytes > 0,
            torn_tail_bytes: torn_bytes,
            ..RecoveryReport::default()
        };
        let mut redo_from = records.first().map(|r| r.lsn());
        for rec in &records {
            if let WalRecord::Checkpoint {
                lsn,
                redo_from: from,
            } = rec
            {
                report.checkpoint_lsn = Some(*lsn);
                redo_from = Some(*from);
            }
        }
        report.redo_from = redo_from;
        let Some(redo_from) = redo_from else {
            return Ok(report); // empty log: nothing to redo
        };
        for rec in &records {
            if let WalRecord::Image { lsn, page } = rec {
                if *lsn >= redo_from {
                    store.write(page.clone())?;
                    report.images_redone += 1;
                } else {
                    report.images_skipped += 1;
                }
            }
        }
        Ok(report)
    }
}

/// Little-endian decode of exactly 4 bytes; `None` on any other length.
fn le_u32(bytes: &[u8]) -> Option<u32> {
    Some(u32::from_le_bytes(bytes.try_into().ok()?))
}

/// Little-endian decode of exactly 8 bytes; `None` on any other length.
fn le_u64(bytes: &[u8]) -> Option<u64> {
    Some(u64::from_le_bytes(bytes.try_into().ok()?))
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn encode_image(lsn: Lsn, page: &Page) -> Vec<u8> {
    let mut out = Vec::with_capacity(64 + page.payload.len());
    out.push(1u8);
    put_u64(&mut out, lsn.0);
    put_u64(&mut out, page.id.raw());
    put_u64(&mut out, page.checksum());
    out.push(page.meta.page_type.tag());
    out.push(page.meta.level);
    put_u32(&mut out, page.meta.stats.entry_count);
    put_f64(&mut out, page.meta.stats.entry_area_sum);
    put_f64(&mut out, page.meta.stats.entry_margin_sum);
    put_f64(&mut out, page.meta.stats.entry_overlap);
    match page.meta.stats.mbr {
        Some(mbr) => {
            out.push(1u8);
            put_f64(&mut out, mbr.min.x);
            put_f64(&mut out, mbr.min.y);
            put_f64(&mut out, mbr.max.x);
            put_f64(&mut out, mbr.max.y);
        }
        None => out.push(0u8),
    }
    put_u32(&mut out, page.payload.len() as u32);
    out.extend_from_slice(&page.payload);
    out
}

fn encode_checkpoint(lsn: Lsn, redo_from: Lsn) -> Vec<u8> {
    let mut out = Vec::with_capacity(17);
    out.push(2u8);
    put_u64(&mut out, lsn.0);
    put_u64(&mut out, redo_from.0);
    out
}

/// Cursor over a record payload; every getter returns `None` on underrun.
struct Reader<'a> {
    bytes: &'a [u8],
    off: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let s = self.bytes.get(self.off..self.off + n)?;
        self.off += n;
        Some(s)
    }

    fn u8(&mut self) -> Option<u8> {
        Some(self.take(1)?[0])
    }

    fn u32(&mut self) -> Option<u32> {
        Some(u32::from_le_bytes(self.take(4)?.try_into().ok()?))
    }

    fn u64(&mut self) -> Option<u64> {
        Some(u64::from_le_bytes(self.take(8)?.try_into().ok()?))
    }

    fn f64(&mut self) -> Option<f64> {
        Some(f64::from_le_bytes(self.take(8)?.try_into().ok()?))
    }
}

fn decode_record(payload: &[u8]) -> Option<WalRecord> {
    let mut r = Reader {
        bytes: payload,
        off: 0,
    };
    match r.u8()? {
        1 => {
            let lsn = Lsn(r.u64()?);
            let id = PageId::new(r.u64()?);
            let checksum = r.u64()?;
            let page_type = PageType::from_tag(r.u8()?)?;
            let level = r.u8()?;
            let entry_count = r.u32()?;
            let entry_area_sum = r.f64()?;
            let entry_margin_sum = r.f64()?;
            let entry_overlap = r.f64()?;
            let mbr = match r.u8()? {
                0 => None,
                1 => Some(Rect::new(r.f64()?, r.f64()?, r.f64()?, r.f64()?)),
                _ => return None,
            };
            let data_len = r.u32()? as usize;
            let data = r.take(data_len)?;
            if r.off != payload.len() {
                return None; // trailing garbage inside a framed record
            }
            let meta = PageMeta {
                page_type,
                level,
                stats: SpatialStats {
                    mbr,
                    entry_count,
                    entry_area_sum,
                    entry_margin_sum,
                    entry_overlap,
                },
            };
            let page = Page::with_checksum(id, meta, Bytes::from(data.to_vec()), checksum).ok()?;
            Some(WalRecord::Image { lsn, page })
        }
        2 => {
            let lsn = Lsn(r.u64()?);
            let redo_from = Lsn(r.u64()?);
            if r.off != payload.len() {
                return None;
            }
            Some(WalRecord::Checkpoint { lsn, redo_from })
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::crash::{CrashMode, CrashPlan, CrashableStore};
    use crate::DiskManager;

    fn meta() -> PageMeta {
        PageMeta::data(SpatialStats::EMPTY)
    }

    fn disk_with_pages(n: usize) -> (DiskManager, Vec<PageId>) {
        let mut d = DiskManager::new();
        let ids = (0..n)
            .map(|i| d.allocate(meta(), Bytes::from(vec![i as u8; 16])).unwrap())
            .collect();
        d.reset_stats();
        (d, ids)
    }

    fn page(id: PageId, byte: u8) -> Page {
        Page::new(id, meta(), Bytes::from(vec![byte; 16])).unwrap()
    }

    #[test]
    fn image_record_roundtrips_bit_for_bit() {
        let stats = SpatialStats::from_rects(&[Rect::new(0.0, 0.0, 3.0, 4.0)]);
        let p = Page::new(
            PageId::new(9),
            PageMeta::directory(3, stats),
            Bytes::from_static(b"payload bytes"),
        )
        .unwrap();
        let mut wal = Wal::new(WalConfig::default());
        let lsn = wal.append_image(&p).unwrap();
        assert_eq!(lsn, Lsn(0));
        let (records, torn) = wal.scan();
        assert_eq!(torn, 0);
        assert_eq!(records, vec![WalRecord::Image { lsn, page: p }]);
    }

    #[test]
    fn checkpoint_record_roundtrips() {
        let mut wal = Wal::new(WalConfig::default());
        let (_, ids) = disk_with_pages(1);
        wal.append_image(&page(ids[0], 1)).unwrap();
        let lsn = wal.append_checkpoint(Lsn(0)).unwrap();
        assert_eq!(lsn, Lsn(1));
        assert_eq!(wal.last_checkpoint(), Some(Lsn(1)));
        let (records, _) = wal.scan();
        assert_eq!(
            records[1],
            WalRecord::Checkpoint {
                lsn,
                redo_from: Lsn(0)
            }
        );
    }

    #[test]
    fn segments_rotate_and_prune_keeps_the_last_checkpoint() {
        let mut wal = Wal::new(WalConfig { segment_bytes: 128 });
        let (_, ids) = disk_with_pages(1);
        for i in 0..10 {
            wal.append_image(&page(ids[0], i)).unwrap();
        }
        assert!(wal.segment_count() > 1, "small segments must rotate");
        // No checkpoint yet: nothing may be pruned.
        assert_eq!(wal.prune_before(Lsn(10)), 0);
        let ckpt = wal.append_checkpoint(Lsn(8)).unwrap();
        let before = wal.segment_count();
        let dropped = wal.prune_before(Lsn(8));
        assert!(dropped > 0, "old sealed segments must drop");
        assert_eq!(wal.segment_count(), before - dropped);
        // The checkpoint (and the redo window) survive pruning.
        let (records, _) = wal.scan();
        assert!(records
            .iter()
            .any(|r| matches!(r, WalRecord::Checkpoint { lsn, .. } if *lsn == ckpt)));
        assert!(records
            .iter()
            .any(|r| matches!(r, WalRecord::Image { lsn, .. } if *lsn == Lsn(8))));
    }

    #[test]
    fn recovery_replays_committed_images() {
        let (mut disk, ids) = disk_with_pages(2);
        let mut wal = Wal::new(WalConfig::default());
        wal.append_image(&page(ids[0], 0xaa)).unwrap();
        wal.append_image(&page(ids[1], 0xbb)).unwrap();
        wal.append_image(&page(ids[0], 0xcc)).unwrap(); // later image wins
        let report = wal.recover_into(&mut disk).unwrap();
        assert_eq!(report.records_scanned, 3);
        assert_eq!(report.images_redone, 3);
        assert!(!report.torn_tail_dropped);
        assert_eq!(disk.peek(ids[0]).unwrap().payload.as_ref(), &[0xcc; 16]);
        assert_eq!(disk.peek(ids[1]).unwrap().payload.as_ref(), &[0xbb; 16]);
    }

    #[test]
    fn recovery_redoes_only_from_the_last_checkpoint_window() {
        let (mut disk, ids) = disk_with_pages(2);
        let mut wal = Wal::new(WalConfig::default());
        wal.append_image(&page(ids[0], 1)).unwrap(); // L0: already durable
        wal.append_checkpoint(Lsn(1)).unwrap(); // L1: redo starts at L1
        wal.append_image(&page(ids[1], 2)).unwrap(); // L2: inside window
        let report = wal.recover_into(&mut disk).unwrap();
        assert_eq!(report.checkpoint_lsn, Some(Lsn(1)));
        assert_eq!(report.redo_from, Some(Lsn(1)));
        assert_eq!(report.images_redone, 1);
        assert_eq!(report.images_skipped, 1);
        // The skipped page keeps its (already durable) disk image.
        assert_eq!(disk.peek(ids[0]).unwrap().payload.as_ref(), &[0u8; 16]);
        assert_eq!(disk.peek(ids[1]).unwrap().payload.as_ref(), &[2u8; 16]);
    }

    #[test]
    fn torn_tail_is_detected_and_discarded() {
        let (mut disk, ids) = disk_with_pages(1);
        let clock = CrashClock::with_plan(CrashPlan {
            kill_at: 1,
            mode: CrashMode::Torn,
        });
        let mut wal = Wal::with_clock(WalConfig::default(), clock);
        wal.append_image(&page(ids[0], 0x11)).unwrap();
        assert_eq!(
            wal.append_image(&page(ids[0], 0x22)),
            Err(StorageError::Crashed)
        );
        let (records, torn) = wal.scan();
        assert_eq!(records.len(), 1, "the torn record must not decode");
        assert!(torn > 0);
        let report = wal.recover_into(&mut disk).unwrap();
        assert!(report.torn_tail_dropped);
        assert_eq!(report.images_redone, 1);
        assert_eq!(
            disk.peek(ids[0]).unwrap().payload.as_ref(),
            &[0x11; 16],
            "only the committed image may be replayed"
        );
    }

    #[test]
    fn clean_kill_leaves_no_partial_record() {
        let (_, ids) = disk_with_pages(1);
        let clock = CrashClock::with_plan(CrashPlan {
            kill_at: 0,
            mode: CrashMode::Clean,
        });
        let mut wal = Wal::with_clock(WalConfig::default(), clock.clone());
        assert_eq!(
            wal.append_image(&page(ids[0], 1)),
            Err(StorageError::Crashed)
        );
        assert_eq!(wal.len_bytes(), 0);
        assert!(clock.is_dead());
        // Dead process: later appends also fail, durably appending nothing.
        assert_eq!(wal.append_checkpoint(Lsn(0)), Err(StorageError::Crashed));
        assert_eq!(wal.len_bytes(), 0);
    }

    #[test]
    fn recovery_repairs_a_torn_store_write() {
        let (disk, ids) = disk_with_pages(1);
        // Shared clock: WAL append is event 0, store write is event 1.
        let clock = CrashClock::with_plan(CrashPlan {
            kill_at: 1,
            mode: CrashMode::Torn,
        });
        let mut wal = Wal::with_clock(WalConfig::default(), clock.clone());
        let mut store = CrashableStore::new(disk, clock);
        let p = page(ids[0], 0x5a);
        wal.append_image(&p).unwrap(); // WAL-before-write-back
        assert_eq!(store.write(p), Err(StorageError::Crashed));
        let mut disk = store.into_inner();
        assert!(!disk.peek(ids[0]).unwrap().verify_checksum(), "torn page");
        let report = wal.recover_into(&mut disk).unwrap();
        assert_eq!(report.images_redone, 1);
        let healed = disk.peek(ids[0]).unwrap();
        assert!(healed.verify_checksum());
        assert_eq!(healed.payload.as_ref(), &[0x5a; 16]);
    }

    #[test]
    fn recovery_is_idempotent() {
        let (mut disk, ids) = disk_with_pages(2);
        let mut wal = Wal::new(WalConfig::default());
        wal.append_image(&page(ids[0], 7)).unwrap();
        wal.append_checkpoint(Lsn(0)).unwrap();
        wal.append_image(&page(ids[1], 8)).unwrap();
        let a = wal.recover_into(&mut disk).unwrap();
        let snapshot: Vec<_> = ids
            .iter()
            .map(|&id| disk.peek(id).unwrap().clone())
            .collect();
        let b = wal.recover_into(&mut disk).unwrap();
        assert_eq!(a, b);
        for (i, &id) in ids.iter().enumerate() {
            assert_eq!(disk.peek(id).unwrap(), &snapshot[i]);
        }
    }

    #[test]
    fn empty_log_recovers_to_a_no_op() {
        let (mut disk, ids) = disk_with_pages(1);
        let wal = Wal::new(WalConfig::default());
        let report = wal.recover_into(&mut disk).unwrap();
        assert_eq!(report, RecoveryReport::default());
        assert_eq!(disk.peek(ids[0]).unwrap().payload.as_ref(), &[0u8; 16]);
    }

    #[test]
    fn stats_count_appends_rotations_and_prunes() {
        let mut wal = Wal::new(WalConfig { segment_bytes: 96 });
        let (_, ids) = disk_with_pages(1);
        for i in 0..6 {
            wal.append_image(&page(ids[0], i)).unwrap();
        }
        wal.append_checkpoint(Lsn(6)).unwrap();
        wal.prune_before(Lsn(6));
        let s = wal.stats();
        assert_eq!(s.image_appends, 6);
        assert_eq!(s.checkpoint_appends, 1);
        assert!(s.segments_sealed >= 1);
        assert!(s.segments_pruned >= 1);
        assert!(s.bytes_appended as usize >= wal.len_bytes());
    }
}
