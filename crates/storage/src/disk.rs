use crate::sync::Mutex;
use crate::{
    AccessContext, ConcurrentPageStore, Page, PageId, PageMeta, PageStore, Result, StorageError,
    PAGE_SIZE,
};
use bytes::Bytes;
use serde::{Deserialize, Serialize};

/// Timing model of the simulated disk.
///
/// The paper's introduction motivates buffering with "the time to access a
/// randomly chosen page stored on a hard disk requires still about 10 ms";
/// sequential accesses are roughly an order of magnitude cheaper. The
/// profile converts access counts into simulated I/O time so experiments can
/// report the *random vs sequential I/O* distinction the paper lists as
/// future work.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DiskProfile {
    /// Cost of a random page access in milliseconds.
    pub random_ms: f64,
    /// Cost of a sequential page access in milliseconds.
    pub sequential_ms: f64,
}

impl Default for DiskProfile {
    fn default() -> Self {
        // ~10 ms seek+rotation for a random access (paper intro, [7]);
        // ~0.5 ms transfer-dominated cost for the next adjacent page.
        DiskProfile {
            random_ms: 10.0,
            sequential_ms: 0.5,
        }
    }
}

/// Physical I/O statistics of a [`DiskManager`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct IoStats {
    /// Total physical page reads (the paper's "disk accesses").
    pub reads: u64,
    /// Reads whose page id directly follows the previously read page.
    pub sequential_reads: u64,
    /// Reads that required a seek (i.e. not sequential).
    pub random_reads: u64,
    /// Total physical page writes.
    pub writes: u64,
    /// Simulated I/O time in milliseconds under the disk's [`DiskProfile`].
    pub simulated_ms: f64,
}

impl IoStats {
    /// Difference `self - earlier`, for measuring an experiment window.
    pub fn since(&self, earlier: &IoStats) -> IoStats {
        IoStats {
            reads: self.reads - earlier.reads,
            sequential_reads: self.sequential_reads - earlier.sequential_reads,
            random_reads: self.random_reads - earlier.random_reads,
            writes: self.writes - earlier.writes,
            simulated_ms: self.simulated_ms - earlier.simulated_ms,
        }
    }
}

/// Access counters of a [`DiskManager`], updated on every physical access.
///
/// Kept behind a mutex (not alongside the slot vector) so that the *read*
/// path can count accesses through `&self`: the sharded buffer pool serves
/// misses from several threads under a shared store lock.
#[derive(Debug, Default)]
struct IoState {
    stats: IoStats,
    last_read: Option<PageId>,
}

/// An in-memory simulated disk.
///
/// Pages live in a dense slot vector; freed slots are recycled via a free
/// list. Every [`read`](PageStore::read) is counted as one physical disk
/// access and classified as sequential (id follows the previously read id)
/// or random.
#[derive(Debug, Default)]
pub struct DiskManager {
    slots: Vec<Option<Page>>,
    free: Vec<u64>,
    live: usize,
    io: Mutex<IoState>,
    profile: DiskProfile,
}

impl DiskManager {
    /// Creates an empty disk with the default timing profile.
    pub fn new() -> Self {
        DiskManager::default()
    }

    /// Creates an empty disk with a custom timing profile.
    pub fn with_profile(profile: DiskProfile) -> Self {
        DiskManager {
            profile,
            ..DiskManager::default()
        }
    }

    /// Current physical I/O statistics.
    pub fn stats(&self) -> IoStats {
        self.io.lock().stats
    }

    /// Resets the I/O statistics (the paper clears buffers and counters
    /// before each query set "to increase the comparability of the
    /// results").
    pub fn reset_stats(&self) {
        *self.io.lock() = IoState::default();
    }

    /// The timing profile in use.
    pub fn profile(&self) -> DiskProfile {
        self.profile
    }

    /// Reads a page *without* counting a physical access. Test and
    /// validation helpers use this to inspect the disk image.
    pub fn peek(&self, id: PageId) -> Result<&Page> {
        self.slots
            .get(id.raw() as usize)
            .and_then(|s| s.as_ref())
            .ok_or(StorageError::PageNotFound(id))
    }

    /// Iterates over all live pages (no access counting).
    pub fn iter_pages(&self) -> impl Iterator<Item = &Page> {
        self.slots.iter().filter_map(|s| s.as_ref())
    }

    fn record_read(&self, id: PageId) {
        let mut io = self.io.lock();
        io.stats.reads += 1;
        let sequential = io.last_read.is_some_and(|prev| id.is_successor_of(&prev));
        if sequential {
            io.stats.sequential_reads += 1;
            io.stats.simulated_ms += self.profile.sequential_ms;
        } else {
            io.stats.random_reads += 1;
            io.stats.simulated_ms += self.profile.random_ms;
        }
        io.last_read = Some(id);
    }
}

impl PageStore for DiskManager {
    fn read(&mut self, id: PageId, ctx: AccessContext) -> Result<Page> {
        self.read_shared(id, ctx)
    }

    fn write(&mut self, page: Page) -> Result<()> {
        if page.payload.len() > PAGE_SIZE {
            return Err(StorageError::PageOverflow {
                id: page.id,
                len: page.payload.len(),
            });
        }
        let slot = self
            .slots
            .get_mut(page.id.raw() as usize)
            .ok_or(StorageError::PageNotFound(page.id))?;
        if slot.is_none() {
            return Err(StorageError::PageNotFound(page.id));
        }
        *slot = Some(page);
        self.io.lock().stats.writes += 1;
        Ok(())
    }

    fn allocate(&mut self, meta: PageMeta, payload: Bytes) -> Result<PageId> {
        let raw = match self.free.pop() {
            Some(raw) => raw,
            None => {
                self.slots.push(None);
                (self.slots.len() - 1) as u64
            }
        };
        let id = PageId::new(raw);
        let page = Page::new(id, meta, payload)?;
        self.slots[raw as usize] = Some(page);
        self.live += 1;
        self.io.lock().stats.writes += 1;
        Ok(id)
    }

    fn free(&mut self, id: PageId) -> Result<()> {
        let slot = self
            .slots
            .get_mut(id.raw() as usize)
            .ok_or(StorageError::PageNotFound(id))?;
        if slot.take().is_none() {
            return Err(StorageError::PageNotFound(id));
        }
        self.free.push(id.raw());
        self.live -= 1;
        Ok(())
    }

    fn page_count(&self) -> usize {
        self.live
    }
}

impl ConcurrentPageStore for DiskManager {
    fn read_shared(&self, id: PageId, _ctx: AccessContext) -> Result<Page> {
        let page = self
            .slots
            .get(id.raw() as usize)
            .and_then(|s| s.as_ref())
            .cloned()
            .ok_or(StorageError::PageNotFound(id))?;
        self.record_read(id);
        Ok(page)
    }

    fn io_stats(&self) -> IoStats {
        self.stats()
    }

    fn reset_io_stats(&self) {
        self.reset_stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asb_geom::SpatialStats;

    fn meta() -> PageMeta {
        PageMeta::data(SpatialStats::EMPTY)
    }

    fn disk_with_pages(n: usize) -> (DiskManager, Vec<PageId>) {
        let mut d = DiskManager::new();
        let ids = (0..n)
            .map(|i| d.allocate(meta(), Bytes::from(vec![i as u8])).unwrap())
            .collect();
        d.reset_stats();
        (d, ids)
    }

    #[test]
    fn allocate_read_roundtrip() {
        let (mut d, ids) = disk_with_pages(3);
        let p = d.read(ids[1], AccessContext::default()).unwrap();
        assert_eq!(p.id, ids[1]);
        assert_eq!(p.payload.as_ref(), &[1u8]);
        assert_eq!(d.stats().reads, 1);
    }

    #[test]
    fn read_missing_page_fails() {
        let (mut d, _) = disk_with_pages(1);
        let err = d
            .read(PageId::new(99), AccessContext::default())
            .unwrap_err();
        assert_eq!(err, StorageError::PageNotFound(PageId::new(99)));
        // Failed reads are not counted as disk accesses.
        assert_eq!(d.stats().reads, 0);
    }

    #[test]
    fn write_replaces_payload() {
        let (mut d, ids) = disk_with_pages(1);
        let page = Page::new(ids[0], meta(), Bytes::from_static(b"new")).unwrap();
        d.write(page).unwrap();
        assert_eq!(d.peek(ids[0]).unwrap().payload.as_ref(), b"new");
        assert_eq!(d.stats().writes, 1);
    }

    #[test]
    fn write_to_freed_page_fails() {
        let (mut d, ids) = disk_with_pages(1);
        d.free(ids[0]).unwrap();
        let page = Page::new(ids[0], meta(), Bytes::new()).unwrap();
        assert!(d.write(page).is_err());
    }

    #[test]
    fn free_recycles_slots() {
        let (mut d, ids) = disk_with_pages(2);
        assert_eq!(d.page_count(), 2);
        d.free(ids[0]).unwrap();
        assert_eq!(d.page_count(), 1);
        let new_id = d.allocate(meta(), Bytes::new()).unwrap();
        assert_eq!(new_id, ids[0], "freed slot should be recycled");
        assert_eq!(d.page_count(), 2);
    }

    #[test]
    fn double_free_fails() {
        let (mut d, ids) = disk_with_pages(1);
        d.free(ids[0]).unwrap();
        assert!(d.free(ids[0]).is_err());
    }

    #[test]
    fn sequential_reads_are_detected() {
        let (mut d, ids) = disk_with_pages(4);
        let ctx = AccessContext::default();
        d.read(ids[0], ctx).unwrap(); // random (first access)
        d.read(ids[1], ctx).unwrap(); // sequential
        d.read(ids[2], ctx).unwrap(); // sequential
        d.read(ids[0], ctx).unwrap(); // random (backwards)
        let s = d.stats();
        assert_eq!(s.reads, 4);
        assert_eq!(s.sequential_reads, 2);
        assert_eq!(s.random_reads, 2);
    }

    #[test]
    fn simulated_time_uses_profile() {
        let profile = DiskProfile {
            random_ms: 10.0,
            sequential_ms: 1.0,
        };
        let mut d = DiskManager::with_profile(profile);
        let a = d.allocate(meta(), Bytes::new()).unwrap();
        let b = d.allocate(meta(), Bytes::new()).unwrap();
        d.reset_stats();
        let ctx = AccessContext::default();
        d.read(a, ctx).unwrap(); // random: 10 ms
        d.read(b, ctx).unwrap(); // sequential: 1 ms
        assert_eq!(d.stats().simulated_ms, 11.0);
    }

    #[test]
    fn stats_since_subtracts() {
        let (mut d, ids) = disk_with_pages(2);
        let ctx = AccessContext::default();
        d.read(ids[0], ctx).unwrap();
        let checkpoint = d.stats();
        d.read(ids[1], ctx).unwrap();
        d.read(ids[0], ctx).unwrap();
        let delta = d.stats().since(&checkpoint);
        assert_eq!(delta.reads, 2);
    }

    #[test]
    fn reset_stats_clears_sequential_tracking() {
        let (mut d, ids) = disk_with_pages(2);
        let ctx = AccessContext::default();
        d.read(ids[0], ctx).unwrap();
        d.reset_stats();
        d.read(ids[1], ctx).unwrap(); // would be sequential, but tracking reset
        assert_eq!(d.stats().random_reads, 1);
        assert_eq!(d.stats().sequential_reads, 0);
    }

    #[test]
    fn shared_reads_count_like_exclusive_reads() {
        let (mut d, ids) = disk_with_pages(3);
        let ctx = AccessContext::default();
        d.read(ids[0], ctx).unwrap();
        let exclusive = d.stats();
        d.reset_stats();
        d.read_shared(ids[0], ctx).unwrap();
        assert_eq!(
            d.stats(),
            exclusive,
            "read and read_shared must count identically"
        );
    }

    #[test]
    fn shared_reads_from_many_threads_lose_no_counts() {
        let (d, ids) = disk_with_pages(8);
        std::thread::scope(|scope| {
            for t in 0..4usize {
                let d = &d;
                let ids = &ids;
                scope.spawn(move || {
                    for i in 0..100usize {
                        let id = ids[(t + i) % ids.len()];
                        let page = d.read_shared(id, AccessContext::default()).unwrap();
                        assert_eq!(page.id, id);
                    }
                });
            }
        });
        let s = d.stats();
        assert_eq!(s.reads, 400);
        assert_eq!(s.sequential_reads + s.random_reads, 400);
    }

    #[test]
    fn iter_pages_skips_freed() {
        let (mut d, ids) = disk_with_pages(3);
        d.free(ids[1]).unwrap();
        let live: Vec<_> = d.iter_pages().map(|p| p.id).collect();
        assert_eq!(live, vec![ids[0], ids[2]]);
    }
}
