use asb_geom::SpatialStats;
use bytes::Bytes;
use serde::{Deserialize, Serialize};

/// Size of a page in bytes.
///
/// 2048 bytes reproduce the paper's R\*-tree fan-outs exactly: with an
/// [`PAGE_HEADER_SIZE`] = 8 byte header, 40-byte directory entries
/// (4 × f64 MBR + u64 child id) give ⌊2040 / 40⌋ = **51** entries per
/// directory page and 48-byte data entries (MBR + u64 object id + u64
/// object-page pointer) give ⌊2040 / 48⌋ = **42** entries per data page —
/// the paper's "maximum number of entries per directory page and per data
/// page is 51 and 42".
pub const PAGE_SIZE: usize = 2048;

/// Bytes reserved for the on-page header (type tag, level, entry count).
pub const PAGE_HEADER_SIZE: usize = 8;

/// Identifier of a page on the simulated disk.
///
/// Ids are dense and allocated by the [`DiskManager`](crate::DiskManager);
/// consecutive ids model physically adjacent pages, which is what the
/// sequential-I/O detection in [`IoStats`](crate::IoStats) keys on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct PageId(u64);

impl PageId {
    /// Creates a page id from its raw index.
    #[inline]
    pub const fn new(raw: u64) -> Self {
        PageId(raw)
    }

    /// The raw index.
    #[inline]
    pub const fn raw(&self) -> u64 {
        self.0
    }

    /// Whether `other` is the page physically following `self`.
    #[inline]
    pub fn is_successor_of(&self, other: &PageId) -> bool {
        self.0 == other.0.wrapping_add(1)
    }
}

impl std::fmt::Display for PageId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "P{}", self.0)
    }
}

/// The three page categories the paper distinguishes (Section 2.1, Fig. 1):
/// directory pages and data pages of the spatial access method, plus object
/// pages storing the exact object representations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PageType {
    /// Inner page of the spatial access method.
    Directory,
    /// Leaf page of the spatial access method.
    Data,
    /// Page holding exact spatial-object representations.
    Object,
}

impl PageType {
    /// Base ordering used by the type-based LRU (LRU-T): object pages are
    /// dropped first, then data pages, directory pages last.
    #[inline]
    pub fn type_rank(&self) -> u8 {
        match self {
            PageType::Object => 0,
            PageType::Data => 1,
            PageType::Directory => 2,
        }
    }

    /// Encodes the type as a byte tag (for on-page headers).
    #[inline]
    pub fn tag(&self) -> u8 {
        match self {
            PageType::Directory => 1,
            PageType::Data => 2,
            PageType::Object => 3,
        }
    }

    /// Decodes a byte tag written by [`PageType::tag`].
    #[inline]
    pub fn from_tag(tag: u8) -> Option<PageType> {
        match tag {
            1 => Some(PageType::Directory),
            2 => Some(PageType::Data),
            3 => Some(PageType::Object),
            _ => None,
        }
    }
}

/// Metadata travelling with every page.
///
/// The replacement policies in `asb-core` are driven exclusively by this
/// struct — they never parse page payloads. The index layer fills it in
/// whenever it (re)writes a page:
///
/// * `page_type` / `level` feed LRU-T and LRU-P (priority = level; object
///   pages have priority 0, leaves 1, the root the highest),
/// * `stats` feeds the five spatial criteria of Section 2.3.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PageMeta {
    /// Category of the page.
    pub page_type: PageType,
    /// Level in the index: object pages 0, data (leaf) pages 1, directory
    /// pages 2 and up; the root has the highest level.
    pub level: u8,
    /// Precomputed spatial criteria over the page's entries.
    pub stats: SpatialStats,
}

impl PageMeta {
    /// Metadata for an object page (level 0, no entry statistics required by
    /// the experiments, but they may be supplied).
    pub fn object(stats: SpatialStats) -> Self {
        PageMeta {
            page_type: PageType::Object,
            level: 0,
            stats,
        }
    }

    /// Metadata for a data (leaf) page of the index.
    pub fn data(stats: SpatialStats) -> Self {
        PageMeta {
            page_type: PageType::Data,
            level: 1,
            stats,
        }
    }

    /// Metadata for a directory page at `level >= 2`.
    pub fn directory(level: u8, stats: SpatialStats) -> Self {
        debug_assert!(level >= 2, "directory pages live at level 2 and above");
        PageMeta {
            page_type: PageType::Directory,
            level,
            stats,
        }
    }

    /// The LRU-P priority of the page: "the object page may have the
    /// priority 0 whereas the priority of a page in an index depends on its
    /// height in the corresponding tree. The root has the highest priority."
    #[inline]
    pub fn priority(&self) -> u8 {
        match self.page_type {
            PageType::Object => 0,
            _ => self.level,
        }
    }
}

/// FNV-1a 64-bit hash of a payload — the per-page checksum format.
///
/// Chosen for being dependency-free, deterministic across platforms and
/// cheap on the short payloads of the simulated disk; this is an
/// error-*detection* code for the fault-injection layer, not a
/// cryptographic digest.
pub fn page_checksum(payload: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &byte in payload {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// A page: identifier, metadata, payload and a payload checksum.
///
/// The payload is a [`Bytes`] value, so cloning a page (for handing copies
/// out of the buffer) is O(1) and allocation-free. The checksum is computed
/// once in [`Page::new`] and travels with every clone; a copy whose payload
/// was damaged in flight (or in a buffer frame) no longer satisfies
/// [`Page::verify_checksum`], which is how the buffer detects corruption.
#[derive(Debug, Clone, PartialEq)]
pub struct Page {
    /// The page's identity on disk.
    pub id: PageId,
    /// Metadata driving replacement decisions.
    pub meta: PageMeta,
    /// Serialized content, at most [`PAGE_SIZE`] bytes.
    pub payload: Bytes,
    /// FNV-1a over the payload at construction time.
    checksum: u64,
}

impl Page {
    /// Creates a page, validating the payload size.
    pub fn new(id: PageId, meta: PageMeta, payload: Bytes) -> crate::Result<Self> {
        let checksum = page_checksum(&payload);
        Page::with_checksum(id, meta, payload, checksum)
    }

    /// Creates a page with an explicit checksum instead of computing one.
    ///
    /// This exists for layers that *transport* pages rather than create
    /// them: deserializers carrying a stored checksum forward, and the
    /// fault-injection store, which damages a payload while preserving the
    /// original checksum so the corruption stays detectable downstream.
    pub fn with_checksum(
        id: PageId,
        meta: PageMeta,
        payload: Bytes,
        checksum: u64,
    ) -> crate::Result<Self> {
        if payload.len() > PAGE_SIZE {
            return Err(crate::StorageError::PageOverflow {
                id,
                len: payload.len(),
            });
        }
        Ok(Page {
            id,
            meta,
            payload,
            checksum,
        })
    }

    /// The checksum recorded when the page was created.
    #[inline]
    pub fn checksum(&self) -> u64 {
        self.checksum
    }

    /// Whether the payload still matches the recorded checksum.
    #[inline]
    pub fn verify_checksum(&self) -> bool {
        page_checksum(&self.payload) == self.checksum
    }

    /// Maximum number of fixed-size entries a page payload can hold after
    /// the header.
    #[inline]
    pub const fn capacity_for(entry_size: usize) -> usize {
        (PAGE_SIZE - PAGE_HEADER_SIZE) / entry_size
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asb_geom::{Rect, SpatialCriterion};

    #[test]
    fn paper_fanouts_are_reproduced() {
        // Directory entry: 4 f64 coordinates + u64 child id = 40 bytes.
        assert_eq!(Page::capacity_for(40), 51);
        // Data entry: MBR + object id + object-page pointer = 48 bytes.
        assert_eq!(Page::capacity_for(48), 42);
    }

    #[test]
    fn page_rejects_oversized_payload() {
        let meta = PageMeta::data(SpatialStats::EMPTY);
        let big = Bytes::from(vec![0u8; PAGE_SIZE + 1]);
        let err = Page::new(PageId::new(0), meta, big).unwrap_err();
        assert!(
            matches!(err, crate::StorageError::PageOverflow { len, .. } if len == PAGE_SIZE + 1)
        );
    }

    #[test]
    fn page_accepts_full_payload() {
        let meta = PageMeta::data(SpatialStats::EMPTY);
        let full = Bytes::from(vec![0u8; PAGE_SIZE]);
        assert!(Page::new(PageId::new(0), meta, full).is_ok());
    }

    #[test]
    fn type_rank_orders_object_data_directory() {
        assert!(PageType::Object.type_rank() < PageType::Data.type_rank());
        assert!(PageType::Data.type_rank() < PageType::Directory.type_rank());
    }

    #[test]
    fn type_tag_roundtrip() {
        for t in [PageType::Directory, PageType::Data, PageType::Object] {
            assert_eq!(PageType::from_tag(t.tag()), Some(t));
        }
        assert_eq!(PageType::from_tag(0), None);
        assert_eq!(PageType::from_tag(99), None);
    }

    #[test]
    fn priority_follows_tree_level() {
        let leaf = PageMeta::data(SpatialStats::EMPTY);
        let dir = PageMeta::directory(3, SpatialStats::EMPTY);
        let obj = PageMeta::object(SpatialStats::EMPTY);
        assert_eq!(obj.priority(), 0);
        assert_eq!(leaf.priority(), 1);
        assert_eq!(dir.priority(), 3);
    }

    #[test]
    fn meta_carries_spatial_stats() {
        let stats = SpatialStats::from_rects(&[Rect::new(0.0, 0.0, 2.0, 2.0)]);
        let meta = PageMeta::data(stats);
        assert_eq!(meta.stats.criterion(SpatialCriterion::Area), 4.0);
    }

    #[test]
    fn page_id_successor() {
        let a = PageId::new(5);
        let b = PageId::new(6);
        assert!(b.is_successor_of(&a));
        assert!(!a.is_successor_of(&b));
        assert!(!a.is_successor_of(&a));
    }

    #[test]
    fn checksum_is_deterministic_and_payload_sensitive() {
        assert_eq!(page_checksum(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(page_checksum(b"abc"), page_checksum(b"abc"));
        assert_ne!(page_checksum(b"abc"), page_checksum(b"abd"));
    }

    #[test]
    fn fresh_pages_verify() {
        let meta = PageMeta::data(SpatialStats::EMPTY);
        let p = Page::new(PageId::new(3), meta, Bytes::from_static(b"payload")).unwrap();
        assert!(p.verify_checksum());
        assert_eq!(p.checksum(), page_checksum(b"payload"));
        assert!(p.clone().verify_checksum());
    }

    #[test]
    fn preserved_checksum_exposes_tampered_payload() {
        let meta = PageMeta::data(SpatialStats::EMPTY);
        let p = Page::new(PageId::new(3), meta, Bytes::from_static(b"payload")).unwrap();
        let tampered =
            Page::with_checksum(p.id, p.meta, Bytes::from_static(b"grabled"), p.checksum())
                .unwrap();
        assert!(!tampered.verify_checksum());
        // An honestly rebuilt page verifies again.
        let rebuilt = Page::new(p.id, p.meta, Bytes::from_static(b"grabled")).unwrap();
        assert!(rebuilt.verify_checksum());
    }

    #[test]
    fn with_checksum_still_rejects_oversized_payload() {
        let meta = PageMeta::data(SpatialStats::EMPTY);
        let big = Bytes::from(vec![0u8; PAGE_SIZE + 1]);
        assert!(Page::with_checksum(PageId::new(0), meta, big, 0).is_err());
    }

    #[test]
    fn page_clone_is_cheap_and_equal() {
        let meta = PageMeta::data(SpatialStats::EMPTY);
        let p = Page::new(PageId::new(1), meta, Bytes::from_static(b"abc")).unwrap();
        let q = p.clone();
        assert_eq!(p, q);
    }
}
