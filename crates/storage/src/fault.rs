//! Deterministic fault injection for page stores.
//!
//! [`FaultyStore`] wraps any [`PageStore`] (or [`ConcurrentPageStore`]) and
//! injects a seed-scheduled mix of failures: transient read/write errors,
//! permanent device failures for marked pages, latency spikes, and payload
//! corruption that preserves the page's recorded checksum (so the damage is
//! silent on delivery but detectable by
//! [`Page::verify_checksum`](crate::Page::verify_checksum)).
//!
//! Every fault decision is a pure function of `(seed, operation index,
//! fault kind)`, so a given configuration produces the *same* fault schedule
//! on every run — the property the regression harness in `asb-exp` relies on
//! to replay a failing schedule bit-for-bit.

use std::collections::HashSet;

use bytes::Bytes;

use crate::page::{Page, PageId};
use crate::store::{AccessContext, ConcurrentPageStore, PageStore};
use crate::sync::Mutex;
use crate::{IoStats, PageMeta, StorageError};

/// Salts mixed into the per-operation hash so each fault kind draws an
/// independent coin from the same operation index.
const SALT_READ: u64 = 1;
const SALT_WRITE: u64 = 2;
const SALT_CORRUPT: u64 = 3;
const SALT_SPIKE: u64 = 4;

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Map a 64-bit hash onto a float in `[0, 1)`.
fn unit_float(x: u64) -> f64 {
    (x >> 11) as f64 / (1u64 << 53) as f64
}

/// Probability schedule of a [`FaultyStore`].
///
/// All rates are probabilities in `[0, 1]`, drawn independently per physical
/// operation from the deterministic stream derived from `seed`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// Seed of the deterministic fault schedule.
    pub seed: u64,
    /// Probability that a read fails with [`StorageError::TransientRead`].
    pub read_transient: f64,
    /// Probability that a write fails with [`StorageError::TransientWrite`].
    pub write_transient: f64,
    /// Probability that a successful read delivers a corrupted payload
    /// (checksum preserved, payload damaged).
    pub corrupt: f64,
    /// Probability that an operation incurs a latency spike.
    pub latency_spike: f64,
    /// Simulated duration of one latency spike, in milliseconds.
    pub spike_ms: f64,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            seed: 0,
            read_transient: 0.0,
            write_transient: 0.0,
            corrupt: 0.0,
            latency_spike: 0.0,
            spike_ms: 25.0,
        }
    }
}

impl FaultConfig {
    /// A schedule injecting only transient read/write faults, each at `rate`.
    pub fn transient(seed: u64, rate: f64) -> Self {
        FaultConfig {
            seed,
            read_transient: rate,
            write_transient: rate,
            ..FaultConfig::default()
        }
    }

    /// A schedule injecting only payload corruption at `rate`.
    pub fn corrupting(seed: u64, rate: f64) -> Self {
        FaultConfig {
            seed,
            corrupt: rate,
            ..FaultConfig::default()
        }
    }

    /// Everything at once: transient faults, corruption and latency spikes,
    /// each at `rate`.
    pub fn chaos(seed: u64, rate: f64) -> Self {
        FaultConfig {
            seed,
            read_transient: rate,
            write_transient: rate,
            corrupt: rate,
            latency_spike: rate,
            ..FaultConfig::default()
        }
    }

    /// A brown-out: the device stays up but goes slow-tailed — latency
    /// spikes at `rate` with a spike an order of magnitude above the
    /// simulated disk's ~10 ms random access, plus a trickle of transient
    /// read faults at a tenth of `rate` (slow devices time out
    /// occasionally). The regime a remote or disaggregated memory tier
    /// degrades into, where a serving layer must shed latency rather than
    /// fail.
    pub fn brownout(seed: u64, rate: f64) -> Self {
        FaultConfig {
            seed,
            read_transient: rate / 10.0,
            latency_spike: rate,
            spike_ms: 120.0,
            ..FaultConfig::default()
        }
    }

    /// A schedule that never faults (the default).
    pub fn reliable() -> Self {
        FaultConfig::default()
    }
}

/// Counters of every fault a [`FaultyStore`] has injected.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct FaultStats {
    /// Transient read faults injected.
    pub read_faults: u64,
    /// Transient write faults injected.
    pub write_faults: u64,
    /// Reads that delivered a corrupted payload.
    pub corruptions: u64,
    /// Latency spikes injected.
    pub latency_spikes: u64,
    /// Operations denied because the page is marked permanently failed.
    pub permanent_denials: u64,
    /// Total simulated latency injected by spikes, in milliseconds.
    pub injected_ms: f64,
}

struct FaultState {
    /// Per-store operation counter; each read/write claims one index.
    ops: u64,
    stats: FaultStats,
    /// Raw ids of pages marked permanently failed. Behind the same mutex
    /// as the counters so chaos harnesses can poison and heal pages
    /// mid-run through a `&self` handle shared with a buffer pool.
    permanent: HashSet<u64>,
    /// `stats.injected_ms` as of the last `reset_io_stats`, so the I/O
    /// clock window exposed through `io_stats` resets with the inner
    /// store's counters while the lifetime fault statistics keep accruing.
    injected_baseline_ms: f64,
}

/// A [`PageStore`] decorator injecting deterministic, seed-scheduled faults.
///
/// The wrapper is transparent for `allocate`/`free`/`page_count`; only reads
/// and writes fault. Interior mutability keeps the shared read path
/// (`ConcurrentPageStore::read_shared`) usable from `&self`.
pub struct FaultyStore<S> {
    inner: S,
    config: FaultConfig,
    state: Mutex<FaultState>,
}

impl<S> FaultyStore<S> {
    /// Wrap `inner` with the fault schedule in `config`.
    pub fn new(inner: S, config: FaultConfig) -> Self {
        FaultyStore {
            inner,
            config,
            state: Mutex::new(FaultState {
                ops: 0,
                stats: FaultStats::default(),
                permanent: HashSet::new(),
                injected_baseline_ms: 0.0,
            }),
        }
    }

    /// Mark a page as permanently failed: every read or write of it returns
    /// [`StorageError::DeviceFailed`] without consulting the schedule.
    /// Takes `&self` (the set lives behind the store's interior mutex, like
    /// the fault counters) so chaos scenarios can poison pages mid-run on a
    /// store already shared with a buffer pool.
    pub fn mark_permanent(&self, id: PageId) {
        self.state.lock().permanent.insert(id.raw());
    }

    /// Clear a permanent failure mark (also `&self`; see
    /// [`mark_permanent`](FaultyStore::mark_permanent)).
    pub fn heal(&self, id: PageId) {
        self.state.lock().permanent.remove(&id.raw());
    }

    /// Whether `id` is currently marked permanently failed.
    pub fn is_permanent(&self, id: PageId) -> bool {
        self.state.lock().permanent.contains(&id.raw())
    }

    /// Replace the fault schedule (the operation counter keeps running).
    pub fn set_config(&mut self, config: FaultConfig) {
        self.config = config;
    }

    /// The active fault schedule.
    pub fn config(&self) -> FaultConfig {
        self.config
    }

    /// Counters of all faults injected so far.
    pub fn fault_stats(&self) -> FaultStats {
        self.state.lock().stats
    }

    /// Shared access to the wrapped store.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// Exclusive access to the wrapped store.
    pub fn inner_mut(&mut self) -> &mut S {
        &mut self.inner
    }

    /// Unwrap, discarding the fault layer.
    pub fn into_inner(self) -> S {
        self.inner
    }

    /// Draw the fault coin `salt` for operation `op`: true with
    /// probability `rate`.
    fn draw(&self, op: u64, salt: u64, rate: f64) -> bool {
        if rate <= 0.0 {
            return false;
        }
        let h = splitmix64(
            self.config.seed.wrapping_mul(0x9e37_79b9_7f4a_7c15)
                ^ op.wrapping_mul(0xff51_afd7_ed55_8ccd)
                ^ salt.wrapping_mul(0xc4ce_b9fe_1a85_ec53),
        );
        unit_float(h) < rate
    }

    /// Pre-access checks shared by reads and writes: permanent failure,
    /// latency spike, transient fault. Returns the claimed operation index
    /// on success so the read path can draw its corruption coin from it.
    fn gate(&self, id: PageId, write: bool) -> crate::Result<u64> {
        let op = {
            let mut st = self.state.lock();
            if st.permanent.contains(&id.raw()) {
                st.stats.permanent_denials += 1;
                return Err(StorageError::DeviceFailed(id));
            }
            let op = st.ops;
            st.ops += 1;
            op
        };
        if self.draw(op, SALT_SPIKE, self.config.latency_spike) {
            let mut st = self.state.lock();
            st.stats.latency_spikes += 1;
            st.stats.injected_ms += self.config.spike_ms;
        }
        let (salt, rate) = if write {
            (SALT_WRITE, self.config.write_transient)
        } else {
            (SALT_READ, self.config.read_transient)
        };
        if self.draw(op, salt, rate) {
            let mut st = self.state.lock();
            if write {
                st.stats.write_faults += 1;
                return Err(StorageError::TransientWrite(id));
            }
            st.stats.read_faults += 1;
            return Err(StorageError::TransientRead(id));
        }
        Ok(op)
    }

    /// Damage a delivered copy of `page` while keeping its recorded
    /// checksum, so the corruption is silent but detectable.
    fn corrupt_copy(page: &Page) -> Page {
        let mut payload = page.payload.to_vec();
        if payload.is_empty() {
            payload.push(0xee);
        } else {
            payload[0] ^= 0xff;
        }
        // invariant: the copy is the original payload with one byte flipped
        // (or a single byte where it was empty), so it cannot exceed the
        // page size the original already satisfied.
        Page::with_checksum(page.id, page.meta, Bytes::from(payload), page.checksum())
            .expect("flipping a byte never grows a page past the page size")
    }

    /// Post-read step: possibly replace the delivered page with a corrupted
    /// copy, using the corruption coin of operation `op`.
    fn deliver(&self, op: u64, page: Page) -> Page {
        if self.draw(op, SALT_CORRUPT, self.config.corrupt) {
            let mut st = self.state.lock();
            st.stats.corruptions += 1;
            Self::corrupt_copy(&page)
        } else {
            page
        }
    }
}

impl<S: PageStore> PageStore for FaultyStore<S> {
    fn read(&mut self, id: PageId, ctx: AccessContext) -> crate::Result<Page> {
        let op = self.gate(id, false)?;
        let page = self.inner.read(id, ctx)?;
        Ok(self.deliver(op, page))
    }

    fn write(&mut self, page: Page) -> crate::Result<()> {
        self.gate(page.id, true)?;
        self.inner.write(page)
    }

    fn allocate(&mut self, meta: PageMeta, payload: Bytes) -> crate::Result<PageId> {
        self.inner.allocate(meta, payload)
    }

    fn free(&mut self, id: PageId) -> crate::Result<()> {
        self.inner.free(id)
    }

    fn page_count(&self) -> usize {
        self.inner.page_count()
    }
}

impl<S: ConcurrentPageStore> ConcurrentPageStore for FaultyStore<S> {
    fn read_shared(&self, id: PageId, ctx: AccessContext) -> crate::Result<Page> {
        let op = self.gate(id, false)?;
        let page = self.inner.read_shared(id, ctx)?;
        Ok(self.deliver(op, page))
    }

    /// The inner store's statistics with the latency injected by spikes
    /// since the last reset added onto the simulated clock — a latency
    /// harness differencing `simulated_ms` around a batch therefore sees
    /// fault-profile service time, not just the disk model's.
    fn io_stats(&self) -> IoStats {
        let mut io = self.inner.io_stats();
        let st = self.state.lock();
        io.simulated_ms += st.stats.injected_ms - st.injected_baseline_ms;
        io
    }

    fn reset_io_stats(&self) {
        self.inner.reset_io_stats();
        let mut st = self.state.lock();
        st.injected_baseline_ms = st.stats.injected_ms;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DiskManager;
    use asb_geom::SpatialStats;

    fn disk_with_pages(n: usize) -> (DiskManager, Vec<PageId>) {
        let mut disk = DiskManager::new();
        let ids = (0..n)
            .map(|i| {
                disk.allocate(
                    PageMeta::data(SpatialStats::EMPTY),
                    Bytes::from(vec![i as u8; 16]),
                )
                .expect("allocate")
            })
            .collect();
        (disk, ids)
    }

    #[test]
    fn reliable_schedule_is_transparent() {
        let (disk, ids) = disk_with_pages(4);
        let mut store = FaultyStore::new(disk, FaultConfig::reliable());
        for &id in &ids {
            let page = store.read(id, AccessContext::default()).expect("read");
            assert!(page.verify_checksum());
        }
        assert_eq!(store.fault_stats(), FaultStats::default());
    }

    #[test]
    fn fault_schedule_is_deterministic() {
        let run = |seed| {
            let (disk, ids) = disk_with_pages(8);
            let mut store = FaultyStore::new(disk, FaultConfig::chaos(seed, 0.3));
            let mut outcomes = Vec::new();
            for round in 0..16 {
                let id = ids[round % ids.len()];
                match store.read(id, AccessContext::default()) {
                    Ok(p) => outcomes.push((round, p.verify_checksum())),
                    Err(e) => outcomes.push((round, matches!(e, StorageError::DeviceFailed(_)))),
                }
            }
            (outcomes, store.fault_stats())
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7).1, run(8).1, "different seeds, different schedules");
    }

    #[test]
    fn corruption_preserves_checksum_field() {
        let (disk, ids) = disk_with_pages(1);
        let mut store = FaultyStore::new(disk, FaultConfig::corrupting(3, 1.0));
        let page = store.read(ids[0], AccessContext::default()).expect("read");
        assert!(!page.verify_checksum(), "payload damage must be detectable");
        let clean = store.inner().peek(ids[0]).expect("peek");
        assert_eq!(page.checksum(), clean.checksum());
        assert_ne!(page.payload, clean.payload);
        assert_eq!(store.fault_stats().corruptions, 1);
    }

    #[test]
    fn transient_rate_one_always_fails() {
        let (disk, ids) = disk_with_pages(1);
        let mut store = FaultyStore::new(disk, FaultConfig::transient(5, 1.0));
        for _ in 0..4 {
            assert_eq!(
                store.read(ids[0], AccessContext::default()),
                Err(StorageError::TransientRead(ids[0]))
            );
        }
        assert_eq!(store.fault_stats().read_faults, 4);
    }

    #[test]
    fn permanent_failure_wins_over_schedule() {
        let (disk, ids) = disk_with_pages(2);
        let mut store = FaultyStore::new(disk, FaultConfig::reliable());
        store.mark_permanent(ids[0]);
        assert_eq!(
            store.read(ids[0], AccessContext::default()),
            Err(StorageError::DeviceFailed(ids[0]))
        );
        assert!(store.read(ids[1], AccessContext::default()).is_ok());
        store.heal(ids[0]);
        assert!(store.read(ids[0], AccessContext::default()).is_ok());
        assert_eq!(store.fault_stats().permanent_denials, 1);
    }

    #[test]
    fn poison_and_heal_work_through_a_shared_reference() {
        // The chaos harness poisons pages mid-run on a store that a buffer
        // pool already owns — only `&self` access exists at that point.
        let (disk, ids) = disk_with_pages(2);
        let store = FaultyStore::new(disk, FaultConfig::reliable());
        let shared: &FaultyStore<DiskManager> = &store;
        shared.mark_permanent(ids[0]);
        assert!(shared.is_permanent(ids[0]));
        assert_eq!(
            shared.read_shared(ids[0], AccessContext::default()),
            Err(StorageError::DeviceFailed(ids[0]))
        );
        assert!(shared.read_shared(ids[1], AccessContext::default()).is_ok());
        shared.heal(ids[0]);
        assert!(!shared.is_permanent(ids[0]));
        assert!(shared.read_shared(ids[0], AccessContext::default()).is_ok());
        assert_eq!(store.fault_stats().permanent_denials, 1);
    }

    #[test]
    fn brownout_is_slow_tailed_but_mostly_up() {
        let (disk, ids) = disk_with_pages(4);
        let store = FaultyStore::new(disk, FaultConfig::brownout(9, 1.0));
        // Spike rate 1.0: every operation pays the brown-out latency.
        for &id in &ids {
            let _ = store.read_shared(id, AccessContext::default());
        }
        let stats = store.fault_stats();
        assert_eq!(stats.latency_spikes, 4);
        assert!(stats.injected_ms >= 4.0 * 100.0);
        // The transient trickle is a tenth of the spike rate.
        assert!(FaultConfig::brownout(9, 0.2).read_transient < 0.021);
        assert_eq!(FaultConfig::brownout(9, 0.2).corrupt, 0.0);
    }

    #[test]
    fn shared_and_exclusive_reads_share_one_schedule() {
        let (disk, ids) = disk_with_pages(1);
        let store = FaultyStore::new(disk, FaultConfig::transient(11, 0.5));
        let mut shared_outcomes = Vec::new();
        for _ in 0..12 {
            shared_outcomes.push(store.read_shared(ids[0], AccessContext::default()).is_ok());
        }
        let (disk2, ids2) = disk_with_pages(1);
        let mut store2 = FaultyStore::new(disk2, FaultConfig::transient(11, 0.5));
        let mut excl_outcomes = Vec::new();
        for _ in 0..12 {
            excl_outcomes.push(store2.read(ids2[0], AccessContext::default()).is_ok());
        }
        assert_eq!(shared_outcomes, excl_outcomes);
    }

    #[test]
    fn latency_spikes_accrue_simulated_time() {
        let (disk, ids) = disk_with_pages(1);
        let mut store = FaultyStore::new(
            disk,
            FaultConfig {
                seed: 2,
                latency_spike: 1.0,
                spike_ms: 5.0,
                ..FaultConfig::default()
            },
        );
        for _ in 0..3 {
            store.read(ids[0], AccessContext::default()).expect("read");
        }
        let stats = store.fault_stats();
        assert_eq!(stats.latency_spikes, 3);
        assert!((stats.injected_ms - 15.0).abs() < 1e-9);
    }

    #[test]
    fn injected_spike_time_flows_into_io_stats_and_resets_with_them() {
        let (disk, ids) = disk_with_pages(1);
        let store = FaultyStore::new(
            disk,
            FaultConfig {
                seed: 2,
                latency_spike: 1.0,
                spike_ms: 5.0,
                ..FaultConfig::default()
            },
        );
        for _ in 0..3 {
            store
                .read_shared(ids[0], AccessContext::default())
                .expect("read");
        }
        let inner_only = store.inner().io_stats().simulated_ms;
        let io = ConcurrentPageStore::io_stats(&store);
        assert!((io.simulated_ms - (inner_only + 15.0)).abs() < 1e-9);

        // A reset opens a fresh measurement window on the combined clock
        // without clearing the lifetime fault statistics.
        store.reset_io_stats();
        assert!(ConcurrentPageStore::io_stats(&store).simulated_ms.abs() < 1e-9);
        assert!((store.fault_stats().injected_ms - 15.0).abs() < 1e-9);
        store
            .read_shared(ids[0], AccessContext::default())
            .expect("read");
        assert!(ConcurrentPageStore::io_stats(&store).simulated_ms > 0.0);
    }
}
