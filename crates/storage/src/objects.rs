//! Object pages: the third page category of the paper (Fig. 1).
//!
//! "Object pages storing the exact representation of spatial objects" are
//! what the type-based LRU drops first. [`ObjectStore`] packs serialized
//! object payloads into pages of type [`PageType::Object`] on any
//! [`PageStore`], and resolves object ids back to their page — so query
//! pipelines can charge the I/O of fetching exact representations through
//! the same buffer as the index pages.

use crate::{AccessContext, Page, PageId, PageMeta, PageStore, Result, StorageError, PAGE_SIZE};
use asb_geom::{Rect, SpatialStats};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::collections::HashMap;

/// Per-object record header: id (8) + MBR (32) + payload length (4).
const RECORD_HEADER: usize = 44;
/// Page header: record count (2) + reserved (6).
const OBJECT_PAGE_HEADER: usize = 8;

/// A spatial object to be stored: id, MBR, and its exact representation.
#[derive(Debug, Clone, PartialEq)]
pub struct ObjectRecord {
    /// Application-level object id (matching the index entry).
    pub id: u64,
    /// The object's MBR.
    pub mbr: Rect,
    /// Serialized exact representation (vertices etc.). Only its size and
    /// bytes matter to the storage layer.
    pub payload: Bytes,
}

impl ObjectRecord {
    /// Bytes this record occupies inside a page.
    fn stored_size(&self) -> usize {
        RECORD_HEADER + self.payload.len()
    }
}

/// Packs object records into object pages and maps ids to pages.
///
/// Records are packed first-fit in insertion order; a record never spans
/// pages, so each payload is limited to
/// `PAGE_SIZE − OBJECT_PAGE_HEADER − RECORD_HEADER` bytes.
///
/// ```
/// use asb_geom::Rect;
/// use asb_storage::{AccessContext, DiskManager, ObjectRecord, ObjectStore};
///
/// let mut disk = DiskManager::new();
/// let records = vec![ObjectRecord {
///     id: 7,
///     mbr: Rect::new(0.0, 0.0, 1.0, 1.0),
///     payload: bytes::Bytes::from_static(b"exact geometry"),
/// }];
/// let store = ObjectStore::build(&mut disk, &records).unwrap();
/// let rec = store.fetch(&mut disk, 7, AccessContext::default()).unwrap();
/// assert_eq!(rec.payload.as_ref(), b"exact geometry");
/// ```
#[derive(Debug, Default)]
pub struct ObjectStore {
    directory: HashMap<u64, PageId>,
    pages: Vec<PageId>,
}

impl ObjectStore {
    /// Maximum payload size a single object record may carry.
    pub const MAX_PAYLOAD: usize = PAGE_SIZE - OBJECT_PAGE_HEADER - RECORD_HEADER;

    /// Creates an empty store.
    pub fn new() -> Self {
        ObjectStore::default()
    }

    /// Packs `records` into object pages allocated from `store`. Records
    /// are grouped in the given order (callers typically pass them in
    /// spatial order, e.g. the R-tree's leaf order, so object pages have
    /// coherent MBRs for the spatial replacement criteria).
    pub fn build<S: PageStore>(store: &mut S, records: &[ObjectRecord]) -> Result<Self> {
        let mut out = ObjectStore::new();
        let mut batch: Vec<&ObjectRecord> = Vec::new();
        let mut used = OBJECT_PAGE_HEADER;
        for rec in records {
            if rec.payload.len() > Self::MAX_PAYLOAD {
                return Err(StorageError::PageOverflow {
                    id: PageId::new(u64::MAX),
                    len: rec.payload.len(),
                });
            }
            if used + rec.stored_size() > PAGE_SIZE {
                out.flush_batch(store, &batch)?;
                batch.clear();
                used = OBJECT_PAGE_HEADER;
            }
            used += rec.stored_size();
            batch.push(rec);
        }
        if !batch.is_empty() {
            out.flush_batch(store, &batch)?;
        }
        Ok(out)
    }

    fn flush_batch<S: PageStore>(&mut self, store: &mut S, batch: &[&ObjectRecord]) -> Result<()> {
        let mut buf = BytesMut::with_capacity(PAGE_SIZE);
        buf.put_u16_le(batch.len() as u16);
        buf.put_bytes(0, 6);
        let mut mbrs = Vec::with_capacity(batch.len());
        for rec in batch {
            buf.put_u64_le(rec.id);
            buf.put_f64_le(rec.mbr.min.x);
            buf.put_f64_le(rec.mbr.min.y);
            buf.put_f64_le(rec.mbr.max.x);
            buf.put_f64_le(rec.mbr.max.y);
            buf.put_u32_le(rec.payload.len() as u32);
            buf.put_slice(&rec.payload);
            mbrs.push(rec.mbr);
        }
        let meta = PageMeta::object(SpatialStats::from_rects(&mbrs));
        let id = store.allocate(meta, buf.freeze())?;
        for rec in batch {
            self.directory.insert(rec.id, id);
        }
        self.pages.push(id);
        Ok(())
    }

    /// The page holding object `id`, if stored.
    pub fn page_of(&self, id: u64) -> Option<PageId> {
        self.directory.get(&id).copied()
    }

    /// All object pages, in allocation order.
    pub fn pages(&self) -> &[PageId] {
        &self.pages
    }

    /// Number of stored objects.
    pub fn len(&self) -> usize {
        self.directory.len()
    }

    /// Whether the store holds no objects.
    pub fn is_empty(&self) -> bool {
        self.directory.is_empty()
    }

    /// Reads object `id`'s exact representation through `store` (one page
    /// access, counted like any other).
    pub fn fetch<S: PageStore>(
        &self,
        store: &mut S,
        id: u64,
        ctx: AccessContext,
    ) -> Result<ObjectRecord> {
        let page_id = self
            .page_of(id)
            .ok_or(StorageError::PageNotFound(PageId::new(u64::MAX)))?;
        let page = store.read(page_id, ctx)?;
        decode_object_page(&page)?
            .into_iter()
            .find(|r| r.id == id)
            .ok_or_else(|| StorageError::Corrupt {
                id: page_id,
                reason: format!("object {id} missing from its directory page"),
            })
    }
}

/// Decodes all records of an object page.
pub fn decode_object_page(page: &Page) -> Result<Vec<ObjectRecord>> {
    let corrupt = |reason: &str| StorageError::Corrupt {
        id: page.id,
        reason: reason.to_string(),
    };
    let mut buf = page.payload.clone();
    if buf.remaining() < OBJECT_PAGE_HEADER {
        return Err(corrupt("object page shorter than its header"));
    }
    let count = buf.get_u16_le() as usize;
    buf.advance(6);
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        if buf.remaining() < RECORD_HEADER {
            return Err(corrupt("truncated object record header"));
        }
        let id = buf.get_u64_le();
        let x0 = buf.get_f64_le();
        let y0 = buf.get_f64_le();
        let x1 = buf.get_f64_le();
        let y1 = buf.get_f64_le();
        let len = buf.get_u32_le() as usize;
        if buf.remaining() < len {
            return Err(corrupt("truncated object payload"));
        }
        let payload = buf.copy_to_bytes(len);
        out.push(ObjectRecord {
            id,
            mbr: Rect::new(x0, y0, x1, y1),
            payload,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DiskManager;

    fn record(id: u64, size: usize) -> ObjectRecord {
        ObjectRecord {
            id,
            mbr: Rect::new(id as f64, 0.0, id as f64 + 1.0, 1.0),
            payload: Bytes::from(vec![id as u8; size]),
        }
    }

    #[test]
    fn build_and_fetch_roundtrip() {
        let mut disk = DiskManager::new();
        let records: Vec<ObjectRecord> = (0..50).map(|i| record(i, 100)).collect();
        let store = ObjectStore::build(&mut disk, &records).unwrap();
        assert_eq!(store.len(), 50);
        for rec in &records {
            let got = store
                .fetch(&mut disk, rec.id, AccessContext::default())
                .unwrap();
            assert_eq!(&got, rec);
        }
    }

    #[test]
    fn records_pack_multiple_per_page() {
        let mut disk = DiskManager::new();
        let records: Vec<ObjectRecord> = (0..40).map(|i| record(i, 56)).collect();
        let store = ObjectStore::build(&mut disk, &records).unwrap();
        // 100 bytes each incl. header -> ~20 per 2 KiB page -> 2 pages.
        assert_eq!(store.pages().len(), 2, "{:?}", store.pages());
    }

    #[test]
    fn big_records_get_their_own_pages() {
        let mut disk = DiskManager::new();
        let records = vec![record(1, 1500), record(2, 1500)];
        let store = ObjectStore::build(&mut disk, &records).unwrap();
        assert_eq!(store.pages().len(), 2);
    }

    #[test]
    fn oversized_payload_is_rejected() {
        let mut disk = DiskManager::new();
        let records = vec![record(1, ObjectStore::MAX_PAYLOAD + 1)];
        assert!(ObjectStore::build(&mut disk, &records).is_err());
    }

    #[test]
    fn max_payload_fits_exactly() {
        let mut disk = DiskManager::new();
        let records = vec![record(1, ObjectStore::MAX_PAYLOAD)];
        let store = ObjectStore::build(&mut disk, &records).unwrap();
        let got = store.fetch(&mut disk, 1, AccessContext::default()).unwrap();
        assert_eq!(got.payload.len(), ObjectStore::MAX_PAYLOAD);
    }

    #[test]
    fn object_pages_have_object_type_and_stats() {
        let mut disk = DiskManager::new();
        let records: Vec<ObjectRecord> = (0..5).map(|i| record(i, 64)).collect();
        let store = ObjectStore::build(&mut disk, &records).unwrap();
        let page = disk.peek(store.pages()[0]).unwrap();
        assert_eq!(page.meta.page_type, crate::PageType::Object);
        assert_eq!(page.meta.level, 0);
        assert_eq!(page.meta.stats.entry_count, 5);
        assert!(page.meta.stats.mbr.is_some());
    }

    #[test]
    fn unknown_object_fails() {
        let mut disk = DiskManager::new();
        let store = ObjectStore::build(&mut disk, &[record(1, 10)]).unwrap();
        assert!(store
            .fetch(&mut disk, 99, AccessContext::default())
            .is_err());
        assert_eq!(store.page_of(99), None);
    }

    #[test]
    fn empty_store() {
        let mut disk = DiskManager::new();
        let store = ObjectStore::build(&mut disk, &[]).unwrap();
        assert!(store.is_empty());
        assert_eq!(store.pages().len(), 0);
        assert_eq!(disk.page_count(), 0);
    }

    #[test]
    fn decode_rejects_garbage() {
        let meta = PageMeta::object(SpatialStats::EMPTY);
        let page = Page::new(PageId::new(0), meta, Bytes::from_static(b"xy")).unwrap();
        assert!(decode_object_page(&page).is_err());
        // Claimed count larger than actual content.
        let mut buf = BytesMut::new();
        buf.put_u16_le(5);
        buf.put_bytes(0, 6);
        let page = Page::new(PageId::new(0), meta, buf.freeze()).unwrap();
        assert!(decode_object_page(&page).is_err());
    }
}
