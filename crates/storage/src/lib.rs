//! # asb-storage — page and simulated-disk substrate
//!
//! The EDBT 2002 paper measures page-replacement policies by the number of
//! disk accesses R\*-tree queries cause. This crate provides the substrate
//! those measurements run on:
//!
//! * [`Page`] — a fixed-size page ([`PAGE_SIZE`] = 2048 bytes) carrying a
//!   payload plus [`PageMeta`]: the page type (directory / data / object),
//!   its level in the index, and the precomputed
//!   [`SpatialStats`](asb_geom::SpatialStats) the spatial replacement
//!   policies evaluate. The page geometry reproduces the paper's fan-outs:
//!   with an 8-byte header, 40-byte directory entries give 51 entries per
//!   directory page and 48-byte data entries give 42 entries per data page.
//! * [`PageStore`] — the read/write/allocate interface. Implemented by
//!   [`DiskManager`] (the simulated disk) and, in `asb-core`, by the buffer
//!   manager, so buffers stack transparently between an index and the disk.
//! * [`ConcurrentPageStore`] — the shared-reference read path on top of
//!   `PageStore`: reads through `&self` with interior-mutable [`IoStats`],
//!   which is what lets the sharded buffer pool in `asb-core` serve misses
//!   from several threads in parallel.
//! * [`DiskManager`] — an in-memory "disk" that counts physical reads and
//!   writes and distinguishes random from sequential accesses
//!   ([`IoStats`]), including a simulated-time model (10 ms per random
//!   access, the figure the paper quotes for year-2002 hard disks).
//! * [`AccessContext`] / [`QueryId`] — tags every read with the query that
//!   issued it; LRU-K uses this to detect *correlated* references ("two page
//!   accesses are regarded as correlated if they belong to the same query").

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod crash;
mod disk;
mod error;
mod fault;
mod objects;
mod page;
mod recording;
mod retry;
mod scheduler;
mod store;
pub mod sync;
mod wal;

pub use crash::{
    torn_page, CrashClock, CrashEvent, CrashMode, CrashOp, CrashPlan, CrashableStore, WriteFate,
};
pub use disk::{DiskManager, DiskProfile, IoStats};
pub use error::{PageError, StorageError};
pub use fault::{FaultConfig, FaultStats, FaultyStore};
pub use objects::{decode_object_page, ObjectRecord, ObjectStore};
pub use page::{page_checksum, Page, PageId, PageMeta, PageType, PAGE_HEADER_SIZE, PAGE_SIZE};
pub use recording::RecordingStore;
pub use retry::RetryPolicy;
pub use scheduler::{FlightOutcome, FlightStats, SingleFlight};
pub use store::{AccessContext, ConcurrentPageStore, PageStore, QueryId};
pub use wal::{Lsn, RecoveryReport, SharedWal, Wal, WalConfig, WalRecord, WalStats};

/// Convenience alias used across the workspace.
pub type Result<T> = std::result::Result<T, StorageError>;
