use crate::Point;
use serde::{Deserialize, Serialize};

/// An axis-aligned rectangle — the *minimum bounding rectangle (MBR)* of the
/// EDBT 2002 paper.
///
/// Invariant: `min.x <= max.x && min.y <= max.y`. Constructors normalize the
/// corner ordering, so a `Rect` obtained through the public API always
/// satisfies it. Degenerate rectangles (zero width and/or height) are legal;
/// they are the MBRs of points and axis-parallel segments.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Rect {
    /// Lower-left corner.
    pub min: Point,
    /// Upper-right corner.
    pub max: Point,
}

impl Rect {
    /// Creates a rectangle from two opposite corners given coordinate-wise.
    ///
    /// The corners may be given in any order; they are normalized.
    #[inline]
    pub fn new(x0: f64, y0: f64, x1: f64, y1: f64) -> Self {
        Rect {
            min: Point::new(x0.min(x1), y0.min(y1)),
            max: Point::new(x0.max(x1), y0.max(y1)),
        }
    }

    /// Creates a rectangle from two corner points (any order).
    #[inline]
    pub fn from_corners(a: Point, b: Point) -> Self {
        Rect {
            min: a.min(&b),
            max: a.max(&b),
        }
    }

    /// The degenerate rectangle covering exactly one point.
    #[inline]
    pub fn from_point(p: Point) -> Self {
        Rect { min: p, max: p }
    }

    /// Creates the axis-aligned square of side `2 * half` centered on `c`.
    #[inline]
    pub fn centered_square(c: Point, half: f64) -> Self {
        debug_assert!(half >= 0.0);
        Rect::new(c.x - half, c.y - half, c.x + half, c.y + half)
    }

    /// Creates a rectangle centered on `c` with the given width and height.
    #[inline]
    pub fn centered(c: Point, width: f64, height: f64) -> Self {
        debug_assert!(width >= 0.0 && height >= 0.0);
        Rect::new(
            c.x - width / 2.0,
            c.y - height / 2.0,
            c.x + width / 2.0,
            c.y + height / 2.0,
        )
    }

    /// Width (x-extension) of the rectangle.
    #[inline]
    pub fn width(&self) -> f64 {
        self.max.x - self.min.x
    }

    /// Height (y-extension) of the rectangle.
    #[inline]
    pub fn height(&self) -> f64 {
        self.max.y - self.min.y
    }

    /// Area of the rectangle. Zero for degenerate rectangles.
    #[inline]
    pub fn area(&self) -> f64 {
        self.width() * self.height()
    }

    /// Margin (perimeter) of the rectangle: `2 * (width + height)`.
    ///
    /// This is criterion (O3) of the R\*-tree design and the basis of the
    /// paper's spatial replacement criteria M and EM.
    #[inline]
    pub fn margin(&self) -> f64 {
        2.0 * (self.width() + self.height())
    }

    /// Center point of the rectangle.
    #[inline]
    pub fn center(&self) -> Point {
        Point::new(
            (self.min.x + self.max.x) / 2.0,
            (self.min.y + self.max.y) / 2.0,
        )
    }

    /// Returns `true` if `self` and `other` share at least one point
    /// (closed-rectangle semantics: touching boundaries intersect).
    #[inline]
    pub fn intersects(&self, other: &Rect) -> bool {
        self.min.x <= other.max.x
            && other.min.x <= self.max.x
            && self.min.y <= other.max.y
            && other.min.y <= self.max.y
    }

    /// Returns `true` if `p` lies inside or on the boundary of `self`.
    #[inline]
    pub fn contains_point(&self, p: &Point) -> bool {
        self.min.x <= p.x && p.x <= self.max.x && self.min.y <= p.y && p.y <= self.max.y
    }

    /// Returns `true` if `other` lies fully inside `self` (boundaries may
    /// touch).
    #[inline]
    pub fn contains(&self, other: &Rect) -> bool {
        self.min.x <= other.min.x
            && self.min.y <= other.min.y
            && other.max.x <= self.max.x
            && other.max.y <= self.max.y
    }

    /// The smallest rectangle covering both `self` and `other`.
    #[inline]
    pub fn union(&self, other: &Rect) -> Rect {
        Rect {
            min: self.min.min(&other.min),
            max: self.max.max(&other.max),
        }
    }

    /// The intersection of `self` and `other`, or `None` if they are
    /// disjoint.
    #[inline]
    pub fn intersection(&self, other: &Rect) -> Option<Rect> {
        if !self.intersects(other) {
            return None;
        }
        Some(Rect {
            min: self.min.max(&other.min),
            max: self.max.min(&other.max),
        })
    }

    /// Area of the intersection of `self` and `other` (zero if disjoint or
    /// if the intersection is degenerate).
    ///
    /// This is the `area(mbr(e) ∩ mbr(f))` term of the paper's EO criterion
    /// and of the R\*-tree overlap computations.
    #[inline]
    pub fn overlap_area(&self, other: &Rect) -> f64 {
        let w = self.max.x.min(other.max.x) - self.min.x.max(other.min.x);
        if w <= 0.0 {
            return 0.0;
        }
        let h = self.max.y.min(other.max.y) - self.min.y.max(other.min.y);
        if h <= 0.0 {
            return 0.0;
        }
        w * h
    }

    /// Area increase required to include `other`:
    /// `area(self ∪ other) - area(self)`.
    ///
    /// The R\*-tree ChooseSubtree step minimizes this quantity.
    #[inline]
    pub fn enlargement(&self, other: &Rect) -> f64 {
        self.union(other).area() - self.area()
    }

    /// Minimum distance from `p` to the rectangle (zero if `p` is inside).
    #[inline]
    pub fn min_dist(&self, p: &Point) -> f64 {
        let dx = (self.min.x - p.x).max(0.0).max(p.x - self.max.x);
        let dy = (self.min.y - p.y).max(0.0).max(p.y - self.max.y);
        (dx * dx + dy * dy).sqrt()
    }

    /// Mirrors the rectangle horizontally inside `[lo, hi]` on the x-axis
    /// (see [`Point::flip_x`]); used by the *independent* query sets.
    #[inline]
    pub fn flip_x(&self, lo: f64, hi: f64) -> Rect {
        Rect::from_corners(self.min.flip_x(lo, hi), self.max.flip_x(lo, hi))
    }

    /// Clamps the rectangle into `bounds`, returning `None` if they are
    /// disjoint.
    #[inline]
    pub fn clamp_to(&self, bounds: &Rect) -> Option<Rect> {
        self.intersection(bounds)
    }

    /// Returns `true` if all four coordinates are finite.
    #[inline]
    pub fn is_finite(&self) -> bool {
        self.min.is_finite() && self.max.is_finite()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(x0: f64, y0: f64, x1: f64, y1: f64) -> Rect {
        Rect::new(x0, y0, x1, y1)
    }

    #[test]
    fn new_normalizes_corner_order() {
        let a = r(3.0, 4.0, 1.0, 2.0);
        assert_eq!(a, r(1.0, 2.0, 3.0, 4.0));
        assert!(a.min.x <= a.max.x && a.min.y <= a.max.y);
    }

    #[test]
    fn area_and_margin() {
        let a = r(0.0, 0.0, 3.0, 2.0);
        assert_eq!(a.area(), 6.0);
        assert_eq!(a.margin(), 10.0);
    }

    #[test]
    fn degenerate_rect_has_zero_area_but_margin() {
        let seg = r(0.0, 0.0, 5.0, 0.0);
        assert_eq!(seg.area(), 0.0);
        assert_eq!(seg.margin(), 10.0);
        let pt = Rect::from_point(Point::new(1.0, 1.0));
        assert_eq!(pt.area(), 0.0);
        assert_eq!(pt.margin(), 0.0);
    }

    #[test]
    fn intersects_including_touching() {
        let a = r(0.0, 0.0, 2.0, 2.0);
        assert!(a.intersects(&r(1.0, 1.0, 3.0, 3.0)));
        assert!(a.intersects(&r(2.0, 0.0, 4.0, 2.0))); // shared edge
        assert!(a.intersects(&r(2.0, 2.0, 3.0, 3.0))); // shared corner
        assert!(!a.intersects(&r(2.1, 0.0, 3.0, 2.0)));
        assert!(!a.intersects(&r(0.0, 2.1, 2.0, 3.0)));
    }

    #[test]
    fn containment() {
        let outer = r(0.0, 0.0, 10.0, 10.0);
        let inner = r(2.0, 2.0, 3.0, 3.0);
        assert!(outer.contains(&inner));
        assert!(!inner.contains(&outer));
        assert!(outer.contains(&outer));
        assert!(outer.contains_point(&Point::new(0.0, 0.0)));
        assert!(outer.contains_point(&Point::new(10.0, 10.0)));
        assert!(!outer.contains_point(&Point::new(10.0, 10.1)));
    }

    #[test]
    fn union_covers_both() {
        let a = r(0.0, 0.0, 1.0, 1.0);
        let b = r(2.0, -1.0, 3.0, 0.5);
        let u = a.union(&b);
        assert!(u.contains(&a));
        assert!(u.contains(&b));
        assert_eq!(u, r(0.0, -1.0, 3.0, 1.0));
    }

    #[test]
    fn intersection_of_overlapping() {
        let a = r(0.0, 0.0, 2.0, 2.0);
        let b = r(1.0, 1.0, 3.0, 3.0);
        assert_eq!(a.intersection(&b), Some(r(1.0, 1.0, 2.0, 2.0)));
        assert_eq!(a.overlap_area(&b), 1.0);
    }

    #[test]
    fn intersection_of_disjoint_is_none() {
        let a = r(0.0, 0.0, 1.0, 1.0);
        let b = r(5.0, 5.0, 6.0, 6.0);
        assert_eq!(a.intersection(&b), None);
        assert_eq!(a.overlap_area(&b), 0.0);
    }

    #[test]
    fn touching_rects_have_zero_overlap_area() {
        let a = r(0.0, 0.0, 1.0, 1.0);
        let b = r(1.0, 0.0, 2.0, 1.0);
        assert!(a.intersects(&b));
        assert_eq!(a.overlap_area(&b), 0.0);
    }

    #[test]
    fn enlargement_zero_when_contained() {
        let a = r(0.0, 0.0, 4.0, 4.0);
        let b = r(1.0, 1.0, 2.0, 2.0);
        assert_eq!(a.enlargement(&b), 0.0);
        assert!(b.enlargement(&a) > 0.0);
    }

    #[test]
    fn min_dist_inside_is_zero() {
        let a = r(0.0, 0.0, 2.0, 2.0);
        assert_eq!(a.min_dist(&Point::new(1.0, 1.0)), 0.0);
        assert_eq!(a.min_dist(&Point::new(5.0, 2.0)), 3.0);
        assert_eq!(a.min_dist(&Point::new(5.0, 6.0)), 5.0);
    }

    #[test]
    fn flip_x_is_involutive() {
        let a = r(1.0, 2.0, 3.0, 4.0);
        let f = a.flip_x(0.0, 10.0);
        assert_eq!(f, r(7.0, 2.0, 9.0, 4.0));
        assert_eq!(f.flip_x(0.0, 10.0), a);
    }

    #[test]
    fn centered_constructors() {
        let c = Point::new(5.0, 5.0);
        assert_eq!(Rect::centered_square(c, 1.0), r(4.0, 4.0, 6.0, 6.0));
        assert_eq!(Rect::centered(c, 2.0, 4.0), r(4.0, 3.0, 6.0, 7.0));
    }
}
