//! # asb-geom — geometry substrate
//!
//! Two-dimensional geometry primitives used throughout the `asb` workspace:
//!
//! * [`Point`] and [`Rect`] (axis-aligned minimum bounding rectangles, MBRs)
//!   with the algebra the R\*-tree and the spatial replacement policies need:
//!   area, margin, union, intersection, enlargement.
//! * [`SpatialStats`], the precomputed per-page spatial criteria of
//!   Brinkhoff's EDBT 2002 paper (page area/margin, entry-area and
//!   entry-margin sums, pairwise entry overlap). Pages carry these so the
//!   buffer manager can apply a spatial replacement criterion without
//!   knowing how index pages are encoded.
//! * Space-filling curves ([`curve::z_order`], [`curve::hilbert`]) used by
//!   bulk loading and as the "z-values in a B-tree" example of page entries
//!   mentioned in the paper.
//!
//! All coordinates are `f64`. The library never panics on degenerate
//! rectangles (zero width/height are legal MBRs of points and horizontal or
//! vertical lines); constructors normalize corner ordering instead.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod curve;
mod item;
mod point;
mod query;
mod rect;
mod stats;

pub use item::SpatialItem;
pub use point::Point;
pub use query::Query;
pub use rect::Rect;
pub use stats::{SpatialCriterion, SpatialStats};

/// Anything that can report a minimum bounding rectangle.
///
/// Implemented by [`Point`], [`Rect`] and by index entries in `asb-rtree`.
pub trait HasMbr {
    /// The minimum bounding rectangle of `self`.
    fn mbr(&self) -> Rect;
}

impl HasMbr for Point {
    fn mbr(&self) -> Rect {
        Rect::from_point(*self)
    }
}

impl HasMbr for Rect {
    fn mbr(&self) -> Rect {
        *self
    }
}

/// Computes the MBR of a non-empty sequence of MBR-bearing items.
///
/// Returns `None` for an empty iterator.
pub fn mbr_of<I, T>(items: I) -> Option<Rect>
where
    I: IntoIterator<Item = T>,
    T: HasMbr,
{
    let mut it = items.into_iter();
    let first = it.next()?.mbr();
    Some(it.fold(first, |acc, item| acc.union(&item.mbr())))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mbr_of_empty_is_none() {
        let rects: [Rect; 0] = [];
        assert!(mbr_of(rects).is_none());
    }

    #[test]
    fn mbr_of_points_spans_all() {
        let pts = [
            Point::new(0.0, 0.0),
            Point::new(2.0, 3.0),
            Point::new(-1.0, 1.0),
        ];
        let m = mbr_of(pts).unwrap();
        assert_eq!(m, Rect::new(-1.0, 0.0, 2.0, 3.0));
    }

    #[test]
    fn mbr_of_single_rect_is_identity() {
        let r = Rect::new(1.0, 2.0, 3.0, 4.0);
        assert_eq!(mbr_of([r]).unwrap(), r);
    }
}
