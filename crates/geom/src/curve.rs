//! Space-filling curves.
//!
//! Two curves are provided:
//!
//! * [`z_order`] — Morton/Z-order interleaving, the "z-values stored in a
//!   B-tree" of Orenstein/Manola that the paper cites as one source of page
//!   entries, and
//! * [`hilbert`] — the Hilbert curve, used by the R\*-tree bulk loader in
//!   `asb-rtree` because it preserves locality better than Z-order.
//!
//! Both map a pair of `u32` grid coordinates to a `u64` key and back.
//! Continuous coordinates are mapped onto the grid with
//! [`quantize`]/[`CurveGrid`].

use crate::{Point, Rect};

/// Number of bits per dimension used by the curve encodings.
pub const CURVE_BITS: u32 = 32;

/// Interleaves the bits of `x` and `y` into a Z-order (Morton) key.
///
/// Bit `i` of `x` lands on bit `2i` of the result, bit `i` of `y` on bit
/// `2i + 1`, so keys sort by the classic N-shaped Z curve.
#[inline]
pub fn z_order(x: u32, y: u32) -> u64 {
    spread(x) | (spread(y) << 1)
}

/// Inverse of [`z_order`].
#[inline]
pub fn z_order_inverse(key: u64) -> (u32, u32) {
    (compact(key), compact(key >> 1))
}

/// Spreads the 32 bits of `v` onto the even bit positions of a `u64`.
#[inline]
fn spread(v: u32) -> u64 {
    let mut v = v as u64;
    v = (v | (v << 16)) & 0x0000_FFFF_0000_FFFF;
    v = (v | (v << 8)) & 0x00FF_00FF_00FF_00FF;
    v = (v | (v << 4)) & 0x0F0F_0F0F_0F0F_0F0F;
    v = (v | (v << 2)) & 0x3333_3333_3333_3333;
    v = (v | (v << 1)) & 0x5555_5555_5555_5555;
    v
}

/// Gathers the even bit positions of `v` back into 32 bits.
#[inline]
fn compact(v: u64) -> u32 {
    let mut v = v & 0x5555_5555_5555_5555;
    v = (v | (v >> 1)) & 0x3333_3333_3333_3333;
    v = (v | (v >> 2)) & 0x0F0F_0F0F_0F0F_0F0F;
    v = (v | (v >> 4)) & 0x00FF_00FF_00FF_00FF;
    v = (v | (v >> 8)) & 0x0000_FFFF_0000_FFFF;
    v = (v | (v >> 16)) & 0x0000_0000_FFFF_FFFF;
    v as u32
}

/// Maps grid coordinates to their index along a Hilbert curve of order
/// [`CURVE_BITS`].
///
/// Uses the classic rotate-and-reflect iteration (Warren, *Hacker's
/// Delight*-style), O(bits).
pub fn hilbert(x: u32, y: u32) -> u64 {
    let n: u64 = 1 << CURVE_BITS;
    let (mut x, mut y) = (x as u64, y as u64);
    let mut d: u64 = 0;
    let mut s: u64 = n >> 1;
    while s > 0 {
        let rx = u64::from((x & s) > 0);
        let ry = u64::from((y & s) > 0);
        d += s * s * ((3 * rx) ^ ry);
        // NB: the forward transform rotates within the FULL grid (side n),
        // the inverse within the current sub-square (side s).
        rotate(n, &mut x, &mut y, rx, ry);
        s >>= 1;
    }
    d
}

/// Inverse of [`hilbert`]: maps a curve index back to grid coordinates.
pub fn hilbert_inverse(d: u64) -> (u32, u32) {
    let mut t = d;
    let (mut x, mut y): (u64, u64) = (0, 0);
    let mut s: u64 = 1;
    while s < (1u64 << CURVE_BITS) {
        let rx = 1 & (t / 2);
        let ry = 1 & (t ^ rx);
        rotate(s, &mut x, &mut y, rx, ry);
        x += s * rx;
        y += s * ry;
        t /= 4;
        s <<= 1;
    }
    (x as u32, y as u32)
}

/// Rotates/reflects a quadrant of side `s` (the Hilbert-curve base motif).
#[inline]
fn rotate(s: u64, x: &mut u64, y: &mut u64, rx: u64, ry: u64) {
    if ry == 0 {
        if rx == 1 {
            *x = s - 1 - *x;
            *y = s - 1 - *y;
        }
        std::mem::swap(x, y);
    }
}

/// A uniform grid over a bounding rectangle, quantizing continuous points to
/// curve coordinates.
#[derive(Debug, Clone, Copy)]
pub struct CurveGrid {
    bounds: Rect,
    /// Grid resolution per dimension (cells = `1 << bits`).
    bits: u32,
}

impl CurveGrid {
    /// Creates a grid of `1 << bits` cells per dimension over `bounds`.
    ///
    /// # Panics
    /// Panics if `bits == 0 || bits > 32` or if `bounds` is degenerate in
    /// either dimension.
    pub fn new(bounds: Rect, bits: u32) -> Self {
        assert!((1..=32).contains(&bits), "bits must be in 1..=32");
        assert!(
            bounds.width() > 0.0 && bounds.height() > 0.0,
            "grid bounds must have positive extent"
        );
        CurveGrid { bounds, bits }
    }

    /// The grid bounds.
    pub fn bounds(&self) -> Rect {
        self.bounds
    }

    /// Grid resolution in bits per dimension.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Shift that scales grid coordinates up to [`CURVE_BITS`] resolution
    /// (the resolution of [`CurveGrid::z_key`] / [`CurveGrid::hilbert_key`]).
    pub fn shift(&self) -> u32 {
        CURVE_BITS - self.bits
    }

    /// Quantizes a point to grid coordinates, clamping to the bounds.
    pub fn quantize(&self, p: &Point) -> (u32, u32) {
        let cells = (1u64 << self.bits) as f64;
        let fx = ((p.x - self.bounds.min.x) / self.bounds.width()).clamp(0.0, 1.0);
        let fy = ((p.y - self.bounds.min.y) / self.bounds.height()).clamp(0.0, 1.0);
        let qx = ((fx * cells) as u64).min((1u64 << self.bits) - 1) as u32;
        let qy = ((fy * cells) as u64).min((1u64 << self.bits) - 1) as u32;
        (qx, qy)
    }

    /// Hilbert key of a point (shifted to use the grid's resolution).
    pub fn hilbert_key(&self, p: &Point) -> u64 {
        let (x, y) = self.quantize(p);
        // Scale coordinates up to CURVE_BITS so keys from different grids
        // with the same bounds are comparable.
        let shift = CURVE_BITS - self.bits;
        hilbert(x << shift, y << shift)
    }

    /// Z-order key of a point.
    pub fn z_key(&self, p: &Point) -> u64 {
        let (x, y) = self.quantize(p);
        let shift = CURVE_BITS - self.bits;
        z_order(x << shift, y << shift)
    }
}

/// Quantizes `v ∈ [lo, hi]` onto `1 << bits` cells (helper for callers that
/// roll their own grids).
pub fn quantize(v: f64, lo: f64, hi: f64, bits: u32) -> u32 {
    debug_assert!(hi > lo);
    let cells = (1u64 << bits) as f64;
    let f = ((v - lo) / (hi - lo)).clamp(0.0, 1.0);
    ((f * cells) as u64).min((1u64 << bits) - 1) as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn z_order_small_values() {
        assert_eq!(z_order(0, 0), 0);
        assert_eq!(z_order(1, 0), 1);
        assert_eq!(z_order(0, 1), 2);
        assert_eq!(z_order(1, 1), 3);
        assert_eq!(z_order(2, 0), 4);
        assert_eq!(z_order(3, 3), 15);
    }

    #[test]
    fn z_order_roundtrip() {
        for &(x, y) in &[
            (0u32, 0u32),
            (1, 2),
            (123, 456),
            (u32::MAX, 0),
            (u32::MAX, u32::MAX),
        ] {
            assert_eq!(z_order_inverse(z_order(x, y)), (x, y));
        }
    }

    #[test]
    fn hilbert_roundtrip_exhaustive_small() {
        // Verify bijectivity on the low corner of the grid by round-tripping
        // through the inverse.
        for x in 0..32u32 {
            for y in 0..32u32 {
                let d = hilbert(x, y);
                assert_eq!(hilbert_inverse(d), (x, y), "x={x} y={y} d={d}");
            }
        }
    }

    #[test]
    fn hilbert_neighbors_are_adjacent() {
        // Consecutive curve indices map to grid cells at L1 distance 1 —
        // the defining locality property of the Hilbert curve.
        for d in 0..4096u64 {
            let (x0, y0) = hilbert_inverse(d);
            let (x1, y1) = hilbert_inverse(d + 1);
            let dist = (x0 as i64 - x1 as i64).abs() + (y0 as i64 - y1 as i64).abs();
            assert_eq!(dist, 1, "d={d}");
        }
    }

    #[test]
    fn grid_quantize_corners() {
        let g = CurveGrid::new(Rect::new(0.0, 0.0, 10.0, 10.0), 8);
        assert_eq!(g.quantize(&Point::new(0.0, 0.0)), (0, 0));
        assert_eq!(g.quantize(&Point::new(10.0, 10.0)), (255, 255));
        // Out-of-bounds points clamp.
        assert_eq!(g.quantize(&Point::new(-5.0, 20.0)), (0, 255));
    }

    #[test]
    fn grid_keys_are_monotone_in_locality() {
        let g = CurveGrid::new(Rect::new(0.0, 0.0, 1.0, 1.0), 16);
        let a = g.hilbert_key(&Point::new(0.1, 0.1));
        let b = g.hilbert_key(&Point::new(0.100001, 0.1));
        let c = g.hilbert_key(&Point::new(0.9, 0.9));
        // Nearby points have much closer keys than distant ones.
        assert!(a.abs_diff(b) < a.abs_diff(c));
    }

    #[test]
    #[should_panic(expected = "bits")]
    fn grid_rejects_zero_bits() {
        let _ = CurveGrid::new(Rect::new(0.0, 0.0, 1.0, 1.0), 0);
    }

    #[test]
    fn quantize_helper_bounds() {
        assert_eq!(quantize(0.0, 0.0, 1.0, 4), 0);
        assert_eq!(quantize(1.0, 0.0, 1.0, 4), 15);
        assert_eq!(quantize(0.5, 0.0, 1.0, 4), 8);
    }
}
