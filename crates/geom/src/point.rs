use serde::{Deserialize, Serialize};

/// A point in the two-dimensional Euclidean plane.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Point {
    /// x-coordinate.
    pub x: f64,
    /// y-coordinate.
    pub y: f64,
}

impl Point {
    /// Creates a point from its coordinates.
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// The origin `(0, 0)`.
    pub const ORIGIN: Point = Point::new(0.0, 0.0);

    /// Euclidean distance to `other`.
    #[inline]
    pub fn distance(&self, other: &Point) -> f64 {
        self.distance_sq(other).sqrt()
    }

    /// Squared Euclidean distance to `other` (avoids the `sqrt` when only
    /// comparisons are needed).
    #[inline]
    pub fn distance_sq(&self, other: &Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// Component-wise minimum of two points.
    #[inline]
    pub fn min(&self, other: &Point) -> Point {
        Point::new(self.x.min(other.x), self.y.min(other.y))
    }

    /// Component-wise maximum of two points.
    #[inline]
    pub fn max(&self, other: &Point) -> Point {
        Point::new(self.x.max(other.x), self.y.max(other.y))
    }

    /// Mirrors the point horizontally inside `[lo, hi]` on the x-axis.
    ///
    /// Used by the paper's *independent* query distribution, which flips the
    /// x-coordinates of the query objects so that the query and data
    /// distributions become independent of each other.
    #[inline]
    pub fn flip_x(&self, lo: f64, hi: f64) -> Point {
        Point::new(hi - (self.x - lo), self.y)
    }

    /// Returns `true` if both coordinates are finite.
    #[inline]
    pub fn is_finite(&self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }
}

impl From<(f64, f64)> for Point {
    fn from((x, y): (f64, f64)) -> Self {
        Point::new(x, y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_is_euclidean() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert_eq!(a.distance(&b), 5.0);
        assert_eq!(a.distance_sq(&b), 25.0);
    }

    #[test]
    fn distance_is_symmetric() {
        let a = Point::new(-1.5, 2.0);
        let b = Point::new(4.0, -0.5);
        assert_eq!(a.distance(&b), b.distance(&a));
    }

    #[test]
    fn min_max_componentwise() {
        let a = Point::new(1.0, 4.0);
        let b = Point::new(2.0, 3.0);
        assert_eq!(a.min(&b), Point::new(1.0, 3.0));
        assert_eq!(a.max(&b), Point::new(2.0, 4.0));
    }

    #[test]
    fn flip_x_mirrors_within_range() {
        let p = Point::new(2.0, 5.0);
        let flipped = p.flip_x(0.0, 10.0);
        assert_eq!(flipped, Point::new(8.0, 5.0));
        // Flipping twice is the identity.
        assert_eq!(flipped.flip_x(0.0, 10.0), p);
    }

    #[test]
    fn from_tuple() {
        let p: Point = (1.0, 2.0).into();
        assert_eq!(p, Point::new(1.0, 2.0));
    }
}
