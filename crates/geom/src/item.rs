use crate::{HasMbr, Rect};
use serde::{Deserialize, Serialize};

/// A spatial object reduced to what an index needs: an id and an MBR.
///
/// Datasets (`asb-workload`) produce these and the R\*-tree
/// (`asb-rtree`) indexes them.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SpatialItem {
    /// Application-level identifier reported by queries.
    pub id: u64,
    /// Minimum bounding rectangle of the object.
    pub mbr: Rect,
}

impl SpatialItem {
    /// Creates an item.
    pub fn new(id: u64, mbr: Rect) -> Self {
        SpatialItem { id, mbr }
    }
}

impl HasMbr for SpatialItem {
    fn mbr(&self) -> Rect {
        self.mbr
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn item_reports_its_mbr() {
        let r = Rect::new(0.0, 0.0, 1.0, 2.0);
        assert_eq!(SpatialItem::new(7, r).mbr(), r);
    }
}
