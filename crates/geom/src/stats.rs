use crate::{mbr_of, Rect};
use serde::{Deserialize, Serialize};

/// Precomputed spatial criteria of a page, as defined in Section 2.3 of the
/// EDBT 2002 paper.
///
/// A page `p` in a spatial database contains entries `e ∈ p`, each with an
/// MBR (spatial objects on object pages, rectangles on R-tree data and
/// directory pages, quadtree cells, z-value ranges, …). The five spatial
/// page-replacement algorithms are driven by one scalar per page:
///
/// | Variant | `spatialCrit(p)` |
/// |---------|------------------|
/// | A  | `area(mbr(p))` — area of the MBR of all entries |
/// | EA | `Σ_e area(mbr(e))` — entry areas (not normalized, so it also rewards storage utilization, criterion O4) |
/// | M  | `margin(mbr(p))` |
/// | EM | `Σ_e margin(mbr(e))` |
/// | EO | `Σ_{e≠f} area(mbr(e) ∩ mbr(f)) / 2` — pairwise entry overlap |
///
/// The struct is computed once when a page is (re)written and travels with
/// the page, so the buffer manager can evaluate any criterion in O(1) —
/// matching the paper's remark that area and margin cost "only a small
/// overhead when a new page is loaded into the buffer" and that storing the
/// overlap on the page "may be worthwhile".
///
/// ```
/// use asb_geom::{Rect, SpatialCriterion, SpatialStats};
///
/// let stats = SpatialStats::from_rects(&[
///     Rect::new(0.0, 0.0, 2.0, 2.0),
///     Rect::new(1.0, 1.0, 3.0, 3.0),
/// ]);
/// assert_eq!(stats.criterion(SpatialCriterion::Area), 9.0); // 3x3 page MBR
/// assert_eq!(stats.criterion(SpatialCriterion::EntryArea), 8.0);
/// assert_eq!(stats.criterion(SpatialCriterion::EntryOverlap), 1.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SpatialStats {
    /// MBR of all entries of the page (`None` for an empty page).
    pub mbr: Option<Rect>,
    /// Number of entries the statistics were computed over.
    pub entry_count: u32,
    /// `Σ_e area(mbr(e))`.
    pub entry_area_sum: f64,
    /// `Σ_e margin(mbr(e))`.
    pub entry_margin_sum: f64,
    /// `Σ_{e≠f} area(mbr(e) ∩ mbr(f)) / 2` over unordered pairs.
    pub entry_overlap: f64,
}

/// The spatial page-replacement criterion selecting which per-page scalar
/// drives eviction (Section 2.3 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SpatialCriterion {
    /// Maximize the area of the page MBR (variant **A**).
    Area,
    /// Maximize the sum of the entry areas (variant **EA**).
    EntryArea,
    /// Maximize the margin of the page MBR (variant **M**).
    Margin,
    /// Maximize the sum of the entry margins (variant **EM**).
    EntryMargin,
    /// Maximize the pairwise overlap between entries (variant **EO**).
    EntryOverlap,
}

impl SpatialCriterion {
    /// All five criteria, in the paper's order.
    pub const ALL: [SpatialCriterion; 5] = [
        SpatialCriterion::Area,
        SpatialCriterion::EntryArea,
        SpatialCriterion::Margin,
        SpatialCriterion::EntryMargin,
        SpatialCriterion::EntryOverlap,
    ];

    /// Short name used in the paper's figures ("A", "EA", "M", "EM", "EO").
    pub fn short_name(&self) -> &'static str {
        match self {
            SpatialCriterion::Area => "A",
            SpatialCriterion::EntryArea => "EA",
            SpatialCriterion::Margin => "M",
            SpatialCriterion::EntryMargin => "EM",
            SpatialCriterion::EntryOverlap => "EO",
        }
    }
}

impl std::fmt::Display for SpatialCriterion {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.short_name())
    }
}

impl SpatialStats {
    /// Statistics of a page with no entries. Every criterion evaluates to
    /// zero, so empty pages are always the first eviction victims — the
    /// desired behaviour.
    pub const EMPTY: SpatialStats = SpatialStats {
        mbr: None,
        entry_count: 0,
        entry_area_sum: 0.0,
        entry_margin_sum: 0.0,
        entry_overlap: 0.0,
    };

    /// Computes the statistics over the entry MBRs of a page.
    ///
    /// Runs in O(n²) for the pairwise overlap term; n is bounded by the page
    /// fan-out (51 in the paper's setup), so this is cheap and done once per
    /// page write.
    pub fn from_rects(entries: &[Rect]) -> Self {
        let mbr = mbr_of(entries.iter().copied());
        let mut area_sum = 0.0;
        let mut margin_sum = 0.0;
        for e in entries {
            area_sum += e.area();
            margin_sum += e.margin();
        }
        let mut overlap = 0.0;
        for (i, e) in entries.iter().enumerate() {
            for f in &entries[i + 1..] {
                overlap += e.overlap_area(f);
            }
        }
        // The paper's formula sums over ordered pairs and divides by two,
        // which equals the sum over unordered pairs computed above.
        SpatialStats {
            mbr,
            entry_count: entries.len() as u32,
            entry_area_sum: area_sum,
            entry_margin_sum: margin_sum,
            entry_overlap: overlap,
        }
    }

    /// Evaluates `spatialCrit(p)` for the chosen criterion.
    ///
    /// Larger values mean the page should stay in the buffer longer; the
    /// buffered page with the **smallest** value is the eviction candidate.
    #[inline]
    pub fn criterion(&self, which: SpatialCriterion) -> f64 {
        match which {
            SpatialCriterion::Area => self.mbr.map_or(0.0, |m| m.area()),
            SpatialCriterion::EntryArea => self.entry_area_sum,
            SpatialCriterion::Margin => self.mbr.map_or(0.0, |m| m.margin()),
            SpatialCriterion::EntryMargin => self.entry_margin_sum,
            SpatialCriterion::EntryOverlap => self.entry_overlap,
        }
    }
}

impl Default for SpatialStats {
    fn default() -> Self {
        SpatialStats::EMPTY
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Rect;

    fn r(x0: f64, y0: f64, x1: f64, y1: f64) -> Rect {
        Rect::new(x0, y0, x1, y1)
    }

    #[test]
    fn empty_page_stats_are_zero() {
        let s = SpatialStats::from_rects(&[]);
        assert_eq!(s, SpatialStats::EMPTY);
        for c in SpatialCriterion::ALL {
            assert_eq!(s.criterion(c), 0.0);
        }
    }

    #[test]
    fn single_entry_page() {
        let s = SpatialStats::from_rects(&[r(0.0, 0.0, 2.0, 3.0)]);
        assert_eq!(s.entry_count, 1);
        assert_eq!(s.criterion(SpatialCriterion::Area), 6.0);
        assert_eq!(s.criterion(SpatialCriterion::EntryArea), 6.0);
        assert_eq!(s.criterion(SpatialCriterion::Margin), 10.0);
        assert_eq!(s.criterion(SpatialCriterion::EntryMargin), 10.0);
        assert_eq!(s.criterion(SpatialCriterion::EntryOverlap), 0.0);
    }

    #[test]
    fn page_mbr_spans_entries() {
        let s = SpatialStats::from_rects(&[r(0.0, 0.0, 1.0, 1.0), r(4.0, 4.0, 5.0, 6.0)]);
        assert_eq!(s.mbr.unwrap(), r(0.0, 0.0, 5.0, 6.0));
        assert_eq!(s.criterion(SpatialCriterion::Area), 30.0);
        // Entry sums are not normalized by count (criterion O4).
        assert_eq!(s.criterion(SpatialCriterion::EntryArea), 1.0 + 2.0);
    }

    #[test]
    fn overlap_counts_each_unordered_pair_once() {
        // Three identical unit squares: 3 unordered pairs, each overlap 1.
        let sq = r(0.0, 0.0, 1.0, 1.0);
        let s = SpatialStats::from_rects(&[sq, sq, sq]);
        assert_eq!(s.criterion(SpatialCriterion::EntryOverlap), 3.0);
    }

    #[test]
    fn overlap_zero_for_disjoint_entries() {
        let s = SpatialStats::from_rects(&[r(0.0, 0.0, 1.0, 1.0), r(2.0, 2.0, 3.0, 3.0)]);
        assert_eq!(s.criterion(SpatialCriterion::EntryOverlap), 0.0);
    }

    #[test]
    fn a_equals_ea_for_complete_disjoint_partition() {
        // Directory pages of SAMs partitioning the space completely and
        // without overlap: A and EA coincide (paper, Section 2.3).
        let s = SpatialStats::from_rects(&[r(0.0, 0.0, 1.0, 2.0), r(1.0, 0.0, 2.0, 2.0)]);
        assert_eq!(
            s.criterion(SpatialCriterion::Area),
            s.criterion(SpatialCriterion::EntryArea)
        );
    }

    #[test]
    fn short_names_match_paper() {
        let names: Vec<_> = SpatialCriterion::ALL
            .iter()
            .map(|c| c.short_name())
            .collect();
        assert_eq!(names, ["A", "EA", "M", "EM", "EO"]);
    }
}
