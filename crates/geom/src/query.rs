use crate::{Point, Rect};
use serde::{Deserialize, Serialize};

/// A spatial query, as issued by the paper's query sets.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Query {
    /// Point query: report all objects whose MBR contains the point.
    Point(Point),
    /// Window query: report all objects whose MBR intersects the window.
    Window(Rect),
}

impl Query {
    /// Whether an object MBR matches this query.
    #[inline]
    pub fn matches(&self, mbr: &Rect) -> bool {
        match self {
            Query::Point(p) => mbr.contains_point(p),
            Query::Window(w) => mbr.intersects(w),
        }
    }

    /// The query's own region as a (possibly degenerate) rectangle.
    #[inline]
    pub fn region(&self) -> Rect {
        match self {
            Query::Point(p) => Rect::from_point(*p),
            Query::Window(w) => *w,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_query_matches_containing_mbrs() {
        let q = Query::Point(Point::new(1.0, 1.0));
        assert!(q.matches(&Rect::new(0.0, 0.0, 2.0, 2.0)));
        assert!(q.matches(&Rect::new(1.0, 1.0, 2.0, 2.0))); // boundary
        assert!(!q.matches(&Rect::new(2.0, 2.0, 3.0, 3.0)));
    }

    #[test]
    fn window_query_matches_intersecting_mbrs() {
        let q = Query::Window(Rect::new(0.0, 0.0, 1.0, 1.0));
        assert!(q.matches(&Rect::new(0.5, 0.5, 2.0, 2.0)));
        assert!(q.matches(&Rect::new(1.0, 0.0, 2.0, 1.0))); // touching
        assert!(!q.matches(&Rect::new(1.1, 0.0, 2.0, 1.0)));
    }

    #[test]
    fn region_of_point_is_degenerate() {
        let q = Query::Point(Point::new(3.0, 4.0));
        assert_eq!(q.region(), Rect::new(3.0, 4.0, 3.0, 4.0));
        let w = Rect::new(0.0, 0.0, 1.0, 2.0);
        assert_eq!(Query::Window(w).region(), w);
    }
}
