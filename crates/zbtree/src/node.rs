//! B⁺-tree node pages and their codec.

use asb_geom::{Point, Rect, SpatialStats};
use asb_storage::{Page, PageId, PageMeta, PageType, StorageError, PAGE_HEADER_SIZE, PAGE_SIZE};
use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Sentinel for "no page" in the leaf chaining pointer.
const NO_PAGE: u64 = u64::MAX;

/// A B⁺-tree key: the z-order value of a point plus the object id as a
/// tie-breaker, making keys unique even for co-located objects.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Key {
    /// Z-order (Morton) value of the quantized location.
    pub z: u64,
    /// Object id (tie-breaker).
    pub id: u64,
}

impl Key {
    /// The smallest possible key.
    pub const MIN: Key = Key { z: 0, id: 0 };
    /// The largest possible key.
    pub const MAX: Key = Key {
        z: u64::MAX,
        id: u64::MAX,
    };
}

/// A leaf entry: key plus the exact point location.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ZLeafEntry {
    /// The entry's key.
    pub key: Key,
    /// Exact location of the object.
    pub location: Point,
}

/// Size of a serialized leaf entry: key (16) + point (16).
const LEAF_ENTRY_SIZE: usize = 32;
/// Size of a serialized inner entry: min key (16) + child (8) + MBR (32).
const INNER_ENTRY_SIZE: usize = 56;

/// Maximum entries in a leaf page (header 8 + next pointer 8).
pub(crate) const LEAF_CAPACITY: usize = (PAGE_SIZE - PAGE_HEADER_SIZE - 8) / LEAF_ENTRY_SIZE;
/// Maximum entries (children) in an inner page.
pub(crate) const INNER_CAPACITY: usize = (PAGE_SIZE - PAGE_HEADER_SIZE) / INNER_ENTRY_SIZE;

/// An inner-node entry: the minimum key of the child subtree, the child
/// page, and a (conservative) MBR of everything below it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct InnerEntry {
    pub min_key: Key,
    pub child: PageId,
    pub mbr: Rect,
}

/// A decoded B⁺-tree node.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum ZNode {
    Leaf {
        next: Option<PageId>,
        entries: Vec<ZLeafEntry>,
    },
    Inner {
        level: u8,
        entries: Vec<InnerEntry>,
    },
}

impl ZNode {
    pub fn level(&self) -> u8 {
        match self {
            ZNode::Leaf { .. } => 1,
            ZNode::Inner { level, .. } => *level,
        }
    }

    pub fn len(&self) -> usize {
        match self {
            ZNode::Leaf { entries, .. } => entries.len(),
            ZNode::Inner { entries, .. } => entries.len(),
        }
    }

    /// Smallest key in the subtree rooted here (nodes are never empty
    /// except an empty tree's root leaf).
    pub fn min_key(&self) -> Option<Key> {
        match self {
            ZNode::Leaf { entries, .. } => entries.first().map(|e| e.key),
            ZNode::Inner { entries, .. } => entries.first().map(|e| e.min_key),
        }
    }

    /// Page metadata. The entry rectangles driving the spatial criteria
    /// are the z-cells of leaf entries (computed by the tree layer and
    /// passed in) or the child MBRs of inner entries.
    pub fn page_meta(&self, entry_rects: &[Rect]) -> PageMeta {
        let stats = SpatialStats::from_rects(entry_rects);
        match self {
            ZNode::Leaf { .. } => PageMeta::data(stats),
            ZNode::Inner { level, .. } => PageMeta::directory((*level).max(2), stats),
        }
    }

    pub fn encode(&self) -> Bytes {
        match self {
            ZNode::Leaf { next, entries } => {
                let mut buf =
                    BytesMut::with_capacity(PAGE_HEADER_SIZE + 8 + entries.len() * LEAF_ENTRY_SIZE);
                buf.put_u8(PageType::Data.tag());
                buf.put_u8(1);
                buf.put_u16_le(entries.len() as u16);
                buf.put_u32_le(0);
                buf.put_u64_le(next.map_or(NO_PAGE, |p| p.raw()));
                for e in entries {
                    buf.put_u64_le(e.key.z);
                    buf.put_u64_le(e.key.id);
                    buf.put_f64_le(e.location.x);
                    buf.put_f64_le(e.location.y);
                }
                buf.freeze()
            }
            ZNode::Inner { level, entries } => {
                let mut buf =
                    BytesMut::with_capacity(PAGE_HEADER_SIZE + entries.len() * INNER_ENTRY_SIZE);
                buf.put_u8(PageType::Directory.tag());
                buf.put_u8(*level);
                buf.put_u16_le(entries.len() as u16);
                buf.put_u32_le(0);
                for e in entries {
                    buf.put_u64_le(e.min_key.z);
                    buf.put_u64_le(e.min_key.id);
                    buf.put_u64_le(e.child.raw());
                    buf.put_f64_le(e.mbr.min.x);
                    buf.put_f64_le(e.mbr.min.y);
                    buf.put_f64_le(e.mbr.max.x);
                    buf.put_f64_le(e.mbr.max.y);
                }
                buf.freeze()
            }
        }
    }

    pub fn decode(page: &Page) -> Result<ZNode, StorageError> {
        let corrupt = |reason: &str| StorageError::Corrupt {
            id: page.id,
            reason: reason.to_string(),
        };
        let mut buf = page.payload.clone();
        if buf.remaining() < PAGE_HEADER_SIZE {
            return Err(corrupt("z-btree page shorter than its header"));
        }
        let tag = buf.get_u8();
        let level = buf.get_u8();
        let count = buf.get_u16_le() as usize;
        let _reserved = buf.get_u32_le();
        match PageType::from_tag(tag) {
            Some(PageType::Data) => {
                if buf.remaining() < 8 + count * LEAF_ENTRY_SIZE {
                    return Err(corrupt("truncated leaf"));
                }
                let raw_next = buf.get_u64_le();
                let next = (raw_next != NO_PAGE).then(|| PageId::new(raw_next));
                let mut entries = Vec::with_capacity(count);
                for _ in 0..count {
                    let z = buf.get_u64_le();
                    let id = buf.get_u64_le();
                    let x = buf.get_f64_le();
                    let y = buf.get_f64_le();
                    entries.push(ZLeafEntry {
                        key: Key { z, id },
                        location: Point::new(x, y),
                    });
                }
                Ok(ZNode::Leaf { next, entries })
            }
            Some(PageType::Directory) => {
                if level < 2 {
                    return Err(corrupt("inner node below level 2"));
                }
                if buf.remaining() < count * INNER_ENTRY_SIZE {
                    return Err(corrupt("truncated inner node"));
                }
                let mut entries = Vec::with_capacity(count);
                for _ in 0..count {
                    let z = buf.get_u64_le();
                    let id = buf.get_u64_le();
                    let child = PageId::new(buf.get_u64_le());
                    let x0 = buf.get_f64_le();
                    let y0 = buf.get_f64_le();
                    let x1 = buf.get_f64_le();
                    let y1 = buf.get_f64_le();
                    entries.push(InnerEntry {
                        min_key: Key { z, id },
                        child,
                        mbr: Rect::new(x0, y0, x1, y1),
                    });
                }
                Ok(ZNode::Inner { level, entries })
            }
            _ => Err(corrupt("not a z-btree page")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacities() {
        assert_eq!(LEAF_CAPACITY, 63);
        assert_eq!(INNER_CAPACITY, 36);
    }

    fn leaf() -> ZNode {
        ZNode::Leaf {
            next: Some(PageId::new(77)),
            entries: (0..5)
                .map(|i| ZLeafEntry {
                    key: Key { z: i * 100, id: i },
                    location: Point::new(i as f64, i as f64 * 2.0),
                })
                .collect(),
        }
    }

    fn inner() -> ZNode {
        ZNode::Inner {
            level: 3,
            entries: (0..4)
                .map(|i| InnerEntry {
                    min_key: Key { z: i * 1000, id: 0 },
                    child: PageId::new(i + 10),
                    mbr: Rect::new(i as f64, 0.0, i as f64 + 1.0, 1.0),
                })
                .collect(),
        }
    }

    fn roundtrip(node: &ZNode) -> ZNode {
        let rects = vec![Rect::new(0.0, 0.0, 1.0, 1.0); node.len()];
        let page = Page::new(PageId::new(1), node.page_meta(&rects), node.encode()).unwrap();
        ZNode::decode(&page).unwrap()
    }

    #[test]
    fn leaf_roundtrip() {
        let n = leaf();
        assert_eq!(roundtrip(&n), n);
    }

    #[test]
    fn inner_roundtrip() {
        let n = inner();
        assert_eq!(roundtrip(&n), n);
    }

    #[test]
    fn empty_leaf_roundtrip() {
        let n = ZNode::Leaf {
            next: None,
            entries: vec![],
        };
        assert_eq!(roundtrip(&n), n);
    }

    #[test]
    fn key_ordering_is_z_major() {
        assert!(Key { z: 1, id: 999 } < Key { z: 2, id: 0 });
        assert!(Key { z: 1, id: 1 } < Key { z: 1, id: 2 });
        assert!(Key::MIN < Key { z: 0, id: 1 });
        assert!(Key { z: u64::MAX, id: 0 } < Key::MAX);
    }

    #[test]
    fn full_pages_fit() {
        let n = ZNode::Leaf {
            next: None,
            entries: (0..LEAF_CAPACITY as u64)
                .map(|i| ZLeafEntry {
                    key: Key { z: i, id: i },
                    location: Point::ORIGIN,
                })
                .collect(),
        };
        assert!(n.encode().len() <= PAGE_SIZE);
        let n = ZNode::Inner {
            level: 2,
            entries: (0..INNER_CAPACITY as u64)
                .map(|i| InnerEntry {
                    min_key: Key { z: i, id: 0 },
                    child: PageId::new(i),
                    mbr: Rect::new(0.0, 0.0, 1.0, 1.0),
                })
                .collect(),
        };
        assert!(n.encode().len() <= PAGE_SIZE);
    }

    #[test]
    fn decode_rejects_garbage() {
        let meta = PageMeta::data(SpatialStats::EMPTY);
        let page = Page::new(PageId::new(1), meta, Bytes::from_static(b"zz")).unwrap();
        assert!(ZNode::decode(&page).is_err());
    }
}
