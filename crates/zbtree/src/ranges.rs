//! Decomposition of a query window into z-value intervals.

use asb_geom::curve::{z_order, CurveGrid, CURVE_BITS};
use asb_geom::Rect;

/// Decomposes `window` into z-value intervals covering every grid cell the
/// window touches.
///
/// Recursive quadrant decomposition: a quadrant fully inside the window (or
/// the split-depth budget being exhausted) emits the quadrant's whole
/// z-interval; a disjoint quadrant emits nothing; a partially overlapping
/// quadrant splits. Coarse intervals over-approximate, which is safe — the
/// scan filters candidates against the exact window. Adjacent intervals are
/// merged before returning.
///
/// `max_split_depth` bounds the recursion (and thus the interval count to
/// at most O(4^depth), in practice O(perimeter)); 8–12 is a good range.
pub fn z_ranges(grid: &CurveGrid, window: &Rect, max_split_depth: u32) -> Vec<(u64, u64)> {
    let Some(clipped) = window.clamp_to(&grid.bounds()) else {
        return Vec::new();
    };
    let mut out = Vec::new();
    // Work at full CURVE_BITS resolution (the resolution of the grid's
    // z-keys): scale the quantized grid coordinates up, with the upper
    // corner mapped to the top of its grid cell.
    let shift = grid.shift();
    let (gx0, gy0) = grid.quantize(&clipped.min);
    let (gx1, gy1) = grid.quantize(&clipped.max);
    let qx0 = gx0 << shift;
    let qy0 = gy0 << shift;
    let qx1 = (gx1 << shift) | side_mask(shift);
    let qy1 = (gy1 << shift) | side_mask(shift);
    descend(0, 0, 0, qx0, qy0, qx1, qy1, max_split_depth, &mut out);
    merge(&mut out);
    out
}

/// Recursion over the implicit quadtree of the z-curve. The current cell
/// has top-left corner `(cx, cy)` and side `2^(CURVE_BITS - depth)` grid
/// units; `(qx0..=qx1, qy0..=qy1)` is the quantized query box.
#[allow(clippy::too_many_arguments)]
fn descend(
    depth: u32,
    cx: u32,
    cy: u32,
    qx0: u32,
    qy0: u32,
    qx1: u32,
    qy1: u32,
    budget: u32,
    out: &mut Vec<(u64, u64)>,
) {
    let side_shift = CURVE_BITS - depth;
    // Cell extent [cx, cx + 2^side_shift - 1] in each dimension.
    let hi_x = cx.wrapping_add(side_mask(side_shift));
    let hi_y = cy.wrapping_add(side_mask(side_shift));
    // Disjoint?
    if hi_x < qx0 || cx > qx1 || hi_y < qy0 || cy > qy1 {
        return;
    }
    let contained = cx >= qx0 && hi_x <= qx1 && cy >= qy0 && hi_y <= qy1;
    if contained || depth >= budget || side_shift == 0 {
        // Emit the cell's whole z-interval: all z-values sharing the
        // cell's 2*depth-bit prefix.
        let lo = z_order(cx, cy);
        let span = if depth == 0 {
            u64::MAX
        } else {
            (1u64 << (2 * side_shift)) - 1
        };
        out.push((lo, lo.saturating_add(span)));
        return;
    }
    let half = 1u32 << (side_shift - 1);
    descend(depth + 1, cx, cy, qx0, qy0, qx1, qy1, budget, out);
    descend(depth + 1, cx + half, cy, qx0, qy0, qx1, qy1, budget, out);
    descend(depth + 1, cx, cy + half, qx0, qy0, qx1, qy1, budget, out);
    descend(
        depth + 1,
        cx + half,
        cy + half,
        qx0,
        qy0,
        qx1,
        qy1,
        budget,
        out,
    );
}

#[inline]
fn side_mask(side_shift: u32) -> u32 {
    if side_shift >= 32 {
        u32::MAX
    } else {
        (1u32 << side_shift) - 1
    }
}

/// Sorts intervals and merges adjacent/overlapping ones.
fn merge(ranges: &mut Vec<(u64, u64)>) {
    ranges.sort_unstable();
    let mut write = 0usize;
    for i in 1..ranges.len() {
        let (lo, hi) = ranges[i];
        let (_, cur_hi) = &mut ranges[write];
        if lo <= cur_hi.saturating_add(1) {
            *cur_hi = (*cur_hi).max(hi);
        } else {
            write += 1;
            ranges[write] = (lo, hi);
        }
    }
    ranges.truncate(if ranges.is_empty() { 0 } else { write + 1 });
}

#[cfg(test)]
mod tests {
    use super::*;
    use asb_geom::Point;

    fn grid() -> CurveGrid {
        CurveGrid::new(Rect::new(0.0, 0.0, 1.0, 1.0), 16)
    }

    fn covers(ranges: &[(u64, u64)], z: u64) -> bool {
        ranges.iter().any(|&(lo, hi)| lo <= z && z <= hi)
    }

    #[test]
    fn full_window_is_one_range() {
        let g = grid();
        let ranges = z_ranges(&g, &Rect::new(0.0, 0.0, 1.0, 1.0), 8);
        assert_eq!(ranges, vec![(0, u64::MAX)]);
    }

    #[test]
    fn disjoint_window_is_empty() {
        let g = grid();
        assert!(z_ranges(&g, &Rect::new(2.0, 2.0, 3.0, 3.0), 8).is_empty());
    }

    #[test]
    fn ranges_cover_all_inside_points() {
        let g = grid();
        let window = Rect::new(0.2, 0.3, 0.45, 0.6);
        let ranges = z_ranges(&g, &window, 10);
        assert!(!ranges.is_empty());
        // Every point inside the window must be covered.
        for i in 0..40 {
            for j in 0..40 {
                let p = Point::new(0.2 + 0.25 * i as f64 / 39.0, 0.3 + 0.3 * j as f64 / 39.0);
                let z = g.z_key(&p);
                assert!(covers(&ranges, z), "point {p:?} (z={z}) uncovered");
            }
        }
    }

    #[test]
    fn deeper_budget_tightens_the_cover() {
        let g = grid();
        let window = Rect::new(0.1, 0.1, 0.2, 0.2);
        let coarse = z_ranges(&g, &window, 4);
        let fine = z_ranges(&g, &window, 12);
        let total =
            |rs: &[(u64, u64)]| -> u128 { rs.iter().map(|&(lo, hi)| (hi - lo) as u128 + 1).sum() };
        assert!(
            total(&fine) <= total(&coarse),
            "finer budget must not widen the cover"
        );
        // Both still cover the window's own corner.
        let z = g.z_key(&Point::new(0.15, 0.15));
        assert!(covers(&coarse, z) && covers(&fine, z));
    }

    #[test]
    fn ranges_are_sorted_and_disjoint() {
        let g = grid();
        let ranges = z_ranges(&g, &Rect::new(0.33, 0.21, 0.77, 0.48), 10);
        for w in ranges.windows(2) {
            assert!(w[0].1 < w[1].0, "ranges must be disjoint and sorted: {w:?}");
        }
    }

    #[test]
    fn tiny_window_yields_few_ranges() {
        let g = grid();
        let ranges = z_ranges(&g, &Rect::new(0.5001, 0.5001, 0.5002, 0.5002), 12);
        assert!(!ranges.is_empty());
        assert!(
            ranges.len() <= 8,
            "tiny windows decompose compactly: {}",
            ranges.len()
        );
    }
}
