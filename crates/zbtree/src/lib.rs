//! # asb-zbtree — a B⁺-tree over z-order values
//!
//! The EDBT 2002 paper's third example of pages with spatial entries:
//! "The same holds for z-values stored in a B-tree" (Orenstein/Manola's
//! PROBE). This crate implements a disk-based B⁺-tree whose keys are the
//! **Z-order (Morton) values** of point locations, over the same paged
//! storage and buffer stack as the R\*-tree and the quadtree.
//!
//! Design notes:
//!
//! * Keys are `(z, object_id)` pairs, so duplicate locations are legal.
//! * Leaf entries carry the point coordinates; the entry "MBR" used for
//!   the spatial replacement criteria is the entry's **z-cell** at the
//!   quantization grid's resolution — the quadtree cell the z-value
//!   addresses, exactly the paper's reading of what a B-tree entry's
//!   rectangle is.
//! * Directory (inner) pages additionally store the MBR of each child
//!   subtree. A plain z-value B-tree would leave the spatial criteria with
//!   no signal on inner pages; the annotation (updated conservatively on
//!   inserts) makes `spatialCrit(p)` well defined for every page type.
//! * Window queries decompose the window into z-intervals (recursive
//!   quadrant decomposition with a split-depth budget), scan the leaf level
//!   across those intervals via the leaf chaining pointers, and filter
//!   candidates exactly. Semantics are **point-in-window** (the tree
//!   indexes object centers), the natural semantics for a point index.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod node;
mod ranges;
mod tree;

pub use node::{Key, ZLeafEntry};
pub use ranges::z_ranges;
pub use tree::{ZBTree, ZBTreeStats, ZConfig};
