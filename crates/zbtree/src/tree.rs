//! The disk-based B⁺-tree over z-order keys.

use crate::node::{InnerEntry, Key, ZLeafEntry, ZNode, INNER_CAPACITY, LEAF_CAPACITY};
use crate::ranges::z_ranges;
use asb_core::{BufferManager, BufferStats};
use asb_geom::curve::{z_order_inverse, CurveGrid};
use asb_geom::{mbr_of, Point, Query, Rect};
use asb_storage::{
    AccessContext, DiskManager, Page, PageId, PageStore, QueryId, Result, StorageError,
};

/// Configuration of a [`ZBTree`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ZConfig {
    /// Quantization grid resolution in bits per dimension.
    pub grid_bits: u32,
    /// Split-depth budget of the window-query range decomposition.
    pub split_depth: u32,
    /// Target leaf fill during bulk loading.
    pub bulk_leaf_fill: usize,
    /// Target inner fill during bulk loading.
    pub bulk_inner_fill: usize,
}

impl Default for ZConfig {
    fn default() -> Self {
        ZConfig {
            grid_bits: 16,
            split_depth: 10,
            bulk_leaf_fill: (LEAF_CAPACITY as f64 * 0.7) as usize,
            bulk_inner_fill: (INNER_CAPACITY as f64 * 0.7) as usize,
        }
    }
}

impl ZConfig {
    /// Validates the configuration.
    pub fn validate(&self) -> std::result::Result<(), String> {
        if self.grid_bits == 0 || self.grid_bits > 32 {
            return Err("grid_bits must be in 1..=32".into());
        }
        if self.split_depth == 0 || self.split_depth > 2 * self.grid_bits {
            return Err("split_depth must be in 1..=2*grid_bits".into());
        }
        if self.bulk_leaf_fill < 2 || self.bulk_leaf_fill > LEAF_CAPACITY {
            return Err("bulk_leaf_fill out of range".into());
        }
        if self.bulk_inner_fill < 2 || self.bulk_inner_fill > INNER_CAPACITY {
            return Err("bulk_inner_fill out of range".into());
        }
        Ok(())
    }
}

/// Structural statistics of a [`ZBTree`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ZBTreeStats {
    /// Inner (directory) pages.
    pub inner_pages: usize,
    /// Leaf (data) pages.
    pub leaf_pages: usize,
    /// Height (1 = the root is a leaf).
    pub height: u8,
    /// Stored entries.
    pub entries: usize,
}

enum InsertOutcome {
    /// Subtree absorbed the entry; `(min_key, mbr)` after the insert.
    Ok(Key, Rect),
    /// Subtree split; the original node kept `(min_key, mbr)` and a new
    /// right sibling `(min_key, page, mbr)` must be added to the parent.
    Split {
        left: (Key, Rect),
        right: (Key, PageId, Rect),
    },
}

enum DeleteOutcome {
    NotFound,
    /// Entry removed; `(min_key, mbr, len)` of the child after removal (the
    /// parent uses `len` to detect underflow).
    Removed {
        min_key: Option<Key>,
        mbr: Option<Rect>,
        len: usize,
    },
}

/// A disk-based B⁺-tree over z-order values of point locations.
///
/// ```
/// use asb_geom::{Point, Rect};
/// use asb_storage::DiskManager;
/// use asb_zbtree::ZBTree;
///
/// let bounds = Rect::new(0.0, 0.0, 1.0, 1.0);
/// let points: Vec<(u64, Point)> =
///     (0..100).map(|i| (i, Point::new(i as f64 / 100.0, 0.5))).collect();
/// let mut tree = ZBTree::bulk_load(DiskManager::new(), bounds, &points).unwrap();
///
/// // Centers-in-window semantics: a point index.
/// let hits = tree.window_query(Rect::new(0.0, 0.0, 0.099, 1.0)).unwrap();
/// assert_eq!(hits.len(), 10);
/// tree.validate().unwrap();
/// ```
pub struct ZBTree<S: PageStore = DiskManager> {
    store: S,
    buffer: Option<BufferManager>,
    config: ZConfig,
    grid: CurveGrid,
    root: PageId,
    height: u8,
    len: usize,
    next_query: u64,
}

impl<S: PageStore> std::fmt::Debug for ZBTree<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ZBTree")
            .field("root", &self.root)
            .field("height", &self.height)
            .field("len", &self.len)
            .finish()
    }
}

impl<S: PageStore> ZBTree<S> {
    /// Creates an empty tree over the data space `bounds`.
    pub fn new(store: S, bounds: Rect) -> Result<Self> {
        Self::with_config(store, bounds, ZConfig::default())
    }

    /// Creates an empty tree with a custom configuration.
    pub fn with_config(mut store: S, bounds: Rect, config: ZConfig) -> Result<Self> {
        config.validate().map_err(|reason| StorageError::Corrupt {
            id: PageId::new(0),
            reason,
        })?;
        let grid = CurveGrid::new(bounds, config.grid_bits);
        let root_node = ZNode::Leaf {
            next: None,
            entries: Vec::new(),
        };
        let root = store.allocate(root_node.page_meta(&[]), root_node.encode())?;
        Ok(ZBTree {
            store,
            buffer: None,
            config,
            grid,
            root,
            height: 1,
            len: 0,
            next_query: 0,
        })
    }

    /// Bulk-loads from `(id, location)` pairs (sorted internally).
    pub fn bulk_load(store: S, bounds: Rect, points: &[(u64, Point)]) -> Result<Self> {
        Self::bulk_load_with(store, bounds, ZConfig::default(), points)
    }

    /// Bulk-loads with a custom configuration.
    pub fn bulk_load_with(
        store: S,
        bounds: Rect,
        config: ZConfig,
        points: &[(u64, Point)],
    ) -> Result<Self> {
        let mut tree = Self::with_config(store, bounds, config)?;
        if points.is_empty() {
            return Ok(tree);
        }
        let mut entries: Vec<ZLeafEntry> = points
            .iter()
            .map(|&(id, location)| ZLeafEntry {
                key: tree.key_of(id, &location),
                location,
            })
            .collect();
        entries.sort_by_key(|e| e.key);
        entries.dedup_by_key(|e| e.key);

        // Free the placeholder root; build leaves then inner levels.
        // Chunk sizes are evened out so the tail chunk never falls below
        // the minimum fill the validator (and deletion) relies on.
        tree.store.free(tree.root)?;
        let leaf_chunks = even_chunks(
            entries.len(),
            config.bulk_leaf_fill,
            LEAF_CAPACITY / 2,
            LEAF_CAPACITY,
        );
        let mut leaf_slices = Vec::with_capacity(leaf_chunks.len());
        let mut offset = 0usize;
        for size in leaf_chunks {
            leaf_slices.push(&entries[offset..offset + size]);
            offset += size;
        }
        let mut leaf_ids = Vec::with_capacity(leaf_slices.len());
        let mut level_entries: Vec<InnerEntry> = Vec::new();
        for chunk in &leaf_slices {
            let node = ZNode::Leaf {
                next: None,
                entries: chunk.to_vec(),
            };
            let id = tree.alloc_node(&node)?;
            leaf_ids.push(id);
            level_entries.push(InnerEntry {
                min_key: chunk[0].key,
                child: id,
                mbr: tree.leaf_mbr(chunk),
            });
        }
        // Link the leaf chain (rewrite with next pointers).
        for (i, chunk) in leaf_slices.iter().enumerate() {
            let next = leaf_ids.get(i + 1).copied();
            let node = ZNode::Leaf {
                next,
                entries: chunk.to_vec(),
            };
            tree.write_node(leaf_ids[i], &node)?;
        }
        let mut level = 1u8;
        while level_entries.len() > 1 {
            level += 1;
            let sizes = even_chunks(
                level_entries.len(),
                config.bulk_inner_fill,
                INNER_CAPACITY / 2,
                INNER_CAPACITY,
            );
            let mut next_level = Vec::new();
            let mut offset = 0usize;
            for size in sizes {
                let chunk = &level_entries[offset..offset + size];
                offset += size;
                let node = ZNode::Inner {
                    level,
                    entries: chunk.to_vec(),
                };
                let id = tree.alloc_node(&node)?;
                next_level.push(InnerEntry {
                    min_key: chunk[0].min_key,
                    child: id,
                    mbr: mbr_of(chunk.iter().map(|e| e.mbr)).expect("non-empty chunk"),
                });
            }
            level_entries = next_level;
        }
        tree.root = level_entries[0].child;
        tree.height = level;
        tree.len = entries.len();
        Ok(tree)
    }

    /// Attaches (or replaces) the buffer.
    pub fn set_buffer(&mut self, buffer: BufferManager) {
        self.buffer = Some(buffer);
    }

    /// Detaches and returns the buffer.
    pub fn take_buffer(&mut self) -> Option<BufferManager> {
        self.buffer.take()
    }

    /// Buffer statistics, if attached.
    pub fn buffer_stats(&self) -> Option<BufferStats> {
        self.buffer.as_ref().map(|b| b.stats())
    }

    /// The backing store.
    pub fn store(&self) -> &S {
        &self.store
    }

    /// Mutable access to the backing store.
    pub fn store_mut(&mut self) -> &mut S {
        &mut self.store
    }

    /// Live pages in the backing store.
    pub fn page_count(&self) -> usize {
        self.store.page_count()
    }

    /// Stored entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Height of the tree.
    pub fn height(&self) -> u8 {
        self.height
    }

    /// The quantization grid.
    pub fn grid(&self) -> &CurveGrid {
        &self.grid
    }

    /// The key a `(id, location)` pair indexes under.
    pub fn key_of(&self, id: u64, location: &Point) -> Key {
        Key {
            z: self.grid.z_key(location),
            id,
        }
    }

    /// The grid cell (rectangle) a z-value addresses — the paper's
    /// "entries" of a z-value B-tree page.
    pub fn cell_of(&self, z: u64) -> Rect {
        let (x32, y32) = z_order_inverse(z);
        let shift = self.grid.shift();
        let gx = (x32 >> shift) as f64;
        let gy = (y32 >> shift) as f64;
        let bounds = self.grid.bounds();
        let cells = (1u64 << self.config.grid_bits) as f64;
        let cw = bounds.width() / cells;
        let ch = bounds.height() / cells;
        Rect::new(
            bounds.min.x + gx * cw,
            bounds.min.y + gy * ch,
            bounds.min.x + (gx + 1.0) * cw,
            bounds.min.y + (gy + 1.0) * ch,
        )
    }

    // ---- page I/O --------------------------------------------------------

    fn ctx(&self) -> AccessContext {
        AccessContext::query(QueryId::new(self.next_query))
    }

    fn read_node(&mut self, id: PageId) -> Result<ZNode> {
        let ctx = self.ctx();
        match &mut self.buffer {
            Some(buf) => {
                // The guard pins the frame only for the decode; it derefs
                // to the page.
                let page = buf.fetch(&mut self.store, id, ctx)?;
                ZNode::decode(&page)
            }
            None => ZNode::decode(&self.store.read(id, ctx)?),
        }
    }

    fn entry_rects(&self, node: &ZNode) -> Vec<Rect> {
        match node {
            ZNode::Leaf { entries, .. } => entries.iter().map(|e| self.cell_of(e.key.z)).collect(),
            ZNode::Inner { entries, .. } => entries.iter().map(|e| e.mbr).collect(),
        }
    }

    fn leaf_mbr(&self, entries: &[ZLeafEntry]) -> Rect {
        mbr_of(entries.iter().map(|e| self.cell_of(e.key.z))).expect("leaf_mbr of a non-empty leaf")
    }

    fn node_mbr(&self, node: &ZNode) -> Option<Rect> {
        let rects = self.entry_rects(node);
        mbr_of(rects)
    }

    fn write_node(&mut self, id: PageId, node: &ZNode) -> Result<()> {
        let rects = self.entry_rects(node);
        let page = Page::new(id, node.page_meta(&rects), node.encode())?;
        match &mut self.buffer {
            Some(buf) => buf.write_through(&mut self.store, page),
            None => self.store.write(page),
        }
    }

    fn alloc_node(&mut self, node: &ZNode) -> Result<PageId> {
        let rects = self.entry_rects(node);
        match &mut self.buffer {
            Some(buf) => {
                buf.allocate_through(&mut self.store, node.page_meta(&rects), node.encode())
            }
            None => self.store.allocate(node.page_meta(&rects), node.encode()),
        }
    }

    fn free_node(&mut self, id: PageId) -> Result<()> {
        match &mut self.buffer {
            Some(buf) => buf.free_through(&mut self.store, id),
            None => self.store.free(id),
        }
    }

    // ---- insertion -------------------------------------------------------

    /// Inserts `(id, location)`. Inserting an existing `(id, location)` key
    /// updates the stored location (upsert semantics).
    pub fn insert(&mut self, id: u64, location: Point) -> Result<()> {
        self.next_query += 1;
        let entry = ZLeafEntry {
            key: self.key_of(id, &location),
            location,
        };
        let root = self.root;
        match self.insert_rec(root, entry)? {
            InsertOutcome::Ok(..) => {}
            InsertOutcome::Split { left, right } => {
                let new_root = ZNode::Inner {
                    level: self.height + 1,
                    entries: vec![
                        InnerEntry {
                            min_key: left.0,
                            child: root,
                            mbr: left.1,
                        },
                        InnerEntry {
                            min_key: right.0,
                            child: right.1,
                            mbr: right.2,
                        },
                    ],
                };
                self.root = self.alloc_node(&new_root)?;
                self.height += 1;
            }
        }
        Ok(())
    }

    fn insert_rec(&mut self, node_id: PageId, entry: ZLeafEntry) -> Result<InsertOutcome> {
        match self.read_node(node_id)? {
            ZNode::Leaf { next, mut entries } => {
                match entries.binary_search_by_key(&entry.key, |e| e.key) {
                    Ok(pos) => {
                        // Upsert: same (z, id) key.
                        entries[pos] = entry;
                    }
                    Err(pos) => {
                        entries.insert(pos, entry);
                        self.len += 1;
                    }
                }
                if entries.len() <= LEAF_CAPACITY {
                    let node = ZNode::Leaf { next, entries };
                    let mbr = self.node_mbr(&node).expect("non-empty leaf");
                    let min = node.min_key().expect("non-empty leaf");
                    self.write_node(node_id, &node)?;
                    return Ok(InsertOutcome::Ok(min, mbr));
                }
                // Split.
                let right_entries = entries.split_off(entries.len() / 2);
                let right = ZNode::Leaf {
                    next,
                    entries: right_entries,
                };
                let right_id = self.alloc_node(&right)?;
                let left = ZNode::Leaf {
                    next: Some(right_id),
                    entries,
                };
                self.write_node(node_id, &left)?;
                Ok(InsertOutcome::Split {
                    left: (
                        left.min_key().expect("non-empty"),
                        self.node_mbr(&left).expect("non-empty"),
                    ),
                    right: (
                        right.min_key().expect("non-empty"),
                        right_id,
                        self.node_mbr(&right).expect("non-empty"),
                    ),
                })
            }
            ZNode::Inner { level, mut entries } => {
                let idx = match entries.binary_search_by_key(&entry.key, |e| e.min_key) {
                    Ok(i) => i,
                    Err(0) => 0, // key below every min: descend leftmost
                    Err(i) => i - 1,
                };
                let child = entries[idx].child;
                match self.insert_rec(child, entry)? {
                    InsertOutcome::Ok(min, mbr) => {
                        entries[idx].min_key = min;
                        entries[idx].mbr = mbr;
                    }
                    InsertOutcome::Split { left, right } => {
                        entries[idx].min_key = left.0;
                        entries[idx].mbr = left.1;
                        entries.insert(
                            idx + 1,
                            InnerEntry {
                                min_key: right.0,
                                child: right.1,
                                mbr: right.2,
                            },
                        );
                    }
                }
                if entries.len() <= INNER_CAPACITY {
                    let node = ZNode::Inner { level, entries };
                    let min = node.min_key().expect("non-empty inner");
                    let mbr = self.node_mbr(&node).expect("non-empty inner");
                    self.write_node(node_id, &node)?;
                    return Ok(InsertOutcome::Ok(min, mbr));
                }
                let right_entries = entries.split_off(entries.len() / 2);
                let right = ZNode::Inner {
                    level,
                    entries: right_entries,
                };
                let right_id = self.alloc_node(&right)?;
                let left = ZNode::Inner { level, entries };
                self.write_node(node_id, &left)?;
                Ok(InsertOutcome::Split {
                    left: (
                        left.min_key().expect("non-empty"),
                        self.node_mbr(&left).expect("non-empty"),
                    ),
                    right: (
                        right.min_key().expect("non-empty"),
                        right_id,
                        self.node_mbr(&right).expect("non-empty"),
                    ),
                })
            }
        }
    }

    // ---- deletion --------------------------------------------------------

    /// Removes `(id, location)`. Returns `true` if the key was present.
    pub fn delete(&mut self, id: u64, location: &Point) -> Result<bool> {
        self.next_query += 1;
        let key = self.key_of(id, location);
        let root = self.root;
        let found = matches!(self.delete_rec(root, key)?, DeleteOutcome::Removed { .. });
        if found {
            self.len -= 1;
            // Collapse the root while it is an inner node with one child.
            loop {
                match self.read_node(self.root)? {
                    ZNode::Inner { entries, .. } if entries.len() == 1 => {
                        let old = self.root;
                        self.root = entries[0].child;
                        self.height -= 1;
                        self.free_node(old)?;
                    }
                    _ => break,
                }
            }
        }
        Ok(found)
    }

    fn delete_rec(&mut self, node_id: PageId, key: Key) -> Result<DeleteOutcome> {
        match self.read_node(node_id)? {
            ZNode::Leaf { next, mut entries } => {
                let Ok(pos) = entries.binary_search_by_key(&key, |e| e.key) else {
                    return Ok(DeleteOutcome::NotFound);
                };
                entries.remove(pos);
                let node = ZNode::Leaf { next, entries };
                let outcome = DeleteOutcome::Removed {
                    min_key: node.min_key(),
                    mbr: self.node_mbr(&node),
                    len: node.len(),
                };
                self.write_node(node_id, &node)?;
                Ok(outcome)
            }
            ZNode::Inner { level, mut entries } => {
                let idx = match entries.binary_search_by_key(&key, |e| e.min_key) {
                    Ok(i) => i,
                    Err(0) => return Ok(DeleteOutcome::NotFound),
                    Err(i) => i - 1,
                };
                let child = entries[idx].child;
                let DeleteOutcome::Removed { min_key, mbr, len } = self.delete_rec(child, key)?
                else {
                    return Ok(DeleteOutcome::NotFound);
                };
                match (min_key, mbr) {
                    (Some(min), Some(m)) => {
                        entries[idx].min_key = min;
                        entries[idx].mbr = m;
                    }
                    _ => {
                        // Child is empty: drop it entirely.
                        self.free_node(child)?;
                        entries.remove(idx);
                    }
                }
                // Rebalance an underfull (non-empty) child.
                let child_present = min_key.is_some();
                if child_present && len < self.min_fill_of_child(level) {
                    self.rebalance(&mut entries, idx)?;
                }
                let node = ZNode::Inner { level, entries };
                let outcome = DeleteOutcome::Removed {
                    min_key: node.min_key(),
                    mbr: self.node_mbr(&node),
                    len: node.len(),
                };
                self.write_node(node_id, &node)?;
                Ok(outcome)
            }
        }
    }

    fn min_fill_of_child(&self, parent_level: u8) -> usize {
        if parent_level == 2 {
            LEAF_CAPACITY / 2
        } else {
            INNER_CAPACITY / 2
        }
    }

    /// Borrows from or merges with a sibling of the underfull child at
    /// `entries[idx]`, updating `entries` in place.
    fn rebalance(&mut self, entries: &mut Vec<InnerEntry>, idx: usize) -> Result<()> {
        if entries.len() < 2 {
            return Ok(()); // only child: nothing to rebalance with (root path)
        }
        // Prefer the right sibling; fall back to the left one.
        let (left_idx, right_idx) = if idx + 1 < entries.len() {
            (idx, idx + 1)
        } else {
            (idx - 1, idx)
        };
        let left_id = entries[left_idx].child;
        let right_id = entries[right_idx].child;
        let left_node = self.read_node(left_id)?;
        let right_node = self.read_node(right_id)?;

        match (left_node, right_node) {
            (
                ZNode::Leaf {
                    next: lnext,
                    entries: mut le,
                },
                ZNode::Leaf {
                    entries: mut re, ..
                },
            ) => {
                if le.len() + re.len() <= LEAF_CAPACITY {
                    // Merge right into left; left inherits right's chain link.
                    let rnext = {
                        // lnext currently points at right; right.next is what
                        // we need. Re-read is avoided: decode again above
                        // moved it, so re-fetch right's next from the page.
                        match self.read_node(right_id)? {
                            ZNode::Leaf { next, .. } => next,
                            _ => unreachable!("sibling levels match"),
                        }
                    };
                    le.append(&mut re);
                    let merged = ZNode::Leaf {
                        next: rnext,
                        entries: le,
                    };
                    entries[left_idx].min_key = merged.min_key().expect("non-empty merge");
                    entries[left_idx].mbr = self.node_mbr(&merged).expect("non-empty merge");
                    self.write_node(left_id, &merged)?;
                    self.free_node(right_id)?;
                    entries.remove(right_idx);
                } else if le.len() < re.len() {
                    // Borrow the first entry of the right sibling.
                    le.push(re.remove(0));
                    let l = ZNode::Leaf {
                        next: lnext,
                        entries: le,
                    };
                    let rnext = match self.read_node(right_id)? {
                        ZNode::Leaf { next, .. } => next,
                        _ => unreachable!(),
                    };
                    let r = ZNode::Leaf {
                        next: rnext,
                        entries: re,
                    };
                    self.update_pair(entries, left_idx, right_idx, &l, &r)?;
                    self.write_node(left_id, &l)?;
                    self.write_node(right_id, &r)?;
                } else {
                    // Borrow the last entry of the left sibling.
                    re.insert(0, le.pop().expect("left sibling non-empty"));
                    let l = ZNode::Leaf {
                        next: lnext,
                        entries: le,
                    };
                    let rnext = match self.read_node(right_id)? {
                        ZNode::Leaf { next, .. } => next,
                        _ => unreachable!(),
                    };
                    let r = ZNode::Leaf {
                        next: rnext,
                        entries: re,
                    };
                    self.update_pair(entries, left_idx, right_idx, &l, &r)?;
                    self.write_node(left_id, &l)?;
                    self.write_node(right_id, &r)?;
                }
            }
            (
                ZNode::Inner {
                    level,
                    entries: mut le,
                },
                ZNode::Inner {
                    entries: mut re, ..
                },
            ) => {
                if le.len() + re.len() <= INNER_CAPACITY {
                    le.append(&mut re);
                    let merged = ZNode::Inner { level, entries: le };
                    entries[left_idx].min_key = merged.min_key().expect("non-empty merge");
                    entries[left_idx].mbr = self.node_mbr(&merged).expect("non-empty merge");
                    self.write_node(left_id, &merged)?;
                    self.free_node(right_id)?;
                    entries.remove(right_idx);
                } else if le.len() < re.len() {
                    le.push(re.remove(0));
                    let l = ZNode::Inner { level, entries: le };
                    let r = ZNode::Inner { level, entries: re };
                    self.update_pair(entries, left_idx, right_idx, &l, &r)?;
                    self.write_node(left_id, &l)?;
                    self.write_node(right_id, &r)?;
                } else {
                    re.insert(0, le.pop().expect("left sibling non-empty"));
                    let l = ZNode::Inner { level, entries: le };
                    let r = ZNode::Inner { level, entries: re };
                    self.update_pair(entries, left_idx, right_idx, &l, &r)?;
                    self.write_node(left_id, &l)?;
                    self.write_node(right_id, &r)?;
                }
            }
            _ => unreachable!("siblings are on the same level"),
        }
        Ok(())
    }

    fn update_pair(
        &self,
        entries: &mut [InnerEntry],
        left_idx: usize,
        right_idx: usize,
        l: &ZNode,
        r: &ZNode,
    ) -> Result<()> {
        entries[left_idx].min_key = l.min_key().expect("non-empty");
        entries[left_idx].mbr = self.node_mbr(l).expect("non-empty");
        entries[right_idx].min_key = r.min_key().expect("non-empty");
        entries[right_idx].mbr = self.node_mbr(r).expect("non-empty");
        Ok(())
    }

    // ---- queries ---------------------------------------------------------

    /// Finds the leaf that would hold `key` and returns its page id.
    fn find_leaf(&mut self, key: Key) -> Result<PageId> {
        let mut node_id = self.root;
        loop {
            match self.read_node(node_id)? {
                ZNode::Leaf { .. } => return Ok(node_id),
                ZNode::Inner { entries, .. } => {
                    let idx = match entries.binary_search_by_key(&key, |e| e.min_key) {
                        Ok(i) => i,
                        Err(0) => 0,
                        Err(i) => i - 1,
                    };
                    node_id = entries[idx].child;
                }
            }
        }
    }

    /// All entries with keys in `[lo, hi]`, via the leaf chain.
    fn scan_range(&mut self, lo: Key, hi: Key, out: &mut Vec<ZLeafEntry>) -> Result<()> {
        let mut leaf_id = Some(self.find_leaf(lo)?);
        while let Some(id) = leaf_id {
            let ZNode::Leaf { next, entries } = self.read_node(id)? else {
                unreachable!("leaf chain only links leaves");
            };
            for e in &entries {
                if e.key > hi {
                    return Ok(());
                }
                if e.key >= lo {
                    out.push(*e);
                }
            }
            leaf_id = next;
        }
        Ok(())
    }

    /// Executes a query. Window queries return all objects whose *location*
    /// lies inside the window (point-index semantics); point queries return
    /// objects located exactly at the query point.
    pub fn execute(&mut self, query: &Query) -> Result<Vec<u64>> {
        self.next_query += 1;
        let mut out = Vec::new();
        match query {
            Query::Point(p) => {
                if !self.grid.bounds().contains_point(p) {
                    return Ok(out);
                }
                let z = self.grid.z_key(p);
                let mut hits = Vec::new();
                self.scan_range(Key { z, id: 0 }, Key { z, id: u64::MAX }, &mut hits)?;
                out.extend(hits.iter().filter(|e| e.location == *p).map(|e| e.key.id));
            }
            Query::Window(w) => {
                let ranges = z_ranges(&self.grid, w, self.config.split_depth);
                let mut hits = Vec::new();
                for (lo, hi) in ranges {
                    hits.clear();
                    self.scan_range(
                        Key { z: lo, id: 0 },
                        Key {
                            z: hi,
                            id: u64::MAX,
                        },
                        &mut hits,
                    )?;
                    out.extend(
                        hits.iter()
                            .filter(|e| w.contains_point(&e.location))
                            .map(|e| e.key.id),
                    );
                }
            }
        }
        Ok(out)
    }

    /// Window query: ids of all objects whose location lies in `window`.
    pub fn window_query(&mut self, window: Rect) -> Result<Vec<u64>> {
        self.execute(&Query::Window(window))
    }

    /// Structural statistics.
    pub fn stats(&mut self) -> Result<ZBTreeStats> {
        self.next_query += 1;
        let mut inner_pages = 0usize;
        let mut leaf_pages = 0usize;
        let mut entries_total = 0usize;
        let mut stack = vec![self.root];
        while let Some(id) = stack.pop() {
            match self.read_node(id)? {
                ZNode::Leaf { entries, .. } => {
                    leaf_pages += 1;
                    entries_total += entries.len();
                }
                ZNode::Inner { entries, .. } => {
                    inner_pages += 1;
                    stack.extend(entries.iter().map(|e| e.child));
                }
            }
        }
        Ok(ZBTreeStats {
            inner_pages,
            leaf_pages,
            height: self.height,
            entries: entries_total,
        })
    }

    /// Checks every structural invariant: sorted unique keys, correct
    /// `min_key` annotations, child MBR containment, leaf-chain order,
    /// fill factors, and the entry count.
    pub fn validate(&mut self) -> Result<()> {
        self.next_query += 1;
        let corrupt = |id: PageId, reason: String| StorageError::Corrupt { id, reason };
        // Recursive structure check, collecting leaves in key order.
        let mut leaves_in_order = Vec::new();
        let mut total = 0usize;
        let root = self.root;
        let root_node = self.read_node(root)?;
        if root_node.level() != self.height {
            return Err(corrupt(root, "root level != height".into()));
        }
        self.validate_rec(
            root,
            self.height,
            None,
            true,
            &mut leaves_in_order,
            &mut total,
        )?;
        if total != self.len {
            return Err(corrupt(
                root,
                format!(
                    "entry count mismatch: leaves hold {total}, tree records {}",
                    self.len
                ),
            ));
        }
        // Leaf chain must equal the in-order leaf sequence.
        let mut chained = Vec::new();
        let mut cursor = Some(*leaves_in_order.first().unwrap_or(&root));
        while let Some(id) = cursor {
            chained.push(id);
            match self.read_node(id)? {
                ZNode::Leaf { next, .. } => cursor = next,
                _ => return Err(corrupt(id, "leaf chain reached a non-leaf".into())),
            }
        }
        if !leaves_in_order.is_empty() && chained != leaves_in_order {
            return Err(corrupt(root, "leaf chain disagrees with tree order".into()));
        }
        Ok(())
    }

    fn validate_rec(
        &mut self,
        node_id: PageId,
        expected_level: u8,
        expected_min: Option<Key>,
        is_root: bool,
        leaves: &mut Vec<PageId>,
        total: &mut usize,
    ) -> Result<Option<Rect>> {
        let corrupt = |id: PageId, reason: String| StorageError::Corrupt { id, reason };
        let node = self.read_node(node_id)?;
        if node.level() != expected_level {
            return Err(corrupt(node_id, "level mismatch".into()));
        }
        if let (Some(expected), Some(actual)) = (expected_min, node.min_key()) {
            if expected != actual {
                return Err(corrupt(node_id, "min_key annotation mismatch".into()));
            }
        }
        match node {
            ZNode::Leaf { entries, .. } => {
                if !is_root && entries.len() < LEAF_CAPACITY / 2 {
                    return Err(corrupt(
                        node_id,
                        format!("underfull leaf: {}", entries.len()),
                    ));
                }
                if entries.len() > LEAF_CAPACITY {
                    return Err(corrupt(node_id, "overfull leaf".into()));
                }
                for w in entries.windows(2) {
                    if w[0].key >= w[1].key {
                        return Err(corrupt(node_id, "leaf keys out of order".into()));
                    }
                }
                for e in &entries {
                    if self.grid.z_key(&e.location) != e.key.z {
                        return Err(corrupt(
                            node_id,
                            "entry z-value disagrees with location".into(),
                        ));
                    }
                }
                *total += entries.len();
                leaves.push(node_id);
                Ok(mbr_of(entries.iter().map(|e| self.cell_of(e.key.z))))
            }
            ZNode::Inner { entries, .. } => {
                if !is_root && entries.len() < INNER_CAPACITY / 2 {
                    return Err(corrupt(node_id, "underfull inner node".into()));
                }
                if is_root && entries.len() < 2 {
                    return Err(corrupt(node_id, "inner root with < 2 children".into()));
                }
                for w in entries.windows(2) {
                    if w[0].min_key >= w[1].min_key {
                        return Err(corrupt(node_id, "inner keys out of order".into()));
                    }
                }
                let mut whole: Option<Rect> = None;
                for e in &entries {
                    let child_mbr = self.validate_rec(
                        e.child,
                        expected_level - 1,
                        Some(e.min_key),
                        false,
                        leaves,
                        total,
                    )?;
                    if let Some(m) = child_mbr {
                        if !e.mbr.contains(&m) {
                            return Err(corrupt(
                                e.child,
                                "child MBR annotation does not contain the subtree".into(),
                            ));
                        }
                        whole = Some(whole.map_or(m, |w| w.union(&m)));
                    }
                }
                Ok(whole)
            }
        }
    }
}

/// Splits `len` elements into chunks of roughly `target` while keeping
/// every chunk within `[min, max]` where arithmetically possible (a single
/// chunk below `min` remains only for `len < min`, the root-only case).
fn even_chunks(len: usize, target: usize, min: usize, max: usize) -> Vec<usize> {
    debug_assert!(len > 0 && min <= target && target <= max);
    let mut k = len.div_ceil(target);
    if len >= min {
        k = k.min(len / min);
    }
    k = k.max(len.div_ceil(max)).max(1);
    let base = len / k;
    let extra = len % k;
    (0..k).map(|i| base + usize::from(i < extra)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use asb_core::PolicyKind;

    fn bounds() -> Rect {
        Rect::new(0.0, 0.0, 1.0, 1.0)
    }

    fn scatter(n: u64) -> Vec<(u64, Point)> {
        let mut state = 0x0123_4567_89AB_CDEFu64;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        (0..n).map(|i| (i, Point::new(rng(), rng()))).collect()
    }

    fn brute(points: &[(u64, Point)], w: &Rect) -> Vec<u64> {
        let mut v: Vec<u64> = points
            .iter()
            .filter(|(_, p)| w.contains_point(p))
            .map(|&(id, _)| id)
            .collect();
        v.sort_unstable();
        v
    }

    #[test]
    fn even_chunks_respect_bounds() {
        for len in 1..500usize {
            let sizes = even_chunks(len, 44, 31, 63);
            assert_eq!(sizes.iter().sum::<usize>(), len);
            for &s in &sizes {
                assert!(s <= 63, "len={len}: chunk {s} too big");
                if len >= 31 {
                    assert!(s >= 31, "len={len}: chunk {s} too small");
                }
            }
        }
    }

    #[test]
    fn empty_tree() {
        let mut t = ZBTree::new(DiskManager::new(), bounds()).unwrap();
        assert!(t.is_empty());
        assert_eq!(
            t.window_query(Rect::new(0.0, 0.0, 1.0, 1.0)).unwrap(),
            vec![]
        );
        t.validate().unwrap();
    }

    #[test]
    fn insert_then_window_query_matches_brute_force() {
        let points = scatter(2000);
        let mut t = ZBTree::new(DiskManager::new(), bounds()).unwrap();
        for &(id, p) in &points {
            t.insert(id, p).unwrap();
        }
        t.validate().unwrap();
        assert!(t.height() >= 2);
        for w in [
            Rect::new(0.0, 0.0, 0.25, 0.25),
            Rect::new(0.4, 0.1, 0.9, 0.3),
            Rect::new(0.0, 0.0, 1.0, 1.0),
            Rect::new(0.99, 0.99, 0.999, 0.999),
        ] {
            let mut got = t.window_query(w).unwrap();
            got.sort_unstable();
            assert_eq!(got, brute(&points, &w), "window {w:?}");
        }
    }

    #[test]
    fn bulk_load_matches_brute_force() {
        let points = scatter(3000);
        let mut t = ZBTree::bulk_load(DiskManager::new(), bounds(), &points).unwrap();
        t.validate().unwrap();
        let w = Rect::new(0.2, 0.3, 0.6, 0.7);
        let mut got = t.window_query(w).unwrap();
        got.sort_unstable();
        assert_eq!(got, brute(&points, &w));
    }

    #[test]
    fn point_query_exact_location() {
        let points = scatter(500);
        let mut t = ZBTree::bulk_load(DiskManager::new(), bounds(), &points).unwrap();
        let (id, p) = points[123];
        assert!(t.execute(&Query::Point(p)).unwrap().contains(&id));
        assert_eq!(
            t.execute(&Query::Point(Point::new(2.0, 2.0))).unwrap(),
            vec![]
        );
    }

    #[test]
    fn delete_removes_and_rebalances() {
        let points = scatter(2000);
        let mut t = ZBTree::bulk_load(DiskManager::new(), bounds(), &points).unwrap();
        for (i, &(id, p)) in points.iter().enumerate().take(1500) {
            assert!(t.delete(id, &p).unwrap(), "entry {id}");
            if i % 100 == 0 {
                t.validate().unwrap();
            }
        }
        t.validate().unwrap();
        assert_eq!(t.len(), 500);
        let w = Rect::new(0.0, 0.0, 1.0, 1.0);
        assert_eq!(t.window_query(w).unwrap().len(), 500);
    }

    #[test]
    fn delete_everything_collapses_to_empty_root() {
        let points = scatter(800);
        let mut t = ZBTree::bulk_load(DiskManager::new(), bounds(), &points).unwrap();
        for &(id, p) in &points {
            assert!(t.delete(id, &p).unwrap());
        }
        assert!(t.is_empty());
        assert_eq!(t.height(), 1);
        t.validate().unwrap();
        assert_eq!(t.page_count(), 1, "only the empty root leaf remains");
    }

    #[test]
    fn delete_missing_returns_false() {
        let mut t = ZBTree::new(DiskManager::new(), bounds()).unwrap();
        t.insert(1, Point::new(0.5, 0.5)).unwrap();
        assert!(!t.delete(2, &Point::new(0.5, 0.5)).unwrap());
        assert!(!t.delete(1, &Point::new(0.1, 0.1)).unwrap());
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn upsert_same_key_does_not_grow() {
        let mut t = ZBTree::new(DiskManager::new(), bounds()).unwrap();
        t.insert(7, Point::new(0.5, 0.5)).unwrap();
        t.insert(7, Point::new(0.5, 0.5)).unwrap();
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn mixed_insert_delete_stays_valid() {
        let points = scatter(1200);
        let mut t = ZBTree::bulk_load(DiskManager::new(), bounds(), &points[..800]).unwrap();
        for i in 0..400 {
            t.insert(points[800 + i].0, points[800 + i].1).unwrap();
            let (id, p) = points[i * 2];
            assert!(t.delete(id, &p).unwrap());
        }
        t.validate().unwrap();
        assert_eq!(t.len(), 800);
    }

    #[test]
    fn buffered_zbtree_gives_identical_answers() {
        let points = scatter(1500);
        let mut plain = ZBTree::bulk_load(DiskManager::new(), bounds(), &points).unwrap();
        let mut buffered = ZBTree::bulk_load(DiskManager::new(), bounds(), &points).unwrap();
        buffered.set_buffer(BufferManager::with_policy(PolicyKind::Asb, 12));
        for i in 0..25u64 {
            let x = (i as f64 * 0.37) % 0.8;
            let w = Rect::new(x, x / 2.0, x + 0.15, x / 2.0 + 0.15);
            let mut a = plain.window_query(w).unwrap();
            let mut b = buffered.window_query(w).unwrap();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b);
        }
        assert!(buffered.buffer_stats().unwrap().hits > 0);
    }

    #[test]
    fn cell_of_inverts_z_key() {
        let t = ZBTree::new(DiskManager::new(), bounds()).unwrap();
        let p = Point::new(0.3, 0.7);
        let z = t.grid().z_key(&p);
        let cell = t.cell_of(z);
        assert!(cell.contains_point(&p), "cell {cell:?} must contain {p:?}");
        // Cell size is 1/2^16 of the unit square in each dimension.
        assert!((cell.width() - 1.0 / 65536.0).abs() < 1e-12);
    }

    #[test]
    fn pages_carry_spatial_stats() {
        let points = scatter(500);
        let t = ZBTree::bulk_load(DiskManager::new(), bounds(), &points).unwrap();
        let mut dir = 0;
        let mut data = 0;
        for page in t.store().iter_pages() {
            match page.meta.page_type {
                asb_storage::PageType::Directory => dir += 1,
                asb_storage::PageType::Data => data += 1,
                _ => panic!("unexpected page type"),
            }
            assert!(page.meta.stats.entry_count > 0);
            assert!(page.meta.stats.mbr.is_some());
        }
        assert!(dir >= 1 && data > 1);
    }

    #[test]
    fn stats_report_structure() {
        let points = scatter(3000);
        let mut t = ZBTree::bulk_load(DiskManager::new(), bounds(), &points).unwrap();
        let s = t.stats().unwrap();
        assert_eq!(s.entries, 3000);
        assert_eq!(s.inner_pages + s.leaf_pages, t.page_count());
        assert!(s.height >= 2);
    }
}
