use crate::policy::{PolicyKind, ReplacementPolicy};
use asb_storage::{AccessContext, Page, PageId, PageMeta, PageStore, Result, StorageError};
use bytes::Bytes;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Logical access statistics of a [`BufferManager`].
///
/// With the write-through design, `misses` equals the number of physical
/// disk reads caused through this buffer — the paper's "number of disk
/// accesses".
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BufferStats {
    /// Total page requests served.
    pub logical_reads: u64,
    /// Requests satisfied from the buffer.
    pub hits: u64,
    /// Requests that had to read the underlying store.
    pub misses: u64,
    /// Pages dropped to make room.
    pub evictions: u64,
}

impl BufferStats {
    /// Hit ratio in `[0, 1]`; zero when nothing was read yet.
    pub fn hit_ratio(&self) -> f64 {
        if self.logical_reads == 0 {
            0.0
        } else {
            self.hits as f64 / self.logical_reads as f64
        }
    }
}

impl std::ops::Add for BufferStats {
    type Output = BufferStats;

    fn add(self, rhs: BufferStats) -> BufferStats {
        BufferStats {
            logical_reads: self.logical_reads + rhs.logical_reads,
            hits: self.hits + rhs.hits,
            misses: self.misses + rhs.misses,
            evictions: self.evictions + rhs.evictions,
        }
    }
}

impl std::ops::AddAssign for BufferStats {
    fn add_assign(&mut self, rhs: BufferStats) {
        *self = *self + rhs;
    }
}

impl std::iter::Sum for BufferStats {
    /// Sums per-shard snapshots into pool-wide statistics (used by the
    /// sharded buffer pool).
    fn sum<I: Iterator<Item = BufferStats>>(iter: I) -> BufferStats {
        iter.fold(BufferStats::default(), |acc, s| acc + s)
    }
}

struct Frame {
    page: Page,
    pins: u32,
}

/// A buffer (page cache) of fixed capacity with a pluggable replacement
/// policy.
///
/// The manager does not own a disk; compose it with any
/// [`PageStore`] via [`read_through`](BufferManager::read_through) /
/// [`write_through`](BufferManager::write_through), or wrap the pair in a
/// [`BufferedStore`]. All writes are write-through: the underlying store is
/// always current and evictions never perform I/O.
///
/// ```
/// use asb_core::{BufferManager, PolicyKind};
/// use asb_geom::SpatialStats;
/// use asb_storage::{AccessContext, DiskManager, PageMeta, PageStore};
///
/// let mut disk = DiskManager::new();
/// let id = disk
///     .allocate(PageMeta::data(SpatialStats::EMPTY), bytes::Bytes::from_static(b"hello"))
///     .unwrap();
/// disk.reset_stats();
///
/// let mut buf = BufferManager::with_policy(PolicyKind::Asb, 8);
/// for _ in 0..10 {
///     let page = buf.read_through(&mut disk, id, AccessContext::default()).unwrap();
///     assert_eq!(page.payload.as_ref(), b"hello");
/// }
/// // One physical read; nine buffer hits.
/// assert_eq!(disk.stats().reads, 1);
/// assert_eq!(buf.stats().hits, 9);
/// ```
pub struct BufferManager {
    policy: Box<dyn ReplacementPolicy + Send>,
    kind: PolicyKind,
    capacity: usize,
    frames: HashMap<PageId, Frame>,
    stats: BufferStats,
    tick: u64,
}

impl std::fmt::Debug for BufferManager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BufferManager")
            .field("policy", &self.policy.name())
            .field("capacity", &self.capacity)
            .field("resident", &self.frames.len())
            .field("stats", &self.stats)
            .finish()
    }
}

impl BufferManager {
    /// Creates a buffer of `capacity` pages using the given policy.
    ///
    /// # Panics
    /// Panics if `capacity == 0`; a zero-page buffer cannot hold the page it
    /// is currently serving.
    pub fn with_policy(kind: PolicyKind, capacity: usize) -> Self {
        assert!(capacity > 0, "buffer capacity must be at least one page");
        BufferManager {
            policy: kind.build(capacity),
            kind,
            capacity,
            frames: HashMap::with_capacity(capacity),
            stats: BufferStats::default(),
            tick: 0,
        }
    }

    /// The policy this buffer was built with.
    pub fn kind(&self) -> PolicyKind {
        self.kind
    }

    /// The policy's display name (e.g. `"ASB"`).
    pub fn policy_name(&self) -> String {
        self.policy.name()
    }

    /// Buffer capacity in pages.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of currently resident pages.
    pub fn resident(&self) -> usize {
        self.frames.len()
    }

    /// Whether `id` is currently buffered (no access is recorded).
    pub fn contains(&self, id: PageId) -> bool {
        self.frames.contains_key(&id)
    }

    /// Access statistics so far.
    pub fn stats(&self) -> BufferStats {
        self.stats
    }

    /// Resets the access statistics (pages stay resident).
    pub fn reset_stats(&mut self) {
        self.stats = BufferStats::default();
    }

    /// For the adaptable spatial buffer: current candidate-set size.
    pub fn candidate_size(&self) -> Option<usize> {
        self.policy.candidate_size()
    }

    /// History records the policy retains for non-resident pages (LRU-K).
    pub fn retained_history(&self) -> usize {
        self.policy.retained_history()
    }

    /// Reads a page through the buffer, fetching from `inner` on a miss.
    pub fn read_through<S: PageStore>(
        &mut self,
        inner: &mut S,
        id: PageId,
        ctx: AccessContext,
    ) -> Result<Page> {
        self.read_through_with(id, ctx, |id, ctx| inner.read(id, ctx))
    }

    /// Reads a page through the buffer, calling `fetch` on a miss.
    ///
    /// This is the single read path of the buffer — [`read_through`]
    /// delegates here, and the sharded pool passes a `fetch` that takes a
    /// shared store lock — so hit/miss/eviction accounting is identical no
    /// matter how the backing store is reached.
    ///
    /// [`read_through`]: BufferManager::read_through
    pub fn read_through_with(
        &mut self,
        id: PageId,
        ctx: AccessContext,
        fetch: impl FnOnce(PageId, AccessContext) -> Result<Page>,
    ) -> Result<Page> {
        self.stats.logical_reads += 1;
        self.tick += 1;
        if let Some(frame) = self.frames.get(&id) {
            self.stats.hits += 1;
            let page = frame.page.clone();
            self.policy.on_hit(&page, ctx, self.tick);
            return Ok(page);
        }
        self.stats.misses += 1;
        let page = fetch(id, ctx)?;
        self.admit(page.clone(), ctx)?;
        Ok(page)
    }

    /// Writes a page through the buffer: the underlying store is updated,
    /// and a resident copy (if any) is refreshed along with the policy's
    /// view of the page's metadata.
    pub fn write_through<S: PageStore>(&mut self, inner: &mut S, page: Page) -> Result<()> {
        inner.write(page.clone())?;
        if let Some(frame) = self.frames.get_mut(&page.id) {
            frame.page = page.clone();
            self.policy.on_update(&page);
        }
        Ok(())
    }

    /// Allocates a page in `inner` and admits it to the buffer (a freshly
    /// created page is about to be used, so caching it is the common case).
    pub fn allocate_through<S: PageStore>(
        &mut self,
        inner: &mut S,
        meta: PageMeta,
        payload: Bytes,
    ) -> Result<PageId> {
        let id = inner.allocate(meta, payload.clone())?;
        let page = Page::new(id, meta, payload)?;
        self.admit_allocated(page)?;
        Ok(id)
    }

    /// Admits a page that was just allocated in the backing store.
    ///
    /// The sharded pool allocates under the store lock, releases it, and
    /// then admits under the owning shard's lock — this is the second phase,
    /// with accounting identical to [`allocate_through`].
    ///
    /// [`allocate_through`]: BufferManager::allocate_through
    pub fn admit_allocated(&mut self, page: Page) -> Result<()> {
        self.tick += 1;
        self.admit(page, AccessContext::default())
    }

    /// Frees a page in `inner` and drops any buffered copy.
    pub fn free_through<S: PageStore>(&mut self, inner: &mut S, id: PageId) -> Result<()> {
        inner.free(id)?;
        self.invalidate(id);
        Ok(())
    }

    /// Drops a buffered copy without touching the underlying store.
    /// No-op if the page is not resident.
    pub fn invalidate(&mut self, id: PageId) {
        if self.frames.remove(&id).is_some() {
            self.policy.on_remove(id);
        }
    }

    /// Drops every buffered page and resets statistics — the paper clears
    /// the buffer before each query set.
    pub fn clear(&mut self) {
        let ids: Vec<PageId> = self.frames.keys().copied().collect();
        for id in ids {
            self.frames.remove(&id);
            self.policy.on_remove(id);
        }
        self.reset_stats();
    }

    /// Pins a resident page, excluding it from eviction until unpinned.
    /// Pins nest.
    pub fn pin(&mut self, id: PageId) -> Result<()> {
        let frame = self
            .frames
            .get_mut(&id)
            .ok_or(StorageError::PageNotFound(id))?;
        frame.pins += 1;
        Ok(())
    }

    /// Releases one pin of a resident page.
    pub fn unpin(&mut self, id: PageId) -> Result<()> {
        let frame = self
            .frames
            .get_mut(&id)
            .ok_or(StorageError::PageNotFound(id))?;
        if frame.pins == 0 {
            return Err(StorageError::NotPinned(id));
        }
        frame.pins -= 1;
        Ok(())
    }

    fn admit(&mut self, page: Page, ctx: AccessContext) -> Result<()> {
        if self.frames.len() >= self.capacity {
            self.evict_one(ctx)?;
        }
        self.policy.on_insert(&page, ctx, self.tick);
        self.frames.insert(page.id, Frame { page, pins: 0 });
        Ok(())
    }

    fn evict_one(&mut self, ctx: AccessContext) -> Result<()> {
        if !self.frames.values().any(|f| f.pins == 0) {
            return Err(StorageError::AllPagesPinned);
        }
        let frames = &self.frames;
        let victim = self
            .policy
            .select_victim(ctx, &|id| frames.get(&id).is_some_and(|f| f.pins == 0))
            .ok_or(StorageError::AllPagesPinned)?;
        debug_assert!(
            self.frames.get(&victim).is_some_and(|f| f.pins == 0),
            "policy returned a non-evictable victim"
        );
        self.frames.remove(&victim);
        self.policy.on_remove(victim);
        self.stats.evictions += 1;
        Ok(())
    }
}

/// A [`PageStore`] that transparently routes reads and writes of an inner
/// store through a [`BufferManager`].
///
/// This is what index structures hold: swapping buffering on or off (or
/// swapping policies) never changes index code.
#[derive(Debug)]
pub struct BufferedStore<S: PageStore> {
    inner: S,
    buffer: BufferManager,
}

impl<S: PageStore> BufferedStore<S> {
    /// Wraps `inner` with the given buffer.
    pub fn new(inner: S, buffer: BufferManager) -> Self {
        BufferedStore { inner, buffer }
    }

    /// The buffer manager.
    pub fn buffer(&self) -> &BufferManager {
        &self.buffer
    }

    /// Mutable access to the buffer manager.
    pub fn buffer_mut(&mut self) -> &mut BufferManager {
        &mut self.buffer
    }

    /// The wrapped store.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// Mutable access to the wrapped store (bypasses the buffer — callers
    /// must [`BufferManager::invalidate`] any page they mutate this way).
    pub fn inner_mut(&mut self) -> &mut S {
        &mut self.inner
    }

    /// Unwraps into the inner store and buffer.
    pub fn into_parts(self) -> (S, BufferManager) {
        (self.inner, self.buffer)
    }
}

impl<S: PageStore> PageStore for BufferedStore<S> {
    fn read(&mut self, id: PageId, ctx: AccessContext) -> Result<Page> {
        self.buffer.read_through(&mut self.inner, id, ctx)
    }

    fn write(&mut self, page: Page) -> Result<()> {
        self.buffer.write_through(&mut self.inner, page)
    }

    fn allocate(&mut self, meta: PageMeta, payload: Bytes) -> Result<PageId> {
        self.buffer.allocate_through(&mut self.inner, meta, payload)
    }

    fn free(&mut self, id: PageId) -> Result<()> {
        self.buffer.free_through(&mut self.inner, id)
    }

    fn page_count(&self) -> usize {
        self.inner.page_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asb_geom::SpatialStats;
    use asb_storage::DiskManager;

    fn meta() -> PageMeta {
        PageMeta::data(SpatialStats::EMPTY)
    }

    fn setup(capacity: usize, pages: usize) -> (DiskManager, BufferManager, Vec<PageId>) {
        let mut disk = DiskManager::new();
        let ids: Vec<PageId> = (0..pages)
            .map(|i| disk.allocate(meta(), Bytes::from(vec![i as u8])).unwrap())
            .collect();
        disk.reset_stats();
        (
            disk,
            BufferManager::with_policy(PolicyKind::Lru, capacity),
            ids,
        )
    }

    fn ctx() -> AccessContext {
        AccessContext::default()
    }

    #[test]
    fn hit_avoids_disk_access() {
        let (mut disk, mut buf, ids) = setup(4, 2);
        buf.read_through(&mut disk, ids[0], ctx()).unwrap();
        buf.read_through(&mut disk, ids[0], ctx()).unwrap();
        assert_eq!(disk.stats().reads, 1);
        let s = buf.stats();
        assert_eq!((s.logical_reads, s.hits, s.misses), (2, 1, 1));
    }

    #[test]
    fn capacity_is_never_exceeded() {
        let (mut disk, mut buf, ids) = setup(3, 10);
        for &id in &ids {
            buf.read_through(&mut disk, id, ctx()).unwrap();
            assert!(buf.resident() <= 3);
        }
        assert_eq!(buf.stats().evictions, 7);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let (mut disk, mut buf, ids) = setup(2, 3);
        buf.read_through(&mut disk, ids[0], ctx()).unwrap();
        buf.read_through(&mut disk, ids[1], ctx()).unwrap();
        buf.read_through(&mut disk, ids[0], ctx()).unwrap(); // touch 0
        buf.read_through(&mut disk, ids[2], ctx()).unwrap(); // evicts 1
        assert!(buf.contains(ids[0]));
        assert!(!buf.contains(ids[1]));
        assert!(buf.contains(ids[2]));
    }

    #[test]
    fn pinned_pages_survive_eviction() {
        let (mut disk, mut buf, ids) = setup(2, 4);
        buf.read_through(&mut disk, ids[0], ctx()).unwrap();
        buf.pin(ids[0]).unwrap();
        for &id in &ids[1..] {
            buf.read_through(&mut disk, id, ctx()).unwrap();
        }
        assert!(buf.contains(ids[0]), "pinned page must not be evicted");
        buf.unpin(ids[0]).unwrap();
    }

    #[test]
    fn all_pinned_errors() {
        let (mut disk, mut buf, ids) = setup(2, 3);
        buf.read_through(&mut disk, ids[0], ctx()).unwrap();
        buf.read_through(&mut disk, ids[1], ctx()).unwrap();
        buf.pin(ids[0]).unwrap();
        buf.pin(ids[1]).unwrap();
        let err = buf.read_through(&mut disk, ids[2], ctx()).unwrap_err();
        assert_eq!(err, StorageError::AllPagesPinned);
    }

    #[test]
    fn pins_nest() {
        let (mut disk, mut buf, ids) = setup(2, 2);
        buf.read_through(&mut disk, ids[0], ctx()).unwrap();
        buf.pin(ids[0]).unwrap();
        buf.pin(ids[0]).unwrap();
        buf.unpin(ids[0]).unwrap();
        buf.unpin(ids[0]).unwrap();
        assert_eq!(
            buf.unpin(ids[0]).unwrap_err(),
            StorageError::NotPinned(ids[0])
        );
    }

    #[test]
    fn write_through_updates_resident_copy() {
        let (mut disk, mut buf, ids) = setup(2, 1);
        buf.read_through(&mut disk, ids[0], ctx()).unwrap();
        let updated = Page::new(ids[0], meta(), Bytes::from_static(b"xyz")).unwrap();
        buf.write_through(&mut disk, updated).unwrap();
        let got = buf.read_through(&mut disk, ids[0], ctx()).unwrap();
        assert_eq!(got.payload.as_ref(), b"xyz");
        // Still a hit: only the original miss touched the disk for reads.
        assert_eq!(disk.stats().reads, 1);
        assert_eq!(disk.peek(ids[0]).unwrap().payload.as_ref(), b"xyz");
    }

    #[test]
    fn clear_empties_buffer_and_stats() {
        let (mut disk, mut buf, ids) = setup(4, 3);
        for &id in &ids {
            buf.read_through(&mut disk, id, ctx()).unwrap();
        }
        buf.clear();
        assert_eq!(buf.resident(), 0);
        assert_eq!(buf.stats(), BufferStats::default());
        // Pages must be re-fetched afterwards.
        buf.read_through(&mut disk, ids[0], ctx()).unwrap();
        assert_eq!(buf.stats().misses, 1);
    }

    #[test]
    fn free_through_invalidates() {
        let (mut disk, mut buf, ids) = setup(4, 2);
        buf.read_through(&mut disk, ids[0], ctx()).unwrap();
        buf.free_through(&mut disk, ids[0]).unwrap();
        assert!(!buf.contains(ids[0]));
        assert!(buf.read_through(&mut disk, ids[0], ctx()).is_err());
    }

    #[test]
    fn allocate_through_admits_page() {
        let (mut disk, mut buf, _) = setup(4, 0);
        let id = buf
            .allocate_through(&mut disk, meta(), Bytes::from_static(b"new"))
            .unwrap();
        assert!(buf.contains(id));
        // Reading it back is a hit.
        buf.read_through(&mut disk, id, ctx()).unwrap();
        assert_eq!(buf.stats().hits, 1);
        assert_eq!(disk.stats().reads, 0);
    }

    #[test]
    fn buffered_store_is_transparent() {
        let (mut disk, _, ids) = setup(1, 3);
        let raw: Vec<Page> = ids
            .iter()
            .map(|&id| disk.read(id, ctx()).unwrap())
            .collect();
        let mut store = BufferedStore::new(disk, BufferManager::with_policy(PolicyKind::Lru, 2));
        for (i, &id) in ids.iter().enumerate() {
            let got = store.read(id, ctx()).unwrap();
            assert_eq!(got, raw[i]);
        }
        assert_eq!(store.page_count(), 3);
    }

    #[test]
    fn hit_ratio_math() {
        let s = BufferStats {
            logical_reads: 10,
            hits: 7,
            misses: 3,
            evictions: 0,
        };
        assert!((s.hit_ratio() - 0.7).abs() < 1e-12);
        assert_eq!(BufferStats::default().hit_ratio(), 0.0);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_panics() {
        let _ = BufferManager::with_policy(PolicyKind::Lru, 0);
    }
}
