use crate::guard::{PageReadGuard, PinToken};
use crate::policies::ArenaState;
use crate::policy::{PolicyKind, ReplacementPolicy};
use crate::sync::{AtomicU64, Ordering};
use asb_storage::{
    page_checksum, AccessContext, Lsn, Page, PageId, PageMeta, PageStore, Result, RetryPolicy,
    SharedWal, StorageError,
};
use bytes::Bytes;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::Arc;

/// Logical access statistics of a [`BufferManager`].
///
/// The buffer is a write-back cache: reads miss into the store, and
/// buffered writes ([`BufferManager::write_buffered`]) only mark a frame
/// dirty, deferring the store write to eviction or flush. On a fault-free
/// read-only workload `misses` equals the number of physical disk reads
/// caused through this buffer — the paper's "number of disk accesses" —
/// but on faulty stores retried fetches re-read without re-counting a
/// miss, so physical reads can exceed `misses`. The robustness counters
/// (`retries`, `corruptions`, `failed_evictions`) stay zero on a
/// fault-free store, and the durability counters (`wal_appends`,
/// `checkpoints`) stay zero unless a write-ahead log is attached.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BufferStats {
    /// Total page requests served.
    pub logical_reads: u64,
    /// Requests satisfied from the buffer.
    pub hits: u64,
    /// Requests that had to read the underlying store.
    pub misses: u64,
    /// Pages dropped to make room.
    pub evictions: u64,
    /// Transient store failures absorbed by re-attempting the operation.
    pub retries: u64,
    /// Checksum mismatches detected (in fetched copies or resident frames).
    pub corruptions: u64,
    /// Evictions abandoned because the victim's write-back failed; the
    /// victim stays resident and `evictions` is *not* incremented.
    pub failed_evictions: u64,
    /// Dirty pages successfully written back (evictions and flushes).
    pub writebacks: u64,
    /// Page images appended to the attached write-ahead log.
    pub wal_appends: u64,
    /// Checkpoint records appended to the attached write-ahead log.
    pub checkpoints: u64,
    /// Page fetches that failed permanently and were surfaced to the
    /// caller: the retry budget was exhausted on a transient fault, or the
    /// error was non-transient to begin with (e.g. a permanent device
    /// failure). One count per failed request — the per-page give-up slots
    /// of a partial-failure `fetch_batch` each count once.
    pub give_ups: u64,
    /// Admissions skipped because every frame was pinned by a live guard.
    /// The operation still succeeds — a read is served from the fetched
    /// copy without caching it, a buffered write falls back to writing
    /// through — so a transiently pin-saturated buffer degrades instead
    /// of failing. Persistently non-zero means the pool is undersized for
    /// the number of concurrently held guards.
    pub pin_overflows: u64,
    /// Expert-arena only: number of times eviction authority moved to a
    /// different expert ([`PolicyKind::Arena`]). Zero for every other
    /// policy.
    pub authority_switches: u64,
    /// Expert-arena only: counterfactual (ghost-cache) misses of the best
    /// expert in hindsight. `misses - best_expert_misses` is the arena's
    /// cumulative regret (possibly negative — the mix can beat every
    /// individual expert). Zero for every other policy.
    pub best_expert_misses: u64,
}

impl BufferStats {
    /// Hit ratio in `[0, 1]`; zero when nothing was read yet.
    pub fn hit_ratio(&self) -> f64 {
        if self.logical_reads == 0 {
            0.0
        } else {
            self.hits as f64 / self.logical_reads as f64
        }
    }
}

impl std::ops::Add for BufferStats {
    type Output = BufferStats;

    fn add(self, rhs: BufferStats) -> BufferStats {
        BufferStats {
            logical_reads: self.logical_reads + rhs.logical_reads,
            hits: self.hits + rhs.hits,
            misses: self.misses + rhs.misses,
            evictions: self.evictions + rhs.evictions,
            retries: self.retries + rhs.retries,
            corruptions: self.corruptions + rhs.corruptions,
            failed_evictions: self.failed_evictions + rhs.failed_evictions,
            writebacks: self.writebacks + rhs.writebacks,
            wal_appends: self.wal_appends + rhs.wal_appends,
            checkpoints: self.checkpoints + rhs.checkpoints,
            give_ups: self.give_ups + rhs.give_ups,
            pin_overflows: self.pin_overflows + rhs.pin_overflows,
            authority_switches: self.authority_switches + rhs.authority_switches,
            best_expert_misses: self.best_expert_misses + rhs.best_expert_misses,
        }
    }
}

impl std::ops::AddAssign for BufferStats {
    fn add_assign(&mut self, rhs: BufferStats) {
        *self = *self + rhs;
    }
}

impl std::iter::Sum for BufferStats {
    /// Sums per-shard snapshots into pool-wide statistics (used by the
    /// sharded buffer pool).
    fn sum<I: Iterator<Item = BufferStats>>(iter: I) -> BufferStats {
        iter.fold(BufferStats::default(), |acc, s| acc + s)
    }
}

/// The I/O surface a [`BufferManager`] needs from its backing store: fetch a
/// page on a miss, write a page back on a dirty eviction or flush.
///
/// Every [`PageStore`] is a `StoreIo`; the sharded pool supplies an adapter
/// that takes its store lock per operation, and closure-based read paths
/// (see [`BufferManager::fetch_with`]) use a fetch-only adapter whose
/// write-backs fail with
/// [`StorageError::WritebackUnavailable`].
pub trait StoreIo {
    /// Fetches a page from the backing store.
    fn fetch(&mut self, id: PageId, ctx: AccessContext) -> Result<Page>;

    /// Writes a page back to the backing store.
    fn store(&mut self, page: &Page) -> Result<()>;
}

impl<S: PageStore> StoreIo for S {
    fn fetch(&mut self, id: PageId, ctx: AccessContext) -> Result<Page> {
        self.read(id, ctx)
    }

    fn store(&mut self, page: &Page) -> Result<()> {
        self.write(page.clone())
    }
}

/// Fetch-only [`StoreIo`] over a closure; write-backs are unavailable.
struct FetchIo<F>(F);

impl<F: FnMut(PageId, AccessContext) -> Result<Page>> StoreIo for FetchIo<F> {
    fn fetch(&mut self, id: PageId, ctx: AccessContext) -> Result<Page> {
        (self.0)(id, ctx)
    }

    fn store(&mut self, page: &Page) -> Result<()> {
        Err(StorageError::WritebackUnavailable(page.id))
    }
}

/// Retry/corruption accounting accumulated by a detached
/// [`fetch_page_with_retry`]; settled into a buffer's statistics with
/// [`BufferManager::apply_fetch_effort`].
#[derive(Debug, Default, Clone, Copy)]
pub(crate) struct FetchEffort {
    pub(crate) retries: u64,
    pub(crate) corruptions: u64,
    pub(crate) backoff_ms: f64,
}

/// Fetches `id` from `io`, retrying transient failures (including
/// checksum mismatches of the delivered copy) under `retry`. Free-standing
/// so the sharded pool can run it without holding a shard lock; the
/// sequential buffer delegates here too, which is what keeps miss-path
/// accounting bit-for-bit identical between the two.
pub(crate) fn fetch_page_with_retry<IO: StoreIo + ?Sized>(
    io: &mut IO,
    retry: RetryPolicy,
    id: PageId,
    ctx: AccessContext,
) -> (Result<Page>, FetchEffort) {
    let budget = retry.attempts();
    let mut failed = 0u32;
    let mut effort = FetchEffort::default();
    loop {
        let err = match io.fetch(id, ctx) {
            Ok(page) => {
                if page.verify_checksum() {
                    return (Ok(page), effort);
                }
                effort.corruptions += 1;
                StorageError::ChecksumMismatch {
                    id,
                    expected: page.checksum(),
                    actual: page_checksum(&page.payload),
                }
            }
            Err(e) => e,
        };
        if !err.is_transient() {
            return (Err(err), effort);
        }
        failed += 1;
        if failed >= budget {
            let err = StorageError::RetriesExhausted {
                id,
                attempts: failed,
                last: Box::new(err),
            };
            return (Err(err), effort);
        }
        effort.retries += 1;
        effort.backoff_ms += retry.backoff_ms(failed);
    }
}

/// A [`StoreIo`] with no store at all, for admitting pages that already
/// exist in the backing store (two-phase allocation).
struct NoWriteback;

impl StoreIo for NoWriteback {
    fn fetch(&mut self, id: PageId, _ctx: AccessContext) -> Result<Page> {
        Err(StorageError::PageNotFound(id))
    }

    fn store(&mut self, page: &Page) -> Result<()> {
        Err(StorageError::WritebackUnavailable(page.id))
    }
}

struct Frame {
    page: Page,
    /// Pin count, shared with every live [`PageReadGuard`] on this frame.
    /// Increments happen while the buffer is mutably borrowed (under the
    /// shard lock in a pool); decrements are lock-free guard drops. The
    /// eviction scan also runs under the mutable borrow, so a frame it
    /// observes unpinned cannot gain a pin before the eviction completes.
    pins: Arc<AtomicU64>,
    /// The frame holds changes not yet written to the backing store.
    dirty: bool,
    /// LSN of the oldest WAL image covering unwritten changes of this
    /// frame; `None` when clean or when no WAL is attached. Checkpoints
    /// take the minimum over dirty frames as their redo horizon.
    rec_lsn: Option<Lsn>,
}

/// A buffer (page cache) of fixed capacity with a pluggable replacement
/// policy.
///
/// The manager does not own a disk; compose it with any
/// [`PageStore`] via [`fetch`](BufferManager::fetch) /
/// [`write_through`](BufferManager::write_through), or wrap the pair in a
/// [`BufferedStore`]. Reads hand out RAII [`PageReadGuard`]s: the guard
/// pins the frame (excluding it from eviction) until dropped, and derefs
/// to the page. Writes come in two flavours:
/// [`write_through`](BufferManager::write_through) updates the store
/// immediately, while [`write_buffered`](BufferManager::write_buffered)
/// only marks the frame dirty and defers the store write to eviction or
/// [`flush`](BufferManager::flush) (write-back caching). With a
/// write-ahead log attached ([`attach_wal`](BufferManager::attach_wal)),
/// every write appends a full-page image to the log *before* the buffer
/// or store changes, so a crash between dirtying and write-back loses
/// nothing (see `asb_storage::Wal`).
///
/// ```
/// use asb_core::{BufferManager, PolicyKind};
/// use asb_geom::SpatialStats;
/// use asb_storage::{AccessContext, DiskManager, PageMeta, PageStore};
///
/// let mut disk = DiskManager::new();
/// let id = disk
///     .allocate(PageMeta::data(SpatialStats::EMPTY), bytes::Bytes::from_static(b"hello"))
///     .unwrap();
/// disk.reset_stats();
///
/// let mut buf = BufferManager::with_policy(PolicyKind::Asb, 8);
/// for _ in 0..10 {
///     let page = buf.fetch(&mut disk, id, AccessContext::default()).unwrap();
///     assert_eq!(page.payload.as_ref(), b"hello");
/// }
/// // One physical read; nine buffer hits.
/// assert_eq!(disk.stats().reads, 1);
/// assert_eq!(buf.stats().hits, 9);
/// ```
pub struct BufferManager {
    policy: Box<dyn ReplacementPolicy + Send>,
    kind: PolicyKind,
    capacity: usize,
    frames: HashMap<PageId, Frame>,
    stats: BufferStats,
    tick: u64,
    retry: RetryPolicy,
    /// Simulated milliseconds spent backing off before retries.
    backoff_ms: f64,
    /// Optional write-ahead log making buffered writes durable.
    wal: Option<SharedWal>,
    /// Append a checkpoint automatically every N image appends (`None`
    /// disables). Only meaningful for a buffer owning its WAL exclusively;
    /// shards of a pool must checkpoint pool-wide instead.
    checkpoint_interval: Option<u64>,
    /// Image appends since the last checkpoint (for the auto-interval).
    appends_since_checkpoint: u64,
    /// Guards handed out by this buffer that are still alive. Shared with
    /// every [`PinToken`], which decrements it lock-free on drop; pools
    /// sum this across shards to gate their escape hatches.
    live_guards: Arc<AtomicU64>,
}

impl std::fmt::Debug for BufferManager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BufferManager")
            .field("policy", &self.policy.name())
            .field("capacity", &self.capacity)
            .field("resident", &self.frames.len())
            .field("stats", &self.stats)
            .finish()
    }
}

impl BufferManager {
    /// Creates a buffer of `capacity` pages using the given policy.
    ///
    /// # Panics
    /// Panics if `capacity == 0`; a zero-page buffer cannot hold the page it
    /// is currently serving.
    pub fn with_policy(kind: PolicyKind, capacity: usize) -> Self {
        assert!(capacity > 0, "buffer capacity must be at least one page");
        BufferManager {
            policy: kind.build(capacity),
            kind,
            capacity,
            frames: HashMap::with_capacity(capacity),
            stats: BufferStats::default(),
            tick: 0,
            retry: RetryPolicy::default(),
            backoff_ms: 0.0,
            wal: None,
            checkpoint_interval: None,
            appends_since_checkpoint: 0,
            live_guards: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Number of [`PageReadGuard`]s (and write guards derived from them)
    /// handed out by this buffer that have not been dropped yet.
    pub fn live_guards(&self) -> u64 {
        self.live_guards.load(Ordering::SeqCst)
    }

    /// The policy this buffer was built with.
    pub fn kind(&self) -> PolicyKind {
        self.kind
    }

    /// The policy's display name (e.g. `"ASB"`).
    pub fn policy_name(&self) -> String {
        self.policy.name()
    }

    /// Buffer capacity in pages.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of currently resident pages.
    pub fn resident(&self) -> usize {
        self.frames.len()
    }

    /// Whether `id` is currently buffered (no access is recorded).
    pub fn contains(&self, id: PageId) -> bool {
        self.frames.contains_key(&id)
    }

    /// Access statistics so far. For the expert arena
    /// ([`PolicyKind::Arena`]) the policy-owned counters
    /// (`authority_switches`, `best_expert_misses`) are merged into the
    /// snapshot; they stay zero for every other policy.
    pub fn stats(&self) -> BufferStats {
        let mut stats = self.stats;
        if let Some(arena) = self.policy.arena_state() {
            stats.authority_switches = arena.switches;
            stats.best_expert_misses = arena.best_expert_misses();
        }
        stats
    }

    /// Resets the access statistics and the accrued backoff time (pages
    /// stay resident).
    pub fn reset_stats(&mut self) {
        self.stats = BufferStats::default();
        self.backoff_ms = 0.0;
    }

    /// Replaces the retry policy applied to transient store faults.
    pub fn set_retry_policy(&mut self, retry: RetryPolicy) {
        self.retry = retry;
    }

    /// The active retry policy.
    pub fn retry_policy(&self) -> RetryPolicy {
        self.retry
    }

    /// Simulated milliseconds this buffer has spent backing off before
    /// retries (the disk's own timing model does not include these).
    pub fn simulated_backoff_ms(&self) -> f64 {
        self.backoff_ms
    }

    /// Attaches a write-ahead log: from now on every write (buffered or
    /// through) appends a full-page image to `wal` before the buffer or
    /// store changes, making buffered writes crash-durable.
    ///
    /// Attach *before* dirtying frames — changes buffered earlier were
    /// never logged, so no recovery can restore them. The shards of a
    /// `ShardedBuffer` all share one log (see `ShardedBuffer::attach_wal`).
    pub fn attach_wal(&mut self, wal: SharedWal) {
        self.wal = Some(wal);
    }

    /// Detaches the write-ahead log, returning it. Later writes are no
    /// longer logged (and thus not crash-durable).
    pub fn detach_wal(&mut self) -> Option<SharedWal> {
        self.wal.take()
    }

    /// The attached write-ahead log, if any.
    pub fn wal(&self) -> Option<&SharedWal> {
        self.wal.as_ref()
    }

    /// Appends a checkpoint automatically after every `interval` image
    /// appends (`None` disables). Only for a buffer that owns its WAL
    /// exclusively: a shard of a pool must never checkpoint alone, because
    /// its local dirty set does not bound the redo work of its siblings.
    pub fn set_checkpoint_interval(&mut self, interval: Option<u64>) {
        self.checkpoint_interval = match interval {
            Some(0) => None,
            other => other,
        };
    }

    /// The minimum `rec_lsn` over dirty frames: the LSN redo must start
    /// from for this buffer's unwritten changes. `None` when no dirty
    /// frame carries a logged change.
    pub fn min_rec_lsn(&self) -> Option<Lsn> {
        self.frames
            .values()
            .filter(|f| f.dirty)
            .filter_map(|f| f.rec_lsn)
            .min()
    }

    /// Appends a fuzzy checkpoint to the attached WAL and prunes log
    /// segments that no longer bound recovery. The checkpoint does **not**
    /// flush: it records where redo must start
    /// ([`min_rec_lsn`](BufferManager::min_rec_lsn), or the log's next LSN
    /// when nothing is dirty).
    ///
    /// Fails with [`StorageError::WalUnavailable`] when no WAL is
    /// attached.
    pub fn checkpoint(&mut self) -> Result<Lsn> {
        self.checkpoint_from(None)
    }

    /// [`checkpoint`](BufferManager::checkpoint) with an explicit redo
    /// horizon. A buffer pool passes the minimum `rec_lsn` across **all**
    /// its shards, since they share one log and one recovery.
    pub fn checkpoint_from(&mut self, redo_override: Option<Lsn>) -> Result<Lsn> {
        let wal = self.wal.clone().ok_or(StorageError::WalUnavailable)?;
        let mut wal = wal.lock();
        let redo_from = redo_override
            .or_else(|| self.min_rec_lsn())
            .unwrap_or_else(|| wal.next_lsn());
        let lsn = wal.append_checkpoint(redo_from)?;
        wal.prune_before(redo_from);
        self.stats.checkpoints += 1;
        self.appends_since_checkpoint = 0;
        Ok(lsn)
    }

    /// Appends `page`'s image to the attached WAL (no-op without one),
    /// returning the image's LSN.
    fn wal_append(&mut self, page: &Page) -> Result<Option<Lsn>> {
        let Some(wal) = self.wal.clone() else {
            return Ok(None);
        };
        let lsn = wal.lock().append_image(page)?;
        self.stats.wal_appends += 1;
        self.appends_since_checkpoint += 1;
        Ok(Some(lsn))
    }

    /// Runs the auto-interval checkpoint if one is due.
    fn maybe_auto_checkpoint(&mut self) -> Result<()> {
        if let Some(interval) = self.checkpoint_interval {
            if self.wal.is_some() && self.appends_since_checkpoint >= interval {
                self.checkpoint()?;
            }
        }
        Ok(())
    }

    /// Number of resident frames holding changes not yet written back.
    pub fn dirty_count(&self) -> usize {
        self.frames.values().filter(|f| f.dirty).count()
    }

    /// For the adaptable spatial buffer: the overflow-buffer page ids in
    /// FIFO order plus its capacity. `None` for policies without one.
    pub fn overflow_state(&self) -> Option<(Vec<PageId>, usize)> {
        self.policy.overflow_state()
    }

    /// Damages the resident copy of `id` (payload altered, recorded checksum
    /// preserved), returning whether a frame was poisoned. Test support for
    /// the fault-injection suite: a poisoned frame must be detected, evicted
    /// and re-fetched on its next read instead of being served.
    pub fn poison_frame(&mut self, id: PageId) -> bool {
        let Some(frame) = self.frames.get_mut(&id) else {
            return false;
        };
        let mut payload = frame.page.payload.to_vec();
        if payload.is_empty() {
            payload.push(0xee);
        } else {
            payload[0] ^= 0xff;
        }
        match Page::with_checksum(
            frame.page.id,
            frame.page.meta,
            Bytes::from(payload),
            frame.page.checksum(),
        ) {
            Ok(poisoned) => {
                frame.page = poisoned;
                true
            }
            Err(_) => false,
        }
    }

    /// For the adaptable spatial buffer: current candidate-set size.
    pub fn candidate_size(&self) -> Option<usize> {
        self.policy.candidate_size()
    }

    /// History records the policy retains for non-resident pages under the
    /// unified definition of
    /// [`ReplacementPolicy::retained_history`]: LRU-K HIST entries, 2Q
    /// ghost-queue entries and the arena's per-expert ghost caches.
    pub fn retained_history(&self) -> usize {
        self.policy.retained_history()
    }

    /// For the expert arena: the per-expert weights, ghost-miss counts,
    /// current leader and authority-switch count. `None` for every other
    /// policy.
    pub fn arena_state(&self) -> Option<ArenaState> {
        self.policy.arena_state()
    }

    /// Reads a page through the buffer, fetching from `io` on a miss, and
    /// returns an RAII [`PageReadGuard`]: the frame stays pinned (excluded
    /// from eviction) until the guard drops, and the guard derefs to the
    /// page.
    ///
    /// This is the single read path of the buffer — the sharded pool's
    /// miss path funnels into the same probe/admit primitives — so
    /// hit/miss/eviction accounting is identical no matter how the backing
    /// store is reached.
    ///
    /// Robustness semantics:
    /// * a resident frame whose payload no longer matches its checksum is
    ///   evicted and re-fetched instead of being served,
    /// * a fetched copy failing its checksum, and any transient store
    ///   error, is retried under the buffer's [`RetryPolicy`]; an exhausted
    ///   budget surfaces as [`StorageError::RetriesExhausted`].
    pub fn fetch<IO: StoreIo + ?Sized>(
        &mut self,
        io: &mut IO,
        id: PageId,
        ctx: AccessContext,
    ) -> Result<PageReadGuard> {
        if let Some(guard) = self.probe(id, ctx) {
            return Ok(guard);
        }
        let page = self.fetch_with_retry(io, id, ctx)?;
        self.admit_fetched(page, ctx, io)
    }

    /// [`fetch`](BufferManager::fetch) for callers that only have a fetch
    /// closure. A transient closure failure is retried (the closure may be
    /// called several times), but dirty evictions fail with
    /// [`StorageError::WritebackUnavailable`] on this path because there
    /// is nowhere to write to.
    pub fn fetch_with(
        &mut self,
        id: PageId,
        ctx: AccessContext,
        fetch: impl FnMut(PageId, AccessContext) -> Result<Page>,
    ) -> Result<PageReadGuard> {
        self.fetch(&mut FetchIo(fetch), id, ctx)
    }

    /// First half of a read: records the access and serves a hit from the
    /// resident frame, or counts the miss and returns `None` (a corrupt
    /// resident copy is discarded and becomes a counted miss). The sharded
    /// pool probes under its shard lock, then runs the miss path through
    /// the single-flight scheduler without the lock.
    pub(crate) fn probe(&mut self, id: PageId, ctx: AccessContext) -> Option<PageReadGuard> {
        self.stats.logical_reads += 1;
        self.tick += 1;
        if let Some(frame) = self.frames.get(&id) {
            if frame.page.verify_checksum() {
                self.stats.hits += 1;
                let page = frame.page.clone();
                self.policy.on_hit(&page, ctx, self.tick);
                return Some(self.guard_for(id, page));
            }
            // The resident copy rotted in memory: discard it and fall
            // through to a (counted) miss that re-fetches a clean copy.
            self.stats.corruptions += 1;
            self.frames.remove(&id);
            self.policy.on_remove(id);
        }
        self.stats.misses += 1;
        None
    }

    /// Second half of a read miss: admits the fetched page (evicting if
    /// needed) and pins it. The access itself was already counted by
    /// [`probe`](BufferManager::probe).
    ///
    /// If every frame is pinned by a live guard, the page is served
    /// *unbuffered* instead of failing: the guard owns a copy of the
    /// fetched page, so correctness does not require residency — the copy
    /// just is not cached for the next reader. Counted in
    /// [`BufferStats::pin_overflows`].
    pub(crate) fn admit_fetched<IO: StoreIo + ?Sized>(
        &mut self,
        page: Page,
        ctx: AccessContext,
        io: &mut IO,
    ) -> Result<PageReadGuard> {
        let id = page.id;
        if self.admit_or_overflow(page.clone(), ctx, false, None, io)? {
            Ok(self.guard_for(id, page))
        } else {
            Ok(self.unbuffered_guard(page))
        }
    }

    /// Pins the resident copy of `id` and records the access's recency
    /// with the policy, without touching the hit/miss counters — the
    /// sharded pool uses this when a page it already counted a miss for
    /// turns out to have been admitted by a concurrent flight. Returns
    /// `None` when the page is not resident or its resident copy fails its
    /// checksum (which discards the copy, as on the probe path).
    pub(crate) fn pin_resident(&mut self, id: PageId, ctx: AccessContext) -> Option<PageReadGuard> {
        let frame = self.frames.get(&id)?;
        if !frame.page.verify_checksum() {
            self.stats.corruptions += 1;
            self.frames.remove(&id);
            self.policy.on_remove(id);
            return None;
        }
        let page = frame.page.clone();
        self.policy.on_hit(&page, ctx, self.tick);
        Some(self.guard_for(id, page))
    }

    /// Admits a prefetched page without recording a logical access (the
    /// page was not requested — it is being staged ahead of demand).
    /// Skips pages already resident; eviction accounting runs normally.
    pub(crate) fn admit_prefetched<IO: StoreIo + ?Sized>(
        &mut self,
        page: Page,
        io: &mut IO,
    ) -> Result<bool> {
        if self.frames.contains_key(&page.id) || !page.verify_checksum() {
            return Ok(false);
        }
        self.tick += 1;
        self.admit_or_overflow(page, AccessContext::default(), false, None, io)
    }

    /// A guard over a page served without admission (every frame pinned):
    /// the token counts toward `live_guards` but pins no frame, so the
    /// buffer's eviction behaviour is unaffected by the guard's lifetime.
    fn unbuffered_guard(&mut self, page: Page) -> PageReadGuard {
        PageReadGuard::new(
            page,
            PinToken::new(Arc::new(AtomicU64::new(0)), Arc::clone(&self.live_guards)),
        )
    }

    /// Builds a read guard over the frame of `id`, which must be resident.
    fn guard_for(&mut self, id: PageId, page: Page) -> PageReadGuard {
        debug_assert!(self.frames.contains_key(&id), "guard over absent frame");
        let pins = self
            .frames
            .get(&id)
            .map(|f| Arc::clone(&f.pins))
            // invariant: every caller admits or verifies residency first;
            // an orphan token (counting against nothing) is still sound.
            .unwrap_or_else(|| Arc::new(AtomicU64::new(0)));
        PageReadGuard::new(page, PinToken::new(pins, Arc::clone(&self.live_guards)))
    }

    /// Applies the retry/corruption counters a detached
    /// [`fetch_page_with_retry`] accumulated — the sharded pool performs
    /// the store read without holding the shard lock and settles the
    /// accounting here, so a pool miss costs exactly what a sequential
    /// miss costs.
    pub(crate) fn apply_fetch_effort(&mut self, effort: FetchEffort) {
        self.stats.retries += effort.retries;
        self.stats.corruptions += effort.corruptions;
        self.backoff_ms += effort.backoff_ms;
    }

    /// Counts one fetch that failed permanently and is being surfaced to
    /// the caller (see [`BufferStats::give_ups`]). The sharded pool calls
    /// this for every request a failed flight disappoints — leader and
    /// joiners alike — so the count matches what the same requests would
    /// have accrued sequentially.
    pub(crate) fn note_give_up(&mut self) {
        self.stats.give_ups += 1;
    }

    /// The post-probe miss path of [`fetch`](BufferManager::fetch): the
    /// retrying store read plus admission, with the miss itself already
    /// counted by [`probe`](BufferManager::probe). Batched pools probe a
    /// whole batch under one lock acquisition and then resolve the misses
    /// through this, so batched accounting is indistinguishable from the
    /// sequential path's.
    pub(crate) fn fetch_missed<IO: StoreIo + ?Sized>(
        &mut self,
        io: &mut IO,
        id: PageId,
        ctx: AccessContext,
    ) -> Result<PageReadGuard> {
        let page = self.fetch_with_retry(io, id, ctx)?;
        self.admit_fetched(page, ctx, io)
    }

    /// Fetches `id`, retrying transient failures (including checksum
    /// mismatches of the delivered copy) under the retry policy.
    fn fetch_with_retry<IO: StoreIo + ?Sized>(
        &mut self,
        io: &mut IO,
        id: PageId,
        ctx: AccessContext,
    ) -> Result<Page> {
        let (result, effort) = fetch_page_with_retry(io, self.retry, id, ctx);
        self.apply_fetch_effort(effort);
        if result.is_err() {
            self.note_give_up();
        }
        result
    }

    /// Writes `page` back, retrying transient failures under the retry
    /// policy.
    fn store_with_retry<IO: StoreIo + ?Sized>(&mut self, io: &mut IO, page: &Page) -> Result<()> {
        let budget = self.retry.attempts();
        let mut failed = 0u32;
        loop {
            let err = match io.store(page) {
                Ok(()) => return Ok(()),
                Err(e) => e,
            };
            if !err.is_transient() {
                return Err(err);
            }
            failed += 1;
            if failed >= budget {
                return Err(StorageError::RetriesExhausted {
                    id: page.id,
                    attempts: failed,
                    last: Box::new(err),
                });
            }
            self.stats.retries += 1;
            self.backoff_ms += self.retry.backoff_ms(failed);
        }
    }

    /// Writes a page through the buffer: the underlying store is updated,
    /// and a resident copy (if any) is refreshed along with the policy's
    /// view of the page's metadata. Transient write faults are retried.
    pub fn write_through<S: PageStore>(&mut self, inner: &mut S, page: Page) -> Result<()> {
        self.write_via(inner, page)
    }

    /// [`write_through`](BufferManager::write_through) via an explicit
    /// [`StoreIo`]. With a WAL attached the page image is logged before
    /// the store write, so a torn store write is repairable by redo.
    pub fn write_via<IO: StoreIo + ?Sized>(&mut self, io: &mut IO, page: Page) -> Result<()> {
        self.wal_append(&page)?;
        self.store_with_retry(io, &page)?;
        if let Some(frame) = self.frames.get_mut(&page.id) {
            frame.page = page.clone();
            frame.dirty = false;
            frame.rec_lsn = None;
            self.policy.on_update(&page);
        }
        self.maybe_auto_checkpoint()
    }

    /// Writes a page into the buffer only, deferring the store write to
    /// eviction or [`flush`](BufferManager::flush) (write-back caching).
    ///
    /// The frame is marked dirty; evicting it later performs the write-back,
    /// and a failed write-back leaves the page resident (see
    /// [`BufferStats::failed_evictions`]).
    pub fn write_buffered<S: PageStore>(&mut self, inner: &mut S, page: Page) -> Result<()> {
        self.write_buffered_via(inner, page)
    }

    /// [`write_buffered`](BufferManager::write_buffered) via an explicit
    /// [`StoreIo`] (only used if admission must evict). With a WAL
    /// attached the page image is appended *before* the frame is dirtied
    /// (WAL-before-write-back): the append is the commit point, and a
    /// crash any time after it cannot lose the update.
    pub fn write_buffered_via<IO: StoreIo + ?Sized>(
        &mut self,
        io: &mut IO,
        page: Page,
    ) -> Result<()> {
        let lsn = self.wal_append(&page)?;
        if let Some(frame) = self.frames.get_mut(&page.id) {
            frame.page = page.clone();
            frame.dirty = true;
            // The oldest unwritten change keeps its LSN: redo must start
            // there, not at the latest image.
            frame.rec_lsn = frame.rec_lsn.or(lsn);
            self.policy.on_update(&page);
            return self.maybe_auto_checkpoint();
        }
        self.tick += 1;
        if !self.admit_or_overflow(page.clone(), AccessContext::default(), true, lsn, io)? {
            // Every frame is pinned: fall back to writing through. The WAL
            // image is already appended (the commit point is unchanged);
            // the store write makes the update durable without needing a
            // resident dirty frame.
            self.store_with_retry(io, &page)?;
        }
        self.maybe_auto_checkpoint()
    }

    /// Writes every dirty frame back to the store (in page-id order, for
    /// determinism), clearing the dirty marks. Transient faults are
    /// retried. A permanent failure does **not** abort the flush: every
    /// dirty frame is attempted, failed ones stay resident and dirty, and
    /// the failures surface as one aggregated
    /// [`StorageError::FlushIncomplete`] naming every failed page.
    pub fn flush<S: PageStore>(&mut self, inner: &mut S) -> Result<()> {
        self.flush_via(inner)
    }

    /// [`flush`](BufferManager::flush) via an explicit [`StoreIo`].
    pub fn flush_via<IO: StoreIo + ?Sized>(&mut self, io: &mut IO) -> Result<()> {
        let mut dirty: Vec<PageId> = self
            .frames
            .iter()
            .filter(|(_, f)| f.dirty)
            .map(|(&id, _)| id)
            .collect();
        dirty.sort_unstable();
        let mut failures = Vec::new();
        for id in dirty {
            let Some(page) = self.frames.get(&id).map(|f| f.page.clone()) else {
                continue;
            };
            match self.store_with_retry(io, &page) {
                Ok(()) => {
                    self.stats.writebacks += 1;
                    if let Some(frame) = self.frames.get_mut(&id) {
                        frame.dirty = false;
                        frame.rec_lsn = None;
                    }
                }
                Err(e) => failures.push((id, Box::new(e))),
            }
        }
        if failures.is_empty() {
            Ok(())
        } else {
            Err(StorageError::FlushIncomplete { failures })
        }
    }

    /// Writes back at most `max` dirty frames, oldest redo horizon first
    /// (frames with a `rec_lsn` in ascending LSN order, then unlogged
    /// dirty frames in page-id order). This is the background flusher's
    /// primitive: draining the oldest horizons first is what lets the next
    /// checkpoint advance furthest. Returns the number of frames written
    /// back; failures aggregate to [`StorageError::FlushIncomplete`] after
    /// every selected frame was attempted, like
    /// [`flush`](BufferManager::flush).
    pub fn flush_some_via<IO: StoreIo + ?Sized>(
        &mut self,
        io: &mut IO,
        max: usize,
    ) -> Result<usize> {
        let mut dirty: Vec<(bool, Option<Lsn>, PageId)> = self
            .frames
            .iter()
            .filter(|(_, f)| f.dirty)
            .map(|(&id, f)| (f.rec_lsn.is_none(), f.rec_lsn, id))
            .collect();
        dirty.sort_unstable();
        dirty.truncate(max);
        let mut flushed = 0usize;
        let mut failures = Vec::new();
        for (_, _, id) in dirty {
            let Some(page) = self.frames.get(&id).map(|f| f.page.clone()) else {
                continue;
            };
            match self.store_with_retry(io, &page) {
                Ok(()) => {
                    self.stats.writebacks += 1;
                    flushed += 1;
                    if let Some(frame) = self.frames.get_mut(&id) {
                        frame.dirty = false;
                        frame.rec_lsn = None;
                    }
                }
                Err(e) => failures.push((id, Box::new(e))),
            }
        }
        if failures.is_empty() {
            Ok(flushed)
        } else {
            Err(StorageError::FlushIncomplete { failures })
        }
    }

    /// Allocates a page in `inner` and admits it to the buffer (a freshly
    /// created page is about to be used, so caching it is the common case).
    pub fn allocate_through<S: PageStore>(
        &mut self,
        inner: &mut S,
        meta: PageMeta,
        payload: Bytes,
    ) -> Result<PageId> {
        let id = inner.allocate(meta, payload.clone())?;
        let page = Page::new(id, meta, payload)?;
        self.tick += 1;
        // The page is already durable in the store; if every frame is
        // pinned it simply is not cached.
        self.admit_or_overflow(page, AccessContext::default(), false, None, inner)?;
        Ok(id)
    }

    /// Admits a page that was just allocated in the backing store.
    ///
    /// The sharded pool allocates under the store lock, releases it, and
    /// then admits under the owning shard's lock — this is the second phase,
    /// with accounting identical to [`allocate_through`]. If admission must
    /// evict a *dirty* victim, this path fails with
    /// [`StorageError::WritebackUnavailable`]; use
    /// [`admit_allocated_via`](BufferManager::admit_allocated_via) when a
    /// store is reachable.
    ///
    /// [`allocate_through`]: BufferManager::allocate_through
    pub fn admit_allocated(&mut self, page: Page) -> Result<()> {
        self.admit_allocated_via(page, &mut NoWriteback)
    }

    /// [`admit_allocated`](BufferManager::admit_allocated) via an explicit
    /// [`StoreIo`] for dirty-victim write-backs.
    pub fn admit_allocated_via<IO: StoreIo + ?Sized>(
        &mut self,
        page: Page,
        io: &mut IO,
    ) -> Result<()> {
        self.tick += 1;
        // As in `allocate_through`: the store already holds the page, so a
        // pin-saturated buffer skips caching rather than failing.
        self.admit_or_overflow(page, AccessContext::default(), false, None, io)?;
        Ok(())
    }

    /// Frees a page in `inner` and drops any buffered copy.
    pub fn free_through<S: PageStore>(&mut self, inner: &mut S, id: PageId) -> Result<()> {
        inner.free(id)?;
        self.invalidate(id);
        Ok(())
    }

    /// Drops a buffered copy without touching the underlying store.
    /// No-op if the page is not resident.
    pub fn invalidate(&mut self, id: PageId) {
        if self.frames.remove(&id).is_some() {
            self.policy.on_remove(id);
        }
    }

    /// Drops every buffered page and resets statistics — the paper clears
    /// the buffer before each query set. Dirty frames are discarded without
    /// a write-back; call [`flush`](BufferManager::flush) first to keep
    /// deferred writes.
    pub fn clear(&mut self) {
        let ids: Vec<PageId> = self.frames.keys().copied().collect();
        for id in ids {
            self.frames.remove(&id);
            self.policy.on_remove(id);
        }
        self.reset_stats();
    }

    /// [`admit_frame`](BufferManager::admit_frame), except that a buffer
    /// whose every frame is pinned by a live guard is *not* an error:
    /// the admission is skipped, [`BufferStats::pin_overflows`] counts it,
    /// and `Ok(false)` tells the caller to serve its copy unbuffered (or
    /// write through). Pins are transient in the common case — concurrent
    /// readers in a small shard — so refusing the whole operation would
    /// turn a momentary overlap into a spurious failure.
    fn admit_or_overflow<IO: StoreIo + ?Sized>(
        &mut self,
        page: Page,
        ctx: AccessContext,
        dirty: bool,
        rec_lsn: Option<Lsn>,
        io: &mut IO,
    ) -> Result<bool> {
        match self.admit_frame(page, ctx, dirty, rec_lsn, io) {
            Ok(()) => Ok(true),
            Err(StorageError::AllPagesPinned) => {
                self.stats.pin_overflows += 1;
                Ok(false)
            }
            Err(e) => Err(e),
        }
    }

    fn admit_frame<IO: StoreIo + ?Sized>(
        &mut self,
        page: Page,
        ctx: AccessContext,
        dirty: bool,
        rec_lsn: Option<Lsn>,
        io: &mut IO,
    ) -> Result<()> {
        if self.frames.len() >= self.capacity {
            self.evict_one(ctx, io)?;
        }
        self.policy.on_insert(&page, ctx, self.tick);
        self.frames.insert(
            page.id,
            Frame {
                page,
                pins: Arc::new(AtomicU64::new(0)),
                dirty,
                rec_lsn,
            },
        );
        Ok(())
    }

    /// Evicts one page. A dirty victim is written back first; if that
    /// write-back fails the victim stays resident, the policy keeps its
    /// bookkeeping for the page, and the eviction is recorded as *failed*
    /// rather than completed.
    fn evict_one<IO: StoreIo + ?Sized>(&mut self, ctx: AccessContext, io: &mut IO) -> Result<()> {
        // Pin loads are race-free here: new pins require this same mutable
        // borrow (the shard lock in a pool), and concurrent guard drops
        // only ever *decrease* a count — a frame observed unpinned stays
        // evictable.
        let unpinned = |f: &Frame| f.pins.load(Ordering::SeqCst) == 0;
        if !self.frames.values().any(unpinned) {
            return Err(StorageError::AllPagesPinned);
        }
        let frames = &self.frames;
        let victim = self
            .policy
            .select_victim(ctx, &|id| frames.get(&id).is_some_and(unpinned))
            .ok_or(StorageError::AllPagesPinned)?;
        debug_assert!(
            self.frames.get(&victim).is_some_and(unpinned),
            "policy returned a non-evictable victim"
        );
        if let Some(page) = self
            .frames
            .get(&victim)
            .filter(|f| f.dirty)
            .map(|f| f.page.clone())
        {
            if let Err(e) = self.store_with_retry(io, &page) {
                self.stats.failed_evictions += 1;
                return Err(e);
            }
            self.stats.writebacks += 1;
            if let Some(frame) = self.frames.get_mut(&victim) {
                frame.dirty = false;
            }
        }
        self.frames.remove(&victim);
        self.policy.on_remove(victim);
        self.stats.evictions += 1;
        Ok(())
    }
}

/// A [`PageStore`] that transparently routes reads and writes of an inner
/// store through a [`BufferManager`].
///
/// This is what index structures hold: swapping buffering on or off (or
/// swapping policies) never changes index code.
#[derive(Debug)]
pub struct BufferedStore<S: PageStore> {
    inner: S,
    buffer: BufferManager,
}

impl<S: PageStore> BufferedStore<S> {
    /// Wraps `inner` with the given buffer.
    pub fn new(inner: S, buffer: BufferManager) -> Self {
        BufferedStore { inner, buffer }
    }

    /// The buffer manager.
    pub fn buffer(&self) -> &BufferManager {
        &self.buffer
    }

    /// Mutable access to the buffer manager.
    pub fn buffer_mut(&mut self) -> &mut BufferManager {
        &mut self.buffer
    }

    /// The wrapped store.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// Mutable access to the wrapped store (bypasses the buffer — callers
    /// must [`BufferManager::invalidate`] any page they mutate this way).
    pub fn inner_mut(&mut self) -> &mut S {
        &mut self.inner
    }

    /// Unwraps into the inner store and buffer.
    pub fn into_parts(self) -> (S, BufferManager) {
        (self.inner, self.buffer)
    }
}

impl<S: PageStore> PageStore for BufferedStore<S> {
    fn read(&mut self, id: PageId, ctx: AccessContext) -> Result<Page> {
        self.buffer
            .fetch(&mut self.inner, id, ctx)
            .map(PageReadGuard::into_page)
    }

    fn write(&mut self, page: Page) -> Result<()> {
        self.buffer.write_through(&mut self.inner, page)
    }

    fn allocate(&mut self, meta: PageMeta, payload: Bytes) -> Result<PageId> {
        self.buffer.allocate_through(&mut self.inner, meta, payload)
    }

    fn free(&mut self, id: PageId) -> Result<()> {
        self.buffer.free_through(&mut self.inner, id)
    }

    fn page_count(&self) -> usize {
        self.inner.page_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asb_geom::SpatialStats;
    use asb_storage::DiskManager;
    use std::sync::Arc;

    fn meta() -> PageMeta {
        PageMeta::data(SpatialStats::EMPTY)
    }

    fn setup(capacity: usize, pages: usize) -> (DiskManager, BufferManager, Vec<PageId>) {
        let mut disk = DiskManager::new();
        let ids: Vec<PageId> = (0..pages)
            .map(|i| disk.allocate(meta(), Bytes::from(vec![i as u8])).unwrap())
            .collect();
        disk.reset_stats();
        (
            disk,
            BufferManager::with_policy(PolicyKind::Lru, capacity),
            ids,
        )
    }

    fn ctx() -> AccessContext {
        AccessContext::default()
    }

    #[test]
    fn hit_avoids_disk_access() {
        let (mut disk, mut buf, ids) = setup(4, 2);
        buf.fetch(&mut disk, ids[0], ctx()).unwrap();
        buf.fetch(&mut disk, ids[0], ctx()).unwrap();
        assert_eq!(disk.stats().reads, 1);
        let s = buf.stats();
        assert_eq!((s.logical_reads, s.hits, s.misses), (2, 1, 1));
    }

    #[test]
    fn capacity_is_never_exceeded() {
        let (mut disk, mut buf, ids) = setup(3, 10);
        for &id in &ids {
            buf.fetch(&mut disk, id, ctx()).unwrap();
            assert!(buf.resident() <= 3);
        }
        assert_eq!(buf.stats().evictions, 7);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let (mut disk, mut buf, ids) = setup(2, 3);
        buf.fetch(&mut disk, ids[0], ctx()).unwrap();
        buf.fetch(&mut disk, ids[1], ctx()).unwrap();
        buf.fetch(&mut disk, ids[0], ctx()).unwrap(); // touch 0
        buf.fetch(&mut disk, ids[2], ctx()).unwrap(); // evicts 1
        assert!(buf.contains(ids[0]));
        assert!(!buf.contains(ids[1]));
        assert!(buf.contains(ids[2]));
    }

    #[test]
    fn guarded_pages_survive_eviction() {
        let (mut disk, mut buf, ids) = setup(2, 4);
        let pinned = buf.fetch(&mut disk, ids[0], ctx()).unwrap();
        for &id in &ids[1..] {
            buf.fetch(&mut disk, id, ctx()).unwrap();
        }
        assert!(buf.contains(ids[0]), "pinned page must not be evicted");
        assert_eq!(pinned.id, ids[0]);
        assert_eq!(buf.live_guards(), 1);
        drop(pinned);
        assert_eq!(buf.live_guards(), 0);
    }

    #[test]
    fn all_pinned_serves_unbuffered() {
        let (mut disk, mut buf, ids) = setup(2, 3);
        let _g0 = buf.fetch(&mut disk, ids[0], ctx()).unwrap();
        let _g1 = buf.fetch(&mut disk, ids[1], ctx()).unwrap();
        // Every frame is pinned: the read still succeeds, served from the
        // fetched copy without caching it (pins keep their frames).
        let g2 = buf.fetch(&mut disk, ids[2], ctx()).unwrap();
        assert_eq!(g2.id, ids[2]);
        assert!(!buf.contains(ids[2]), "overflow read must not be cached");
        assert!(buf.contains(ids[0]) && buf.contains(ids[1]));
        assert_eq!(buf.stats().pin_overflows, 1);
        assert_eq!(buf.live_guards(), 3);
    }

    #[test]
    fn guard_pins_nest() {
        let (mut disk, mut buf, ids) = setup(1, 2);
        let g1 = buf.fetch(&mut disk, ids[0], ctx()).unwrap();
        let g2 = buf.fetch(&mut disk, ids[0], ctx()).unwrap();
        assert_eq!(buf.live_guards(), 2);
        drop(g1);
        // One guard still lives: the frame stays pinned, and the buffer is
        // full, so another fetch is served unbuffered instead of evicting.
        drop(buf.fetch(&mut disk, ids[1], ctx()).unwrap());
        assert!(buf.contains(ids[0]), "pinned page must survive overflow");
        assert!(!buf.contains(ids[1]), "overflow read must not be cached");
        assert_eq!(buf.stats().pin_overflows, 1);
        drop(g2);
        buf.fetch(&mut disk, ids[1], ctx()).unwrap();
        assert!(!buf.contains(ids[0]), "unpinned page becomes evictable");
        assert_eq!(buf.live_guards(), 0);
    }

    #[test]
    fn write_through_updates_resident_copy() {
        let (mut disk, mut buf, ids) = setup(2, 1);
        buf.fetch(&mut disk, ids[0], ctx()).unwrap();
        let updated = Page::new(ids[0], meta(), Bytes::from_static(b"xyz")).unwrap();
        buf.write_through(&mut disk, updated).unwrap();
        let got = buf.fetch(&mut disk, ids[0], ctx()).unwrap();
        assert_eq!(got.payload.as_ref(), b"xyz");
        // Still a hit: only the original miss touched the disk for reads.
        assert_eq!(disk.stats().reads, 1);
        assert_eq!(disk.peek(ids[0]).unwrap().payload.as_ref(), b"xyz");
    }

    #[test]
    fn clear_empties_buffer_and_stats() {
        let (mut disk, mut buf, ids) = setup(4, 3);
        for &id in &ids {
            buf.fetch(&mut disk, id, ctx()).unwrap();
        }
        buf.clear();
        assert_eq!(buf.resident(), 0);
        assert_eq!(buf.stats(), BufferStats::default());
        // Pages must be re-fetched afterwards.
        buf.fetch(&mut disk, ids[0], ctx()).unwrap();
        assert_eq!(buf.stats().misses, 1);
    }

    #[test]
    fn free_through_invalidates() {
        let (mut disk, mut buf, ids) = setup(4, 2);
        buf.fetch(&mut disk, ids[0], ctx()).unwrap();
        buf.free_through(&mut disk, ids[0]).unwrap();
        assert!(!buf.contains(ids[0]));
        assert!(buf.fetch(&mut disk, ids[0], ctx()).is_err());
    }

    #[test]
    fn allocate_through_admits_page() {
        let (mut disk, mut buf, _) = setup(4, 0);
        let id = buf
            .allocate_through(&mut disk, meta(), Bytes::from_static(b"new"))
            .unwrap();
        assert!(buf.contains(id));
        // Reading it back is a hit.
        buf.fetch(&mut disk, id, ctx()).unwrap();
        assert_eq!(buf.stats().hits, 1);
        assert_eq!(disk.stats().reads, 0);
    }

    #[test]
    fn buffered_store_is_transparent() {
        let (mut disk, _, ids) = setup(1, 3);
        let raw: Vec<Page> = ids
            .iter()
            .map(|&id| disk.read(id, ctx()).unwrap())
            .collect();
        let mut store = BufferedStore::new(disk, BufferManager::with_policy(PolicyKind::Lru, 2));
        for (i, &id) in ids.iter().enumerate() {
            let got = store.read(id, ctx()).unwrap();
            assert_eq!(got, raw[i]);
        }
        assert_eq!(store.page_count(), 3);
    }

    #[test]
    fn hit_ratio_math() {
        let s = BufferStats {
            logical_reads: 10,
            hits: 7,
            misses: 3,
            ..BufferStats::default()
        };
        assert!((s.hit_ratio() - 0.7).abs() < 1e-12);
        assert_eq!(BufferStats::default().hit_ratio(), 0.0);
    }

    #[test]
    fn stats_sum_includes_robustness_counters() {
        let a = BufferStats {
            retries: 2,
            corruptions: 1,
            failed_evictions: 1,
            writebacks: 3,
            ..BufferStats::default()
        };
        let b = BufferStats {
            retries: 1,
            ..BufferStats::default()
        };
        let sum: BufferStats = [a, b].into_iter().sum();
        assert_eq!(sum.retries, 3);
        assert_eq!(sum.corruptions, 1);
        assert_eq!(sum.failed_evictions, 1);
        assert_eq!(sum.writebacks, 3);
    }

    #[test]
    fn poisoned_frame_is_refetched_not_served() {
        let (mut disk, mut buf, ids) = setup(4, 1);
        let clean = buf.fetch(&mut disk, ids[0], ctx()).unwrap();
        assert!(buf.poison_frame(ids[0]));
        let again = buf.fetch(&mut disk, ids[0], ctx()).unwrap();
        assert_eq!(*again, *clean, "the served copy must be the clean one");
        let s = buf.stats();
        assert_eq!(s.corruptions, 1);
        assert_eq!(s.misses, 2, "the poisoned hit degrades to a miss");
        assert_eq!(s.evictions, 0, "corruption discard is not an eviction");
        assert_eq!(disk.stats().reads, 2);
    }

    #[test]
    fn write_buffered_defers_and_flush_writes_back() {
        let (mut disk, mut buf, ids) = setup(4, 1);
        buf.fetch(&mut disk, ids[0], ctx()).unwrap();
        let updated = Page::new(ids[0], meta(), Bytes::from_static(b"deferred")).unwrap();
        buf.write_buffered(&mut disk, updated).unwrap();
        assert_eq!(buf.dirty_count(), 1);
        assert_ne!(disk.peek(ids[0]).unwrap().payload.as_ref(), b"deferred");
        buf.flush(&mut disk).unwrap();
        assert_eq!(buf.dirty_count(), 0);
        assert_eq!(buf.stats().writebacks, 1);
        assert_eq!(disk.peek(ids[0]).unwrap().payload.as_ref(), b"deferred");
    }

    #[test]
    fn dirty_eviction_writes_back() {
        let (mut disk, mut buf, ids) = setup(1, 2);
        let updated = Page::new(ids[0], meta(), Bytes::from_static(b"dirty")).unwrap();
        buf.write_buffered(&mut disk, updated).unwrap();
        // Admitting another page evicts the dirty one, writing it back.
        buf.fetch(&mut disk, ids[1], ctx()).unwrap();
        assert!(!buf.contains(ids[0]));
        assert_eq!(buf.stats().writebacks, 1);
        assert_eq!(buf.stats().evictions, 1);
        assert_eq!(disk.peek(ids[0]).unwrap().payload.as_ref(), b"dirty");
    }

    #[test]
    fn fetch_retries_are_transparent() {
        let (mut disk, mut buf, ids) = setup(2, 1);
        let mut attempts = 0;
        let page = buf
            .fetch_with(ids[0], ctx(), |id, ctx| {
                attempts += 1;
                if attempts < 3 {
                    Err(StorageError::TransientRead(id))
                } else {
                    disk.read(id, ctx)
                }
            })
            .unwrap();
        assert_eq!(page.id, ids[0]);
        assert_eq!(attempts, 3);
        assert_eq!(buf.stats().retries, 2);
        assert!(buf.simulated_backoff_ms() > 0.0);
    }

    #[test]
    fn exhausted_retries_surface_typed_give_up() {
        let (_, mut buf, ids) = setup(2, 1);
        buf.set_retry_policy(asb_storage::RetryPolicy {
            max_attempts: 3,
            base_backoff_ms: 0.0,
            backoff_multiplier: 1.0,
        });
        let err = buf
            .fetch_with(ids[0], ctx(), |id, _| Err(StorageError::TransientRead(id)))
            .unwrap_err();
        assert_eq!(
            err,
            StorageError::RetriesExhausted {
                id: ids[0],
                attempts: 3,
                last: Box::new(StorageError::TransientRead(ids[0])),
            }
        );
    }

    #[test]
    fn non_transient_fetch_errors_are_not_retried() {
        let (_, mut buf, ids) = setup(2, 1);
        let mut attempts = 0;
        let err = buf
            .fetch_with(ids[0], ctx(), |id, _| {
                attempts += 1;
                Err(StorageError::PageNotFound(id))
            })
            .unwrap_err();
        assert_eq!(err, StorageError::PageNotFound(ids[0]));
        assert_eq!(attempts, 1);
        assert_eq!(buf.stats().retries, 0);
    }

    #[test]
    fn non_transient_write_back_errors_are_not_retried() {
        use asb_storage::{FaultConfig, FaultyStore};
        let (disk, mut buf, ids) = setup(2, 1);
        let mut store = FaultyStore::new(disk, FaultConfig::reliable());
        let page = Page::new(ids[0], meta(), Bytes::from_static(b"doomed")).unwrap();
        buf.write_buffered(&mut store, page).unwrap();
        store.mark_permanent(ids[0]);
        let err = buf.flush(&mut store).unwrap_err();
        let StorageError::FlushIncomplete { failures } = err else {
            panic!("expected FlushIncomplete, got {err:?}");
        };
        assert_eq!(failures.len(), 1);
        assert_eq!(failures[0].0, ids[0]);
        assert_eq!(
            *failures[0].1,
            StorageError::DeviceFailed(ids[0]),
            "the permanent failure passes through unwrapped and unretried"
        );
        assert_eq!(buf.stats().retries, 0);
    }

    #[test]
    fn zero_attempt_retry_policy_behaves_like_single_attempt() {
        let (_, mut buf, ids) = setup(2, 1);
        buf.set_retry_policy(asb_storage::RetryPolicy {
            max_attempts: 0,
            base_backoff_ms: 1.0,
            backoff_multiplier: 2.0,
        });
        let mut attempts = 0;
        let err = buf
            .fetch_with(ids[0], ctx(), |id, _| {
                attempts += 1;
                Err(StorageError::TransientRead(id))
            })
            .unwrap_err();
        assert_eq!(attempts, 1, "budget of zero still makes the one attempt");
        assert_eq!(buf.stats().retries, 0);
        assert!(matches!(err, StorageError::RetriesExhausted { .. }));
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_panics() {
        let _ = BufferManager::with_policy(PolicyKind::Lru, 0);
    }

    #[test]
    fn flush_attempts_every_frame_and_aggregates_failures() {
        use asb_storage::{FaultConfig, FaultyStore};
        let (disk, mut buf, ids) = setup(8, 4);
        let mut store = FaultyStore::new(disk, FaultConfig::reliable());
        for (i, &id) in ids.iter().enumerate() {
            let page = Page::new(id, meta(), Bytes::from(vec![0xf0 + i as u8])).unwrap();
            buf.write_buffered(&mut store, page).unwrap();
        }
        store.mark_permanent(ids[1]);
        store.mark_permanent(ids[2]);
        let err = buf.flush(&mut store).unwrap_err();
        let StorageError::FlushIncomplete { failures } = err else {
            panic!("expected FlushIncomplete, got {err:?}");
        };
        let failed: Vec<PageId> = failures.iter().map(|(id, _)| *id).collect();
        assert_eq!(failed, vec![ids[1], ids[2]], "both failed pages named");
        // The healthy frames were written back despite the failures...
        assert_eq!(buf.stats().writebacks, 2);
        assert_eq!(
            store.inner().peek(ids[0]).unwrap().payload.as_ref(),
            &[0xf0]
        );
        assert_eq!(
            store.inner().peek(ids[3]).unwrap().payload.as_ref(),
            &[0xf3]
        );
        // ...and the failed ones stay resident and dirty for a later retry.
        assert_eq!(buf.dirty_count(), 2);
        store.heal(ids[1]);
        store.heal(ids[2]);
        buf.flush(&mut store).unwrap();
        assert_eq!(buf.dirty_count(), 0);
        assert_eq!(
            store.inner().peek(ids[2]).unwrap().payload.as_ref(),
            &[0xf2]
        );
    }

    #[test]
    fn buffered_writes_append_to_the_wal_before_the_store_changes() {
        use asb_storage::{Wal, WalConfig, WalRecord};
        let (mut disk, mut buf, ids) = setup(4, 2);
        let wal = Wal::shared(WalConfig::default());
        buf.attach_wal(wal.clone());
        let page = Page::new(ids[0], meta(), Bytes::from_static(b"logged")).unwrap();
        buf.write_buffered(&mut disk, page.clone()).unwrap();
        // The image is durable in the log while the store is still stale.
        assert_ne!(disk.peek(ids[0]).unwrap().payload.as_ref(), b"logged");
        let (records, torn) = wal.lock().scan();
        assert_eq!(torn, 0);
        assert_eq!(
            records,
            vec![WalRecord::Image {
                lsn: asb_storage::Lsn(0),
                page
            }]
        );
        assert_eq!(buf.stats().wal_appends, 1);
        assert_eq!(buf.min_rec_lsn(), Some(asb_storage::Lsn(0)));
        // Write-back clears the redo horizon.
        buf.flush(&mut disk).unwrap();
        assert_eq!(buf.min_rec_lsn(), None);
    }

    #[test]
    fn rec_lsn_keeps_the_oldest_unwritten_image() {
        use asb_storage::{Wal, WalConfig};
        let (mut disk, mut buf, ids) = setup(4, 1);
        buf.attach_wal(Wal::shared(WalConfig::default()));
        for round in 0..3u8 {
            let page = Page::new(ids[0], meta(), Bytes::from(vec![round])).unwrap();
            buf.write_buffered(&mut disk, page).unwrap();
        }
        // Three images logged, but redo must start at the first one.
        assert_eq!(buf.stats().wal_appends, 3);
        assert_eq!(buf.min_rec_lsn(), Some(asb_storage::Lsn(0)));
    }

    #[test]
    fn checkpoint_records_the_dirty_horizon_and_counts() {
        use asb_storage::{Wal, WalConfig, WalRecord};
        let (mut disk, mut buf, ids) = setup(4, 2);
        let wal = Wal::shared(WalConfig::default());
        buf.attach_wal(wal.clone());
        // Nothing dirty: the checkpoint's horizon is the log head.
        let first = buf.checkpoint().unwrap();
        buf.write_buffered(
            &mut disk,
            Page::new(ids[0], meta(), Bytes::from_static(b"a")).unwrap(),
        )
        .unwrap();
        let second = buf.checkpoint().unwrap();
        let (records, _) = wal.lock().scan();
        assert_eq!(
            records[0],
            WalRecord::Checkpoint {
                lsn: first,
                redo_from: asb_storage::Lsn(0)
            },
            "an all-clean checkpoint's horizon is the log head"
        );
        assert_eq!(
            records[2],
            WalRecord::Checkpoint {
                lsn: second,
                redo_from: asb_storage::Lsn(1)
            },
            "a dirty frame pins the horizon at its rec_lsn"
        );
        assert_eq!(buf.stats().checkpoints, 2);
    }

    #[test]
    fn checkpoint_without_wal_is_a_typed_error() {
        let (_, mut buf, _) = setup(2, 0);
        assert_eq!(buf.checkpoint().unwrap_err(), StorageError::WalUnavailable);
    }

    #[test]
    fn auto_checkpoint_interval_fires_every_n_appends() {
        use asb_storage::{Wal, WalConfig};
        let (mut disk, mut buf, ids) = setup(8, 4);
        buf.attach_wal(Wal::shared(WalConfig::default()));
        buf.set_checkpoint_interval(Some(3));
        for round in 0..9u8 {
            let id = ids[round as usize % ids.len()];
            let page = Page::new(id, meta(), Bytes::from(vec![round])).unwrap();
            buf.write_buffered(&mut disk, page).unwrap();
        }
        assert_eq!(buf.stats().wal_appends, 9);
        assert_eq!(buf.stats().checkpoints, 3);
        // Interval zero disables.
        buf.set_checkpoint_interval(Some(0));
        for round in 0..4u8 {
            let page = Page::new(ids[0], meta(), Bytes::from(vec![round])).unwrap();
            buf.write_buffered(&mut disk, page).unwrap();
        }
        assert_eq!(buf.stats().checkpoints, 3);
    }

    #[test]
    fn write_through_logs_an_image_for_torn_write_repair() {
        use asb_storage::{Wal, WalConfig};
        let (mut disk, mut buf, ids) = setup(4, 1);
        let wal = Wal::shared(WalConfig::default());
        buf.attach_wal(wal.clone());
        let page = Page::new(ids[0], meta(), Bytes::from_static(b"through")).unwrap();
        buf.write_through(&mut disk, page).unwrap();
        assert_eq!(buf.stats().wal_appends, 1);
        assert_eq!(wal.lock().stats().image_appends, 1);
        assert_eq!(disk.peek(ids[0]).unwrap().payload.as_ref(), b"through");
    }

    #[test]
    fn detach_wal_stops_logging() {
        use asb_storage::{Wal, WalConfig};
        let (mut disk, mut buf, ids) = setup(4, 1);
        let wal = Wal::shared(WalConfig::default());
        buf.attach_wal(wal.clone());
        assert!(buf.wal().is_some());
        let detached = buf.detach_wal().expect("wal was attached");
        assert!(Arc::ptr_eq(&detached, &wal));
        assert!(buf.wal().is_none());
        buf.write_buffered(
            &mut disk,
            Page::new(ids[0], meta(), Bytes::from_static(b"x")).unwrap(),
        )
        .unwrap();
        assert_eq!(buf.stats().wal_appends, 0);
        assert_eq!(wal.lock().len_bytes(), 0);
    }
}
