//! Synchronization facade, re-exported from `asb-storage`.
//!
//! The canonical facade lives in `asb_storage::sync` (storage is the lowest
//! layer and already holds locks, e.g. `SharedWal`); this module gives the
//! buffer-management layer the `asb_core::sync` path the rest of the
//! workspace imports from. See `asb_storage::sync` for the design notes and
//! the `--cfg asb_schedule` model-checking mode.

pub use asb_storage::sync::*;
