//! Thread-safe wrapper around a buffered page store.
//!
//! The single-threaded [`BufferManager`] is the
//! measurement vehicle for the paper's experiments; `SharedBuffer` packages
//! a buffer and its backing store behind one mutex (from the
//! [`crate::sync`] facade) so
//! multi-threaded applications (e.g. a query server answering window
//! queries from several sessions) can share one buffer pool.
//!
//! `SharedBuffer` serializes *every* request — including hits — behind one
//! mutex; the mutex is released before a fetched guard is handed out, so
//! only the probe/admit step is serialized, not the caller's use of the
//! page. For parallel serving, prefer
//! [`ShardedBuffer`](crate::ShardedBuffer), which stripes the pool across
//! independently locked shards; `SharedBuffer` remains the simplest choice
//! when requests are rare or exactly serialized statistics matter more than
//! throughput (it behaves like a `ShardedBuffer` with one shard whose
//! requests never overlap).

use crate::guard::{PageReadGuard, PageWriteGuard, WriteSink};
use crate::manager::{BufferManager, BufferStats};
use crate::policies::ArenaState;
use crate::sync::{AtomicU64, Mutex, Ordering};
use asb_storage::{
    AccessContext, ConcurrentPageStore, IoStats, Page, PageError, PageId, PageMeta, PageStore,
    Result, StorageError,
};
use bytes::Bytes;
use std::sync::Arc;

struct Inner<S: PageStore> {
    store: S,
    buffer: BufferManager,
}

/// A cloneable, thread-safe handle to a buffered page store.
///
/// All operations take `&self`; cloning the handle shares the same buffer
/// pool. The coarse single-mutex design favours simplicity and exactly
/// reproducible statistics over parallel scalability, which is appropriate
/// for a reproduction study (and still safe and correct for applications).
pub struct SharedBuffer<S: PageStore> {
    inner: Arc<Mutex<Inner<S>>>,
    /// Commits that failed inside a [`PageWriteGuard`] drop; see
    /// [`write_drop_failures`](SharedBuffer::write_drop_failures).
    write_drop_failures: Arc<AtomicU64>,
}

impl<S: PageStore> Clone for SharedBuffer<S> {
    fn clone(&self) -> Self {
        SharedBuffer {
            inner: Arc::clone(&self.inner),
            write_drop_failures: Arc::clone(&self.write_drop_failures),
        }
    }
}

/// [`WriteSink`] half of a [`PageWriteGuard`]: commits publish through the
/// shared buffer's buffered-write path (WAL image first, frame dirtied,
/// `rec_lsn` stamped).
struct SharedSink<S: PageStore> {
    inner: Arc<Mutex<Inner<S>>>,
}

impl<S: PageStore + Send> WriteSink for SharedSink<S> {
    fn commit(&self, page: Page) -> Result<()> {
        let mut g = self.inner.lock();
        let Inner { store, buffer } = &mut *g;
        buffer.write_buffered(store, page)
    }
}

impl<S: PageStore> SharedBuffer<S> {
    /// Wraps `store` with `buffer` behind a shared handle.
    pub fn new(store: S, buffer: BufferManager) -> Self {
        SharedBuffer {
            inner: Arc::new(Mutex::new(Inner { store, buffer })),
            write_drop_failures: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Reads a page through the shared buffer, returning a pinned
    /// [`PageReadGuard`]. The pool mutex is released before the guard is
    /// returned: holding a guard pins its frame but blocks nobody.
    pub fn fetch(&self, id: PageId, ctx: AccessContext) -> Result<PageReadGuard> {
        let mut g = self.inner.lock();
        let Inner { store, buffer } = &mut *g;
        buffer.fetch(store, id, ctx)
    }

    /// [`fetch`](SharedBuffer::fetch), additionally reporting whether the
    /// request was a buffer hit. The classification is exact: the pool
    /// mutex is held across the fetch and the counter read-back, so no
    /// concurrent request can move the hit counter in between.
    pub fn fetch_classified(
        &self,
        id: PageId,
        ctx: AccessContext,
    ) -> Result<(PageReadGuard, bool)> {
        let mut g = self.inner.lock();
        let Inner { store, buffer } = &mut *g;
        let hits_before = buffer.stats().hits;
        let guard = buffer.fetch(store, id, ctx)?;
        Ok((guard, buffer.stats().hits > hits_before))
    }

    /// Reads a batch of pages under a single pool-lock acquisition,
    /// returning one *independent* `Result<(guard, hit), PageError>` per id
    /// in input order: a failing page fails its own slot without aborting
    /// its siblings (the partial-failure contract the serving layer's
    /// graceful degradation is built on).
    ///
    /// The batch runs the same two phases as
    /// [`ShardedBuffer::fetch_batch`](crate::ShardedBuffer::fetch_batch) —
    /// probe every distinct id first, then resolve the misses — so a
    /// batched replay through either pool records identical statistics
    /// (the property `tests/serve.rs` pins down). An id repeated within
    /// the batch is deferred until its first occurrence has resolved and
    /// classifies as the hit it would have been sequentially; a repeat of
    /// a failed id re-attempts with its own accounting, exactly as
    /// back-to-back sequential fetches would.
    pub fn fetch_batch(
        &self,
        ids: &[PageId],
        ctx: AccessContext,
    ) -> Vec<std::result::Result<(PageReadGuard, bool), PageError>> {
        type Slot = std::result::Result<(PageReadGuard, bool), PageError>;
        let mut g = self.inner.lock();
        let Inner { store, buffer } = &mut *g;
        let mut out: Vec<Option<Slot>> = (0..ids.len()).map(|_| None).collect();
        let mut seen = std::collections::HashSet::new();
        let mut deferred = vec![false; ids.len()];
        for (i, &id) in ids.iter().enumerate() {
            if !seen.insert(id) {
                deferred[i] = true;
            } else if let Some(guard) = buffer.probe(id, ctx) {
                out[i] = Some(Ok((guard, true)));
            }
        }
        for (i, &id) in ids.iter().enumerate() {
            if out[i].is_some() {
                continue;
            }
            let slot = if deferred[i] {
                let hits_before = buffer.stats().hits;
                buffer.fetch(store, id, ctx).map(|guard| {
                    let hit = buffer.stats().hits > hits_before;
                    (guard, hit)
                })
            } else {
                buffer
                    .fetch_missed(store, id, ctx)
                    .map(|guard| (guard, false))
            };
            out[i] = Some(slot.map_err(|e| PageError::new(id, e)));
        }
        // invariant: the resolve loop above fills every slot the probe
        // pass left empty, so no `None` survives to this point.
        out.into_iter()
            .map(|o| o.expect("outcome filled"))
            .collect()
    }

    /// Serves `id` from buffer-resident state only: a hit pins and returns
    /// the frame; a miss is counted in the pool's statistics and returns
    /// `None` **without touching the backing store** (no retry, no store
    /// read). The serving layer uses this behind an open circuit breaker,
    /// where the store is presumed down and a miss must degrade instead of
    /// burning retry budget.
    pub fn fetch_resident(&self, id: PageId, ctx: AccessContext) -> Option<PageReadGuard> {
        self.inner.lock().buffer.probe(id, ctx)
    }

    /// Reads a page for modification, returning a [`PageWriteGuard`] whose
    /// commit (or drop, best-effort) publishes through the buffered-write
    /// path.
    pub fn fetch_mut(&self, id: PageId, ctx: AccessContext) -> Result<PageWriteGuard>
    where
        S: Send + 'static,
    {
        let (page, token) = self.fetch(id, ctx)?.into_parts();
        Ok(PageWriteGuard::new(
            page,
            token,
            Box::new(SharedSink {
                inner: Arc::clone(&self.inner),
            }),
            Arc::clone(&self.write_drop_failures),
        ))
    }

    /// Writes a page through the shared buffer (write-through).
    pub fn write(&self, page: Page) -> Result<()> {
        let mut g = self.inner.lock();
        let Inner { store, buffer } = &mut *g;
        buffer.write_through(store, page)
    }

    /// Writes a page into the buffer only, deferring the store write to
    /// eviction or [`flush`](SharedBuffer::flush) (write-back caching).
    pub fn write_buffered(&self, page: Page) -> Result<()> {
        let mut g = self.inner.lock();
        let Inner { store, buffer } = &mut *g;
        buffer.write_buffered(store, page)
    }

    /// Writes every dirty frame back to the backing store.
    pub fn flush(&self) -> Result<()> {
        let mut g = self.inner.lock();
        let Inner { store, buffer } = &mut *g;
        buffer.flush(store)
    }

    /// Allocates a page in the backing store and admits it to the buffer.
    pub fn allocate(&self, meta: PageMeta, payload: Bytes) -> Result<PageId> {
        let mut g = self.inner.lock();
        let Inner { store, buffer } = &mut *g;
        buffer.allocate_through(store, meta, payload)
    }

    /// Frees a page and drops any buffered copy.
    pub fn free(&self, id: PageId) -> Result<()> {
        let mut g = self.inner.lock();
        let Inner { store, buffer } = &mut *g;
        buffer.free_through(store, id)
    }

    /// Buffer statistics snapshot.
    pub fn stats(&self) -> BufferStats {
        self.inner.lock().buffer.stats()
    }

    /// Number of dirty frames currently buffered.
    pub fn dirty_count(&self) -> usize {
        self.inner.lock().buffer.dirty_count()
    }

    /// Expert-arena snapshot (`None` for non-arena policies).
    pub fn arena_state(&self) -> Option<ArenaState> {
        self.inner.lock().buffer.arena_state()
    }

    /// History records retained for non-resident pages (unified
    /// definition: LRU-K HIST, 2Q ghosts, arena ghost caches).
    pub fn retained_history(&self) -> usize {
        self.inner.lock().buffer.retained_history()
    }

    /// Buffer capacity in pages.
    pub fn capacity(&self) -> usize {
        self.inner.lock().buffer.capacity()
    }

    /// Number of page guards currently alive against this pool.
    pub fn live_guards(&self) -> u64 {
        self.inner.lock().buffer.live_guards()
    }

    /// Commits that failed inside a [`PageWriteGuard`] drop, where no
    /// error can be returned. Non-zero means edits were lost — prefer
    /// explicit [`PageWriteGuard::commit`] on paths that must observe
    /// failures.
    pub fn write_drop_failures(&self) -> u64 {
        // relaxed-ok: monotonic telemetry, polled after writers quiesce.
        self.write_drop_failures.load(Ordering::Relaxed)
    }

    /// Clears the buffer (resident pages and statistics).
    pub fn clear(&self) {
        self.inner.lock().buffer.clear()
    }

    /// Runs `f` with exclusive access to the underlying store and buffer —
    /// an escape hatch for bulk operations.
    ///
    /// Fails with [`StorageError::GuardsOutstanding`] while any page guard
    /// is alive: a guard holds a pin the pool is contracted to honour, and
    /// `f` could mutate the store or buffer out from under it. The check
    /// is race-free — the pool mutex is held while the live-guard count is
    /// read *and* while `f` runs, and creating a guard requires that
    /// mutex.
    pub fn with_parts<R>(&self, f: impl FnOnce(&mut S, &mut BufferManager) -> R) -> Result<R> {
        let mut g = self.inner.lock();
        let live = g.buffer.live_guards();
        if live > 0 {
            return Err(StorageError::GuardsOutstanding(live));
        }
        let Inner { store, buffer } = &mut *g;
        Ok(f(store, buffer))
    }
}

impl<S: ConcurrentPageStore> SharedBuffer<S> {
    /// Physical I/O statistics of the backing store.
    pub fn io_stats(&self) -> IoStats {
        self.inner.lock().store.io_stats()
    }

    /// Resets the backing store's I/O statistics.
    ///
    /// [`clear`](SharedBuffer::clear) only resets *buffer* statistics; a
    /// measurement window that also counts physical accesses must call this
    /// as well, or the store's counters carry stale totals from before the
    /// clear.
    pub fn reset_io_stats(&self) {
        self.inner.lock().store.reset_io_stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::PolicyKind;
    use asb_geom::SpatialStats;
    use asb_storage::DiskManager;
    use std::thread;

    fn meta() -> PageMeta {
        PageMeta::data(SpatialStats::EMPTY)
    }

    #[test]
    fn shared_reads_across_threads() {
        let mut disk = DiskManager::new();
        let ids: Vec<PageId> = (0..32)
            .map(|i| disk.allocate(meta(), Bytes::from(vec![i as u8])).unwrap())
            .collect();
        let shared = SharedBuffer::new(disk, BufferManager::with_policy(PolicyKind::Lru, 16));

        let handles: Vec<_> = (0..4)
            .map(|t| {
                let shared = shared.clone();
                let ids = ids.clone();
                thread::spawn(move || {
                    for round in 0..50u64 {
                        let id = ids[(t * 7 + round as usize * 3) % ids.len()];
                        let page = shared
                            .fetch(id, AccessContext::query(asb_storage::QueryId::new(round)))
                            .unwrap();
                        assert_eq!(page.id, id);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let stats = shared.stats();
        assert_eq!(stats.logical_reads, 200);
        assert_eq!(stats.hits + stats.misses, stats.logical_reads);
        assert_eq!(shared.live_guards(), 0);
    }

    #[test]
    fn writes_are_visible_to_other_handles() {
        let mut disk = DiskManager::new();
        let id = disk.allocate(meta(), Bytes::from_static(b"old")).unwrap();
        let a = SharedBuffer::new(disk, BufferManager::with_policy(PolicyKind::Lru, 4));
        let b = a.clone();
        a.write(Page::new(id, meta(), Bytes::from_static(b"new")).unwrap())
            .unwrap();
        let got = b.fetch(id, AccessContext::default()).unwrap();
        assert_eq!(got.payload.as_ref(), b"new");
    }

    #[test]
    fn write_guard_round_trips_through_the_buffer() {
        let mut disk = DiskManager::new();
        let id = disk.allocate(meta(), Bytes::from_static(b"v1")).unwrap();
        let shared = SharedBuffer::new(disk, BufferManager::with_policy(PolicyKind::Lru, 4));
        let mut guard = shared.fetch_mut(id, AccessContext::default()).unwrap();
        guard.set_payload(Bytes::from_static(b"v2")).unwrap();
        guard.commit().unwrap();
        assert_eq!(shared.dirty_count(), 1);
        let read = shared.fetch(id, AccessContext::default()).unwrap();
        assert_eq!(read.payload.as_ref(), b"v2");
        drop(read);
        shared.flush().unwrap();
        assert_eq!(shared.dirty_count(), 0);
        assert_eq!(shared.write_drop_failures(), 0);
    }

    #[test]
    fn with_parts_is_gated_on_live_guards() {
        let mut disk = DiskManager::new();
        let id = disk.allocate(meta(), Bytes::from_static(b"x")).unwrap();
        let shared = SharedBuffer::new(disk, BufferManager::with_policy(PolicyKind::Lru, 4));
        let guard = shared.fetch(id, AccessContext::default()).unwrap();
        assert_eq!(
            shared.with_parts(|s, _| s.page_count()).unwrap_err(),
            StorageError::GuardsOutstanding(1)
        );
        drop(guard);
        assert_eq!(shared.with_parts(|s, _| s.page_count()).unwrap(), 1);
    }
}
