//! Thread-safe wrapper around a buffered page store.
//!
//! The single-threaded [`BufferManager`] is the
//! measurement vehicle for the paper's experiments; `SharedBuffer` packages
//! a buffer and its backing store behind one mutex (from the
//! [`crate::sync`] facade) so
//! multi-threaded applications (e.g. a query server answering window
//! queries from several sessions) can share one buffer pool.
//!
//! `SharedBuffer` serializes *every* request — including hits — behind one
//! mutex. For parallel serving, prefer
//! [`ShardedBuffer`](crate::ShardedBuffer), which stripes the pool across
//! independently locked shards; `SharedBuffer` remains the simplest choice
//! when requests are rare or exactly serialized statistics matter more than
//! throughput (it behaves like a `ShardedBuffer` with one shard whose
//! requests never overlap).

use crate::manager::{BufferManager, BufferStats};
use crate::sync::Mutex;
use asb_storage::{
    AccessContext, ConcurrentPageStore, IoStats, Page, PageId, PageMeta, PageStore, Result,
};
use bytes::Bytes;
use std::sync::Arc;

struct Inner<S: PageStore> {
    store: S,
    buffer: BufferManager,
}

/// A cloneable, thread-safe handle to a buffered page store.
///
/// All operations take `&self`; cloning the handle shares the same buffer
/// pool. The coarse single-mutex design favours simplicity and exactly
/// reproducible statistics over parallel scalability, which is appropriate
/// for a reproduction study (and still safe and correct for applications).
pub struct SharedBuffer<S: PageStore> {
    inner: Arc<Mutex<Inner<S>>>,
}

impl<S: PageStore> Clone for SharedBuffer<S> {
    fn clone(&self) -> Self {
        SharedBuffer {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<S: PageStore> SharedBuffer<S> {
    /// Wraps `store` with `buffer` behind a shared handle.
    pub fn new(store: S, buffer: BufferManager) -> Self {
        SharedBuffer {
            inner: Arc::new(Mutex::new(Inner { store, buffer })),
        }
    }

    /// Reads a page through the shared buffer.
    pub fn read(&self, id: PageId, ctx: AccessContext) -> Result<Page> {
        let mut g = self.inner.lock();
        let Inner { store, buffer } = &mut *g;
        buffer.read_through(store, id, ctx)
    }

    /// Writes a page through the shared buffer.
    pub fn write(&self, page: Page) -> Result<()> {
        let mut g = self.inner.lock();
        let Inner { store, buffer } = &mut *g;
        buffer.write_through(store, page)
    }

    /// Allocates a page in the backing store and admits it to the buffer.
    pub fn allocate(&self, meta: PageMeta, payload: Bytes) -> Result<PageId> {
        let mut g = self.inner.lock();
        let Inner { store, buffer } = &mut *g;
        buffer.allocate_through(store, meta, payload)
    }

    /// Frees a page and drops any buffered copy.
    pub fn free(&self, id: PageId) -> Result<()> {
        let mut g = self.inner.lock();
        let Inner { store, buffer } = &mut *g;
        buffer.free_through(store, id)
    }

    /// Buffer statistics snapshot.
    pub fn stats(&self) -> BufferStats {
        self.inner.lock().buffer.stats()
    }

    /// Clears the buffer (resident pages and statistics).
    pub fn clear(&self) {
        self.inner.lock().buffer.clear()
    }

    /// Runs `f` with exclusive access to the underlying store and buffer —
    /// an escape hatch for bulk operations.
    pub fn with_parts<R>(&self, f: impl FnOnce(&mut S, &mut BufferManager) -> R) -> R {
        let mut g = self.inner.lock();
        let Inner { store, buffer } = &mut *g;
        f(store, buffer)
    }
}

impl<S: ConcurrentPageStore> SharedBuffer<S> {
    /// Physical I/O statistics of the backing store.
    pub fn io_stats(&self) -> IoStats {
        self.inner.lock().store.io_stats()
    }

    /// Resets the backing store's I/O statistics.
    ///
    /// [`clear`](SharedBuffer::clear) only resets *buffer* statistics; a
    /// measurement window that also counts physical accesses must call this
    /// as well, or the store's counters carry stale totals from before the
    /// clear.
    pub fn reset_io_stats(&self) {
        self.inner.lock().store.reset_io_stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::PolicyKind;
    use asb_geom::SpatialStats;
    use asb_storage::DiskManager;
    use std::thread;

    fn meta() -> PageMeta {
        PageMeta::data(SpatialStats::EMPTY)
    }

    #[test]
    fn shared_reads_across_threads() {
        let mut disk = DiskManager::new();
        let ids: Vec<PageId> = (0..32)
            .map(|i| disk.allocate(meta(), Bytes::from(vec![i as u8])).unwrap())
            .collect();
        let shared = SharedBuffer::new(disk, BufferManager::with_policy(PolicyKind::Lru, 16));

        let handles: Vec<_> = (0..4)
            .map(|t| {
                let shared = shared.clone();
                let ids = ids.clone();
                thread::spawn(move || {
                    for round in 0..50u64 {
                        let id = ids[(t * 7 + round as usize * 3) % ids.len()];
                        let page = shared
                            .read(id, AccessContext::query(asb_storage::QueryId::new(round)))
                            .unwrap();
                        assert_eq!(page.id, id);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let stats = shared.stats();
        assert_eq!(stats.logical_reads, 200);
        assert_eq!(stats.hits + stats.misses, stats.logical_reads);
    }

    #[test]
    fn writes_are_visible_to_other_handles() {
        let mut disk = DiskManager::new();
        let id = disk.allocate(meta(), Bytes::from_static(b"old")).unwrap();
        let a = SharedBuffer::new(disk, BufferManager::with_policy(PolicyKind::Lru, 4));
        let b = a.clone();
        a.write(Page::new(id, meta(), Bytes::from_static(b"new")).unwrap())
            .unwrap();
        let got = b.read(id, AccessContext::default()).unwrap();
        assert_eq!(got.payload.as_ref(), b"new");
    }
}
