//! A doubly-linked recency/insertion order over hashable keys.
//!
//! All replacement policies need the same primitive: an ordered set of page
//! ids supporting O(1) insert-at-back, remove, move-to-back and
//! pop-from-front. `LinkedOrder` implements it as an intrusive doubly-linked
//! list over a slab (`Vec` of nodes with a free list) plus a
//! `HashMap<K, slot>` index — no per-operation allocation after warm-up.

use std::collections::HashMap;
use std::hash::Hash;

const NIL: usize = usize::MAX;

#[derive(Debug, Clone)]
struct Node<K> {
    key: K,
    prev: usize,
    next: usize,
}

/// An ordered set with O(1) queue/recency operations.
///
/// Front = oldest (LRU / FIFO victim side), back = newest (MRU side).
#[derive(Debug, Clone)]
pub(crate) struct LinkedOrder<K: Eq + Hash + Copy> {
    nodes: Vec<Node<K>>,
    index: HashMap<K, usize>,
    free: Vec<usize>,
    head: usize,
    tail: usize,
}

impl<K: Eq + Hash + Copy> Default for LinkedOrder<K> {
    fn default() -> Self {
        LinkedOrder::new()
    }
}

impl<K: Eq + Hash + Copy> LinkedOrder<K> {
    /// Creates an empty order.
    pub fn new() -> Self {
        LinkedOrder {
            nodes: Vec::new(),
            index: HashMap::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
        }
    }

    /// Number of keys.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Whether the order is empty.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Whether `key` is present.
    pub fn contains(&self, key: &K) -> bool {
        self.index.contains_key(key)
    }

    /// Appends `key` at the back (newest). Returns `false` (and does
    /// nothing) if the key is already present.
    pub fn push_back(&mut self, key: K) -> bool {
        if self.index.contains_key(&key) {
            return false;
        }
        let slot = self.alloc(Node {
            key,
            prev: self.tail,
            next: NIL,
        });
        if self.tail != NIL {
            self.nodes[self.tail].next = slot;
        } else {
            self.head = slot;
        }
        self.tail = slot;
        self.index.insert(key, slot);
        true
    }

    /// Removes and returns the front (oldest) key.
    #[allow(dead_code)] // part of the complete queue API; used by tests
    pub fn pop_front(&mut self) -> Option<K> {
        let key = self.front()?;
        self.remove(&key);
        Some(key)
    }

    /// The front (oldest) key without removing it.
    pub fn front(&self) -> Option<K> {
        (self.head != NIL).then(|| self.nodes[self.head].key)
    }

    /// The back (newest) key without removing it.
    #[allow(dead_code)] // part of the complete queue API; used by tests
    pub fn back(&self) -> Option<K> {
        (self.tail != NIL).then(|| self.nodes[self.tail].key)
    }

    /// Removes `key`. Returns `true` if it was present.
    pub fn remove(&mut self, key: &K) -> bool {
        let Some(slot) = self.index.remove(key) else {
            return false;
        };
        self.unlink(slot);
        self.free.push(slot);
        true
    }

    /// Moves `key` to the back (newest). Returns `false` if absent.
    pub fn move_to_back(&mut self, key: &K) -> bool {
        let Some(&slot) = self.index.get(key) else {
            return false;
        };
        if slot == self.tail {
            return true;
        }
        self.unlink(slot);
        let node = &mut self.nodes[slot];
        node.prev = self.tail;
        node.next = NIL;
        if self.tail != NIL {
            self.nodes[self.tail].next = slot;
        } else {
            self.head = slot;
        }
        self.tail = slot;
        true
    }

    /// Iterates keys from front (oldest) to back (newest).
    pub fn iter(&self) -> Iter<'_, K> {
        Iter {
            order: self,
            cursor: self.head,
        }
    }

    fn alloc(&mut self, node: Node<K>) -> usize {
        if let Some(slot) = self.free.pop() {
            self.nodes[slot] = node;
            slot
        } else {
            self.nodes.push(node);
            self.nodes.len() - 1
        }
    }

    fn unlink(&mut self, slot: usize) {
        let (prev, next) = (self.nodes[slot].prev, self.nodes[slot].next);
        if prev != NIL {
            self.nodes[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.nodes[next].prev = prev;
        } else {
            self.tail = prev;
        }
    }
}

/// Front-to-back iterator over a [`LinkedOrder`].
pub(crate) struct Iter<'a, K: Eq + Hash + Copy> {
    order: &'a LinkedOrder<K>,
    cursor: usize,
}

impl<'a, K: Eq + Hash + Copy> Iterator for Iter<'a, K> {
    type Item = &'a K;

    fn next(&mut self) -> Option<&'a K> {
        if self.cursor == NIL {
            return None;
        }
        let node = &self.order.nodes[self.cursor];
        self.cursor = node.next;
        Some(&node.key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys(order: &LinkedOrder<u32>) -> Vec<u32> {
        order.iter().copied().collect()
    }

    #[test]
    fn push_and_iterate_in_order() {
        let mut o = LinkedOrder::new();
        for k in [1u32, 2, 3] {
            assert!(o.push_back(k));
        }
        assert_eq!(keys(&o), vec![1, 2, 3]);
        assert_eq!(o.front(), Some(1));
        assert_eq!(o.back(), Some(3));
        assert_eq!(o.len(), 3);
    }

    #[test]
    fn duplicate_push_is_rejected() {
        let mut o = LinkedOrder::new();
        assert!(o.push_back(1u32));
        assert!(!o.push_back(1));
        assert_eq!(o.len(), 1);
    }

    #[test]
    fn pop_front_is_fifo() {
        let mut o = LinkedOrder::new();
        for k in [1u32, 2, 3] {
            o.push_back(k);
        }
        assert_eq!(o.pop_front(), Some(1));
        assert_eq!(o.pop_front(), Some(2));
        assert_eq!(o.pop_front(), Some(3));
        assert_eq!(o.pop_front(), None);
        assert!(o.is_empty());
    }

    #[test]
    fn move_to_back_models_lru_touch() {
        let mut o = LinkedOrder::new();
        for k in [1u32, 2, 3] {
            o.push_back(k);
        }
        assert!(o.move_to_back(&1));
        assert_eq!(keys(&o), vec![2, 3, 1]);
        // Moving the tail is a no-op but succeeds.
        assert!(o.move_to_back(&1));
        assert_eq!(keys(&o), vec![2, 3, 1]);
        assert!(!o.move_to_back(&99));
    }

    #[test]
    fn remove_middle_front_back() {
        let mut o = LinkedOrder::new();
        for k in [1u32, 2, 3, 4] {
            o.push_back(k);
        }
        assert!(o.remove(&2));
        assert_eq!(keys(&o), vec![1, 3, 4]);
        assert!(o.remove(&1));
        assert_eq!(keys(&o), vec![3, 4]);
        assert!(o.remove(&4));
        assert_eq!(keys(&o), vec![3]);
        assert!(!o.remove(&4));
    }

    #[test]
    fn slots_are_recycled() {
        let mut o = LinkedOrder::new();
        for k in 0..100u32 {
            o.push_back(k);
        }
        for k in 0..100u32 {
            o.remove(&k);
        }
        let slab_size = o.nodes.len();
        for k in 100..200u32 {
            o.push_back(k);
        }
        assert_eq!(o.nodes.len(), slab_size, "free slots must be reused");
    }

    #[test]
    fn stress_against_vec_model() {
        // Deterministic pseudo-random op sequence validated against a
        // Vec-based reference model.
        let mut o = LinkedOrder::new();
        let mut model: Vec<u32> = Vec::new();
        let mut state = 0x9E3779B97F4A7C15u64;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..10_000 {
            let k = (rng() % 50) as u32;
            match rng() % 4 {
                0 => {
                    if o.push_back(k) {
                        model.push(k);
                    }
                }
                1 => {
                    let removed = o.remove(&k);
                    let pos = model.iter().position(|&x| x == k);
                    assert_eq!(removed, pos.is_some());
                    if let Some(p) = pos {
                        model.remove(p);
                    }
                }
                2 => {
                    let moved = o.move_to_back(&k);
                    let pos = model.iter().position(|&x| x == k);
                    assert_eq!(moved, pos.is_some());
                    if let Some(p) = pos {
                        let v = model.remove(p);
                        model.push(v);
                    }
                }
                _ => {
                    assert_eq!(o.pop_front(), (!model.is_empty()).then(|| model.remove(0)));
                }
            }
            assert_eq!(o.len(), model.len());
        }
        assert_eq!(keys(&o), model);
    }
}
