//! RAII page guards: the buffer's read/write access tokens.
//!
//! A [`PageReadGuard`] is handed out by the `fetch` family and represents
//! one pin on the underlying frame: while any guard for a page is alive,
//! the frame cannot be evicted. The pin is a pair of shared atomic
//! counters (the frame's pin count and the pool's live-guard count), so
//! dropping a guard releases the pin without taking any lock — shard locks
//! are released before user code ever touches the page bytes, and drop is
//! wait-free.
//!
//! A [`PageWriteGuard`] additionally carries a private working copy of the
//! page and a commit sink back into the owning pool. Mutations edit the
//! working copy; [`commit`](PageWriteGuard::commit) (or drop, best-effort)
//! publishes it through the pool's buffered-write path, which appends the
//! WAL image first, marks the frame dirty and stamps its `rec_lsn` — the
//! same WAL-before-dirty protocol as `write_buffered`.
//!
//! Pin increments happen under the owning shard's lock (guards are only
//! created by the buffer while it is mutably borrowed); decrements are
//! lock-free. The eviction scan reads the pin count under the same shard
//! lock, so a frame observed unpinned there is genuinely evictable: no new
//! pin can appear without the lock.

use crate::sync::{AtomicU64, Ordering};
use asb_storage::{Page, PageMeta, Result};
use bytes::Bytes;
use std::sync::Arc;

/// One pin on a buffered frame plus one tick of the pool's live-guard
/// count. Construction pins (under the owning buffer's borrow); drop
/// unpins without locking. Tokens stay sound even if the frame is
/// invalidated or the pool cleared while they are live: the counters are
/// shared, so the decrement is never lost and never misdirected.
#[derive(Debug)]
pub(crate) struct PinToken {
    pins: Arc<AtomicU64>,
    live: Arc<AtomicU64>,
}

impl PinToken {
    /// Pins: increments both counters. Called while the owning buffer is
    /// mutably borrowed (i.e. under the shard lock), which is what makes
    /// the eviction scan's unpinned-check race-free.
    pub(crate) fn new(pins: Arc<AtomicU64>, live: Arc<AtomicU64>) -> Self {
        pins.fetch_add(1, Ordering::SeqCst);
        live.fetch_add(1, Ordering::SeqCst);
        PinToken { pins, live }
    }
}

impl Drop for PinToken {
    fn drop(&mut self) {
        self.pins.fetch_sub(1, Ordering::SeqCst);
        self.live.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Shared read access to a buffered page; the frame stays pinned (never
/// evicted) until the guard drops.
///
/// The guard owns a copy of the page (payloads are cheaply-cloned
/// [`Bytes`]), so it stays valid even across pool operations that touch
/// the frame; the pin's job is residency, not aliasing.
#[derive(Debug)]
pub struct PageReadGuard {
    page: Page,
    token: PinToken,
}

impl PageReadGuard {
    pub(crate) fn new(page: Page, token: PinToken) -> Self {
        PageReadGuard { page, token }
    }

    /// The guarded page.
    pub fn page(&self) -> &Page {
        &self.page
    }

    /// Consumes the guard (releasing the pin) and returns the page.
    pub fn into_page(self) -> Page {
        self.page
    }

    /// Splits into the page and the still-held pin (for upgrading into a
    /// write guard without unpinning in between).
    pub(crate) fn into_parts(self) -> (Page, PinToken) {
        (self.page, self.token)
    }
}

impl std::ops::Deref for PageReadGuard {
    type Target = Page;
    fn deref(&self) -> &Page {
        &self.page
    }
}

/// The pool-side half of a write guard: publishes the edited page through
/// the pool's buffered-write path (WAL append, dirty mark, `rec_lsn`).
pub(crate) trait WriteSink: Send + Sync {
    fn commit(&self, page: Page) -> Result<()>;
}

/// Exclusive read-modify-write access to a buffered page.
///
/// Mutations edit a private working copy; nothing is visible to other
/// sessions until [`commit`](PageWriteGuard::commit) publishes it through
/// the pool (WAL image first, then the frame is dirtied and its `rec_lsn`
/// stamped). Dropping a guard with unpublished edits commits best-effort:
/// a failure there cannot be returned, so it is counted in the pool's
/// `write_drop_failures` instead — call `commit` to observe errors.
pub struct PageWriteGuard {
    page: Page,
    touched: bool,
    committed: bool,
    sink: Box<dyn WriteSink>,
    drop_failures: Arc<AtomicU64>,
    _token: PinToken,
}

impl PageWriteGuard {
    pub(crate) fn new(
        page: Page,
        token: PinToken,
        sink: Box<dyn WriteSink>,
        drop_failures: Arc<AtomicU64>,
    ) -> Self {
        PageWriteGuard {
            page,
            touched: false,
            committed: false,
            sink,
            drop_failures,
            _token: token,
        }
    }

    /// The current (possibly edited, not yet committed) page.
    pub fn page(&self) -> &Page {
        &self.page
    }

    /// Replaces the payload, recomputing the checksum.
    pub fn set_payload(&mut self, payload: Bytes) -> Result<()> {
        self.page = Page::new(self.page.id, self.page.meta, payload)?;
        self.touched = true;
        Ok(())
    }

    /// Replaces payload and metadata together, recomputing the checksum.
    pub fn set_page(&mut self, meta: PageMeta, payload: Bytes) -> Result<()> {
        self.page = Page::new(self.page.id, meta, payload)?;
        self.touched = true;
        Ok(())
    }

    /// Publishes the edits through the pool's buffered-write path and
    /// releases the guard. No-op (still releasing) if nothing was edited.
    pub fn commit(mut self) -> Result<()> {
        self.committed = true;
        if self.touched {
            self.sink.commit(self.page.clone())
        } else {
            Ok(())
        }
    }

    /// Releases the guard, discarding any uncommitted edits.
    pub fn discard(mut self) {
        self.committed = true;
    }
}

impl std::ops::Deref for PageWriteGuard {
    type Target = Page;
    fn deref(&self) -> &Page {
        &self.page
    }
}

impl Drop for PageWriteGuard {
    fn drop(&mut self) {
        if self.touched && !self.committed && self.sink.commit(self.page.clone()).is_err() {
            // relaxed-ok: monotonic failure telemetry; readers only poll
            // it after quiescing their writers.
            self.drop_failures.fetch_add(1, Ordering::Relaxed);
        }
    }
}

impl std::fmt::Debug for PageWriteGuard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PageWriteGuard")
            .field("page", &self.page.id)
            .field("touched", &self.touched)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asb_geom::SpatialStats;
    use asb_storage::PageId;

    fn page(raw: u64, tag: u8) -> Page {
        Page::new(
            PageId::new(raw),
            PageMeta::data(SpatialStats::EMPTY),
            Bytes::from(vec![tag]),
        )
        .expect("page")
    }

    fn counters() -> (Arc<AtomicU64>, Arc<AtomicU64>) {
        (Arc::new(AtomicU64::new(0)), Arc::new(AtomicU64::new(0)))
    }

    #[test]
    fn token_balances_both_counters() {
        let (pins, live) = counters();
        {
            let _a = PinToken::new(Arc::clone(&pins), Arc::clone(&live));
            let _b = PinToken::new(Arc::clone(&pins), Arc::clone(&live));
            assert_eq!(pins.load(Ordering::SeqCst), 2);
            assert_eq!(live.load(Ordering::SeqCst), 2);
        }
        assert_eq!(pins.load(Ordering::SeqCst), 0);
        assert_eq!(live.load(Ordering::SeqCst), 0);
    }

    #[test]
    fn read_guard_derefs_to_the_page() {
        let (pins, live) = counters();
        let g = PageReadGuard::new(page(3, 7), PinToken::new(pins, Arc::clone(&live)));
        assert_eq!(g.id, PageId::new(3));
        assert_eq!(g.payload.as_ref(), &[7]);
        assert_eq!(g.page().id, PageId::new(3));
        let p = g.into_page();
        assert_eq!(p.payload.as_ref(), &[7]);
        assert_eq!(live.load(Ordering::SeqCst), 0);
    }

    struct Recording(Arc<crate::sync::Mutex<Vec<Page>>>);
    impl WriteSink for Recording {
        fn commit(&self, page: Page) -> Result<()> {
            self.0.lock().push(page);
            Ok(())
        }
    }

    fn write_guard(sink_log: &Arc<crate::sync::Mutex<Vec<Page>>>) -> PageWriteGuard {
        let (pins, live) = counters();
        PageWriteGuard::new(
            page(5, 1),
            PinToken::new(pins, live),
            Box::new(Recording(Arc::clone(sink_log))),
            Arc::new(AtomicU64::new(0)),
        )
    }

    #[test]
    fn untouched_write_guard_commits_nothing() {
        let log = Arc::new(crate::sync::Mutex::new(Vec::new()));
        drop(write_guard(&log));
        write_guard(&log).commit().expect("commit");
        assert!(log.lock().is_empty());
    }

    #[test]
    fn edited_write_guard_commits_on_drop() {
        let log = Arc::new(crate::sync::Mutex::new(Vec::new()));
        let mut g = write_guard(&log);
        g.set_payload(Bytes::from_static(&[9])).expect("payload");
        drop(g);
        let committed = log.lock();
        assert_eq!(committed.len(), 1);
        assert_eq!(committed[0].payload.as_ref(), &[9]);
    }

    #[test]
    fn discard_drops_edits() {
        let log = Arc::new(crate::sync::Mutex::new(Vec::new()));
        let mut g = write_guard(&log);
        g.set_payload(Bytes::from_static(&[9])).expect("payload");
        g.discard();
        assert!(log.lock().is_empty());
    }
}
