//! Static combination of LRU and spatial replacement (Section 4.1).

use crate::order::LinkedOrder;
use crate::policy::{PolicyEvents, ReplacementPolicy, VictimRanker};
use asb_geom::SpatialCriterion;
use asb_storage::{AccessContext, Page, PageId};
use std::collections::HashMap;

/// **SLRU**: "1.) compute a set of candidates by using LRU and 2.) select
/// the page to be dropped out of the buffer from the candidate set by using
/// a spatial page-replacement algorithm."
///
/// The candidate set consists of the `candidate_fraction * capacity`
/// least-recently-used pages; the page with the smallest spatial criterion
/// among them is evicted. "The larger the candidate set, the larger is the
/// influence of the spatial page-replacement algorithm" — a fraction of 1.0
/// degenerates to the pure spatial policy, a fraction of ~0 to plain LRU.
#[derive(Debug)]
pub struct SlruPolicy {
    criterion: SpatialCriterion,
    candidate_count: usize,
    crit: HashMap<PageId, f64>,
    order: LinkedOrder<PageId>,
    label: String,
}

impl SlruPolicy {
    /// Creates an SLRU policy for a buffer of `capacity` pages with the
    /// given candidate-set fraction (the paper evaluates 0.25 and 0.5).
    ///
    /// # Panics
    /// Panics if `candidate_fraction` is not in `(0, 1]`.
    pub fn new(capacity: usize, candidate_fraction: f64, criterion: SpatialCriterion) -> Self {
        assert!(
            candidate_fraction > 0.0 && candidate_fraction <= 1.0,
            "candidate fraction must be in (0, 1]"
        );
        let candidate_count = ((capacity as f64 * candidate_fraction).round() as usize).max(1);
        SlruPolicy {
            criterion,
            candidate_count,
            crit: HashMap::new(),
            order: LinkedOrder::new(),
            label: format!("SLRU {:.0}%", candidate_fraction * 100.0),
        }
    }

    /// Size of the (static) candidate set in pages.
    pub fn candidate_count(&self) -> usize {
        self.candidate_count
    }
}

impl PolicyEvents for SlruPolicy {
    fn on_insert(&mut self, page: &Page, _ctx: AccessContext, _now: u64) {
        self.crit
            .insert(page.id, page.meta.stats.criterion(self.criterion));
        self.order.push_back(page.id);
    }

    fn on_hit(&mut self, page: &Page, _ctx: AccessContext, _now: u64) {
        self.order.move_to_back(&page.id);
    }

    fn on_update(&mut self, page: &Page) {
        if self.crit.contains_key(&page.id) {
            self.crit
                .insert(page.id, page.meta.stats.criterion(self.criterion));
        }
    }

    fn on_remove(&mut self, id: PageId) {
        self.crit.remove(&id);
        self.order.remove(&id);
    }
}

impl VictimRanker for SlruPolicy {
    fn nominate(
        &mut self,
        _ctx: AccessContext,
        evictable: &dyn Fn(PageId) -> bool,
    ) -> Option<PageId> {
        // Walk from the LRU end, gathering up to `candidate_count`
        // evictable candidates; pick the smallest criterion among them
        // (first-found wins ties, i.e. LRU tie-break).
        let mut seen = 0usize;
        let mut victim: Option<(PageId, f64)> = None;
        for &id in self.order.iter() {
            if !evictable(id) {
                continue;
            }
            seen += 1;
            let c = self.crit[&id];
            if victim.is_none_or(|(_, best)| c < best) {
                victim = Some((id, c));
            }
            if seen >= self.candidate_count {
                break;
            }
        }
        victim.map(|(id, _)| id)
    }
}

impl ReplacementPolicy for SlruPolicy {
    fn name(&self) -> String {
        self.label.clone()
    }

    fn candidate_size(&self) -> Option<usize> {
        Some(self.candidate_count)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asb_geom::{Rect, SpatialStats};
    use asb_storage::PageMeta;
    use bytes::Bytes;

    fn page_area(raw: u64, side: f64) -> Page {
        let meta = PageMeta::data(SpatialStats::from_rects(&[Rect::new(0.0, 0.0, side, side)]));
        Page::new(PageId::new(raw), meta, Bytes::new()).unwrap()
    }

    fn ctx() -> AccessContext {
        AccessContext::default()
    }

    fn all(_: PageId) -> bool {
        true
    }

    #[test]
    fn candidate_count_is_rounded_and_clamped() {
        assert_eq!(
            SlruPolicy::new(100, 0.25, SpatialCriterion::Area).candidate_count(),
            25
        );
        assert_eq!(
            SlruPolicy::new(100, 0.5, SpatialCriterion::Area).candidate_count(),
            50
        );
        assert_eq!(
            SlruPolicy::new(2, 0.25, SpatialCriterion::Area).candidate_count(),
            1
        );
    }

    #[test]
    #[should_panic(expected = "fraction")]
    fn zero_fraction_is_rejected() {
        let _ = SlruPolicy::new(100, 0.0, SpatialCriterion::Area);
    }

    #[test]
    fn spatial_choice_is_limited_to_lru_candidates() {
        // Buffer of 4, candidate set 2: the two least-recently-used pages.
        let mut p = SlruPolicy::new(4, 0.5, SpatialCriterion::Area);
        p.on_insert(&page_area(1, 5.0), ctx(), 1); // LRU, area 25
        p.on_insert(&page_area(2, 4.0), ctx(), 2); // area 16
        p.on_insert(&page_area(3, 1.0), ctx(), 3); // smallest area, but MRU side
        p.on_insert(&page_area(4, 2.0), ctx(), 4);
        // Candidates are pages 1 and 2; the globally smallest page (3) is
        // protected by its recency. Victim: smaller of {25, 16} -> page 2.
        assert_eq!(p.select_victim(ctx(), &all), Some(PageId::new(2)));
    }

    #[test]
    fn full_fraction_degenerates_to_pure_spatial() {
        let mut p = SlruPolicy::new(3, 1.0, SpatialCriterion::Area);
        p.on_insert(&page_area(1, 5.0), ctx(), 1);
        p.on_insert(&page_area(2, 4.0), ctx(), 2);
        p.on_insert(&page_area(3, 1.0), ctx(), 3);
        assert_eq!(p.select_victim(ctx(), &all), Some(PageId::new(3)));
    }

    #[test]
    fn hits_move_pages_out_of_the_candidate_zone() {
        let mut p = SlruPolicy::new(4, 0.25, SpatialCriterion::Area); // candidates: 1 page
        p.on_insert(&page_area(1, 1.0), ctx(), 1);
        p.on_insert(&page_area(2, 9.0), ctx(), 2);
        // Touch page 1: page 2 becomes the sole candidate.
        p.on_hit(&page_area(1, 1.0), ctx(), 3);
        assert_eq!(p.select_victim(ctx(), &all), Some(PageId::new(2)));
    }

    #[test]
    fn pinned_pages_do_not_consume_candidate_slots() {
        let mut p = SlruPolicy::new(4, 0.5, SpatialCriterion::Area); // 2 candidates
        p.on_insert(&page_area(1, 1.0), ctx(), 1);
        p.on_insert(&page_area(2, 2.0), ctx(), 2);
        p.on_insert(&page_area(3, 9.0), ctx(), 3);
        // Pages 1 and 2 pinned: candidates become {3}, the next evictable.
        let v = p.select_victim(ctx(), &|id| id.raw() > 2);
        assert_eq!(v, Some(PageId::new(3)));
    }
}
