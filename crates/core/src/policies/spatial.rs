//! Pure spatial page replacement (Section 2.3 of the paper).

use crate::order::LinkedOrder;
use crate::policy::{PolicyEvents, ReplacementPolicy, VictimRanker};
use asb_geom::SpatialCriterion;
use asb_storage::{AccessContext, Page, PageId};
use std::collections::HashMap;

/// Spatial page replacement: evict the page with the **smallest**
/// `spatialCrit(p)` for the chosen criterion (A, EA, M, EM or EO); the LRU
/// strategy breaks ties, exactly as in the paper:
///
/// 1. `C := { p | p ∈ buffer ∧ (q ∈ buffer ⇒ spatialCrit(p) ≤ spatialCrit(q)) }`
/// 2. if `|C| > 1`, the victim is determined from `C` by LRU.
#[derive(Debug)]
pub struct SpatialPolicy {
    criterion: SpatialCriterion,
    crit: HashMap<PageId, f64>,
    /// LRU order; iterating from the front visits least-recently-used pages
    /// first, which makes "first minimum found" the LRU tie-break.
    order: LinkedOrder<PageId>,
}

impl SpatialPolicy {
    /// Creates a spatial policy with the given criterion.
    pub fn new(criterion: SpatialCriterion) -> Self {
        SpatialPolicy {
            criterion,
            crit: HashMap::new(),
            order: LinkedOrder::new(),
        }
    }

    /// The configured criterion.
    pub fn criterion(&self) -> SpatialCriterion {
        self.criterion
    }
}

impl PolicyEvents for SpatialPolicy {
    fn on_insert(&mut self, page: &Page, _ctx: AccessContext, _now: u64) {
        self.crit
            .insert(page.id, page.meta.stats.criterion(self.criterion));
        self.order.push_back(page.id);
    }

    fn on_hit(&mut self, page: &Page, _ctx: AccessContext, _now: u64) {
        self.order.move_to_back(&page.id);
    }

    fn on_update(&mut self, page: &Page) {
        if self.crit.contains_key(&page.id) {
            self.crit
                .insert(page.id, page.meta.stats.criterion(self.criterion));
        }
    }

    fn on_remove(&mut self, id: PageId) {
        self.crit.remove(&id);
        self.order.remove(&id);
    }
}

impl VictimRanker for SpatialPolicy {
    fn nominate(
        &mut self,
        _ctx: AccessContext,
        evictable: &dyn Fn(PageId) -> bool,
    ) -> Option<PageId> {
        let mut victim: Option<(PageId, f64)> = None;
        for &id in self.order.iter() {
            if !evictable(id) {
                continue;
            }
            let c = self.crit[&id];
            // Strict '<' keeps the earliest (least recently used) page on
            // ties — the paper's LRU tie-break.
            if victim.is_none_or(|(_, best)| c < best) {
                victim = Some((id, c));
            }
        }
        victim.map(|(id, _)| id)
    }
}

impl ReplacementPolicy for SpatialPolicy {
    fn name(&self) -> String {
        self.criterion.short_name().into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asb_geom::{Rect, SpatialStats};
    use asb_storage::PageMeta;
    use bytes::Bytes;

    fn page_area(raw: u64, rect: Rect) -> Page {
        let meta = PageMeta::data(SpatialStats::from_rects(&[rect]));
        Page::new(PageId::new(raw), meta, Bytes::new()).unwrap()
    }

    fn ctx() -> AccessContext {
        AccessContext::default()
    }

    fn all(_: PageId) -> bool {
        true
    }

    #[test]
    fn smallest_area_is_evicted_first() {
        let mut p = SpatialPolicy::new(SpatialCriterion::Area);
        p.on_insert(&page_area(1, Rect::new(0.0, 0.0, 10.0, 10.0)), ctx(), 1);
        p.on_insert(&page_area(2, Rect::new(0.0, 0.0, 1.0, 1.0)), ctx(), 2);
        p.on_insert(&page_area(3, Rect::new(0.0, 0.0, 5.0, 5.0)), ctx(), 3);
        assert_eq!(p.select_victim(ctx(), &all), Some(PageId::new(2)));
    }

    #[test]
    fn recency_does_not_override_criterion() {
        let mut p = SpatialPolicy::new(SpatialCriterion::Area);
        p.on_insert(&page_area(1, Rect::new(0.0, 0.0, 1.0, 1.0)), ctx(), 1);
        p.on_insert(&page_area(2, Rect::new(0.0, 0.0, 9.0, 9.0)), ctx(), 2);
        // Touching the small page does not save it.
        p.on_hit(&page_area(1, Rect::new(0.0, 0.0, 1.0, 1.0)), ctx(), 3);
        assert_eq!(p.select_victim(ctx(), &all), Some(PageId::new(1)));
    }

    #[test]
    fn ties_break_by_lru() {
        let same = Rect::new(0.0, 0.0, 2.0, 2.0);
        let mut p = SpatialPolicy::new(SpatialCriterion::Area);
        p.on_insert(&page_area(1, same), ctx(), 1);
        p.on_insert(&page_area(2, same), ctx(), 2);
        p.on_insert(&page_area(3, same), ctx(), 3);
        p.on_hit(&page_area(1, same), ctx(), 4);
        assert_eq!(p.select_victim(ctx(), &all), Some(PageId::new(2)));
    }

    #[test]
    fn update_refreshes_criterion() {
        let mut p = SpatialPolicy::new(SpatialCriterion::Area);
        p.on_insert(&page_area(1, Rect::new(0.0, 0.0, 1.0, 1.0)), ctx(), 1);
        p.on_insert(&page_area(2, Rect::new(0.0, 0.0, 5.0, 5.0)), ctx(), 2);
        // Page 1 grows (e.g. an insertion enlarged its MBR).
        p.on_update(&page_area(1, Rect::new(0.0, 0.0, 20.0, 20.0)));
        assert_eq!(p.select_victim(ctx(), &all), Some(PageId::new(2)));
    }

    #[test]
    fn respects_evictable_filter() {
        let mut p = SpatialPolicy::new(SpatialCriterion::Area);
        p.on_insert(&page_area(1, Rect::new(0.0, 0.0, 1.0, 1.0)), ctx(), 1);
        p.on_insert(&page_area(2, Rect::new(0.0, 0.0, 5.0, 5.0)), ctx(), 2);
        let v = p.select_victim(ctx(), &|id| id != PageId::new(1));
        assert_eq!(v, Some(PageId::new(2)));
    }

    #[test]
    fn margin_criterion_prefers_thin_pages_to_stay() {
        // A long thin page: area 1 but margin 20.2 > square's 8.
        let thin = Rect::new(0.0, 0.0, 10.0, 0.1);
        let square = Rect::new(0.0, 0.0, 2.0, 2.0);
        let mut p = SpatialPolicy::new(SpatialCriterion::Margin);
        p.on_insert(&page_area(1, thin), ctx(), 1);
        p.on_insert(&page_area(2, square), ctx(), 2);
        assert_eq!(p.select_victim(ctx(), &all), Some(PageId::new(2)));
        // Under the area criterion the thin page would be the victim.
        let mut p = SpatialPolicy::new(SpatialCriterion::Area);
        p.on_insert(&page_area(1, thin), ctx(), 1);
        p.on_insert(&page_area(2, square), ctx(), 2);
        assert_eq!(p.select_victim(ctx(), &all), Some(PageId::new(1)));
    }
}
