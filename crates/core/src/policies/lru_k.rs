//! The LRU-K page-replacement algorithm of O'Neil, O'Neil and Weikum
//! (SIGMOD 1993), as recapped in Section 2.2 of the EDBT 2002 paper.

use crate::policy::{PolicyEvents, ReplacementPolicy, VictimRanker};
use asb_storage::{AccessContext, Page, PageId, QueryId};
use std::collections::{BTreeSet, HashMap};

/// Reference history of one page: `HIST(p)` of the paper.
#[derive(Debug, Clone)]
struct Hist {
    /// Time stamps of the K most recent *uncorrelated* references,
    /// `times[0]` = HIST(p,1) (most recent), `times[k-1]` = HIST(p,K).
    times: Vec<u64>,
    /// Query of the most recent reference, for correlation detection.
    last_query: QueryId,
    /// Tick of the most recent reference (correlated or not); breaks ties
    /// between pages with equal HIST(p,K) by plain LRU.
    last_access: u64,
}

/// LRU-K replacement.
///
/// The buffer evicts the page with the oldest K-th most recent uncorrelated
/// reference. Two accesses are *correlated* when they belong to the same
/// query (the definition the EDBT paper adopts); a correlated re-reference
/// only refreshes `HIST(p,1)` instead of pushing a new entry.
///
/// Following the original algorithm — and the EDBT paper's critique — the
/// history `HIST(p)` of a page is **retained after eviction**, so a reloaded
/// page resumes its history. [`retained_history`](ReplacementPolicy::retained_history)
/// reports how many such ghost records exist; this is the memory overhead
/// that the adaptable spatial buffer avoids.
#[derive(Debug)]
pub struct LruKPolicy {
    k: usize,
    history: HashMap<PageId, Hist>,
    /// Resident pages in page-id order: the victim scan iterates this set,
    /// and a canonical order keeps full HIST ties (possible when a batched
    /// fetch admits several pages at one tick) deterministic across
    /// processes — hash order would break byte-reproducible benchmarks.
    resident: BTreeSet<PageId>,
}

impl LruKPolicy {
    /// Creates an LRU-K policy. `k == 1` degenerates to plain LRU (with
    /// correlated references collapsed); the paper evaluates K ∈ {2, 3, 5}.
    ///
    /// # Panics
    /// Panics if `k == 0`.
    pub fn new(k: usize) -> Self {
        assert!(k >= 1, "LRU-K requires K >= 1");
        LruKPolicy {
            k,
            history: HashMap::new(),
            resident: BTreeSet::new(),
        }
    }

    /// The configured K.
    pub fn k(&self) -> usize {
        self.k
    }

    fn record(&mut self, id: PageId, ctx: AccessContext, now: u64) {
        let k = self.k;
        let hist = self.history.entry(id).or_insert_with(|| Hist {
            times: Vec::with_capacity(k),
            last_query: ctx.query,
            last_access: 0,
        });
        if hist.times.is_empty() {
            hist.times.push(now);
        } else if hist.last_query == ctx.query {
            // Correlated with the previous reference: HIST(p,1) gets the
            // value of the current time.
            hist.times[0] = now;
        } else {
            // Uncorrelated: the current time is added as the new HIST(p,1).
            hist.times.insert(0, now);
            hist.times.truncate(k);
        }
        hist.last_query = ctx.query;
        hist.last_access = now;
    }

    /// Backward K-distance key: the timestamp of `HIST(p,K)`, or `None`
    /// (= infinitely old) if fewer than K uncorrelated references exist.
    #[cfg(test)]
    fn hist_k(&self, id: &PageId) -> Option<u64> {
        self.history
            .get(id)
            .and_then(|h| h.times.get(self.k - 1).copied())
    }
}

impl PolicyEvents for LruKPolicy {
    fn on_insert(&mut self, page: &Page, ctx: AccessContext, now: u64) {
        self.resident.insert(page.id);
        self.record(page.id, ctx, now);
    }

    fn on_hit(&mut self, page: &Page, ctx: AccessContext, now: u64) {
        self.record(page.id, ctx, now);
    }

    fn on_update(&mut self, _page: &Page) {}

    fn on_remove(&mut self, id: PageId) {
        // The page leaves the buffer but its history is retained.
        self.resident.remove(&id);
    }
}

impl VictimRanker for LruKPolicy {
    fn nominate(
        &mut self,
        ctx: AccessContext,
        evictable: &dyn Fn(PageId) -> bool,
    ) -> Option<PageId> {
        // "Among the pages in the buffer whose most recent reference is not
        // correlated to the access to p, the page q with the oldest value of
        // HIST(q,k) is determined."
        let best = |skip_correlated: bool| -> Option<PageId> {
            let mut victim: Option<(PageId, Option<u64>, u64)> = None;
            for &id in &self.resident {
                if !evictable(id) {
                    continue;
                }
                let hist = &self.history[&id];
                if skip_correlated && hist.last_query == ctx.query {
                    continue;
                }
                let key = hist.times.get(self.k - 1).copied();
                let last = hist.last_access;
                let better = match &victim {
                    None => true,
                    Some((_, vkey, vlast)) => {
                        // None (< K references) is older than any timestamp;
                        // ties fall back to plain LRU on the last access.
                        match (key, vkey) {
                            (None, Some(_)) => true,
                            (Some(_), None) => false,
                            (None, None) => last < *vlast,
                            (Some(a), Some(b)) => a < *b || (a == *b && last < *vlast),
                        }
                    }
                };
                if better {
                    victim = Some((id, key, last));
                }
            }
            victim.map(|(id, _, _)| id)
        };
        // If every evictable page was touched by the current query, fall
        // back to ignoring the correlation filter (one of the "special
        // cases" footnote 2 of the paper waves at).
        best(true).or_else(|| best(false))
    }
}

impl ReplacementPolicy for LruKPolicy {
    fn name(&self) -> String {
        format!("LRU-{}", self.k)
    }

    fn retained_history(&self) -> usize {
        self.history.len() - self.resident.len()
    }

    fn retain_history(&mut self, live: &dyn Fn(PageId) -> bool) {
        // Resident pages always keep their history; ghost records survive
        // only while the host still considers the page live. This is the
        // hook that lets the arena keep LRU-K's otherwise unbounded HIST
        // within a fixed budget.
        let resident = &self.resident;
        self.history
            .retain(|id, _| resident.contains(id) || live(*id));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asb_geom::SpatialStats;
    use asb_storage::PageMeta;
    use bytes::Bytes;

    fn page(raw: u64) -> Page {
        Page::new(
            PageId::new(raw),
            PageMeta::data(SpatialStats::EMPTY),
            Bytes::new(),
        )
        .unwrap()
    }

    fn q(n: u64) -> AccessContext {
        AccessContext::query(QueryId::new(n))
    }

    fn all(_: PageId) -> bool {
        true
    }

    #[test]
    #[should_panic(expected = "K >= 1")]
    fn zero_k_is_rejected() {
        let _ = LruKPolicy::new(0);
    }

    #[test]
    fn correlated_accesses_collapse_into_one_reference() {
        let mut p = LruKPolicy::new(2);
        p.on_insert(&page(1), q(1), 1);
        // Same query: refreshes HIST(p,1), does not create a second entry.
        p.on_hit(&page(1), q(1), 2);
        p.on_hit(&page(1), q(1), 3);
        assert_eq!(
            p.hist_k(&PageId::new(1)),
            None,
            "only one uncorrelated reference"
        );
        // Different query: now there are two.
        p.on_hit(&page(1), q(2), 4);
        assert_eq!(p.hist_k(&PageId::new(1)), Some(3));
    }

    #[test]
    fn pages_with_fewer_than_k_references_go_first() {
        let mut p = LruKPolicy::new(2);
        p.on_insert(&page(1), q(1), 1);
        p.on_hit(&page(1), q(2), 2); // page 1 has 2 uncorrelated refs
        p.on_insert(&page(2), q(3), 3); // page 2 has 1
                                        // Victim selection happens for an access of a later query (q4).
        assert_eq!(p.select_victim(q(4), &all), Some(PageId::new(2)));
    }

    #[test]
    fn victim_has_oldest_hist_k() {
        let mut p = LruKPolicy::new(2);
        // Page 1: refs at 1 and 10 -> HIST(1,2) = 1.
        p.on_insert(&page(1), q(1), 1);
        p.on_hit(&page(1), q(4), 10);
        // Page 2: refs at 5 and 6 -> HIST(2,2) = 5.
        p.on_insert(&page(2), q(2), 5);
        p.on_hit(&page(2), q(3), 6);
        // Plain LRU would evict page 2 (last access 6 < 10); LRU-2 evicts
        // page 1 because its second-most-recent reference is older.
        assert_eq!(p.select_victim(q(9), &all), Some(PageId::new(1)));
    }

    #[test]
    fn pages_of_current_query_are_protected() {
        let mut p = LruKPolicy::new(2);
        p.on_insert(&page(1), q(5), 1); // touched by the current query 5
        p.on_insert(&page(2), q(2), 2);
        p.on_hit(&page(2), q(3), 3);
        // Page 1 has < K references (normally evicted first) but belongs to
        // the running query, so page 2 is chosen.
        assert_eq!(p.select_victim(q(5), &all), Some(PageId::new(2)));
    }

    #[test]
    fn correlation_filter_falls_back_when_everything_is_correlated() {
        let mut p = LruKPolicy::new(2);
        p.on_insert(&page(1), q(5), 1);
        p.on_insert(&page(2), q(5), 2);
        assert!(p.select_victim(q(5), &all).is_some());
    }

    #[test]
    fn history_is_retained_across_eviction() {
        let mut p = LruKPolicy::new(2);
        p.on_insert(&page(1), q(1), 1);
        p.on_hit(&page(1), q(2), 2);
        p.on_remove(PageId::new(1));
        assert_eq!(p.retained_history(), 1);
        // Reloaded: the old history is still there, one more uncorrelated
        // reference shifts HIST(1,2) to the previous HIST(1,1).
        p.on_insert(&page(1), q(3), 9);
        assert_eq!(p.retained_history(), 0);
        assert_eq!(p.hist_k(&PageId::new(1)), Some(2));
    }

    #[test]
    fn lru_1_behaves_like_lru_for_uncorrelated_traces() {
        let mut p = LruKPolicy::new(1);
        p.on_insert(&page(1), q(1), 1);
        p.on_insert(&page(2), q(2), 2);
        p.on_hit(&page(1), q(3), 3);
        assert_eq!(p.select_victim(q(4), &all), Some(PageId::new(2)));
    }

    #[test]
    fn tie_on_hist_k_breaks_by_lru() {
        let mut p = LruKPolicy::new(2);
        // Both pages end up with < K refs (key None); older last access loses.
        p.on_insert(&page(1), q(1), 1);
        p.on_insert(&page(2), q(2), 2);
        assert_eq!(p.select_victim(q(3), &all), Some(PageId::new(1)));
    }
}
