//! The adaptable spatial buffer (Section 4.2 of the paper) — the paper's
//! headline contribution.

use crate::order::LinkedOrder;
use crate::policy::{PolicyEvents, ReplacementPolicy, VictimRanker};
use asb_geom::SpatialCriterion;
use asb_storage::{AccessContext, Page, PageId};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Tuning parameters of the [`AsbPolicy`].
///
/// The defaults are the paper's experimental settings: "the size of the
/// overflow buffer has been 20 % of the complete buffer. The initial size of
/// the candidate set has been 25 % of the remaining buffer. The size of the
/// candidate set has been changed in steps of 1 % of the remaining buffer."
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AsbParams {
    /// Fraction of the total buffer reserved for the FIFO overflow buffer.
    pub overflow_fraction: f64,
    /// Initial candidate-set size as a fraction of the main (remaining)
    /// buffer.
    pub initial_candidate_fraction: f64,
    /// Adaptation step as a fraction of the main buffer.
    pub step_fraction: f64,
    /// Spatial criterion used to pick pages out of the candidate set.
    pub criterion: SpatialCriterion,
}

impl Default for AsbParams {
    fn default() -> Self {
        AsbParams {
            overflow_fraction: 0.2,
            initial_candidate_fraction: 0.25,
            step_fraction: 0.01,
            criterion: SpatialCriterion::Area,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct PageInfo {
    crit: f64,
    last_access: u64,
}

/// The **adaptable spatial buffer (ASB)**.
///
/// The buffer is split into a *main part* (managed like
/// [`SlruPolicy`](crate::SlruPolicy): LRU proposes a candidate set, the
/// spatial criterion picks from it) and a FIFO *overflow buffer* holding
/// pages that the main part has already dropped. Because the overflow
/// buffer is carved out of the configured capacity, memory requirements do
/// not grow — the paper's counterpoint to LRU-K's unbounded history.
///
/// Self-tuning happens on overflow hits. When a requested page `p` is found
/// in the overflow buffer it is promoted back into the main part, and the
/// candidate-set size `c` adapts:
///
/// * more overflow pages beat `p` on the **spatial** criterion than on the
///   LRU criterion ⇒ the spatial strategy misjudged `p` ⇒ LRU seems more
///   suitable ⇒ **decrease** `c`;
/// * more overflow pages beat `p` on the **LRU** criterion ⇒ the spatial
///   strategy seems more suitable ⇒ **increase** `c`;
/// * equal counts ⇒ `c` is unchanged.
///
/// `c` is clamped to `[1, main buffer size]`; with `c = 1` the buffer
/// behaves like LRU, with `c =` main size like the pure spatial policy.
#[derive(Debug)]
pub struct AsbPolicy {
    params: AsbParams,
    main_cap: usize,
    overflow_cap: usize,
    candidate: usize,
    step: usize,
    /// LRU order of the main part (front = least recently used).
    main: LinkedOrder<PageId>,
    /// FIFO order of the overflow buffer (front = first in, next victim).
    overflow: LinkedOrder<PageId>,
    info: HashMap<PageId, PageInfo>,
}

impl AsbPolicy {
    /// Creates an ASB policy for a buffer of `capacity` pages.
    ///
    /// # Panics
    /// Panics if `capacity == 0` or any fraction is out of range
    /// (`overflow_fraction` in `[0, 1)`, the others in `(0, 1]`).
    pub fn new(capacity: usize, params: AsbParams) -> Self {
        assert!(capacity > 0, "ASB requires a non-empty buffer");
        assert!(
            (0.0..1.0).contains(&params.overflow_fraction),
            "overflow fraction must be in [0, 1)"
        );
        assert!(
            params.initial_candidate_fraction > 0.0 && params.initial_candidate_fraction <= 1.0,
            "initial candidate fraction must be in (0, 1]"
        );
        assert!(
            params.step_fraction > 0.0 && params.step_fraction <= 1.0,
            "step fraction must be in (0, 1]"
        );
        // The main part keeps at least one page.
        let overflow_cap =
            ((capacity as f64 * params.overflow_fraction).round() as usize).min(capacity - 1);
        let main_cap = capacity - overflow_cap;
        let candidate = ((main_cap as f64 * params.initial_candidate_fraction).round() as usize)
            .clamp(1, main_cap);
        let step = ((main_cap as f64 * params.step_fraction).round() as usize).max(1);
        AsbPolicy {
            params,
            main_cap,
            overflow_cap,
            candidate,
            step,
            main: LinkedOrder::new(),
            overflow: LinkedOrder::new(),
            info: HashMap::new(),
        }
    }

    /// The parameters the policy was built with.
    pub fn params(&self) -> AsbParams {
        self.params
    }

    /// Capacity of the main part in pages.
    pub fn main_capacity(&self) -> usize {
        self.main_cap
    }

    /// Capacity of the overflow buffer in pages.
    pub fn overflow_capacity(&self) -> usize {
        self.overflow_cap
    }

    /// Number of pages currently in the overflow buffer.
    pub fn overflow_len(&self) -> usize {
        self.overflow.len()
    }

    /// Moves the spatially worst page of the candidate set from the main
    /// part into the overflow buffer. Called whenever the main part exceeds
    /// its capacity.
    fn demote(&mut self) {
        let mut victim: Option<(PageId, f64)> = None;
        for (seen, &id) in self.main.iter().enumerate() {
            if seen >= self.candidate {
                break;
            }
            let c = self.info[&id].crit;
            if victim.is_none_or(|(_, best)| c < best) {
                victim = Some((id, c));
            }
        }
        if let Some((id, _)) = victim {
            self.main.remove(&id);
            self.overflow.push_back(id);
        }
    }

    /// Applies the self-tuning rule for a hit on overflow page `p`.
    fn adapt(&mut self, p: PageId) {
        let me = self.info[&p];
        let mut better_spatial = 0usize;
        let mut better_lru = 0usize;
        for &id in self.overflow.iter() {
            if id == p {
                continue;
            }
            let other = self.info[&id];
            if other.crit > me.crit {
                better_spatial += 1;
            }
            if other.last_access > me.last_access {
                better_lru += 1;
            }
        }
        if better_spatial > better_lru {
            // LRU seems more suitable: shrink the candidate set.
            self.candidate = self.candidate.saturating_sub(self.step).max(1);
        } else if better_spatial < better_lru {
            // The spatial strategy seems more suitable: grow it.
            self.candidate = (self.candidate + self.step).min(self.main_cap);
        }
    }
}

impl PolicyEvents for AsbPolicy {
    fn on_insert(&mut self, page: &Page, _ctx: AccessContext, now: u64) {
        self.info.insert(
            page.id,
            PageInfo {
                crit: page.meta.stats.criterion(self.params.criterion),
                last_access: now,
            },
        );
        self.main.push_back(page.id);
        if self.main.len() > self.main_cap {
            self.demote();
        }
    }

    fn on_hit(&mut self, page: &Page, _ctx: AccessContext, now: u64) {
        let id = page.id;
        if self.main.contains(&id) {
            self.main.move_to_back(&id);
            if let Some(info) = self.info.get_mut(&id) {
                info.last_access = now;
            }
            return;
        }
        if self.overflow.contains(&id) {
            // Self-tuning happens *before* the promotion, while p's recorded
            // recency still reflects its history in the overflow buffer.
            self.adapt(id);
            self.overflow.remove(&id);
            self.main.push_back(id);
            if let Some(info) = self.info.get_mut(&id) {
                info.last_access = now;
            }
            if self.main.len() > self.main_cap {
                self.demote();
            }
        }
    }

    fn on_update(&mut self, page: &Page) {
        if let Some(info) = self.info.get_mut(&page.id) {
            info.crit = page.meta.stats.criterion(self.params.criterion);
        }
    }

    fn on_remove(&mut self, id: PageId) {
        self.info.remove(&id);
        if !self.overflow.remove(&id) {
            self.main.remove(&id);
        }
    }
}

impl VictimRanker for AsbPolicy {
    fn nominate(
        &mut self,
        _ctx: AccessContext,
        evictable: &dyn Fn(PageId) -> bool,
    ) -> Option<PageId> {
        // Regular case: FIFO from the overflow buffer.
        if let Some(id) = self.overflow.iter().copied().find(|&id| evictable(id)) {
            return Some(id);
        }
        // Degenerate case (overflow empty or fully pinned, e.g. a tiny
        // buffer before warm-up finished): fall back to the SLRU rule on
        // the main part.
        let mut seen = 0usize;
        let mut victim: Option<(PageId, f64)> = None;
        for &id in self.main.iter() {
            if !evictable(id) {
                continue;
            }
            seen += 1;
            let c = self.info[&id].crit;
            if victim.is_none_or(|(_, best)| c < best) {
                victim = Some((id, c));
            }
            if seen >= self.candidate {
                break;
            }
        }
        victim.map(|(id, _)| id)
    }
}

impl ReplacementPolicy for AsbPolicy {
    fn name(&self) -> String {
        "ASB".into()
    }

    fn candidate_size(&self) -> Option<usize> {
        Some(self.candidate)
    }

    fn overflow_state(&self) -> Option<(Vec<PageId>, usize)> {
        Some((self.overflow.iter().copied().collect(), self.overflow_cap))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asb_geom::{Rect, SpatialStats};
    use asb_storage::PageMeta;
    use bytes::Bytes;

    fn page_area(raw: u64, side: f64) -> Page {
        let meta = PageMeta::data(SpatialStats::from_rects(&[Rect::new(0.0, 0.0, side, side)]));
        Page::new(PageId::new(raw), meta, Bytes::new()).unwrap()
    }

    fn ctx() -> AccessContext {
        AccessContext::default()
    }

    fn all(_: PageId) -> bool {
        true
    }

    fn asb(capacity: usize) -> AsbPolicy {
        AsbPolicy::new(capacity, AsbParams::default())
    }

    #[test]
    fn paper_defaults_partition_the_buffer() {
        let p = asb(100);
        assert_eq!(p.overflow_capacity(), 20);
        assert_eq!(p.main_capacity(), 80);
        assert_eq!(p.candidate_size(), Some(20)); // 25% of 80
    }

    #[test]
    fn tiny_buffers_keep_a_main_page() {
        let p = asb(1);
        assert_eq!(p.overflow_capacity(), 0);
        assert_eq!(p.main_capacity(), 1);
        assert_eq!(p.candidate_size(), Some(1));
    }

    #[test]
    fn overfull_main_demotes_smallest_candidate() {
        // capacity 5 -> overflow 1, main 4, candidate max(1, 25% of 4) = 1.
        let mut p = asb(5);
        for (i, side) in [(1u64, 3.0), (2, 9.0), (3, 5.0), (4, 7.0)] {
            p.on_insert(&page_area(i, side), ctx(), i);
        }
        assert_eq!(p.overflow_len(), 0);
        // Fifth insert overflows main; candidate set = {page 1} (LRU end),
        // so page 1 is demoted regardless of criteria of others.
        p.on_insert(&page_area(5, 1.0), ctx(), 5);
        assert_eq!(p.overflow_len(), 1);
        assert_eq!(p.select_victim(ctx(), &all), Some(PageId::new(1)));
    }

    #[test]
    fn victims_come_from_overflow_in_fifo_order() {
        let mut p = asb(5); // main 4, overflow 1
        for i in 1..=6u64 {
            p.on_insert(&page_area(i, i as f64), ctx(), i);
        }
        // Two demotions happened (inserts 5 and 6): pages 1 then 2.
        let v1 = p.select_victim(ctx(), &all).unwrap();
        assert_eq!(v1, PageId::new(1));
        p.on_remove(v1);
        let v2 = p.select_victim(ctx(), &all).unwrap();
        assert_eq!(v2, PageId::new(2));
    }

    #[test]
    fn overflow_hit_promotes_back_to_main() {
        let mut p = asb(5);
        for i in 1..=5u64 {
            p.on_insert(&page_area(i, i as f64), ctx(), i);
        }
        assert_eq!(p.overflow_len(), 1); // page 1
        p.on_hit(&page_area(1, 1.0), ctx(), 10);
        // Page 1 back in main; a demotion refilled the overflow buffer.
        assert!(p.main.contains(&PageId::new(1)));
        assert_eq!(p.overflow_len(), 1);
        assert_ne!(p.overflow.front(), Some(PageId::new(1)));
    }

    /// Plants a page directly in the overflow buffer with the given
    /// criterion value and last-access tick.
    fn plant_overflow(p: &mut AsbPolicy, raw: u64, crit: f64, last_access: u64) {
        p.info
            .insert(PageId::new(raw), PageInfo { crit, last_access });
        p.overflow.push_back(PageId::new(raw));
    }

    #[test]
    fn adaptation_decreases_when_spatially_better_pages_linger() {
        let mut p = asb(20); // overflow 4, main 16, candidate 4, step 1
                             // Target: smallest criterion (everyone beats it spatially) but the
                             // most recent access (nobody beats it on LRU). The spatial strategy
                             // misjudged this page -> rule 1: shrink the candidate set.
        plant_overflow(&mut p, 1, 1.0, 10);
        plant_overflow(&mut p, 2, 5.0, 1);
        plant_overflow(&mut p, 3, 6.0, 2);
        plant_overflow(&mut p, 4, 7.0, 3);
        let before = p.candidate_size().unwrap();
        p.adapt(PageId::new(1));
        assert_eq!(p.candidate_size().unwrap(), before - p.step);
    }

    #[test]
    fn adaptation_increases_when_lru_better_pages_linger() {
        let mut p = asb(20);
        // Target: largest criterion but oldest access — LRU misjudged it ->
        // rule 2: grow the candidate set.
        plant_overflow(&mut p, 1, 9.0, 1);
        plant_overflow(&mut p, 2, 1.0, 5);
        plant_overflow(&mut p, 3, 2.0, 6);
        plant_overflow(&mut p, 4, 3.0, 7);
        let before = p.candidate_size().unwrap();
        p.adapt(PageId::new(1));
        assert_eq!(p.candidate_size().unwrap(), before + p.step);
    }

    #[test]
    fn adaptation_keeps_size_on_balance() {
        let mut p = asb(20);
        // One page beats the target spatially, a different one on recency:
        // rule 3, no change.
        plant_overflow(&mut p, 1, 5.0, 5);
        plant_overflow(&mut p, 2, 9.0, 1); // better spatial only
        plant_overflow(&mut p, 3, 1.0, 9); // better LRU only
        let before = p.candidate_size().unwrap();
        p.adapt(PageId::new(1));
        assert_eq!(p.candidate_size().unwrap(), before);
    }

    #[test]
    fn end_to_end_overflow_hit_adapts() {
        // Build the same "spatial misjudgement" situation through the
        // public protocol only: pages with large areas inserted early, a
        // tiny recently-used page demoted by the candidate set.
        let mut p = asb(10); // overflow 2, main 8, candidate 2, step 1
        let mut t = 0u64;
        // Fill main with large pages.
        for i in 1..=8u64 {
            t += 1;
            p.on_insert(&page_area(i, 50.0 + i as f64), ctx(), t);
        }
        // A tiny page, freshly touched so its last_access is the newest.
        t += 1;
        p.on_insert(&page_area(9, 0.5), ctx(), t); // demotes page 1 (candidate LRU end)
        t += 1;
        p.on_hit(&page_area(9, 0.5), ctx(), t);
        // Churn: the candidate window now starts at pages 2,3 — inserting
        // two more pages demotes 2, then 3... but first force page 9 into
        // the candidate window by touching everything else.
        for i in 2..=8u64 {
            t += 1;
            p.on_hit(&page_area(i, 50.0 + i as f64), ctx(), t);
        }
        // Page 9 is now the LRU page of main with the smallest criterion:
        // the next insert demotes it.
        t += 1;
        p.on_insert(&page_area(10, 60.0), ctx(), t);
        assert!(p.overflow.contains(&PageId::new(9)));
        // Overflow = {1 (old, large), 9 (recent, tiny)}. Hitting 9: page 1
        // beats it spatially (crit 51^2 > 0.25) but not on recency ->
        // shrink.
        let before = p.candidate_size().unwrap();
        t += 1;
        p.on_hit(&page_area(9, 0.5), ctx(), t);
        assert_eq!(p.candidate_size().unwrap(), before - 1);
        assert!(p.main.contains(&PageId::new(9)));
    }

    #[test]
    fn candidate_size_stays_clamped() {
        let mut p = asb(10); // overflow 2, main 8, candidate 2, step 1
                             // Force many shrink adaptations.
        p.candidate = 1;
        p.adapt_n_shrinks(50);
        assert_eq!(p.candidate_size(), Some(1));
        p.candidate = p.main_cap;
        p.adapt_n_grows(50);
        assert_eq!(p.candidate_size(), Some(p.main_cap));
    }

    impl AsbPolicy {
        fn adapt_n_shrinks(&mut self, n: usize) {
            for _ in 0..n {
                self.candidate = self.candidate.saturating_sub(self.step).max(1);
            }
        }
        fn adapt_n_grows(&mut self, n: usize) {
            for _ in 0..n {
                self.candidate = (self.candidate + self.step).min(self.main_cap);
            }
        }
    }

    #[test]
    fn remove_cleans_both_parts() {
        let mut p = asb(5);
        for i in 1..=5u64 {
            p.on_insert(&page_area(i, i as f64), ctx(), i);
        }
        let in_overflow = p.overflow.front().unwrap();
        p.on_remove(in_overflow);
        assert_eq!(p.overflow_len(), 0);
        assert!(!p.info.contains_key(&in_overflow));
        p.on_remove(PageId::new(3));
        assert!(!p.main.contains(&PageId::new(3)));
    }

    #[test]
    fn fallback_victim_when_overflow_empty() {
        let mut p = asb(4); // overflow 1, main 3
        p.on_insert(&page_area(1, 5.0), ctx(), 1);
        p.on_insert(&page_area(2, 1.0), ctx(), 2);
        // Overflow is empty; fallback applies the SLRU rule on main.
        let v = p.select_victim(ctx(), &all);
        assert!(v.is_some());
    }

    #[test]
    #[should_panic(expected = "overflow fraction")]
    fn full_overflow_fraction_is_rejected() {
        let _ = AsbPolicy::new(
            10,
            AsbParams {
                overflow_fraction: 1.0,
                ..AsbParams::default()
            },
        );
    }
}
