//! Classic history-only baselines: LRU, FIFO, CLOCK and RANDOM.

use crate::order::LinkedOrder;
use crate::policy::{PolicyEvents, ReplacementPolicy, VictimRanker};
use asb_storage::{AccessContext, Page, PageId};
use std::collections::HashMap;

/// Least-recently-used replacement — the paper's baseline against which all
/// gains are reported.
#[derive(Debug, Default)]
pub struct LruPolicy {
    order: LinkedOrder<PageId>,
}

impl LruPolicy {
    /// Creates an empty LRU policy.
    pub fn new() -> Self {
        LruPolicy::default()
    }
}

impl PolicyEvents for LruPolicy {
    fn on_insert(&mut self, page: &Page, _ctx: AccessContext, _now: u64) {
        self.order.push_back(page.id);
    }

    fn on_hit(&mut self, page: &Page, _ctx: AccessContext, _now: u64) {
        self.order.move_to_back(&page.id);
    }

    fn on_update(&mut self, _page: &Page) {}

    fn on_remove(&mut self, id: PageId) {
        self.order.remove(&id);
    }
}

impl VictimRanker for LruPolicy {
    fn nominate(
        &mut self,
        _ctx: AccessContext,
        evictable: &dyn Fn(PageId) -> bool,
    ) -> Option<PageId> {
        self.order.iter().copied().find(|&id| evictable(id))
    }
}

impl ReplacementPolicy for LruPolicy {
    fn name(&self) -> String {
        "LRU".into()
    }
}

/// First-in-first-out replacement: hits do not refresh a page's position.
#[derive(Debug, Default)]
pub struct FifoPolicy {
    order: LinkedOrder<PageId>,
}

impl FifoPolicy {
    /// Creates an empty FIFO policy.
    pub fn new() -> Self {
        FifoPolicy::default()
    }
}

impl PolicyEvents for FifoPolicy {
    fn on_insert(&mut self, page: &Page, _ctx: AccessContext, _now: u64) {
        self.order.push_back(page.id);
    }

    fn on_hit(&mut self, _page: &Page, _ctx: AccessContext, _now: u64) {}

    fn on_update(&mut self, _page: &Page) {}

    fn on_remove(&mut self, id: PageId) {
        self.order.remove(&id);
    }
}

impl VictimRanker for FifoPolicy {
    fn nominate(
        &mut self,
        _ctx: AccessContext,
        evictable: &dyn Fn(PageId) -> bool,
    ) -> Option<PageId> {
        self.order.iter().copied().find(|&id| evictable(id))
    }
}

impl ReplacementPolicy for FifoPolicy {
    fn name(&self) -> String {
        "FIFO".into()
    }
}

/// Second-chance (CLOCK) replacement: an approximation of LRU with one
/// reference bit per page.
#[derive(Debug, Default)]
pub struct ClockPolicy {
    order: LinkedOrder<PageId>,
    referenced: HashMap<PageId, bool>,
}

impl ClockPolicy {
    /// Creates an empty CLOCK policy.
    pub fn new() -> Self {
        ClockPolicy::default()
    }
}

impl PolicyEvents for ClockPolicy {
    fn on_insert(&mut self, page: &Page, _ctx: AccessContext, _now: u64) {
        self.order.push_back(page.id);
        self.referenced.insert(page.id, false);
    }

    fn on_hit(&mut self, page: &Page, _ctx: AccessContext, _now: u64) {
        if let Some(bit) = self.referenced.get_mut(&page.id) {
            *bit = true;
        }
    }

    fn on_update(&mut self, _page: &Page) {}

    fn on_remove(&mut self, id: PageId) {
        self.order.remove(&id);
        self.referenced.remove(&id);
    }
}

impl VictimRanker for ClockPolicy {
    fn nominate(
        &mut self,
        _ctx: AccessContext,
        evictable: &dyn Fn(PageId) -> bool,
    ) -> Option<PageId> {
        // Two sweeps suffice: the first clears reference bits, the second
        // must find a victim (the manager guarantees one evictable page).
        let limit = self.order.len() * 2 + 1;
        for _ in 0..limit {
            let hand = self.order.front()?;
            if !evictable(hand) {
                self.order.move_to_back(&hand);
                continue;
            }
            // invariant: `referenced` and `order` are updated together in
            // on_admit/on_remove, so every page in the clock order has a bit.
            let bit = (self.referenced.get_mut(&hand)).expect("tracked page has a ref bit");
            if *bit {
                *bit = false;
                self.order.move_to_back(&hand);
            } else {
                return Some(hand);
            }
        }
        None
    }
}

impl ReplacementPolicy for ClockPolicy {
    fn name(&self) -> String {
        "CLOCK".into()
    }
}

/// Uniformly random replacement, driven by a deterministic xorshift64* RNG
/// so experiments stay reproducible.
#[derive(Debug)]
pub struct RandomPolicy {
    pages: Vec<PageId>,
    index: HashMap<PageId, usize>,
    state: u64,
}

impl RandomPolicy {
    /// Creates a RANDOM policy seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        RandomPolicy {
            pages: Vec::new(),
            index: HashMap::new(),
            // xorshift must not start at zero.
            state: seed | 1,
        }
    }

    fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

impl PolicyEvents for RandomPolicy {
    fn on_insert(&mut self, page: &Page, _ctx: AccessContext, _now: u64) {
        if self.index.contains_key(&page.id) {
            return;
        }
        self.index.insert(page.id, self.pages.len());
        self.pages.push(page.id);
    }

    fn on_hit(&mut self, _page: &Page, _ctx: AccessContext, _now: u64) {}

    fn on_update(&mut self, _page: &Page) {}

    fn on_remove(&mut self, id: PageId) {
        if let Some(pos) = self.index.remove(&id) {
            self.pages.swap_remove(pos);
            if pos < self.pages.len() {
                self.index.insert(self.pages[pos], pos);
            }
        }
    }
}

impl VictimRanker for RandomPolicy {
    fn nominate(
        &mut self,
        _ctx: AccessContext,
        evictable: &dyn Fn(PageId) -> bool,
    ) -> Option<PageId> {
        if self.pages.is_empty() {
            return None;
        }
        let start = (self.next_u64() % self.pages.len() as u64) as usize;
        // Linear probe from a random start so a few pinned pages cannot
        // starve the search.
        (0..self.pages.len())
            .map(|i| self.pages[(start + i) % self.pages.len()])
            .find(|&id| evictable(id))
    }
}

impl ReplacementPolicy for RandomPolicy {
    fn name(&self) -> String {
        "RANDOM".into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asb_geom::SpatialStats;
    use asb_storage::PageMeta;
    use bytes::Bytes;

    fn page(raw: u64) -> Page {
        Page::new(
            PageId::new(raw),
            PageMeta::data(SpatialStats::EMPTY),
            Bytes::new(),
        )
        .unwrap()
    }

    fn ctx() -> AccessContext {
        AccessContext::default()
    }

    fn all(_: PageId) -> bool {
        true
    }

    #[test]
    fn lru_victim_is_least_recent() {
        let mut p = LruPolicy::new();
        for i in 0..3 {
            p.on_insert(&page(i), ctx(), i);
        }
        p.on_hit(&page(0), ctx(), 10);
        assert_eq!(p.select_victim(ctx(), &all), Some(PageId::new(1)));
    }

    #[test]
    fn lru_skips_unevictable() {
        let mut p = LruPolicy::new();
        for i in 0..3 {
            p.on_insert(&page(i), ctx(), i);
        }
        let v = p.select_victim(ctx(), &|id| id != PageId::new(0));
        assert_eq!(v, Some(PageId::new(1)));
    }

    #[test]
    fn fifo_ignores_hits() {
        let mut p = FifoPolicy::new();
        for i in 0..3 {
            p.on_insert(&page(i), ctx(), i);
        }
        p.on_hit(&page(0), ctx(), 10);
        assert_eq!(p.select_victim(ctx(), &all), Some(PageId::new(0)));
    }

    #[test]
    fn clock_gives_second_chance() {
        let mut p = ClockPolicy::new();
        for i in 0..3 {
            p.on_insert(&page(i), ctx(), i);
        }
        p.on_hit(&page(0), ctx(), 10);
        // Page 0 is referenced: the hand clears its bit and advances to 1.
        assert_eq!(p.select_victim(ctx(), &all), Some(PageId::new(1)));
        p.on_remove(PageId::new(1));
        // The hand moved past page 0 (now at the back with a cleared bit),
        // so page 2 is next, then page 0.
        assert_eq!(p.select_victim(ctx(), &all), Some(PageId::new(2)));
        p.on_remove(PageId::new(2));
        assert_eq!(p.select_victim(ctx(), &all), Some(PageId::new(0)));
    }

    #[test]
    fn random_is_deterministic_per_seed() {
        let run = |seed| {
            let mut p = RandomPolicy::new(seed);
            for i in 0..10 {
                p.on_insert(&page(i), ctx(), i);
            }
            let mut victims = Vec::new();
            for _ in 0..5 {
                let v = p.select_victim(ctx(), &all).unwrap();
                victims.push(v);
                p.on_remove(v);
            }
            victims
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8), "different seeds should diverge (w.h.p.)");
    }

    #[test]
    fn random_respects_evictable_filter() {
        let mut p = RandomPolicy::new(3);
        for i in 0..10 {
            p.on_insert(&page(i), ctx(), i);
        }
        for _ in 0..20 {
            let v = p.select_victim(ctx(), &|id| id.raw() == 4).unwrap();
            assert_eq!(v, PageId::new(4));
        }
    }

    #[test]
    fn remove_unknown_is_noop() {
        let mut p = LruPolicy::new();
        p.on_insert(&page(1), ctx(), 1);
        p.on_remove(PageId::new(99));
        assert_eq!(p.select_victim(ctx(), &all), Some(PageId::new(1)));
    }
}
