//! Type-based and priority-based LRU (Section 2.1 of the paper).

use crate::order::LinkedOrder;
use crate::policy::{PolicyEvents, ReplacementPolicy, VictimRanker};
use asb_storage::{AccessContext, Page, PageId};
use std::collections::{BTreeMap, HashMap};

/// Type-based LRU (**LRU-T**): "object pages would be dropped immediately
/// from the buffer. Then, data pages would follow. Directory pages would be
/// stored in the buffer as long as possible. For pages of the same category,
/// the LRU strategy is used."
#[derive(Debug, Default)]
pub struct LruTypePolicy {
    // Index 0: object pages, 1: data pages, 2: directory pages.
    classes: [LinkedOrder<PageId>; 3],
    rank_of: HashMap<PageId, u8>,
}

impl LruTypePolicy {
    /// Creates an empty LRU-T policy.
    pub fn new() -> Self {
        LruTypePolicy::default()
    }
}

impl PolicyEvents for LruTypePolicy {
    fn on_insert(&mut self, page: &Page, _ctx: AccessContext, _now: u64) {
        let rank = page.meta.page_type.type_rank();
        self.classes[rank as usize].push_back(page.id);
        self.rank_of.insert(page.id, rank);
    }

    fn on_hit(&mut self, page: &Page, _ctx: AccessContext, _now: u64) {
        if let Some(&rank) = self.rank_of.get(&page.id) {
            self.classes[rank as usize].move_to_back(&page.id);
        }
    }

    fn on_update(&mut self, page: &Page) {
        // A page's type can never change in place, but guard anyway.
        let new_rank = page.meta.page_type.type_rank();
        if let Some(&old) = self.rank_of.get(&page.id) {
            if old != new_rank {
                self.classes[old as usize].remove(&page.id);
                self.classes[new_rank as usize].push_back(page.id);
                self.rank_of.insert(page.id, new_rank);
            }
        }
    }

    fn on_remove(&mut self, id: PageId) {
        if let Some(rank) = self.rank_of.remove(&id) {
            self.classes[rank as usize].remove(&id);
        }
    }
}

impl VictimRanker for LruTypePolicy {
    fn nominate(
        &mut self,
        _ctx: AccessContext,
        evictable: &dyn Fn(PageId) -> bool,
    ) -> Option<PageId> {
        self.classes
            .iter()
            .flat_map(|class| class.iter().copied())
            .find(|&id| evictable(id))
    }
}

impl ReplacementPolicy for LruTypePolicy {
    fn name(&self) -> String {
        "LRU-T".into()
    }
}

/// Priority-based LRU (**LRU-P**): "each page has a priority: the higher the
/// priority of a page, the longer it should stay in the buffer." The
/// priority is the page's level in the spatial access method (the root has
/// the highest priority, object pages priority 0), generalizing buffers that
/// pin distinct levels of the SAM (Leutenegger & Lopez).
#[derive(Debug, Default)]
pub struct LruPriorityPolicy {
    classes: BTreeMap<u8, LinkedOrder<PageId>>,
    priority_of: HashMap<PageId, u8>,
}

impl LruPriorityPolicy {
    /// Creates an empty LRU-P policy.
    pub fn new() -> Self {
        LruPriorityPolicy::default()
    }

    fn file(&mut self, id: PageId, priority: u8) {
        self.classes.entry(priority).or_default().push_back(id);
        self.priority_of.insert(id, priority);
    }
}

impl PolicyEvents for LruPriorityPolicy {
    fn on_insert(&mut self, page: &Page, _ctx: AccessContext, _now: u64) {
        self.file(page.id, page.meta.priority());
    }

    fn on_hit(&mut self, page: &Page, _ctx: AccessContext, _now: u64) {
        if let Some(&prio) = self.priority_of.get(&page.id) {
            if let Some(class) = self.classes.get_mut(&prio) {
                class.move_to_back(&page.id);
            }
        }
    }

    fn on_update(&mut self, page: &Page) {
        let new = page.meta.priority();
        if let Some(&old) = self.priority_of.get(&page.id) {
            if old != new {
                if let Some(class) = self.classes.get_mut(&old) {
                    class.remove(&page.id);
                }
                self.file(page.id, new);
            }
        }
    }

    fn on_remove(&mut self, id: PageId) {
        if let Some(prio) = self.priority_of.remove(&id) {
            if let Some(class) = self.classes.get_mut(&prio) {
                class.remove(&id);
                if class.is_empty() {
                    self.classes.remove(&prio);
                }
            }
        }
    }
}

impl VictimRanker for LruPriorityPolicy {
    fn nominate(
        &mut self,
        _ctx: AccessContext,
        evictable: &dyn Fn(PageId) -> bool,
    ) -> Option<PageId> {
        // BTreeMap iterates priorities ascending: lowest priority first,
        // LRU order within a priority.
        self.classes
            .values()
            .flat_map(|class| class.iter().copied())
            .find(|&id| evictable(id))
    }
}

impl ReplacementPolicy for LruPriorityPolicy {
    fn name(&self) -> String {
        "LRU-P".into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asb_geom::SpatialStats;
    use asb_storage::PageMeta;
    use bytes::Bytes;

    fn page_with(raw: u64, meta: PageMeta) -> Page {
        Page::new(PageId::new(raw), meta, Bytes::new()).unwrap()
    }

    fn obj(raw: u64) -> Page {
        page_with(raw, PageMeta::object(SpatialStats::EMPTY))
    }

    fn data(raw: u64) -> Page {
        page_with(raw, PageMeta::data(SpatialStats::EMPTY))
    }

    fn dir(raw: u64, level: u8) -> Page {
        page_with(raw, PageMeta::directory(level, SpatialStats::EMPTY))
    }

    fn ctx() -> AccessContext {
        AccessContext::default()
    }

    fn all(_: PageId) -> bool {
        true
    }

    #[test]
    fn lru_t_drops_object_pages_first() {
        let mut p = LruTypePolicy::new();
        p.on_insert(&dir(1, 2), ctx(), 1);
        p.on_insert(&data(2), ctx(), 2);
        p.on_insert(&obj(3), ctx(), 3);
        // Insertion order would favor the directory page under plain LRU,
        // but LRU-T picks the object page.
        assert_eq!(p.select_victim(ctx(), &all), Some(PageId::new(3)));
        p.on_remove(PageId::new(3));
        assert_eq!(p.select_victim(ctx(), &all), Some(PageId::new(2)));
        p.on_remove(PageId::new(2));
        assert_eq!(p.select_victim(ctx(), &all), Some(PageId::new(1)));
    }

    #[test]
    fn lru_t_uses_lru_within_category() {
        let mut p = LruTypePolicy::new();
        p.on_insert(&data(1), ctx(), 1);
        p.on_insert(&data(2), ctx(), 2);
        p.on_hit(&data(1), ctx(), 3);
        assert_eq!(p.select_victim(ctx(), &all), Some(PageId::new(2)));
    }

    #[test]
    fn lru_p_evicts_lowest_level_first() {
        let mut p = LruPriorityPolicy::new();
        p.on_insert(&dir(1, 4), ctx(), 1); // root
        p.on_insert(&dir(2, 3), ctx(), 2);
        p.on_insert(&dir(3, 2), ctx(), 3);
        p.on_insert(&data(4), ctx(), 4); // leaf, priority 1
        assert_eq!(p.select_victim(ctx(), &all), Some(PageId::new(4)));
        p.on_remove(PageId::new(4));
        assert_eq!(p.select_victim(ctx(), &all), Some(PageId::new(3)));
        p.on_remove(PageId::new(3));
        assert_eq!(p.select_victim(ctx(), &all), Some(PageId::new(2)));
    }

    #[test]
    fn lru_p_effectively_pins_the_root_under_pressure() {
        // With data pages always available, the root is never selected —
        // the generalization of level pinning.
        let mut p = LruPriorityPolicy::new();
        p.on_insert(&dir(0, 3), ctx(), 0);
        for i in 1..=5 {
            p.on_insert(&data(i), ctx(), i);
        }
        for expected in 1..=5u64 {
            let v = p.select_victim(ctx(), &all).unwrap();
            assert_eq!(v, PageId::new(expected));
            p.on_remove(v);
        }
        assert_eq!(p.select_victim(ctx(), &all), Some(PageId::new(0)));
    }

    #[test]
    fn lru_p_skips_unevictable() {
        let mut p = LruPriorityPolicy::new();
        p.on_insert(&data(1), ctx(), 1);
        p.on_insert(&dir(2, 2), ctx(), 2);
        let v = p.select_victim(ctx(), &|id| id != PageId::new(1));
        assert_eq!(v, Some(PageId::new(2)));
    }

    #[test]
    fn lru_p_priority_classes_are_cleaned_up() {
        let mut p = LruPriorityPolicy::new();
        p.on_insert(&data(1), ctx(), 1);
        p.on_remove(PageId::new(1));
        assert!(p.classes.is_empty());
        assert_eq!(p.select_victim(ctx(), &all), None);
    }
}
