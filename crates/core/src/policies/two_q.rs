//! The 2Q replacement policy (Johnson & Shasha, VLDB 1994) — a classic
//! LRU-K alternative included as an additional baseline.
//!
//! 2Q approximates LRU-2 at constant cost: newly admitted pages enter a
//! FIFO probation queue `A1in`; pages evicted from probation leave only a
//! *ghost* entry (their id) in `A1out`; a page re-fetched while its ghost
//! is remembered is promoted into the protected LRU queue `Am`. Unlike
//! LRU-K's unbounded retained history, the ghost queue is bounded — a
//! middle ground between LRU-K and the history-free ASB.

use crate::order::LinkedOrder;
use crate::policy::{PolicyEvents, ReplacementPolicy, VictimRanker};
use asb_storage::{AccessContext, Page, PageId};

/// 2Q with the paper-recommended sizing: `Kin` = 25 % of the buffer,
/// `Kout` = 50 % of the buffer (ghost ids).
#[derive(Debug)]
pub struct TwoQPolicy {
    kin: usize,
    kout: usize,
    /// FIFO probation queue (resident).
    a1in: LinkedOrder<PageId>,
    /// Ghost queue of recently evicted probation pages (ids only).
    a1out: LinkedOrder<PageId>,
    /// Protected LRU queue (resident).
    am: LinkedOrder<PageId>,
}

impl TwoQPolicy {
    /// Creates a 2Q policy for a buffer of `capacity` pages.
    pub fn new(capacity: usize) -> Self {
        TwoQPolicy {
            kin: (capacity / 4).max(1),
            kout: (capacity / 2).max(1),
            a1in: LinkedOrder::new(),
            a1out: LinkedOrder::new(),
            am: LinkedOrder::new(),
        }
    }

    /// Size of the probation queue target.
    pub fn kin(&self) -> usize {
        self.kin
    }

    /// Capacity of the ghost queue.
    pub fn kout(&self) -> usize {
        self.kout
    }
}

impl PolicyEvents for TwoQPolicy {
    fn on_insert(&mut self, page: &Page, _ctx: AccessContext, _now: u64) {
        if self.a1out.remove(&page.id) {
            // Remembered ghost: the page proved re-use, protect it.
            self.am.push_back(page.id);
        } else {
            self.a1in.push_back(page.id);
        }
    }

    fn on_hit(&mut self, page: &Page, _ctx: AccessContext, _now: u64) {
        if self.am.contains(&page.id) {
            self.am.move_to_back(&page.id);
        }
        // Hits inside A1in do not move the page: correlated references to a
        // fresh page should not promote it (same intuition as LRU-K).
    }

    fn on_update(&mut self, _page: &Page) {}

    fn on_remove(&mut self, id: PageId) {
        if self.a1in.remove(&id) {
            // Leaving probation: remember the ghost.
            self.a1out.push_back(id);
            while self.a1out.len() > self.kout {
                self.a1out.pop_front();
            }
        } else {
            self.am.remove(&id);
        }
    }
}

impl VictimRanker for TwoQPolicy {
    fn nominate(
        &mut self,
        _ctx: AccessContext,
        evictable: &dyn Fn(PageId) -> bool,
    ) -> Option<PageId> {
        // Prefer shrinking an oversized probation queue; otherwise evict
        // from the protected queue, falling back to probation if the
        // protected queue is empty or fully pinned.
        if self.a1in.len() > self.kin {
            if let Some(id) = self.a1in.iter().copied().find(|&id| evictable(id)) {
                return Some(id);
            }
        }
        self.am
            .iter()
            .copied()
            .find(|&id| evictable(id))
            .or_else(|| self.a1in.iter().copied().find(|&id| evictable(id)))
    }
}

impl ReplacementPolicy for TwoQPolicy {
    fn name(&self) -> String {
        "2Q".into()
    }

    fn retained_history(&self) -> usize {
        self.a1out.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asb_geom::SpatialStats;
    use asb_storage::PageMeta;
    use bytes::Bytes;

    fn page(raw: u64) -> Page {
        Page::new(
            PageId::new(raw),
            PageMeta::data(SpatialStats::EMPTY),
            Bytes::new(),
        )
        .unwrap()
    }

    fn ctx() -> AccessContext {
        AccessContext::default()
    }

    fn all(_: PageId) -> bool {
        true
    }

    #[test]
    fn fresh_pages_go_to_probation_and_leave_ghosts() {
        let mut p = TwoQPolicy::new(8); // kin 2, kout 4
        for i in 0..4 {
            p.on_insert(&page(i), ctx(), i);
        }
        // Probation oversized: FIFO head is the victim.
        assert_eq!(p.select_victim(ctx(), &all), Some(PageId::new(0)));
        p.on_remove(PageId::new(0));
        assert_eq!(p.retained_history(), 1, "ghost remembered");
    }

    #[test]
    fn ghost_readmission_promotes_to_protected() {
        let mut p = TwoQPolicy::new(8);
        p.on_insert(&page(1), ctx(), 1);
        p.on_remove(PageId::new(1)); // ghost
        p.on_insert(&page(1), ctx(), 2); // readmission
        assert!(p.am.contains(&PageId::new(1)));
        assert_eq!(p.retained_history(), 0, "ghost consumed");
        // A protected page outlives probation churn.
        for i in 10..13 {
            p.on_insert(&page(i), ctx(), i);
        }
        assert_ne!(p.select_victim(ctx(), &all), Some(PageId::new(1)));
    }

    #[test]
    fn probation_hits_do_not_promote() {
        let mut p = TwoQPolicy::new(8);
        p.on_insert(&page(1), ctx(), 1);
        p.on_hit(&page(1), ctx(), 2);
        assert!(p.a1in.contains(&PageId::new(1)));
        assert!(!p.am.contains(&PageId::new(1)));
    }

    #[test]
    fn ghost_queue_is_bounded() {
        let mut p = TwoQPolicy::new(8); // kout 4
        for i in 0..20 {
            p.on_insert(&page(i), ctx(), i);
            p.on_remove(PageId::new(i));
        }
        assert_eq!(p.retained_history(), 4, "ghosts are trimmed to kout");
    }

    #[test]
    fn protected_queue_evicts_lru() {
        let mut p = TwoQPolicy::new(8); // kin 2
                                        // Promote three pages into Am via ghosts.
        for i in 0..3u64 {
            p.on_insert(&page(i), ctx(), i);
            p.on_remove(PageId::new(i));
            p.on_insert(&page(i), ctx(), 10 + i);
        }
        p.on_hit(&page(0), ctx(), 20);
        // Probation is empty; Am's LRU (page 1) goes first.
        assert_eq!(p.select_victim(ctx(), &all), Some(PageId::new(1)));
    }

    #[test]
    fn respects_evictable_filter() {
        let mut p = TwoQPolicy::new(4); // kin 1
        p.on_insert(&page(1), ctx(), 1);
        p.on_insert(&page(2), ctx(), 2);
        let v = p.select_victim(ctx(), &|id| id != PageId::new(1));
        assert_eq!(v, Some(PageId::new(2)));
    }
}
