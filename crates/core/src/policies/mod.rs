//! Concrete page-replacement policies.

mod arena;
mod asb;
mod basic;
mod lru_k;
mod priority;
mod slru;
mod spatial;
mod two_q;

pub use arena::{ArenaParams, ArenaPolicy, ArenaState, ExpertState, Roster};
pub use asb::{AsbParams, AsbPolicy};
pub use basic::{ClockPolicy, FifoPolicy, LruPolicy, RandomPolicy};
pub use lru_k::LruKPolicy;
pub use priority::{LruPriorityPolicy, LruTypePolicy};
pub use slru::SlruPolicy;
pub use spatial::SpatialPolicy;
pub use two_q::TwoQPolicy;
