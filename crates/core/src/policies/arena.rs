//! The expert arena: a regret-minimizing mixer over replacement policies.
//!
//! The paper's ASB self-tunes exactly one knob — the LRU candidate-set size
//! — which adapts slowly when the workload phase-changes. The arena goes
//! further, in the spirit of expert-based replacement (EEvA) and adaptive
//! weight ranking (AWRP): every [`ReplacementPolicy`] becomes an observable
//! *expert* that sees the full event stream ([`PolicyEvents`]) and may
//! *nominate* a victim ([`VictimRanker`]) without owning eviction authority.
//!
//! Each expert is instantiated twice:
//!
//! * a **mirror** tracks the *real* buffer (it receives every
//!   `on_insert`/`on_hit`/`on_update`/`on_remove` the manager issues), so
//!   the expert can nominate victims among actually-resident pages;
//! * a **sim** plus a bounded **ghost cache** simulate "what would this
//!   expert's buffer hold if it had been in charge all along?". A request
//!   absent from the ghost cache is a *counterfactual miss* charged to the
//!   expert.
//!
//! A multiplicative-weights mixer decays each expert's weight by its
//! ghost-cache misses (an exponential sliding window over recent losses),
//! mixes in a fixed share of the uniform distribution so a written-off
//! expert can recover after a phase change, and delegates
//! `select_victim` to the current *leader* (the argmax weight). Cumulative
//! regret versus the best expert in hindsight and the number of authority
//! switches are reported through [`ArenaState`].

use crate::order::LinkedOrder;
use crate::policy::{PolicyEvents, PolicyKind, ReplacementPolicy, VictimRanker};
use asb_geom::SpatialCriterion;
use asb_storage::{AccessContext, Page, PageId};
use serde::{Deserialize, Serialize};

/// Weight floor applied after normalization so weights stay strictly
/// positive even with a zero fixed share (underflow protection).
const MIN_WEIGHT: f64 = 1e-12;

/// A preset expert roster for the arena.
///
/// Rosters are presets (not arbitrary lists) so [`ArenaParams`] stays
/// `Copy` and trivially serializable in experiment configurations and trace
/// headers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Roster {
    /// The full study roster: LRU, LRU-2, 2Q, SLRU 25 % (A), the five
    /// spatial criteria A/EA/M/EM/EO, and ASB — ten experts.
    Full,
    /// A lean roster for tight budgets: LRU, LRU-2, 2Q, SLRU 25 % (A) and
    /// ASB — five experts.
    Lean,
}

impl Roster {
    /// The policy kinds in this roster, in fixed order (index 0 is the
    /// initial leader).
    pub fn kinds(&self) -> Vec<PolicyKind> {
        let slru = PolicyKind::Slru {
            candidate_fraction: 0.25,
            criterion: SpatialCriterion::Area,
        };
        match self {
            Roster::Full => {
                let mut kinds = vec![
                    PolicyKind::Lru,
                    PolicyKind::LruK { k: 2 },
                    PolicyKind::TwoQ,
                    slru,
                ];
                kinds.extend(
                    SpatialCriterion::ALL
                        .iter()
                        .map(|&c| PolicyKind::Spatial(c)),
                );
                kinds.push(PolicyKind::Asb);
                kinds
            }
            Roster::Lean => vec![
                PolicyKind::Lru,
                PolicyKind::LruK { k: 2 },
                PolicyKind::TwoQ,
                slru,
                PolicyKind::Asb,
            ],
        }
    }

    /// Number of experts in this roster.
    pub fn len(&self) -> usize {
        match self {
            Roster::Full => 9 + 1,
            Roster::Lean => 5,
        }
    }

    /// Rosters are never empty; present for clippy's `len`-without-
    /// `is_empty` convention.
    pub fn is_empty(&self) -> bool {
        false
    }
}

/// Tuning parameters of the [`ArenaPolicy`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ArenaParams {
    /// Multiplicative penalty per ghost-cache miss: a charged expert's
    /// weight is scaled by `1 - decay`. Zero freezes the weights (the
    /// leader never changes — the arena then replays its first expert
    /// bit-for-bit).
    pub decay: f64,
    /// Fixed-share mixing rate: after every update each weight receives
    /// `share / n` of the probability mass, so an expert written off in one
    /// phase can regain authority quickly in the next.
    pub share: f64,
    /// The expert roster preset.
    pub roster: Roster,
}

impl Default for ArenaParams {
    fn default() -> Self {
        ArenaParams {
            decay: 0.05,
            share: 0.005,
            roster: Roster::Full,
        }
    }
}

/// Per-expert snapshot reported by [`ArenaState`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExpertState {
    /// The expert's display label (its policy name).
    pub label: String,
    /// Current mixer weight (weights sum to 1).
    pub weight: f64,
    /// Cumulative counterfactual misses of this expert's ghost cache.
    pub ghost_misses: u64,
    /// Current number of pages in this expert's ghost cache (≤ the real
    /// buffer capacity).
    pub ghost_len: usize,
}

/// Snapshot of the arena's mixer: per-expert weights and ghost-miss
/// counts, the current leader, and authority-switch statistics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ArenaState {
    /// One entry per roster expert, in roster order.
    pub experts: Vec<ExpertState>,
    /// Roster index of the current leader (the argmax weight; ties go to
    /// the lowest index).
    pub leader: usize,
    /// Number of times eviction authority moved to a different expert.
    pub switches: u64,
    /// Accesses observed by the arena (inserts + hits).
    pub accesses: u64,
    /// Real buffer misses observed by the arena (inserts).
    pub misses: u64,
}

impl ArenaState {
    /// Ghost misses of the best expert in hindsight.
    pub fn best_expert_misses(&self) -> u64 {
        self.experts
            .iter()
            .map(|e| e.ghost_misses)
            .min()
            .unwrap_or(0)
    }

    /// Cumulative regret versus the best expert in hindsight: real misses
    /// minus the best expert's counterfactual misses. Negative regret means
    /// the mixed policy beat every individual expert.
    pub fn regret(&self) -> i64 {
        self.misses as i64 - self.best_expert_misses() as i64
    }

    /// The current weight vector, in roster order.
    pub fn weights(&self) -> Vec<f64> {
        self.experts.iter().map(|e| e.weight).collect()
    }
}

/// One roster slot: mirror (tracks the real buffer), sim + ghost cache
/// (tracks the counterfactual buffer), and mixer bookkeeping.
struct Expert {
    label: String,
    mirror: Box<dyn ReplacementPolicy + Send>,
    sim: Box<dyn ReplacementPolicy + Send>,
    /// Membership of the simulated buffer. A `LinkedOrder` (not a hash
    /// set) so the deterministic-replay guarantee never depends on hash
    /// iteration order.
    ghost: LinkedOrder<PageId>,
    ghost_misses: u64,
    weight: f64,
}

impl Expert {
    /// Feeds one access into the simulated buffer. Returns `true` when the
    /// ghost cache missed (the expert is charged a loss).
    fn simulate(&mut self, page: &Page, ctx: AccessContext, now: u64, capacity: usize) -> bool {
        let id = page.id;
        if self.ghost.contains(&id) {
            self.sim.on_hit(page, ctx, now);
            self.ghost.move_to_back(&id);
            return false;
        }
        self.ghost_misses += 1;
        while self.ghost.len() >= capacity {
            let ghost = &self.ghost;
            let victim = self
                .sim
                .nominate(ctx, &|p| ghost.contains(&p))
                .or_else(|| self.ghost.front());
            let Some(victim) = victim else { break };
            self.sim.on_remove(victim);
            self.ghost.remove(&victim);
        }
        self.sim.on_insert(page, ctx, now);
        self.ghost.push_back(id);
        true
    }
}

/// The expert arena (`PolicyKind::Arena`).
///
/// See the [module documentation](self) for the architecture. The arena is
/// a regular [`ReplacementPolicy`]: the buffer manager drives it exactly
/// like any other policy, and all mixing happens inside the event handlers,
/// which keeps replay bit-for-bit deterministic.
pub struct ArenaPolicy {
    params: ArenaParams,
    capacity: usize,
    experts: Vec<Expert>,
    leader: usize,
    switches: u64,
    accesses: u64,
    misses: u64,
    /// Pages currently resident in the *real* buffer, in recency order.
    resident: LinkedOrder<PageId>,
    /// The last ≤ `capacity` distinct accessed pages; the liveness horizon
    /// for pruning expert history (LRU-K HIST) beyond residents and ghosts.
    recent: LinkedOrder<PageId>,
}

impl ArenaPolicy {
    /// Creates an arena over `params.roster` for a buffer of `capacity`
    /// pages.
    ///
    /// # Panics
    /// Panics if `capacity == 0`, `decay` is outside `[0, 1)` or `share`
    /// is outside `[0, 1]`.
    pub fn new(capacity: usize, params: ArenaParams) -> Self {
        assert!(capacity > 0, "the arena requires a non-empty buffer");
        assert!(
            (0.0..1.0).contains(&params.decay),
            "decay must be in [0, 1)"
        );
        assert!(
            (0.0..=1.0).contains(&params.share),
            "share must be in [0, 1]"
        );
        let kinds = params.roster.kinds();
        let uniform = 1.0 / kinds.len() as f64;
        let experts = kinds
            .iter()
            .map(|kind| Expert {
                label: kind.label(),
                mirror: kind.build(capacity),
                sim: kind.build(capacity),
                ghost: LinkedOrder::new(),
                ghost_misses: 0,
                weight: uniform,
            })
            .collect();
        ArenaPolicy {
            params,
            capacity,
            experts,
            leader: 0,
            switches: 0,
            accesses: 0,
            misses: 0,
            resident: LinkedOrder::new(),
            recent: LinkedOrder::new(),
        }
    }

    /// The parameters the arena was built with.
    pub fn params(&self) -> ArenaParams {
        self.params
    }

    /// Roster index of the current leader.
    pub fn leader(&self) -> usize {
        self.leader
    }

    /// One access (insert or hit): run every ghost simulation, update the
    /// mixer weights, and re-elect the leader.
    fn observe(&mut self, page: &Page, ctx: AccessContext, now: u64) {
        self.accesses += 1;
        if !self.recent.move_to_back(&page.id) {
            self.recent.push_back(page.id);
        }
        while self.recent.len() > self.capacity {
            self.recent.pop_front();
        }

        let n = self.experts.len() as f64;
        for expert in &mut self.experts {
            let missed = expert.simulate(page, ctx, now, self.capacity);
            if missed && self.params.decay > 0.0 {
                expert.weight *= 1.0 - self.params.decay;
            }
        }

        // Normalize, floor, and mix in the fixed share of the uniform
        // distribution.
        let sum: f64 = self.experts.iter().map(|e| e.weight).sum();
        for expert in &mut self.experts {
            let mut w = expert.weight / sum;
            w = w.max(MIN_WEIGHT);
            if self.params.share > 0.0 {
                w = (1.0 - self.params.share) * w + self.params.share / n;
            }
            expert.weight = w;
        }
        let sum: f64 = self.experts.iter().map(|e| e.weight).sum();
        for expert in &mut self.experts {
            expert.weight /= sum;
        }

        // Leader = argmax weight, ties to the lowest roster index; strict
        // '>' means authority only moves on a real overtake.
        let mut leader = 0usize;
        for i in 1..self.experts.len() {
            if self.experts[i].weight > self.experts[leader].weight {
                leader = i;
            }
        }
        if leader != self.leader {
            self.leader = leader;
            self.switches += 1;
        }

        // Periodically prune unbounded expert history (LRU-K HIST) down to
        // the liveness horizon so total ghost memory stays bounded.
        if self.accesses.is_multiple_of(self.capacity as u64) {
            self.prune();
        }
    }

    /// Drops expert history for pages outside the liveness horizon
    /// (real residents, the expert's own ghosts, and the recency window).
    fn prune(&mut self) {
        let resident = &self.resident;
        let recent = &self.recent;
        for expert in &mut self.experts {
            expert
                .mirror
                .retain_history(&|p| resident.contains(&p) || recent.contains(&p));
            let ghost = &expert.ghost;
            expert
                .sim
                .retain_history(&|p| ghost.contains(&p) || recent.contains(&p));
        }
    }

    fn snapshot(&self) -> ArenaState {
        ArenaState {
            experts: self
                .experts
                .iter()
                .map(|e| ExpertState {
                    label: e.label.clone(),
                    weight: e.weight,
                    ghost_misses: e.ghost_misses,
                    ghost_len: e.ghost.len(),
                })
                .collect(),
            leader: self.leader,
            switches: self.switches,
            accesses: self.accesses,
            misses: self.misses,
        }
    }
}

impl PolicyEvents for ArenaPolicy {
    fn on_insert(&mut self, page: &Page, ctx: AccessContext, now: u64) {
        self.misses += 1;
        self.resident.push_back(page.id);
        for expert in &mut self.experts {
            expert.mirror.on_insert(page, ctx, now);
        }
        self.observe(page, ctx, now);
    }

    fn on_hit(&mut self, page: &Page, ctx: AccessContext, now: u64) {
        self.resident.move_to_back(&page.id);
        for expert in &mut self.experts {
            expert.mirror.on_hit(page, ctx, now);
        }
        self.observe(page, ctx, now);
    }

    fn on_update(&mut self, page: &Page) {
        for expert in &mut self.experts {
            expert.mirror.on_update(page);
            if expert.ghost.contains(&page.id) {
                expert.sim.on_update(page);
            }
        }
    }

    fn on_remove(&mut self, id: PageId) {
        // Only the real buffer shrinks; the ghost caches keep simulating
        // what each expert would have retained.
        self.resident.remove(&id);
        for expert in &mut self.experts {
            expert.mirror.on_remove(id);
        }
    }
}

impl VictimRanker for ArenaPolicy {
    fn nominate(
        &mut self,
        ctx: AccessContext,
        evictable: &dyn Fn(PageId) -> bool,
    ) -> Option<PageId> {
        // Authority belongs to the leader; if its mirror abstains (e.g.
        // everything it tracks is pinned), poll the rest of the roster in
        // order, then fall back to the arena's own recency order.
        let leader = self.leader;
        if let Some(victim) = self.experts[leader].mirror.nominate(ctx, evictable) {
            return Some(victim);
        }
        for (i, expert) in self.experts.iter_mut().enumerate() {
            if i == leader {
                continue;
            }
            if let Some(victim) = expert.mirror.nominate(ctx, evictable) {
                return Some(victim);
            }
        }
        self.resident.iter().copied().find(|&id| evictable(id))
    }
}

impl ReplacementPolicy for ArenaPolicy {
    fn name(&self) -> String {
        "ARENA".into()
    }

    fn retained_history(&self) -> usize {
        // One consistent definition: records kept for pages outside the
        // *real* buffer — ghost-cache entries plus whatever history the
        // mirrors and sims retain internally (2Q A1out, pruned LRU-K HIST).
        let resident = &self.resident;
        self.experts
            .iter()
            .map(|e| {
                let ghosts = e.ghost.iter().filter(|p| !resident.contains(p)).count();
                ghosts + e.mirror.retained_history() + e.sim.retained_history()
            })
            .sum()
    }

    fn retain_history(&mut self, live: &dyn Fn(PageId) -> bool) {
        let _ = live;
        self.prune();
    }

    fn arena_state(&self) -> Option<ArenaState> {
        Some(self.snapshot())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asb_geom::{Rect, SpatialStats};
    use asb_storage::{PageMeta, QueryId};
    use bytes::Bytes;

    fn page(raw: u64) -> Page {
        let side = (raw % 7) as f64 + 0.5;
        let meta = PageMeta::data(SpatialStats::from_rects(&[Rect::new(0.0, 0.0, side, side)]));
        Page::new(PageId::new(raw), meta, Bytes::new()).unwrap()
    }

    fn q(n: u64) -> AccessContext {
        AccessContext::query(QueryId::new(n))
    }

    fn all(_: PageId) -> bool {
        true
    }

    /// Drives `arena` like a buffer manager over `trace` with the given
    /// capacity, returning the eviction sequence.
    fn drive(arena: &mut ArenaPolicy, capacity: usize, trace: &[u64]) -> Vec<PageId> {
        let mut resident = Vec::new();
        let mut evictions = Vec::new();
        for (now, &raw) in trace.iter().enumerate() {
            let now = now as u64 + 1;
            let p = page(raw);
            if resident.contains(&p.id) {
                arena.on_hit(&p, q(now), now);
            } else {
                if resident.len() >= capacity {
                    let victim = arena.select_victim(q(now), &all).expect("victim");
                    resident.retain(|&id| id != victim);
                    arena.on_remove(victim);
                    evictions.push(victim);
                }
                resident.push(p.id);
                arena.on_insert(&p, q(now), now);
            }
        }
        evictions
    }

    #[test]
    fn weights_stay_normalized_and_positive() {
        let mut arena = ArenaPolicy::new(4, ArenaParams::default());
        let trace: Vec<u64> = (0..200u64).map(|i| (i * 7 + i / 3) % 23).collect();
        drive(&mut arena, 4, &trace);
        let state = arena.arena_state().unwrap();
        let sum: f64 = state.weights().iter().sum();
        assert!((sum - 1.0).abs() < 1e-9, "weights sum to {sum}");
        assert!(state.weights().iter().all(|&w| w > 0.0));
        assert_eq!(state.experts.len(), ArenaParams::default().roster.len());
    }

    #[test]
    fn leader_is_argmax_with_lowest_index_ties() {
        let mut arena = ArenaPolicy::new(4, ArenaParams::default());
        let trace: Vec<u64> = (0..300u64).map(|i| (i * 13 + 5) % 31).collect();
        drive(&mut arena, 4, &trace);
        let state = arena.arena_state().unwrap();
        let best = state
            .weights()
            .iter()
            .cloned()
            .fold(f64::NEG_INFINITY, f64::max);
        assert_eq!(state.weights()[state.leader], best);
        let first_argmax = state.weights().iter().position(|&w| w == best).unwrap();
        assert_eq!(state.leader, first_argmax);
    }

    #[test]
    fn zero_decay_freezes_the_leader_on_expert_zero() {
        let params = ArenaParams {
            decay: 0.0,
            ..ArenaParams::default()
        };
        let trace: Vec<u64> = (0..400u64).map(|i| (i * 11 + i / 5) % 37).collect();
        let mut arena = ArenaPolicy::new(6, params);
        let arena_evictions = drive(&mut arena, 6, &trace);
        assert_eq!(arena.arena_state().unwrap().switches, 0);
        assert_eq!(arena.leader(), 0);

        // Expert 0 of every roster is plain LRU: the frozen arena must make
        // bit-identical eviction decisions.
        let mut plain = crate::policies::LruPolicy::new();
        let mut resident = Vec::new();
        let mut evictions = Vec::new();
        for (now, &raw) in trace.iter().enumerate() {
            let now = now as u64 + 1;
            let p = page(raw);
            if resident.contains(&p.id) {
                plain.on_hit(&p, q(now), now);
            } else {
                if resident.len() >= 6 {
                    let victim = plain.select_victim(q(now), &all).unwrap();
                    resident.retain(|&id| id != victim);
                    plain.on_remove(victim);
                    evictions.push(victim);
                }
                resident.push(p.id);
                plain.on_insert(&p, q(now), now);
            }
        }
        assert_eq!(arena_evictions, evictions);
    }

    #[test]
    fn ghost_caches_are_bounded_by_capacity() {
        let capacity = 5;
        let mut arena = ArenaPolicy::new(capacity, ArenaParams::default());
        let trace: Vec<u64> = (0..500u64).map(|i| (i * 17 + 3) % 61).collect();
        drive(&mut arena, capacity, &trace);
        let state = arena.arena_state().unwrap();
        for expert in &state.experts {
            assert!(
                expert.ghost_len <= capacity,
                "{} ghost cache holds {} > capacity {}",
                expert.label,
                expert.ghost_len,
                capacity
            );
        }
        let bound = 3 * state.experts.len() * capacity;
        assert!(
            arena.retained_history() <= bound,
            "retained history {} exceeds documented bound {}",
            arena.retained_history(),
            bound
        );
    }

    #[test]
    fn authority_switches_are_counted() {
        // An adversarial flip between a scan (LRU-hostile) and a hot set
        // should move authority at least once under an aggressive decay.
        let params = ArenaParams {
            decay: 0.3,
            share: 0.01,
            roster: Roster::Lean,
        };
        let mut arena = ArenaPolicy::new(4, params);
        let mut trace = Vec::new();
        for round in 0..40u64 {
            for i in 0..12u64 {
                trace.push(round % 2 * 100 + i); // alternate two disjoint scans
            }
        }
        drive(&mut arena, 4, &trace);
        let state = arena.arena_state().unwrap();
        assert!(state.accesses == trace.len() as u64);
        assert!(state.misses > 0);
        // With all experts losing on a pure scan the leader may stay put;
        // just assert the counter is consistent with the leader history.
        assert!(state.switches < state.accesses);
    }

    #[test]
    fn regret_is_misses_minus_best_expert() {
        let mut arena = ArenaPolicy::new(4, ArenaParams::default());
        let trace: Vec<u64> = (0..150u64).map(|i| (i * 3 + 1) % 19).collect();
        drive(&mut arena, 4, &trace);
        let state = arena.arena_state().unwrap();
        let best = state.experts.iter().map(|e| e.ghost_misses).min().unwrap();
        assert_eq!(state.best_expert_misses(), best);
        assert_eq!(state.regret(), state.misses as i64 - best as i64);
    }
}
