//! Background flusher: drains dirty frames ahead of eviction pressure.
//!
//! With write-back caching, dirty frames accumulate until eviction or an
//! explicit flush writes them out — which puts store writes on the
//! latency-critical miss path and stretches the redo horizon the next
//! checkpoint must cover. The [`Flusher`] runs the same drain off the
//! critical path: whenever the pool's dirty count crosses a *high
//! watermark* it writes frames back (oldest redo horizon first, via
//! [`ShardedBuffer::flush_some`]) until the count falls below a *low
//! watermark*, then optionally appends a pool-wide checkpoint so recovery
//! work stays bounded.
//!
//! The flusher is built entirely on the [`crate::sync`] facade:
//! [`Flusher::run_once`] is an ordinary synchronous method, so the
//! deterministic scheduler (`--cfg asb_schedule`) can interleave flusher
//! passes against readers, writers and checkpointers in
//! `tests/interleave.rs`. [`Flusher::spawn`] wraps `run_once` in a
//! facade-spawned loop for production use.

use crate::sharded::ShardedBuffer;
use crate::sync::{AtomicBool, Ordering};
use asb_storage::{ConcurrentPageStore, Result};
use std::sync::Arc;

/// Watermark configuration for a [`Flusher`].
#[derive(Debug, Clone, Copy)]
pub struct FlusherConfig {
    /// Dirty fraction of pool capacity at which a pass starts draining
    /// (default 0.5).
    pub high_watermark: f64,
    /// Dirty fraction down to which a pass drains once triggered
    /// (default 0.25). Draining below the trigger point gives hysteresis:
    /// passes do real batches instead of oscillating around one threshold.
    pub low_watermark: f64,
    /// Maximum frames written back per [`ShardedBuffer::flush_some`] call
    /// within a pass (default 16). Bounds how long the flusher holds any
    /// one shard's attention.
    pub max_batch: usize,
    /// Append a pool-wide checkpoint after a pass that flushed anything,
    /// if the pool has a WAL attached (default false). Draining the oldest
    /// `rec_lsn` frames first is what lets this checkpoint's redo horizon
    /// advance furthest.
    pub checkpoint_after_drain: bool,
}

impl Default for FlusherConfig {
    fn default() -> Self {
        FlusherConfig {
            high_watermark: 0.5,
            low_watermark: 0.25,
            max_batch: 16,
            checkpoint_after_drain: false,
        }
    }
}

/// Counters describing the flusher's work so far.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct FlusherStats {
    /// Passes that ran (including ones that found nothing to do).
    pub passes: u64,
    /// Dirty frames written back across all passes.
    pub pages_flushed: u64,
    /// Checkpoints appended after drains.
    pub checkpoints: u64,
    /// Passes that ended with a flush or checkpoint error (failed frames
    /// stay dirty and are retried by a later pass).
    pub errors: u64,
}

/// A watermark-driven background flusher over a [`ShardedBuffer`].
///
/// Construct with [`Flusher::new`], then either call
/// [`run_once`](Flusher::run_once) from your own loop (tests, cooperative
/// schedulers) or hand the flusher to [`spawn`](Flusher::spawn) for a
/// facade-thread loop.
#[derive(Debug)]
pub struct Flusher<S: ConcurrentPageStore> {
    pool: ShardedBuffer<S>,
    cfg: FlusherConfig,
    stats: FlusherStats,
}

impl<S: ConcurrentPageStore> Flusher<S> {
    /// Creates a flusher over a clone of the pool handle.
    ///
    /// # Panics
    /// Panics unless `0.0 <= low_watermark <= high_watermark <= 1.0` and
    /// `max_batch > 0`.
    pub fn new(pool: ShardedBuffer<S>, cfg: FlusherConfig) -> Self {
        assert!(
            (0.0..=1.0).contains(&cfg.low_watermark)
                && (0.0..=1.0).contains(&cfg.high_watermark)
                && cfg.low_watermark <= cfg.high_watermark,
            "watermarks must satisfy 0 <= low <= high <= 1"
        );
        assert!(cfg.max_batch > 0, "flusher batch size must be positive");
        Flusher {
            pool,
            cfg,
            stats: FlusherStats::default(),
        }
    }

    /// The flusher's configuration.
    pub fn config(&self) -> FlusherConfig {
        self.cfg
    }

    /// Work counters so far.
    pub fn stats(&self) -> FlusherStats {
        self.stats
    }

    /// Dirty count at which a pass starts draining.
    fn high_threshold(&self) -> usize {
        watermark_pages(self.cfg.high_watermark, self.pool.capacity())
    }

    /// Runs one watermark check + drain pass; returns the number of frames
    /// written back (0 when the dirty count was below the high watermark).
    ///
    /// Per-frame write failures leave their frames dirty (to be retried on
    /// a later pass), are counted in [`FlusherStats::errors`] and end the
    /// pass early with the underlying error.
    pub fn run_once(&mut self) -> Result<usize> {
        self.stats.passes += 1;
        if self.pool.dirty_count() < self.high_threshold().max(1) {
            return Ok(0);
        }
        let floor = watermark_pages(self.cfg.low_watermark, self.pool.capacity());
        let mut flushed = 0usize;
        loop {
            if self.pool.dirty_count() <= floor {
                break;
            }
            match self.pool.flush_some(self.cfg.max_batch) {
                Ok(0) => break,
                Ok(n) => {
                    flushed += n;
                    self.stats.pages_flushed += n as u64;
                }
                Err(e) => {
                    self.stats.errors += 1;
                    return Err(e);
                }
            }
        }
        if flushed > 0 && self.cfg.checkpoint_after_drain && self.pool.has_wal() {
            match self.pool.checkpoint() {
                Ok(_) => self.stats.checkpoints += 1,
                Err(e) => {
                    self.stats.errors += 1;
                    return Err(e);
                }
            }
        }
        Ok(flushed)
    }

    /// Moves the flusher onto a facade thread that runs
    /// [`run_once`](Flusher::run_once) every `interval_ms` until
    /// [`FlusherHandle::stop`] is called. Errors are absorbed into
    /// [`FlusherStats::errors`] (the failed frames stay dirty and are
    /// retried next interval).
    pub fn spawn(mut self, interval_ms: u64) -> FlusherHandle<S>
    where
        S: 'static,
    {
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let worker = crate::sync::thread::spawn(move || {
            while !stop_flag.load(Ordering::SeqCst) {
                // run_once already records the error in stats.errors; the
                // loop's job is only to keep going.
                let _ = self.run_once();
                if stop_flag.load(Ordering::SeqCst) {
                    break;
                }
                crate::sync::thread::sleep_ms(interval_ms);
            }
            self
        });
        FlusherHandle { stop, worker }
    }
}

/// Converts a watermark fraction into a page count over `capacity`.
fn watermark_pages(fraction: f64, capacity: usize) -> usize {
    // Clamp defends against NaN as well as out-of-range arithmetic drift.
    ((fraction * capacity as f64)
        .ceil()
        .clamp(0.0, capacity as f64)) as usize
}

/// Handle to a spawned background flusher; [`stop`](FlusherHandle::stop)
/// shuts the loop down and returns the [`Flusher`] (with its final
/// statistics).
pub struct FlusherHandle<S: ConcurrentPageStore> {
    stop: Arc<AtomicBool>,
    worker: crate::sync::thread::JoinHandle<Flusher<S>>,
}

impl<S: ConcurrentPageStore> FlusherHandle<S> {
    /// Signals the loop to exit and waits for the in-progress pass (if
    /// any) to finish; returns the flusher for inspection or reuse.
    pub fn stop(self) -> Flusher<S> {
        self.stop.store(true, Ordering::SeqCst);
        self.worker.join()
    }
}

impl<S: ConcurrentPageStore> std::fmt::Debug for FlusherHandle<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlusherHandle")
            .field("stopped", &self.stop.load(Ordering::SeqCst))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::PolicyKind;
    use asb_geom::SpatialStats;
    use asb_storage::{
        AccessContext, DiskManager, Page, PageId, PageMeta, PageStore, Wal, WalConfig,
    };
    use bytes::Bytes;

    fn meta() -> PageMeta {
        PageMeta::data(SpatialStats::EMPTY)
    }

    fn pool_with_pages(n: usize, capacity: usize) -> (ShardedBuffer<DiskManager>, Vec<PageId>) {
        let mut d = DiskManager::new();
        let ids = (0..n)
            .map(|i| d.allocate(meta(), Bytes::from(vec![i as u8])).unwrap())
            .collect();
        d.reset_stats();
        (ShardedBuffer::new(d, PolicyKind::Lru, capacity, 2), ids)
    }

    fn dirty_all(pool: &ShardedBuffer<DiskManager>, ids: &[PageId]) {
        for (i, &id) in ids.iter().enumerate() {
            pool.write_buffered(Page::new(id, meta(), Bytes::from(vec![i as u8, 1])).unwrap())
                .unwrap();
        }
    }

    #[test]
    fn idle_below_the_high_watermark() {
        let (pool, ids) = pool_with_pages(16, 16);
        dirty_all(&pool, &ids[..4]);
        let mut flusher = Flusher::new(pool.clone(), FlusherConfig::default());
        assert_eq!(flusher.run_once().unwrap(), 0, "4 dirty of 16 < high 0.5");
        assert_eq!(pool.dirty_count(), 4);
        assert_eq!(flusher.stats().passes, 1);
    }

    #[test]
    fn drains_to_the_low_watermark_once_triggered() {
        let (pool, ids) = pool_with_pages(16, 16);
        dirty_all(&pool, &ids); // 16 dirty of 16
        let mut flusher = Flusher::new(
            pool.clone(),
            FlusherConfig {
                max_batch: 3,
                ..FlusherConfig::default()
            },
        );
        let flushed = flusher.run_once().unwrap();
        assert!(flushed >= 12, "must reach the low watermark, got {flushed}");
        assert!(pool.dirty_count() <= 4, "low watermark is 0.25 * 16");
        assert_eq!(flusher.stats().pages_flushed, flushed as u64);
        // Flushed pages actually reached the store.
        pool.flush().unwrap();
        let verified = pool
            .with_store(|s| {
                ids.iter()
                    .filter(|&&id| s.read(id, AccessContext::default()).unwrap().payload.len() == 2)
                    .count()
            })
            .unwrap();
        assert_eq!(verified, ids.len());
    }

    #[test]
    fn checkpoints_after_a_drain_when_configured() {
        let (pool, ids) = pool_with_pages(8, 8);
        pool.attach_wal(Wal::shared(WalConfig::default()));
        dirty_all(&pool, &ids);
        let mut flusher = Flusher::new(
            pool.clone(),
            FlusherConfig {
                checkpoint_after_drain: true,
                ..FlusherConfig::default()
            },
        );
        flusher.run_once().unwrap();
        assert_eq!(flusher.stats().checkpoints, 1);
        assert_eq!(pool.stats().checkpoints, 1);
    }

    #[test]
    fn spawned_flusher_stops_and_returns_itself() {
        let (pool, ids) = pool_with_pages(8, 8);
        dirty_all(&pool, &ids);
        let handle = Flusher::new(pool.clone(), FlusherConfig::default()).spawn(1);
        // The pool is fully dirty, so the first pass must drain it; poll
        // rather than assume scheduling order.
        for _ in 0..1000 {
            if pool.dirty_count() <= 2 {
                break;
            }
            crate::sync::thread::sleep_ms(1);
        }
        let flusher = handle.stop();
        assert!(flusher.stats().passes >= 1);
        assert!(pool.dirty_count() <= 2, "background pass drained the pool");
    }

    #[test]
    #[should_panic(expected = "watermarks")]
    fn inverted_watermarks_panic() {
        let (pool, _) = pool_with_pages(1, 2);
        let _ = Flusher::new(
            pool,
            FlusherConfig {
                high_watermark: 0.1,
                low_watermark: 0.9,
                ..FlusherConfig::default()
            },
        );
    }
}
