use crate::policies::{
    AsbParams, AsbPolicy, ClockPolicy, FifoPolicy, LruKPolicy, LruPolicy, LruPriorityPolicy,
    LruTypePolicy, RandomPolicy, SlruPolicy, SpatialPolicy, TwoQPolicy,
};
use asb_geom::SpatialCriterion;
use asb_storage::{AccessContext, Page, PageId};
use serde::{Deserialize, Serialize};

/// A page-replacement policy.
///
/// The [`BufferManager`](crate::BufferManager) owns the page table; the
/// policy only maintains the ordering state needed to pick eviction victims.
/// The manager guarantees the following protocol:
///
/// 1. every page currently in the buffer has been announced by exactly one
///    [`on_insert`](ReplacementPolicy::on_insert) and not yet retracted by
///    [`on_remove`](ReplacementPolicy::on_remove);
/// 2. [`on_hit`](ReplacementPolicy::on_hit) is only called for resident
///    pages;
/// 3. [`select_victim`](ReplacementPolicy::select_victim) is only called
///    while at least one resident page satisfies `evictable` (i.e. is not
///    pinned), and its return value is always a resident, evictable page;
/// 4. `now` ticks are strictly increasing across calls.
///
/// Policies must be [`Send`]: the sharded buffer pool moves each shard's
/// policy behind a mutex shared across serving threads.
pub trait ReplacementPolicy: Send {
    /// Human-readable policy name, as used in the paper's figures
    /// (e.g. `"LRU"`, `"LRU-2"`, `"A"`, `"SLRU 25%"`, `"ASB"`).
    fn name(&self) -> String;

    /// A page has been loaded into the buffer (after a miss) or admitted on
    /// allocation.
    fn on_insert(&mut self, page: &Page, ctx: AccessContext, now: u64);

    /// A resident page has been requested again.
    fn on_hit(&mut self, page: &Page, ctx: AccessContext, now: u64);

    /// A resident page has been rewritten; `page` carries the fresh
    /// metadata (spatial criteria may have changed).
    fn on_update(&mut self, page: &Page);

    /// Chooses the page to drop. `ctx` is the access context of the request
    /// that triggered the eviction (LRU-K excludes pages whose most recent
    /// reference is correlated with it, i.e. belongs to the same query).
    /// `evictable(id)` reports whether the page may be evicted (it is
    /// resident and unpinned). Returns `None` only if no tracked page is
    /// evictable.
    fn select_victim(
        &mut self,
        ctx: AccessContext,
        evictable: &dyn Fn(PageId) -> bool,
    ) -> Option<PageId>;

    /// A page has left the buffer (either as the selected victim or through
    /// explicit invalidation).
    fn on_remove(&mut self, id: PageId);

    /// For the adaptable spatial buffer: the current candidate-set size.
    /// `None` for policies without that notion.
    fn candidate_size(&self) -> Option<usize> {
        None
    }

    /// Number of history records the policy retains for pages **outside**
    /// the buffer (LRU-K keeps HIST for evicted pages; the paper calls this
    /// out as its essential memory disadvantage). Zero for all others.
    fn retained_history(&self) -> usize {
        0
    }

    /// For the adaptable spatial buffer: the overflow-buffer page ids in
    /// FIFO order (front first) together with the overflow capacity.
    /// `None` for policies without an overflow buffer. Exposed so invariant
    /// tests can check the 20%-capacity bound and FIFO order from outside.
    fn overflow_state(&self) -> Option<(Vec<PageId>, usize)> {
        None
    }
}

/// Factory enumeration of every policy in the study.
///
/// `PolicyKind` is `Copy + Serialize`, so experiment configurations can name
/// policies declaratively; [`PolicyKind::build`] instantiates the policy for
/// a concrete buffer capacity.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum PolicyKind {
    /// Least recently used (the paper's baseline).
    Lru,
    /// First in, first out.
    Fifo,
    /// Second-chance clock.
    Clock,
    /// Uniformly random victim (seeded, deterministic).
    Random {
        /// RNG seed.
        seed: u64,
    },
    /// Type-based LRU: object pages drop first, then data, then directory.
    LruT,
    /// Priority-based LRU: priority = level in the tree, root highest.
    LruP,
    /// 2Q of Johnson/Shasha: FIFO probation + bounded ghost queue +
    /// protected LRU (an LRU-2 approximation at constant cost).
    TwoQ,
    /// LRU-K of O'Neil/O'Neil/Weikum with query-correlated references.
    LruK {
        /// The K in LRU-K (the paper evaluates 2, 3 and 5).
        k: usize,
    },
    /// Pure spatial page replacement with the given criterion (§2.3).
    Spatial(SpatialCriterion),
    /// Static combination (§4.1): LRU candidate set of a fixed fraction of
    /// the buffer, spatial criterion picks the victim from it.
    Slru {
        /// Candidate-set size as a fraction of the buffer (paper: 0.25, 0.5).
        candidate_fraction: f64,
        /// Spatial criterion applied within the candidate set.
        criterion: SpatialCriterion,
    },
    /// Adaptable spatial buffer (§4.2) with the paper's default parameters:
    /// 20 % overflow buffer, initial candidate set 25 % of the main part,
    /// adaptation step 1 % of the main part, criterion A.
    Asb,
    /// Adaptable spatial buffer with explicit parameters.
    AsbWith(AsbParams),
}

impl PolicyKind {
    /// Instantiates the policy for a buffer of `capacity` pages.
    pub fn build(&self, capacity: usize) -> Box<dyn ReplacementPolicy + Send> {
        match *self {
            PolicyKind::Lru => Box::new(LruPolicy::new()),
            PolicyKind::Fifo => Box::new(FifoPolicy::new()),
            PolicyKind::Clock => Box::new(ClockPolicy::new()),
            PolicyKind::Random { seed } => Box::new(RandomPolicy::new(seed)),
            PolicyKind::LruT => Box::new(LruTypePolicy::new()),
            PolicyKind::LruP => Box::new(LruPriorityPolicy::new()),
            PolicyKind::TwoQ => Box::new(TwoQPolicy::new(capacity)),
            PolicyKind::LruK { k } => Box::new(LruKPolicy::new(k)),
            PolicyKind::Spatial(criterion) => Box::new(SpatialPolicy::new(criterion)),
            PolicyKind::Slru {
                candidate_fraction,
                criterion,
            } => Box::new(SlruPolicy::new(capacity, candidate_fraction, criterion)),
            PolicyKind::Asb => Box::new(AsbPolicy::new(capacity, AsbParams::default())),
            PolicyKind::AsbWith(params) => Box::new(AsbPolicy::new(capacity, params)),
        }
    }

    /// The display name used in figures and tables.
    pub fn label(&self) -> String {
        match *self {
            PolicyKind::Lru => "LRU".into(),
            PolicyKind::Fifo => "FIFO".into(),
            PolicyKind::Clock => "CLOCK".into(),
            PolicyKind::Random { .. } => "RANDOM".into(),
            PolicyKind::LruT => "LRU-T".into(),
            PolicyKind::LruP => "LRU-P".into(),
            PolicyKind::TwoQ => "2Q".into(),
            PolicyKind::LruK { k } => format!("LRU-{k}"),
            PolicyKind::Spatial(c) => c.short_name().into(),
            PolicyKind::Slru {
                candidate_fraction, ..
            } => {
                format!("SLRU {:.0}%", candidate_fraction * 100.0)
            }
            PolicyKind::Asb | PolicyKind::AsbWith(_) => "ASB".into(),
        }
    }
}

impl std::fmt::Display for PolicyKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_paper_figures() {
        assert_eq!(PolicyKind::Lru.label(), "LRU");
        assert_eq!(PolicyKind::LruK { k: 2 }.label(), "LRU-2");
        assert_eq!(PolicyKind::Spatial(SpatialCriterion::Area).label(), "A");
        assert_eq!(
            PolicyKind::Slru {
                candidate_fraction: 0.25,
                criterion: SpatialCriterion::Area
            }
            .label(),
            "SLRU 25%"
        );
        assert_eq!(PolicyKind::Asb.label(), "ASB");
    }

    #[test]
    fn build_produces_matching_names() {
        for kind in [
            PolicyKind::Lru,
            PolicyKind::Fifo,
            PolicyKind::Clock,
            PolicyKind::Random { seed: 1 },
            PolicyKind::LruT,
            PolicyKind::LruP,
            PolicyKind::TwoQ,
            PolicyKind::LruK { k: 3 },
            PolicyKind::Spatial(SpatialCriterion::Margin),
            PolicyKind::Slru {
                candidate_fraction: 0.5,
                criterion: SpatialCriterion::Area,
            },
            PolicyKind::Asb,
        ] {
            let policy = kind.build(100);
            assert_eq!(policy.name(), kind.label(), "{kind:?}");
        }
    }
}
