use crate::policies::{
    ArenaParams, ArenaPolicy, AsbParams, AsbPolicy, ClockPolicy, FifoPolicy, LruKPolicy, LruPolicy,
    LruPriorityPolicy, LruTypePolicy, RandomPolicy, SlruPolicy, SpatialPolicy, TwoQPolicy,
};
use asb_geom::SpatialCriterion;
use asb_storage::{AccessContext, Page, PageId};
use serde::{Deserialize, Serialize};

use crate::policies::ArenaState;

/// The event surface of a replacement policy: everything a policy needs to
/// *observe* the buffer without owning eviction authority.
///
/// The [`BufferManager`](crate::BufferManager) owns the page table; a policy
/// only maintains the ordering state needed to rank eviction victims. The
/// manager guarantees the following protocol:
///
/// 1. every page currently in the buffer has been announced by exactly one
///    [`on_insert`](PolicyEvents::on_insert) and not yet retracted by
///    [`on_remove`](PolicyEvents::on_remove);
/// 2. [`on_hit`](PolicyEvents::on_hit) is only called for resident pages;
/// 3. `now` ticks are strictly increasing across calls.
///
/// Splitting observation from authority is what makes policies *experts*:
/// the [`ArenaPolicy`] feeds the same event stream to a whole roster of
/// policies and lets each one nominate victims counterfactually.
pub trait PolicyEvents {
    /// A page has been loaded into the buffer (after a miss) or admitted on
    /// allocation.
    fn on_insert(&mut self, page: &Page, ctx: AccessContext, now: u64);

    /// A resident page has been requested again.
    fn on_hit(&mut self, page: &Page, ctx: AccessContext, now: u64);

    /// A resident page has been rewritten; `page` carries the fresh
    /// metadata (spatial criteria may have changed).
    fn on_update(&mut self, page: &Page);

    /// A page has left the buffer (either as the selected victim or through
    /// explicit invalidation).
    fn on_remove(&mut self, id: PageId);
}

/// The victim-ranking surface of a replacement policy.
///
/// `nominate` answers "which page would *you* evict right now?" without any
/// commitment that the nomination is acted upon — the arena polls every
/// expert's nomination but only the current leader's is executed. For a
/// standalone policy the manager's `select_victim` call simply delegates
/// here.
pub trait VictimRanker {
    /// Nominates the page this policy would drop. `ctx` is the access
    /// context of the request that triggered the eviction (LRU-K excludes
    /// pages whose most recent reference is correlated with it, i.e. belongs
    /// to the same query). `evictable(id)` reports whether the page may be
    /// evicted (it is resident and unpinned). Returns `None` only if no
    /// tracked page is evictable.
    fn nominate(
        &mut self,
        ctx: AccessContext,
        evictable: &dyn Fn(PageId) -> bool,
    ) -> Option<PageId>;
}

/// A page-replacement policy: an observable expert combining the event
/// surface ([`PolicyEvents`]) with the victim-ranking surface
/// ([`VictimRanker`]).
///
/// [`select_victim`](ReplacementPolicy::select_victim) is only called while
/// at least one resident page satisfies `evictable` (i.e. is not pinned),
/// and its return value is always a resident, evictable page. By default it
/// delegates to [`nominate`](VictimRanker::nominate); only policies whose
/// *execution* differs from their *nomination* (none today) would override.
///
/// Policies must be [`Send`]: the sharded buffer pool moves each shard's
/// policy behind a mutex shared across serving threads.
pub trait ReplacementPolicy: PolicyEvents + VictimRanker + Send {
    /// Human-readable policy name, as used in the paper's figures
    /// (e.g. `"LRU"`, `"LRU-2"`, `"A"`, `"SLRU 25%"`, `"ASB"`).
    fn name(&self) -> String;

    /// Chooses the page to drop and commits to that choice. See
    /// [`VictimRanker::nominate`] for the contract on `ctx` and `evictable`.
    fn select_victim(
        &mut self,
        ctx: AccessContext,
        evictable: &dyn Fn(PageId) -> bool,
    ) -> Option<PageId> {
        self.nominate(ctx, evictable)
    }

    /// For the adaptable spatial buffer: the current candidate-set size.
    /// `None` for policies without that notion.
    fn candidate_size(&self) -> Option<usize> {
        None
    }

    /// Number of history records the policy retains for pages **outside**
    /// the buffer it manages, under one definition for every kind of ghost
    /// state: LRU-K HIST entries for evicted pages, 2Q ghost-queue (A1out)
    /// entries, and the arena's per-expert ghost caches all count here.
    /// Zero for policies that remember nothing beyond their residents.
    fn retained_history(&self) -> usize {
        0
    }

    /// For the adaptable spatial buffer: the overflow-buffer page ids in
    /// FIFO order (front first) together with the overflow capacity.
    /// `None` for policies without an overflow buffer. Exposed so invariant
    /// tests can check the 20%-capacity bound and FIFO order from outside.
    fn overflow_state(&self) -> Option<(Vec<PageId>, usize)> {
        None
    }

    /// Drops history records for pages that are no longer `live`. Policies
    /// whose out-of-buffer history is unbounded (LRU-K) implement this so a
    /// host (the arena) can keep total ghost memory bounded; bounded
    /// policies ignore it.
    fn retain_history(&mut self, live: &dyn Fn(PageId) -> bool) {
        let _ = live;
    }

    /// For the expert arena: a snapshot of per-expert weights, ghost-cache
    /// miss counts, the current leader and authority-switch count. `None`
    /// for every non-arena policy.
    fn arena_state(&self) -> Option<ArenaState> {
        None
    }
}

/// Factory enumeration of every policy in the study.
///
/// `PolicyKind` is `Copy + Serialize`, so experiment configurations can name
/// policies declaratively; [`PolicyKind::build`] instantiates the policy for
/// a concrete buffer capacity.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum PolicyKind {
    /// Least recently used (the paper's baseline).
    Lru,
    /// First in, first out.
    Fifo,
    /// Second-chance clock.
    Clock,
    /// Uniformly random victim (seeded, deterministic).
    Random {
        /// RNG seed.
        seed: u64,
    },
    /// Type-based LRU: object pages drop first, then data, then directory.
    LruT,
    /// Priority-based LRU: priority = level in the tree, root highest.
    LruP,
    /// 2Q of Johnson/Shasha: FIFO probation + bounded ghost queue +
    /// protected LRU (an LRU-2 approximation at constant cost).
    TwoQ,
    /// LRU-K of O'Neil/O'Neil/Weikum with query-correlated references.
    LruK {
        /// The K in LRU-K (the paper evaluates 2, 3 and 5).
        k: usize,
    },
    /// Pure spatial page replacement with the given criterion (§2.3).
    Spatial(SpatialCriterion),
    /// Static combination (§4.1): LRU candidate set of a fixed fraction of
    /// the buffer, spatial criterion picks the victim from it.
    Slru {
        /// Candidate-set size as a fraction of the buffer (paper: 0.25, 0.5).
        candidate_fraction: f64,
        /// Spatial criterion applied within the candidate set.
        criterion: SpatialCriterion,
    },
    /// Adaptable spatial buffer (§4.2) with the paper's default parameters:
    /// 20 % overflow buffer, initial candidate set 25 % of the main part,
    /// adaptation step 1 % of the main part, criterion A.
    Asb,
    /// Adaptable spatial buffer with explicit parameters.
    AsbWith(AsbParams),
    /// Expert arena with default parameters: a multiplicative-weights mixer
    /// over the full expert roster that delegates eviction to the current
    /// leader while ghost caches count each expert's counterfactual misses.
    Arena,
    /// Expert arena with explicit parameters (decay, fixed-share rate,
    /// roster preset).
    ArenaWith(ArenaParams),
}

impl PolicyKind {
    /// Instantiates the policy for a buffer of `capacity` pages.
    pub fn build(&self, capacity: usize) -> Box<dyn ReplacementPolicy + Send> {
        match *self {
            PolicyKind::Lru => Box::new(LruPolicy::new()),
            PolicyKind::Fifo => Box::new(FifoPolicy::new()),
            PolicyKind::Clock => Box::new(ClockPolicy::new()),
            PolicyKind::Random { seed } => Box::new(RandomPolicy::new(seed)),
            PolicyKind::LruT => Box::new(LruTypePolicy::new()),
            PolicyKind::LruP => Box::new(LruPriorityPolicy::new()),
            PolicyKind::TwoQ => Box::new(TwoQPolicy::new(capacity)),
            PolicyKind::LruK { k } => Box::new(LruKPolicy::new(k)),
            PolicyKind::Spatial(criterion) => Box::new(SpatialPolicy::new(criterion)),
            PolicyKind::Slru {
                candidate_fraction,
                criterion,
            } => Box::new(SlruPolicy::new(capacity, candidate_fraction, criterion)),
            PolicyKind::Asb => Box::new(AsbPolicy::new(capacity, AsbParams::default())),
            PolicyKind::AsbWith(params) => Box::new(AsbPolicy::new(capacity, params)),
            PolicyKind::Arena => Box::new(ArenaPolicy::new(capacity, ArenaParams::default())),
            PolicyKind::ArenaWith(params) => Box::new(ArenaPolicy::new(capacity, params)),
        }
    }

    /// The display name used in figures and tables.
    pub fn label(&self) -> String {
        match *self {
            PolicyKind::Lru => "LRU".into(),
            PolicyKind::Fifo => "FIFO".into(),
            PolicyKind::Clock => "CLOCK".into(),
            PolicyKind::Random { .. } => "RANDOM".into(),
            PolicyKind::LruT => "LRU-T".into(),
            PolicyKind::LruP => "LRU-P".into(),
            PolicyKind::TwoQ => "2Q".into(),
            PolicyKind::LruK { k } => format!("LRU-{k}"),
            PolicyKind::Spatial(c) => c.short_name().into(),
            PolicyKind::Slru {
                candidate_fraction, ..
            } => {
                format!("SLRU {:.0}%", candidate_fraction * 100.0)
            }
            PolicyKind::Asb | PolicyKind::AsbWith(_) => "ASB".into(),
            PolicyKind::Arena | PolicyKind::ArenaWith(_) => "ARENA".into(),
        }
    }
}

impl std::fmt::Display for PolicyKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_paper_figures() {
        assert_eq!(PolicyKind::Lru.label(), "LRU");
        assert_eq!(PolicyKind::LruK { k: 2 }.label(), "LRU-2");
        assert_eq!(PolicyKind::Spatial(SpatialCriterion::Area).label(), "A");
        assert_eq!(
            PolicyKind::Slru {
                candidate_fraction: 0.25,
                criterion: SpatialCriterion::Area
            }
            .label(),
            "SLRU 25%"
        );
        assert_eq!(PolicyKind::Asb.label(), "ASB");
        assert_eq!(PolicyKind::Arena.label(), "ARENA");
    }

    #[test]
    fn build_produces_matching_names() {
        for kind in [
            PolicyKind::Lru,
            PolicyKind::Fifo,
            PolicyKind::Clock,
            PolicyKind::Random { seed: 1 },
            PolicyKind::LruT,
            PolicyKind::LruP,
            PolicyKind::TwoQ,
            PolicyKind::LruK { k: 3 },
            PolicyKind::Spatial(SpatialCriterion::Margin),
            PolicyKind::Slru {
                candidate_fraction: 0.5,
                criterion: SpatialCriterion::Area,
            },
            PolicyKind::Asb,
            PolicyKind::Arena,
        ] {
            let policy = kind.build(100);
            assert_eq!(policy.name(), kind.label(), "{kind:?}");
        }
    }
}
