//! # asb-core — buffer manager and page-replacement policies
//!
//! This crate is the reproduction of the *contribution* of Brinkhoff's
//! EDBT 2002 paper: a buffer manager with pluggable page-replacement
//! policies, including the paper's new **spatial** policies and the
//! self-tuning **adaptable spatial buffer (ASB)**.
//!
//! ## Policies
//!
//! | [`PolicyKind`] | Paper section | Idea |
//! |---|---|---|
//! | [`Lru`](PolicyKind::Lru) | baseline | evict the least-recently-used page |
//! | [`Fifo`](PolicyKind::Fifo), [`Clock`](PolicyKind::Clock), [`Random`](PolicyKind::Random) | — | classic baselines for sanity checks |
//! | [`LruT`](PolicyKind::LruT) | §2.1 | evict object pages first, then data, then directory pages; LRU within a category |
//! | [`LruP`](PolicyKind::LruP) | §2.1 | generalization: evict the lowest-priority page (priority = level in the tree); LRU within a priority |
//! | [`LruK`](PolicyKind::LruK) | §2.2 | evict the page with the oldest K-th most recent *uncorrelated* reference (O'Neil et al.); history is retained for evicted pages |
//! | [`Spatial`](PolicyKind::Spatial) | §2.3 | evict the page with the smallest spatial criterion (A, EA, M, EM or EO); LRU breaks ties |
//! | [`Slru`](PolicyKind::Slru) | §4.1 | LRU proposes a candidate set (a fixed fraction of the buffer), the spatial criterion picks the victim from it |
//! | [`Asb`](PolicyKind::Asb) | §4.2 | SLRU plus a FIFO *overflow buffer* (20 % of the buffer) whose hits self-tune the candidate-set size |
//! | [`Arena`](PolicyKind::Arena) | extension | multiplicative-weights mixer over an expert roster; per-expert ghost caches count counterfactual misses, the weight leader owns eviction |
//!
//! ## Architecture
//!
//! [`BufferManager`] owns the page table and statistics and delegates every
//! ordering decision to a [`ReplacementPolicy`]. It does not talk to a disk
//! itself; [`BufferManager::fetch`] composes it with any
//! [`PageStore`](asb_storage::PageStore), and [`BufferedStore`] packages the
//! pair back up as a `PageStore`, so index structures are oblivious to
//! buffering. Reads hand out RAII [`PageReadGuard`]s — the guard pins the
//! frame until dropped, and no raw `Page`-by-value read path exists.
//! Writes come in write-through and write-back (buffered) flavours; with a
//! write-ahead log attached, buffered writes are crash-durable and dirty
//! evictions perform write-backs.
//!
//! ## Concurrency
//!
//! Two thread-safe pools wrap the same `BufferManager` machinery and share
//! one trait surface, [`BufferPool`]:
//!
//! * [`concurrent::SharedBuffer`] — one coarse mutex around store + buffer;
//!   simplest, exactly serialized.
//! * [`ShardedBuffer`] — the pool is striped over independently locked
//!   shards (deterministic page-id hashing), the store sits behind a
//!   reader-writer lock and is only read-locked on misses; concurrent
//!   misses on the same page are coalesced into one store read
//!   (single-flight). With one shard and one thread it reproduces the
//!   sequential buffer's counts exactly; with many shards, hits and misses
//!   in different shards proceed in parallel.
//!
//! A watermark-driven background [`Flusher`] drains dirty frames ahead of
//! eviction pressure, keeping the next checkpoint's redo horizon short.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod concurrent;
mod flusher;
mod guard;
mod manager;
mod order;
mod policies;
mod policy;
mod pool;
pub mod sharded;
pub mod sync;

pub use concurrent::SharedBuffer;
pub use flusher::{Flusher, FlusherConfig, FlusherHandle, FlusherStats};
pub use guard::{PageReadGuard, PageWriteGuard};
pub use manager::{BufferManager, BufferStats, BufferedStore, StoreIo};
pub use policies::{
    ArenaParams, ArenaPolicy, ArenaState, AsbParams, AsbPolicy, ClockPolicy, ExpertState,
    FifoPolicy, LruKPolicy, LruPolicy, LruPriorityPolicy, LruTypePolicy, RandomPolicy, Roster,
    SlruPolicy, SpatialPolicy, TwoQPolicy,
};
pub use policy::{PolicyEvents, PolicyKind, ReplacementPolicy, VictimRanker};
pub use pool::{BufferPool, FetchOutcome, PageFetchResult};
pub use sharded::ShardedBuffer;

// Re-exported for convenience: the criterion enum lives in asb-geom because
// pages carry precomputed criterion inputs.
pub use asb_geom::SpatialCriterion;
