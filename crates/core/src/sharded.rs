//! Lock-striped, parallel-serving buffer pool.
//!
//! [`SharedBuffer`](crate::concurrent::SharedBuffer) serializes every page
//! request behind one mutex — correct, but a single hot lock. This module
//! stripes the buffer across `N` independent *shards*: each shard owns its
//! own frame table, replacement policy and statistics, and a page id is
//! deterministically routed to exactly one shard. Requests for pages in
//! different shards proceed in parallel; the backing store sits behind a
//! reader-writer lock and is only read-locked on a miss (via
//! [`ConcurrentPageStore::read_shared`]), so misses from different shards
//! also overlap.
//!
//! Reads hand out RAII [`PageReadGuard`]s: the shard lock is taken only to
//! probe or admit, and is released before the caller ever touches the page
//! bytes — the guard's pin (not the lock) is what keeps the frame
//! resident. Concurrent misses on the *same* page are coalesced by a
//! [`SingleFlight`] scheduler: one leader performs the store read and
//! admission, every concurrent reader of that page shares the result, so
//! N simultaneous misses cost exactly one physical read.
//!
//! # Reproduction guarantee
//!
//! With `shards = 1` and a single-threaded access trace, the pool runs the
//! exact same probe/fetch/admit primitives as a sequential
//! [`BufferManager`] ([`BufferManager::fetch`]), so hit, miss and eviction
//! counts are bit-identical to the paper's measurement vehicle. With more
//! shards each shard is a smaller, independent buffer of the same policy;
//! the paper's self-tuning applies per shard.
//!
//! # Lock order
//!
//! `shard mutex → store lock`, everywhere. A thread never holds two shard
//! locks — with one exception: [`ShardedBuffer::checkpoint`] and the
//! guard-gated [`ShardedBuffer::with_store`] lock *all* shards in
//! ascending index order (a fixed total order, so no cycle). Allocation
//! is two-phase (store write lock to obtain the id, release, then shard
//! lock to admit), so no cycle exists. The shared WAL mutex is only ever
//! taken while holding a shard lock and is never held across a store
//! operation. The single-flight map lock and flight latches are below
//! every shard lock: the miss path releases the shard lock before joining
//! a flight, and a flight leader takes the shard lock only from inside its
//! lead closure (never the reverse).

use crate::guard::{PageReadGuard, PageWriteGuard, WriteSink};
use crate::manager::{fetch_page_with_retry, BufferManager, BufferStats, StoreIo};
use crate::policies::ArenaState;
use crate::policy::PolicyKind;
use crate::sync::{AtomicU64, Mutex, Ordering, RwLock};
use asb_storage::{
    AccessContext, ConcurrentPageStore, FlightOutcome, FlightStats, IoStats, Lsn, Page, PageError,
    PageId, PageMeta, PageStore, Result, RetryPolicy, SharedWal, SingleFlight, StorageError,
};
use bytes::Bytes;
use std::sync::Arc;

/// SplitMix64 finalizer: a fast, well-mixing hash of a page id.
///
/// Deterministic by construction (never a seeded `RandomState`), so shard
/// assignment — and therefore every per-shard statistic — is reproducible
/// across runs and platforms.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

struct Inner<S> {
    store: RwLock<S>,
    shards: Vec<Mutex<BufferManager>>,
    /// Coalesces concurrent misses on the same page into one store read.
    scheduler: SingleFlight,
    /// Commits that failed inside a [`PageWriteGuard`] drop (where no
    /// error can be returned); see
    /// [`write_drop_failures`](ShardedBuffer::write_drop_failures).
    write_drop_failures: Arc<AtomicU64>,
}

/// Per-operation [`StoreIo`] over the pool's store lock: fetches take the
/// shared lock (misses overlap), write-backs take the exclusive lock. The
/// caller already holds the owning shard's mutex, so `shard → store` lock
/// order is preserved.
struct PoolIo<'a, S>(&'a RwLock<S>);

impl<S: ConcurrentPageStore> StoreIo for PoolIo<'_, S> {
    fn fetch(&mut self, id: PageId, ctx: AccessContext) -> Result<Page> {
        self.0.read().read_shared(id, ctx)
    }

    fn store(&mut self, page: &Page) -> Result<()> {
        self.0.write().write(page.clone())
    }
}

/// [`WriteSink`] half of a [`PageWriteGuard`]: commits publish through the
/// owning shard's buffered-write path (WAL image first, frame dirtied,
/// `rec_lsn` stamped).
struct ShardSink<S: ConcurrentPageStore> {
    inner: Arc<Inner<S>>,
    shard: usize,
}

impl<S: ConcurrentPageStore> WriteSink for ShardSink<S> {
    fn commit(&self, page: Page) -> Result<()> {
        let mut buf = self.inner.shards[self.shard].lock();
        buf.write_buffered_via(&mut PoolIo(&self.inner.store), page)
    }
}

/// A cloneable, thread-safe, lock-striped buffer pool.
///
/// Cloning the handle shares the same pool. All operations take `&self`;
/// page ids are routed to shards by a deterministic hash, so two threads
/// touching different shards never contend.
///
/// ```
/// use asb_core::{PolicyKind, ShardedBuffer};
/// use asb_geom::SpatialStats;
/// use asb_storage::{AccessContext, DiskManager, PageMeta, PageStore};
///
/// let mut disk = DiskManager::new();
/// let id = disk
///     .allocate(PageMeta::data(SpatialStats::EMPTY), bytes::Bytes::from_static(b"hi"))
///     .unwrap();
/// disk.reset_stats();
///
/// let pool = ShardedBuffer::new(disk, PolicyKind::Asb, 64, 4);
/// let reader = pool.clone();
/// std::thread::scope(|s| {
///     s.spawn(move || {
///         for _ in 0..10 {
///             let page = reader.fetch(id, AccessContext::default()).unwrap();
///             assert_eq!(page.id, id); // the guard derefs to the page
///         }
///     });
/// });
/// assert_eq!(pool.stats().logical_reads, 10);
/// assert_eq!(pool.io_stats().reads, 1); // one miss, nine hits
/// ```
pub struct ShardedBuffer<S: ConcurrentPageStore> {
    inner: Arc<Inner<S>>,
}

impl<S: ConcurrentPageStore> Clone for ShardedBuffer<S> {
    fn clone(&self) -> Self {
        ShardedBuffer {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<S: ConcurrentPageStore> std::fmt::Debug for ShardedBuffer<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedBuffer")
            .field("shards", &self.shard_count())
            .field("capacity", &self.capacity())
            .field("stats", &self.stats())
            .finish()
    }
}

impl<S: ConcurrentPageStore> ShardedBuffer<S> {
    /// Creates a pool of `capacity` total pages striped over `shards`
    /// shards, each running its own instance of `kind`.
    ///
    /// The capacity is split as evenly as possible (the first
    /// `capacity % shards` shards get one extra page).
    ///
    /// # Panics
    /// Panics if `shards == 0` or `capacity < shards` (every shard needs at
    /// least one page to serve the page it is currently loading).
    pub fn new(store: S, kind: PolicyKind, capacity: usize, shards: usize) -> Self {
        assert!(shards >= 1, "a sharded buffer needs at least one shard");
        assert!(
            capacity >= shards,
            "capacity ({capacity}) must be at least one page per shard ({shards})"
        );
        let base = capacity / shards;
        let extra = capacity % shards;
        let shards = (0..shards)
            .map(|i| {
                Mutex::new(BufferManager::with_policy(
                    kind,
                    base + usize::from(i < extra),
                ))
            })
            .collect();
        ShardedBuffer {
            inner: Arc::new(Inner {
                store: RwLock::new(store),
                shards,
                scheduler: SingleFlight::new(),
                write_drop_failures: Arc::new(AtomicU64::new(0)),
            }),
        }
    }

    /// The shard that serves `id` (splitmix64 of the raw page id, modulo
    /// the shard count — a stable, uniform routing). Public so batching
    /// front ends can group page requests by shard before fetching.
    pub fn shard_of(&self, id: PageId) -> usize {
        (splitmix64(id.raw()) % self.inner.shards.len() as u64) as usize
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.inner.shards.len()
    }

    /// Total pool capacity in pages (sum over shards).
    pub fn capacity(&self) -> usize {
        self.inner.shards.iter().map(|s| s.lock().capacity()).sum()
    }

    /// Reads a page, returning a pinned [`PageReadGuard`]; the shard lock
    /// is released before the guard is handed out, so holding a guard
    /// never blocks other readers.
    ///
    /// A hit is served under the shard lock alone. A miss goes through the
    /// pool's single-flight scheduler: concurrent misses on the same page
    /// elect one leader, which performs the store read (under a *shared*
    /// store lock, so misses on different pages still overlap) and the
    /// admission; every concurrent reader shares the fetched page — N
    /// simultaneous misses on one page cost exactly one physical read.
    /// Transient store faults are retried under each shard's
    /// [`RetryPolicy`], and a checksum-corrupted frame is evicted and
    /// re-fetched instead of served.
    pub fn fetch(&self, id: PageId, ctx: AccessContext) -> Result<PageReadGuard> {
        self.fetch_classified(id, ctx).map(|(guard, _)| guard)
    }

    /// [`fetch`](ShardedBuffer::fetch), additionally reporting whether the
    /// request was a buffer hit. `hit` is `true` exactly when the first
    /// residency probe served the page — a read coalesced into another
    /// request's in-flight fetch still reports `false`, matching the miss
    /// its probe recorded in the shard's statistics.
    pub fn fetch_classified(
        &self,
        id: PageId,
        ctx: AccessContext,
    ) -> Result<(PageReadGuard, bool)> {
        let shard = self.shard_of(id);
        {
            let mut buf = self.inner.shards[shard].lock();
            if let Some(guard) = buf.probe(id, ctx) {
                return Ok((guard, true));
            }
        }
        self.resolve_miss(shard, id, ctx)
            .map(|guard| (guard, false))
    }

    /// The post-probe miss path shared by [`fetch_classified`] and
    /// [`fetch_batch`]: the miss is already counted, the shard lock is
    /// released so the flight (ours or another thread's) can take it from
    /// the closure.
    fn resolve_miss(&self, shard: usize, id: PageId, ctx: AccessContext) -> Result<PageReadGuard> {
        match self
            .inner
            .scheduler
            .run(id, || self.lead_fetch(shard, id, ctx))
        {
            FlightOutcome::Led(result) => result,
            FlightOutcome::Joined(shared) => {
                let page = match shared {
                    Ok(page) => page,
                    Err(e) => {
                        // The flight we joined gave up; this request fails
                        // with it and counts its own give-up, as it would
                        // have sequentially.
                        // lock-order-ok: the flight latch is released when
                        // run() returns; nothing is held across this lock.
                        self.inner.shards[shard].lock().note_give_up();
                        return Err(e);
                    }
                };
                // lock-order-ok: the flight latch is released when run()
                // returns; the Joined arm holds nothing over this lock.
                let mut buf = self.inner.shards[shard].lock();
                match buf.pin_resident(id, ctx) {
                    Some(guard) => Ok(guard),
                    // The leader's admission was evicted (or corrupted)
                    // before we got the shard lock; re-admit the copy the
                    // flight delivered instead of re-reading the store.
                    None => buf.admit_fetched(page, ctx, &mut PoolIo(&self.inner.store)),
                }
            }
        }
    }

    /// Reads a batch of pages, returning one *independent* result per id
    /// in input order: a failing page fails its own slot with a typed
    /// [`PageError`] and never aborts its siblings (the partial-failure
    /// contract the serving layer's graceful degradation is built on).
    ///
    /// Resident pages of a shard are probed under a single shard-lock
    /// acquisition; the misses then run through the normal single-flight
    /// path. Accounting is indistinguishable from issuing the same
    /// [`fetch_classified`](ShardedBuffer::fetch_classified) calls in
    /// input order: each id is probed exactly once, and an id repeated
    /// within the batch is deferred until its first occurrence has
    /// resolved (so the repeat classifies as the hit it would have been
    /// sequentially; a repeat of a failed id re-attempts and accrues its
    /// own accounting, exactly as back-to-back sequential fetches would).
    pub fn fetch_batch(
        &self,
        ids: &[PageId],
        ctx: AccessContext,
    ) -> Vec<std::result::Result<(PageReadGuard, bool), PageError>> {
        type Slot = std::result::Result<(PageReadGuard, bool), PageError>;
        let mut out: Vec<Option<Slot>> = (0..ids.len()).map(|_| None).collect();
        // First occurrences probe in the batched phase; repeats resolve
        // afterwards through the sequential path so their probe sees the
        // first occurrence's admission.
        let mut seen = std::collections::HashSet::new();
        let mut deferred = vec![false; ids.len()];
        let mut by_shard: Vec<Vec<usize>> = vec![Vec::new(); self.inner.shards.len()];
        for (i, &id) in ids.iter().enumerate() {
            if seen.insert(id) {
                by_shard[self.shard_of(id)].push(i);
            } else {
                deferred[i] = true;
            }
        }
        for (shard, idxs) in by_shard.iter().enumerate() {
            if idxs.is_empty() {
                continue;
            }
            let mut buf = self.inner.shards[shard].lock();
            for &i in idxs {
                if let Some(guard) = buf.probe(ids[i], ctx) {
                    out[i] = Some(Ok((guard, true)));
                }
            }
        }
        for (i, &id) in ids.iter().enumerate() {
            if out[i].is_some() {
                continue;
            }
            let slot = if deferred[i] {
                self.fetch_classified(id, ctx)
            } else {
                let shard = self.shard_of(id);
                self.resolve_miss(shard, id, ctx)
                    .map(|guard| (guard, false))
            };
            out[i] = Some(slot.map_err(|e| PageError::new(id, e)));
        }
        // invariant: the resolve loop above fills every slot the probe
        // pass left empty, so no `None` survives to this point.
        out.into_iter()
            .map(|o| o.expect("outcome filled"))
            .collect()
    }

    /// Serves `id` from buffer-resident state only: a hit pins and returns
    /// the frame; a miss is counted in the shard's statistics and returns
    /// `None` **without touching the backing store** (no retry, no
    /// single-flight). The serving layer uses this behind an open circuit
    /// breaker, where the store is presumed down and a miss must degrade
    /// instead of burning retry budget.
    pub fn fetch_resident(&self, id: PageId, ctx: AccessContext) -> Option<PageReadGuard> {
        self.inner.shards[self.shard_of(id)].lock().probe(id, ctx)
    }

    /// The miss path run by a flight leader: re-check residency, read the
    /// store without holding the shard lock, then admit. Returns the
    /// leader's own outcome plus the page published to followers.
    fn lead_fetch(
        &self,
        shard: usize,
        id: PageId,
        ctx: AccessContext,
    ) -> (Result<PageReadGuard>, Result<Page>) {
        let retry = {
            let mut buf = self.inner.shards[shard].lock();
            // A flight that retired between our probe and our leadership
            // already admitted the page — serve it without a store read.
            if let Some(guard) = buf.pin_resident(id, ctx) {
                let page = guard.page().clone();
                return (Ok(guard), Ok(page));
            }
            buf.retry_policy()
        };
        // The physical read runs without the shard lock (the store's
        // reader-writer lock aside): holding it here would serialize hits
        // in this shard behind a disk access.
        let (result, effort) =
            fetch_page_with_retry(&mut PoolIo(&self.inner.store), retry, id, ctx);
        let mut buf = self.inner.shards[shard].lock();
        buf.apply_fetch_effort(effort);
        match result {
            Ok(page) => (
                buf.admit_fetched(page.clone(), ctx, &mut PoolIo(&self.inner.store)),
                Ok(page),
            ),
            Err(e) => {
                buf.note_give_up();
                (Err(e.clone()), Err(e))
            }
        }
    }

    /// Reads a page for modification, returning a [`PageWriteGuard`].
    ///
    /// Edits stay private to the guard until
    /// [`commit`](PageWriteGuard::commit) (or drop, best-effort) publishes
    /// them through the shard's buffered-write path — WAL image first,
    /// then the frame is dirtied and its `rec_lsn` stamped, exactly like
    /// [`write_buffered`](ShardedBuffer::write_buffered).
    pub fn fetch_mut(&self, id: PageId, ctx: AccessContext) -> Result<PageWriteGuard>
    where
        S: 'static,
    {
        let shard = self.shard_of(id);
        let (page, token) = self.fetch(id, ctx)?.into_parts();
        Ok(PageWriteGuard::new(
            page,
            token,
            Box::new(ShardSink {
                inner: Arc::clone(&self.inner),
                shard,
            }),
            Arc::clone(&self.inner.write_drop_failures),
        ))
    }

    /// Stages pages ahead of demand: reads every non-resident `id` in one
    /// batched store pass per shard (a single shared-lock acquisition,
    /// ascending page-id order — sequential-friendly) and admits the
    /// copies without recording logical accesses. Pages that fail to read
    /// are skipped (prefetching is best-effort); returns how many pages
    /// were actually admitted. Errors surface only from admission itself
    /// (an eviction write-back failing).
    pub fn prefetch(&self, ids: &[PageId]) -> Result<usize> {
        let mut by_shard: Vec<Vec<PageId>> = vec![Vec::new(); self.inner.shards.len()];
        for &id in ids {
            by_shard[self.shard_of(id)].push(id);
        }
        let mut admitted = 0usize;
        for (shard, mut wanted) in by_shard.into_iter().enumerate() {
            if wanted.is_empty() {
                continue;
            }
            wanted.sort_unstable();
            wanted.dedup();
            let missing: Vec<PageId> = {
                let buf = self.inner.shards[shard].lock();
                wanted.into_iter().filter(|&id| !buf.contains(id)).collect()
            };
            if missing.is_empty() {
                continue;
            }
            let pages: Vec<Page> = {
                let store = self.inner.store.read();
                missing
                    .iter()
                    .filter_map(|&id| store.read_shared(id, AccessContext::default()).ok())
                    .collect()
            };
            // lock-order-ok: the store read lock above lives in its own
            // block and is released before the shard lock is taken.
            let mut buf = self.inner.shards[shard].lock();
            for page in pages {
                if buf.admit_prefetched(page, &mut PoolIo(&self.inner.store))? {
                    admitted += 1;
                }
            }
        }
        Ok(admitted)
    }

    /// Writes a page through its shard (write-through: the store is updated
    /// under the exclusive lock, any resident copy is refreshed).
    pub fn write(&self, page: Page) -> Result<()> {
        let mut shard = self.inner.shards[self.shard_of(page.id)].lock();
        shard.write_via(&mut PoolIo(&self.inner.store), page)
    }

    /// Writes a page into its shard only, deferring the store write to
    /// eviction or [`flush`](ShardedBuffer::flush) (write-back caching).
    pub fn write_buffered(&self, page: Page) -> Result<()> {
        let mut shard = self.inner.shards[self.shard_of(page.id)].lock();
        shard.write_buffered_via(&mut PoolIo(&self.inner.store), page)
    }

    /// Writes every dirty frame in every shard back to the store. Every
    /// shard is attempted even if an earlier one fails; per-page failures
    /// are aggregated across shards into one
    /// [`StorageError::FlushIncomplete`], and failed frames stay resident
    /// and dirty in their shard.
    pub fn flush(&self) -> Result<()> {
        let mut failures = Vec::new();
        for shard in &self.inner.shards {
            match shard.lock().flush_via(&mut PoolIo(&self.inner.store)) {
                Ok(()) => {}
                Err(StorageError::FlushIncomplete { failures: f }) => failures.extend(f),
                Err(e) => return Err(e),
            }
        }
        if failures.is_empty() {
            Ok(())
        } else {
            Err(StorageError::FlushIncomplete { failures })
        }
    }

    /// Writes back at most `max` dirty frames pool-wide, visiting shards
    /// in index order and draining each shard's oldest redo horizons first
    /// (see `BufferManager::flush_some_via`). The background
    /// [`Flusher`](crate::Flusher) calls this in bounded batches so no
    /// shard lock is held for a long scan. Returns the number written
    /// back; per-page failures aggregate into
    /// [`StorageError::FlushIncomplete`] after every shard was attempted.
    pub fn flush_some(&self, max: usize) -> Result<usize> {
        let mut remaining = max;
        let mut flushed = 0usize;
        let mut failures = Vec::new();
        for shard in &self.inner.shards {
            if remaining == 0 {
                break;
            }
            match shard
                .lock()
                .flush_some_via(&mut PoolIo(&self.inner.store), remaining)
            {
                Ok(n) => {
                    flushed += n;
                    remaining -= n;
                }
                Err(StorageError::FlushIncomplete { failures: f }) => failures.extend(f),
                Err(e) => return Err(e),
            }
        }
        if failures.is_empty() {
            Ok(flushed)
        } else {
            Err(StorageError::FlushIncomplete { failures })
        }
    }

    /// Attaches one shared write-ahead log to every shard: all buffered
    /// writes across the pool append to the same log, forming one global
    /// LSN sequence (see `BufferManager::attach_wal`).
    ///
    /// Do **not** enable per-shard auto-checkpointing on a pool — a shard's
    /// local dirty set does not bound its siblings' redo work. Use
    /// [`checkpoint`](ShardedBuffer::checkpoint), which snapshots all
    /// shards.
    pub fn attach_wal(&self, wal: SharedWal) {
        for shard in &self.inner.shards {
            shard.lock().attach_wal(wal.clone());
        }
    }

    /// Whether a WAL is attached (probed on shard 0; `attach_wal` attaches
    /// to every shard together).
    pub fn has_wal(&self) -> bool {
        self.inner.shards[0].lock().wal().is_some()
    }

    /// Appends one pool-wide fuzzy checkpoint to the shared WAL.
    ///
    /// All shard locks are taken in ascending index order (one of the two
    /// places the pool holds more than one shard lock — a fixed total
    /// order, so deadlock-free) to compute the minimum `rec_lsn` over
    /// *every* dirty frame in the pool; the checkpoint record is appended
    /// through shard 0 while the snapshot is still held, so no write can
    /// slip under the recorded horizon.
    pub fn checkpoint(&self) -> Result<Lsn> {
        let mut guards: Vec<_> = self.inner.shards.iter().map(|s| s.lock()).collect();
        let redo = guards.iter().filter_map(|g| g.min_rec_lsn()).min();
        guards[0].checkpoint_from(redo)
    }

    /// Number of dirty frames across all shards.
    pub fn dirty_count(&self) -> usize {
        self.inner
            .shards
            .iter()
            .map(|s| s.lock().dirty_count())
            .sum()
    }

    /// Number of page guards currently alive against this pool.
    pub fn live_guards(&self) -> u64 {
        self.inner
            .shards
            .iter()
            .map(|s| s.lock().live_guards())
            .sum()
    }

    /// How much duplicate miss I/O the single-flight scheduler absorbed.
    pub fn flight_stats(&self) -> FlightStats {
        self.inner.scheduler.stats()
    }

    /// Commits that failed inside a [`PageWriteGuard`] drop, where no
    /// error can be returned. Non-zero means edits were lost — prefer
    /// explicit [`PageWriteGuard::commit`] on paths that must observe
    /// failures.
    pub fn write_drop_failures(&self) -> u64 {
        // relaxed-ok: monotonic telemetry, polled after writers quiesce.
        self.inner.write_drop_failures.load(Ordering::Relaxed)
    }

    /// Sets the retry policy applied to transient store faults in every
    /// shard.
    pub fn set_retry_policy(&self, retry: RetryPolicy) {
        for shard in &self.inner.shards {
            shard.lock().set_retry_policy(retry);
        }
    }

    /// Allocates a page in the store and admits it to its shard.
    ///
    /// Two-phase: the store write lock is released before the shard lock is
    /// taken (the id decides the shard, and the id only exists after
    /// allocation), preserving the pool's `shard → store` lock order.
    pub fn allocate(&self, meta: PageMeta, payload: Bytes) -> Result<PageId> {
        let id = self.inner.store.write().allocate(meta, payload.clone())?;
        let page = Page::new(id, meta, payload)?;
        // lock-order-ok: the store write lock is a temporary released at
        // the end of the allocate statement; see the two-phase doc above.
        let mut shard = self.inner.shards[self.shard_of(id)].lock();
        shard.admit_allocated_via(page, &mut PoolIo(&self.inner.store))?;
        Ok(id)
    }

    /// Frees a page in the store and drops any buffered copy.
    pub fn free(&self, id: PageId) -> Result<()> {
        let mut shard = self.inner.shards[self.shard_of(id)].lock();
        let mut store = self.inner.store.write();
        shard.free_through(&mut *store, id)
    }

    /// Whether `id` is currently buffered (no access is recorded).
    pub fn contains(&self, id: PageId) -> bool {
        self.inner.shards[self.shard_of(id)].lock().contains(id)
    }

    /// Number of currently resident pages across all shards.
    pub fn resident(&self) -> usize {
        self.inner.shards.iter().map(|s| s.lock().resident()).sum()
    }

    /// Pool-wide statistics: the sum of every shard's snapshot.
    ///
    /// Shards are snapshotted one at a time, so under concurrent load the
    /// sum is a consistent total only once the pool is quiescent.
    pub fn stats(&self) -> BufferStats {
        self.shard_stats().into_iter().sum()
    }

    /// Per-shard statistics snapshots, in shard order.
    pub fn shard_stats(&self) -> Vec<BufferStats> {
        self.inner.shards.iter().map(|s| s.lock().stats()).collect()
    }

    /// Current ASB candidate-set size per shard (`None` entries for
    /// policies without that notion).
    pub fn shard_candidate_sizes(&self) -> Vec<Option<usize>> {
        self.inner
            .shards
            .iter()
            .map(|s| s.lock().candidate_size())
            .collect()
    }

    /// Expert-arena snapshot per shard (`None` entries for non-arena
    /// policies). Each shard runs its own independent arena, so weights
    /// and leaders can differ across shards.
    pub fn shard_arena_states(&self) -> Vec<Option<ArenaState>> {
        self.inner
            .shards
            .iter()
            .map(|s| s.lock().arena_state())
            .collect()
    }

    /// History records retained for non-resident pages, summed across
    /// shards (unified definition: LRU-K HIST, 2Q ghosts, arena ghost
    /// caches).
    pub fn retained_history(&self) -> usize {
        self.inner
            .shards
            .iter()
            .map(|s| s.lock().retained_history())
            .sum()
    }

    /// Drops every buffered page and resets buffer statistics in all
    /// shards. Store I/O statistics are separate — call
    /// [`reset_io_stats`](ShardedBuffer::reset_io_stats) to clear those too.
    pub fn clear(&self) {
        for shard in &self.inner.shards {
            shard.lock().clear();
        }
    }

    /// Physical I/O statistics of the backing store.
    pub fn io_stats(&self) -> IoStats {
        self.inner.store.read().io_stats()
    }

    /// Resets the backing store's I/O statistics.
    pub fn reset_io_stats(&self) {
        self.inner.store.read().reset_io_stats()
    }

    /// Number of live pages in the backing store.
    pub fn page_count(&self) -> usize {
        self.inner.store.read().page_count()
    }

    /// Runs `f` with exclusive access to the backing store — an escape
    /// hatch for bulk operations (never call pool methods from inside `f`;
    /// that would take the store lock ahead of a shard lock).
    ///
    /// Fails with [`StorageError::GuardsOutstanding`] while any page guard
    /// is alive: a guard holds a pin the pool is contracted to honour, and
    /// `f` could mutate the store out from under it. The check is
    /// race-free — all shard locks are held (ascending order, as in
    /// [`checkpoint`](ShardedBuffer::checkpoint)) while the live-guard
    /// count is read *and* while `f` runs, and creating a guard requires
    /// its shard's lock.
    pub fn with_store<R>(&self, f: impl FnOnce(&mut S) -> R) -> Result<R> {
        let shards: Vec<_> = self.inner.shards.iter().map(|s| s.lock()).collect();
        let live: u64 = shards.iter().map(|g| g.live_guards()).sum();
        if live > 0 {
            return Err(StorageError::GuardsOutstanding(live));
        }
        Ok(f(&mut self.inner.store.write()))
    }

    /// Unwraps the pool into its backing store, if this is the last handle
    /// and no page guard is alive (a guard pins a frame of this pool; see
    /// [`with_store`](ShardedBuffer::with_store)).
    pub fn try_into_store(self) -> std::result::Result<S, Self> {
        {
            let shards: Vec<_> = self.inner.shards.iter().map(|s| s.lock()).collect();
            if shards.iter().map(|g| g.live_guards()).sum::<u64>() > 0 {
                drop(shards);
                return Err(self);
            }
        }
        match Arc::try_unwrap(self.inner) {
            Ok(inner) => Ok(inner.store.into_inner()),
            Err(inner) => Err(ShardedBuffer { inner }),
        }
    }
}

/// The pool is itself a [`PageStore`], so index structures (e.g.
/// `RTree<ShardedBuffer<DiskManager>>`) can run on a shared pool: give each
/// thread its own clone of the handle and its own index view.
impl<S: ConcurrentPageStore> PageStore for ShardedBuffer<S> {
    fn read(&mut self, id: PageId, ctx: AccessContext) -> Result<Page> {
        ShardedBuffer::fetch(self, id, ctx).map(PageReadGuard::into_page)
    }

    fn write(&mut self, page: Page) -> Result<()> {
        ShardedBuffer::write(self, page)
    }

    fn allocate(&mut self, meta: PageMeta, payload: Bytes) -> Result<PageId> {
        ShardedBuffer::allocate(self, meta, payload)
    }

    fn free(&mut self, id: PageId) -> Result<()> {
        ShardedBuffer::free(self, id)
    }

    fn page_count(&self) -> usize {
        ShardedBuffer::page_count(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asb_geom::SpatialStats;
    use asb_storage::{DiskManager, QueryId, StorageError};
    use std::thread;

    fn meta() -> PageMeta {
        PageMeta::data(SpatialStats::EMPTY)
    }

    fn disk_with_pages(n: usize) -> (DiskManager, Vec<PageId>) {
        let mut d = DiskManager::new();
        let ids = (0..n)
            .map(|i| d.allocate(meta(), Bytes::from(vec![i as u8])).unwrap())
            .collect();
        d.reset_stats();
        (d, ids)
    }

    /// A deterministic page-access trace with skewed locality.
    fn trace(ids: &[PageId], len: usize) -> Vec<(PageId, QueryId)> {
        let mut state = 0xDEAD_BEEF_CAFE_F00Du64;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        (0..len)
            .map(|i| {
                let hot = rng() % 10 < 7;
                let span = if hot { ids.len() / 8 + 1 } else { ids.len() };
                (
                    ids[(rng() % span as u64) as usize],
                    QueryId::new(i as u64 / 4),
                )
            })
            .collect()
    }

    #[test]
    fn routing_is_deterministic_and_total() {
        let (disk, ids) = disk_with_pages(64);
        let pool = ShardedBuffer::new(disk, PolicyKind::Lru, 32, 5);
        for &id in &ids {
            let a = pool.shard_of(id);
            let b = pool.shard_of(id);
            assert_eq!(a, b);
            assert!(a < 5);
        }
    }

    #[test]
    fn capacity_splits_evenly_with_remainder_first() {
        let (disk, _) = disk_with_pages(1);
        let pool = ShardedBuffer::new(disk, PolicyKind::Lru, 10, 4);
        let caps: Vec<usize> = pool
            .inner
            .shards
            .iter()
            .map(|s| s.lock().capacity())
            .collect();
        assert_eq!(caps, vec![3, 3, 2, 2]);
        assert_eq!(pool.capacity(), 10);
    }

    #[test]
    #[should_panic(expected = "at least one page per shard")]
    fn undersized_capacity_panics() {
        let (disk, _) = disk_with_pages(1);
        let _ = ShardedBuffer::new(disk, PolicyKind::Lru, 3, 4);
    }

    #[test]
    fn single_shard_matches_sequential_buffer_exactly() {
        let (mut disk_a, ids) = disk_with_pages(128);
        let accesses = trace(&ids, 4_000);

        let mut sequential = BufferManager::with_policy(PolicyKind::Asb, 24);
        for &(id, q) in &accesses {
            sequential
                .fetch(&mut disk_a, id, AccessContext::query(q))
                .unwrap();
        }

        let (disk_b, _) = disk_with_pages(128);
        let pool = ShardedBuffer::new(disk_b, PolicyKind::Asb, 24, 1);
        for &(id, q) in &accesses {
            pool.fetch(id, AccessContext::query(q)).unwrap();
        }

        assert_eq!(pool.stats(), sequential.stats());
        assert_eq!(pool.io_stats().reads, disk_a.stats().reads);
    }

    #[test]
    fn parallel_reads_preserve_accounting_invariants() {
        let (disk, ids) = disk_with_pages(96);
        let pool = ShardedBuffer::new(disk, PolicyKind::Lru, 32, 4);
        thread::scope(|s| {
            for t in 0..4u64 {
                let pool = pool.clone();
                let ids = ids.clone();
                s.spawn(move || {
                    for i in 0..500u64 {
                        let id = ids[((t * 31 + i * 7) % ids.len() as u64) as usize];
                        let page = pool
                            .fetch(id, AccessContext::query(QueryId::new(i)))
                            .unwrap();
                        assert_eq!(page.id, id);
                    }
                });
            }
        });
        let stats = pool.stats();
        assert_eq!(stats.logical_reads, 2_000);
        assert_eq!(stats.hits + stats.misses, stats.logical_reads);
        assert!(pool.resident() <= pool.capacity());
        // Single-flight coalescing can serve several counted misses from
        // one physical read, so reads bound misses from below.
        assert!(pool.io_stats().reads <= stats.misses);
        assert_eq!(pool.live_guards(), 0);
    }

    #[test]
    fn concurrent_misses_on_one_page_cost_one_store_read() {
        let (disk, ids) = disk_with_pages(1);
        let pool = ShardedBuffer::new(disk, PolicyKind::Lru, 8, 2);
        let id = ids[0];
        thread::scope(|s| {
            for _ in 0..8 {
                let pool = pool.clone();
                s.spawn(move || {
                    let page = pool.fetch(id, AccessContext::default()).unwrap();
                    assert_eq!(page.id, id);
                });
            }
        });
        assert_eq!(
            pool.io_stats().reads,
            1,
            "eight concurrent readers of one non-resident page must coalesce \
             into exactly one physical read"
        );
        assert_eq!(pool.stats().logical_reads, 8);
        assert_eq!(pool.stats().hits + pool.stats().misses, 8);
    }

    #[test]
    fn guards_pin_frames_against_eviction() {
        let (disk, ids) = disk_with_pages(8);
        // Capacity 2 over 1 shard: churning 7 other pages must evict
        // everything except the guarded frame.
        let pool = ShardedBuffer::new(disk, PolicyKind::Lru, 2, 1);
        let guard = pool.fetch(ids[0], AccessContext::default()).unwrap();
        assert_eq!(pool.live_guards(), 1);
        for &id in &ids[1..] {
            pool.fetch(id, AccessContext::default()).unwrap();
        }
        assert!(
            pool.contains(ids[0]),
            "a guarded frame must survive eviction churn"
        );
        assert_eq!(guard.payload.as_ref(), &[0]);
        drop(guard);
        assert_eq!(pool.live_guards(), 0);
    }

    #[test]
    fn with_store_is_gated_on_live_guards() {
        let (disk, ids) = disk_with_pages(4);
        let pool = ShardedBuffer::new(disk, PolicyKind::Lru, 4, 2);
        let guard = pool.fetch(ids[0], AccessContext::default()).unwrap();
        assert_eq!(
            pool.with_store(|s| s.page_count()).unwrap_err(),
            StorageError::GuardsOutstanding(1)
        );
        let pool = pool.try_into_store().expect_err("guard keeps pool intact");
        drop(guard);
        assert_eq!(pool.with_store(|s| s.page_count()).unwrap(), 4);
        let disk = pool.try_into_store().expect("no guards, sole handle");
        assert_eq!(disk.page_count(), 4);
    }

    #[test]
    fn write_guard_commits_through_the_buffered_path() {
        let (disk, ids) = disk_with_pages(4);
        let pool = ShardedBuffer::new(disk, PolicyKind::Lru, 4, 2);
        let mut guard = pool.fetch_mut(ids[0], AccessContext::default()).unwrap();
        guard.set_payload(Bytes::from_static(b"edited")).unwrap();
        guard.commit().unwrap();
        assert_eq!(pool.dirty_count(), 1, "commit dirties, does not write out");
        let read = pool.fetch(ids[0], AccessContext::default()).unwrap();
        assert_eq!(read.payload.as_ref(), b"edited");
        drop(read);
        pool.flush().unwrap();
        assert_eq!(pool.dirty_count(), 0);
        assert_eq!(pool.write_drop_failures(), 0);
    }

    #[test]
    fn discarded_write_guard_changes_nothing() {
        let (disk, ids) = disk_with_pages(2);
        let pool = ShardedBuffer::new(disk, PolicyKind::Lru, 2, 1);
        let mut guard = pool.fetch_mut(ids[0], AccessContext::default()).unwrap();
        guard.set_payload(Bytes::from_static(b"oops")).unwrap();
        guard.discard();
        assert_eq!(pool.dirty_count(), 0);
        let read = pool.fetch(ids[0], AccessContext::default()).unwrap();
        assert_eq!(read.payload.as_ref(), &[0]);
    }

    #[test]
    fn prefetch_batches_one_store_pass_per_shard() {
        let (disk, ids) = disk_with_pages(16);
        let pool = ShardedBuffer::new(disk, PolicyKind::Lru, 16, 2);
        let admitted = pool.prefetch(&ids).unwrap();
        assert_eq!(admitted, 16);
        assert_eq!(pool.resident(), 16);
        // Prefetching records no logical accesses; subsequent fetches are
        // all hits.
        assert_eq!(pool.stats().logical_reads, 0);
        let before = pool.io_stats().reads;
        for &id in &ids {
            pool.fetch(id, AccessContext::default()).unwrap();
        }
        assert_eq!(pool.io_stats().reads, before);
        assert_eq!(pool.stats().hits, 16);
        // Re-prefetching resident pages is free.
        assert_eq!(pool.prefetch(&ids).unwrap(), 0);
    }

    #[test]
    fn writes_are_visible_across_handles_and_threads() {
        let (disk, ids) = disk_with_pages(16);
        let pool = ShardedBuffer::new(disk, PolicyKind::Lru, 16, 4);
        thread::scope(|s| {
            for (t, chunk) in ids.chunks(4).enumerate() {
                let pool = pool.clone();
                let chunk = chunk.to_vec();
                s.spawn(move || {
                    for &id in &chunk {
                        let payload = Bytes::from(vec![t as u8 + 100]);
                        pool.write(Page::new(id, meta(), payload).unwrap()).unwrap();
                    }
                });
            }
        });
        for (t, chunk) in ids.chunks(4).enumerate() {
            for &id in chunk {
                let got = pool.fetch(id, AccessContext::default()).unwrap();
                assert_eq!(
                    got.payload.as_ref(),
                    &[t as u8 + 100],
                    "lost write to {id:?}"
                );
            }
        }
    }

    #[test]
    fn allocate_and_free_route_to_the_owning_shard() {
        let (disk, _) = disk_with_pages(0);
        let pool = ShardedBuffer::new(disk, PolicyKind::Lru, 8, 2);
        let id = pool.allocate(meta(), Bytes::from_static(b"fresh")).unwrap();
        assert!(pool.contains(id), "allocated page must be admitted");
        assert_eq!(
            pool.fetch(id, AccessContext::default())
                .unwrap()
                .payload
                .as_ref(),
            b"fresh"
        );
        pool.free(id).unwrap();
        assert!(!pool.contains(id));
        assert_eq!(
            pool.fetch(id, AccessContext::default()).unwrap_err(),
            StorageError::PageNotFound(id)
        );
    }

    #[test]
    fn clear_and_reset_io_stats_start_a_fresh_measurement() {
        let (disk, ids) = disk_with_pages(32);
        let pool = ShardedBuffer::new(disk, PolicyKind::Lru, 16, 4);
        for &id in &ids {
            pool.fetch(id, AccessContext::default()).unwrap();
        }
        assert!(pool.io_stats().reads > 0);
        pool.clear();
        pool.reset_io_stats();
        assert_eq!(pool.resident(), 0);
        assert_eq!(pool.stats(), BufferStats::default());
        assert_eq!(pool.io_stats(), IoStats::default());
    }

    #[test]
    fn pool_flush_aggregates_failures_across_shards() {
        use asb_storage::{FaultConfig, FaultyStore};
        let (disk, ids) = disk_with_pages(16);
        let store = FaultyStore::new(disk, FaultConfig::reliable());
        let pool = ShardedBuffer::new(store, PolicyKind::Lru, 16, 4);
        for (i, &id) in ids.iter().enumerate() {
            pool.write_buffered(Page::new(id, meta(), Bytes::from(vec![i as u8])).unwrap())
                .unwrap();
        }
        // Fail two pages routed to different shards.
        let (a, b) = {
            let mut picked: Vec<PageId> = Vec::new();
            for &id in &ids {
                if picked
                    .iter()
                    .all(|&p| pool.shard_of(p) != pool.shard_of(id))
                {
                    picked.push(id);
                }
                if picked.len() == 2 {
                    break;
                }
            }
            (picked[0], picked[1])
        };
        pool.with_store(|s| {
            s.mark_permanent(a);
            s.mark_permanent(b);
        })
        .unwrap();
        let err = pool.flush().unwrap_err();
        let StorageError::FlushIncomplete { failures } = err else {
            panic!("expected FlushIncomplete, got {err:?}");
        };
        let mut failed: Vec<PageId> = failures.iter().map(|(id, _)| *id).collect();
        failed.sort_unstable();
        let mut expected = vec![a, b];
        expected.sort_unstable();
        assert_eq!(failed, expected, "failures from every shard are collected");
        assert_eq!(pool.dirty_count(), 2);
        // Every healthy page reached the store despite the failing shards.
        pool.with_store(|s| {
            for (i, &id) in ids.iter().enumerate() {
                if id != a && id != b {
                    assert_eq!(s.inner().peek(id).unwrap().payload.as_ref(), &[i as u8]);
                }
            }
        })
        .unwrap();
    }

    #[test]
    fn flush_some_respects_the_budget_and_drains_incrementally() {
        // Twice the page count: skewed shard routing must not force
        // early dirty evictions, or the counts below drift.
        let (disk, ids) = disk_with_pages(12);
        let pool = ShardedBuffer::new(disk, PolicyKind::Lru, 24, 3);
        for (i, &id) in ids.iter().enumerate() {
            pool.write_buffered(Page::new(id, meta(), Bytes::from(vec![i as u8])).unwrap())
                .unwrap();
        }
        assert_eq!(pool.dirty_count(), 12);
        let first = pool.flush_some(5).unwrap();
        assert_eq!(first, 5);
        assert_eq!(pool.dirty_count(), 7);
        let mut total = first;
        while total < 12 {
            let n = pool.flush_some(5).unwrap();
            assert!(n > 0, "progress until fully drained");
            total += n;
        }
        assert_eq!(pool.dirty_count(), 0);
        assert_eq!(pool.flush_some(5).unwrap(), 0);
    }

    #[test]
    fn pool_checkpoint_covers_every_shards_dirty_frames() {
        use asb_storage::{Wal, WalConfig, WalRecord};
        let (disk, ids) = disk_with_pages(16);
        let pool = ShardedBuffer::new(disk, PolicyKind::Lru, 16, 4);
        let wal = Wal::shared(WalConfig::default());
        pool.attach_wal(wal.clone());
        assert!(pool.has_wal());
        for (i, &id) in ids.iter().enumerate() {
            pool.write_buffered(Page::new(id, meta(), Bytes::from(vec![i as u8])).unwrap())
                .unwrap();
        }
        let ckpt = pool.checkpoint().unwrap();
        let (records, _) = wal.lock().scan();
        let Some(WalRecord::Checkpoint { lsn, redo_from }) = records.last() else {
            panic!("checkpoint record must be last");
        };
        assert_eq!(*lsn, ckpt);
        assert_eq!(
            *redo_from,
            Lsn(0),
            "the horizon is the pool-wide oldest dirty image, not one shard's"
        );
        assert_eq!(pool.stats().checkpoints, 1);
        assert_eq!(pool.stats().wal_appends, ids.len() as u64);
        // After a full flush the next checkpoint points past the log head.
        pool.flush().unwrap();
        pool.checkpoint().unwrap();
        let (records, _) = wal.lock().scan();
        let Some(WalRecord::Checkpoint { redo_from, .. }) = records.last() else {
            panic!("checkpoint record must be last");
        };
        assert_eq!(redo_from.0, ids.len() as u64 + 1);
    }

    #[test]
    fn try_into_store_returns_the_disk_when_unique() {
        let (disk, ids) = disk_with_pages(4);
        let pool = ShardedBuffer::new(disk, PolicyKind::Lru, 4, 2);
        let other = pool.clone();
        let pool = pool.try_into_store().expect_err("second handle alive");
        drop(other);
        let disk = pool.try_into_store().expect("last handle");
        assert_eq!(disk.page_count(), ids.len());
    }
}
