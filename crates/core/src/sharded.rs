//! Lock-striped, parallel-serving buffer pool.
//!
//! [`SharedBuffer`](crate::concurrent::SharedBuffer) serializes every page
//! request behind one mutex — correct, but a single hot lock. This module
//! stripes the buffer across `N` independent *shards*: each shard owns its
//! own frame table, replacement policy and statistics, and a page id is
//! deterministically routed to exactly one shard. Requests for pages in
//! different shards proceed in parallel; the backing store sits behind a
//! reader-writer lock and is only read-locked on a miss (via
//! [`ConcurrentPageStore::read_shared`]), so misses from different shards
//! also overlap.
//!
//! # Reproduction guarantee
//!
//! With `shards = 1` and a single-threaded access trace, the pool runs the
//! exact same code path as a sequential [`BufferManager`]
//! ([`BufferManager::read_via`]), so hit, miss and eviction counts
//! are bit-identical to the paper's measurement vehicle. With more shards
//! each shard is a smaller, independent buffer of the same policy; the
//! paper's self-tuning applies per shard.
//!
//! # Lock order
//!
//! `shard mutex → store lock`, everywhere. A thread never holds two shard
//! locks — with one exception: [`ShardedBuffer::checkpoint`] locks *all*
//! shards in ascending index order (a fixed total order, so no cycle) to
//! take a consistent pool-wide dirty snapshot. Allocation is two-phase
//! (store write lock to obtain the id, release, then shard lock to
//! admit), so no cycle exists. The shared WAL mutex is only ever taken
//! while holding a shard lock and is never held across a store operation.

use crate::manager::{BufferManager, BufferStats, StoreIo};
use crate::policy::PolicyKind;
use crate::sync::{Mutex, RwLock};
use asb_storage::{
    AccessContext, ConcurrentPageStore, IoStats, Lsn, Page, PageId, PageMeta, PageStore, Result,
    RetryPolicy, SharedWal, StorageError,
};
use bytes::Bytes;
use std::sync::Arc;

/// SplitMix64 finalizer: a fast, well-mixing hash of a page id.
///
/// Deterministic by construction (never a seeded `RandomState`), so shard
/// assignment — and therefore every per-shard statistic — is reproducible
/// across runs and platforms.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

struct Inner<S> {
    store: RwLock<S>,
    shards: Vec<Mutex<BufferManager>>,
}

/// Per-operation [`StoreIo`] over the pool's store lock: fetches take the
/// shared lock (misses overlap), write-backs take the exclusive lock. The
/// caller already holds the owning shard's mutex, so `shard → store` lock
/// order is preserved.
struct PoolIo<'a, S>(&'a RwLock<S>);

impl<S: ConcurrentPageStore> StoreIo for PoolIo<'_, S> {
    fn fetch(&mut self, id: PageId, ctx: AccessContext) -> Result<Page> {
        self.0.read().read_shared(id, ctx)
    }

    fn store(&mut self, page: &Page) -> Result<()> {
        self.0.write().write(page.clone())
    }
}

/// A cloneable, thread-safe, lock-striped buffer pool.
///
/// Cloning the handle shares the same pool. All operations take `&self`;
/// page ids are routed to shards by a deterministic hash, so two threads
/// touching different shards never contend.
///
/// ```
/// use asb_core::{PolicyKind, ShardedBuffer};
/// use asb_geom::SpatialStats;
/// use asb_storage::{AccessContext, DiskManager, PageMeta, PageStore};
///
/// let mut disk = DiskManager::new();
/// let id = disk
///     .allocate(PageMeta::data(SpatialStats::EMPTY), bytes::Bytes::from_static(b"hi"))
///     .unwrap();
/// disk.reset_stats();
///
/// let pool = ShardedBuffer::new(disk, PolicyKind::Asb, 64, 4);
/// let reader = pool.clone();
/// std::thread::scope(|s| {
///     s.spawn(move || {
///         for _ in 0..10 {
///             reader.read(id, AccessContext::default()).unwrap();
///         }
///     });
/// });
/// assert_eq!(pool.stats().logical_reads, 10);
/// assert_eq!(pool.io_stats().reads, 1); // one miss, nine hits
/// ```
pub struct ShardedBuffer<S: ConcurrentPageStore> {
    inner: Arc<Inner<S>>,
}

impl<S: ConcurrentPageStore> Clone for ShardedBuffer<S> {
    fn clone(&self) -> Self {
        ShardedBuffer {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<S: ConcurrentPageStore> std::fmt::Debug for ShardedBuffer<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedBuffer")
            .field("shards", &self.shard_count())
            .field("capacity", &self.capacity())
            .field("stats", &self.stats())
            .finish()
    }
}

impl<S: ConcurrentPageStore> ShardedBuffer<S> {
    /// Creates a pool of `capacity` total pages striped over `shards`
    /// shards, each running its own instance of `kind`.
    ///
    /// The capacity is split as evenly as possible (the first
    /// `capacity % shards` shards get one extra page).
    ///
    /// # Panics
    /// Panics if `shards == 0` or `capacity < shards` (every shard needs at
    /// least one page to serve the page it is currently loading).
    pub fn new(store: S, kind: PolicyKind, capacity: usize, shards: usize) -> Self {
        assert!(shards >= 1, "a sharded buffer needs at least one shard");
        assert!(
            capacity >= shards,
            "capacity ({capacity}) must be at least one page per shard ({shards})"
        );
        let base = capacity / shards;
        let extra = capacity % shards;
        let shards = (0..shards)
            .map(|i| {
                Mutex::new(BufferManager::with_policy(
                    kind,
                    base + usize::from(i < extra),
                ))
            })
            .collect();
        ShardedBuffer {
            inner: Arc::new(Inner {
                store: RwLock::new(store),
                shards,
            }),
        }
    }

    fn shard_of(&self, id: PageId) -> usize {
        (splitmix64(id.raw()) % self.inner.shards.len() as u64) as usize
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.inner.shards.len()
    }

    /// Total pool capacity in pages (sum over shards).
    pub fn capacity(&self) -> usize {
        self.inner.shards.iter().map(|s| s.lock().capacity()).sum()
    }

    /// Reads a page; a miss fetches from the store under a shared lock, so
    /// misses in different shards proceed in parallel. Transient store
    /// faults are retried under each shard's [`RetryPolicy`], and a
    /// checksum-corrupted frame is evicted and re-fetched instead of served.
    pub fn read(&self, id: PageId, ctx: AccessContext) -> Result<Page> {
        let mut shard = self.inner.shards[self.shard_of(id)].lock();
        shard.read_via(&mut PoolIo(&self.inner.store), id, ctx)
    }

    /// Writes a page through its shard (write-through: the store is updated
    /// under the exclusive lock, any resident copy is refreshed).
    pub fn write(&self, page: Page) -> Result<()> {
        let mut shard = self.inner.shards[self.shard_of(page.id)].lock();
        shard.write_via(&mut PoolIo(&self.inner.store), page)
    }

    /// Writes a page into its shard only, deferring the store write to
    /// eviction or [`flush`](ShardedBuffer::flush) (write-back caching).
    pub fn write_buffered(&self, page: Page) -> Result<()> {
        let mut shard = self.inner.shards[self.shard_of(page.id)].lock();
        shard.write_buffered_via(&mut PoolIo(&self.inner.store), page)
    }

    /// Writes every dirty frame in every shard back to the store. Every
    /// shard is attempted even if an earlier one fails; per-page failures
    /// are aggregated across shards into one
    /// [`StorageError::FlushIncomplete`], and failed frames stay resident
    /// and dirty in their shard.
    pub fn flush(&self) -> Result<()> {
        let mut failures = Vec::new();
        for shard in &self.inner.shards {
            match shard.lock().flush_via(&mut PoolIo(&self.inner.store)) {
                Ok(()) => {}
                Err(StorageError::FlushIncomplete { failures: f }) => failures.extend(f),
                Err(e) => return Err(e),
            }
        }
        if failures.is_empty() {
            Ok(())
        } else {
            Err(StorageError::FlushIncomplete { failures })
        }
    }

    /// Attaches one shared write-ahead log to every shard: all buffered
    /// writes across the pool append to the same log, forming one global
    /// LSN sequence (see `BufferManager::attach_wal`).
    ///
    /// Do **not** enable per-shard auto-checkpointing on a pool — a shard's
    /// local dirty set does not bound its siblings' redo work. Use
    /// [`checkpoint`](ShardedBuffer::checkpoint), which snapshots all
    /// shards.
    pub fn attach_wal(&self, wal: SharedWal) {
        for shard in &self.inner.shards {
            shard.lock().attach_wal(wal.clone());
        }
    }

    /// Appends one pool-wide fuzzy checkpoint to the shared WAL.
    ///
    /// All shard locks are taken in ascending index order (the one place
    /// the pool holds more than one shard lock — a fixed total order, so
    /// deadlock-free) to compute the minimum `rec_lsn` over *every* dirty
    /// frame in the pool; the checkpoint record is appended through shard
    /// 0 while the snapshot is still held, so no write can slip under the
    /// recorded horizon.
    pub fn checkpoint(&self) -> Result<Lsn> {
        let mut guards: Vec<_> = self.inner.shards.iter().map(|s| s.lock()).collect();
        let redo = guards.iter().filter_map(|g| g.min_rec_lsn()).min();
        guards[0].checkpoint_from(redo)
    }

    /// Number of dirty frames across all shards.
    pub fn dirty_count(&self) -> usize {
        self.inner
            .shards
            .iter()
            .map(|s| s.lock().dirty_count())
            .sum()
    }

    /// Sets the retry policy applied to transient store faults in every
    /// shard.
    pub fn set_retry_policy(&self, retry: RetryPolicy) {
        for shard in &self.inner.shards {
            shard.lock().set_retry_policy(retry);
        }
    }

    /// Allocates a page in the store and admits it to its shard.
    ///
    /// Two-phase: the store write lock is released before the shard lock is
    /// taken (the id decides the shard, and the id only exists after
    /// allocation), preserving the pool's `shard → store` lock order.
    pub fn allocate(&self, meta: PageMeta, payload: Bytes) -> Result<PageId> {
        let id = self.inner.store.write().allocate(meta, payload.clone())?;
        let page = Page::new(id, meta, payload)?;
        let mut shard = self.inner.shards[self.shard_of(id)].lock();
        shard.admit_allocated_via(page, &mut PoolIo(&self.inner.store))?;
        Ok(id)
    }

    /// Frees a page in the store and drops any buffered copy.
    pub fn free(&self, id: PageId) -> Result<()> {
        let mut shard = self.inner.shards[self.shard_of(id)].lock();
        let mut store = self.inner.store.write();
        shard.free_through(&mut *store, id)
    }

    /// Whether `id` is currently buffered (no access is recorded).
    pub fn contains(&self, id: PageId) -> bool {
        self.inner.shards[self.shard_of(id)].lock().contains(id)
    }

    /// Number of currently resident pages across all shards.
    pub fn resident(&self) -> usize {
        self.inner.shards.iter().map(|s| s.lock().resident()).sum()
    }

    /// Pool-wide statistics: the sum of every shard's snapshot.
    ///
    /// Shards are snapshotted one at a time, so under concurrent load the
    /// sum is a consistent total only once the pool is quiescent.
    pub fn stats(&self) -> BufferStats {
        self.shard_stats().into_iter().sum()
    }

    /// Per-shard statistics snapshots, in shard order.
    pub fn shard_stats(&self) -> Vec<BufferStats> {
        self.inner.shards.iter().map(|s| s.lock().stats()).collect()
    }

    /// Current ASB candidate-set size per shard (`None` entries for
    /// policies without that notion).
    pub fn shard_candidate_sizes(&self) -> Vec<Option<usize>> {
        self.inner
            .shards
            .iter()
            .map(|s| s.lock().candidate_size())
            .collect()
    }

    /// Drops every buffered page and resets buffer statistics in all
    /// shards. Store I/O statistics are separate — call
    /// [`reset_io_stats`](ShardedBuffer::reset_io_stats) to clear those too.
    pub fn clear(&self) {
        for shard in &self.inner.shards {
            shard.lock().clear();
        }
    }

    /// Physical I/O statistics of the backing store.
    pub fn io_stats(&self) -> IoStats {
        self.inner.store.read().io_stats()
    }

    /// Resets the backing store's I/O statistics.
    pub fn reset_io_stats(&self) {
        self.inner.store.read().reset_io_stats()
    }

    /// Number of live pages in the backing store.
    pub fn page_count(&self) -> usize {
        self.inner.store.read().page_count()
    }

    /// Runs `f` with exclusive access to the backing store — an escape
    /// hatch for bulk operations (never call pool methods from inside `f`;
    /// that would take the store lock ahead of a shard lock).
    pub fn with_store<R>(&self, f: impl FnOnce(&mut S) -> R) -> R {
        f(&mut self.inner.store.write())
    }

    /// Unwraps the pool into its backing store, if this is the last handle.
    pub fn try_into_store(self) -> std::result::Result<S, Self> {
        match Arc::try_unwrap(self.inner) {
            Ok(inner) => Ok(inner.store.into_inner()),
            Err(inner) => Err(ShardedBuffer { inner }),
        }
    }
}

/// The pool is itself a [`PageStore`], so index structures (e.g.
/// `RTree<ShardedBuffer<DiskManager>>`) can run on a shared pool: give each
/// thread its own clone of the handle and its own index view.
impl<S: ConcurrentPageStore> PageStore for ShardedBuffer<S> {
    fn read(&mut self, id: PageId, ctx: AccessContext) -> Result<Page> {
        ShardedBuffer::read(self, id, ctx)
    }

    fn write(&mut self, page: Page) -> Result<()> {
        ShardedBuffer::write(self, page)
    }

    fn allocate(&mut self, meta: PageMeta, payload: Bytes) -> Result<PageId> {
        ShardedBuffer::allocate(self, meta, payload)
    }

    fn free(&mut self, id: PageId) -> Result<()> {
        ShardedBuffer::free(self, id)
    }

    fn page_count(&self) -> usize {
        ShardedBuffer::page_count(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asb_geom::SpatialStats;
    use asb_storage::{DiskManager, QueryId, StorageError};
    use std::thread;

    fn meta() -> PageMeta {
        PageMeta::data(SpatialStats::EMPTY)
    }

    fn disk_with_pages(n: usize) -> (DiskManager, Vec<PageId>) {
        let mut d = DiskManager::new();
        let ids = (0..n)
            .map(|i| d.allocate(meta(), Bytes::from(vec![i as u8])).unwrap())
            .collect();
        d.reset_stats();
        (d, ids)
    }

    /// A deterministic page-access trace with skewed locality.
    fn trace(ids: &[PageId], len: usize) -> Vec<(PageId, QueryId)> {
        let mut state = 0xDEAD_BEEF_CAFE_F00Du64;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        (0..len)
            .map(|i| {
                let hot = rng() % 10 < 7;
                let span = if hot { ids.len() / 8 + 1 } else { ids.len() };
                (
                    ids[(rng() % span as u64) as usize],
                    QueryId::new(i as u64 / 4),
                )
            })
            .collect()
    }

    #[test]
    fn routing_is_deterministic_and_total() {
        let (disk, ids) = disk_with_pages(64);
        let pool = ShardedBuffer::new(disk, PolicyKind::Lru, 32, 5);
        for &id in &ids {
            let a = pool.shard_of(id);
            let b = pool.shard_of(id);
            assert_eq!(a, b);
            assert!(a < 5);
        }
    }

    #[test]
    fn capacity_splits_evenly_with_remainder_first() {
        let (disk, _) = disk_with_pages(1);
        let pool = ShardedBuffer::new(disk, PolicyKind::Lru, 10, 4);
        let caps: Vec<usize> = pool
            .inner
            .shards
            .iter()
            .map(|s| s.lock().capacity())
            .collect();
        assert_eq!(caps, vec![3, 3, 2, 2]);
        assert_eq!(pool.capacity(), 10);
    }

    #[test]
    #[should_panic(expected = "at least one page per shard")]
    fn undersized_capacity_panics() {
        let (disk, _) = disk_with_pages(1);
        let _ = ShardedBuffer::new(disk, PolicyKind::Lru, 3, 4);
    }

    #[test]
    fn single_shard_matches_sequential_buffer_exactly() {
        let (mut disk_a, ids) = disk_with_pages(128);
        let accesses = trace(&ids, 4_000);

        let mut sequential = BufferManager::with_policy(PolicyKind::Asb, 24);
        for &(id, q) in &accesses {
            sequential
                .read_through(&mut disk_a, id, AccessContext::query(q))
                .unwrap();
        }

        let (disk_b, _) = disk_with_pages(128);
        let pool = ShardedBuffer::new(disk_b, PolicyKind::Asb, 24, 1);
        for &(id, q) in &accesses {
            pool.read(id, AccessContext::query(q)).unwrap();
        }

        assert_eq!(pool.stats(), sequential.stats());
        assert_eq!(pool.io_stats().reads, disk_a.stats().reads);
    }

    #[test]
    fn parallel_reads_preserve_accounting_invariants() {
        let (disk, ids) = disk_with_pages(96);
        let pool = ShardedBuffer::new(disk, PolicyKind::Lru, 32, 4);
        thread::scope(|s| {
            for t in 0..4u64 {
                let pool = pool.clone();
                let ids = ids.clone();
                s.spawn(move || {
                    for i in 0..500u64 {
                        let id = ids[((t * 31 + i * 7) % ids.len() as u64) as usize];
                        let page = pool
                            .read(id, AccessContext::query(QueryId::new(i)))
                            .unwrap();
                        assert_eq!(page.id, id);
                    }
                });
            }
        });
        let stats = pool.stats();
        assert_eq!(stats.logical_reads, 2_000);
        assert_eq!(stats.hits + stats.misses, stats.logical_reads);
        assert!(pool.resident() <= pool.capacity());
        assert_eq!(pool.io_stats().reads, stats.misses);
    }

    #[test]
    fn writes_are_visible_across_handles_and_threads() {
        let (disk, ids) = disk_with_pages(16);
        let pool = ShardedBuffer::new(disk, PolicyKind::Lru, 16, 4);
        thread::scope(|s| {
            for (t, chunk) in ids.chunks(4).enumerate() {
                let pool = pool.clone();
                let chunk = chunk.to_vec();
                s.spawn(move || {
                    for &id in &chunk {
                        let payload = Bytes::from(vec![t as u8 + 100]);
                        pool.write(Page::new(id, meta(), payload).unwrap()).unwrap();
                    }
                });
            }
        });
        for (t, chunk) in ids.chunks(4).enumerate() {
            for &id in chunk {
                let got = pool.read(id, AccessContext::default()).unwrap();
                assert_eq!(
                    got.payload.as_ref(),
                    &[t as u8 + 100],
                    "lost write to {id:?}"
                );
            }
        }
    }

    #[test]
    fn allocate_and_free_route_to_the_owning_shard() {
        let (disk, _) = disk_with_pages(0);
        let pool = ShardedBuffer::new(disk, PolicyKind::Lru, 8, 2);
        let id = pool.allocate(meta(), Bytes::from_static(b"fresh")).unwrap();
        assert!(pool.contains(id), "allocated page must be admitted");
        assert_eq!(
            pool.read(id, AccessContext::default())
                .unwrap()
                .payload
                .as_ref(),
            b"fresh"
        );
        pool.free(id).unwrap();
        assert!(!pool.contains(id));
        assert_eq!(
            pool.read(id, AccessContext::default()).unwrap_err(),
            StorageError::PageNotFound(id)
        );
    }

    #[test]
    fn clear_and_reset_io_stats_start_a_fresh_measurement() {
        let (disk, ids) = disk_with_pages(32);
        let pool = ShardedBuffer::new(disk, PolicyKind::Lru, 16, 4);
        for &id in &ids {
            pool.read(id, AccessContext::default()).unwrap();
        }
        assert!(pool.io_stats().reads > 0);
        pool.clear();
        pool.reset_io_stats();
        assert_eq!(pool.resident(), 0);
        assert_eq!(pool.stats(), BufferStats::default());
        assert_eq!(pool.io_stats(), IoStats::default());
    }

    #[test]
    fn pool_flush_aggregates_failures_across_shards() {
        use asb_storage::{FaultConfig, FaultyStore};
        let (disk, ids) = disk_with_pages(16);
        let store = FaultyStore::new(disk, FaultConfig::reliable());
        let pool = ShardedBuffer::new(store, PolicyKind::Lru, 16, 4);
        for (i, &id) in ids.iter().enumerate() {
            pool.write_buffered(Page::new(id, meta(), Bytes::from(vec![i as u8])).unwrap())
                .unwrap();
        }
        // Fail two pages routed to different shards.
        let (a, b) = {
            let mut picked: Vec<PageId> = Vec::new();
            for &id in &ids {
                if picked
                    .iter()
                    .all(|&p| pool.shard_of(p) != pool.shard_of(id))
                {
                    picked.push(id);
                }
                if picked.len() == 2 {
                    break;
                }
            }
            (picked[0], picked[1])
        };
        pool.with_store(|s| {
            s.mark_permanent(a);
            s.mark_permanent(b);
        });
        let err = pool.flush().unwrap_err();
        let StorageError::FlushIncomplete { failures } = err else {
            panic!("expected FlushIncomplete, got {err:?}");
        };
        let mut failed: Vec<PageId> = failures.iter().map(|(id, _)| *id).collect();
        failed.sort_unstable();
        let mut expected = vec![a, b];
        expected.sort_unstable();
        assert_eq!(failed, expected, "failures from every shard are collected");
        assert_eq!(pool.dirty_count(), 2);
        // Every healthy page reached the store despite the failing shards.
        pool.with_store(|s| {
            for (i, &id) in ids.iter().enumerate() {
                if id != a && id != b {
                    assert_eq!(s.inner().peek(id).unwrap().payload.as_ref(), &[i as u8]);
                }
            }
        });
    }

    #[test]
    fn pool_checkpoint_covers_every_shards_dirty_frames() {
        use asb_storage::{Wal, WalConfig, WalRecord};
        let (disk, ids) = disk_with_pages(16);
        let pool = ShardedBuffer::new(disk, PolicyKind::Lru, 16, 4);
        let wal = Wal::shared(WalConfig::default());
        pool.attach_wal(wal.clone());
        for (i, &id) in ids.iter().enumerate() {
            pool.write_buffered(Page::new(id, meta(), Bytes::from(vec![i as u8])).unwrap())
                .unwrap();
        }
        let ckpt = pool.checkpoint().unwrap();
        let (records, _) = wal.lock().scan();
        let Some(WalRecord::Checkpoint { lsn, redo_from }) = records.last() else {
            panic!("checkpoint record must be last");
        };
        assert_eq!(*lsn, ckpt);
        assert_eq!(
            *redo_from,
            Lsn(0),
            "the horizon is the pool-wide oldest dirty image, not one shard's"
        );
        assert_eq!(pool.stats().checkpoints, 1);
        assert_eq!(pool.stats().wal_appends, ids.len() as u64);
        // After a full flush the next checkpoint points past the log head.
        pool.flush().unwrap();
        pool.checkpoint().unwrap();
        let (records, _) = wal.lock().scan();
        let Some(WalRecord::Checkpoint { redo_from, .. }) = records.last() else {
            panic!("checkpoint record must be last");
        };
        assert_eq!(redo_from.0, ids.len() as u64 + 1);
    }

    #[test]
    fn try_into_store_returns_the_disk_when_unique() {
        let (disk, ids) = disk_with_pages(4);
        let pool = ShardedBuffer::new(disk, PolicyKind::Lru, 4, 2);
        let other = pool.clone();
        let pool = pool.try_into_store().expect_err("second handle alive");
        drop(other);
        let disk = pool.try_into_store().expect("last handle");
        assert_eq!(disk.page_count(), ids.len());
    }
}
