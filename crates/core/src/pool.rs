//! The shared trait surface of the thread-safe buffer pools.
//!
//! [`SharedBuffer`](crate::SharedBuffer) (one coarse mutex) and
//! [`ShardedBuffer`](crate::ShardedBuffer) (lock-striped) expose the same
//! guard-based access API; [`BufferPool`] captures it so experiment
//! drivers, examples and replay harnesses can be written once and run
//! against either pool.

use crate::guard::{PageReadGuard, PageWriteGuard};
use crate::manager::BufferStats;
use crate::policies::ArenaState;
use asb_storage::{AccessContext, PageId, Result};

/// A cloneable, thread-safe buffer pool handing out RAII page guards.
///
/// All methods take `&self` — implementations do their own locking. The
/// guard contract is shared: a [`PageReadGuard`] pins its frame against
/// eviction until dropped, and a [`PageWriteGuard`] publishes edits
/// through the pool's buffered-write path (WAL image first, frame
/// dirtied, `rec_lsn` stamped) on commit or drop.
pub trait BufferPool {
    /// Reads a page, returning a pinned read guard. A miss fetches from
    /// the backing store; transient faults are retried under the pool's
    /// retry policy.
    fn fetch(&self, id: PageId, ctx: AccessContext) -> Result<PageReadGuard>;

    /// Reads a page for modification. Edits are private to the guard
    /// until committed (or dropped, best-effort).
    fn fetch_mut(&self, id: PageId, ctx: AccessContext) -> Result<PageWriteGuard>;

    /// Writes every dirty frame back to the backing store.
    fn flush(&self) -> Result<()>;

    /// Buffer statistics snapshot (summed over shards, if any).
    fn stats(&self) -> BufferStats;

    /// Number of dirty frames currently buffered.
    fn dirty_count(&self) -> usize;

    /// Number of page guards currently alive against this pool.
    fn live_guards(&self) -> u64;

    /// Total pool capacity in pages.
    fn capacity(&self) -> usize;

    /// Drops every buffered page and resets buffer statistics.
    fn clear(&self);

    /// Expert-arena snapshots, one per independently mixing unit: a
    /// single entry for a coarse-locked pool, one entry per shard for a
    /// striped pool. Entries are `None` for non-arena policies, so the
    /// result doubles as a "which shards mix?" probe.
    fn arena_states(&self) -> Vec<Option<ArenaState>>;
}

impl<S: asb_storage::PageStore + Send + 'static> BufferPool for crate::SharedBuffer<S> {
    fn fetch(&self, id: PageId, ctx: AccessContext) -> Result<PageReadGuard> {
        crate::SharedBuffer::fetch(self, id, ctx)
    }

    fn fetch_mut(&self, id: PageId, ctx: AccessContext) -> Result<PageWriteGuard> {
        crate::SharedBuffer::fetch_mut(self, id, ctx)
    }

    fn flush(&self) -> Result<()> {
        crate::SharedBuffer::flush(self)
    }

    fn stats(&self) -> BufferStats {
        crate::SharedBuffer::stats(self)
    }

    fn dirty_count(&self) -> usize {
        crate::SharedBuffer::dirty_count(self)
    }

    fn live_guards(&self) -> u64 {
        crate::SharedBuffer::live_guards(self)
    }

    fn capacity(&self) -> usize {
        crate::SharedBuffer::capacity(self)
    }

    fn clear(&self) {
        crate::SharedBuffer::clear(self)
    }

    fn arena_states(&self) -> Vec<Option<ArenaState>> {
        vec![crate::SharedBuffer::arena_state(self)]
    }
}

impl<S: asb_storage::ConcurrentPageStore + 'static> BufferPool for crate::ShardedBuffer<S> {
    fn fetch(&self, id: PageId, ctx: AccessContext) -> Result<PageReadGuard> {
        crate::ShardedBuffer::fetch(self, id, ctx)
    }

    fn fetch_mut(&self, id: PageId, ctx: AccessContext) -> Result<PageWriteGuard> {
        crate::ShardedBuffer::fetch_mut(self, id, ctx)
    }

    fn flush(&self) -> Result<()> {
        crate::ShardedBuffer::flush(self)
    }

    fn stats(&self) -> BufferStats {
        crate::ShardedBuffer::stats(self)
    }

    fn dirty_count(&self) -> usize {
        crate::ShardedBuffer::dirty_count(self)
    }

    fn live_guards(&self) -> u64 {
        crate::ShardedBuffer::live_guards(self)
    }

    fn capacity(&self) -> usize {
        crate::ShardedBuffer::capacity(self)
    }

    fn clear(&self) {
        crate::ShardedBuffer::clear(self)
    }

    fn arena_states(&self) -> Vec<Option<ArenaState>> {
        crate::ShardedBuffer::shard_arena_states(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manager::BufferManager;
    use crate::policy::PolicyKind;
    use crate::{ShardedBuffer, SharedBuffer};
    use asb_geom::SpatialStats;
    use asb_storage::{DiskManager, PageMeta, PageStore};
    use bytes::Bytes;

    /// A driver written once against the trait, exercised over both pools.
    fn drive(pool: &dyn BufferPool, ids: &[PageId]) {
        for &id in ids {
            let guard = pool.fetch(id, AccessContext::default()).unwrap();
            assert_eq!(guard.id, id);
        }
        let mut w = pool.fetch_mut(ids[0], AccessContext::default()).unwrap();
        w.set_payload(Bytes::from_static(b"trait")).unwrap();
        w.commit().unwrap();
        assert_eq!(pool.dirty_count(), 1);
        pool.flush().unwrap();
        assert_eq!(pool.dirty_count(), 0);
        assert_eq!(pool.live_guards(), 0);
        assert!(pool.stats().logical_reads >= ids.len() as u64);
        assert!(pool.capacity() > 0);
        // Non-arena pools report no mixing units.
        assert!(pool.arena_states().iter().all(|s| s.is_none()));
        pool.clear();
        assert_eq!(pool.stats().logical_reads, 0);
    }

    fn disk_with_pages(n: usize) -> (DiskManager, Vec<PageId>) {
        let mut d = DiskManager::new();
        let ids = (0..n)
            .map(|i| {
                d.allocate(
                    PageMeta::data(SpatialStats::EMPTY),
                    Bytes::from(vec![i as u8]),
                )
                .unwrap()
            })
            .collect();
        (d, ids)
    }

    #[test]
    fn both_pools_serve_the_same_trait_driver() {
        let (disk, ids) = disk_with_pages(8);
        let shared = SharedBuffer::new(disk, BufferManager::with_policy(PolicyKind::Lru, 8));
        drive(&shared, &ids);

        let (disk, ids) = disk_with_pages(8);
        let sharded = ShardedBuffer::new(disk, PolicyKind::Lru, 8, 2);
        drive(&sharded, &ids);
    }
}
