//! The shared trait surface of the thread-safe buffer pools.
//!
//! [`SharedBuffer`](crate::SharedBuffer) (one coarse mutex) and
//! [`ShardedBuffer`](crate::ShardedBuffer) (lock-striped) expose the same
//! guard-based access API; [`BufferPool`] captures it so experiment
//! drivers, examples and replay harnesses can be written once and run
//! against either pool.

use crate::guard::{PageReadGuard, PageWriteGuard};
use crate::manager::BufferStats;
use crate::policies::ArenaState;
use asb_storage::{AccessContext, IoStats, PageError, PageId, Result};

/// The result of a classified read: the pinned guard plus whether the
/// request was served from the buffer (`hit`) or had to reach the backing
/// store. Serving front ends use the flag to attribute per-session hit
/// rates without reverse-engineering them from pool-wide statistics.
#[derive(Debug)]
pub struct FetchOutcome {
    /// The pinned read guard, exactly as [`BufferPool::fetch`] returns it.
    // guard-send-ok: by-value return wrapper — the guard's pin lifetime is
    // the caller's stack frame, exactly as if fetch() had returned it bare.
    pub guard: PageReadGuard,
    /// `true` when the first residency probe served the page; `false`
    /// when the backing store was read (including when the read was
    /// coalesced into another request's in-flight fetch).
    pub hit: bool,
}

/// One slot of a [`BufferPool::fetch_batch`] result: the classified guard,
/// or the typed per-page failure. There is no batch-wide error — a page
/// that cannot be served fails only its own slot.
pub type PageFetchResult = std::result::Result<FetchOutcome, PageError>;

/// A cloneable, thread-safe buffer pool handing out RAII page guards.
///
/// All methods take `&self` — implementations do their own locking. The
/// guard contract is shared: a [`PageReadGuard`] pins its frame against
/// eviction until dropped, and a [`PageWriteGuard`] publishes edits
/// through the pool's buffered-write path (WAL image first, frame
/// dirtied, `rec_lsn` stamped) on commit or drop.
pub trait BufferPool {
    /// Reads a page, returning a pinned read guard. A miss fetches from
    /// the backing store; transient faults are retried under the pool's
    /// retry policy.
    fn fetch(&self, id: PageId, ctx: AccessContext) -> Result<PageReadGuard>;

    /// [`fetch`](BufferPool::fetch), additionally reporting whether the
    /// request was a buffer hit. Accounting is identical to `fetch` — the
    /// flag mirrors the hit/miss the pool's statistics recorded for this
    /// request.
    fn fetch_classified(&self, id: PageId, ctx: AccessContext) -> Result<FetchOutcome>;

    /// Reads a batch of pages, returning one *independent* result per id
    /// in input order: a failing page fails its own slot with a typed
    /// [`PageError`] and never aborts its siblings. Implementations may
    /// amortize locking across the batch (e.g. one shard-lock acquisition
    /// for all resident pages of a shard), but the per-request accounting
    /// must be indistinguishable from issuing the same `fetch_classified`
    /// calls in input order.
    fn fetch_batch(&self, ids: &[PageId], ctx: AccessContext) -> Vec<PageFetchResult> {
        ids.iter()
            .map(|&id| {
                self.fetch_classified(id, ctx)
                    .map_err(|e| PageError::new(id, e))
            })
            .collect()
    }

    /// Serves `id` from buffer-resident state only: a hit pins and
    /// returns the frame; a miss is counted in the pool's statistics and
    /// returns `None` without touching the backing store. This is the
    /// degraded read path a serving front end falls back to when a
    /// circuit breaker has declared the backing store unhealthy.
    fn fetch_resident(&self, id: PageId, ctx: AccessContext) -> Option<PageReadGuard>;

    /// Number of independently locked shards (1 for coarse-locked pools).
    fn shard_count(&self) -> usize {
        1
    }

    /// The shard that serves `id` (always 0 for coarse-locked pools).
    /// Batching front ends group page requests by shard so each group's
    /// store latency can be charged to one simulated I/O channel.
    fn shard_of(&self, id: PageId) -> usize {
        let _ = id;
        0
    }

    /// Physical I/O statistics of the backing store, including its
    /// simulated-time clock (`IoStats::simulated_ms`). Latency harnesses
    /// difference this around a batch to convert store activity into
    /// simulated service time.
    fn io_stats(&self) -> IoStats;

    /// Reads a page for modification. Edits are private to the guard
    /// until committed (or dropped, best-effort).
    fn fetch_mut(&self, id: PageId, ctx: AccessContext) -> Result<PageWriteGuard>;

    /// Writes every dirty frame back to the backing store.
    fn flush(&self) -> Result<()>;

    /// Buffer statistics snapshot (summed over shards, if any).
    fn stats(&self) -> BufferStats;

    /// Number of dirty frames currently buffered.
    fn dirty_count(&self) -> usize;

    /// Number of page guards currently alive against this pool.
    fn live_guards(&self) -> u64;

    /// Total pool capacity in pages.
    fn capacity(&self) -> usize;

    /// Drops every buffered page and resets buffer statistics.
    fn clear(&self);

    /// Expert-arena snapshots, one per independently mixing unit: a
    /// single entry for a coarse-locked pool, one entry per shard for a
    /// striped pool. Entries are `None` for non-arena policies, so the
    /// result doubles as a "which shards mix?" probe.
    fn arena_states(&self) -> Vec<Option<ArenaState>>;
}

impl<S: asb_storage::ConcurrentPageStore + 'static> BufferPool for crate::SharedBuffer<S> {
    fn fetch(&self, id: PageId, ctx: AccessContext) -> Result<PageReadGuard> {
        crate::SharedBuffer::fetch(self, id, ctx)
    }

    fn fetch_classified(&self, id: PageId, ctx: AccessContext) -> Result<FetchOutcome> {
        crate::SharedBuffer::fetch_classified(self, id, ctx)
            .map(|(guard, hit)| FetchOutcome { guard, hit })
    }

    fn fetch_batch(&self, ids: &[PageId], ctx: AccessContext) -> Vec<PageFetchResult> {
        crate::SharedBuffer::fetch_batch(self, ids, ctx)
            .into_iter()
            .map(|slot| slot.map(|(guard, hit)| FetchOutcome { guard, hit }))
            .collect()
    }

    fn fetch_resident(&self, id: PageId, ctx: AccessContext) -> Option<PageReadGuard> {
        crate::SharedBuffer::fetch_resident(self, id, ctx)
    }

    fn io_stats(&self) -> IoStats {
        crate::SharedBuffer::io_stats(self)
    }

    fn fetch_mut(&self, id: PageId, ctx: AccessContext) -> Result<PageWriteGuard> {
        crate::SharedBuffer::fetch_mut(self, id, ctx)
    }

    fn flush(&self) -> Result<()> {
        crate::SharedBuffer::flush(self)
    }

    fn stats(&self) -> BufferStats {
        crate::SharedBuffer::stats(self)
    }

    fn dirty_count(&self) -> usize {
        crate::SharedBuffer::dirty_count(self)
    }

    fn live_guards(&self) -> u64 {
        crate::SharedBuffer::live_guards(self)
    }

    fn capacity(&self) -> usize {
        crate::SharedBuffer::capacity(self)
    }

    fn clear(&self) {
        crate::SharedBuffer::clear(self)
    }

    fn arena_states(&self) -> Vec<Option<ArenaState>> {
        vec![crate::SharedBuffer::arena_state(self)]
    }
}

impl<S: asb_storage::ConcurrentPageStore + 'static> BufferPool for crate::ShardedBuffer<S> {
    fn fetch(&self, id: PageId, ctx: AccessContext) -> Result<PageReadGuard> {
        crate::ShardedBuffer::fetch(self, id, ctx)
    }

    fn fetch_classified(&self, id: PageId, ctx: AccessContext) -> Result<FetchOutcome> {
        crate::ShardedBuffer::fetch_classified(self, id, ctx)
            .map(|(guard, hit)| FetchOutcome { guard, hit })
    }

    fn fetch_batch(&self, ids: &[PageId], ctx: AccessContext) -> Vec<PageFetchResult> {
        crate::ShardedBuffer::fetch_batch(self, ids, ctx)
            .into_iter()
            .map(|slot| slot.map(|(guard, hit)| FetchOutcome { guard, hit }))
            .collect()
    }

    fn fetch_resident(&self, id: PageId, ctx: AccessContext) -> Option<PageReadGuard> {
        crate::ShardedBuffer::fetch_resident(self, id, ctx)
    }

    fn shard_count(&self) -> usize {
        crate::ShardedBuffer::shard_count(self)
    }

    fn shard_of(&self, id: PageId) -> usize {
        crate::ShardedBuffer::shard_of(self, id)
    }

    fn io_stats(&self) -> IoStats {
        crate::ShardedBuffer::io_stats(self)
    }

    fn fetch_mut(&self, id: PageId, ctx: AccessContext) -> Result<PageWriteGuard> {
        crate::ShardedBuffer::fetch_mut(self, id, ctx)
    }

    fn flush(&self) -> Result<()> {
        crate::ShardedBuffer::flush(self)
    }

    fn stats(&self) -> BufferStats {
        crate::ShardedBuffer::stats(self)
    }

    fn dirty_count(&self) -> usize {
        crate::ShardedBuffer::dirty_count(self)
    }

    fn live_guards(&self) -> u64 {
        crate::ShardedBuffer::live_guards(self)
    }

    fn capacity(&self) -> usize {
        crate::ShardedBuffer::capacity(self)
    }

    fn clear(&self) {
        crate::ShardedBuffer::clear(self)
    }

    fn arena_states(&self) -> Vec<Option<ArenaState>> {
        crate::ShardedBuffer::shard_arena_states(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manager::BufferManager;
    use crate::policy::PolicyKind;
    use crate::{ShardedBuffer, SharedBuffer};
    use asb_geom::SpatialStats;
    use asb_storage::{DiskManager, PageMeta, PageStore};
    use bytes::Bytes;

    /// A driver written once against the trait, exercised over both pools.
    fn drive(pool: &dyn BufferPool, ids: &[PageId]) {
        for &id in ids {
            let guard = pool.fetch(id, AccessContext::default()).unwrap();
            assert_eq!(guard.id, id);
        }
        // Everything is resident now: classified fetches must report hits,
        // and a batch (with a repeat) must classify every id as a hit too.
        let out = pool
            .fetch_classified(ids[0], AccessContext::default())
            .unwrap();
        assert!(out.hit);
        drop(out);
        let batch: Vec<PageId> = ids.iter().chain([&ids[0]]).copied().collect();
        let outcomes = pool.fetch_batch(&batch, AccessContext::default());
        assert_eq!(outcomes.len(), batch.len());
        for (slot, &id) in outcomes.iter().zip(&batch) {
            let outcome = slot.as_ref().expect("healthy store: no slot may fail");
            assert_eq!(outcome.guard.id, id);
            assert!(outcome.hit);
        }
        drop(outcomes);
        // Everything is resident, so the degraded read path serves it too.
        let resident = pool
            .fetch_resident(ids[1], AccessContext::default())
            .expect("resident page must be served without the store");
        assert_eq!(resident.id, ids[1]);
        drop(resident);
        // Shard routing is total and stable over the declared shard count.
        assert!(pool.shard_count() >= 1);
        for &id in ids {
            assert!(pool.shard_of(id) < pool.shard_count());
            assert_eq!(pool.shard_of(id), pool.shard_of(id));
        }
        assert!(pool.io_stats().reads as usize >= 1);
        let mut w = pool.fetch_mut(ids[0], AccessContext::default()).unwrap();
        w.set_payload(Bytes::from_static(b"trait")).unwrap();
        w.commit().unwrap();
        assert_eq!(pool.dirty_count(), 1);
        pool.flush().unwrap();
        assert_eq!(pool.dirty_count(), 0);
        assert_eq!(pool.live_guards(), 0);
        assert!(pool.stats().logical_reads >= ids.len() as u64);
        assert!(pool.capacity() > 0);
        // Non-arena pools report no mixing units.
        assert!(pool.arena_states().iter().all(|s| s.is_none()));
        pool.clear();
        assert_eq!(pool.stats().logical_reads, 0);
    }

    fn disk_with_pages(n: usize) -> (DiskManager, Vec<PageId>) {
        let mut d = DiskManager::new();
        let ids = (0..n)
            .map(|i| {
                d.allocate(
                    PageMeta::data(SpatialStats::EMPTY),
                    Bytes::from(vec![i as u8]),
                )
                .unwrap()
            })
            .collect();
        (d, ids)
    }

    #[test]
    fn batch_with_repeats_classifies_like_sequential_fetches() {
        let (disk, ids) = disk_with_pages(6);
        let sharded = ShardedBuffer::new(disk, PolicyKind::Lru, 8, 2);
        let batch = vec![ids[0], ids[1], ids[0]];
        let outcomes = sharded.fetch_batch(&batch, AccessContext::default());
        let hit = |i: usize| {
            outcomes[i]
                .as_ref()
                .expect("healthy store: no slot may fail")
                .1
        };
        assert!(!hit(0), "cold id must classify as a miss");
        assert!(!hit(1), "cold id must classify as a miss");
        assert!(hit(2), "repeat must see the first occurrence's admission");
        let stats = sharded.stats();
        assert_eq!(stats.logical_reads, 3);
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 2);
    }

    #[test]
    fn both_pools_serve_the_same_trait_driver() {
        let (disk, ids) = disk_with_pages(8);
        let shared = SharedBuffer::new(disk, BufferManager::with_policy(PolicyKind::Lru, 8));
        drive(&shared, &ids);

        let (disk, ids) = disk_with_pages(8);
        let sharded = ShardedBuffer::new(disk, PolicyKind::Lru, 8, 2);
        drive(&sharded, &ids);
    }
}
