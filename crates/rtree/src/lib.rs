//! # asb-rtree — a disk-based R\*-tree over paged storage
//!
//! The spatial access method the EDBT 2002 evaluation runs on: an R\*-tree
//! (Beckmann/Kriegel/Schneider/Seeger, SIGMOD 1990) whose nodes are
//! serialized into the fixed-size pages of `asb-storage` and whose every
//! node access is a page request — optionally routed through a buffer from
//! `asb-core`, which is how the paper measures replacement policies.
//!
//! Features:
//!
//! * **Insertion** with the R\* heuristics: overlap-minimizing
//!   ChooseSubtree at the leaf-parent level, margin-driven split-axis
//!   selection, and *forced reinsertion* on first overflow per level.
//! * **Deletion** with tree condensation (underfull nodes dissolve and
//!   their entries reinsert).
//! * **Queries**: point, window, and k-nearest-neighbour, each tagged with
//!   a fresh [`QueryId`](asb_storage::QueryId) so LRU-K can detect
//!   correlated references.
//! * **STR bulk loading** (sort-tile-recursive) with a configurable fill
//!   factor — the paper's trees are ~69 % full, which the defaults match.
//! * **Spatial join** between two trees (synchronized traversal), used by
//!   the future-work experiments.
//! * [`RTree::validate`] checks all structural invariants and is exercised
//!   by the property-based tests.
//!
//! The page layout reproduces the paper's fan-outs (51 directory / 42 data
//! entries per 2 KiB page); see [`RTreeConfig`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod join;
mod node;
mod split;
mod tree;

pub use config::RTreeConfig;
pub use join::spatial_join;
pub use node::{DirEntry, LeafEntry, Node, NodeKind};
pub use tree::{RTree, RTreeItem, TreeSnapshot, TreeStats};
