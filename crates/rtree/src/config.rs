use asb_storage::{Page, PAGE_HEADER_SIZE, PAGE_SIZE};

/// Serialized size of a directory entry: 4 × f64 MBR + u64 child page id.
pub(crate) const DIR_ENTRY_SIZE: usize = 40;
/// Serialized size of a leaf (data) entry: MBR + object id + object-page id.
pub(crate) const LEAF_ENTRY_SIZE: usize = 48;

/// Structural parameters of an [`RTree`](crate::RTree).
///
/// The defaults derive the paper's exact fan-outs from the page geometry
/// (51 directory entries, 42 data entries per 2 KiB page) and use the
/// R\*-tree paper's recommended tuning: minimum fill 40 % of the maximum,
/// 30 % forced-reinsertion fraction, and ~70 % bulk-load fill (the paper's
/// US-mainland tree averages 28.9 of 42 data entries per page ≈ 69 %).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RTreeConfig {
    /// Maximum entries in a directory page (`M` for inner nodes).
    pub dir_max: usize,
    /// Minimum entries in a non-root directory page (`m`).
    pub dir_min: usize,
    /// Maximum entries in a data page (`M` for leaves).
    pub leaf_max: usize,
    /// Minimum entries in a non-root data page.
    pub leaf_min: usize,
    /// Number of entries removed on forced reinsertion (`p`; R\* uses 30 %
    /// of `M`).
    pub reinsert_count: usize,
    /// Target entries per node during STR bulk loading.
    pub bulk_leaf_fill: usize,
    /// Target directory entries per node during STR bulk loading.
    pub bulk_dir_fill: usize,
}

impl Default for RTreeConfig {
    fn default() -> Self {
        let dir_max = Page::capacity_for(DIR_ENTRY_SIZE); // 51
        let leaf_max = Page::capacity_for(LEAF_ENTRY_SIZE); // 42
        RTreeConfig {
            dir_max,
            dir_min: (dir_max as f64 * 0.4).floor() as usize, // 20
            leaf_max,
            leaf_min: (leaf_max as f64 * 0.4).floor() as usize, // 16
            reinsert_count: (leaf_max as f64 * 0.3).floor() as usize, // 12
            bulk_leaf_fill: (leaf_max as f64 * 0.69).round() as usize, // 29
            bulk_dir_fill: (dir_max as f64 * 0.69).round() as usize, // 35
        }
    }
}

impl RTreeConfig {
    /// A small-fan-out configuration (useful in tests: splits and multiple
    /// levels appear after a handful of insertions while still satisfying
    /// every R\*-tree precondition).
    pub fn small() -> Self {
        RTreeConfig {
            dir_max: 8,
            dir_min: 3,
            leaf_max: 8,
            leaf_min: 3,
            reinsert_count: 2,
            bulk_leaf_fill: 6,
            bulk_dir_fill: 6,
        }
    }

    /// Maximum entries for a node at `level` (1 = leaf).
    #[inline]
    pub fn max_for(&self, level: u8) -> usize {
        if level == 1 {
            self.leaf_max
        } else {
            self.dir_max
        }
    }

    /// Minimum entries for a non-root node at `level`.
    #[inline]
    pub fn min_for(&self, level: u8) -> usize {
        if level == 1 {
            self.leaf_min
        } else {
            self.dir_min
        }
    }

    /// Validates internal consistency; called by tree constructors.
    pub fn validate(&self) -> Result<(), String> {
        if self.dir_max < 4 || self.leaf_max < 4 {
            return Err("maximum fan-out must be at least 4".into());
        }
        if self.dir_min < 2 || self.dir_min > self.dir_max / 2 {
            return Err(format!(
                "dir_min {} must be in [2, {}]",
                self.dir_min,
                self.dir_max / 2
            ));
        }
        if self.leaf_min < 2 || self.leaf_min > self.leaf_max / 2 {
            return Err(format!(
                "leaf_min {} must be in [2, {}]",
                self.leaf_min,
                self.leaf_max / 2
            ));
        }
        if self.reinsert_count + 1 >= self.leaf_max.min(self.dir_max) {
            return Err("reinsert_count must leave room in the node".into());
        }
        if self.bulk_leaf_fill < self.leaf_min
            || self.bulk_leaf_fill > self.leaf_max
            || self.bulk_dir_fill < self.dir_min
            || self.bulk_dir_fill > self.dir_max
        {
            return Err("bulk fill must lie between min and max fan-out".into());
        }
        let dir_bytes = PAGE_HEADER_SIZE + self.dir_max * DIR_ENTRY_SIZE;
        let leaf_bytes = PAGE_HEADER_SIZE + self.leaf_max * LEAF_ENTRY_SIZE;
        if dir_bytes > PAGE_SIZE || leaf_bytes > PAGE_SIZE {
            return Err("fan-out exceeds the page size".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_paper() {
        let c = RTreeConfig::default();
        assert_eq!(c.dir_max, 51);
        assert_eq!(c.leaf_max, 42);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn small_config_is_valid() {
        assert!(RTreeConfig::small().validate().is_ok());
    }

    #[test]
    fn max_min_dispatch_on_level() {
        let c = RTreeConfig::default();
        assert_eq!(c.max_for(1), c.leaf_max);
        assert_eq!(c.max_for(2), c.dir_max);
        assert_eq!(c.min_for(1), c.leaf_min);
        assert_eq!(c.min_for(3), c.dir_min);
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let mut c = RTreeConfig::default();
        c.dir_min = c.dir_max; // > max/2
        assert!(c.validate().is_err());

        let c = RTreeConfig {
            leaf_max: 3,
            ..RTreeConfig::default()
        };
        assert!(c.validate().is_err());

        let base = RTreeConfig::default();
        let c = RTreeConfig {
            bulk_leaf_fill: base.leaf_max + 1,
            ..base
        };
        assert!(c.validate().is_err());
    }
}
