//! The disk-based R\*-tree.

use crate::config::RTreeConfig;
use crate::node::{DirEntry, LeafEntry, Node, NodeKind};
use crate::split::{
    choose_least_enlargement, choose_least_overlap, rstar_split, take_reinsert_victims,
};
use asb_core::{BufferManager, BufferStats};
use asb_geom::{HasMbr, Point, Query, Rect};
use asb_storage::{
    AccessContext, DiskManager, Page, PageId, PageStore, QueryId, Result, StorageError,
};
use std::collections::BinaryHeap;

impl HasMbr for DirEntry {
    fn mbr(&self) -> Rect {
        self.mbr
    }
}

impl HasMbr for LeafEntry {
    fn mbr(&self) -> Rect {
        self.mbr
    }
}

/// An object to be indexed: its MBR and an application-level id
/// (re-export of [`asb_geom::SpatialItem`]).
pub type RTreeItem = asb_geom::SpatialItem;

/// Structural statistics of a tree (computed by [`RTree::stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TreeStats {
    /// Number of directory pages.
    pub directory_pages: usize,
    /// Number of data (leaf) pages.
    pub data_pages: usize,
    /// Height of the tree (root level; 1 = the root is a leaf).
    pub height: u8,
    /// Number of indexed objects.
    pub objects: usize,
}

impl TreeStats {
    /// Total pages of the tree.
    pub fn total_pages(&self) -> usize {
        self.directory_pages + self.data_pages
    }

    /// Fraction of pages that are directory pages (the paper reports 2.84 %
    /// and 2.87 % for its two databases).
    pub fn directory_fraction(&self) -> f64 {
        self.directory_pages as f64 / self.total_pages() as f64
    }
}

/// The structural identity of a tree, detached from its page store.
///
/// A snapshot plus a store handle reconstructs a working tree view
/// ([`RTree::attach`]). The intended use is concurrent serving on a shared
/// buffer pool: build (or bulk-load) a tree once, take its [`snapshot`],
/// move the store into an `asb_core::ShardedBuffer`, and give every serving
/// thread its own `RTree` attached to a clone of the pool handle. As long
/// as no thread mutates the structure (insert/delete), all views stay
/// consistent.
///
/// [`snapshot`]: RTree::snapshot
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TreeSnapshot {
    root: PageId,
    height: u8,
    len: usize,
    config: RTreeConfig,
}

impl TreeSnapshot {
    /// The root page of the snapshotted tree — the entry point for
    /// external traversals (e.g. a serving front end expanding nodes
    /// itself to batch page requests across sessions).
    pub fn root(&self) -> PageId {
        self.root
    }

    /// Height of the snapshotted tree (1 = the root is a leaf).
    pub fn height(&self) -> u8 {
        self.height
    }

    /// Number of items in the snapshotted tree.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the snapshotted tree was empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

enum AnyEntry {
    Leaf(LeafEntry),
    Dir(DirEntry),
}

impl AnyEntry {
    fn mbr(&self) -> Rect {
        match self {
            AnyEntry::Leaf(e) => e.mbr,
            AnyEntry::Dir(e) => e.mbr,
        }
    }
}

/// A disk-based R\*-tree over any [`PageStore`], optionally reading through
/// a [`BufferManager`].
///
/// Every node access is one page request; with a buffer attached, requests
/// go through it and the buffer's miss count is the paper's "number of disk
/// accesses". Each query (and each update operation) gets a fresh
/// [`QueryId`] so LRU-K can collapse correlated references.
///
/// ```
/// use asb_geom::{Rect, SpatialItem};
/// use asb_rtree::RTree;
/// use asb_storage::DiskManager;
///
/// let items: Vec<SpatialItem> = (0..500)
///     .map(|i| {
///         let x = (i % 25) as f64;
///         let y = (i / 25) as f64;
///         SpatialItem::new(i, Rect::new(x, y, x + 0.5, y + 0.5))
///     })
///     .collect();
/// let mut tree = RTree::bulk_load(DiskManager::new(), &items).unwrap();
///
/// let hits = tree.window_query(Rect::new(0.0, 0.0, 3.0, 3.0)).unwrap();
/// assert_eq!(hits.len(), 16); // the 4x4 corner of the grid
/// tree.validate().unwrap();
/// ```
pub struct RTree<S: PageStore = DiskManager> {
    store: S,
    buffer: Option<BufferManager>,
    config: RTreeConfig,
    root: PageId,
    height: u8,
    len: usize,
    next_query: u64,
}

impl<S: PageStore> std::fmt::Debug for RTree<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RTree")
            .field("root", &self.root)
            .field("height", &self.height)
            .field("len", &self.len)
            .field("buffered", &self.buffer.is_some())
            .finish()
    }
}

impl<S: PageStore> RTree<S> {
    /// Creates an empty tree (a single empty leaf page) in `store`.
    pub fn new(store: S) -> Result<Self> {
        Self::with_config(store, RTreeConfig::default())
    }

    /// Creates an empty tree with a custom configuration.
    pub fn with_config(mut store: S, config: RTreeConfig) -> Result<Self> {
        config.validate().map_err(|reason| StorageError::Corrupt {
            id: PageId::new(0),
            reason,
        })?;
        let root_node = Node::new_leaf();
        let root = store.allocate(root_node.page_meta(), root_node.encode())?;
        Ok(RTree {
            store,
            buffer: None,
            config,
            root,
            height: 1,
            len: 0,
            next_query: 0,
        })
    }

    /// Bulk-loads a tree from `items` using the STR (sort-tile-recursive)
    /// algorithm with the default configuration.
    pub fn bulk_load(store: S, items: &[RTreeItem]) -> Result<Self> {
        Self::bulk_load_with(store, RTreeConfig::default(), items)
    }

    /// Bulk-loads with a custom configuration.
    pub fn bulk_load_with(mut store: S, config: RTreeConfig, items: &[RTreeItem]) -> Result<Self> {
        config.validate().map_err(|reason| StorageError::Corrupt {
            id: PageId::new(0),
            reason,
        })?;
        if items.is_empty() {
            return Self::with_config(store, config);
        }

        // Level 1: tile items into leaves.
        let leaf_entries: Vec<LeafEntry> = items
            .iter()
            .map(|it| LeafEntry {
                mbr: it.mbr,
                object_id: it.id,
                object_page: 0,
            })
            .collect();
        let tiles = str_tiles(
            leaf_entries,
            config.bulk_leaf_fill,
            config.leaf_min,
            config.leaf_max,
        );
        let mut level_entries: Vec<DirEntry> = Vec::with_capacity(tiles.len());
        for tile in tiles {
            let node = Node {
                level: 1,
                kind: NodeKind::Leaf(tile),
            };
            let id = store.allocate(node.page_meta(), node.encode())?;
            level_entries.push(DirEntry {
                mbr: node.mbr().expect("non-empty tile"),
                child: id,
            });
        }

        // Upper levels until a single node remains.
        let mut level = 1u8;
        while level_entries.len() > 1 {
            level += 1;
            let tiles = str_tiles(
                level_entries,
                config.bulk_dir_fill,
                config.dir_min,
                config.dir_max,
            );
            let mut next = Vec::with_capacity(tiles.len());
            for tile in tiles {
                let node = Node {
                    level,
                    kind: NodeKind::Dir(tile),
                };
                let id = store.allocate(node.page_meta(), node.encode())?;
                next.push(DirEntry {
                    mbr: node.mbr().expect("non-empty tile"),
                    child: id,
                });
            }
            level_entries = next;
        }

        let root = level_entries[0].child;
        Ok(RTree {
            store,
            buffer: None,
            config,
            root,
            height: level,
            len: items.len(),
            next_query: 0,
        })
    }

    /// Attaches (or replaces) a buffer through which all node reads and
    /// writes are routed.
    pub fn set_buffer(&mut self, buffer: BufferManager) {
        self.buffer = Some(buffer);
    }

    /// Detaches and returns the buffer, if any.
    pub fn take_buffer(&mut self) -> Option<BufferManager> {
        self.buffer.take()
    }

    /// The attached buffer.
    pub fn buffer(&self) -> Option<&BufferManager> {
        self.buffer.as_ref()
    }

    /// Mutable access to the attached buffer.
    pub fn buffer_mut(&mut self) -> Option<&mut BufferManager> {
        self.buffer.as_mut()
    }

    /// Buffer statistics, if a buffer is attached.
    pub fn buffer_stats(&self) -> Option<BufferStats> {
        self.buffer.as_ref().map(|b| b.stats())
    }

    /// The backing store.
    pub fn store(&self) -> &S {
        &self.store
    }

    /// Mutable access to the backing store (e.g. to reset
    /// [`DiskManager`] I/O statistics between experiments).
    pub fn store_mut(&mut self) -> &mut S {
        &mut self.store
    }

    /// Number of live pages in the backing store (for a store dedicated to
    /// this tree: the tree's page count, the quantity the paper sizes
    /// buffers against).
    pub fn page_count(&self) -> usize {
        self.store.page_count()
    }

    /// Number of indexed objects.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Height of the tree (the paper's US-mainland tree has height 4).
    pub fn height(&self) -> u8 {
        self.height
    }

    /// The tree's configuration.
    pub fn config(&self) -> &RTreeConfig {
        self.config_ref()
    }

    /// Captures the tree's structural identity (root, height, length,
    /// configuration) so the store can be re-wrapped and re-attached — see
    /// [`TreeSnapshot`].
    pub fn snapshot(&self) -> TreeSnapshot {
        TreeSnapshot {
            root: self.root,
            height: self.height,
            len: self.len,
            config: self.config,
        }
    }

    /// Consumes the tree and returns its backing store (e.g. to move a
    /// bulk-loaded disk into a shared buffer pool).
    pub fn into_store(self) -> S {
        self.store
    }

    /// Reconstructs a tree view over `store` from a [`TreeSnapshot`].
    ///
    /// The store must contain the pages the snapshot was taken over
    /// (typically: the same store, or a buffer pool wrapping it). The view
    /// starts with no buffer attached and query counter 0; concurrent views
    /// should space their counters out with
    /// [`seed_query_counter`](RTree::seed_query_counter).
    pub fn attach(store: S, snapshot: TreeSnapshot) -> Self {
        RTree {
            store,
            buffer: None,
            config: snapshot.config,
            root: snapshot.root,
            height: snapshot.height,
            len: snapshot.len,
            next_query: 0,
        }
    }

    /// Sets the query counter to `base`.
    ///
    /// Query ids tag accesses for correlated-reference detection (LRU-K).
    /// Threads serving from separate views of one shared pool should use
    /// disjoint ranges (e.g. `t * 1 << 32`) so accesses from different
    /// threads are never treated as the same query.
    pub fn seed_query_counter(&mut self, base: u64) {
        self.next_query = base;
    }

    fn config_ref(&self) -> &RTreeConfig {
        &self.config
    }

    // ---- page I/O ------------------------------------------------------

    fn ctx(&self) -> AccessContext {
        AccessContext::query(QueryId::new(self.next_query))
    }

    fn read_node(&mut self, id: PageId) -> Result<Node> {
        let ctx = self.ctx();
        match &mut self.buffer {
            Some(buf) => {
                // The guard pins the frame only for the decode; it derefs
                // to the page.
                let page = buf.fetch(&mut self.store, id, ctx)?;
                Node::decode(&page)
            }
            None => Node::decode(&self.store.read(id, ctx)?),
        }
    }

    fn write_node(&mut self, id: PageId, node: &Node) -> Result<()> {
        let page = Page::new(id, node.page_meta(), node.encode())?;
        match &mut self.buffer {
            Some(buf) => buf.write_through(&mut self.store, page),
            None => self.store.write(page),
        }
    }

    fn alloc_node(&mut self, node: &Node) -> Result<PageId> {
        match &mut self.buffer {
            Some(buf) => buf.allocate_through(&mut self.store, node.page_meta(), node.encode()),
            None => self.store.allocate(node.page_meta(), node.encode()),
        }
    }

    fn free_node(&mut self, id: PageId) -> Result<()> {
        match &mut self.buffer {
            Some(buf) => buf.free_through(&mut self.store, id),
            None => self.store.free(id),
        }
    }

    // ---- queries ---------------------------------------------------------

    /// Executes a point or window query, returning the matching object ids.
    pub fn execute(&mut self, query: &Query) -> Result<Vec<u64>> {
        self.next_query += 1;
        let region = query.region();
        let mut results = Vec::new();
        let mut stack = vec![self.root];
        while let Some(id) = stack.pop() {
            let node = self.read_node(id)?;
            match &node.kind {
                NodeKind::Dir(entries) => {
                    for e in entries {
                        if e.mbr.intersects(&region) {
                            stack.push(e.child);
                        }
                    }
                }
                NodeKind::Leaf(entries) => {
                    for e in entries {
                        if query.matches(&e.mbr) {
                            results.push(e.object_id);
                        }
                    }
                }
            }
        }
        Ok(results)
    }

    /// Point query: all objects whose MBR contains `p`.
    pub fn point_query(&mut self, p: Point) -> Result<Vec<u64>> {
        self.execute(&Query::Point(p))
    }

    /// Window query: all objects whose MBR intersects `window`.
    pub fn window_query(&mut self, window: Rect) -> Result<Vec<u64>> {
        self.execute(&Query::Window(window))
    }

    /// The `k` nearest objects to `p` by MBR distance (best-first search).
    /// Returns `(object_id, distance)` pairs ordered by ascending distance.
    pub fn nearest_neighbors(&mut self, p: Point, k: usize) -> Result<Vec<(u64, f64)>> {
        if k == 0 {
            return Ok(Vec::new());
        }
        self.next_query += 1;

        #[derive(PartialEq)]
        struct Candidate {
            dist: f64,
            target: std::result::Result<PageId, (u64, Rect)>, // node or object
        }
        impl Eq for Candidate {}
        impl Ord for Candidate {
            fn cmp(&self, other: &Self) -> std::cmp::Ordering {
                // Reverse: BinaryHeap is a max-heap, we need the minimum.
                other
                    .dist
                    .partial_cmp(&self.dist)
                    .expect("finite distances")
            }
        }
        impl PartialOrd for Candidate {
            fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
                Some(self.cmp(other))
            }
        }

        let mut heap = BinaryHeap::new();
        heap.push(Candidate {
            dist: 0.0,
            target: Ok(self.root),
        });
        let mut out = Vec::with_capacity(k);
        while let Some(c) = heap.pop() {
            match c.target {
                Err((id, _)) => {
                    out.push((id, c.dist));
                    if out.len() == k {
                        break;
                    }
                }
                Ok(page) => {
                    let node = self.read_node(page)?;
                    match &node.kind {
                        NodeKind::Dir(entries) => {
                            for e in entries {
                                heap.push(Candidate {
                                    dist: e.mbr.min_dist(&p),
                                    target: Ok(e.child),
                                });
                            }
                        }
                        NodeKind::Leaf(entries) => {
                            for e in entries {
                                heap.push(Candidate {
                                    dist: e.mbr.min_dist(&p),
                                    target: Err((e.object_id, e.mbr)),
                                });
                            }
                        }
                    }
                }
            }
        }
        Ok(out)
    }

    // ---- insertion -------------------------------------------------------

    /// Inserts an object using the full R\* algorithm (ChooseSubtree,
    /// forced reinsertion, margin-driven split).
    pub fn insert(&mut self, item: RTreeItem) -> Result<()> {
        self.next_query += 1;
        let entry = LeafEntry {
            mbr: item.mbr,
            object_id: item.id,
            object_page: 0,
        };
        let mut reinserted = 0u64; // bitmask: level l already reinserted
        let mut pending: Vec<(AnyEntry, u8)> = vec![(AnyEntry::Leaf(entry), 1)];
        while let Some((entry, level)) = pending.pop() {
            self.insert_from_root(entry, level, &mut reinserted, &mut pending)?;
        }
        self.len += 1;
        Ok(())
    }

    fn insert_from_root(
        &mut self,
        entry: AnyEntry,
        target_level: u8,
        reinserted: &mut u64,
        pending: &mut Vec<(AnyEntry, u8)>,
    ) -> Result<()> {
        let root = self.root;
        let (_, split) = self.insert_rec(root, entry, target_level, reinserted, pending)?;
        if let Some(sibling) = split {
            // Grow a new root above the old one.
            let old_root_node = self.read_node(root)?;
            let old_entry = DirEntry {
                mbr: old_root_node.mbr().expect("split root is non-empty"),
                child: root,
            };
            let new_root = Node {
                level: self.height + 1,
                kind: NodeKind::Dir(vec![old_entry, sibling]),
            };
            self.root = self.alloc_node(&new_root)?;
            self.height += 1;
        }
        Ok(())
    }

    /// Recursive insertion; returns the subtree's new MBR and, if the node
    /// split, the directory entry for the new sibling.
    fn insert_rec(
        &mut self,
        node_id: PageId,
        entry: AnyEntry,
        target_level: u8,
        reinserted: &mut u64,
        pending: &mut Vec<(AnyEntry, u8)>,
    ) -> Result<(Rect, Option<DirEntry>)> {
        let mut node = self.read_node(node_id)?;
        debug_assert!(node.level >= target_level);
        if node.level == target_level {
            match (entry, &mut node.kind) {
                (AnyEntry::Leaf(e), NodeKind::Leaf(v)) => v.push(e),
                (AnyEntry::Dir(e), NodeKind::Dir(v)) => v.push(e),
                _ => {
                    return Err(StorageError::Corrupt {
                        id: node_id,
                        reason: "entry kind does not match node level".into(),
                    })
                }
            }
        } else {
            let rect = entry.mbr();
            let entries = node.dir_entries();
            // R*: children that are leaves -> minimize overlap enlargement;
            // higher levels -> minimize area enlargement.
            let idx = if node.level == 2 {
                choose_least_overlap(entries, &rect)
            } else {
                choose_least_enlargement(entries, &rect)
            };
            let child = entries[idx].child;
            let (child_mbr, split) =
                self.insert_rec(child, entry, target_level, reinserted, pending)?;
            node.dir_entries_mut()[idx].mbr = child_mbr;
            if let Some(sibling) = split {
                node.dir_entries_mut().push(sibling);
            }
        }

        if node.len() > self.config.max_for(node.level) {
            return self.handle_overflow(node_id, node, reinserted, pending);
        }
        let mbr = node.mbr().expect("non-empty after insert");
        self.write_node(node_id, &node)?;
        Ok((mbr, None))
    }

    fn handle_overflow(
        &mut self,
        node_id: PageId,
        mut node: Node,
        reinserted: &mut u64,
        pending: &mut Vec<(AnyEntry, u8)>,
    ) -> Result<(Rect, Option<DirEntry>)> {
        let level = node.level;
        let level_bit = 1u64 << level.min(63);
        let is_root = node_id == self.root;
        let p = self
            .config
            .reinsert_count
            .min(node.len() - self.config.min_for(level));

        if !is_root && *reinserted & level_bit == 0 && p > 0 {
            // Forced reinsertion: remove the p entries farthest from the
            // node's center and queue them for reinsertion at this level.
            *reinserted |= level_bit;
            match &mut node.kind {
                NodeKind::Leaf(entries) => {
                    for v in take_reinsert_victims(entries, p) {
                        pending.push((AnyEntry::Leaf(v), level));
                    }
                }
                NodeKind::Dir(entries) => {
                    for v in take_reinsert_victims(entries, p) {
                        pending.push((AnyEntry::Dir(v), level));
                    }
                }
            }
            let mbr = node.mbr().expect("entries remain after reinsertion");
            self.write_node(node_id, &node)?;
            return Ok((mbr, None));
        }

        // Split.
        let min_fill = self.config.min_for(level);
        let (first_node, second_node) = match node.kind {
            NodeKind::Leaf(entries) => {
                let split = rstar_split(entries, min_fill);
                (
                    Node {
                        level,
                        kind: NodeKind::Leaf(split.first),
                    },
                    Node {
                        level,
                        kind: NodeKind::Leaf(split.second),
                    },
                )
            }
            NodeKind::Dir(entries) => {
                let split = rstar_split(entries, min_fill);
                (
                    Node {
                        level,
                        kind: NodeKind::Dir(split.first),
                    },
                    Node {
                        level,
                        kind: NodeKind::Dir(split.second),
                    },
                )
            }
        };
        let first_mbr = first_node.mbr().expect("non-empty split half");
        let second_mbr = second_node.mbr().expect("non-empty split half");
        self.write_node(node_id, &first_node)?;
        let sibling_id = self.alloc_node(&second_node)?;
        Ok((
            first_mbr,
            Some(DirEntry {
                mbr: second_mbr,
                child: sibling_id,
            }),
        ))
    }

    // ---- deletion --------------------------------------------------------

    /// Removes the object `(id, mbr)`. Returns `true` if it was found.
    ///
    /// Underfull nodes along the deletion path are dissolved and their
    /// entries reinserted (the R-tree CondenseTree step); the root shrinks
    /// when it has a single child.
    pub fn delete(&mut self, id: u64, mbr: &Rect) -> Result<bool> {
        self.next_query += 1;
        let mut orphans: Vec<(AnyEntry, u8)> = Vec::new();
        let root = self.root;
        let found = self.delete_rec(root, id, mbr, &mut orphans)?.is_some();
        if !found {
            debug_assert!(orphans.is_empty());
            return Ok(false);
        }
        self.len -= 1;

        // Reinsert orphaned entries at their original levels.
        let mut reinserted = u64::MAX; // no forced reinsertion during condense
        while let Some((entry, level)) = orphans.pop() {
            let mut pending = Vec::new();
            self.insert_from_root(entry, level, &mut reinserted, &mut pending)?;
            orphans.extend(pending);
        }

        // Shrink the root while it is a directory with a single child.
        loop {
            let node = self.read_node(self.root)?;
            match &node.kind {
                NodeKind::Dir(entries) if entries.len() == 1 => {
                    let old_root = self.root;
                    self.root = entries[0].child;
                    self.height -= 1;
                    self.free_node(old_root)?;
                }
                _ => break,
            }
        }
        Ok(true)
    }

    /// Returns `Some(new_mbr)` if the entry was deleted inside this subtree
    /// (`None` for the MBR when the subtree became empty — only possible at
    /// the root).
    #[allow(clippy::type_complexity)]
    fn delete_rec(
        &mut self,
        node_id: PageId,
        id: u64,
        mbr: &Rect,
        orphans: &mut Vec<(AnyEntry, u8)>,
    ) -> Result<Option<Option<Rect>>> {
        let mut node = self.read_node(node_id)?;
        if let NodeKind::Leaf(entries) = &mut node.kind {
            let Some(pos) = entries
                .iter()
                .position(|e| e.object_id == id && e.mbr == *mbr)
            else {
                return Ok(None);
            };
            entries.remove(pos);
            let new_mbr = node.mbr();
            self.write_node(node_id, &node)?;
            return Ok(Some(new_mbr));
        }

        // Directory node: try every child whose MBR intersects the target.
        let candidates: Vec<(usize, PageId)> = node
            .dir_entries()
            .iter()
            .enumerate()
            .filter(|(_, e)| e.mbr.intersects(mbr))
            .map(|(i, e)| (i, e.child))
            .collect();
        let mut hit: Option<(usize, PageId, Option<Rect>)> = None;
        for (i, child) in candidates {
            if let Some(child_mbr) = self.delete_rec(child, id, mbr, orphans)? {
                hit = Some((i, child, child_mbr));
                break;
            }
        }
        let Some((idx, child, child_mbr)) = hit else {
            return Ok(None);
        };

        let mut node = self.read_node(node_id)?;
        let child_node = self.read_node(child)?;
        if child_node.len() < self.config.min_for(child_node.level) {
            // CondenseTree: dissolve the underfull child, orphan its
            // entries for reinsertion at their original level.
            let level = child_node.level;
            match child_node.kind {
                NodeKind::Leaf(es) => {
                    orphans.extend(es.into_iter().map(|e| (AnyEntry::Leaf(e), level)));
                }
                NodeKind::Dir(es) => {
                    orphans.extend(es.into_iter().map(|e| (AnyEntry::Dir(e), level)));
                }
            }
            self.free_node(child)?;
            node.dir_entries_mut().remove(idx);
        } else {
            node.dir_entries_mut()[idx].mbr = child_mbr.expect("non-underfull child is non-empty");
        }
        let new_mbr = node.mbr();
        self.write_node(node_id, &node)?;
        Ok(Some(new_mbr))
    }

    // ---- introspection ----------------------------------------------------

    /// Traverses the tree and returns structural statistics.
    ///
    /// Reads go through the normal access path (and are therefore counted);
    /// call this outside measurement windows.
    pub fn stats(&mut self) -> Result<TreeStats> {
        self.next_query += 1;
        let mut dir_pages = 0usize;
        let mut data_pages = 0usize;
        let mut objects = 0usize;
        let mut stack = vec![self.root];
        while let Some(id) = stack.pop() {
            let node = self.read_node(id)?;
            match &node.kind {
                NodeKind::Dir(entries) => {
                    dir_pages += 1;
                    stack.extend(entries.iter().map(|e| e.child));
                }
                NodeKind::Leaf(entries) => {
                    data_pages += 1;
                    objects += entries.len();
                }
            }
        }
        Ok(TreeStats {
            directory_pages: dir_pages,
            data_pages,
            height: self.height,
            objects,
        })
    }

    /// Checks every structural invariant of the tree:
    ///
    /// * node levels decrease by exactly one per step, leaves at level 1;
    /// * directory entry MBRs equal their child node's MBR exactly;
    /// * non-root nodes respect the min/max fan-out, the root has ≥ 1 entry
    ///   (≥ 2 if it is a directory);
    /// * the recorded object count matches the leaves;
    /// * page metadata (type, level, spatial statistics) matches content.
    ///
    /// Reads go through the normal access path; call outside measurement
    /// windows (e.g. from tests).
    pub fn validate(&mut self) -> Result<()> {
        self.next_query += 1;
        let corrupt = |id: PageId, reason: String| StorageError::Corrupt { id, reason };
        let root = self.root;
        let root_node = self.read_node(root)?;
        if root_node.level != self.height {
            return Err(corrupt(root, "root level != recorded height".into()));
        }
        if self.height > 1 && root_node.len() < 2 {
            return Err(corrupt(
                root,
                "directory root with fewer than 2 entries".into(),
            ));
        }
        let mut objects = 0usize;
        // (page, expected level, expected exact MBR or None for the root)
        let mut stack: Vec<(PageId, u8, Option<Rect>)> = vec![(root, self.height, None)];
        while let Some((id, level, expected_mbr)) = stack.pop() {
            let node = self.read_node(id)?;
            if node.level != level {
                return Err(corrupt(
                    id,
                    format!("expected level {level}, found {}", node.level),
                ));
            }
            if id != root {
                let min = self.config.min_for(level);
                if node.len() < min {
                    return Err(corrupt(
                        id,
                        format!("underfull node: {} < {min}", node.len()),
                    ));
                }
            }
            if node.len() > self.config.max_for(level) {
                return Err(corrupt(id, "overfull node".into()));
            }
            if let Some(expected) = expected_mbr {
                let actual = node
                    .mbr()
                    .ok_or_else(|| corrupt(id, "non-root node without entries".into()))?;
                if actual != expected {
                    return Err(corrupt(
                        id,
                        "parent entry MBR differs from child MBR".into(),
                    ));
                }
            }
            match &node.kind {
                NodeKind::Dir(entries) => {
                    if level < 2 {
                        return Err(corrupt(id, "directory node below level 2".into()));
                    }
                    for e in entries {
                        stack.push((e.child, level - 1, Some(e.mbr)));
                    }
                }
                NodeKind::Leaf(entries) => {
                    if level != 1 {
                        return Err(corrupt(id, "leaf node not at level 1".into()));
                    }
                    objects += entries.len();
                }
            }
        }
        if objects != self.len {
            return Err(corrupt(
                root,
                format!(
                    "object count mismatch: leaves hold {objects}, tree records {}",
                    self.len
                ),
            ));
        }
        Ok(())
    }

    /// Rewrites the `object_page` pointer of every leaf entry using
    /// `resolver` (typically [`ObjectStore::page_of`]), connecting the
    /// index to the object pages of the paper's storage architecture.
    ///
    /// Entries whose id the resolver does not know keep pointer 0
    /// (= no exact representation stored).
    ///
    /// [`ObjectStore::page_of`]: asb_storage::ObjectStore::page_of
    pub fn assign_object_pages<F>(&mut self, resolver: F) -> Result<()>
    where
        F: Fn(u64) -> Option<PageId>,
    {
        self.next_query += 1;
        let mut stack = vec![self.root];
        while let Some(id) = stack.pop() {
            let mut node = self.read_node(id)?;
            match &mut node.kind {
                NodeKind::Dir(entries) => stack.extend(entries.iter().map(|e| e.child)),
                NodeKind::Leaf(entries) => {
                    for e in entries.iter_mut() {
                        e.object_page = resolver(e.object_id).map_or(0, |p| p.raw());
                    }
                    self.write_node(id, &node)?;
                }
            }
        }
        Ok(())
    }

    /// Executes a query and additionally reads the object page of every
    /// matching entry through the buffer — the full access path of the
    /// paper's storage architecture (directory pages → data pages → object
    /// pages), which is what makes the *type-based* LRU meaningful.
    ///
    /// Each distinct object page is read at most once per query. Returns
    /// the matching object ids.
    pub fn execute_fetching_objects(&mut self, query: &Query) -> Result<Vec<u64>> {
        self.next_query += 1;
        let region = query.region();
        let mut results = Vec::new();
        let mut object_pages: Vec<u64> = Vec::new();
        let mut stack = vec![self.root];
        while let Some(id) = stack.pop() {
            let node = self.read_node(id)?;
            match &node.kind {
                NodeKind::Dir(entries) => {
                    for e in entries {
                        if e.mbr.intersects(&region) {
                            stack.push(e.child);
                        }
                    }
                }
                NodeKind::Leaf(entries) => {
                    for e in entries {
                        if query.matches(&e.mbr) {
                            results.push(e.object_id);
                            if e.object_page != 0 {
                                object_pages.push(e.object_page);
                            }
                        }
                    }
                }
            }
        }
        object_pages.sort_unstable();
        object_pages.dedup();
        let ctx = self.ctx();
        for raw in object_pages {
            let page_id = PageId::new(raw);
            match &mut self.buffer {
                Some(buf) => drop(buf.fetch(&mut self.store, page_id, ctx)?),
                None => drop(self.store.read(page_id, ctx)?),
            };
        }
        Ok(results)
    }

    /// All indexed items, by full scan (test helper; counts accesses).
    pub fn scan_all(&mut self) -> Result<Vec<RTreeItem>> {
        self.next_query += 1;
        let mut out = Vec::with_capacity(self.len);
        let mut stack = vec![self.root];
        while let Some(id) = stack.pop() {
            let node = self.read_node(id)?;
            match &node.kind {
                NodeKind::Dir(entries) => stack.extend(entries.iter().map(|e| e.child)),
                NodeKind::Leaf(entries) => out.extend(entries.iter().map(|e| RTreeItem {
                    mbr: e.mbr,
                    id: e.object_id,
                })),
            }
        }
        Ok(out)
    }

    /// The root page id (used by the spatial join).
    pub(crate) fn root_id(&self) -> PageId {
        self.root
    }

    /// Reads a node for the spatial join (advances no query id).
    pub(crate) fn read_node_for_join(&mut self, id: PageId) -> Result<Node> {
        self.read_node(id)
    }

    /// Starts a new query scope (used by multi-tree operations).
    pub(crate) fn begin_query(&mut self) {
        self.next_query += 1;
    }
}

/// Splits `len` elements into chunks of roughly `target` elements while
/// keeping every chunk within `[min, max]` where arithmetically possible
/// (a single chunk below `min` remains only when `len < min`, which is the
/// root-only case).
fn even_chunk_sizes(len: usize, target: usize, min: usize, max: usize) -> Vec<usize> {
    debug_assert!(len > 0 && min <= target && target <= max);
    let mut k = len.div_ceil(target);
    if len >= min {
        k = k.min(len / min); // floor(len/k) >= min
    }
    k = k.max(len.div_ceil(max)).max(1); // ceil(len/k) <= max
    let base = len / k;
    let extra = len % k;
    (0..k).map(|i| base + usize::from(i < extra)).collect()
}

/// Sort-tile-recursive partitioning: returns chunks of ~`fill` entries
/// (never fewer than `min`, never more than `max`), tiled by x then y.
fn str_tiles<E: HasMbr>(mut entries: Vec<E>, fill: usize, min: usize, max: usize) -> Vec<Vec<E>> {
    let n = entries.len();
    if n <= fill {
        return vec![entries];
    }
    let node_count = n.div_ceil(fill);
    let slice_count = (node_count as f64).sqrt().ceil() as usize;
    let slice_size = slice_count * fill;
    entries.sort_by(|a, b| {
        let (ca, cb) = (a.mbr().center(), b.mbr().center());
        ca.x.partial_cmp(&cb.x).expect("finite coordinates")
    });
    let mut tiles = Vec::with_capacity(node_count);
    let mut rest = entries;
    // Distribute entries evenly over the vertical slices, then evenly over
    // the tiles within each slice, so no tile ends up underfull.
    for slice_len in even_chunk_sizes(n, slice_size, min, usize::MAX / 2) {
        let mut slice: Vec<E> = rest.drain(..slice_len).collect();
        slice.sort_by(|a, b| {
            let (ca, cb) = (a.mbr().center(), b.mbr().center());
            ca.y.partial_cmp(&cb.y).expect("finite coordinates")
        });
        for tile_len in even_chunk_sizes(slice.len(), fill, min, max) {
            tiles.push(slice.drain(..tile_len).collect());
        }
    }
    debug_assert!(rest.is_empty());
    tiles
}

#[cfg(test)]
mod tests {
    use super::*;
    use asb_core::PolicyKind;

    fn item(id: u64, x: f64, y: f64) -> RTreeItem {
        RTreeItem::new(id, Rect::new(x, y, x + 1.0, y + 1.0))
    }

    /// A deterministic scatter of n items.
    fn scatter(n: u64) -> Vec<RTreeItem> {
        let mut state = 0x853C_49E6_748F_EA9Bu64;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        (0..n)
            .map(|i| item(i, rng() * 1000.0, rng() * 1000.0))
            .collect()
    }

    fn tiny_tree(items: &[RTreeItem]) -> RTree<DiskManager> {
        let mut tree = RTree::with_config(DiskManager::new(), RTreeConfig::small()).unwrap();
        for &it in items {
            tree.insert(it).unwrap();
        }
        tree
    }

    #[test]
    fn empty_tree_answers_nothing() {
        let mut tree = RTree::new(DiskManager::new()).unwrap();
        assert!(tree.is_empty());
        assert_eq!(
            tree.window_query(Rect::new(0.0, 0.0, 10.0, 10.0)).unwrap(),
            vec![]
        );
        assert_eq!(tree.point_query(Point::new(1.0, 1.0)).unwrap(), vec![]);
        tree.validate().unwrap();
    }

    #[test]
    fn insert_then_query_finds_objects() {
        let mut tree = tiny_tree(&[item(1, 0.0, 0.0), item(2, 10.0, 10.0), item(3, 0.5, 0.5)]);
        let mut hits = tree.window_query(Rect::new(0.0, 0.0, 2.0, 2.0)).unwrap();
        hits.sort_unstable();
        assert_eq!(hits, vec![1, 3]);
        assert_eq!(tree.point_query(Point::new(10.5, 10.5)).unwrap(), vec![2]);
        tree.validate().unwrap();
    }

    #[test]
    fn insertion_splits_grow_the_tree() {
        let items = scatter(200);
        let mut tree = tiny_tree(&items);
        assert!(tree.height() >= 2, "200 items with fan-out 8 must split");
        assert_eq!(tree.len(), 200);
        tree.validate().unwrap();
        // Every item is findable.
        for it in &items {
            let hits = tree.window_query(it.mbr).unwrap();
            assert!(hits.contains(&it.id), "object {} lost", it.id);
        }
    }

    #[test]
    fn insertion_matches_brute_force_on_window_queries() {
        let items = scatter(300);
        let mut tree = tiny_tree(&items);
        let windows = [
            Rect::new(0.0, 0.0, 100.0, 100.0),
            Rect::new(500.0, 500.0, 600.0, 800.0),
            Rect::new(-10.0, -10.0, -1.0, -1.0),
            Rect::new(0.0, 0.0, 1000.0, 1000.0),
        ];
        for w in windows {
            let mut got = tree.window_query(w).unwrap();
            got.sort_unstable();
            let mut want: Vec<u64> = items
                .iter()
                .filter(|it| it.mbr.intersects(&w))
                .map(|it| it.id)
                .collect();
            want.sort_unstable();
            assert_eq!(got, want, "window {w:?}");
        }
    }

    #[test]
    fn bulk_load_matches_brute_force() {
        let items = scatter(500);
        let mut tree =
            RTree::bulk_load_with(DiskManager::new(), RTreeConfig::small(), &items).unwrap();
        tree.validate().unwrap();
        let w = Rect::new(100.0, 100.0, 400.0, 300.0);
        let mut got = tree.window_query(w).unwrap();
        got.sort_unstable();
        let mut want: Vec<u64> = items
            .iter()
            .filter(|it| it.mbr.intersects(&w))
            .map(|it| it.id)
            .collect();
        want.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    fn bulk_load_fill_factor_is_respected() {
        let items = scatter(2000);
        let mut tree = RTree::bulk_load(DiskManager::new(), &items).unwrap();
        let stats = tree.stats().unwrap();
        assert_eq!(stats.objects, 2000);
        // ~2000 / 29 ≈ 69 leaves.
        assert!(
            stats.data_pages >= 65 && stats.data_pages <= 75,
            "{stats:?}"
        );
        tree.validate().unwrap();
    }

    #[test]
    fn bulk_load_of_empty_and_single() {
        let mut tree = RTree::bulk_load(DiskManager::new(), &[]).unwrap();
        assert!(tree.is_empty());
        tree.validate().unwrap();
        let mut tree = RTree::bulk_load(DiskManager::new(), &[item(7, 1.0, 1.0)]).unwrap();
        assert_eq!(tree.len(), 1);
        assert_eq!(tree.point_query(Point::new(1.5, 1.5)).unwrap(), vec![7]);
        tree.validate().unwrap();
    }

    #[test]
    fn delete_removes_and_condenses() {
        let items = scatter(150);
        let mut tree = tiny_tree(&items);
        for it in items.iter().take(120) {
            assert!(
                tree.delete(it.id, &it.mbr).unwrap(),
                "object {} not found",
                it.id
            );
            tree.validate().unwrap();
        }
        assert_eq!(tree.len(), 30);
        for it in items.iter().skip(120) {
            assert!(tree.window_query(it.mbr).unwrap().contains(&it.id));
        }
        for it in items.iter().take(120) {
            assert!(!tree.window_query(it.mbr).unwrap().contains(&it.id));
        }
    }

    #[test]
    fn delete_missing_returns_false() {
        let mut tree = tiny_tree(&[item(1, 0.0, 0.0)]);
        assert!(!tree.delete(99, &Rect::new(0.0, 0.0, 1.0, 1.0)).unwrap());
        assert!(!tree.delete(1, &Rect::new(5.0, 5.0, 6.0, 6.0)).unwrap());
        assert_eq!(tree.len(), 1);
    }

    #[test]
    fn delete_everything_leaves_empty_tree() {
        let items = scatter(60);
        let mut tree = tiny_tree(&items);
        for it in &items {
            assert!(tree.delete(it.id, &it.mbr).unwrap());
        }
        assert!(tree.is_empty());
        assert_eq!(tree.height(), 1);
        tree.validate().unwrap();
        assert_eq!(
            tree.window_query(Rect::new(0.0, 0.0, 1e4, 1e4)).unwrap(),
            vec![]
        );
    }

    #[test]
    fn nearest_neighbors_are_correct() {
        let items = scatter(200);
        let mut tree = tiny_tree(&items);
        let p = Point::new(500.0, 500.0);
        let got = tree.nearest_neighbors(p, 5).unwrap();
        assert_eq!(got.len(), 5);
        // Distances are non-decreasing.
        for w in got.windows(2) {
            assert!(w[0].1 <= w[1].1);
        }
        // Compare against brute force.
        let mut want: Vec<(u64, f64)> = items
            .iter()
            .map(|it| (it.id, it.mbr.min_dist(&p)))
            .collect();
        want.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
        let got_dists: Vec<f64> = got.iter().map(|g| g.1).collect();
        let want_dists: Vec<f64> = want.iter().take(5).map(|g| g.1).collect();
        assert_eq!(got_dists, want_dists);
    }

    #[test]
    fn buffered_tree_gives_identical_answers() {
        let items = scatter(400);
        let mut plain =
            RTree::bulk_load_with(DiskManager::new(), RTreeConfig::small(), &items).unwrap();
        let mut buffered =
            RTree::bulk_load_with(DiskManager::new(), RTreeConfig::small(), &items).unwrap();
        buffered.set_buffer(BufferManager::with_policy(PolicyKind::Asb, 16));
        for i in 0..50u64 {
            let x = (i as f64 * 17.0) % 900.0;
            let w = Rect::new(x, x / 2.0, x + 60.0, x / 2.0 + 60.0);
            let mut a = plain.window_query(w).unwrap();
            let mut b = buffered.window_query(w).unwrap();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b);
        }
        let stats = buffered.buffer_stats().unwrap();
        assert!(stats.hits > 0, "repeated root accesses must hit");
    }

    #[test]
    fn buffer_reduces_disk_reads() {
        let items = scatter(400);
        let mut tree =
            RTree::bulk_load_with(DiskManager::new(), RTreeConfig::small(), &items).unwrap();
        tree.store_mut().reset_stats();
        let queries: Vec<Rect> = (0..40)
            .map(|i| {
                let x = (i as f64 * 23.0) % 800.0;
                Rect::new(x, x, x + 50.0, x + 50.0)
            })
            .collect();
        for &w in &queries {
            tree.window_query(w).unwrap();
        }
        let unbuffered = tree.store().stats().reads;
        tree.store_mut().reset_stats();
        tree.set_buffer(BufferManager::with_policy(
            PolicyKind::Lru,
            tree.page_count() / 2 + 1,
        ));
        for &w in &queries {
            tree.window_query(w).unwrap();
        }
        let buffered = tree.store().stats().reads;
        assert!(
            buffered < unbuffered,
            "buffered {buffered} should be below unbuffered {unbuffered}"
        );
    }

    #[test]
    fn stats_report_paper_like_shape() {
        let items = scatter(3000);
        let mut tree = RTree::bulk_load(DiskManager::new(), &items).unwrap();
        let stats = tree.stats().unwrap();
        assert_eq!(stats.total_pages(), tree.page_count());
        // Directory pages are a small fraction (paper: ~2.9%).
        assert!(stats.directory_fraction() < 0.10, "{stats:?}");
    }

    #[test]
    fn mixed_insert_delete_stays_valid() {
        let items = scatter(250);
        let mut tree = tiny_tree(&items[..200]);
        for i in 0..50 {
            tree.insert(items[200 + i]).unwrap();
            let victim = &items[i * 3];
            assert!(tree.delete(victim.id, &victim.mbr).unwrap());
        }
        tree.validate().unwrap();
        assert_eq!(tree.len(), 200);
    }

    #[test]
    fn object_pages_are_fetched_through_the_buffer() {
        use asb_storage::{ObjectRecord, ObjectStore};
        use bytes::Bytes;
        let items = scatter(300);
        let mut disk = DiskManager::new();
        let records: Vec<ObjectRecord> = items
            .iter()
            .map(|it| ObjectRecord {
                id: it.id,
                mbr: it.mbr,
                payload: Bytes::from(vec![1u8; 80]),
            })
            .collect();
        let objects = ObjectStore::build(&mut disk, &records).unwrap();
        let mut tree = RTree::bulk_load_with(disk, RTreeConfig::small(), &items).unwrap();
        tree.assign_object_pages(|id| objects.page_of(id)).unwrap();

        let w = Rect::new(100.0, 100.0, 400.0, 400.0);
        tree.store_mut().reset_stats();
        let without = {
            let r = tree.window_query(w).unwrap();
            (r.len(), tree.store().stats().reads)
        };
        tree.store_mut().reset_stats();
        let with = {
            let r = tree.execute_fetching_objects(&Query::Window(w)).unwrap();
            (r.len(), tree.store().stats().reads)
        };
        assert_eq!(with.0, without.0, "object fetching must not change answers");
        assert!(with.1 > without.1, "object pages must cost extra reads");
        tree.validate().unwrap();
    }

    #[test]
    fn unassigned_object_pages_cost_nothing() {
        let items = scatter(100);
        let mut tree =
            RTree::bulk_load_with(DiskManager::new(), RTreeConfig::small(), &items).unwrap();
        let w = Rect::new(0.0, 0.0, 500.0, 500.0);
        tree.store_mut().reset_stats();
        let a = tree.window_query(w).unwrap();
        let plain_reads = tree.store().stats().reads;
        tree.store_mut().reset_stats();
        let b = tree.execute_fetching_objects(&Query::Window(w)).unwrap();
        assert_eq!(a.len(), b.len());
        assert_eq!(tree.store().stats().reads, plain_reads);
    }

    #[test]
    fn snapshot_attach_roundtrip_preserves_answers() {
        let items = scatter(300);
        let mut tree =
            RTree::bulk_load_with(DiskManager::new(), RTreeConfig::small(), &items).unwrap();
        let w = Rect::new(100.0, 100.0, 400.0, 400.0);
        let mut want = tree.window_query(w).unwrap();
        want.sort_unstable();

        let snap = tree.snapshot();
        let store = tree.into_store();
        let mut view = RTree::attach(store, snap);
        view.seed_query_counter(1 << 32);
        let mut got = view.window_query(w).unwrap();
        got.sort_unstable();
        assert_eq!(got, want);
        assert_eq!(view.len(), 300);
        view.validate().unwrap();
    }

    #[test]
    fn concurrent_views_on_a_sharded_pool_answer_identically() {
        use asb_core::ShardedBuffer;
        let items = scatter(500);
        let tree = RTree::bulk_load_with(DiskManager::new(), RTreeConfig::small(), &items).unwrap();
        let snap = tree.snapshot();
        let pool = ShardedBuffer::new(tree.into_store(), PolicyKind::Asb, 32, 4);

        let windows: Vec<Rect> = (0..24)
            .map(|i| {
                let x = (i as f64 * 37.0) % 900.0;
                Rect::new(x, x / 3.0, x + 80.0, x / 3.0 + 80.0)
            })
            .collect();
        let mut expected: Vec<Vec<u64>> = windows
            .iter()
            .map(|w| {
                let mut ids: Vec<u64> = items
                    .iter()
                    .filter(|it| it.mbr.intersects(w))
                    .map(|it| it.id)
                    .collect();
                ids.sort_unstable();
                ids
            })
            .collect();
        expected.sort();

        std::thread::scope(|s| {
            for t in 0..3u64 {
                let pool = pool.clone();
                let windows = windows.clone();
                let expected = expected.clone();
                s.spawn(move || {
                    let mut view = RTree::attach(pool, snap);
                    view.seed_query_counter(t << 32);
                    let mut got: Vec<Vec<u64>> = windows
                        .iter()
                        .map(|&w| {
                            let mut ids = view.window_query(w).unwrap();
                            ids.sort_unstable();
                            ids
                        })
                        .collect();
                    got.sort();
                    assert_eq!(got, expected);
                });
            }
        });
        let stats = pool.stats();
        assert_eq!(stats.hits + stats.misses, stats.logical_reads);
        assert!(stats.hits > 0, "shared pool must produce hits across views");
    }

    #[test]
    fn str_tiles_have_bounded_size() {
        let items = scatter(1000);
        let tiles = str_tiles(items, 29, 16, 42);
        assert!(tiles.iter().all(|t| t.len() <= 29 && !t.is_empty()));
        let total: usize = tiles.iter().map(|t| t.len()).sum();
        assert_eq!(total, 1000);
    }
}
