//! The R\*-tree heuristics: ChooseSubtree scoring, the margin-driven split,
//! and the forced-reinsertion ordering (Beckmann et al., SIGMOD 1990).

use crate::node::DirEntry;
use asb_geom::{mbr_of, HasMbr, Rect};

/// Outcome of splitting an overfull entry list into two groups.
#[derive(Debug)]
pub(crate) struct SplitResult<E> {
    pub first: Vec<E>,
    pub second: Vec<E>,
}

/// R\* split: choose the split axis by the minimum sum of margins over all
/// candidate distributions, then the distribution with minimal overlap
/// between the two groups (ties: minimal total area).
///
/// `min_fill` is the R\*-tree's `m`; candidate distributions put
/// `k ∈ [m, len − m]` entries into the first group, taken from the entry
/// list sorted by lower and by upper MBR boundary along the axis.
pub(crate) fn rstar_split<E: HasMbr + Clone>(entries: Vec<E>, min_fill: usize) -> SplitResult<E> {
    let len = entries.len();
    debug_assert!(len >= 2 * min_fill, "split requires at least 2m entries");

    // For each axis, evaluate both sort orders and accumulate the margin sum.
    let mut best_axis: Option<(f64, Vec<E>)> = None; // (margin_sum, sorted entries)
    for axis in 0..2usize {
        for by_upper in [false, true] {
            let mut sorted = entries.clone();
            sort_along(&mut sorted, axis, by_upper);
            let margin_sum: f64 = distributions(len, min_fill)
                .map(|k| {
                    let (a, b) = group_bbs(&sorted, k);
                    a.margin() + b.margin()
                })
                .sum();
            match &best_axis {
                Some((best, _)) if *best <= margin_sum => {}
                _ => best_axis = Some((margin_sum, sorted)),
            }
        }
    }
    let (_, sorted) = best_axis.expect("at least one axis evaluated");

    // Along the chosen ordering, pick the distribution minimizing overlap,
    // ties broken by total area.
    let mut best: Option<(usize, f64, f64)> = None; // (k, overlap, area)
    for k in distributions(len, min_fill) {
        let (a, b) = group_bbs(&sorted, k);
        let overlap = a.overlap_area(&b);
        let area = a.area() + b.area();
        let better = match best {
            None => true,
            Some((_, bo, ba)) => overlap < bo || (overlap == bo && area < ba),
        };
        if better {
            best = Some((k, overlap, area));
        }
    }
    let (k, _, _) = best.expect("at least one distribution evaluated");
    let mut first = sorted;
    let second = first.split_off(k);
    SplitResult { first, second }
}

fn distributions(len: usize, min_fill: usize) -> impl Iterator<Item = usize> {
    min_fill..=(len - min_fill)
}

fn group_bbs<E: HasMbr>(sorted: &[E], k: usize) -> (Rect, Rect) {
    let a = mbr_of(sorted[..k].iter().map(|e| e.mbr())).expect("non-empty group");
    let b = mbr_of(sorted[k..].iter().map(|e| e.mbr())).expect("non-empty group");
    (a, b)
}

fn sort_along<E: HasMbr>(entries: &mut [E], axis: usize, by_upper: bool) {
    entries.sort_by(|l, r| {
        let (lm, rm) = (l.mbr(), r.mbr());
        let key = |m: &Rect| -> (f64, f64) {
            let (lo, hi) = if axis == 0 {
                (m.min.x, m.max.x)
            } else {
                (m.min.y, m.max.y)
            };
            if by_upper {
                (hi, lo)
            } else {
                (lo, hi)
            }
        };
        key(&lm).partial_cmp(&key(&rm)).expect("finite coordinates")
    });
}

/// ChooseSubtree for directory nodes whose children are leaves: pick the
/// entry whose MBR needs the least **overlap enlargement** to include
/// `rect`; ties by least area enlargement, then least area.
pub(crate) fn choose_least_overlap(entries: &[DirEntry], rect: &Rect) -> usize {
    let mut best = 0usize;
    let mut best_key = (f64::INFINITY, f64::INFINITY, f64::INFINITY);
    for (i, e) in entries.iter().enumerate() {
        let enlarged = e.mbr.union(rect);
        let mut overlap_delta = 0.0;
        for (j, f) in entries.iter().enumerate() {
            if i == j {
                continue;
            }
            overlap_delta += enlarged.overlap_area(&f.mbr) - e.mbr.overlap_area(&f.mbr);
        }
        let key = (overlap_delta, e.mbr.enlargement(rect), e.mbr.area());
        if key < best_key {
            best_key = key;
            best = i;
        }
    }
    best
}

/// ChooseSubtree for higher directory levels: least **area enlargement**,
/// ties by least area.
pub(crate) fn choose_least_enlargement(entries: &[DirEntry], rect: &Rect) -> usize {
    let mut best = 0usize;
    let mut best_key = (f64::INFINITY, f64::INFINITY);
    for (i, e) in entries.iter().enumerate() {
        let key = (e.mbr.enlargement(rect), e.mbr.area());
        if key < best_key {
            best_key = key;
            best = i;
        }
    }
    best
}

/// Forced reinsertion: removes the `count` entries whose centers lie
/// farthest from the node MBR's center and returns them ordered **closest
/// first** (the R\* paper's "close reinsert").
pub(crate) fn take_reinsert_victims<E: HasMbr>(entries: &mut Vec<E>, count: usize) -> Vec<E> {
    debug_assert!(count < entries.len());
    let center = mbr_of(entries.iter().map(|e| e.mbr()))
        .expect("non-empty node")
        .center();
    // Sort ascending by distance; the tail holds the far entries.
    entries.sort_by(|a, b| {
        let da = a.mbr().center().distance_sq(&center);
        let db = b.mbr().center().distance_sq(&center);
        da.partial_cmp(&db).expect("finite coordinates")
    });
    // split_off keeps ascending order: victims come back closest-first.
    entries.split_off(entries.len() - count)
}

#[cfg(test)]
mod tests {
    use super::*;
    use asb_geom::Point;
    use asb_storage::PageId;

    #[derive(Clone, Debug)]
    struct Tagged(Rect, #[allow(dead_code)] u64);

    impl HasMbr for Tagged {
        fn mbr(&self) -> Rect {
            self.0
        }
    }

    fn unit(x: f64, y: f64) -> Tagged {
        Tagged(Rect::new(x, y, x + 1.0, y + 1.0), (x * 100.0 + y) as u64)
    }

    #[test]
    fn split_separates_two_clusters() {
        // Two clearly separated clusters of 4 along x.
        let mut entries = Vec::new();
        for i in 0..4 {
            entries.push(unit(i as f64 * 0.1, 0.0));
            entries.push(unit(100.0 + i as f64 * 0.1, 0.0));
        }
        let result = rstar_split(entries, 2);
        let (a, b) = (
            mbr_of(result.first.iter().map(|e| e.mbr())).unwrap(),
            mbr_of(result.second.iter().map(|e| e.mbr())).unwrap(),
        );
        assert_eq!(a.overlap_area(&b), 0.0, "clusters must not be mixed");
        assert_eq!(result.first.len(), 4);
        assert_eq!(result.second.len(), 4);
    }

    #[test]
    fn split_respects_min_fill() {
        let entries: Vec<_> = (0..9).map(|i| unit(i as f64 * 3.0, 0.0)).collect();
        let m = 3;
        let result = rstar_split(entries, m);
        assert!(result.first.len() >= m && result.second.len() >= m);
        assert_eq!(result.first.len() + result.second.len(), 9);
    }

    #[test]
    fn split_picks_the_discriminating_axis() {
        // Entries spread along y, overlapping in x: a good split uses y.
        let entries: Vec<_> = (0..8).map(|i| unit(0.0, i as f64 * 5.0)).collect();
        let result = rstar_split(entries, 2);
        let (a, b) = (
            mbr_of(result.first.iter().map(|e| e.mbr())).unwrap(),
            mbr_of(result.second.iter().map(|e| e.mbr())).unwrap(),
        );
        assert_eq!(a.overlap_area(&b), 0.0);
        // Groups are separated in y, not x.
        assert!(a.max.y <= b.min.y || b.max.y <= a.min.y);
    }

    fn dir(r: Rect, id: u64) -> DirEntry {
        DirEntry {
            mbr: r,
            child: PageId::new(id),
        }
    }

    #[test]
    fn least_enlargement_prefers_containing_entry() {
        let entries = vec![
            dir(Rect::new(0.0, 0.0, 10.0, 10.0), 1),
            dir(Rect::new(20.0, 20.0, 21.0, 21.0), 2),
        ];
        let target = Rect::new(1.0, 1.0, 2.0, 2.0);
        assert_eq!(choose_least_enlargement(&entries, &target), 0);
    }

    #[test]
    fn least_enlargement_breaks_ties_by_area() {
        // Both contain the rect (zero enlargement); the smaller wins.
        let entries = vec![
            dir(Rect::new(0.0, 0.0, 100.0, 100.0), 1),
            dir(Rect::new(0.0, 0.0, 10.0, 10.0), 2),
        ];
        let target = Rect::new(1.0, 1.0, 2.0, 2.0);
        assert_eq!(choose_least_enlargement(&entries, &target), 1);
    }

    #[test]
    fn least_overlap_avoids_creating_overlap() {
        // Entry 0 could include the rect with little area growth but would
        // start overlapping entry 1; entry 2 is free-standing.
        let entries = vec![
            dir(Rect::new(0.0, 0.0, 4.0, 4.0), 1),
            dir(Rect::new(4.5, 0.0, 8.0, 4.0), 2),
            dir(Rect::new(0.0, 10.0, 5.0, 14.0), 3),
        ];
        let target = Rect::new(4.4, 11.0, 5.4, 12.0);
        // Including into 0 or 1 would grow them toward each other; entry 2
        // absorbs the rect with zero overlap delta.
        assert_eq!(choose_least_overlap(&entries, &target), 2);
    }

    #[test]
    fn reinsert_victims_are_the_farthest() {
        let mut entries = vec![
            unit(0.0, 0.0),
            unit(1.0, 0.0),
            unit(0.0, 1.0),
            unit(1.0, 1.0),
            unit(100.0, 100.0), // outlier
        ];
        let victims = take_reinsert_victims(&mut entries, 1);
        assert_eq!(victims.len(), 1);
        assert_eq!(victims[0].mbr().min, Point::new(100.0, 100.0));
        assert_eq!(entries.len(), 4);
    }

    #[test]
    fn reinsert_victims_come_back_closest_first() {
        let mut entries = vec![
            unit(0.0, 0.0),
            unit(0.2, 0.0),
            unit(10.0, 0.0),
            unit(50.0, 0.0),
        ];
        let victims = take_reinsert_victims(&mut entries, 2);
        let d0 = victims[0].mbr().center().x;
        let d1 = victims[1].mbr().center().x;
        assert!(d0 < d1, "closest victim must be reinserted first");
    }
}
