//! In-memory node representation and the on-page codec.

use crate::config::{DIR_ENTRY_SIZE, LEAF_ENTRY_SIZE};
use asb_geom::{mbr_of, Rect, SpatialStats};
use asb_storage::{Page, PageId, PageMeta, PageType, StorageError, PAGE_HEADER_SIZE};
use bytes::{Buf, BufMut, Bytes, BytesMut};

/// An entry of a directory (inner) node: the MBR of a child node plus its
/// page id.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DirEntry {
    /// MBR covering everything below `child`.
    pub mbr: Rect,
    /// The child node's page.
    pub child: PageId,
}

/// An entry of a data (leaf) node: the MBR of one spatial object.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LeafEntry {
    /// The object's MBR.
    pub mbr: Rect,
    /// Application-level object identifier.
    pub object_id: u64,
    /// Page id of the object page holding the exact representation
    /// (0 when objects are not materialized, as in the paper's tree-only
    /// measurements).
    pub object_page: u64,
}

/// The level-dependent entry list of a node.
#[derive(Debug, Clone, PartialEq)]
pub enum NodeKind {
    /// A leaf (data page) with object entries.
    Leaf(Vec<LeafEntry>),
    /// An inner node (directory page) with child entries.
    Dir(Vec<DirEntry>),
}

/// An R\*-tree node decoded from (or about to be encoded to) one page.
#[derive(Debug, Clone, PartialEq)]
pub struct Node {
    /// Level in the tree: 1 for leaves, parents of leaves 2, and so on.
    pub level: u8,
    /// The node's entries.
    pub kind: NodeKind,
}

impl Node {
    /// Creates an empty leaf.
    pub fn new_leaf() -> Self {
        Node {
            level: 1,
            kind: NodeKind::Leaf(Vec::new()),
        }
    }

    /// Creates an empty directory node at `level >= 2`.
    pub fn new_dir(level: u8) -> Self {
        debug_assert!(level >= 2);
        Node {
            level,
            kind: NodeKind::Dir(Vec::new()),
        }
    }

    /// Whether this node is a leaf.
    pub fn is_leaf(&self) -> bool {
        matches!(self.kind, NodeKind::Leaf(_))
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        match &self.kind {
            NodeKind::Leaf(v) => v.len(),
            NodeKind::Dir(v) => v.len(),
        }
    }

    /// Whether the node has no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The MBRs of all entries.
    pub fn entry_mbrs(&self) -> Vec<Rect> {
        match &self.kind {
            NodeKind::Leaf(v) => v.iter().map(|e| e.mbr).collect(),
            NodeKind::Dir(v) => v.iter().map(|e| e.mbr).collect(),
        }
    }

    /// The node's MBR (`None` when empty).
    pub fn mbr(&self) -> Option<Rect> {
        match &self.kind {
            NodeKind::Leaf(v) => mbr_of(v.iter().map(|e| e.mbr)),
            NodeKind::Dir(v) => mbr_of(v.iter().map(|e| e.mbr)),
        }
    }

    /// Directory entries; panics on a leaf (internal invariant violations
    /// only — levels are checked on decode).
    pub fn dir_entries(&self) -> &[DirEntry] {
        match &self.kind {
            NodeKind::Dir(v) => v,
            NodeKind::Leaf(_) => panic!("dir_entries() on a leaf node"),
        }
    }

    /// Mutable directory entries; panics on a leaf.
    pub fn dir_entries_mut(&mut self) -> &mut Vec<DirEntry> {
        match &mut self.kind {
            NodeKind::Dir(v) => v,
            NodeKind::Leaf(_) => panic!("dir_entries_mut() on a leaf node"),
        }
    }

    /// Leaf entries; panics on a directory node.
    pub fn leaf_entries(&self) -> &[LeafEntry] {
        match &self.kind {
            NodeKind::Leaf(v) => v,
            NodeKind::Dir(_) => panic!("leaf_entries() on a directory node"),
        }
    }

    /// Mutable leaf entries; panics on a directory node.
    pub fn leaf_entries_mut(&mut self) -> &mut Vec<LeafEntry> {
        match &mut self.kind {
            NodeKind::Leaf(v) => v,
            NodeKind::Dir(_) => panic!("leaf_entries_mut() on a directory node"),
        }
    }

    /// Page metadata for this node: type and level for LRU-T / LRU-P, plus
    /// the spatial statistics the spatial policies evaluate.
    pub fn page_meta(&self) -> PageMeta {
        let stats = SpatialStats::from_rects(&self.entry_mbrs());
        match self.kind {
            NodeKind::Leaf(_) => PageMeta::data(stats),
            NodeKind::Dir(_) => PageMeta::directory(self.level, stats),
        }
    }

    /// Serializes the node into a page payload.
    ///
    /// Layout: `[type_tag u8][level u8][count u16 LE][reserved u32]` header,
    /// then fixed-size entries (40 bytes per directory entry, 48 per leaf
    /// entry — the paper's fan-outs on a 2 KiB page).
    pub fn encode(&self) -> Bytes {
        let count = self.len();
        let entry_size = if self.is_leaf() {
            LEAF_ENTRY_SIZE
        } else {
            DIR_ENTRY_SIZE
        };
        let mut buf = BytesMut::with_capacity(PAGE_HEADER_SIZE + count * entry_size);
        let tag = if self.is_leaf() {
            PageType::Data
        } else {
            PageType::Directory
        };
        buf.put_u8(tag.tag());
        buf.put_u8(self.level);
        buf.put_u16_le(count as u16);
        buf.put_u32_le(0); // reserved
        match &self.kind {
            NodeKind::Leaf(entries) => {
                for e in entries {
                    put_rect(&mut buf, &e.mbr);
                    buf.put_u64_le(e.object_id);
                    buf.put_u64_le(e.object_page);
                }
            }
            NodeKind::Dir(entries) => {
                for e in entries {
                    put_rect(&mut buf, &e.mbr);
                    buf.put_u64_le(e.child.raw());
                }
            }
        }
        buf.freeze()
    }

    /// Decodes a node from a page.
    pub fn decode(page: &Page) -> Result<Node, StorageError> {
        let corrupt = |reason: &str| StorageError::Corrupt {
            id: page.id,
            reason: reason.to_string(),
        };
        let mut buf = page.payload.clone();
        if buf.remaining() < PAGE_HEADER_SIZE {
            return Err(corrupt("payload shorter than the header"));
        }
        let tag = buf.get_u8();
        let level = buf.get_u8();
        let count = buf.get_u16_le() as usize;
        let _reserved = buf.get_u32_le();
        match PageType::from_tag(tag) {
            Some(PageType::Data) => {
                if level != 1 {
                    return Err(corrupt("data page with level != 1"));
                }
                if buf.remaining() < count * LEAF_ENTRY_SIZE {
                    return Err(corrupt("truncated leaf entries"));
                }
                let mut entries = Vec::with_capacity(count);
                for _ in 0..count {
                    let mbr = get_rect(&mut buf);
                    let object_id = buf.get_u64_le();
                    let object_page = buf.get_u64_le();
                    entries.push(LeafEntry {
                        mbr,
                        object_id,
                        object_page,
                    });
                }
                Ok(Node {
                    level: 1,
                    kind: NodeKind::Leaf(entries),
                })
            }
            Some(PageType::Directory) => {
                if level < 2 {
                    return Err(corrupt("directory page with level < 2"));
                }
                if buf.remaining() < count * DIR_ENTRY_SIZE {
                    return Err(corrupt("truncated directory entries"));
                }
                let mut entries = Vec::with_capacity(count);
                for _ in 0..count {
                    let mbr = get_rect(&mut buf);
                    let child = PageId::new(buf.get_u64_le());
                    entries.push(DirEntry { mbr, child });
                }
                Ok(Node {
                    level,
                    kind: NodeKind::Dir(entries),
                })
            }
            _ => Err(corrupt("not an index page")),
        }
    }
}

fn put_rect(buf: &mut BytesMut, r: &Rect) {
    buf.put_f64_le(r.min.x);
    buf.put_f64_le(r.min.y);
    buf.put_f64_le(r.max.x);
    buf.put_f64_le(r.max.y);
}

fn get_rect(buf: &mut Bytes) -> Rect {
    let x0 = buf.get_f64_le();
    let y0 = buf.get_f64_le();
    let x1 = buf.get_f64_le();
    let y1 = buf.get_f64_le();
    Rect {
        min: asb_geom::Point::new(x0, y0),
        max: asb_geom::Point::new(x1, y1),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asb_storage::PAGE_SIZE;

    fn leaf_with(n: usize) -> Node {
        let entries = (0..n)
            .map(|i| LeafEntry {
                mbr: Rect::new(i as f64, 0.0, i as f64 + 0.5, 1.0),
                object_id: i as u64,
                object_page: 0,
            })
            .collect();
        Node {
            level: 1,
            kind: NodeKind::Leaf(entries),
        }
    }

    fn dir_with(n: usize) -> Node {
        let entries = (0..n)
            .map(|i| DirEntry {
                mbr: Rect::new(i as f64, -1.0, i as f64 + 2.0, 3.0),
                child: PageId::new(100 + i as u64),
            })
            .collect();
        Node {
            level: 2,
            kind: NodeKind::Dir(entries),
        }
    }

    fn roundtrip(node: &Node) -> Node {
        let payload = node.encode();
        let page = Page::new(PageId::new(1), node.page_meta(), payload).unwrap();
        Node::decode(&page).unwrap()
    }

    #[test]
    fn leaf_roundtrip() {
        let n = leaf_with(7);
        assert_eq!(roundtrip(&n), n);
    }

    #[test]
    fn dir_roundtrip() {
        let n = dir_with(5);
        assert_eq!(roundtrip(&n), n);
    }

    #[test]
    fn empty_nodes_roundtrip() {
        assert_eq!(roundtrip(&Node::new_leaf()), Node::new_leaf());
        assert_eq!(roundtrip(&Node::new_dir(3)), Node::new_dir(3));
    }

    #[test]
    fn full_fanout_fits_in_a_page() {
        let leaf = leaf_with(42);
        assert!(leaf.encode().len() <= PAGE_SIZE);
        let dir = dir_with(51);
        assert!(dir.encode().len() <= PAGE_SIZE);
        assert_eq!(roundtrip(&dir).len(), 51);
    }

    #[test]
    fn node_mbr_covers_entries() {
        let n = leaf_with(3);
        let mbr = n.mbr().unwrap();
        for e in n.leaf_entries() {
            assert!(mbr.contains(&e.mbr));
        }
        assert_eq!(Node::new_leaf().mbr(), None);
    }

    #[test]
    fn page_meta_reflects_kind_and_level() {
        let leaf = leaf_with(2);
        assert_eq!(leaf.page_meta().page_type, PageType::Data);
        assert_eq!(leaf.page_meta().level, 1);
        let dir = dir_with(2);
        assert_eq!(dir.page_meta().page_type, PageType::Directory);
        assert_eq!(dir.page_meta().level, 2);
        // Stats are computed over entry MBRs.
        assert_eq!(leaf.page_meta().stats.entry_count, 2);
    }

    #[test]
    fn decode_rejects_garbage() {
        let meta = PageMeta::data(SpatialStats::EMPTY);
        let page = Page::new(PageId::new(9), meta, Bytes::from_static(b"nonsense")).unwrap();
        assert!(matches!(
            Node::decode(&page),
            Err(StorageError::Corrupt { .. })
        ));
        let short = Page::new(PageId::new(9), meta, Bytes::from_static(b"ab")).unwrap();
        assert!(Node::decode(&short).is_err());
    }

    #[test]
    fn decode_rejects_wrong_level() {
        // A data page claiming level 3.
        let mut node = leaf_with(1);
        node.level = 3;
        let page = Page::new(PageId::new(2), node.page_meta(), node.encode()).unwrap();
        assert!(Node::decode(&page).is_err());
    }

    #[test]
    fn decode_rejects_truncated_entries() {
        let node = leaf_with(3);
        let full = node.encode();
        let truncated = full.slice(0..full.len() - 8);
        let page = Page::new(PageId::new(3), node.page_meta(), truncated).unwrap();
        assert!(Node::decode(&page).is_err());
    }
}
