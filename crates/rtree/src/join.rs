//! R-tree spatial join by synchronized traversal.
//!
//! The EDBT 2002 paper lists "the influence of the strategies on updates and
//! spatial joins" as future work; this module supplies the join operator the
//! ablation experiments in `asb-bench` use. The algorithm is the classic
//! synchronized depth-first traversal: a pair of nodes is expanded only if
//! their MBRs intersect, and trees of different heights are handled by
//! descending the taller tree alone until levels align.

use crate::node::NodeKind;
use crate::tree::RTree;
use asb_storage::{PageId, PageStore, Result};

/// Computes all pairs `(id_a, id_b)` of objects from `a` and `b` whose MBRs
/// intersect.
///
/// Both trees' page accesses go through their respective buffers (if
/// attached), so the join exercises replacement policies on two page streams
/// at once. One query scope is opened per tree for the whole join (the join
/// is a single "query" for correlation purposes).
///
/// ```
/// use asb_geom::{Rect, SpatialItem};
/// use asb_rtree::{spatial_join, RTree};
/// use asb_storage::DiskManager;
///
/// let roads = vec![SpatialItem::new(1, Rect::new(0.0, 0.0, 10.0, 1.0))];
/// let cities = vec![
///     SpatialItem::new(10, Rect::new(2.0, 0.0, 3.0, 3.0)),
///     SpatialItem::new(11, Rect::new(20.0, 20.0, 21.0, 21.0)),
/// ];
/// let mut a = RTree::bulk_load(DiskManager::new(), &roads).unwrap();
/// let mut b = RTree::bulk_load(DiskManager::new(), &cities).unwrap();
/// assert_eq!(spatial_join(&mut a, &mut b).unwrap(), vec![(1, 10)]);
/// ```
pub fn spatial_join<S: PageStore, T: PageStore>(
    a: &mut RTree<S>,
    b: &mut RTree<T>,
) -> Result<Vec<(u64, u64)>> {
    if a.is_empty() || b.is_empty() {
        return Ok(Vec::new());
    }
    a.begin_query();
    b.begin_query();
    let mut out = Vec::new();
    let mut stack: Vec<(PageId, PageId)> = vec![(a.root_id(), b.root_id())];
    while let Some((pa, pb)) = stack.pop() {
        let na = a.read_node_for_join(pa)?;
        let nb = b.read_node_for_join(pb)?;
        match (&na.kind, &nb.kind) {
            (NodeKind::Leaf(ea), NodeKind::Leaf(eb)) => {
                // A nested loop is fine at page granularity (≤ 42 × 42).
                for x in ea {
                    for y in eb {
                        if x.mbr.intersects(&y.mbr) {
                            out.push((x.object_id, y.object_id));
                        }
                    }
                }
            }
            (NodeKind::Dir(ea), _) if na.level > nb.level => {
                // Descend the taller side only.
                let nb_mbr = nb.mbr().expect("non-empty node");
                for x in ea {
                    if x.mbr.intersects(&nb_mbr) {
                        stack.push((x.child, pb));
                    }
                }
            }
            (_, NodeKind::Dir(eb)) if nb.level > na.level => {
                let na_mbr = na.mbr().expect("non-empty node");
                for y in eb {
                    if y.mbr.intersects(&na_mbr) {
                        stack.push((pa, y.child));
                    }
                }
            }
            (NodeKind::Dir(ea), NodeKind::Dir(eb)) => {
                for x in ea {
                    for y in eb {
                        if x.mbr.intersects(&y.mbr) {
                            stack.push((x.child, y.child));
                        }
                    }
                }
            }
            // Same level but one side is a leaf and the other a directory
            // can only happen at level 1 vs level >= 2, covered above.
            _ => unreachable!("level bookkeeping guarantees aligned kinds"),
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RTreeConfig;
    use crate::tree::RTreeItem;
    use asb_geom::Rect;
    use asb_storage::DiskManager;

    fn grid(n: usize, offset: f64, start_id: u64) -> Vec<RTreeItem> {
        let mut out = Vec::new();
        let side = (n as f64).sqrt().ceil() as usize;
        for i in 0..n {
            let x = (i % side) as f64 * 3.0 + offset;
            let y = (i / side) as f64 * 3.0 + offset;
            out.push(RTreeItem::new(
                start_id + i as u64,
                Rect::new(x, y, x + 2.0, y + 2.0),
            ));
        }
        out
    }

    fn brute_force(a: &[RTreeItem], b: &[RTreeItem]) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        for x in a {
            for y in b {
                if x.mbr.intersects(&y.mbr) {
                    out.push((x.id, y.id));
                }
            }
        }
        out.sort_unstable();
        out
    }

    #[test]
    fn join_matches_brute_force() {
        let items_a = grid(120, 0.0, 0);
        let items_b = grid(80, 1.5, 1000);
        let mut a =
            RTree::bulk_load_with(DiskManager::new(), RTreeConfig::small(), &items_a).unwrap();
        let mut b =
            RTree::bulk_load_with(DiskManager::new(), RTreeConfig::small(), &items_b).unwrap();
        let mut got = spatial_join(&mut a, &mut b).unwrap();
        got.sort_unstable();
        assert_eq!(got, brute_force(&items_a, &items_b));
        assert!(!got.is_empty());
    }

    #[test]
    fn join_with_disjoint_layers_is_empty() {
        let items_a = grid(50, 0.0, 0);
        let items_b = grid(50, 10_000.0, 1000);
        let mut a =
            RTree::bulk_load_with(DiskManager::new(), RTreeConfig::small(), &items_a).unwrap();
        let mut b =
            RTree::bulk_load_with(DiskManager::new(), RTreeConfig::small(), &items_b).unwrap();
        assert_eq!(spatial_join(&mut a, &mut b).unwrap(), vec![]);
        // Only the two roots are read.
        assert_eq!(a.store().stats().reads + b.store().stats().reads, 2);
    }

    #[test]
    fn join_handles_different_heights() {
        let items_a = grid(400, 0.0, 0); // taller tree
        let items_b = grid(9, 0.5, 5000); // single leaf
        let mut a =
            RTree::bulk_load_with(DiskManager::new(), RTreeConfig::small(), &items_a).unwrap();
        let mut b =
            RTree::bulk_load_with(DiskManager::new(), RTreeConfig::small(), &items_b).unwrap();
        assert!(a.height() > b.height());
        let mut got = spatial_join(&mut a, &mut b).unwrap();
        got.sort_unstable();
        assert_eq!(got, brute_force(&items_a, &items_b));
    }

    #[test]
    fn join_with_empty_tree_is_empty() {
        let items_a = grid(50, 0.0, 0);
        let mut a =
            RTree::bulk_load_with(DiskManager::new(), RTreeConfig::small(), &items_a).unwrap();
        let mut b = RTree::with_config(DiskManager::new(), RTreeConfig::small()).unwrap();
        assert_eq!(spatial_join(&mut a, &mut b).unwrap(), vec![]);
    }
}
