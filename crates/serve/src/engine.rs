//! The deterministic batched serve loop.
//!
//! The engine is a discrete-event simulation of a spatial map server: many
//! closed-loop sessions each keep one request outstanding (window, k-NN or
//! join, from [`asb_workload::session_requests`]), and the server answers
//! them in *rounds*. Each round gathers the page frontier of every active
//! request, dedupes it, groups it by buffer-pool shard
//! ([`BufferPool::shard_of`]) and fetches each shard's group as one batch
//! ([`BufferPool::fetch_batch`]). Shards are modelled as parallel I/O
//! channels: the round costs the *maximum* shard service time, where a
//! shard's time is the store's simulated clock advance
//! ([`BufferPool::io_stats`]) plus a fixed in-memory cost per page served.
//! A request's latency is its completion tick minus its arrival tick, so
//! queueing delay — arriving while a long round is in flight — is part of
//! the measurement, exactly as a client would see it.
//!
//! Everything (session trajectories, think times, batch composition,
//! store latency) derives from seeds and the simulated clock; no wall
//! time is read anywhere. Equal inputs produce bit-for-bit equal
//! [`ServeOutcome`]s, which `tests/serve.rs` pins down.

use crate::degrade::{BreakerConfig, CircuitBreaker, Outcome, Quarantine};
use crate::histogram::LatencyHistogram;
use asb_core::BufferPool;
use asb_geom::{Point, Rect};
use asb_rtree::{Node, NodeKind, TreeSnapshot};
use asb_storage::{AccessContext, PageId, QueryId, Result};
use asb_workload::Request;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;
use std::collections::{BTreeMap, BinaryHeap};

/// Simulated in-memory service cost per page delivered from the buffer,
/// in ticks (1 tick = 1 simulated microsecond).
pub const HIT_TICKS: u64 = 20;

/// Fixed per-round dispatch overhead (batch assembly, response fan-out).
pub const ROUND_OVERHEAD_TICKS: u64 = 50;

/// Converts the store's simulated milliseconds into engine ticks (µs).
fn ms_to_ticks(ms: f64) -> u64 {
    (ms * 1000.0).round() as u64
}

/// Tunables of a serve run (the workload itself — sessions and their
/// request streams — is passed to [`serve`] separately).
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct ServeConfig {
    /// Seed for think times and arrival staggering.
    pub seed: u64,
    /// Mean think time between a session's requests, in ticks; each gap
    /// is drawn uniformly from `[think/2, 3·think/2]`.
    pub think_ticks: u64,
    /// Maximum pages one request may ask for per round (its frontier is
    /// consumed in slices of this size).
    pub frontier_limit: usize,
    /// Per-request tick budget. A request still incomplete when a round
    /// ends past `arrival + deadline_ticks` is force-completed as
    /// [`Outcome::DeadlineExceeded`] with its partial answer. Deadline
    /// enforcement is at round granularity: a request that finishes
    /// within the same round delivers its full answer. The default
    /// (2,000,000 ticks = 2 simulated seconds) sits far above fault-free
    /// tail latencies, so healthy runs never see it fire.
    pub deadline_ticks: u64,
    /// Per-shard circuit-breaker thresholds guarding store batches.
    pub breaker: BreakerConfig,
    /// Ticks a quarantined (permanently failing) page waits before it is
    /// eligible for a heal probe.
    pub quarantine_heal_ticks: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            seed: 42,
            think_ticks: 20_000,
            frontier_limit: 8,
            deadline_ticks: 2_000_000,
            breaker: BreakerConfig::default(),
            quarantine_heal_ticks: 500_000,
        }
    }
}

/// One completed request, as the client observed it.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Response {
    /// Index of the issuing session.
    pub session: usize,
    /// Position of the request in its session's stream.
    pub seq: usize,
    /// Request kind label (`"window"` / `"nearest"` / `"join"`).
    pub kind: &'static str,
    /// Tick the client issued the request.
    pub arrival: u64,
    /// Tick the response was delivered.
    pub completion: u64,
    /// `completion - arrival`: service time plus queueing delay.
    pub latency: u64,
    /// Pages served to this request from the buffer.
    pub hits: u64,
    /// Pages that had to read the store.
    pub misses: u64,
    /// How the answer relates to the exact one: [`Outcome::Exact`] when
    /// every wanted page was served, [`Outcome::Degraded`] when pruning
    /// occurred, [`Outcome::DeadlineExceeded`] when the tick budget
    /// force-completed the request.
    pub outcome: Outcome,
    /// Result payload: matching object ids (window, sorted; k-NN, by
    /// ascending distance) or the single pair count (join). For degraded
    /// and deadline-exceeded responses this is a *subset* of the exact
    /// answer (join: a lower bound on the pair count) — never a
    /// fabricated result.
    pub results: Vec<u64>,
}

/// Per-session aggregate statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize)]
pub struct SessionStats {
    /// Requests completed.
    pub requests: u64,
    /// Page accesses served from the buffer.
    pub hits: u64,
    /// Page accesses that read the store.
    pub misses: u64,
}

impl SessionStats {
    /// Buffer hit rate of this session's page accesses, in `[0, 1]`.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Aggregate result of a serve run.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ServeReport {
    /// Requests completed across all sessions.
    pub requests: u64,
    /// Batched rounds executed.
    pub rounds: u64,
    /// Pages fetched through batches (hits and misses).
    pub batched_pages: u64,
    /// Simulated duration of the whole run, in ticks.
    pub duration_ticks: u64,
    /// Median request latency in ticks.
    pub p50_ticks: u64,
    /// 99th-percentile request latency in ticks.
    pub p99_ticks: u64,
    /// 99.9th-percentile request latency in ticks.
    pub p999_ticks: u64,
    /// Completed requests per simulated second.
    pub throughput_rps: f64,
    /// Pool-wide hit rate of the run's page accesses, in `[0, 1]`.
    pub hit_rate: f64,
    /// Requests that completed [`Outcome::Degraded`] (some subtree was
    /// pruned by a failed slot, an open breaker or a quarantine).
    pub degraded_requests: u64,
    /// Requests force-completed as [`Outcome::DeadlineExceeded`].
    pub deadline_exceeded: u64,
    /// Circuit-breaker `→ Open` transitions, summed over shards.
    pub breaker_opens: u64,
    /// Distinct pages quarantined at least once during the run.
    pub quarantined_pages: u64,
    /// The full latency histogram (merge per-shard copies with
    /// [`LatencyHistogram::merge`] when aggregating runs).
    pub histogram: LatencyHistogram,
    /// Per-session statistics, indexed like the input sessions.
    pub sessions: Vec<SessionStats>,
}

/// Everything a serve run produced: the aggregate report plus every
/// response in completion order.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ServeOutcome {
    /// Aggregate latency/throughput/hit-rate report.
    pub report: ServeReport,
    /// All responses, in completion order.
    pub responses: Vec<Response>,
}

/// A k-NN search candidate: a tree node to expand or an object to emit.
/// Mirrors `RTree::nearest_neighbors` exactly, so the engine's best-first
/// traversal visits the same pages in the same order.
#[derive(PartialEq)]
struct Candidate {
    dist: f64,
    /// `Ok`: a node page to expand; `Err`: an object id to emit.
    target: std::result::Result<PageId, u64>,
}

impl Eq for Candidate {}
impl Ord for Candidate {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reverse: BinaryHeap is a max-heap, we need the minimum.
        other
            .dist
            .partial_cmp(&self.dist)
            .expect("finite distances")
    }
}
impl PartialOrd for Candidate {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// The incremental traversal state of one in-flight request.
enum Work {
    /// Breadth-first window scan: unexpanded pages plus matches so far.
    Window {
        region: Rect,
        frontier: Vec<PageId>,
        results: Vec<u64>,
    },
    /// Best-first k-NN: the candidate heap plus emitted neighbours.
    Nearest {
        point: Point,
        k: usize,
        heap: BinaryHeap<Candidate>,
        best: Vec<u64>,
    },
    /// Window-restricted spatial self-join over node pairs.
    Join {
        region: Rect,
        pairs: Vec<(PageId, PageId)>,
        count: u64,
    },
}

struct Active {
    session: usize,
    seq: usize,
    kind: &'static str,
    arrival: u64,
    /// Tick past which the request is force-completed
    /// ([`Outcome::DeadlineExceeded`]).
    deadline: u64,
    /// Set when any wanted page went undelivered and its subtree was
    /// pruned: the eventual answer is a subset of the exact one.
    degraded: bool,
    ctx: AccessContext,
    hits: u64,
    misses: u64,
    /// Pages requested this round (the slice of the frontier the next
    /// `advance` call consumes).
    asked: Vec<PageId>,
    work: Work,
}

impl Active {
    fn new(
        session: usize,
        seq: usize,
        arrival: u64,
        deadline_ticks: u64,
        qid: u64,
        request: &Request,
        snapshot: &TreeSnapshot,
    ) -> Active {
        let root = snapshot.root();
        let work = match request {
            Request::Window(region) => Work::Window {
                region: *region,
                frontier: vec![root],
                results: Vec::new(),
            },
            Request::Nearest(point, k) => {
                let mut heap = BinaryHeap::new();
                heap.push(Candidate {
                    dist: 0.0,
                    target: Ok(root),
                });
                Work::Nearest {
                    point: *point,
                    k: (*k).max(1),
                    heap,
                    best: Vec::new(),
                }
            }
            Request::Join(region) => Work::Join {
                region: *region,
                pairs: vec![(root, root)],
                count: 0,
            },
        };
        Active {
            session,
            seq,
            kind: request.kind(),
            arrival,
            deadline: arrival.saturating_add(deadline_ticks.max(1)),
            degraded: false,
            ctx: AccessContext::query(QueryId::new(qid)),
            hits: 0,
            misses: 0,
            asked: Vec::new(),
            work,
        }
    }

    /// The distinct pages this request needs next round, capped at
    /// `limit`. Never empty unless the request is done.
    fn wants(&mut self, limit: usize) -> &[PageId] {
        let limit = limit.max(1);
        self.asked.clear();
        match &mut self.work {
            Work::Window { frontier, .. } => {
                self.asked.extend(frontier.iter().take(limit).copied());
            }
            Work::Nearest { heap, .. } => {
                // `settle` already drained leading object candidates, so
                // the top (if any) is a node page.
                if let Some(c) = heap.peek() {
                    if let Ok(page) = c.target {
                        self.asked.push(page);
                    }
                }
            }
            Work::Join { pairs, .. } => {
                let take = (limit / 2).max(1);
                for &(a, b) in pairs.iter().take(take) {
                    if !self.asked.contains(&a) {
                        self.asked.push(a);
                    }
                    if !self.asked.contains(&b) {
                        self.asked.push(b);
                    }
                }
            }
        }
        &self.asked
    }

    /// Consumes the pages asked for this round and advances the
    /// traversal. `delivered` holds every page the round fetched; an
    /// asked page that went *undelivered* (failed slot, open breaker,
    /// quarantine) prunes its subtree and marks the request degraded —
    /// the traversal keeps making progress, and the eventual answer
    /// stays a subset of the exact one (never a fabrication).
    fn advance(&mut self, delivered: &BTreeMap<PageId, Node>) {
        let mut pruned = false;
        match &mut self.work {
            Work::Window {
                region,
                frontier,
                results,
            } => {
                let taken: Vec<PageId> = frontier.drain(..self.asked.len()).collect();
                for id in taken {
                    let Some(node) = delivered.get(&id) else {
                        pruned = true;
                        continue;
                    };
                    match &node.kind {
                        NodeKind::Dir(entries) => {
                            for e in entries {
                                if e.mbr.intersects(region) {
                                    frontier.push(e.child);
                                }
                            }
                        }
                        NodeKind::Leaf(entries) => {
                            for e in entries {
                                if e.mbr.intersects(region) {
                                    results.push(e.object_id);
                                }
                            }
                        }
                    }
                }
            }
            Work::Nearest { point, heap, .. } => {
                if let Some(&page) = self.asked.first() {
                    match delivered.get(&page) {
                        Some(node) => {
                            heap.pop();
                            match &node.kind {
                                NodeKind::Dir(entries) => {
                                    for e in entries {
                                        heap.push(Candidate {
                                            dist: e.mbr.min_dist(point),
                                            target: Ok(e.child),
                                        });
                                    }
                                }
                                NodeKind::Leaf(entries) => {
                                    for e in entries {
                                        heap.push(Candidate {
                                            dist: e.mbr.min_dist(point),
                                            target: Err(e.object_id),
                                        });
                                    }
                                }
                            }
                        }
                        None => {
                            // The best candidate's page is unreachable:
                            // abandon that subtree and continue best-first
                            // over the reachable remainder.
                            heap.pop();
                            pruned = true;
                        }
                    }
                }
                self.settle();
            }
            Work::Join {
                region,
                pairs,
                count,
            } => {
                let take = pairs
                    .iter()
                    .take_while({
                        let asked = &self.asked;
                        move |(a, b)| asked.contains(a) && asked.contains(b)
                    })
                    .count();
                let taken: Vec<(PageId, PageId)> = pairs.drain(..take).collect();
                for (a, b) in taken {
                    let (Some(na), Some(nb)) = (delivered.get(&a), delivered.get(&b)) else {
                        pruned = true;
                        continue;
                    };
                    match (&na.kind, &nb.kind) {
                        (NodeKind::Dir(ea), NodeKind::Dir(eb)) => {
                            for (i, x) in ea.iter().enumerate() {
                                if !x.mbr.intersects(region) {
                                    continue;
                                }
                                let j0 = if a == b { i } else { 0 };
                                for y in &eb[j0..] {
                                    if y.mbr.intersects(region) && x.mbr.intersects(&y.mbr) {
                                        let (lo, hi) = if x.child.raw() <= y.child.raw() {
                                            (x.child, y.child)
                                        } else {
                                            (y.child, x.child)
                                        };
                                        pairs.push((lo, hi));
                                    }
                                }
                            }
                        }
                        (NodeKind::Leaf(ea), NodeKind::Leaf(eb)) => {
                            for (i, x) in ea.iter().enumerate() {
                                if !x.mbr.intersects(region) {
                                    continue;
                                }
                                let j0 = if a == b { i + 1 } else { 0 };
                                for y in &eb[j0..] {
                                    if y.mbr.intersects(region) && x.mbr.intersects(&y.mbr) {
                                        *count += 1;
                                    }
                                }
                            }
                        }
                        // A bulk-loaded R*-tree is balanced, so synchronized
                        // descent only ever pairs equal levels.
                        _ => unreachable!("join pairs stay level-synchronized"),
                    }
                }
            }
        }
        self.degraded |= pruned;
        self.asked.clear();
    }

    /// Drains leading object candidates off the k-NN heap into the
    /// result list (they need no page access).
    fn settle(&mut self) {
        if let Work::Nearest { k, heap, best, .. } = &mut self.work {
            while best.len() < *k {
                match heap.peek() {
                    Some(c) if c.target.is_err() => {
                        let c = heap.pop().expect("peeked");
                        best.push(c.target.unwrap_err());
                    }
                    _ => break,
                }
            }
        }
    }

    fn done(&self) -> bool {
        match &self.work {
            Work::Window { frontier, .. } => frontier.is_empty(),
            Work::Nearest { k, heap, best, .. } => best.len() == *k || heap.is_empty(),
            Work::Join { pairs, .. } => pairs.is_empty(),
        }
    }

    fn into_results(self) -> Vec<u64> {
        match self.work {
            Work::Window { mut results, .. } => {
                results.sort_unstable();
                results
            }
            Work::Nearest { best, .. } => best,
            Work::Join { count, .. } => vec![count],
        }
    }
}

/// Runs the batched serve loop until every session's request stream is
/// exhausted. `sessions[i]` is session `i`'s request stream (generate one
/// with [`asb_workload::session_requests`]); each session is closed-loop —
/// it issues its next request a think-time after its previous response.
///
/// The pool's buffer statistics accumulate across the run (callers that
/// want a clean measurement should pass a fresh pool or `clear` it);
/// request latency is measured purely in simulated ticks, so equal inputs
/// give bit-for-bit equal outcomes on any machine.
pub fn serve(
    pool: &dyn BufferPool,
    snapshot: &TreeSnapshot,
    sessions: &[Vec<Request>],
    cfg: &ServeConfig,
) -> Result<ServeOutcome> {
    let mut rngs: Vec<StdRng> = (0..sessions.len())
        .map(|i| {
            StdRng::seed_from_u64(
                cfg.seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0x5E7E_11F0,
            )
        })
        .collect();
    // Per session: the arrival tick and stream position of its next
    // request; `None` while a request is in flight or the stream is done.
    let mut pending: Vec<Option<(u64, usize)>> = rngs
        .iter_mut()
        .enumerate()
        .map(|(i, rng)| {
            if sessions[i].is_empty() {
                None
            } else {
                Some((rng.gen_range(0..=cfg.think_ticks), 0))
            }
        })
        .collect();

    let mut now = 0u64;
    let mut next_qid = 1u64;
    let mut active: Vec<Active> = Vec::new();
    let mut histogram = LatencyHistogram::new();
    let mut session_stats = vec![SessionStats::default(); sessions.len()];
    let mut responses = Vec::new();
    let mut rounds = 0u64;
    let mut batched_pages = 0u64;
    let mut breakers: Vec<CircuitBreaker> = (0..pool.shard_count().max(1))
        .map(|_| CircuitBreaker::new(cfg.breaker))
        .collect();
    let mut quarantine = Quarantine::new(cfg.quarantine_heal_ticks);
    let mut degraded_requests = 0u64;
    let mut deadline_exceeded = 0u64;

    loop {
        // Admit every request that has arrived by now, in session order.
        for s in 0..sessions.len() {
            if let Some((t, seq)) = pending[s] {
                if t <= now {
                    pending[s] = None;
                    active.push(Active::new(
                        s,
                        seq,
                        t,
                        cfg.deadline_ticks,
                        next_qid,
                        &sessions[s][seq],
                        snapshot,
                    ));
                    next_qid += 1;
                }
            }
        }
        if active.is_empty() {
            // Idle: jump the clock to the next arrival, or finish.
            match pending.iter().flatten().map(|&(t, _)| t).min() {
                Some(t) => {
                    now = now.max(t);
                    continue;
                }
                None => break,
            }
        }

        // One batched round: gather every active request's frontier,
        // dedupe, group by shard, fetch shard groups as batches.
        rounds += 1;
        let mut wanted: BTreeMap<PageId, Vec<usize>> = BTreeMap::new();
        for (idx, a) in active.iter_mut().enumerate() {
            for &id in a.wants(cfg.frontier_limit) {
                wanted.entry(id).or_default().push(idx);
            }
        }
        let mut by_shard: Vec<Vec<PageId>> = vec![Vec::new(); pool.shard_count().max(1)];
        for &id in wanted.keys() {
            by_shard[pool.shard_of(id)].push(id);
        }
        // The whole round is stamped with the oldest active request's
        // query id (group-commit semantics).
        let ctx = active
            .iter()
            .min_by_key(|a| (a.arrival, a.session, a.seq))
            .expect("active round")
            .ctx;

        // Shards are parallel I/O channels: the round costs the slowest
        // shard's service time plus the fixed dispatch overhead. A shard
        // whose breaker is open never touches the store: its pages are
        // answered from buffer-resident state only, and whatever is not
        // resident simply goes undelivered (the wanting requests degrade
        // in `advance`). A page's failed slot feeds its shard's breaker;
        // a *give-up* failure additionally quarantines the page so later
        // rounds stop asking for it until its heal probe is due.
        let mut round_cost = 0u64;
        let mut delivered: BTreeMap<PageId, Node> = BTreeMap::new();
        for (shard, pages) in by_shard.iter().enumerate() {
            if pages.is_empty() {
                continue;
            }
            let shard_cost = if breakers[shard].allows(now) {
                let askable: Vec<PageId> = pages
                    .iter()
                    .copied()
                    .filter(|&id| quarantine.allows(id, now))
                    .collect();
                let before = pool.io_stats().simulated_ms;
                let outcomes = pool.fetch_batch(&askable, ctx);
                let store_ms = pool.io_stats().simulated_ms - before;
                let mut any_failed = false;
                for (slot, &id) in outcomes.iter().zip(&askable) {
                    match slot {
                        Ok(outcome) => match Node::decode(outcome.guard.page()) {
                            Ok(node) => {
                                for &idx in &wanted[&id] {
                                    if outcome.hit {
                                        active[idx].hits += 1;
                                    } else {
                                        active[idx].misses += 1;
                                    }
                                }
                                quarantine.release(id);
                                delivered.insert(id, node);
                                batched_pages += 1;
                            }
                            // A page that fetched but will not decode is
                            // as unusable as a failed slot: undelivered.
                            Err(_) => any_failed = true,
                        },
                        Err(err) => {
                            any_failed = true;
                            if err.is_give_up() {
                                quarantine.put(id, now);
                            }
                        }
                    }
                }
                // Only batches that actually reached the store are
                // breaker evidence; an all-quarantined batch is neither
                // a success nor a failure.
                if !askable.is_empty() {
                    if any_failed {
                        breakers[shard].on_failure(now);
                    } else {
                        breakers[shard].on_success();
                    }
                }
                ms_to_ticks(store_ms) + HIT_TICKS * askable.len() as u64
            } else {
                // Open breaker: degraded resident-only reads. Every page
                // costs its in-memory probe; nothing touches the store,
                // so no retry budget burns while the shard is down.
                for &id in pages.iter() {
                    let Some(guard) = pool.fetch_resident(id, ctx) else {
                        continue;
                    };
                    let Ok(node) = Node::decode(guard.page()) else {
                        continue;
                    };
                    for &idx in &wanted[&id] {
                        active[idx].hits += 1;
                    }
                    delivered.insert(id, node);
                    batched_pages += 1;
                }
                HIT_TICKS * pages.len() as u64
            };
            round_cost = round_cost.max(shard_cost);
        }
        now += round_cost + ROUND_OVERHEAD_TICKS;

        // Advance every active request; completed ones respond and their
        // session starts thinking about its next request. A request that
        // is still incomplete past its deadline is force-completed with
        // its partial answer (round-granularity deadline enforcement).
        let mut still = Vec::new();
        for mut a in std::mem::take(&mut active) {
            a.advance(&delivered);
            let timed_out = !a.done() && now >= a.deadline;
            if !a.done() && !timed_out {
                still.push(a);
                continue;
            }
            let outcome = if timed_out {
                deadline_exceeded += 1;
                Outcome::DeadlineExceeded
            } else if a.degraded {
                degraded_requests += 1;
                Outcome::Degraded
            } else {
                Outcome::Exact
            };
            let latency = now - a.arrival;
            histogram.record(latency);
            let stats = &mut session_stats[a.session];
            stats.requests += 1;
            stats.hits += a.hits;
            stats.misses += a.misses;
            if a.seq + 1 < sessions[a.session].len() {
                let think = cfg.think_ticks / 2 + rngs[a.session].gen_range(0..=cfg.think_ticks);
                pending[a.session] = Some((now + think, a.seq + 1));
            }
            responses.push(Response {
                session: a.session,
                seq: a.seq,
                kind: a.kind,
                arrival: a.arrival,
                completion: now,
                latency,
                hits: a.hits,
                misses: a.misses,
                outcome,
                results: a.into_results(),
            });
        }
        active = still;
    }

    let requests: u64 = session_stats.iter().map(|s| s.requests).sum();
    let hits: u64 = session_stats.iter().map(|s| s.hits).sum();
    let misses: u64 = session_stats.iter().map(|s| s.misses).sum();
    let duration_ticks = now.max(1);
    let report = ServeReport {
        requests,
        rounds,
        batched_pages,
        duration_ticks,
        p50_ticks: histogram.p50(),
        p99_ticks: histogram.p99(),
        p999_ticks: histogram.p999(),
        throughput_rps: requests as f64 * 1_000_000.0 / duration_ticks as f64,
        hit_rate: if hits + misses == 0 {
            0.0
        } else {
            hits as f64 / (hits + misses) as f64
        },
        degraded_requests,
        deadline_exceeded,
        breaker_opens: breakers.iter().map(CircuitBreaker::opens).sum(),
        quarantined_pages: quarantine.ever_quarantined(),
        histogram,
        sessions: session_stats,
    };
    Ok(ServeOutcome { report, responses })
}
