//! The chaos-serve harness behind `BENCH_chaos.json`.
//!
//! [`chaos_sweep`] replays the golden serving scenarios through a
//! [`FaultyStore`] across a seed × fault-profile matrix and audits three
//! guarantees per cell:
//!
//! 1. **Zero wrong answers.** Every response is checked against a
//!    fault-free reference run of the same sessions: an
//!    [`Outcome::Exact`](crate::Outcome::Exact) response must equal the
//!    reference bit-for-bit, and a degraded or deadline-exceeded response
//!    must be a *subset* of it (window: result-multiset subset; join:
//!    count lower bound; k-NN: no more than the reference count, ids
//!    drawn from the real object population). Degraded is allowed;
//!    incorrect is not.
//! 2. **Bit-for-bit determinism.** Each cell runs twice from identical
//!    seeds; the two [`ServeOutcome`]s — responses, counters, latencies —
//!    must be equal.
//! 3. **Bounded tail inflation.** The cell's p999 may not exceed the
//!    fault-free reference p999 by more than [`P999_INFLATION_CEILING`]×.
//!
//! Everything runs on the simulated clock, so the committed
//! `BENCH_chaos.json` regenerates byte-for-byte on any machine and CI can
//! diff a fresh sweep against it ([`check_chaos`]).

use crate::bench::{bench_sessions, SERVE_BENCH_BUFFER_FRAC, SERVE_BENCH_SEED};
use crate::engine::{serve, ServeConfig, ServeOutcome};
use asb_core::{PolicyKind, ShardedBuffer};
use asb_exp::GOLDEN_DBS;
use asb_rtree::{Node, NodeKind, RTree};
use asb_storage::{
    AccessContext, DiskManager, FaultConfig, FaultyStore, PageId, PageStore, Result, StorageError,
};
use asb_workload::{Dataset, Scale};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// Seeds of the committed chaos matrix (one column per seed).
pub const CHAOS_SEEDS: [u64; 4] = [1, 7, 1337, 424242];

/// Fault profiles of the committed chaos matrix (one row per profile).
pub const CHAOS_FAULT_PROFILES: [&str; 4] = ["transient", "corrupting", "chaos", "brownout"];

/// Gate: at most this fraction of a cell's requests may complete
/// non-exact (degraded + deadline-exceeded). Generous on purpose — the
/// gate exists to catch a *collapse* of the serving path (e.g. a breaker
/// that never closes again), not to pin exact degradation counts, which
/// the byte-for-byte baseline diff already does.
pub const DEGRADED_RATE_CEILING: f64 = 0.5;

/// Gate: a cell's p999 may not exceed its fault-free reference p999 by
/// more than this factor. Brown-outs inject 120 ms spikes against a
/// ~10 ms store, so an order of magnitude of inflation is legitimate;
/// unbounded queueing collapse is not.
pub const P999_INFLATION_CEILING: f64 = 30.0;

/// Per-request deadline of the chaos scenarios, in ticks. Tight enough
/// that brown-out tails actually trip it (exercising
/// [`Outcome::DeadlineExceeded`](crate::Outcome::DeadlineExceeded)),
/// comfortably above fault-free tails so the reference run never does.
pub const CHAOS_DEADLINE_TICKS: u64 = 400_000;

/// Tunables of one chaos sweep (the matrix axes — seeds and profiles —
/// are passed to [`chaos_sweep`] separately).
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct ChaosConfig {
    /// Concurrent sessions per cell.
    pub sessions: usize,
    /// Requests per session.
    pub requests_per_session: usize,
    /// Buffer capacity as a fraction of the tree's page count.
    pub buffer_frac: f64,
    /// Pool shard count.
    pub shards: usize,
    /// Fault rate handed to every profile constructor.
    pub fault_rate: f64,
    /// Replacement policy of the serving pool.
    pub policy: PolicyKind,
    /// Pages marked permanently failed before each faulty run — the last
    /// leaves of the tree's right spine (see [`last_leaf_ids`]), chosen
    /// so the blast radius is one tile's objects rather than a whole
    /// subtree — exercising give-up typing and quarantine end to end.
    pub poisoned_pages: usize,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            sessions: 64,
            requests_per_session: 6,
            buffer_frac: SERVE_BENCH_BUFFER_FRAC,
            shards: 4,
            fault_rate: 0.08,
            policy: PolicyKind::Asb,
            poisoned_pages: 2,
        }
    }
}

/// One `(database, profile, seed)` cell of the chaos matrix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChaosCell {
    /// Database name (`"mainland"` / `"world"`).
    pub db: String,
    /// Fault profile name (see [`CHAOS_FAULT_PROFILES`]).
    pub profile: String,
    /// Seed of the cell's sessions and fault schedule.
    pub seed: u64,
    /// Requests completed (every request completes — nothing aborts).
    pub requests: u64,
    /// Responses that matched the fault-free reference exactly.
    pub exact: u64,
    /// Responses explicitly marked degraded.
    pub degraded: u64,
    /// Responses force-completed past their deadline.
    pub deadline_exceeded: u64,
    /// Circuit-breaker open transitions across shards.
    pub breaker_opens: u64,
    /// Distinct pages quarantined during the run.
    pub quarantined_pages: u64,
    /// Typed fetch give-ups recorded by the buffer pool.
    pub give_ups: u64,
    /// Median latency in ticks.
    pub p50_ticks: u64,
    /// 99.9th-percentile latency in ticks.
    pub p999_ticks: u64,
    /// The fault-free reference run's p999, in ticks.
    pub ref_p999_ticks: u64,
    /// Responses that violated the correctness audit (exact mismatch, or
    /// a degraded answer that was not a subset of the reference). Always
    /// 0 in a green sweep — committed so a regression is diffable.
    pub wrong_answers: u64,
    /// Whether the two same-seed runs of this cell were bit-for-bit
    /// identical, degradation counters included.
    pub deterministic: bool,
}

/// The full chaos sweep: configuration header plus one cell per
/// `(database, profile, seed)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChaosBench {
    /// Concurrent sessions per cell.
    pub sessions: usize,
    /// Requests per session.
    pub requests_per_session: usize,
    /// Buffer capacity as a fraction of the tree's page count.
    pub buffer_frac: f64,
    /// Pool shard count.
    pub shards: usize,
    /// Fault rate of every profile.
    pub fault_rate: f64,
    /// Replacement policy label of the serving pool.
    pub policy: String,
    /// Per-request deadline in ticks.
    pub deadline_ticks: u64,
    /// Pages poisoned permanently before each faulty run.
    pub poisoned_pages: usize,
    /// Matrix cells: databases outer, then seeds, then profiles.
    pub cells: Vec<ChaosCell>,
}

/// The fault schedule of a named profile (see [`CHAOS_FAULT_PROFILES`]).
/// Unknown names fail with [`StorageError::Corrupt`]-free path — they
/// return the reliable schedule, which the sweep rejects upfront.
fn profile_config(profile: &str, seed: u64, rate: f64) -> Option<FaultConfig> {
    match profile {
        "transient" => Some(FaultConfig::transient(seed, rate)),
        "corrupting" => Some(FaultConfig::corrupting(seed, rate)),
        "chaos" => Some(FaultConfig::chaos(seed, rate)),
        "brownout" => Some(FaultConfig::brownout(seed, rate)),
        _ => None,
    }
}

/// The page ids of the last `n` leaves under the tree's right spine —
/// the chaos harness's deterministic poison targets. STR bulk loading
/// tiles space in sort order, so these are the *last* tiles: poisoning
/// them prunes one tile's objects, not a whole subtree (the first tiles
/// sit in the workload's hottest region and would degrade most requests).
/// Returns fewer than `n` ids when the last directory node has fewer
/// children; an empty vector for a single-page (root-only) tree.
pub fn last_leaf_ids<S: PageStore>(store: &mut S, root: PageId, n: usize) -> Result<Vec<PageId>> {
    let ctx = AccessContext::default();
    let mut id = root;
    loop {
        let page = store.read(id, ctx)?;
        let node = Node::decode(&page)?;
        match node.kind {
            // A root that is itself a leaf: nothing below it to poison.
            NodeKind::Leaf(_) => return Ok(Vec::new()),
            NodeKind::Dir(entries) => {
                if node.level == 2 {
                    return Ok(entries.iter().rev().take(n).map(|e| e.child).collect());
                }
                id = entries
                    .last()
                    .expect("directory nodes are never empty")
                    .child;
            }
        }
    }
}

/// Runs one serve pass: fresh tree, store wrapped in a [`FaultyStore`]
/// with `fault` (the reliable schedule for references), the configured
/// number of leaf pages poisoned permanently, sharded pool on top.
/// Returns the outcome plus the pool's give-up count.
fn run_once(
    dataset: &Dataset,
    streams: &[Vec<asb_workload::Request>],
    serve_cfg: &ServeConfig,
    cfg: &ChaosConfig,
    fault: FaultConfig,
    poison: bool,
) -> Result<(ServeOutcome, u64)> {
    let tree = RTree::bulk_load(DiskManager::new(), dataset.items())?;
    let tree_pages = tree.page_count();
    let capacity =
        ((tree_pages as f64 * cfg.buffer_frac).round() as usize).max(2 * cfg.shards.max(1));
    let snapshot = tree.snapshot();
    let mut inner = tree.into_store();
    let poison_ids = if poison {
        last_leaf_ids(&mut inner, snapshot.root(), cfg.poisoned_pages)?
    } else {
        Vec::new()
    };
    let store = FaultyStore::new(inner, fault);
    for &id in &poison_ids {
        store.mark_permanent(id);
    }
    let pool = ShardedBuffer::new(store, cfg.policy, capacity, cfg.shards);
    pool.reset_io_stats();
    let outcome = serve(&pool, &snapshot, streams, serve_cfg)?;
    let give_ups = pool.stats().give_ups;
    Ok((outcome, give_ups))
}

/// Audits every chaos response against the fault-free reference run:
/// exact responses must match bit-for-bit; degraded and deadline-exceeded
/// responses must be subsets (window: result multiset; join: count lower
/// bound; k-NN: no more results than the reference, ids from the real
/// object population). Returns the number of violations — 0 in a green
/// cell.
fn audit_responses(
    chaos: &ServeOutcome,
    reference: &ServeOutcome,
    valid_ids: &BTreeSet<u64>,
) -> u64 {
    let by_key: BTreeMap<(usize, usize), &crate::engine::Response> = reference
        .responses
        .iter()
        .map(|r| ((r.session, r.seq), r))
        .collect();
    let mut wrong = 0u64;
    for r in &chaos.responses {
        let Some(reference) = by_key.get(&(r.session, r.seq)) else {
            wrong += 1;
            continue;
        };
        let ok = match r.outcome {
            crate::degrade::Outcome::Exact => r.results == reference.results,
            crate::degrade::Outcome::Degraded | crate::degrade::Outcome::DeadlineExceeded => {
                match r.kind {
                    // Both sides sorted: two-pointer multiset inclusion.
                    "window" => {
                        let mut it = reference.results.iter();
                        r.results.iter().all(|x| it.any(|y| y == x))
                    }
                    "join" => {
                        r.results.len() == 1
                            && reference.results.len() == 1
                            && r.results[0] <= reference.results[0]
                    }
                    "nearest" => {
                        r.results.len() <= reference.results.len()
                            && r.results.iter().all(|id| valid_ids.contains(id))
                    }
                    _ => false,
                }
            }
        };
        if !ok {
            wrong += 1;
        }
    }
    // Every reference request must have been answered — a vanished
    // response is as wrong as a fabricated one.
    wrong + (reference.responses.len() as u64).saturating_sub(chaos.responses.len() as u64)
}

/// Runs the chaos matrix: for every golden database and every
/// `seed × profile` cell, one fault-free reference run plus two identical
/// faulty runs (the determinism probe), each audited for wrong answers.
/// Nothing aborts: a cell's failures surface as counters in its
/// [`ChaosCell`], which [`check_chaos`] gates.
pub fn chaos_sweep(seeds: &[u64], profiles: &[&str], cfg: &ChaosConfig) -> Result<ChaosBench> {
    let mut cells = Vec::new();
    for (name, db) in GOLDEN_DBS {
        let dataset = Dataset::generate(db, Scale::Tiny, SERVE_BENCH_SEED);
        let valid_ids: BTreeSet<u64> = dataset.items().iter().map(|i| i.id).collect();
        for &seed in seeds {
            let streams = bench_sessions(&dataset, seed, cfg.sessions, cfg.requests_per_session);
            let serve_cfg = ServeConfig {
                seed,
                deadline_ticks: CHAOS_DEADLINE_TICKS,
                ..ServeConfig::default()
            };
            let (reference, _) = run_once(
                &dataset,
                &streams,
                &serve_cfg,
                cfg,
                FaultConfig::reliable(),
                false,
            )?;
            for &profile in profiles {
                let fault = profile_config(profile, seed, cfg.fault_rate).ok_or_else(|| {
                    StorageError::Corrupt {
                        id: PageId::new(0),
                        reason: format!("unknown fault profile {profile:?}"),
                    }
                })?;
                let (first, give_ups) = run_once(&dataset, &streams, &serve_cfg, cfg, fault, true)?;
                let (second, _) = run_once(&dataset, &streams, &serve_cfg, cfg, fault, true)?;
                let deterministic = first == second;
                let wrong_answers = audit_responses(&first, &reference, &valid_ids);
                let r = &first.report;
                cells.push(ChaosCell {
                    db: name.to_string(),
                    profile: profile.to_string(),
                    seed,
                    requests: r.requests,
                    exact: r
                        .requests
                        .saturating_sub(r.degraded_requests + r.deadline_exceeded),
                    degraded: r.degraded_requests,
                    deadline_exceeded: r.deadline_exceeded,
                    breaker_opens: r.breaker_opens,
                    quarantined_pages: r.quarantined_pages,
                    give_ups,
                    p50_ticks: r.p50_ticks,
                    p999_ticks: r.p999_ticks,
                    ref_p999_ticks: reference.report.p999_ticks,
                    wrong_answers,
                    deterministic,
                });
            }
        }
    }
    Ok(ChaosBench {
        sessions: cfg.sessions,
        requests_per_session: cfg.requests_per_session,
        buffer_frac: cfg.buffer_frac,
        shards: cfg.shards,
        fault_rate: cfg.fault_rate,
        policy: cfg.policy.label().to_string(),
        deadline_ticks: CHAOS_DEADLINE_TICKS,
        poisoned_pages: cfg.poisoned_pages,
        cells,
    })
}

/// Runs [`chaos_sweep`] with the committed `BENCH_chaos.json` matrix:
/// [`CHAOS_SEEDS`] × [`CHAOS_FAULT_PROFILES`] on both golden databases.
pub fn default_chaos_bench() -> Result<ChaosBench> {
    chaos_sweep(&CHAOS_SEEDS, &CHAOS_FAULT_PROFILES, &ChaosConfig::default())
}

/// Gates a fresh chaos sweep against the committed baseline. Returns one
/// human-readable violation per failed check (empty = gate passes):
///
/// * every baseline cell must exist in the current run with the same
///   request count (same matrix, same workload);
/// * zero wrong answers and bit-for-bit determinism in every cell;
/// * non-exact rate (degraded + deadline-exceeded) at most
///   [`DEGRADED_RATE_CEILING`];
/// * p999 at most [`P999_INFLATION_CEILING`] × the cell's fault-free
///   reference p999.
pub fn check_chaos(current: &ChaosBench, baseline: &ChaosBench) -> Vec<String> {
    let mut violations = Vec::new();
    for base in &baseline.cells {
        let key = format!("{}/{}/seed={}", base.db, base.profile, base.seed);
        let Some(cur) = current
            .cells
            .iter()
            .find(|c| c.db == base.db && c.profile == base.profile && c.seed == base.seed)
        else {
            violations.push(format!("{key}: cell missing from current run"));
            continue;
        };
        if cur.requests != base.requests {
            violations.push(format!(
                "{key}: request count changed ({} vs baseline {}) — runs not comparable",
                cur.requests, base.requests
            ));
            continue;
        }
        if cur.wrong_answers != 0 {
            violations.push(format!(
                "{key}: {} wrong answer(s) — degraded is allowed, incorrect is not",
                cur.wrong_answers
            ));
        }
        if !cur.deterministic {
            violations.push(format!("{key}: same-seed runs were not bit-for-bit equal"));
        }
        if cur.requests > 0 {
            let non_exact = (cur.degraded + cur.deadline_exceeded) as f64 / cur.requests as f64;
            if non_exact > DEGRADED_RATE_CEILING {
                violations.push(format!(
                    "{key}: non-exact rate {:.3} exceeds ceiling {:.3}",
                    non_exact, DEGRADED_RATE_CEILING
                ));
            }
        }
        let limit = cur.ref_p999_ticks as f64 * P999_INFLATION_CEILING;
        if cur.p999_ticks as f64 > limit {
            violations.push(format!(
                "{key}: p999 {} ticks exceeds {}x the fault-free reference ({} ticks)",
                cur.p999_ticks, P999_INFLATION_CEILING, cur.ref_p999_ticks
            ));
        }
    }
    violations
}

/// Names every cell of the current sweep that the baseline lacks — a
/// stale-baseline signal (matrix axis added without regenerating the
/// JSON), reported by name with exit status 2, distinct from a genuine
/// gate failure.
pub fn missing_chaos_cells(current: &ChaosBench, baseline: &ChaosBench) -> Vec<String> {
    current
        .cells
        .iter()
        .filter(|cur| {
            !baseline
                .cells
                .iter()
                .any(|b| b.db == cur.db && b.profile == cur.profile && b.seed == cur.seed)
        })
        .map(|cur| {
            format!(
                "baseline has no cell for db={} profile={} seed={}",
                cur.db, cur.profile, cur.seed
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell(db: &str, profile: &str, seed: u64) -> ChaosCell {
        ChaosCell {
            db: db.into(),
            profile: profile.into(),
            seed,
            requests: 100,
            exact: 90,
            degraded: 8,
            deadline_exceeded: 2,
            breaker_opens: 1,
            quarantined_pages: 2,
            give_ups: 5,
            p50_ticks: 50_000,
            p999_ticks: 400_000,
            ref_p999_ticks: 150_000,
            wrong_answers: 0,
            deterministic: true,
        }
    }

    fn bench_with(cells: Vec<ChaosCell>) -> ChaosBench {
        ChaosBench {
            sessions: 64,
            requests_per_session: 6,
            buffer_frac: 0.85,
            shards: 4,
            fault_rate: 0.08,
            policy: "ASB".into(),
            deadline_ticks: CHAOS_DEADLINE_TICKS,
            poisoned_pages: 2,
            cells,
        }
    }

    #[test]
    fn gate_passes_clean_cells_and_flags_each_failure_mode() {
        let base = bench_with(vec![cell("mainland", "chaos", 7)]);
        let mut cur = base.clone();
        assert!(check_chaos(&cur, &base).is_empty());

        cur.cells[0].wrong_answers = 3;
        let v = check_chaos(&cur, &base);
        assert!(v.iter().any(|m| m.contains("wrong answer")), "{v:?}");

        cur.cells[0].wrong_answers = 0;
        cur.cells[0].deterministic = false;
        let v = check_chaos(&cur, &base);
        assert!(v.iter().any(|m| m.contains("bit-for-bit")), "{v:?}");

        cur.cells[0].deterministic = true;
        cur.cells[0].degraded = 60;
        let v = check_chaos(&cur, &base);
        assert!(v.iter().any(|m| m.contains("non-exact rate")), "{v:?}");

        cur.cells[0].degraded = 8;
        cur.cells[0].p999_ticks = 150_000 * 31;
        let v = check_chaos(&cur, &base);
        assert!(v.iter().any(|m| m.contains("p999")), "{v:?}");

        cur.cells.clear();
        let v = check_chaos(&cur, &base);
        assert!(v.iter().any(|m| m.contains("cell missing")), "{v:?}");
    }

    #[test]
    fn stale_baseline_cells_are_named() {
        let base = bench_with(Vec::new());
        let cur = bench_with(vec![cell("world", "brownout", 1337)]);
        let v = missing_chaos_cells(&cur, &base);
        assert_eq!(v.len(), 1);
        assert!(
            v[0].contains("db=world profile=brownout seed=1337"),
            "{v:?}"
        );
    }

    #[test]
    fn single_cell_sweep_is_green_and_deterministic() {
        let cfg = ChaosConfig {
            sessions: 12,
            requests_per_session: 3,
            ..ChaosConfig::default()
        };
        let sweep = chaos_sweep(&[7], &["chaos"], &cfg).unwrap();
        assert_eq!(sweep.cells.len(), 2, "one cell per golden database");
        for c in &sweep.cells {
            assert_eq!(c.requests, 36, "{}: every request completes", c.db);
            assert_eq!(c.wrong_answers, 0, "{}: degraded != incorrect", c.db);
            assert!(c.deterministic, "{}: same-seed runs must agree", c.db);
        }
    }
}
