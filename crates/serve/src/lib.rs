//! # asb-serve — batched multi-session spatial serving front end
//!
//! The serving layer the EDBT 2002 reproduction grows toward: many
//! concurrent map sessions (pan/zoom window queries, k-NN lookups,
//! window-restricted spatial self-joins — [`asb_workload::session_requests`])
//! answered by one shared buffer pool, with requests *batched per shard*
//! through [`asb_core::BufferPool::fetch_batch`] instead of fetched one
//! page at a time.
//!
//! Everything runs on the storage layer's simulated clock: a round's cost
//! is the slowest shard's simulated store time plus fixed per-page and
//! per-round overheads, and a request's latency is completion tick minus
//! arrival tick — queueing delay included. No wall time is read anywhere,
//! so a run is a pure function of its seeds: the latency percentiles in
//! [`ServeReport`] (p50/p99/p999 out of a fixed-bucket log-scale
//! [`LatencyHistogram`]) are bit-for-bit reproducible on any machine,
//! which is what lets `BENCH_serve.json` live in the repository as a
//! reviewable benchmark result with a CI regression gate
//! ([`check_regression`]).
//!
//! ```text
//! cargo run --release -p asb-serve --bin serve -- run
//! cargo run --release -p asb-serve --bin serve -- bench --json BENCH_serve.json
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bench;
mod chaos;
mod degrade;
mod engine;
mod histogram;

pub use bench::{
    bench_sessions, check_regression, default_serve_bench, missing_baseline_rows, serve_bench,
    ServeBench, ServeBenchEntry, P99_TOLERANCE, SERVE_BENCH_BUFFER_FRAC, SERVE_BENCH_POLICIES,
    SERVE_BENCH_REQUESTS, SERVE_BENCH_SEED, SERVE_BENCH_SESSIONS, SERVE_BENCH_SHARDS,
};
pub use chaos::{
    chaos_sweep, check_chaos, default_chaos_bench, last_leaf_ids, missing_chaos_cells, ChaosBench,
    ChaosCell, ChaosConfig, CHAOS_DEADLINE_TICKS, CHAOS_FAULT_PROFILES, CHAOS_SEEDS,
    DEGRADED_RATE_CEILING, P999_INFLATION_CEILING,
};
pub use degrade::{BreakerConfig, BreakerState, CircuitBreaker, Outcome, Quarantine};
pub use engine::{
    serve, Response, ServeConfig, ServeOutcome, ServeReport, SessionStats, HIT_TICKS,
    ROUND_OVERHEAD_TICKS,
};
pub use histogram::{LatencyHistogram, BUCKET_COUNT, RELATIVE_ERROR, SUB_BUCKETS};
