//! Graceful-degradation machinery for the serve loop: per-shard circuit
//! breakers and per-page quarantine, both driven purely by the simulated
//! clock so chaos runs stay bit-for-bit deterministic.
//!
//! The degradation contract is: **degraded ≠ incorrect**. A request that
//! cannot reach every page it wants still completes — with a *subset* of
//! the exact answer (pruned subtrees never invent results) and an
//! [`Outcome`] that tells the client exactly how much to trust it. The
//! serving layer never blocks on a failing store and never returns a
//! fabricated result.

use serde::Serialize;

/// How a completed request relates to the exact answer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum Outcome {
    /// Every page the request wanted was served: the answer is exact.
    Exact,
    /// At least one page was unreachable (failed slot, open breaker or
    /// quarantine); the affected subtrees were pruned. Window results are
    /// a subset of the exact answer, join counts a lower bound, k-NN
    /// results best-effort over the reachable index.
    Degraded,
    /// The request exceeded its tick budget and was force-completed with
    /// whatever it had gathered. The partial answer carries the same
    /// subset guarantee as [`Outcome::Degraded`].
    DeadlineExceeded,
}

impl Outcome {
    /// Short lowercase label (`"exact"` / `"degraded"` / `"deadline"`)
    /// for CLI and JSON summaries.
    pub fn label(&self) -> &'static str {
        match self {
            Outcome::Exact => "exact",
            Outcome::Degraded => "degraded",
            Outcome::DeadlineExceeded => "deadline",
        }
    }
}

/// Tunables of a per-shard [`CircuitBreaker`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct BreakerConfig {
    /// Consecutive failed batches that trip the breaker open.
    pub failure_threshold: u32,
    /// Ticks an open breaker waits before letting one probe batch
    /// through (half-open).
    pub cooldown_ticks: u64,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            failure_threshold: 3,
            cooldown_ticks: 200_000,
        }
    }
}

/// The observable state of a [`CircuitBreaker`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum BreakerState {
    /// Healthy: batches flow to the store normally.
    Closed,
    /// Tripped: the store is presumed down; reads are served from
    /// buffer-resident state only until the cooldown elapses.
    Open,
    /// Cooldown elapsed: exactly one probe batch is allowed through; its
    /// result decides between [`BreakerState::Closed`] and re-opening.
    HalfOpen,
}

/// A deterministic circuit breaker guarding one shard's store traffic.
///
/// Classic three-state machine on the simulated clock: `Closed` counts
/// consecutive batch failures and trips to `Open` at the configured
/// threshold; `Open` rejects store traffic until `cooldown_ticks` have
/// elapsed, then [`allows`](CircuitBreaker::allows) moves it to
/// `HalfOpen` and admits one probe; a successful probe closes it, a
/// failed one re-opens it (restarting the cooldown). All transitions are
/// pure functions of the call sequence and the tick values passed in —
/// no wall time, no randomness — which is what lets the chaos harness
/// replay a schedule bit-for-bit.
#[derive(Debug)]
pub struct CircuitBreaker {
    cfg: BreakerConfig,
    state: BreakerState,
    consecutive_failures: u32,
    opened_at: u64,
    opens: u64,
}

impl CircuitBreaker {
    /// A closed breaker with the given thresholds.
    pub fn new(cfg: BreakerConfig) -> Self {
        CircuitBreaker {
            cfg,
            state: BreakerState::Closed,
            consecutive_failures: 0,
            opened_at: 0,
            opens: 0,
        }
    }

    /// Current state, *after* applying any cooldown expiry at `now` (an
    /// open breaker whose cooldown has elapsed reports `HalfOpen`).
    pub fn state(&mut self, now: u64) -> BreakerState {
        if self.state == BreakerState::Open
            && now >= self.opened_at.saturating_add(self.cfg.cooldown_ticks)
        {
            self.state = BreakerState::HalfOpen;
        }
        self.state
    }

    /// Whether a store batch may be issued at `now`. `Closed` and
    /// `HalfOpen` allow (half-open traffic is the probe); `Open` denies
    /// until the cooldown expires.
    pub fn allows(&mut self, now: u64) -> bool {
        self.state(now) != BreakerState::Open
    }

    /// Records a successful batch: closes the breaker (from any state)
    /// and resets the failure streak.
    pub fn on_success(&mut self) {
        self.state = BreakerState::Closed;
        self.consecutive_failures = 0;
    }

    /// Records a failed batch at `now`. In `Closed`, extends the streak
    /// and trips to `Open` at the threshold; in `HalfOpen`, the probe
    /// failed, so the breaker re-opens and the cooldown restarts.
    pub fn on_failure(&mut self, now: u64) {
        match self.state(now) {
            BreakerState::Closed => {
                self.consecutive_failures += 1;
                if self.consecutive_failures >= self.cfg.failure_threshold.max(1) {
                    self.trip(now);
                }
            }
            BreakerState::HalfOpen => self.trip(now),
            // invariant: callers only report batch results for batches
            // `allows` admitted, and `Open` admits none — but tolerate
            // the call (re-arm the cooldown) instead of panicking.
            BreakerState::Open => self.opened_at = now,
        }
    }

    fn trip(&mut self, now: u64) {
        self.state = BreakerState::Open;
        self.opened_at = now;
        self.consecutive_failures = 0;
        self.opens += 1;
    }

    /// Number of `→ Open` transitions so far (trips and failed probes).
    pub fn opens(&self) -> u64 {
        self.opens
    }
}

/// Per-page quarantine for permanently failing pages.
///
/// A page whose fetch slot fails with a *give-up* error
/// ([`asb_storage::PageError::is_give_up`]) is quarantined: the serve
/// loop stops asking the store for it and answers requests that want it
/// as degraded instead of burning retry budget every round. After
/// `heal_ticks`, the page becomes eligible for one heal probe — the next
/// batch that wants it includes it again; success releases it, another
/// give-up re-arms the timer.
#[derive(Debug)]
pub struct Quarantine {
    heal_ticks: u64,
    /// page id → tick at which the next heal probe is allowed.
    until: std::collections::BTreeMap<asb_storage::PageId, u64>,
    /// Distinct pages ever quarantined in this run.
    ever: std::collections::BTreeSet<asb_storage::PageId>,
}

impl Quarantine {
    /// An empty quarantine whose entries heal-probe after `heal_ticks`.
    pub fn new(heal_ticks: u64) -> Self {
        Quarantine {
            heal_ticks,
            until: std::collections::BTreeMap::new(),
            ever: std::collections::BTreeSet::new(),
        }
    }

    /// Whether the store may be asked for `id` at `now`. `true` for
    /// unquarantined pages and for quarantined pages whose heal timer
    /// has expired (the heal probe).
    pub fn allows(&self, id: asb_storage::PageId, now: u64) -> bool {
        match self.until.get(&id) {
            Some(&until) => now >= until,
            None => true,
        }
    }

    /// Quarantines `id` at `now` (or re-arms its timer after a failed
    /// heal probe).
    pub fn put(&mut self, id: asb_storage::PageId, now: u64) {
        self.until
            .insert(id, now.saturating_add(self.heal_ticks.max(1)));
        self.ever.insert(id);
    }

    /// Releases `id` after a successful heal probe. No-op when the page
    /// was not quarantined.
    pub fn release(&mut self, id: asb_storage::PageId) {
        self.until.remove(&id);
    }

    /// Whether `id` is currently quarantined (timer expired or not).
    pub fn contains(&self, id: asb_storage::PageId) -> bool {
        self.until.contains_key(&id)
    }

    /// Distinct pages quarantined at least once during the run.
    pub fn ever_quarantined(&self) -> u64 {
        self.ever.len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asb_storage::PageId;

    #[test]
    fn breaker_trips_after_consecutive_failures_only() {
        let mut b = CircuitBreaker::new(BreakerConfig {
            failure_threshold: 3,
            cooldown_ticks: 100,
        });
        b.on_failure(0);
        b.on_failure(1);
        b.on_success(); // streak broken
        b.on_failure(2);
        b.on_failure(3);
        assert_eq!(b.state(3), BreakerState::Closed);
        b.on_failure(4);
        assert_eq!(b.state(4), BreakerState::Open);
        assert_eq!(b.opens(), 1);
        assert!(!b.allows(5));
    }

    #[test]
    fn open_breaker_half_opens_after_cooldown_and_probe_decides() {
        let mut b = CircuitBreaker::new(BreakerConfig {
            failure_threshold: 1,
            cooldown_ticks: 100,
        });
        b.on_failure(10);
        assert!(!b.allows(109));
        assert!(b.allows(110), "cooldown elapsed: probe admitted");
        assert_eq!(b.state(110), BreakerState::HalfOpen);
        // Failed probe re-opens and restarts the cooldown from now.
        b.on_failure(110);
        assert_eq!(b.opens(), 2);
        assert!(!b.allows(209));
        assert!(b.allows(210));
        b.on_success();
        assert_eq!(b.state(210), BreakerState::Closed);
    }

    #[test]
    fn quarantine_blocks_until_heal_probe_window() {
        let mut q = Quarantine::new(500);
        let id = PageId::new(7);
        assert!(q.allows(id, 0));
        q.put(id, 100);
        assert!(q.contains(id));
        assert!(!q.allows(id, 599));
        assert!(q.allows(id, 600), "heal probe due");
        // Failed probe re-arms; successful probe releases.
        q.put(id, 600);
        assert!(!q.allows(id, 1099));
        q.release(id);
        assert!(q.allows(id, 700));
        assert!(!q.contains(id));
        assert_eq!(q.ever_quarantined(), 1, "re-arms count one page once");
    }
}
