//! `serve` — the batched multi-session serving front end.
//!
//! ```text
//! serve run   [--db 1|2] [--policy lru|asb|arena] [--sessions N]
//!             [--requests N] [--capacity N] [--shards N] [--seed N]
//! serve bench --json PATH [--check BASELINE]
//! serve chaos --json PATH [--check BASELINE]
//! ```
//!
//! `run` serves one seeded multi-session workload and prints the latency
//! percentiles, throughput and hit rate — the interactive way to poke at
//! a configuration.
//!
//! `bench --json PATH` runs the full deterministic serving benchmark
//! (LRU/ASB/ARENA on both golden databases) and writes it as JSON — this
//! regenerates the repo's committed `BENCH_serve.json` byte-for-byte.
//! With `--check BASELINE` the fresh run is additionally gated against a
//! committed baseline: any p99 more than 5 % over the baseline (or any
//! missing/incomparable row) prints a violation and exits non-zero.
//!
//! `chaos --json PATH` runs the chaos matrix (4 seeds × 4 fault profiles
//! on both golden databases over a `FaultyStore`) and writes
//! `BENCH_chaos.json` byte-for-byte. With `--check BASELINE` the sweep is
//! gated: wrong answers, lost determinism, a non-exact rate over the
//! ceiling or unbounded p999 inflation fail the gate.
//!
//! Exit codes for both gates: 0 = pass, 1 = gate violation, 2 = the
//! baseline itself is unusable (unreadable/malformed JSON, or missing a
//! row/cell the current run produced — regenerate and commit it).

use asb_core::{PolicyKind, ShardedBuffer};
use asb_rtree::RTree;
use asb_serve::{
    bench_sessions, check_chaos, check_regression, default_chaos_bench, default_serve_bench,
    missing_baseline_rows, missing_chaos_cells, serve, ChaosBench, ServeBench, ServeConfig,
    P99_TOLERANCE, SERVE_BENCH_BUFFER_FRAC, SERVE_BENCH_REQUESTS, SERVE_BENCH_SEED,
    SERVE_BENCH_SESSIONS, SERVE_BENCH_SHARDS,
};
use asb_storage::DiskManager;
use asb_workload::{Dataset, DatasetKind, Scale};
use std::process::ExitCode;

/// Exit status for an unusable baseline (vs 1 for a genuine gate
/// failure): unreadable or malformed JSON, or a baseline missing keys the
/// current run produced.
const EXIT_BAD_BASELINE: u8 = 2;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("run") => run(args),
        Some("bench") => bench(args),
        Some("chaos") => chaos(args),
        Some(o) => {
            eprintln!("error: unknown command {o} (expected `run`, `bench` or `chaos`)");
            ExitCode::FAILURE
        }
        None => {
            eprintln!(
                "usage: serve run [options] | serve bench --json PATH [--check BASELINE] \
                 | serve chaos --json PATH [--check BASELINE]"
            );
            ExitCode::FAILURE
        }
    }
}

/// Parses `--json PATH [--check BASELINE]` for the bench-style commands.
fn json_check_args(
    mut it: impl Iterator<Item = String>,
) -> Result<(String, Option<String>), String> {
    let mut json: Option<String> = None;
    let mut check: Option<String> = None;
    while let Some(arg) = it.next() {
        let mut next = || it.next().ok_or_else(|| format!("{arg} needs a value"));
        match arg.as_str() {
            "--json" => json = Some(next()?),
            "--check" => check = Some(next()?),
            o => return Err(format!("unknown argument {o}")),
        }
    }
    let json = json.ok_or_else(|| "requires --json PATH".to_string())?;
    Ok((json, check))
}

/// Loads and parses a committed baseline, mapping every failure to a
/// message naming the path (the caller exits with
/// [`EXIT_BAD_BASELINE`]). A serde error names the missing key.
fn load_baseline<T: serde::Deserialize>(path: &str) -> Result<T, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    serde_json::from_str(&text).map_err(|e| format!("{path}: {e}"))
}

fn run(mut it: impl Iterator<Item = String>) -> ExitCode {
    let mut db = DatasetKind::Mainland;
    let mut policy = PolicyKind::Arena;
    let mut sessions = SERVE_BENCH_SESSIONS;
    let mut requests = SERVE_BENCH_REQUESTS;
    // 0 = auto: the benchmark's buffer fraction of the tree's page count.
    let mut capacity = 0usize;
    let mut shards = SERVE_BENCH_SHARDS;
    let mut seed = SERVE_BENCH_SEED;
    while let Some(arg) = it.next() {
        let mut next = || it.next().ok_or_else(|| format!("{arg} needs a value"));
        let r: Result<(), String> = (|| {
            match arg.as_str() {
                "--db" => {
                    db = match next()?.as_str() {
                        "1" => DatasetKind::Mainland,
                        "2" => DatasetKind::World,
                        o => return Err(format!("unknown db {o}")),
                    }
                }
                "--policy" => {
                    policy = match next()?.as_str() {
                        "lru" => PolicyKind::Lru,
                        "asb" => PolicyKind::Asb,
                        "arena" => PolicyKind::Arena,
                        o => return Err(format!("unknown policy {o}")),
                    }
                }
                "--sessions" => sessions = next()?.parse().map_err(|e| format!("{e}"))?,
                "--requests" => requests = next()?.parse().map_err(|e| format!("{e}"))?,
                "--capacity" => capacity = next()?.parse().map_err(|e| format!("{e}"))?,
                "--shards" => shards = next()?.parse().map_err(|e| format!("{e}"))?,
                "--seed" => seed = next()?.parse().map_err(|e| format!("{e}"))?,
                o => return Err(format!("unknown argument {o}")),
            }
            Ok(())
        })();
        if let Err(e) = r {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    }
    if sessions == 0 || requests == 0 || shards == 0 {
        eprintln!("error: --sessions/--requests/--shards must be at least 1");
        return ExitCode::FAILURE;
    }

    let dataset = Dataset::generate(db, Scale::Tiny, seed);
    let streams = bench_sessions(&dataset, seed, sessions, requests);
    let tree = match RTree::bulk_load(DiskManager::new(), dataset.items()) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: bulk load failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let pages = tree.page_count();
    if capacity == 0 {
        capacity = ((pages as f64 * SERVE_BENCH_BUFFER_FRAC).round() as usize).max(2 * shards);
    }
    let snapshot = tree.snapshot();
    let pool = ShardedBuffer::new(tree.into_store(), policy, capacity, shards);
    pool.reset_io_stats();
    let cfg = ServeConfig {
        seed,
        ..ServeConfig::default()
    };
    let outcome = match serve(&pool, &snapshot, &streams, &cfg) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: serve loop failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let r = &outcome.report;
    println!(
        "# db={db:?} policy={} sessions={sessions} requests/session={requests} \
         tree_pages={pages} capacity={capacity} shards={shards} seed={seed}",
        policy.label()
    );
    println!(
        "requests={} rounds={} batched_pages={} duration={:.1}ms",
        r.requests,
        r.rounds,
        r.batched_pages,
        r.duration_ticks as f64 / 1e3
    );
    println!(
        "latency p50={} p99={} p999={} ticks (1 tick = 1 simulated us)",
        r.p50_ticks, r.p99_ticks, r.p999_ticks
    );
    println!(
        "throughput={:.0} req/s hit_rate={:.1}%",
        r.throughput_rps,
        100.0 * r.hit_rate
    );
    println!(
        "degraded={} deadline_exceeded={} breaker_opens={} quarantined_pages={}",
        r.degraded_requests, r.deadline_exceeded, r.breaker_opens, r.quarantined_pages
    );
    ExitCode::SUCCESS
}

fn bench(it: impl Iterator<Item = String>) -> ExitCode {
    let (path, check) = match json_check_args(it) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: bench {e}");
            return ExitCode::FAILURE;
        }
    };

    let bench = match default_serve_bench() {
        Ok(b) => b,
        Err(e) => {
            eprintln!("error: benchmark failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let out = serde_json::to_string_pretty(&bench).expect("serialize benchmark");
    if let Err(e) = std::fs::write(&path, out + "\n") {
        eprintln!("error: {path}: {e}");
        return ExitCode::FAILURE;
    }
    for e in &bench.entries {
        println!(
            "# serve {}/{:<6} p50={:<6} p99={:<6} p999={:<6} rps={:<8.0} hit%={:.1}",
            e.db,
            e.policy,
            e.p50_ticks,
            e.p99_ticks,
            e.p999_ticks,
            e.throughput_rps,
            100.0 * e.hit_rate,
        );
    }
    println!("# wrote {path}");

    if let Some(baseline_path) = check {
        let baseline: ServeBench = match load_baseline(&baseline_path) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("error: baseline unusable: {e}");
                return ExitCode::from(EXIT_BAD_BASELINE);
            }
        };
        let missing = missing_baseline_rows(&bench, &baseline);
        if !missing.is_empty() {
            for m in &missing {
                eprintln!("stale baseline: {m}");
            }
            eprintln!("regenerate with: serve bench --json {baseline_path}");
            return ExitCode::from(EXIT_BAD_BASELINE);
        }
        let violations = check_regression(&bench, &baseline, P99_TOLERANCE);
        if !violations.is_empty() {
            for v in &violations {
                eprintln!("regression: {v}");
            }
            return ExitCode::FAILURE;
        }
        println!("# regression gate passed against {baseline_path}");
    }
    ExitCode::SUCCESS
}

fn chaos(it: impl Iterator<Item = String>) -> ExitCode {
    let (path, check) = match json_check_args(it) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: chaos {e}");
            return ExitCode::FAILURE;
        }
    };

    let sweep = match default_chaos_bench() {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: chaos sweep failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let out = serde_json::to_string_pretty(&sweep).expect("serialize sweep");
    if let Err(e) = std::fs::write(&path, out + "\n") {
        eprintln!("error: {path}: {e}");
        return ExitCode::FAILURE;
    }
    for c in &sweep.cells {
        println!(
            "# chaos {}/{:<10} seed={:<6} exact={:<3} degraded={:<3} deadline={:<3} \
             breaker_opens={:<2} quarantined={:<2} p999={} (ref {}) wrong={} det={}",
            c.db,
            c.profile,
            c.seed,
            c.exact,
            c.degraded,
            c.deadline_exceeded,
            c.breaker_opens,
            c.quarantined_pages,
            c.p999_ticks,
            c.ref_p999_ticks,
            c.wrong_answers,
            c.deterministic,
        );
    }
    println!("# wrote {path}");

    if let Some(baseline_path) = check {
        let baseline: ChaosBench = match load_baseline(&baseline_path) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("error: baseline unusable: {e}");
                return ExitCode::from(EXIT_BAD_BASELINE);
            }
        };
        let missing = missing_chaos_cells(&sweep, &baseline);
        if !missing.is_empty() {
            for m in &missing {
                eprintln!("stale baseline: {m}");
            }
            eprintln!("regenerate with: serve chaos --json {baseline_path}");
            return ExitCode::from(EXIT_BAD_BASELINE);
        }
        let violations = check_chaos(&sweep, &baseline);
        if !violations.is_empty() {
            for v in &violations {
                eprintln!("chaos gate: {v}");
            }
            return ExitCode::FAILURE;
        }
        println!("# chaos gate passed against {baseline_path}");
    }
    ExitCode::SUCCESS
}
