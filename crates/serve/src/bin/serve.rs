//! `serve` — the batched multi-session serving front end.
//!
//! ```text
//! serve run   [--db 1|2] [--policy lru|asb|arena] [--sessions N]
//!             [--requests N] [--capacity N] [--shards N] [--seed N]
//! serve bench --json PATH [--check BASELINE]
//! ```
//!
//! `run` serves one seeded multi-session workload and prints the latency
//! percentiles, throughput and hit rate — the interactive way to poke at
//! a configuration.
//!
//! `bench --json PATH` runs the full deterministic serving benchmark
//! (LRU/ASB/ARENA on both golden databases) and writes it as JSON — this
//! regenerates the repo's committed `BENCH_serve.json` byte-for-byte.
//! With `--check BASELINE` the fresh run is additionally gated against a
//! committed baseline: any p99 more than 5 % over the baseline (or any
//! missing/incomparable row) prints a violation and exits non-zero.

use asb_core::{PolicyKind, ShardedBuffer};
use asb_rtree::RTree;
use asb_serve::{
    bench_sessions, check_regression, default_serve_bench, serve, ServeBench, ServeConfig,
    P99_TOLERANCE, SERVE_BENCH_BUFFER_FRAC, SERVE_BENCH_REQUESTS, SERVE_BENCH_SEED,
    SERVE_BENCH_SESSIONS, SERVE_BENCH_SHARDS,
};
use asb_storage::DiskManager;
use asb_workload::{Dataset, DatasetKind, Scale};
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("run") => run(args),
        Some("bench") => bench(args),
        Some(o) => {
            eprintln!("error: unknown command {o} (expected `run` or `bench`)");
            ExitCode::FAILURE
        }
        None => {
            eprintln!("usage: serve run [options] | serve bench --json PATH [--check BASELINE]");
            ExitCode::FAILURE
        }
    }
}

fn run(mut it: impl Iterator<Item = String>) -> ExitCode {
    let mut db = DatasetKind::Mainland;
    let mut policy = PolicyKind::Arena;
    let mut sessions = SERVE_BENCH_SESSIONS;
    let mut requests = SERVE_BENCH_REQUESTS;
    // 0 = auto: the benchmark's buffer fraction of the tree's page count.
    let mut capacity = 0usize;
    let mut shards = SERVE_BENCH_SHARDS;
    let mut seed = SERVE_BENCH_SEED;
    while let Some(arg) = it.next() {
        let mut next = || it.next().ok_or_else(|| format!("{arg} needs a value"));
        let r: Result<(), String> = (|| {
            match arg.as_str() {
                "--db" => {
                    db = match next()?.as_str() {
                        "1" => DatasetKind::Mainland,
                        "2" => DatasetKind::World,
                        o => return Err(format!("unknown db {o}")),
                    }
                }
                "--policy" => {
                    policy = match next()?.as_str() {
                        "lru" => PolicyKind::Lru,
                        "asb" => PolicyKind::Asb,
                        "arena" => PolicyKind::Arena,
                        o => return Err(format!("unknown policy {o}")),
                    }
                }
                "--sessions" => sessions = next()?.parse().map_err(|e| format!("{e}"))?,
                "--requests" => requests = next()?.parse().map_err(|e| format!("{e}"))?,
                "--capacity" => capacity = next()?.parse().map_err(|e| format!("{e}"))?,
                "--shards" => shards = next()?.parse().map_err(|e| format!("{e}"))?,
                "--seed" => seed = next()?.parse().map_err(|e| format!("{e}"))?,
                o => return Err(format!("unknown argument {o}")),
            }
            Ok(())
        })();
        if let Err(e) = r {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    }
    if sessions == 0 || requests == 0 || shards == 0 {
        eprintln!("error: --sessions/--requests/--shards must be at least 1");
        return ExitCode::FAILURE;
    }

    let dataset = Dataset::generate(db, Scale::Tiny, seed);
    let streams = bench_sessions(&dataset, seed, sessions, requests);
    let tree = match RTree::bulk_load(DiskManager::new(), dataset.items()) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: bulk load failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let pages = tree.page_count();
    if capacity == 0 {
        capacity = ((pages as f64 * SERVE_BENCH_BUFFER_FRAC).round() as usize).max(2 * shards);
    }
    let snapshot = tree.snapshot();
    let pool = ShardedBuffer::new(tree.into_store(), policy, capacity, shards);
    pool.reset_io_stats();
    let cfg = ServeConfig {
        seed,
        ..ServeConfig::default()
    };
    let outcome = match serve(&pool, &snapshot, &streams, &cfg) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: serve loop failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let r = &outcome.report;
    println!(
        "# db={db:?} policy={} sessions={sessions} requests/session={requests} \
         tree_pages={pages} capacity={capacity} shards={shards} seed={seed}",
        policy.label()
    );
    println!(
        "requests={} rounds={} batched_pages={} duration={:.1}ms",
        r.requests,
        r.rounds,
        r.batched_pages,
        r.duration_ticks as f64 / 1e3
    );
    println!(
        "latency p50={} p99={} p999={} ticks (1 tick = 1 simulated us)",
        r.p50_ticks, r.p99_ticks, r.p999_ticks
    );
    println!(
        "throughput={:.0} req/s hit_rate={:.1}%",
        r.throughput_rps,
        100.0 * r.hit_rate
    );
    ExitCode::SUCCESS
}

fn bench(mut it: impl Iterator<Item = String>) -> ExitCode {
    let mut json: Option<String> = None;
    let mut check: Option<String> = None;
    while let Some(arg) = it.next() {
        let mut next = || it.next().ok_or_else(|| format!("{arg} needs a value"));
        let r: Result<(), String> = (|| {
            match arg.as_str() {
                "--json" => json = Some(next()?),
                "--check" => check = Some(next()?),
                o => return Err(format!("unknown argument {o}")),
            }
            Ok(())
        })();
        if let Err(e) = r {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    }
    let Some(path) = json else {
        eprintln!("error: bench requires --json PATH");
        return ExitCode::FAILURE;
    };

    let bench = match default_serve_bench() {
        Ok(b) => b,
        Err(e) => {
            eprintln!("error: benchmark failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let out = serde_json::to_string_pretty(&bench).expect("serialize benchmark");
    if let Err(e) = std::fs::write(&path, out + "\n") {
        eprintln!("error: {path}: {e}");
        return ExitCode::FAILURE;
    }
    for e in &bench.entries {
        println!(
            "# serve {}/{:<6} p50={:<6} p99={:<6} p999={:<6} rps={:<8.0} hit%={:.1}",
            e.db,
            e.policy,
            e.p50_ticks,
            e.p99_ticks,
            e.p999_ticks,
            e.throughput_rps,
            100.0 * e.hit_rate,
        );
    }
    println!("# wrote {path}");

    if let Some(baseline_path) = check {
        let baseline: ServeBench = match std::fs::read_to_string(&baseline_path)
            .map_err(|e| e.to_string())
            .and_then(|s| serde_json::from_str(&s).map_err(|e| e.to_string()))
        {
            Ok(b) => b,
            Err(e) => {
                eprintln!("error: {baseline_path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let violations = check_regression(&bench, &baseline, P99_TOLERANCE);
        if !violations.is_empty() {
            for v in &violations {
                eprintln!("regression: {v}");
            }
            return ExitCode::FAILURE;
        }
        println!("# regression gate passed against {baseline_path}");
    }
    ExitCode::SUCCESS
}
