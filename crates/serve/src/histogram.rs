//! A fixed-bucket log-scale latency histogram (HdrHistogram-lite).
//!
//! Latencies in a serving system span four or more orders of magnitude —
//! a buffer hit costs tens of simulated microseconds, a join that queues
//! behind a batch of cold misses costs hundreds of milliseconds — so a
//! linear histogram either wastes memory or destroys the tail. The classic
//! answer is logarithmic buckets with linear sub-buckets: values below
//! [`SUB_BUCKETS`] get exact unit buckets, and every octave above is split
//! into [`SUB_BUCKETS`] equal-width buckets, bounding the relative
//! quantile error at `1/SUB_BUCKETS` ([`RELATIVE_ERROR`]).
//!
//! The layout is fixed (976 buckets covering all of `u64`), so two
//! histograms always merge bucket-by-bucket — per-shard histograms sum
//! associatively and commutatively, which the property suite in
//! `tests/latency.rs` pins down.

use serde::{Deserialize, Serialize};

/// log2 of [`SUB_BUCKETS`].
const SUB_BITS: u32 = 4;

/// Linear sub-buckets per octave; also the first-octave exact range.
pub const SUB_BUCKETS: usize = 1 << SUB_BITS;

/// Total bucket count: values `0..SUB_BUCKETS` exactly, plus
/// `SUB_BUCKETS` buckets for each of the `64 - SUB_BITS` octaves above.
pub const BUCKET_COUNT: usize = SUB_BUCKETS * (64 - SUB_BITS as usize + 1);

/// Worst-case relative error of a quantile estimate: a bucket at value
/// `v ≥ SUB_BUCKETS` is `2^e` wide with `v ≥ SUB_BUCKETS · 2^e`, so the
/// estimate overshoots by less than `v / SUB_BUCKETS`. Values below
/// [`SUB_BUCKETS`] are exact.
pub const RELATIVE_ERROR: f64 = 1.0 / SUB_BUCKETS as f64;

/// A fixed-bucket log-scale histogram over `u64` values (simulated-time
/// latency ticks in `asb-serve`).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LatencyHistogram {
    counts: Vec<u64>,
    total: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            counts: vec![0; BUCKET_COUNT],
            total: 0,
        }
    }

    /// The bucket index of `v`.
    pub fn bucket_index(v: u64) -> usize {
        if v < SUB_BUCKETS as u64 {
            return v as usize;
        }
        let msb = 63 - v.leading_zeros();
        let exp = msb - SUB_BITS;
        ((exp as usize + 1) * SUB_BUCKETS) + ((v >> exp) as usize - SUB_BUCKETS)
    }

    /// The largest value falling into bucket `i` — what quantile queries
    /// report, so estimates never undershoot the true quantile.
    pub fn bucket_upper_bound(i: usize) -> u64 {
        assert!(i < BUCKET_COUNT, "bucket index out of range");
        if i < SUB_BUCKETS {
            return i as u64;
        }
        let exp = (i / SUB_BUCKETS - 1) as u32;
        let sub = (i % SUB_BUCKETS + SUB_BUCKETS) as u128;
        (((sub + 1) << exp) - 1) as u64
    }

    /// Records one observation.
    pub fn record(&mut self, v: u64) {
        self.counts[Self::bucket_index(v)] += 1;
        self.total += 1;
    }

    /// Number of recorded observations.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Adds every bucket of `other` into `self` (the per-shard merge).
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
    }

    /// The `q`-quantile (`q ∈ [0, 1]`): the upper bound of the bucket
    /// holding the `⌈q·total⌉`-th smallest observation, so the estimate
    /// is at least the exact quantile and overshoots by at most
    /// [`RELATIVE_ERROR`] relative. Returns 0 on an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let rank = ((q * self.total as f64).ceil() as u64).clamp(1, self.total);
        let mut cum = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            cum += c;
            if cum >= rank {
                return Self::bucket_upper_bound(i);
            }
        }
        Self::bucket_upper_bound(BUCKET_COUNT - 1)
    }

    /// Median latency.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 99th-percentile latency.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// 99.9th-percentile latency.
    pub fn p999(&self) -> u64 {
        self.quantile(0.999)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_contiguous_and_monotonic() {
        // Every value maps into range, and bucket upper bounds grow with
        // the index; spot-check the exact low range and octave seams.
        for v in 0..64u64 {
            let i = LatencyHistogram::bucket_index(v);
            assert!(i < BUCKET_COUNT);
            assert!(v <= LatencyHistogram::bucket_upper_bound(i));
        }
        for v in [0, 15, 16, 31, 32, 33, 1 << 20, u64::MAX / 2, u64::MAX] {
            let i = LatencyHistogram::bucket_index(v);
            assert!(v <= LatencyHistogram::bucket_upper_bound(i));
            if i > 0 {
                assert!(v > LatencyHistogram::bucket_upper_bound(i - 1));
            }
        }
        assert_eq!(LatencyHistogram::bucket_index(u64::MAX), BUCKET_COUNT - 1);
        for i in 1..BUCKET_COUNT {
            assert!(
                LatencyHistogram::bucket_upper_bound(i)
                    > LatencyHistogram::bucket_upper_bound(i - 1)
            );
        }
    }

    #[test]
    fn small_values_are_exact() {
        let mut h = LatencyHistogram::new();
        for v in 0..SUB_BUCKETS as u64 {
            h.record(v);
        }
        for v in 0..SUB_BUCKETS as u64 {
            let q = (v + 1) as f64 / SUB_BUCKETS as f64;
            assert_eq!(h.quantile(q), v);
        }
    }

    #[test]
    fn empty_histogram_reports_zero() {
        let h = LatencyHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.p999(), 0);
    }
}
