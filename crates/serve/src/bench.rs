//! The serving benchmark behind `BENCH_serve.json`.
//!
//! One deterministic mixed-request serving run per `(golden database,
//! policy)` pair: the same seeded sessions replayed through LRU, ASB and
//! the expert arena on a sharded pool. Latency is simulated ticks, so the
//! whole benchmark is a pure function of the configuration constants —
//! `serve bench --json` regenerates the committed file byte-for-byte on
//! any machine, and CI diffs a fresh run against it with a p99 tolerance
//! gate ([`check_regression`]).

use crate::engine::{serve, ServeConfig};
use asb_core::{PolicyKind, ShardedBuffer};
use asb_exp::GOLDEN_DBS;
use asb_rtree::RTree;
use asb_storage::{DiskManager, Result};
use asb_workload::{session_requests, Dataset, Request, RequestMix, Scale, SessionSpec};
use serde::{Deserialize, Serialize};

/// Seed of the benchmark workload and serve loop.
pub const SERVE_BENCH_SEED: u64 = 42;
/// Concurrent sessions per benchmark run.
pub const SERVE_BENCH_SESSIONS: usize = 128;
/// Requests per session.
pub const SERVE_BENCH_REQUESTS: usize = 8;
/// Buffer capacity of the serving pool, as a fraction of the tree's page
/// count (the paper sizes buffers relative to the tree, and an absolute
/// capacity cannot exercise replacement on both golden databases at once
/// — their trees differ 3× in size).
pub const SERVE_BENCH_BUFFER_FRAC: f64 = 0.85;
/// Shard count of the serving pool.
pub const SERVE_BENCH_SHARDS: usize = 4;
/// The policies every benchmark run compares.
pub const SERVE_BENCH_POLICIES: [PolicyKind; 3] =
    [PolicyKind::Lru, PolicyKind::Asb, PolicyKind::Arena];

/// Default p99 regression tolerance of the CI gate: a fresh run may not
/// exceed the committed baseline's p99 by more than 5 %.
pub const P99_TOLERANCE: f64 = 0.05;

/// One `(database, policy)` serving-benchmark row.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeBenchEntry {
    /// Database name (`"mainland"` / `"world"`).
    pub db: String,
    /// Policy label (`"LRU"` / `"ASB"` / `"ARENA"`).
    pub policy: String,
    /// Tree size in pages.
    pub tree_pages: usize,
    /// Buffer capacity in pages ([`SERVE_BENCH_BUFFER_FRAC`] of the tree).
    pub capacity: usize,
    /// Requests completed.
    pub requests: u64,
    /// Batched rounds executed.
    pub rounds: u64,
    /// Median latency in simulated ticks (µs).
    pub p50_ticks: u64,
    /// 99th-percentile latency in ticks.
    pub p99_ticks: u64,
    /// 99.9th-percentile latency in ticks.
    pub p999_ticks: u64,
    /// Completed requests per simulated second.
    pub throughput_rps: f64,
    /// Pool-wide hit rate of the run, in `[0, 1]`.
    pub hit_rate: f64,
    /// Requests that completed degraded (0 on the fault-free benchmark).
    pub degraded_requests: u64,
    /// Requests force-completed past their deadline (0 when fault-free).
    pub deadline_exceeded: u64,
    /// Circuit-breaker open transitions across shards (0 when fault-free).
    pub breaker_opens: u64,
    /// Distinct pages quarantined during the run (0 when fault-free).
    pub quarantined_pages: u64,
}

/// The full serving benchmark: configuration header plus one row per
/// `(database, policy)` pair.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeBench {
    /// Seed the sessions and serve loop were generated from.
    pub seed: u64,
    /// Concurrent sessions.
    pub sessions: usize,
    /// Requests per session.
    pub requests_per_session: usize,
    /// Buffer capacity as a fraction of each tree's page count.
    pub buffer_frac: f64,
    /// Pool shard count.
    pub shards: usize,
    /// Mean think time between a session's requests, in ticks.
    pub think_ticks: u64,
    /// Benchmark rows, databases outer, policies inner.
    pub entries: Vec<ServeBenchEntry>,
}

/// The benchmark's session streams for one dataset: the browsing request
/// mix, one seeded stream per session.
pub fn bench_sessions(
    dataset: &Dataset,
    seed: u64,
    sessions: usize,
    steps: usize,
) -> Vec<Vec<Request>> {
    (0..sessions as u64)
        .map(|i| {
            session_requests(
                dataset,
                SessionSpec::default(),
                RequestMix::browsing(),
                steps,
                seed.wrapping_add(i.wrapping_mul(0x00C0_FFEE)),
            )
        })
        .collect()
}

/// Runs the serving benchmark: the seeded browsing sessions on both
/// golden databases, served through LRU, ASB and the default expert arena
/// on a sharded pool.
pub fn serve_bench(
    seed: u64,
    sessions: usize,
    requests_per_session: usize,
    buffer_frac: f64,
    shards: usize,
) -> Result<ServeBench> {
    let cfg = ServeConfig {
        seed,
        ..ServeConfig::default()
    };
    let mut entries = Vec::new();
    for (name, db) in GOLDEN_DBS {
        let dataset = Dataset::generate(db, Scale::Tiny, seed);
        let streams = bench_sessions(&dataset, seed, sessions, requests_per_session);
        for policy in SERVE_BENCH_POLICIES {
            let tree = RTree::bulk_load(DiskManager::new(), dataset.items())?;
            let tree_pages = tree.page_count();
            let capacity = ((tree_pages as f64 * buffer_frac).round() as usize).max(2 * shards);
            let snapshot = tree.snapshot();
            let pool = ShardedBuffer::new(tree.into_store(), policy, capacity, shards);
            pool.reset_io_stats();
            let outcome = serve(&pool, &snapshot, &streams, &cfg)?;
            let r = outcome.report;
            entries.push(ServeBenchEntry {
                db: name.to_string(),
                policy: policy.label(),
                tree_pages,
                capacity,
                requests: r.requests,
                rounds: r.rounds,
                p50_ticks: r.p50_ticks,
                p99_ticks: r.p99_ticks,
                p999_ticks: r.p999_ticks,
                throughput_rps: r.throughput_rps,
                hit_rate: r.hit_rate,
                degraded_requests: r.degraded_requests,
                deadline_exceeded: r.deadline_exceeded,
                breaker_opens: r.breaker_opens,
                quarantined_pages: r.quarantined_pages,
            });
        }
    }
    Ok(ServeBench {
        seed,
        sessions,
        requests_per_session,
        buffer_frac,
        shards,
        think_ticks: cfg.think_ticks,
        entries,
    })
}

/// Runs [`serve_bench`] with the committed `BENCH_serve.json`
/// configuration constants.
pub fn default_serve_bench() -> Result<ServeBench> {
    serve_bench(
        SERVE_BENCH_SEED,
        SERVE_BENCH_SESSIONS,
        SERVE_BENCH_REQUESTS,
        SERVE_BENCH_BUFFER_FRAC,
        SERVE_BENCH_SHARDS,
    )
}

/// Compares a fresh benchmark run against a committed baseline. Returns
/// one human-readable violation per failed check (empty = gate passes):
///
/// * every baseline `(db, policy)` row must exist in the current run;
/// * a row's p99 may not exceed the baseline p99 by more than
///   `p99_tolerance` (relative);
/// * request counts must match exactly (same workload, same seed — a
///   mismatch means the run is not comparable at all).
pub fn check_regression(
    current: &ServeBench,
    baseline: &ServeBench,
    p99_tolerance: f64,
) -> Vec<String> {
    let mut violations = Vec::new();
    for base in &baseline.entries {
        let Some(cur) = current
            .entries
            .iter()
            .find(|e| e.db == base.db && e.policy == base.policy)
        else {
            violations.push(format!(
                "{}/{}: row missing from current run",
                base.db, base.policy
            ));
            continue;
        };
        if cur.requests != base.requests {
            violations.push(format!(
                "{}/{}: request count changed ({} vs baseline {}) — runs not comparable",
                base.db, base.policy, cur.requests, base.requests
            ));
            continue;
        }
        let limit = base.p99_ticks as f64 * (1.0 + p99_tolerance);
        if cur.p99_ticks as f64 > limit {
            violations.push(format!(
                "{}/{}: p99 regressed {} -> {} ticks (> {:.0}% over baseline)",
                base.db,
                base.policy,
                base.p99_ticks,
                cur.p99_ticks,
                p99_tolerance * 100.0
            ));
        }
    }
    violations
}

/// Names every `(db, policy)` row of the current run that the baseline
/// lacks. A non-empty result means the committed baseline is *stale*
/// (e.g. a policy or database was added without regenerating the JSON) —
/// the CLI reports each missing key by name and exits with status 2,
/// distinct from a genuine latency regression.
pub fn missing_baseline_rows(current: &ServeBench, baseline: &ServeBench) -> Vec<String> {
    current
        .entries
        .iter()
        .filter(|cur| {
            !baseline
                .entries
                .iter()
                .any(|b| b.db == cur.db && b.policy == cur.policy)
        })
        .map(|cur| {
            format!(
                "baseline has no row for db={} policy={}",
                cur.db, cur.policy
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_is_reproducible_and_arena_p99_holds() {
        let a = default_serve_bench().unwrap();
        let b = default_serve_bench().unwrap();
        assert_eq!(
            a, b,
            "serving benchmark must be a pure function of its config"
        );
        assert_eq!(a.entries.len(), 6);
        for db in ["mainland", "world"] {
            let row = |policy: &str| {
                a.entries
                    .iter()
                    .find(|e| e.db == db && e.policy == policy)
                    .unwrap()
            };
            let (lru, asb, arena) = (row("LRU"), row("ASB"), row("ARENA"));
            // Same sessions, same think times: every policy answers the
            // same requests.
            let expected = (SERVE_BENCH_SESSIONS * SERVE_BENCH_REQUESTS) as u64;
            assert_eq!(lru.requests, expected);
            assert_eq!(asb.requests, expected);
            assert_eq!(arena.requests, expected);
            // The acceptance bar: the self-tuning arena's tail latency is
            // no worse than plain LRU's on both golden databases.
            assert!(
                arena.p99_ticks <= lru.p99_ticks,
                "{db}: arena p99 {} vs lru p99 {}",
                arena.p99_ticks,
                lru.p99_ticks
            );
            for e in [lru, asb, arena] {
                assert!(e.p50_ticks <= e.p99_ticks && e.p99_ticks <= e.p999_ticks);
                assert!(e.throughput_rps > 0.0);
                assert!((0.0..=1.0).contains(&e.hit_rate));
            }
        }
    }

    #[test]
    fn regression_gate_flags_p99_growth_and_missing_rows() {
        let base = ServeBench {
            seed: 1,
            sessions: 2,
            requests_per_session: 2,
            buffer_frac: 0.5,
            shards: 2,
            think_ticks: 100,
            entries: vec![ServeBenchEntry {
                db: "mainland".into(),
                policy: "LRU".into(),
                tree_pages: 8,
                capacity: 4,
                requests: 4,
                rounds: 8,
                p50_ticks: 100,
                p99_ticks: 1000,
                p999_ticks: 2000,
                throughput_rps: 10.0,
                hit_rate: 0.5,
                degraded_requests: 0,
                deadline_exceeded: 0,
                breaker_opens: 0,
                quarantined_pages: 0,
            }],
        };
        let mut cur = base.clone();
        assert!(check_regression(&cur, &base, 0.05).is_empty());
        cur.entries[0].p99_ticks = 1050; // exactly at the 5% limit
        assert!(check_regression(&cur, &base, 0.05).is_empty());
        cur.entries[0].p99_ticks = 1051;
        let v = check_regression(&cur, &base, 0.05);
        assert_eq!(v.len(), 1);
        assert!(v[0].contains("p99 regressed"), "{v:?}");
        cur.entries[0].p99_ticks = 1000;
        cur.entries[0].requests = 5;
        let v = check_regression(&cur, &base, 0.05);
        assert!(v[0].contains("not comparable"), "{v:?}");
        cur.entries.clear();
        let v = check_regression(&cur, &base, 0.05);
        assert!(v[0].contains("row missing"), "{v:?}");
    }

    #[test]
    fn missing_baseline_rows_names_each_absent_key() {
        let base = ServeBench {
            seed: 1,
            sessions: 1,
            requests_per_session: 1,
            buffer_frac: 0.5,
            shards: 1,
            think_ticks: 100,
            entries: Vec::new(),
        };
        let mut cur = base.clone();
        assert!(missing_baseline_rows(&cur, &base).is_empty());
        cur.entries.push(ServeBenchEntry {
            db: "world".into(),
            policy: "ASB".into(),
            tree_pages: 8,
            capacity: 4,
            requests: 4,
            rounds: 8,
            p50_ticks: 1,
            p99_ticks: 2,
            p999_ticks: 3,
            throughput_rps: 1.0,
            hit_rate: 0.5,
            degraded_requests: 0,
            deadline_exceeded: 0,
            breaker_opens: 0,
            quarantined_pages: 0,
        });
        let v = missing_baseline_rows(&cur, &base);
        assert_eq!(v.len(), 1);
        assert!(v[0].contains("db=world policy=ASB"), "{v:?}");
    }
}
